module Op = Bistpath_dfg.Op

type t = { lo : int; hi : int; zeros : int; ones : int }

type tri = No | May | Must

type transfer = { value : t; overflow : tri; div_by_zero : tri }

let mask ~width = (1 lsl width) - 1

(* Bits needed to represent [n] (n >= 0); 0 still occupies one bit. *)
let rec bits_of n = if n <= 1 then 1 else 1 + bits_of (n lsr 1)

(* Mutual reduction of the two halves. One round each way reaches the
   fixed point for the facts our transfers produce: the interval can
   only tighten from [zeros]/[ones], and the known bits can only gain
   the leading bits the tightened interval fixes. *)
let norm ~width lo hi zeros ones =
  let m = mask ~width in
  let lo = max 0 (min lo m) and hi = max 0 (min hi m) in
  let zeros = zeros land m and ones = ones land m in
  let lo = max lo ones in
  let hi = min hi (m land lnot zeros) in
  if lo > hi || zeros land ones <> 0 then
    (* Contradictory halves never arise from sound inputs; degrade to
       top rather than export a bottom value the rules would misread
       as "no concrete value reaches this net". *)
    { lo = 0; hi = m; zeros = 0; ones = 0 }
  else
    (* Every value in [lo, hi] agrees with [lo] on all bits above the
       highest bit where [lo] and [hi] differ. *)
    let diff = lo lxor hi in
    let fixed = if diff = 0 then m else m land lnot ((1 lsl bits_of diff) - 1) in
    { lo;
      hi;
      zeros = zeros lor (fixed land lnot lo land m);
      ones = ones lor (fixed land lo);
    }

let make ~width lo hi = norm ~width lo hi 0 0
let full ~width = make ~width 0 (mask ~width)
let const ~width n = make ~width n n

let join ~width a b =
  norm ~width (min a.lo b.lo) (max a.hi b.hi) (a.zeros land b.zeros)
    (a.ones land b.ones)

let widen ~width ~old next =
  let m = mask ~width in
  norm ~width
    (if next.lo < old.lo then 0 else old.lo)
    (if next.hi > old.hi then m else old.hi)
    (old.zeros land next.zeros) (old.ones land next.ones)

let equal a b = a.lo = b.lo && a.hi = b.hi && a.zeros = b.zeros && a.ones = b.ones
let mem n t = n >= t.lo && n <= t.hi && n land t.zeros = 0 && n land t.ones = t.ones
let is_const t = if t.lo = t.hi then Some t.lo else None
let size t = t.hi - t.lo + 1
let bits t = bits_of t.hi

let to_string t =
  if t.lo = t.hi then Printf.sprintf "{%d}" t.lo
  else Printf.sprintf "[%d,%d]" t.lo t.hi

let pure value = { value; overflow = No; div_by_zero = No }

let add ~width a b =
  let m = mask ~width in
  let sl = a.lo + b.lo and sh = a.hi + b.hi in
  if sh <= m then { (pure (make ~width sl sh)) with overflow = No }
  else if sl > m then
    (* every concrete sum wraps exactly once, and sums over a box of
       intervals form a contiguous range *)
    { (pure (make ~width (sl - m - 1) (sh - m - 1))) with overflow = Must }
  else { (pure (full ~width)) with overflow = May }

let sub ~width a b =
  let m = mask ~width in
  if a.lo >= b.hi then pure (make ~width (a.lo - b.hi) (a.hi - b.lo))
  else if a.hi < b.lo then
    { (pure (make ~width (a.lo - b.hi + m + 1) (a.hi - b.lo + m + 1))) with
      overflow = Must
    }
  else { (pure (full ~width)) with overflow = May }

let mul ~width a b =
  let m = mask ~width in
  (* overflow-safe product bound checks: x * y <= m iff y = 0 or
     x <= m / y (integer division), which never leaves the int range *)
  let fits x y = y = 0 || x <= m / y in
  if fits a.hi b.hi then pure (make ~width (a.lo * b.lo) (a.hi * b.hi))
  else if a.lo > 0 && b.lo > 0 && not (fits a.lo b.lo) then
    (* wrapped products are not contiguous: top is the sound result *)
    { (pure (full ~width)) with overflow = Must }
  else { (pure (full ~width)) with overflow = May }

let div ~width a b =
  let m = mask ~width in
  if b.hi = 0 then { value = const ~width m; overflow = No; div_by_zero = Must }
  else
    let qlo = a.lo / b.hi and qhi = a.hi / max 1 b.lo in
    if b.lo = 0 then
      (* a zero divisor forces the all-ones word, so the result joins
         the quotient range with [m] *)
      { value = make ~width qlo m; overflow = No; div_by_zero = May }
    else { value = make ~width qlo qhi; overflow = No; div_by_zero = No }

let and_ ~width a b =
  pure
    (norm ~width 0 (min a.hi b.hi) (a.zeros lor b.zeros) (a.ones land b.ones))

let or_ ~width a b =
  pure
    (norm ~width (max a.lo b.lo) (mask ~width) (a.zeros land b.zeros)
       (a.ones lor b.ones))

let xor ~width a b =
  pure
    (norm ~width 0 (mask ~width)
       ((a.zeros land b.zeros) lor (a.ones land b.ones))
       ((a.ones land b.zeros) lor (a.zeros land b.ones)))

let less ~width a b =
  if a.hi < b.lo then pure (const ~width 1)
  else if a.lo >= b.hi then pure (const ~width 0)
  else pure (make ~width 0 1)

let transfer kind ~width a b =
  match (kind : Op.kind) with
  | Op.Add -> add ~width a b
  | Op.Sub -> sub ~width a b
  | Op.Mul -> mul ~width a b
  | Op.Div -> div ~width a b
  | Op.And -> and_ ~width a b
  | Op.Or -> or_ ~width a b
  | Op.Xor -> xor ~width a b
  | Op.Less -> less ~width a b

let transfer_same kind ~width a =
  match (kind : Op.kind) with
  | Op.Sub | Op.Xor | Op.Less -> pure (const ~width 0)
  | Op.And | Op.Or -> pure a
  | Op.Div ->
      let m = mask ~width in
      if a.hi = 0 then { value = const ~width m; overflow = No; div_by_zero = Must }
      else if a.lo >= 1 then pure (const ~width 1)
      else { value = make ~width 1 m; overflow = No; div_by_zero = May }
  | Op.Add | Op.Mul -> transfer kind ~width a a
