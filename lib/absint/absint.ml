module Dfg = Bistpath_dfg.Dfg
module Op = Bistpath_dfg.Op
module Policy = Bistpath_dfg.Policy
module Massign = Bistpath_dfg.Massign
module Datapath = Bistpath_datapath.Datapath
module Control = Bistpath_datapath.Control
module Inject = Bistpath_resilience.Inject
module Telemetry = Bistpath_telemetry.Telemetry

type op_facts = {
  op : Op.t;
  left_v : Interval.t;
  right_v : Interval.t;
  out_v : Interval.t;
  overflow : Interval.tri;
  div_by_zero : Interval.tri;
}

type dfg_result = {
  env : (string * Interval.t) list;
  op_facts : op_facts list;
  iterations : int;
  widened : bool;
}

(* Joins keep ascending for at most this many passes before the carried
   write-backs are widened straight to their extremes. *)
let widen_after = 3

(* Hard backstop; widening makes every chain stabilize long before. *)
let max_passes = 64

let timed f =
  let t0 = if Telemetry.enabled () then Telemetry.now () else 0L in
  let r = f () in
  if Telemetry.enabled () then
    Telemetry.observe "absint.solve_ns" (Int64.to_int (Int64.sub (Telemetry.now ()) t0));
  Telemetry.incr "absint.solves";
  r

let input_value ~width assumes v =
  match List.assoc_opt v assumes with
  | Some (lo, hi) -> Interval.make ~width lo hi
  | None -> Interval.full ~width

let eval_op ~width env (op : Op.t) =
  let value v =
    match Hashtbl.find_opt env v with Some i -> i | None -> Interval.full ~width
  in
  if String.equal op.Op.left op.Op.right then
    Interval.transfer_same op.Op.kind ~width (value op.Op.left)
  else Interval.transfer op.Op.kind ~width (value op.Op.left) (value op.Op.right)

let solve_dfg ?(assumes = []) ~width ~policy (dfg : Dfg.t) =
  Inject.fire "absint.fixpoint";
  timed @@ fun () ->
  let env : (string, Interval.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun v -> Hashtbl.replace env v (input_value ~width assumes v))
    dfg.Dfg.inputs;
  (* schedule order: operands are normally produced in earlier steps, so
     the first pass already lands on the fixpoint for loop-free kernels *)
  let ops =
    List.stable_sort
      (fun (a : Op.t) (b : Op.t) ->
        compare (Dfg.cstep dfg a.Op.id) (Dfg.cstep dfg b.Op.id))
      dfg.Dfg.ops
  in
  let iterations = ref 0 and widenings = ref 0 in
  let rec fix pass =
    incr iterations;
    let changed = ref false in
    List.iter
      (fun (op : Op.t) ->
        let v = (eval_op ~width env op).Interval.value in
        match Hashtbl.find_opt env op.Op.out with
        | Some old when Interval.equal old v -> ()
        | _ ->
            Hashtbl.replace env op.Op.out v;
            changed := true)
      ops;
    List.iter
      (fun (res, inp) ->
        let rv =
          match Hashtbl.find_opt env res with
          | Some i -> i
          | None -> Interval.full ~width
        in
        let iv =
          match Hashtbl.find_opt env inp with
          | Some i -> i
          | None -> Interval.full ~width
        in
        let next =
          if pass >= widen_after then begin
            let w = Interval.widen ~width ~old:iv rv in
            if not (Interval.equal w iv) then incr widenings;
            w
          end
          else Interval.join ~width iv rv
        in
        if not (Interval.equal next iv) then begin
          Hashtbl.replace env inp next;
          changed := true
        end)
      policy.Policy.carried;
    if !changed && pass < max_passes then fix (pass + 1)
  in
  fix 1;
  Telemetry.incr ~by:!iterations "absint.iterations";
  Telemetry.incr ~by:!widenings "absint.widenings";
  let value v =
    match Hashtbl.find_opt env v with Some i -> i | None -> Interval.full ~width
  in
  let op_facts =
    List.map
      (fun (op : Op.t) ->
        let t = eval_op ~width env op in
        { op;
          left_v = value op.Op.left;
          right_v = value op.Op.right;
          out_v = value op.Op.out;
          overflow = t.Interval.overflow;
          div_by_zero = t.Interval.div_by_zero;
        })
      dfg.Dfg.ops
  in
  { env = List.map (fun v -> (v, value v)) (Dfg.variables dfg);
    op_facts;
    iterations = !iterations;
    widened = !widenings > 0;
  }

type activation = {
  step : int;
  mid : string;
  opid : string;
  a_left : Interval.t;
  a_right : Interval.t;
  a_out : Interval.t;
  a_overflow : Interval.tri;
  a_div_by_zero : Interval.tri;
}

type reg_facts = {
  rid : string;
  latched : Interval.t option;
  write_steps : int list;
  dead_writers : int list;
}

type port_leg = { leg_mid : string; side : [ `L | `R ]; leg_index : int; source : string }

type control_result = {
  horizon : int;
  unreachable : int list;
  activations : activation list;
  regs : reg_facts list;
  dead_port_legs : port_leg list;
  uninit_reads : (int * string * string) list;
}

let solve_control ?(assumes = []) ~width (dp : Datapath.t) (control : Control.t) =
  Inject.fire "absint.fixpoint";
  timed @@ fun () ->
  let horizon = Dfg.num_csteps dp.Datapath.dfg in
  (* The emitted counter resets to 0 and increments while
     [step <= NUM_STEPS], so its reachable states are exactly
     0 .. horizon+1 (it parks on horizon+1). *)
  let reachable i = i >= 0 && i <= horizon + 1 in
  let unreachable =
    List.filter_map
      (fun (s : Control.step) ->
        if reachable s.Control.index then None else Some s.Control.index)
      control.Control.steps
    |> List.sort_uniq compare
  in
  let q : (string, Interval.t) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (r : Datapath.reg) ->
      Hashtbl.replace q r.Datapath.rid (Interval.const ~width 0))
    dp.Datapath.regs;
  let latched : (string, Interval.t) Hashtbl.t = Hashtbl.create 32 in
  let write_steps : (string, int list) Hashtbl.t = Hashtbl.create 32 in
  let written_before : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let used_writer : (string * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let used_leg : (string * char * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let activations = ref [] and uninit = ref [] in
  let route_of opid =
    List.find_opt (fun (r : Datapath.route) -> String.equal r.Datapath.opid opid)
      dp.Datapath.routes
  in
  let reg_value rid =
    match Hashtbl.find_opt q rid with Some i -> i | None -> Interval.full ~width
  in
  let steps =
    List.filter (fun (s : Control.step) -> reachable s.Control.index)
      control.Control.steps
    |> List.stable_sort (fun (a : Control.step) b ->
           compare a.Control.index b.Control.index)
  in
  List.iter
    (fun (s : Control.step) ->
      (* compute phase: every active unit reads the registers as latched
         at the end of earlier steps *)
      let outs : (string, Interval.t) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (o : Control.unit_op) ->
          Hashtbl.replace used_leg (o.Control.mid, 'l', o.Control.l_select) ();
          Hashtbl.replace used_leg (o.Control.mid, 'r', o.Control.r_select) ();
          match (route_of o.Control.opid, Dfg.op_by_id dp.Datapath.dfg o.Control.opid) with
          | Some route, Some op ->
              let lr = route.Datapath.l_reg and rr = route.Datapath.r_reg in
              List.iter
                (fun rid ->
                  if not (Hashtbl.mem written_before rid) then
                    uninit := (s.Control.index, o.Control.opid, rid) :: !uninit)
                (List.sort_uniq compare [ lr; rr ]);
              let lv = reg_value lr and rv = reg_value rr in
              let t =
                if String.equal lr rr then
                  Interval.transfer_same op.Op.kind ~width lv
                else Interval.transfer op.Op.kind ~width lv rv
              in
              Hashtbl.replace outs o.Control.mid t.Interval.value;
              activations :=
                { step = s.Control.index;
                  mid = o.Control.mid;
                  opid = o.Control.opid;
                  a_left = lv;
                  a_right = rv;
                  a_out = t.Interval.value;
                  a_overflow = t.Interval.overflow;
                  a_div_by_zero = t.Interval.div_by_zero;
                }
                :: !activations
          | _ -> ())
        s.Control.ops;
      (* latch phase *)
      List.iter
        (fun (w : Control.write) ->
          Hashtbl.replace used_writer (w.Control.rid, w.Control.source_index) ();
          let sources =
            match List.assoc_opt w.Control.rid dp.Datapath.reg_writers with
            | Some ws -> ws
            | None -> []
          in
          match List.nth_opt sources w.Control.source_index with
          | Some (Datapath.From_unit mid) ->
              let v =
                match Hashtbl.find_opt outs mid with
                | Some v -> v
                (* an idle unit's output is whatever its default-selected
                   operands produce: unconstrained *)
                | None -> Interval.full ~width
              in
              Hashtbl.replace q w.Control.rid v;
              Hashtbl.replace latched w.Control.rid
                (match Hashtbl.find_opt latched w.Control.rid with
                | Some prev -> Interval.join ~width prev v
                | None -> v);
              Hashtbl.replace write_steps w.Control.rid
                (s.Control.index
                :: (match Hashtbl.find_opt write_steps w.Control.rid with
                   | Some l -> l
                   | None -> []))
          | Some (Datapath.From_port p) ->
              let v = input_value ~width assumes p in
              Hashtbl.replace q w.Control.rid v;
              Hashtbl.replace latched w.Control.rid
                (match Hashtbl.find_opt latched w.Control.rid with
                | Some prev -> Interval.join ~width prev v
                | None -> v);
              Hashtbl.replace write_steps w.Control.rid
                (s.Control.index
                :: (match Hashtbl.find_opt write_steps w.Control.rid with
                   | Some l -> l
                   | None -> []))
          | None -> ())
        s.Control.writes;
      (* reads at later steps see this step's writes as initialized *)
      List.iter
        (fun (w : Control.write) -> Hashtbl.replace written_before w.Control.rid ())
        s.Control.writes)
    steps;
  let regs =
    List.map
      (fun (r : Datapath.reg) ->
        let rid = r.Datapath.rid in
        let sources =
          match List.assoc_opt rid dp.Datapath.reg_writers with
          | Some ws -> ws
          | None -> []
        in
        let dead_writers =
          (* a single-writer register has no mux; its one leg is wired
             straight through, so there is nothing to be dead *)
          if List.length sources < 2 then []
          else
            List.init (List.length sources) Fun.id
            |> List.filter (fun i -> not (Hashtbl.mem used_writer (rid, i)))
        in
        { rid;
          latched = Hashtbl.find_opt latched rid;
          write_steps =
            (match Hashtbl.find_opt write_steps rid with
            | Some l -> List.sort_uniq compare l
            | None -> []);
          dead_writers;
        })
      dp.Datapath.regs
  in
  let dead_port_legs =
    List.concat_map
      (fun (u : Massign.hw) ->
        let l, r = Datapath.unit_port_sources dp u.Massign.mid in
        let dead side c srcs =
          if List.length srcs < 2 then []
          else
            List.concat
              (List.mapi
                 (fun i src ->
                   if Hashtbl.mem used_leg (u.Massign.mid, c, i) then []
                   else
                     [ { leg_mid = u.Massign.mid; side; leg_index = i; source = src } ])
                 srcs)
        in
        dead `L 'l' l @ dead `R 'r' r)
      dp.Datapath.massign.Massign.units
  in
  { horizon;
    unreachable;
    activations = List.rev !activations;
    regs;
    dead_port_legs;
    uninit_reads = List.sort_uniq compare !uninit;
  }

type component = {
  name : string;
  comp : [ `Register | `Unit ];
  full_bits : int;
  narrow_bits : int;
  value : Interval.t;
}

type plan = {
  plan_width : int;
  regw : (string * int) list;
  unitw : (string * int) list;
  components : component list;
  saved_bits : int;
  total_bits : int;
}

let narrow_plan ?assumes ~width (dp : Datapath.t) (control : Control.t) =
  let cr = solve_control ?assumes ~width dp control in
  let reg_components =
    List.map
      (fun (rf : reg_facts) ->
        let value, narrow_bits =
          match rf.latched with
          | Some v -> (v, min width (Interval.bits v))
          | None -> (Interval.const ~width 0, width)
        in
        { name = rf.rid; comp = `Register; full_bits = width; narrow_bits; value })
      cr.regs
  in
  (* A unit narrows to the smallest width that (a) represents every
     operand and result it ever sees and (b) provably keeps every
     activation wrap-free — a narrower modulus would change the value
     the register file latches. Any possible wrap or zero divisor pins
     the unit at full width, where the uniform-width semantics are the
     spec by definition. *)
  let unit_components =
    List.filter_map
      (fun (u : Massign.hw) ->
        let acts =
          List.filter (fun a -> String.equal a.mid u.Massign.mid) cr.activations
        in
        if acts = [] then None
        else
          let kind_of opid =
            match Dfg.op_by_id dp.Datapath.dfg opid with
            | Some (op : Op.t) -> Some op.Op.kind
            | None -> None
          in
          let floor_bits =
            List.fold_left
              (fun acc a ->
                max acc
                  (max (Interval.bits a.a_left)
                     (max (Interval.bits a.a_right) (Interval.bits a.a_out))))
              1 acts
          in
          let floor_bits =
            if List.mem Op.Less u.Massign.kinds then max 2 floor_bits else floor_bits
          in
          let safe_at w =
            List.for_all
              (fun a ->
                match kind_of a.opid with
                | None -> false
                | Some kind ->
                    let al = Interval.make ~width:w a.a_left.Interval.lo a.a_left.Interval.hi in
                    let ar = Interval.make ~width:w a.a_right.Interval.lo a.a_right.Interval.hi in
                    let t = Interval.transfer kind ~width:w al ar in
                    t.Interval.overflow = Interval.No
                    && t.Interval.div_by_zero = Interval.No)
              acts
          in
          let rec fit w = if w >= width then width else if safe_at w then w else fit (w + 1) in
          let narrow_bits = fit floor_bits in
          let joined =
            List.fold_left
              (fun acc a -> Interval.join ~width acc a.a_out)
              (List.hd acts).a_out (List.tl acts)
          in
          Some
            { name = u.Massign.mid;
              comp = `Unit;
              full_bits = width;
              narrow_bits;
              value = joined;
            })
      dp.Datapath.massign.Massign.units
  in
  let components = reg_components @ unit_components in
  let pick comp =
    List.filter_map
      (fun c ->
        if c.comp = comp && c.narrow_bits < c.full_bits then
          Some (c.name, c.narrow_bits)
        else None)
      components
  in
  let weight c = match c.comp with `Register -> 1 | `Unit -> 3 in
  let saved_bits =
    List.fold_left
      (fun acc c -> acc + (weight c * (c.full_bits - c.narrow_bits)))
      0 components
  in
  let total_bits =
    List.fold_left (fun acc c -> acc + (weight c * c.full_bits)) 0 components
  in
  { plan_width = width;
    regw = pick `Register;
    unitw = pick `Unit;
    components;
    saved_bits;
    total_bits;
  }

let plan_is_empty p = p.regw = [] && p.unitw = []

let saved_percent p =
  if p.total_bits = 0 then 0.0
  else 100.0 *. float_of_int p.saved_bits /. float_of_int p.total_bits
