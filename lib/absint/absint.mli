(** Fixpoint solvers over the scheduled DFG and the synthesized
    controller, and the width-narrowing plan they justify.

    Two cooperating analyses:

    - {!solve_dfg} runs the value domain over the data-flow graph in
      schedule order, feeding loop write-backs (the policy's carried
      pairs) around until a fixed point, with widening after a few
      join rounds. This is the flow-{e insensitive} per-variable view:
      one abstract value per DFG variable, plus per-operation wrap /
      division-by-zero verdicts (rules ABS001, ABS002, ABS005).
    - {!solve_control} runs the product of the abstract step counter
      (init 0, increment, saturation at [T+1]) with per-register value
      states through the control table, latching exactly what the
      hardware latches. This is the flow-{e sensitive} per-step view:
      it knows what each register holds {e when}, which multiplexer
      legs can ever be selected, and which reads happen before the
      first write (rules ABS003, ABS004, ABS006) — and it is the
      ground truth for {!narrow_plan}.

    Both solvers fire the [absint.fixpoint] injection site on entry
    (a shot raises {!Bistpath_resilience.Inject.Injected}, which the
    check runner degrades to a per-rule CHK000 finding and `synth
    analyze` degrades to exit 3), bump [absint.solves] /
    [absint.iterations] / [absint.widenings], and record wall time in
    the [absint.solve_ns] histogram. *)

type op_facts = {
  op : Bistpath_dfg.Op.t;
  left_v : Interval.t;
  right_v : Interval.t;
  out_v : Interval.t;
  overflow : Interval.tri;
  div_by_zero : Interval.tri;
}

type dfg_result = {
  env : (string * Interval.t) list;  (** every DFG variable, sorted *)
  op_facts : op_facts list;  (** in DFG op order *)
  iterations : int;
  widened : bool;
}

val solve_dfg :
  ?assumes:(string * (int * int)) list ->
  width:int ->
  policy:Bistpath_dfg.Policy.t ->
  Bistpath_dfg.Dfg.t ->
  dfg_result
(** [assumes] narrows named primary inputs to [\[lo, hi\]]; all other
    inputs are full-range. Carried pairs [(result, input)] are joined
    back into the input between passes (widened once the chain keeps
    growing), so loop write-back kernels converge. *)

type activation = {
  step : int;
  mid : string;
  opid : string;
  a_left : Interval.t;  (** left-port register value when the unit ran *)
  a_right : Interval.t;
  a_out : Interval.t;
  a_overflow : Interval.tri;
  a_div_by_zero : Interval.tri;
}

type reg_facts = {
  rid : string;
  latched : Interval.t option;  (** join of every value ever latched;
                                    [None] if the register never latches *)
  write_steps : int list;
  dead_writers : int list;  (** writer-mux legs (indexes into the
                                register's writer list) no reachable
                                control step ever selects *)
}

type port_leg = { leg_mid : string; side : [ `L | `R ]; leg_index : int; source : string }

type control_result = {
  horizon : int;  (** T: the step counter counts 0..T+1 then saturates *)
  unreachable : int list;  (** control-table indexes outside [0, T+1] *)
  activations : activation list;
  regs : reg_facts list;
  dead_port_legs : port_leg list;  (** port-mux legs never selected *)
  uninit_reads : (int * string * string) list;
      (** (step, opid, rid): a unit read [rid] before its first write —
          the register still holds the reset interval {0} *)
}

val solve_control :
  ?assumes:(string * (int * int)) list ->
  width:int ->
  Bistpath_datapath.Datapath.t ->
  Bistpath_datapath.Control.t ->
  control_result

(** {1 Width narrowing} *)

type component = {
  name : string;
  comp : [ `Register | `Unit ];
  full_bits : int;  (** uniform emission width *)
  narrow_bits : int;  (** inferred sufficient width, [<= full_bits] *)
  value : Interval.t;  (** the witness range the narrow width covers *)
}

type plan = {
  plan_width : int;
  regw : (string * int) list;  (** registers strictly narrower than full *)
  unitw : (string * int) list;  (** units strictly narrower than full *)
  components : component list;  (** every register and active unit *)
  saved_bits : int;  (** register bits + 3x unit bits (two ports and
                         the result cone) removed by the plan *)
  total_bits : int;  (** same metric for the uniform-width design *)
}

val narrow_plan :
  ?assumes:(string * (int * int)) list ->
  width:int ->
  Bistpath_datapath.Datapath.t ->
  Bistpath_datapath.Control.t ->
  plan
(** Sound width assignment derived from {!solve_control}: a register's
    width covers everything it ever latches (registers fed by primary
    input pins stay full — pins are unconstrained); a unit's width
    covers every operand and result it ever sees {e and} provably
    cannot wrap at the narrow width (operations that may wrap, and
    divisions whose divisor may be zero, pin their unit to full width
    because the mod-[2^w] reduction and the all-ones div-by-zero word
    are width-dependent). [Less] units never narrow below 2 bits (the
    1-bit primitive would need a zero-width pad). [assumes] must only
    be used for analysis reporting — a plan built from assumptions is
    not sound for the full-range vectors `synth verify` drives. *)

val plan_is_empty : plan -> bool

val saved_percent : plan -> float
(** [100 * saved_bits / total_bits] (0 when [total_bits] is 0). *)
