(** The value domain: an unsigned interval refined by known bits.

    Every abstract value describes a set of [width]-bit unsigned machine
    words as the intersection of an interval [\[lo, hi\]] and a
    bit-level constraint ([zeros] = bits known to be 0, [ones] = bits
    known to be 1). The two halves are kept mutually reduced: [lo] is
    at least [ones], [hi] clears every bit in [zeros], and the leading
    bits shared by [lo] and [hi] are folded back into [zeros]/[ones]
    (values in a contiguous interval agree on every bit above the
    highest differing bit).

    Transfer functions mirror {!Bistpath_dfg.Op.eval} exactly:
    arithmetic is mod [2^width] unsigned, [Less] yields 0/1, and
    division by zero yields the all-ones word [2^width - 1]. Soundness
    is enforced by an exhaustive enumeration test (widths 1-4, every
    interval pair, every kind): each concrete [Op.eval] result lies in
    the abstract result and respects its known bits, and the wrap
    verdicts are exact in the [No]/[Must] directions. *)

type t = private {
  lo : int;  (** smallest possible value, [0 <= lo <= hi] *)
  hi : int;  (** largest possible value, [hi <= 2^width - 1] *)
  zeros : int;  (** mask of bits known to be 0 *)
  ones : int;  (** mask of bits known to be 1 *)
}

type tri = No | May | Must
    (** Three-valued verdict: the event (modular wrap-around, division
        by zero) happens for no / some / every concrete instantiation
        of the operand intervals. *)

type transfer = {
  value : t;
  overflow : tri;  (** the mathematical result exceeded [2^width - 1]
                       (or went negative) and was reduced mod [2^width] *)
  div_by_zero : tri;  (** the divisor was zero ([No] for non-division kinds) *)
}

val make : width:int -> int -> int -> t
(** [make ~width lo hi] — the interval, clamped into [\[0, 2^width-1\]]
    and reduced against the known bits it implies. *)

val full : width:int -> t
val const : width:int -> int -> t

val join : width:int -> t -> t -> t
val widen : width:int -> old:t -> t -> t
(** Widening for loop write-back chains: a bound that grew since [old]
    jumps straight to its extreme, and known bits that changed are
    dropped — so any ascending chain stabilizes in one step per bound. *)

val equal : t -> t -> bool
val mem : int -> t -> bool
val is_const : t -> int option
val size : t -> int
(** Number of concrete values admitted by the interval half. *)

val bits : t -> int
(** Bits needed to represent every admitted value (at least 1). *)

val to_string : t -> string
(** Witness rendering: ["{k}"] for a constant, ["[lo,hi]"] otherwise. *)

val transfer : Bistpath_dfg.Op.kind -> width:int -> t -> t -> transfer
(** Abstract [Op.eval kind ~width] over two independent operands. *)

val transfer_same : Bistpath_dfg.Op.kind -> width:int -> t -> transfer
(** Abstract [Op.eval kind ~width x x] — both operands are the {e same}
    value, which is strictly more precise than [transfer] on the pair:
    [x - x = 0], [x ^ x = 0], [x < x = 0], [x / x] is 1 (or all-ones at
    [x = 0]), and [x & x = x | x = x]. *)
