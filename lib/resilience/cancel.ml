type reason =
  | Deadline of float
  | Node_budget of int
  | Leaf_budget of int
  | Cancelled of string

type t = { cell : reason option Atomic.t; never : bool }

let create () = { cell = Atomic.make None; never = false }
let never = { cell = Atomic.make None; never = true }

let cancel t r =
  if t.never then invalid_arg "Cancel.cancel: the never token cannot be cancelled";
  Atomic.compare_and_set t.cell None (Some r)

let cancelled t = Atomic.get t.cell <> None
let reason t = Atomic.get t.cell

let describe = function
  | Deadline s -> Printf.sprintf "deadline of %.2fs exceeded" s
  | Node_budget n -> Printf.sprintf "node budget of %d exhausted" n
  | Leaf_budget n -> Printf.sprintf "leaf budget of %d exhausted" n
  | Cancelled why -> Printf.sprintf "cancelled: %s" why
