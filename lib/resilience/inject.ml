module Prng = Bistpath_util.Prng
module Telemetry = Bistpath_telemetry.Telemetry

exception Injected of string

let sites =
  [
    "pool.worker"; "telemetry.write"; "allocator.leaf"; "pareto.leaf";
    "service.journal"; "service.result_io"; "service.worker"; "check.rule";
    "cache.io"; "fleet.heartbeat"; "fleet.claim"; "rtl.parse";
  ]

type site_state = { prob : float; prng : Prng.t }

let default_seed = 0xB157

(* [armed] is the fast-path switch: a single atomic load when injection
   is off (the production default). All slow-path state lives behind
   [mutex] so worker domains can draw concurrently. *)
let armed = Atomic.make false
let mutex = Mutex.create ()
let table : (string, site_state) Hashtbl.t = Hashtbl.create 8
let initialized = ref false

let apply config ~seed =
  Hashtbl.reset table;
  (* One split child per site, derived in sorted-site order so the
     per-site stream depends only on (seed, site set), not on the order
     the configuration listed them. *)
  let root = Prng.create seed in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) config in
  List.iter
    (fun (site, prob) ->
      if prob > 0.0 then
        Hashtbl.replace table site { prob; prng = Prng.split root })
    sorted;
  Atomic.set armed (Hashtbl.length table > 0)

let parse_env spec =
  String.split_on_char ',' spec
  |> List.filter_map (fun entry ->
         let entry = String.trim entry in
         if String.equal entry "" then None
         else
           match String.index_opt entry '=' with
           | None -> Some (entry, 1.0)
           | Some i ->
             let site = String.sub entry 0 i in
             let p = String.sub entry (i + 1) (String.length entry - i - 1) in
             (match float_of_string_opt p with
             | Some p when p >= 0.0 && p <= 1.0 -> Some (site, p)
             | Some _ | None ->
               Printf.eprintf
                 "bistpath: BISTPATH_INJECT: bad probability %S for site %s (want 0..1); \
                  ignoring this site\n"
                 p site;
               None))

let init_from_env () =
  let seed =
    match Sys.getenv_opt "BISTPATH_INJECT_SEED" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None -> default_seed)
    | None -> default_seed
  in
  match Sys.getenv_opt "BISTPATH_INJECT" with
  | None | Some "" -> ()
  | Some spec -> apply (parse_env spec) ~seed

let ensure () =
  if not !initialized then begin
    Mutex.lock mutex;
    if not !initialized then begin
      init_from_env ();
      initialized := true
    end;
    Mutex.unlock mutex
  end

let configure ?(seed = default_seed) config =
  Mutex.lock mutex;
  initialized := true;
  apply config ~seed;
  Mutex.unlock mutex

let enabled () =
  ensure ();
  Atomic.get armed

let should_fire site =
  if not (Atomic.get armed) && !initialized then false
  else begin
    ensure ();
    if not (Atomic.get armed) then false
    else begin
      Mutex.lock mutex;
      let hit =
        match Hashtbl.find_opt table site with
        | None -> false
        | Some st -> st.prob >= 1.0 || Prng.float st.prng 1.0 < st.prob
      in
      Mutex.unlock mutex;
      if hit then Telemetry.incr "resilience.injected";
      hit
    end
  end

let fire site = if should_fire site then raise (Injected site)

let fire_sys_error site =
  if should_fire site then
    raise (Sys_error (Printf.sprintf "injected fault at site %s" site))
