module Telemetry = Bistpath_telemetry.Telemetry

type t = {
  limited : bool;
  deadline_ns : int64;  (* absolute monotonic deadline; max_int64 = none *)
  deadline_s : float;  (* as configured, for the reason *)
  node_budget : int;  (* max_int = none *)
  leaf_budget : int;  (* max_int = none *)
  token : Cancel.t;
  mutable nodes : int;
  mutable leaves : int;
  mutable node_tick : int;  (* nodes since the last clock read *)
}

let no_deadline = Int64.max_int

let unlimited =
  {
    limited = false;
    deadline_ns = no_deadline;
    deadline_s = 0.0;
    node_budget = max_int;
    leaf_budget = max_int;
    token = Cancel.never;
    nodes = 0;
    leaves = 0;
    node_tick = 0;
  }

let create ?deadline_s ?node_budget ?leaf_budget ?cancel () =
  (match deadline_s with
  | Some s when s <= 0.0 -> invalid_arg "Budget.create: deadline_s must be > 0"
  | _ -> ());
  let check_pos what = function
    | Some n when n < 1 -> invalid_arg (Printf.sprintf "Budget.create: %s must be >= 1" what)
    | _ -> ()
  in
  check_pos "node_budget" node_budget;
  check_pos "leaf_budget" leaf_budget;
  {
    limited = true;
    deadline_ns =
      (match deadline_s with
      | None -> no_deadline
      | Some s -> Int64.add (Monotonic_clock.now ()) (Int64.of_float (s *. 1e9)));
    deadline_s = (match deadline_s with None -> 0.0 | Some s -> s);
    node_budget = (match node_budget with None -> max_int | Some n -> n);
    leaf_budget = (match leaf_budget with None -> max_int | Some n -> n);
    token = (match cancel with None -> Cancel.create () | Some c -> c);
    nodes = 0;
    leaves = 0;
    node_tick = 0;
  }

let is_unlimited t = not t.limited
let token t = t.token
let nodes t = t.nodes
let leaves t = t.leaves

let trip t reason =
  if Cancel.cancel t.token reason then begin
    Telemetry.instant "budget.trip" ~attrs:[ ("reason", Cancel.describe reason) ];
    match reason with
    | Cancel.Deadline _ -> Telemetry.incr "resilience.deadline_hits"
    | _ -> ()
  end

let check_deadline t =
  if t.deadline_ns <> no_deadline && Monotonic_clock.now () >= t.deadline_ns then
    trip t (Cancel.Deadline t.deadline_s)

(* The deadline clock is read every [deadline_stride] nodes: branch-and-
   bound nodes cost well under a microsecond, so polling each one would
   be dominated by clock_gettime. *)
let deadline_stride = 64

let node t =
  if t.limited then begin
    t.nodes <- t.nodes + 1;
    if t.nodes >= t.node_budget then trip t (Cancel.Node_budget t.node_budget);
    t.node_tick <- t.node_tick + 1;
    if t.node_tick >= deadline_stride then begin
      t.node_tick <- 0;
      check_deadline t
    end
  end

let leaf t =
  if t.limited then begin
    t.leaves <- t.leaves + 1;
    if t.leaves >= t.leaf_budget then trip t (Cancel.Leaf_budget t.leaf_budget);
    check_deadline t
  end

let should_stop t =
  t.limited
  && (Cancel.cancelled t.token
     ||
     (check_deadline t;
      Cancel.cancelled t.token))

let stop_reason t = if t.limited then Cancel.reason t.token else None
let tag t x = Outcome.of_reason x (stop_reason t)
