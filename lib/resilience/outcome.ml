type 'a t =
  | Complete of 'a
  | Degraded of 'a * Cancel.reason

let value = function Complete x | Degraded (x, _) -> x
let is_complete = function Complete _ -> true | Degraded _ -> false
let reason = function Complete _ -> None | Degraded (_, r) -> Some r
let map f = function Complete x -> Complete (f x) | Degraded (x, r) -> Degraded (f x, r)

let of_reason x = function
  | None -> Complete x
  | Some r -> Degraded (x, r)
