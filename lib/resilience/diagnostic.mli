(** Typed diagnostics with bounded accumulation.

    The DFG front ends report {e every} problem they can find — not just
    the first — as a list of typed diagnostics carrying a severity, an
    optional source location and a message, capped by a [max_errors]
    budget so a garbage input cannot produce an unbounded report. The
    legacy first-error APIs ([Dfg.validate], [Parser.parse_string],
    [Frontend.compile]) are thin wrappers that surface the first
    accumulated error with an unchanged message. *)

type severity = Error | Warning | Note

type t = {
  severity : severity;
  file : string option;
  line : int option;  (** 1-based *)
  message : string;
}

val error : ?file:string -> ?line:int -> string -> t
val warning : ?file:string -> ?line:int -> string -> t
val note : ?file:string -> ?line:int -> string -> t
val errorf : ?file:string -> ?line:int -> ('a, Format.formatter, unit, t) format4 -> 'a
val warningf : ?file:string -> ?line:int -> ('a, Format.formatter, unit, t) format4 -> 'a

val to_string : t -> string
(** ["file:3: error: ..."] / ["line 3: error: ..."] / ["error: ..."]. *)

val pp : Format.formatter -> t -> unit

val default_max_errors : int
(** 20 — the default error cap everywhere (the CLI's [--max-errors]). *)

(** {1 Accumulation} *)

type collector

val collector : ?max_errors:int -> unit -> collector
(** Errors beyond [max_errors] (default {!default_max_errors}, must be
    >= 1) are counted but not stored; warnings and notes are never
    capped. *)

val emit : collector -> t -> unit

val errors : collector -> int
(** Errors stored (capped). *)

val truncated : collector -> bool
(** At least one error was dropped by the cap. *)

val dropped : collector -> int

val all : collector -> t list
(** In emission order; if the cap dropped errors, a trailing [Note]
    saying how many. *)

val first_error : collector -> t option
(** The first error emitted, for legacy single-error interfaces. *)
