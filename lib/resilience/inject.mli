(** Deterministic fault injection for resilience testing.

    Named code sites call {!fire} (or {!should_fire} /
    {!fire_sys_error}); when the process is armed — via the
    [BISTPATH_INJECT] environment variable or {!configure} — each call
    draws from a deterministic per-site PRNG stream and fails with
    probability [p], letting tests and CI prove that the degradation
    paths (pool exception propagation, telemetry sink error handling,
    allocator unwinding) actually recover. Disarmed (the production
    default), every probe costs one atomic load and a branch.

    {b Environment}: [BISTPATH_INJECT="site[=prob][,site[=prob]...]"],
    probability in \[0,1\] defaulting to 1.0 (always fire);
    [BISTPATH_INJECT_SEED] (integer, default 0xB157) seeds the root
    generator. Example:
    [BISTPATH_INJECT="pool.worker=0.05,telemetry.write" synth ...].

    {b Determinism}: each site receives one {!Bistpath_util.Prng.split}
    child of the root generator, derived in sorted-site order, so a
    site's fire/no-fire stream depends only on the seed and the set of
    armed sites — not on configuration order. Draws within a site are
    serialized by a mutex; with several domains probing one site the
    {e assignment} of draws to callers follows scheduling, so exact-
    reproducibility experiments should either run with [jobs = 1] or
    use probability 1.0 (which never consumes a draw).

    {b Registered sites} (see {!sites}):
    - [pool.worker] — a pool task raises before running its thunk
      ([Bistpath_parallel.Pool.run], parallel path only).
    - [telemetry.write] — the trace-file sink fails with [Sys_error]
      (probed by the CLI and bench harness before
      [Telemetry.write_file]).
    - [allocator.leaf] — the BIST allocator's branch-and-bound raises at
      a complete assignment ([Bistpath_bist.Allocator.solve]).
    - [pareto.leaf] — a Pareto leaf evaluation raises
      ([Bistpath_bist.Pareto.explore]).
    - [service.journal] — a write-ahead journal append fails with
      [Sys_error] ([Bistpath_service.Journal.append]); the supervisor
      retries the append and degrades to in-memory state rather than
      crashing.
    - [service.result_io] — a per-job result-file write fails with
      [Sys_error] ([Bistpath_service.Service]); the job is retried
      with backoff like any other failure.
    - [service.worker] — job execution raises before running the
      pipeline ([Bistpath_service.Service]), modelling a crashed
      worker; the job becomes a typed failure record and is retried.
    - [check.rule] — a static-analysis rule raises as it starts
      ([Bistpath_check.Check.run]); the crash degrades to a per-rule
      CHK000 finding instead of failing the whole check run.
    - [cache.io] — a result-cache read or write fails with [Sys_error]
      ([Bistpath_cache.Store]); a failed read degrades to a miss and a
      failed write to a skipped store, both counted in
      [cache.io_errors] — the pipeline recomputes, never crashes.
    - [fleet.heartbeat] — a fleet worker's heartbeat write fails with
      [Sys_error] ([Bistpath_service.Lease.heartbeat]); the worker
      keeps running (a stale heartbeat at worst provokes a lease steal,
      which re-runs the job byte-identically).
    - [fleet.claim] — a job-claim rename fails with [Sys_error]
      ([Bistpath_service.Lease.claim]); the worker treats it as claim
      contention and retries on the next poll — the pending lease is
      never lost.
    - [rtl.parse] — the Verilog parse-back front end
      ([Bistpath_rtl.Parser.parse]) degrades to an error diagnostic
      counted in [rtl.parse_errors]; callers see unparsable input
      (exit 4 from [synth verify]), never a crash.

    Telemetry: every shot that fires increments [resilience.injected]. *)

exception Injected of string
(** Raised by {!fire}; the payload is the site name. *)

val sites : string list
(** All site names probed by the pipeline. *)

val enabled : unit -> bool
(** At least one site is armed. *)

val configure : ?seed:int -> (string * float) list -> unit
(** Arm the given sites programmatically (tests), replacing any previous
    or environment-derived configuration. [configure []] disarms. Sites
    with probability 0 are dropped. *)

val should_fire : string -> bool
(** Draw for one site; [false] when disarmed or the site is not
    configured. *)

val fire : string -> unit
(** [should_fire] and raise {!Injected} on a hit. *)

val fire_sys_error : string -> unit
(** [should_fire] and raise [Sys_error "injected fault at site <s>"] on
    a hit — for sites whose real failure mode is an I/O error. *)
