type severity = Error | Warning | Note

type t = {
  severity : severity;
  file : string option;
  line : int option;
  message : string;
}

let make severity ?file ?line message = { severity; file; line; message }
let error ?file ?line message = make Error ?file ?line message
let warning ?file ?line message = make Warning ?file ?line message
let note ?file ?line message = make Note ?file ?line message

let errorf ?file ?line fmt = Format.kasprintf (fun m -> error ?file ?line m) fmt
let warningf ?file ?line fmt = Format.kasprintf (fun m -> warning ?file ?line m) fmt

let severity_label = function Error -> "error" | Warning -> "warning" | Note -> "note"

let to_string d =
  let loc =
    match (d.file, d.line) with
    | Some f, Some l -> Printf.sprintf "%s:%d: " f l
    | Some f, None -> Printf.sprintf "%s: " f
    | None, Some l -> Printf.sprintf "line %d: " l
    | None, None -> ""
  in
  Printf.sprintf "%s%s: %s" loc (severity_label d.severity) d.message

let pp ppf d = Format.pp_print_string ppf (to_string d)

(* --- accumulation ---------------------------------------------------- *)

let default_max_errors = 20

type collector = {
  max_errors : int;
  mutable diags : t list;  (* reversed *)
  mutable n_errors : int;
  mutable dropped : int;
}

let collector ?(max_errors = default_max_errors) () =
  if max_errors < 1 then invalid_arg "Diagnostic.collector: max_errors must be >= 1";
  { max_errors; diags = []; n_errors = 0; dropped = 0 }

let emit c d =
  match d.severity with
  | Error ->
    if c.n_errors >= c.max_errors then c.dropped <- c.dropped + 1
    else begin
      c.n_errors <- c.n_errors + 1;
      c.diags <- d :: c.diags
    end
  | Warning | Note -> c.diags <- d :: c.diags

let errors c = c.n_errors
let truncated c = c.dropped > 0
let dropped c = c.dropped

let all c =
  let l = List.rev c.diags in
  if c.dropped = 0 then l
  else
    l
    @ [
        note
          (Printf.sprintf "%d more error%s not shown (raise --max-errors to see them)"
             c.dropped
             (if c.dropped = 1 then "" else "s"));
      ]

let first_error c =
  let rec last_error = function
    | [] -> None
    | d :: rest -> (
      match last_error rest with
      | Some _ as found -> found
      | None -> if d.severity = Error then Some d else None)
  in
  (* diags is reversed, so the last Error in it is the first emitted *)
  last_error c.diags
