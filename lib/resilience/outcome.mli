(** Anytime-solver results.

    Every budgeted solver returns its best-so-far answer tagged with
    whether the search ran to completion or was cut short — and if so,
    why — instead of raising or running forever. A [Degraded] value is
    still a valid solution (a correct datapath, a consistent Pareto
    front, a sound fault classification); it is merely potentially
    sub-optimal or incomplete, which the caller can surface (the CLI
    exits 3 and prints the reason). *)

type 'a t =
  | Complete of 'a  (** the search ran to its natural end *)
  | Degraded of 'a * Cancel.reason  (** best-so-far, stopped early *)

val value : 'a t -> 'a
val is_complete : 'a t -> bool
val reason : 'a t -> Cancel.reason option
val map : ('a -> 'b) -> 'a t -> 'b t

val of_reason : 'a -> Cancel.reason option -> 'a t
(** [of_reason x None = Complete x]; [of_reason x (Some r) = Degraded (x, r)]. *)
