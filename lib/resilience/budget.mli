(** Resource budgets for anytime search.

    A budget bundles a wall-clock deadline (monotonic clock, immune to
    system-time jumps) with search-node and enumeration-leaf quotas and
    a {!Cancel} token. Solvers report progress with {!node} / {!leaf}
    and poll {!should_stop}; when any quota trips, the token is
    cancelled with the corresponding {!Cancel.reason} and every party
    holding the budget (or just its token — the parallel engine's
    chunks, for instance) unwinds cooperatively, returning best-so-far
    results tagged via {!tag}.

    {!unlimited} — the default everywhere — short-circuits every
    operation to a single branch, so budgeting is zero-cost when not
    requested and budgeted runs are bit-identical to unbudgeted ones
    until a quota actually trips.

    Deadline checks are amortized: {!node} reads the clock every 64
    calls, {!leaf} and {!should_stop} on every call. Counters are
    plain mutable fields — only the owning solver should call {!node} /
    {!leaf}; worker domains must restrict themselves to {!should_stop}
    and the token (both domain-safe).

    Telemetry: the first deadline trip increments
    [resilience.deadline_hits]. *)

type t

val unlimited : t
(** Never trips; {!node}, {!leaf} and {!should_stop} cost one branch. *)

val create :
  ?deadline_s:float ->
  ?node_budget:int ->
  ?leaf_budget:int ->
  ?cancel:Cancel.t ->
  unit ->
  t
(** All quotas optional (omitted = unbounded). [deadline_s] is relative
    to now and must be positive; budgets must be >= 1
    ([Invalid_argument] otherwise). [cancel] shares an external token,
    e.g. to link several budgets to one kill switch. *)

val is_unlimited : t -> bool

val token : t -> Cancel.t
(** The token quota trips are published on ({!Cancel.never} for
    {!unlimited}). *)

val node : t -> unit
(** Count one search node against the node budget. *)

val leaf : t -> unit
(** Count one enumeration leaf against the leaf budget. *)

val should_stop : t -> bool
(** [true] once any quota has tripped or the token was cancelled
    externally. Safe to call from any domain. *)

val stop_reason : t -> Cancel.reason option

val tag : t -> 'a -> 'a Outcome.t
(** Wrap a result: [Degraded] with the stop reason if the budget
    tripped, [Complete] otherwise. *)

val nodes : t -> int
(** Nodes counted so far (0 for {!unlimited}). *)

val leaves : t -> int
