(** Cooperative cancellation tokens.

    A token is a single write-once cell shared between the party that
    decides to stop (a tripped {!Budget}, a driver handling a signal)
    and the workers that should unwind. Observing a token costs one
    atomic load, so solvers and pool workers can poll it in hot loops;
    the first cancellation reason wins and later ones are ignored.

    Tokens are domain-safe: any domain may cancel or poll. *)

(** Why a computation was asked to stop. *)
type reason =
  | Deadline of float  (** wall-clock budget, in configured seconds *)
  | Node_budget of int  (** search-node budget, configured node count *)
  | Leaf_budget of int  (** enumeration-leaf budget, configured leaves *)
  | Cancelled of string  (** external cancellation with a free-form cause *)

type t

val create : unit -> t
(** A fresh, uncancelled token. *)

val never : t
(** A shared token that is never cancelled (and must not be): the
    zero-cost default for unbudgeted runs. Calling {!cancel} on it
    raises [Invalid_argument]. *)

val cancel : t -> reason -> bool
(** Request cancellation. Returns [true] if this call set the reason,
    [false] if the token was already cancelled (first reason wins).
    Idempotent in effect either way. *)

val cancelled : t -> bool
(** One atomic load. *)

val reason : t -> reason option
(** The winning reason, if any. *)

val describe : reason -> string
(** Human-readable rendering, e.g. ["deadline of 1.50s exceeded"]. *)
