(** Self-test wrapper generation: the complete BIST architecture around
    an emitted data path.

    The wrapper sequences the test sessions chosen by the allocation: it
    resets the data path, asserts [test_mode] for a programmable number
    of clocks (one LFSR period by default), compares the signature taps
    of the session's signature-analysis registers against golden
    parameters, then moves to the next session; [done]/[pass] report the
    outcome. Golden signatures are module parameters (defaults 0) to be
    filled from an RTL simulation of the fault-free design — the wrapper
    documents this in a header comment. *)

val emit :
  ?width:int ->
  ?patterns:int ->
  ?golden:Rtl_sim.golden list ->
  Bistpath_datapath.Datapath.t ->
  Bistpath_bist.Allocator.solution ->
  Bistpath_bist.Session.t ->
  string
(** Verilog source of module [<name>_bist]; instantiate together with
    {!Verilog.primitives} and [Verilog.emit ~bist ~sessions]. [patterns]
    defaults to 2^width - 1. With [golden] (typically from
    {!Rtl_sim.golden_signatures}) the real fault-free signatures are
    baked in as the parameter defaults, making the wrapper ready to
    detect faults out of the box. *)
