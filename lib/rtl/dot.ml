module Datapath = Bistpath_datapath.Datapath
module Massign = Bistpath_dfg.Massign
module Dfg = Bistpath_dfg.Dfg
module Op = Bistpath_dfg.Op
module Resource = Bistpath_bist.Resource
module Allocator = Bistpath_bist.Allocator

let of_datapath ?bist dp =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "digraph datapath {\n  rankdir=TB;\n";
  List.iter
    (fun (r : Datapath.reg) ->
      let style =
        match bist with
        | None -> ""
        | Some (sol : Allocator.solution) -> (
          match List.assoc_opt r.rid sol.Allocator.styles with
          | Some Resource.Normal | None -> ""
          | Some s -> Printf.sprintf "\\n[%s]" (Resource.style_label s))
      in
      pf "  \"%s\" [shape=box,label=\"%s\\n{%s}%s\"%s];\n" r.rid r.rid
        (String.concat "," r.vars) style
        (if r.dedicated then ",style=dashed" else ""))
    dp.Datapath.regs;
  List.iter
    (fun (u : Massign.hw) ->
      let l, r = Datapath.unit_port_sources dp u.mid in
      if l <> [] || r <> [] then begin
        pf "  \"%s\" [shape=ellipse];\n" u.mid;
        List.iter (fun s -> pf "  \"%s\" -> \"%s\" [label=\"L\"];\n" s u.mid) l;
        List.iter (fun s -> pf "  \"%s\" -> \"%s\" [label=\"R\"];\n" s u.mid) r
      end)
    dp.Datapath.massign.Massign.units;
  List.iter
    (fun (rid, ws) ->
      List.iter
        (function
          | Datapath.From_unit mid -> pf "  \"%s\" -> \"%s\";\n" mid rid
          | Datapath.From_port v ->
            pf "  \"pin_%s\" [shape=plaintext];\n  \"pin_%s\" -> \"%s\";\n" v v rid)
        ws)
    dp.Datapath.reg_writers;
  pf "}\n";
  Buffer.contents buf

let of_dfg dfg =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "digraph dfg {\n  rankdir=TB;\n";
  for step = 1 to Dfg.num_csteps dfg do
    let ops = Dfg.ops_in_step dfg step in
    if ops <> [] then begin
      pf "  { rank=same;";
      List.iter (fun (o : Op.t) -> pf " \"%s\";" o.id) ops;
      pf " }\n"
    end
  done;
  List.iter
    (fun (o : Op.t) ->
      pf "  \"%s\" [label=\"%s (%s)\\n@%d\"];\n" o.id o.id (Op.symbol o.kind)
        (Dfg.cstep dfg o.id))
    dfg.Dfg.ops;
  List.iter
    (fun (o : Op.t) ->
      List.iter
        (fun v ->
          match Dfg.producer dfg v with
          | Some p -> pf "  \"%s\" -> \"%s\" [label=\"%s\"];\n" p.Op.id o.id v
          | None ->
            pf "  \"in_%s\" [shape=plaintext,label=\"%s\"];\n" v v;
            pf "  \"in_%s\" -> \"%s\";\n" v o.id)
        [ o.left; o.right ])
    dfg.Dfg.ops;
  List.iter
    (fun v ->
      match Dfg.producer dfg v with
      | Some p ->
        pf "  \"out_%s\" [shape=plaintext,label=\"%s\"];\n" v v;
        pf "  \"%s\" -> \"out_%s\";\n" p.Op.id v
      | None -> ())
    dfg.Dfg.outputs;
  pf "}\n";
  Buffer.contents buf
