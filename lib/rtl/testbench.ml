module Datapath = Bistpath_datapath.Datapath
module Dfg = Bistpath_dfg.Dfg
module Op = Bistpath_dfg.Op
module Eval = Bistpath_dfg.Eval
module Prng = Bistpath_util.Prng
module Listx = Bistpath_util.Listx

let sanitize = Verilog.sanitize

let used_inputs (dp : Datapath.t) =
  List.filter (fun v -> Dfg.consumers dp.Datapath.dfg v <> []) dp.Datapath.dfg.Dfg.inputs

let capture_step (dp : Datapath.t) v =
  match Dfg.producer dp.Datapath.dfg v with
  | Some op -> Dfg.cstep dp.Datapath.dfg op.Op.id
  | None -> 0

let generate ?(width = 8) ?name (dp : Datapath.t) ~vectors =
  let dut = Verilog.module_name dp in
  let tb =
    match name with
    | Some n -> Verilog.mangle n
    | None -> Verilog.mangle (dp.Datapath.dfg.Dfg.name ^ "_datapath_tb")
  in
  let ins = used_inputs dp in
  let outs = dp.Datapath.outputs in
  let steps = Dfg.num_csteps dp.Datapath.dfg in
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "`timescale 1ns/1ps\n";
  pf "module %s;\n" tb;
  pf "  reg clk = 1'b0;\n  reg rst = 1'b1;\n";
  List.iter (fun v -> pf "  reg [%d:0] pin_%s;\n" (width - 1) (sanitize v)) ins;
  List.iter (fun (v, _) -> pf "  wire [%d:0] pout_%s;\n" (width - 1) (sanitize v)) outs;
  pf "  integer errors = 0;\n\n";
  pf "  %s dut (\n    .clk(clk), .rst(rst),\n" dut;
  List.iter (fun v -> pf "    .pin_%s(pin_%s),\n" (sanitize v) (sanitize v)) ins;
  List.iteri
    (fun i (v, _) ->
      pf "    .pout_%s(pout_%s)%s\n" (sanitize v) (sanitize v)
        (if i = List.length outs - 1 then "" else ","))
    outs;
  pf "  );\n\n";
  pf "  always #5 clk = ~clk;\n\n";
  pf "  initial begin\n";
  List.iteri
    (fun vi inputs ->
      let expected = Eval.run dp.Datapath.dfg ~width ~inputs in
      pf "    // vector %d\n" vi;
      pf "    rst = 1'b1;\n";
      List.iter
        (fun v ->
          pf "    pin_%s = %d'd%d;\n" (sanitize v) width
            (List.assoc v inputs land ((1 lsl width) - 1)))
        ins;
      pf "    @(posedge clk); #1 rst = 1'b0;\n";
      List.iter
        (fun step ->
          pf "    @(posedge clk); #1;\n";
          List.iter
            (fun (v, _) ->
              if capture_step dp v = step then begin
                let e = List.assoc v expected in
                pf "    if (pout_%s !== %d'd%d) begin\n" (sanitize v) width e;
                pf "      errors = errors + 1;\n";
                pf "      $display(\"FAIL vector %d output %s: expected %d got %%0d\", pout_%s);\n"
                  vi v e (sanitize v);
                pf "    end\n"
              end)
            outs)
        (Listx.range 0 (steps + 1));
      pf "\n")
    vectors;
  pf "    if (errors == 0) $display(\"PASS: %d vectors\");\n" (List.length vectors);
  pf "    else $display(\"%%0d ERRORS\", errors);\n";
  pf "    $finish;\n";
  pf "  end\nendmodule\n";
  Buffer.contents buf

let random_vectors rng (dp : Datapath.t) ~width ~count =
  let ins = used_inputs dp in
  List.init count (fun _ ->
      List.map (fun v -> (v, Prng.int rng (1 lsl width))) ins)
