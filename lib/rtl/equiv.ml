module Datapath = Bistpath_datapath.Datapath
module Control = Bistpath_datapath.Control
module Interp = Bistpath_datapath.Interp
module Dfg = Bistpath_dfg.Dfg
module Op = Bistpath_dfg.Op
module Massign = Bistpath_dfg.Massign
module Resource = Bistpath_bist.Resource
module Allocator = Bistpath_bist.Allocator
module Session = Bistpath_bist.Session
module Ipath = Bistpath_ipath.Ipath
module Listx = Bistpath_util.Listx
module Prng = Bistpath_util.Prng
module Diagnostic = Bistpath_resilience.Diagnostic
module Telemetry = Bistpath_telemetry.Telemetry

type mismatch = {
  vector : (string * int) list;
  output : string;
  expected : int;
  actual : int;
}

type report = {
  structural : string list;
  functional : mismatch option;
  vectors_run : int;
}

(* ------------------------------------------------------------------ *)
(* Canonical netlist form                                             *)
(* ------------------------------------------------------------------ *)

(* Every combinational cone is partially evaluated per slot — a (test
   context, control step) pair — into a tree over opaque atoms: input
   ports and register instance outputs. Register instances are the only
   cells; their identity is resolved by color refinement, never by
   name. *)
type tree =
  | Pin of string
  | RegQ of int
  | RegSig of int
  | Const of int
  | Undriven
  | Op of string * tree list

type cell = {
  kind : string;  (* primitive module name *)
  cname : string;  (* representative name, messages only *)
  params : (string * int) list;  (* sorted *)
  conns : (string * tree array) list;  (* input port -> per-slot tree; sorted *)
}

type netlist = {
  nname : string;
  nin : (string * int) list;  (* input port -> width, sorted *)
  nout : (string * int) list;
  nsteps : int;
  ncontexts : (int * int) list;  (* (test_mode, test_session) *)
  cells : cell array;
  outdrv : (string * tree array) list;  (* output port -> per-slot tree *)
}

(* Session contexts are bounded so a pathological session count cannot
   make slot enumeration explode; both sides apply the same bound. *)
let max_session_contexts = 16

let contexts_of ~has_tm ~sess_bits =
  let tms = if has_tm then [ 0; 1 ] else [ 0 ] in
  let sess =
    match sess_bits with
    | None -> [ 0 ]
    | Some b ->
      List.init (min (1 lsl min b 30) max_session_contexts) (fun k -> k)
  in
  List.concat_map (fun tm -> List.map (fun k -> (tm, k)) sess) tms

(* slot enumeration: for contexts [c0; c1; ...] and steps 0..nsteps+1 *)
let slots_of ~contexts ~steps =
  List.concat_map
    (fun (tm, sess) -> List.init (steps + 2) (fun s -> (tm, sess, s)))
    contexts

let slot_describe ~contexts ~steps i =
  let per = steps + 2 in
  let tm, sess = List.nth contexts (i / per) in
  Printf.sprintf "test_mode=%d session=%d step=%d" tm sess (i mod per)

(* --- normalization ------------------------------------------------- *)

(* [lt] only occurs as the data-position comparison of a Less function;
   the emitter's zero-padded concat and guarded-division idioms collapse
   so that formatting choices never affect the canonical form. *)
let rec normalize t =
  match t with
  | Pin _ | RegQ _ | RegSig _ | Const _ | Undriven -> t
  | Op (o, ts) -> (
    let ts = List.map normalize ts in
    match (o, ts) with
    | "lt", _ -> Op ("less", ts)
    | "concat", [ Const 0; (Op ("less", _) as l) ] -> l
    | "cond", [ Op ("eq", [ r; Const 0 ]); Const _; Op ("udiv", [ l; r' ]) ]
      when r = r' ->
      Op ("div", [ l; r ])
    | _ -> Op (o, ts))

let commutative = [ "add"; "mul"; "and"; "or"; "xor" ]

let rec ser colors t =
  match t with
  | Pin p -> "p:" ^ p
  | RegQ i -> "q:" ^ colors i
  | RegSig i -> "s:" ^ colors i
  | Const c -> "c:" ^ string_of_int c
  | Undriven -> "undriven"
  | Op (o, ts) ->
    let ss = List.map (ser colors) ts in
    let ss = if List.mem o commutative then List.sort compare ss else ss in
    o ^ "(" ^ String.concat "," ss ^ ")"

let cell_signature colors c =
  String.concat "|"
    (c.kind
     :: List.map (fun (p, v) -> Printf.sprintf "%s=%d" p v) c.params
     @ List.map
         (fun (port, slots) ->
           port ^ ":"
           ^ String.concat ";"
               (Array.to_list (Array.map (ser colors) slots)))
         c.conns)

(* Weisfeiler–Leman style refinement: each register's color is the hash
   of its local signature with neighbor registers replaced by their
   previous colors. The color strings are pure functions of structure,
   so they are directly comparable across netlists. *)
let refine nl iterations =
  let n = Array.length nl.cells in
  let colors = Array.make n "0" in
  for _ = 1 to iterations do
    let get i = colors.(i) in
    let next =
      Array.map (fun c -> Digest.to_hex (Digest.string (cell_signature get c))) nl.cells
    in
    Array.blit next 0 colors 0 n
  done;
  colors

(* ------------------------------------------------------------------ *)
(* Reference netlist from the in-memory model                         *)
(* ------------------------------------------------------------------ *)

let sanitize = Verilog.sanitize

let op_name = function
  | Op.Add -> "add"
  | Op.Sub -> "sub"
  | Op.Mul -> "mul"
  | Op.Div -> "div"
  | Op.And -> "and"
  | Op.Or -> "or"
  | Op.Xor -> "xor"
  | Op.Less -> "less"

let sess_bits_of nsess =
  max 1 (int_of_float (ceil (log (float_of_int (nsess + 1)) /. log 2.0)))

let of_datapath ?(width = 8) ?bist ?sessions ?(regw = []) (dp : Datapath.t) =
  let rw rid = match List.assoc_opt rid regw with Some w -> w | None -> width in
  let dfg = dp.Datapath.dfg in
  let control = Control.build dp in
  let steps = Dfg.num_csteps dfg in
  let session_list =
    match sessions with Some (t : Session.t) -> t.Session.sessions | None -> []
  in
  let nsess = List.length session_list in
  let has_tm = bist <> None in
  let sess_bits = if nsess > 0 then Some (sess_bits_of nsess) else None in
  let contexts = contexts_of ~has_tm ~sess_bits in
  let slot_list = slots_of ~contexts ~steps in
  let nslots = List.length slot_list in
  let slot_arr = Array.of_list slot_list in
  let style_of rid =
    match bist with
    | None -> Resource.Normal
    | Some (sol : Allocator.solution) -> (
      match List.assoc_opt rid sol.Allocator.styles with
      | Some s -> s
      | None -> Resource.Normal)
  in
  let embedding_of mid =
    match bist with
    | None -> None
    | Some (sol : Allocator.solution) ->
      List.find_opt
        (fun (e : Ipath.embedding) ->
          String.equal e.Ipath.mid mid && e.Ipath.l_via = None && e.Ipath.r_via = None)
        sol.Allocator.embeddings
  in
  let session_of mid =
    let rec go k = function
      | [] -> None
      | units :: rest -> if List.mem mid units then Some k else go (k + 1) rest
    in
    go 0 session_list
  in
  let reg_index = Hashtbl.create 16 in
  List.iteri
    (fun i (r : Datapath.reg) -> Hashtbl.replace reg_index r.Datapath.rid i)
    dp.Datapath.regs;
  let idx rid = Hashtbl.find reg_index rid in
  let activity_of mid =
    List.concat_map
      (fun (s : Control.step) ->
        List.filter_map
          (fun (o : Control.unit_op) ->
            if String.equal o.Control.mid mid then
              Some (s.Control.index, (o.Control.l_select, o.Control.r_select, o.Control.f_select))
            else None)
          s.Control.ops)
      control.Control.steps
  in
  let write_schedule_of rid =
    List.concat_map
      (fun (s : Control.step) ->
        List.filter_map
          (fun (w : Control.write) ->
            if String.equal w.Control.rid rid then
              Some (s.Control.index, w.Control.source_index)
            else None)
          s.Control.writes)
      control.Control.steps
  in
  (* per-slot unit output trees, mirroring the emitted multiplexer and
     function-select chains exactly *)
  let unit_tree (tm, sess, s) (u : Massign.hw) =
    let l_srcs, r_srcs = Datapath.unit_port_sources dp u.Massign.mid in
    if l_srcs = [] && r_srcs = [] then Undriven
    else begin
      let activity = activity_of u.Massign.mid in
      let port side srcs sel_of =
        match srcs with
        | [] -> Const 0
        | [ src ] -> RegQ (idx src)
        | ss ->
          let test_idx =
            if nsess > 0 && tm = 1 then
              match (session_of u.Massign.mid, embedding_of u.Massign.mid) with
              | Some k, Some e when sess = k ->
                let tpg = if side = `L then e.Ipath.l_tpg else e.Ipath.r_tpg in
                Listx.index_of (String.equal tpg) ss
              | _ -> None
            else None
          in
          let i =
            match test_idx with
            | Some i -> i
            | None -> (
              match List.assoc_opt s activity with
              | Some sel -> sel_of sel
              | None -> 0)
          in
          RegQ (idx (List.nth ss i))
      in
      let l = port `L l_srcs (fun (ls, _, _) -> ls) in
      let r = port `R r_srcs (fun (_, rs, _) -> rs) in
      match u.Massign.kinds with
      | [ k ] -> Op (op_name k, [ l; r ])
      | kinds ->
        (* emitted chain: fsel[0] ? e0 : ... : e_last; fsel = 0 falls
           through to the last kind *)
        let fsel =
          match List.assoc_opt s activity with
          | Some (_, _, fs) -> 1 lsl fs
          | None -> 0
        in
        let rec pick i = function
          | [ k ] -> k
          | k :: rest -> if (fsel lsr i) land 1 = 1 then k else pick (i + 1) rest
          | [] -> assert false
        in
        Op (op_name (pick 0 kinds), [ l; r ])
    end
  in
  let unit_by_mid mid =
    List.find_opt
      (fun (u : Massign.hw) -> String.equal u.Massign.mid mid)
      dp.Datapath.massign.Massign.units
  in
  let cells =
    List.map
      (fun (r : Datapath.reg) ->
        let rid = r.Datapath.rid in
        let writers =
          match List.assoc_opt rid dp.Datapath.reg_writers with
          | Some ws -> ws
          | None -> []
        in
        let sched = write_schedule_of rid in
        let wsrc_tree slot = function
          | Datapath.From_port v -> Pin ("pin_" ^ sanitize v)
          | Datapath.From_unit mid -> (
            match unit_by_mid mid with
            | Some u -> unit_tree slot u
            | None -> Undriven)
        in
        let d_at ((tm, sess, s) as slot) =
          match writers with
          | [] -> Const 0
          | [ w ] -> wsrc_tree slot w
          | ws ->
            let sa_override =
              if nsess > 0 && tm = 1 && sess < nsess then
                List.find_map
                  (fun mid ->
                    match embedding_of mid with
                    | Some e when String.equal e.Ipath.sa rid ->
                      Listx.index_of (fun w -> w = Datapath.From_unit mid) ws
                    | Some _ | None -> None)
                  (List.nth session_list sess)
              else None
            in
            let sel =
              match sa_override with
              | Some i -> i
              | None -> (
                match List.assoc_opt s sched with Some src -> src | None -> 0)
            in
            wsrc_tree slot (List.nth ws sel)
        in
        let en_at (_, _, s) = Const (if List.mem_assoc s sched then 1 else 0) in
        let per f = Array.init nslots (fun i -> normalize (f slot_arr.(i))) in
        let style = style_of rid in
        let kind =
          match style with
          | Resource.Normal -> "dp_register"
          | Resource.Tpg -> "tpg_register"
          | Resource.Sa -> "sa_register"
          | Resource.Bilbo -> "bilbo_register"
          | Resource.Cbilbo -> "cbilbo_register"
        in
        let params =
          match style with
          | Resource.Normal | Resource.Sa -> [ ("WIDTH", rw rid) ]
          | Resource.Tpg | Resource.Bilbo | Resource.Cbilbo ->
            [ ("SEED", Verilog.test_seed ~width rid); ("WIDTH", width) ]
        in
        let base =
          [
            ("clk", per (fun _ -> Pin "clk"));
            ("rst", per (fun _ -> Const 0));
            ("en", per en_at);
            ("d", per d_at);
          ]
        in
        let tm_conn = ("test_mode", per (fun (tm, _, _) -> Const tm)) in
        let conns =
          match style with
          | Resource.Normal -> base
          | Resource.Tpg | Resource.Sa | Resource.Cbilbo -> tm_conn :: base
          | Resource.Bilbo ->
            let compact_sessions =
              List.concat
                (List.mapi
                   (fun k units ->
                     List.filter_map
                       (fun mid ->
                         match embedding_of mid with
                         | Some e when String.equal e.Ipath.sa rid -> Some k
                         | Some _ | None -> None)
                       units)
                   session_list)
            in
            ("compact",
             per (fun (_, sess, _) ->
                 Const (if List.mem sess compact_sessions then 1 else 0)))
            :: tm_conn :: base
        in
        {
          kind;
          cname = rid;
          params;
          conns = List.sort (fun (a, _) (b, _) -> compare a b) conns;
        })
      dp.Datapath.regs
  in
  let inputs =
    List.filter (fun v -> Dfg.consumers dfg v <> []) dfg.Dfg.inputs
  in
  let sa_regs =
    match bist with
    | None -> []
    | Some (sol : Allocator.solution) ->
      List.filter_map
        (fun (rid, style) ->
          match style with
          | Resource.Sa | Resource.Bilbo | Resource.Cbilbo -> Some rid
          | Resource.Normal | Resource.Tpg -> None)
        sol.Allocator.styles
  in
  let nin =
    [ ("clk", 1); ("rst", 1) ]
    @ (if has_tm then [ ("test_mode", 1) ] else [])
    @ (match sess_bits with Some b -> [ ("test_session", b) ] | None -> [])
    @ List.map (fun v -> ("pin_" ^ sanitize v, width)) inputs
  in
  let nout =
    List.map (fun (v, _) -> ("pout_" ^ sanitize v, width)) dp.Datapath.outputs
    @ List.map (fun rid -> ("sig_" ^ sanitize rid, width)) sa_regs
  in
  let outdrv =
    List.map
      (fun (v, rid) ->
        ("pout_" ^ sanitize v, Array.make nslots (RegQ (idx rid))))
      dp.Datapath.outputs
    @ List.map
        (fun rid -> ("sig_" ^ sanitize rid, Array.make nslots (RegSig (idx rid))))
        sa_regs
  in
  let bycol l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  {
    nname = sanitize dfg.Dfg.name ^ "_datapath";
    nin = bycol nin;
    nout = bycol nout;
    nsteps = steps;
    ncontexts = contexts;
    cells = Array.of_list cells;
    outdrv = List.sort (fun (a, _) (b, _) -> compare a b) outdrv;
  }

(* ------------------------------------------------------------------ *)
(* Elaboration of a parsed module                                     *)
(* ------------------------------------------------------------------ *)

let reg_kinds =
  [ "dp_register"; "tpg_register"; "sa_register"; "bilbo_register";
    "cbilbo_register" ]

let unit_kinds =
  [ ("dp_add", "add"); ("dp_sub", "sub"); ("dp_mul", "mul");
    ("dp_div", "div"); ("dp_and", "and"); ("dp_or", "or");
    ("dp_xor", "xor"); ("dp_less", "less") ]

let primitive_names = reg_kinds @ List.map fst unit_kinds

type driver =
  | Dassign of Parser.expr
  | Dq of int  (* q of register instance i *)
  | Dsig of int  (* sig_out of register instance i *)
  | Dunit of int  (* y of unit instance i *)

type unit_inst = { uop : string; uwidth : int; ua : Parser.expr; ub : Parser.expr }

type ecell = {
  ekind : string;
  einst : string;
  eparams : (string * int) list;
  econns : (string * Parser.expr) list;  (* input connections *)
}

type elab = {
  ename : string;
  ein : (string * int) list;
  eout : (string * int) list;
  esteps : int;
  stepvar : string;
  always_body : Parser.stmt;
  localparams : (string * int) list;
  widths : (string * int) list;
  drivers : (string, driver) Hashtbl.t;
  units : unit_inst array;
  ecells : ecell array;
  has_tm : bool;
  sess_bits : int option;
}

let binop_name : Parser.binop -> string = function
  | Parser.Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "udiv"
  | Mod -> "umod" | Band -> "and" | Bor -> "or" | Bxor -> "xor"
  | Land -> "land" | Lor -> "lor" | Eq -> "eq" | Neq -> "neq"
  | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"
  | Shl -> "shl" | Shr -> "shr"

let unop_name : Parser.unop -> string = function
  | Parser.Bnot -> "bnot" | Lnot -> "lnot" | Rxor -> "rxor" | Neg -> "neg"

let num_binop (op : Parser.binop) a b =
  match op with
  | Parser.Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Mod -> if b = 0 then 0 else a mod b
  | Band -> a land b
  | Bor -> a lor b
  | Bxor -> a lxor b
  | Land -> if a <> 0 && b <> 0 then 1 else 0
  | Lor -> if a <> 0 || b <> 0 then 1 else 0
  | Eq -> if a = b then 1 else 0
  | Neq -> if a <> b then 1 else 0
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0
  | Gt -> if a > b then 1 else 0
  | Ge -> if a >= b then 1 else 0
  | Shl -> a lsl min b 62
  | Shr -> a lsr min b 62

let num_unop (op : Parser.unop) a =
  match op with
  | Parser.Bnot -> lnot a
  | Lnot -> if a = 0 then 1 else 0
  | Rxor ->
    let rec parity acc v = if v = 0 then acc else parity (acc lxor (v land 1)) (v lsr 1) in
    parity 0 a
  | Neg -> -a

type value = VNum of int | VTree of tree

let tree_of = function VNum n -> Const n | VTree t -> t

(* Generic expression evaluation over a name-resolution function.
   Numeric operands fold; anything touching an opaque atom becomes a
   tree. Conditionals are lazy on numeric conditions, which is what
   makes the emitted division guard safe to evaluate. *)
let rec eval_expr lookup (e : Parser.expr) : value =
  match e with
  | Parser.Ident n -> lookup n
  | Parser.Num (_, v) -> VNum v
  | Parser.Str _ -> VTree Undriven
  | Parser.Unop (op, a) -> (
    match eval_expr lookup a with
    | VNum v -> VNum (num_unop op v)
    | VTree t -> VTree (Op (unop_name op, [ t ])))
  | Parser.Binop (op, a, b) -> (
    match (eval_expr lookup a, eval_expr lookup b) with
    | VNum x, VNum y -> VNum (num_binop op x y)
    | va, vb -> VTree (Op (binop_name op, [ tree_of va; tree_of vb ])))
  | Parser.Cond (c, t, f) -> (
    match eval_expr lookup c with
    | VNum 0 -> eval_expr lookup f
    | VNum _ -> eval_expr lookup t
    | VTree ct ->
      VTree
        (Op
           ( "cond",
             [ ct; tree_of (eval_expr lookup t); tree_of (eval_expr lookup f) ] )))
  | Parser.Concat es ->
    let parts = List.map (fun e -> (e, eval_expr lookup e)) es in
    let numeric =
      List.for_all
        (fun (e, v) ->
          match (e, v) with Parser.Num (Some _, _), VNum _ -> true | _ -> false)
        parts
    in
    if numeric then
      VNum
        (List.fold_left
           (fun acc (e, v) ->
             match (e, v) with
             | Parser.Num (Some w, _), VNum v -> (acc lsl w) lor v
             | _ -> acc)
           0 parts)
    else VTree (Op ("concat", List.map (fun (_, v) -> tree_of v) parts))
  | Parser.Repl (c, e) -> (
    match (eval_expr lookup c, e) with
    | VNum n, Parser.Num (Some w, v) when n >= 0 && n * w <= 62 ->
      let rec go acc i = if i = 0 then acc else go ((acc lsl w) lor v) (i - 1) in
      VNum (go 0 n)
    | vc, _ ->
      VTree (Op ("repl", [ tree_of vc; tree_of (eval_expr lookup e) ])))
  | Parser.Index (e, i) -> (
    match (eval_expr lookup e, eval_expr lookup i) with
    | VNum v, VNum i -> VNum ((v lsr max i 0) land 1)
    | ve, vi -> VTree (Op ("index", [ tree_of ve; tree_of vi ])))
  | Parser.Range (e, m, l) -> (
    match (eval_expr lookup e, eval_expr lookup m, eval_expr lookup l) with
    | VNum v, VNum m, VNum l when m >= l ->
      VNum ((v lsr l) land ((1 lsl min (m - l + 1) 62) - 1))
    | ve, vm, vl ->
      VTree (Op ("range", [ tree_of ve; tree_of vm; tree_of vl ])))

let const_eval localparams e =
  let lookup n =
    match List.assoc_opt n localparams with
    | Some v -> VNum v
    | None -> VTree Undriven
  in
  match eval_expr lookup e with VNum n -> Some n | VTree _ -> None

(* Statement execution over numeric state: returns the nonblocking
   assignments the body performs, or None if control flow depends on
   something non-numeric (which the emitted step counter never does). *)
let exec_stmts lookup body =
  let exception Symbolic in
  let rec exec acc (s : Parser.stmt) =
    match s with
    | Parser.Block ss -> List.fold_left exec acc ss
    | Parser.Nop -> acc
    | Parser.If (c, t, f) -> (
      match eval_expr lookup c with
      | VNum 0 -> ( match f with Some f -> exec acc f | None -> acc)
      | VNum _ -> exec acc t
      | VTree _ -> raise Symbolic)
    | Parser.Case (scrut, arms, dflt) -> (
      match eval_expr lookup scrut with
      | VTree _ -> raise Symbolic
      | VNum v -> (
        let arm =
          List.find_opt
            (fun (labels, _) ->
              List.exists
                (fun l ->
                  match eval_expr lookup l with VNum x -> x = v | VTree _ -> false)
                labels)
            arms
        in
        match (arm, dflt) with
        | Some (_, s), _ -> exec acc s
        | None, Some d -> exec acc d
        | None, None -> acc))
    | Parser.Nonblocking (n, e) | Parser.Blocking (n, e) -> (
      match eval_expr lookup e with
      | VNum v -> (n, v) :: List.remove_assoc n acc
      | VTree _ -> raise Symbolic)
    | Parser.Sys _ -> acc
    | Parser.Timing _ -> raise Symbolic
  in
  try Some (exec [] body) with Symbolic -> None

let rec stmt_targets acc (s : Parser.stmt) =
  match s with
  | Parser.Block ss -> List.fold_left stmt_targets acc ss
  | Parser.If (_, t, f) -> (
    let acc = stmt_targets acc t in
    match f with Some f -> stmt_targets acc f | None -> acc)
  | Parser.Case (_, arms, dflt) -> (
    let acc = List.fold_left (fun acc (_, s) -> stmt_targets acc s) acc arms in
    match dflt with Some d -> stmt_targets acc d | None -> acc)
  | Parser.Nonblocking (n, _) | Parser.Blocking (n, _) ->
    if List.mem n acc then acc else n :: acc
  | Parser.Timing (Some s) -> stmt_targets acc s
  | Parser.Sys _ | Parser.Timing None | Parser.Nop -> acc

let pick_datapath (p : Parser.t) =
  let candidates =
    List.filter
      (fun (m : Parser.module_) -> not (List.mem m.Parser.name primitive_names))
      p.Parser.modules
  in
  match candidates with
  | [ m ] -> Ok m
  | [] -> Error [ "no datapath module found in the RTL input" ]
  | ms -> (
    match
      List.filter
        (fun (m : Parser.module_) ->
          String.length m.Parser.name >= 9
          && String.ends_with ~suffix:"_datapath" m.Parser.name)
        ms
    with
    | [ m ] -> Ok m
    | _ ->
      Error
        [
          Printf.sprintf "ambiguous datapath module: candidates %s"
            (String.concat ", " (List.map (fun (m : Parser.module_) -> m.Parser.name) ms));
        ])

let elaborate (m : Parser.module_) : (elab, string list) result =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let localparams = ref [] in
  let widths = ref [] in
  let regs_declared = ref [] in
  let drivers : (string, driver) Hashtbl.t = Hashtbl.create 64 in
  let set_driver name d =
    if Hashtbl.mem drivers name then err "multiple drivers for %s" name
    else Hashtbl.replace drivers name d
  in
  let width_of_range = function
    | None -> Some 1
    | Some (m, l) -> (
      match (const_eval !localparams m, const_eval !localparams l) with
      | Some m, Some l when m >= l -> Some (m - l + 1)
      | _ -> None)
  in
  let ports_in = ref [] and ports_out = ref [] in
  List.iter
    (fun (p : Parser.port) ->
      match width_of_range p.Parser.prange with
      | None -> err "port %s: non-constant range" p.Parser.pname
      | Some w ->
        widths := (p.Parser.pname, w) :: !widths;
        if p.Parser.dir = Parser.Input then
          ports_in := (p.Parser.pname, w) :: !ports_in
        else ports_out := (p.Parser.pname, w) :: !ports_out)
    m.Parser.ports;
  let cells = ref [] and units = ref [] in
  let ncells = ref 0 and nunits = ref 0 in
  let always = ref [] in
  List.iter
    (fun (item : Parser.item) ->
      match item with
      | Parser.Decl { dreg; drange; names; _ } ->
        let w = match width_of_range drange with Some w -> w | None -> 1 in
        List.iter
          (fun (n, init) ->
            widths := (n, w) :: !widths;
            if dreg then begin
              regs_declared := n :: !regs_declared;
              if init <> None then err "unsupported reg initializer on %s" n
            end
            else
              (* `wire x = e;` is declaration plus continuous assign *)
              match init with
              | Some e -> set_driver n (Dassign e)
              | None -> ())
          names
      | Parser.Assign { lhs; rhs; _ } -> set_driver lhs (Dassign rhs)
      | Parser.Localparam { name; value; _ } -> (
        match const_eval !localparams value with
        | Some v -> localparams := (name, v) :: !localparams
        | None -> err "localparam %s: non-constant value" name)
      | Parser.Always { trigger; body; _ } -> always := (trigger, body) :: !always
      | Parser.Initial _ -> err "unsupported initial block in datapath module"
      | Parser.Instance { module_name; params; instance_name; conns; _ } ->
        let eparams =
          List.filter_map
            (fun (p, e) ->
              match const_eval !localparams e with
              | Some v -> Some (p, v)
              | None ->
                err "instance %s: non-constant parameter %s" instance_name p;
                None)
            params
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        if List.mem module_name reg_kinds then begin
          let i = !ncells in
          incr ncells;
          let inputs =
            List.filter
              (fun (port, conn) ->
                match port with
                | "q" | "sig_out" -> (
                  match conn with
                  | Parser.Ident w ->
                    set_driver w (if port = "q" then Dq i else Dsig i);
                    false
                  | _ ->
                    err "instance %s: output port %s must connect a plain wire"
                      instance_name port;
                    false)
                | _ -> true)
              conns
          in
          cells :=
            {
              ekind = module_name;
              einst = instance_name;
              eparams;
              econns = List.sort (fun (a, _) (b, _) -> compare a b) inputs;
            }
            :: !cells
        end
        else begin
          match List.assoc_opt module_name unit_kinds with
          | Some op ->
            let j = !nunits in
            incr nunits;
            let get p = List.assoc_opt p conns in
            (match get "y" with
            | Some (Parser.Ident w) -> set_driver w (Dunit j)
            | Some _ | None -> err "instance %s: missing wire on port y" instance_name);
            let arg p =
              match get p with
              | Some e -> e
              | None ->
                err "instance %s: missing port %s" instance_name p;
                Parser.Num (None, 0)
            in
            let uwidth =
              match List.assoc_opt "WIDTH" eparams with Some w -> w | None -> 8
            in
            units := { uop = op; uwidth; ua = arg "a"; ub = arg "b" } :: !units
          | None -> err "unknown instance module %s (%s)" module_name instance_name
        end)
    m.Parser.items;
  (* step counter: exactly one posedge always block driving one reg *)
  let stepvar, body =
    match !always with
    | [ (Parser.Posedge clk, body) ] ->
      if clk <> "clk" then err "always block not clocked by clk";
      (match stmt_targets [] body with
      | [ v ] ->
        if not (List.mem v !regs_declared) then
          err "step counter %s is not a declared reg" v;
        (v, body)
      | vs ->
        err "expected exactly one always-block register, found %d" (List.length vs);
        ("step", body))
    | [] ->
      err "no always block (step counter) found";
      ("step", Parser.Nop)
    | (Parser.Delay _, _) :: _ | (Parser.Star, _) :: _ ->
      err "unsupported always trigger in datapath module";
      ("step", Parser.Nop)
    | _ :: _ :: _ ->
      err "expected exactly one always block, found %d" (List.length !always);
      ("step", Parser.Nop)
  in
  let esteps =
    match List.assoc_opt "NUM_STEPS" !localparams with
    | Some n -> n
    | None ->
      err "missing NUM_STEPS localparam";
      0
  in
  (* verify the counter's update rule: rst forces 0, otherwise count to
     saturation at NUM_STEPS + 1 *)
  if !errs = [] then begin
    let check rst s expect =
      let lookup n =
        if n = stepvar then VNum s
        else if n = "rst" then VNum rst
        else
          match List.assoc_opt n !localparams with
          | Some v -> VNum v
          | None -> VTree Undriven
      in
      let got =
        match exec_stmts lookup body with
        | None -> None
        | Some [] -> Some s  (* no assignment: holds value *)
        | Some [ (v, x) ] when v = stepvar -> Some x
        | Some _ -> None
      in
      if got <> Some expect then
        err "step counter diverges at rst=%d step=%d (expected %d)" rst s expect
    in
    for s = 0 to esteps + 1 do
      check 1 s 0;
      check 0 s (if s <= esteps then s + 1 else s)
    done
  end;
  match !errs with
  | [] ->
    let ein = List.sort (fun (a, _) (b, _) -> compare a b) !ports_in in
    Ok
      {
        ename = m.Parser.name;
        ein;
        eout = List.sort (fun (a, _) (b, _) -> compare a b) !ports_out;
        esteps;
        stepvar;
        always_body = body;
        localparams = !localparams;
        widths = !widths;
        drivers;
        units = Array.of_list (List.rev !units);
        ecells = Array.of_list (List.rev !cells);
        has_tm = List.mem_assoc "test_mode" ein;
        sess_bits = List.assoc_opt "test_session" ein;
      }
  | errs -> Error (List.rev errs)

(* --- per-slot symbolic evaluation of an elaborated module ----------- *)

let slot_values (e : elab) (tm, sess, s) =
  let memo : (string, value option) Hashtbl.t = Hashtbl.create 64 in
  let rec wire name =
    match Hashtbl.find_opt memo name with
    | Some (Some v) -> v
    | Some None -> VTree Undriven (* combinational cycle *)
    | None ->
      Hashtbl.replace memo name None;
      let v = compute name in
      Hashtbl.replace memo name (Some v);
      v
  and compute name =
    if name = e.stepvar then VNum s
    else if name = "rst" then VNum 0
    else if name = "test_mode" then VNum tm
    else if name = "test_session" then VNum sess
    else
      match List.assoc_opt name e.localparams with
      | Some v -> VNum v
      | None -> (
        match Hashtbl.find_opt e.drivers name with
        | Some (Dassign ex) -> eval_expr wire ex
        | Some (Dq i) -> VTree (RegQ i)
        | Some (Dsig i) -> VTree (RegSig i)
        | Some (Dunit j) ->
          let u = e.units.(j) in
          VTree
            (Op
               ( u.uop,
                 [
                   tree_of (eval_expr wire u.ua); tree_of (eval_expr wire u.ub);
                 ] ))
        | None ->
          if List.mem_assoc name e.ein then VTree (Pin name) else VTree Undriven)
  in
  (wire, fun ex -> eval_expr wire ex)

let netlist_of_elab (e : elab) =
  let contexts = contexts_of ~has_tm:e.has_tm ~sess_bits:e.sess_bits in
  let slot_list = slots_of ~contexts ~steps:e.esteps in
  let slot_arr = Array.of_list slot_list in
  let nslots = Array.length slot_arr in
  let cells =
    Array.map
      (fun (c : ecell) ->
        {
          kind = c.ekind;
          cname = c.einst;
          params = c.eparams;
          conns =
            List.map
              (fun (port, ex) ->
                ( port,
                  Array.init nslots (fun i ->
                      let _, evale = slot_values e slot_arr.(i) in
                      normalize (tree_of (evale ex))) ))
              c.econns;
        })
      e.ecells
  in
  let outdrv =
    List.map
      (fun (port, _) ->
        ( port,
          Array.init nslots (fun i ->
              let wire, _ = slot_values e slot_arr.(i) in
              normalize (tree_of (wire port))) ))
      e.eout
  in
  {
    nname = e.ename;
    nin = e.ein;
    nout = e.eout;
    nsteps = e.esteps;
    ncontexts = contexts;
    cells;
    outdrv;
  }

(* ------------------------------------------------------------------ *)
(* Comparison                                                         *)
(* ------------------------------------------------------------------ *)

let max_diffs = 24

let truncate_str n s = if String.length s <= n then s else String.sub s 0 n ^ "…"

let compare_netlists ~a_label ~b_label (a : netlist) (b : netlist) =
  let diffs = ref [] and count = ref 0 in
  let diff fmt =
    Printf.ksprintf
      (fun s ->
        incr count;
        if !count <= max_diffs then diffs := s :: !diffs
        else if !count = max_diffs + 1 then diffs := "… (more differences omitted)" :: !diffs)
      fmt
  in
  let compare_ports what pa pb =
    List.iter
      (fun (p, w) ->
        match List.assoc_opt p pb with
        | None -> diff "%s port %s missing in %s" what p b_label
        | Some w' when w' <> w ->
          diff "%s port %s: width %d in %s vs %d in %s" what p w a_label w' b_label
        | Some _ -> ())
      pa;
    List.iter
      (fun (p, _) ->
        if not (List.mem_assoc p pa) then
          diff "unexpected %s port %s in %s" what p b_label)
      pb
  in
  if a.nname <> b.nname then
    diff "module name: %s in %s vs %s in %s" a.nname a_label b.nname b_label;
  compare_ports "input" a.nin b.nin;
  compare_ports "output" a.nout b.nout;
  if a.nsteps <> b.nsteps then
    diff "NUM_STEPS: %d in %s vs %d in %s" a.nsteps a_label b.nsteps b_label;
  if a.ncontexts <> b.ncontexts then
    diff "test contexts differ (%d in %s vs %d in %s)"
      (List.length a.ncontexts) a_label (List.length b.ncontexts) b_label;
  if !diffs <> [] then List.rev !diffs
  else begin
    (* interfaces agree, so slots align: match registers by refinement *)
    if Array.length a.cells <> Array.length b.cells then
      diff "register count: %d in %s vs %d in %s"
        (Array.length a.cells) a_label (Array.length b.cells) b_label;
    let k = max (Array.length a.cells) (Array.length b.cells) + 1 in
    let ca = refine a k and cb = refine b k in
    let tagged colors (nl : netlist) =
      List.sort compare
        (Array.to_list
           (Array.mapi (fun i (c : cell) -> (colors.(i), c.cname, c.kind)) nl.cells))
    in
    let rec walk xs ys =
      match (xs, ys) with
      | [], [] -> ()
      | (c1, n1, k1) :: xs', ys' when ys' = [] || c1 < (match ys' with (c2, _, _) :: _ -> c2 | [] -> "") ->
        diff "register %s (%s) in %s has no structural counterpart in %s" n1 k1
          a_label b_label;
        walk xs' ys'
      | xs', (c2, n2, k2) :: ys' when xs' = [] || c2 < (match xs' with (c1, _, _) :: _ -> c1 | [] -> "") ->
        diff "register %s (%s) in %s has no structural counterpart in %s" n2 k2
          b_label a_label;
        walk xs' ys'
      | _ :: xs', _ :: ys' -> walk xs' ys'
      | _ -> ()
    in
    walk (tagged ca a) (tagged cb b);
    let steps = a.nsteps in
    List.iter
      (fun (port, sa) ->
        match List.assoc_opt port b.outdrv with
        | None -> diff "output %s is undriven in %s" port b_label
        | Some sb ->
          let n = min (Array.length sa) (Array.length sb) in
          let rec first i =
            if i >= n then None
            else
              let s1 = ser (fun j -> ca.(j)) sa.(i)
              and s2 = ser (fun j -> cb.(j)) sb.(i) in
              if s1 <> s2 then Some (i, s1, s2) else first (i + 1)
          in
          (match first 0 with
          | None -> ()
          | Some (i, s1, s2) ->
            diff "output %s differs at %s: %s vs %s" port
              (slot_describe ~contexts:a.ncontexts ~steps i)
              (truncate_str 48 s1) (truncate_str 48 s2)))
      a.outdrv;
    List.rev !diffs
  end

(* ------------------------------------------------------------------ *)
(* Functional simulation of the parsed AST                            *)
(* ------------------------------------------------------------------ *)

let op_eval ~width op a b =
  let mask = (1 lsl width) - 1 in
  match op with
  | "add" -> Op.eval Op.Add ~width a b
  | "sub" -> Op.eval Op.Sub ~width a b
  | "mul" -> Op.eval Op.Mul ~width a b
  | "div" -> Op.eval Op.Div ~width a b
  | "and" -> Op.eval Op.And ~width a b
  | "or" -> Op.eval Op.Or ~width a b
  | "xor" -> Op.eval Op.Xor ~width a b
  | "less" -> Op.eval Op.Less ~width a b
  | _ -> 0 land mask

(* One functional-mode run (test_mode = 0): reset, then num_steps + 1
   cycles following the testbench timing convention — outputs whose
   producing operation completes at control step [c] are sampled right
   after cycle [c]'s latch. Register primitives follow their builtin
   functional semantics (reset to 0 or SEED, latch d when enabled). *)
let simulate (e : elab) ~pin_env ~capture =
  let cellw =
    Array.map
      (fun c -> match List.assoc_opt "WIDTH" c.eparams with Some w -> w | None -> 8)
      e.ecells
  in
  let q =
    Array.mapi
      (fun i (c : ecell) ->
        let mask = (1 lsl cellw.(i)) - 1 in
        match c.ekind with
        | "tpg_register" | "bilbo_register" | "cbilbo_register" -> (
          match List.assoc_opt "SEED" c.eparams with
          | Some s -> s land mask
          | None -> 1)
        | _ -> 0)
      e.ecells
  in
  let wirew name =
    match List.assoc_opt name e.widths with Some w -> w | None -> 62
  in
  let step = ref 0 in
  let results = Hashtbl.create 8 in
  let cycle_values () =
    let memo : (string, int option) Hashtbl.t = Hashtbl.create 64 in
    let rec wire name =
      match Hashtbl.find_opt memo name with
      | Some (Some v) -> v
      | Some None -> 0 (* combinational cycle: structural pass reports it *)
      | None ->
        Hashtbl.replace memo name None;
        let v = compute name land ((1 lsl min (wirew name) 62) - 1) in
        Hashtbl.replace memo name (Some v);
        v
    and lookup name : value = VNum (wire name)
    and compute name =
      if name = e.stepvar then !step
      else if name = "rst" || name = "test_mode" || name = "test_session" then 0
      else if name = "clk" then 0
      else
        match List.assoc_opt name e.localparams with
        | Some v -> v
        | None -> (
          match Hashtbl.find_opt e.drivers name with
          | Some (Dassign ex) -> (
            match eval_expr lookup ex with VNum v -> v | VTree _ -> 0)
          | Some (Dq i) -> q.(i)
          | Some (Dsig _) -> 0
          | Some (Dunit j) ->
            let u = e.units.(j) in
            let ev ex =
              match eval_expr lookup ex with VNum v -> v | VTree _ -> 0
            in
            op_eval ~width:u.uwidth u.uop (ev u.ua) (ev u.ub)
          | None -> ( match List.assoc_opt name pin_env with Some v -> v | None -> 0))
    in
    wire
  in
  let steps = e.esteps in
  for c = 0 to steps do
    let wire = cycle_values () in
    (* latch phase: functional mode is plain enable-latch for every kind *)
    let updates =
      Array.mapi
        (fun i (cell : ecell) ->
          let conn p =
            match List.assoc_opt p cell.econns with
            | Some ex -> (
              match eval_expr (fun n -> VNum (wire n)) ex with
              | VNum v -> v
              | VTree _ -> 0)
            | None -> 0
          in
          let mask = (1 lsl cellw.(i)) - 1 in
          if conn "en" <> 0 then conn "d" land mask else q.(i))
        e.ecells
    in
    let next_step =
      let lookup n =
        if n = e.stepvar then VNum !step
        else if n = "rst" then VNum 0
        else
          match List.assoc_opt n e.localparams with
          | Some v -> VNum v
          | None -> VNum (wire n)
      in
      match exec_stmts lookup e.always_body with
      | Some [ (v, x) ] when v = e.stepvar -> x
      | Some _ | None -> !step
    in
    Array.blit updates 0 q 0 (Array.length q);
    step := next_step;
    (* capture phase: sample outputs due at this control step *)
    let wire = cycle_values () in
    List.iter
      (fun (port, at) -> if at = c then Hashtbl.replace results port (wire port))
      capture
  done;
  results

(* ------------------------------------------------------------------ *)
(* Public entry points                                                *)
(* ------------------------------------------------------------------ *)

let capture_step (dp : Datapath.t) v =
  match Dfg.producer dp.Datapath.dfg v with
  | Some op -> Dfg.cstep dp.Datapath.dfg op.Op.id
  | None -> 0

let cross_check (e : elab) (dp : Datapath.t) ~width ~vectors ~seed =
  let rng = Prng.create seed in
  let dfg = dp.Datapath.dfg in
  let capture =
    List.map
      (fun (v, _) -> ("pout_" ^ sanitize v, capture_step dp v))
      dp.Datapath.outputs
  in
  let rec go i =
    if i >= vectors then (None, i)
    else begin
      let inputs =
        List.map (fun v -> (v, Prng.int rng (1 lsl width))) dfg.Dfg.inputs
      in
      let expected, _ = Interp.run dp ~width ~inputs in
      let pin_env =
        List.map (fun (v, x) -> ("pin_" ^ sanitize v, x)) inputs
      in
      let results = simulate e ~pin_env ~capture in
      let bad =
        List.find_map
          (fun (v, _) ->
            let port = "pout_" ^ sanitize v in
            match (List.assoc_opt v expected, Hashtbl.find_opt results port) with
            | Some exp, Some act when exp <> act ->
              Some { vector = inputs; output = v; expected = exp; actual = act }
            | _ -> None)
          dp.Datapath.outputs
      in
      match bad with Some m -> (Some m, i + 1) | None -> go (i + 1)
    end
  in
  go 0

let verify ?(vectors = 16) ?(seed = 7) ?(width = 8) ?bist ?sessions ?(regw = []) ~rtl dp =
  let t0 = Telemetry.now () in
  let finish r =
    Telemetry.observe "rtl.verify_ns" (Int64.to_int (Int64.sub (Telemetry.now ()) t0));
    r
  in
  let parsed = Parser.parse rtl in
  match Parser.errors parsed with
  | _ :: _ as errs -> finish (Error errs)
  | [] ->
    let reference = of_datapath ~width ?bist ?sessions ~regw dp in
    let elab_result =
      match pick_datapath parsed with
      | Error diffs -> Error diffs
      | Ok m -> elaborate m
    in
    finish
      (Ok
         (match elab_result with
         | Error diffs -> { structural = diffs; functional = None; vectors_run = 0 }
         | Ok e ->
           let structural =
             compare_netlists ~a_label:"model" ~b_label:"rtl" reference
               (netlist_of_elab e)
           in
           let functional, vectors_run =
             if vectors > 0 then cross_check e dp ~width ~vectors ~seed
             else (None, 0)
           in
           { structural; functional; vectors_run }))

(* --- golden drift -------------------------------------------------- *)

let strip_item (it : Parser.item) : Parser.item =
  match it with
  | Parser.Decl d -> Parser.Decl { d with dline = 0 }
  | Parser.Assign a -> Parser.Assign { a with aline = 0 }
  | Parser.Localparam l -> Parser.Localparam { l with lline = 0 }
  | Parser.Always a -> Parser.Always { a with bline = 0 }
  | Parser.Initial _ -> it
  | Parser.Instance i -> Parser.Instance { i with iline = 0 }

let strip_module (m : Parser.module_) : Parser.module_ =
  {
    m with
    mline = 0;
    ports = List.map (fun (p : Parser.port) -> { p with Parser.pline = 0 }) m.Parser.ports;
    items = List.map strip_item m.Parser.items;
  }

let drift ~golden ~current =
  let pg = Parser.parse ~file:"golden" golden in
  let pc = Parser.parse ~file:"current" current in
  match (Parser.errors pg, Parser.errors pc) with
  | ([] as _eg), [] -> (
    let diffs = ref [] in
    let add s = diffs := s :: !diffs in
    let support (p : Parser.t) (dp : Parser.module_) =
      List.filter (fun (m : Parser.module_) -> m != dp) p.Parser.modules
    in
    match (pick_datapath pg, pick_datapath pc) with
    | Error eg, _ -> Ok (List.map (fun s -> "golden: " ^ s) eg)
    | _, Error ec -> Ok (List.map (fun s -> "current: " ^ s) ec)
    | Ok mg, Ok mc ->
      let structural =
        match (elaborate mg, elaborate mc) with
        | Error eg, _ -> List.map (fun s -> "golden: " ^ s) eg
        | _, Error ec -> List.map (fun s -> "current: " ^ s) ec
        | Ok eg, Ok ec ->
          compare_netlists ~a_label:"golden" ~b_label:"current"
            (netlist_of_elab eg) (netlist_of_elab ec)
      in
      List.iter add structural;
      let sg = support pg mg and sc = support pc mc in
      List.iter
        (fun (m : Parser.module_) ->
          match
            List.find_opt
              (fun (m' : Parser.module_) -> m'.Parser.name = m.Parser.name)
              sc
          with
          | None -> add (Printf.sprintf "support module %s removed" m.Parser.name)
          | Some m' ->
            if strip_module m <> strip_module m' then
              add (Printf.sprintf "support module %s changed" m.Parser.name))
        sg;
      List.iter
        (fun (m : Parser.module_) ->
          if
            not
              (List.exists
                 (fun (m' : Parser.module_) -> m'.Parser.name = m.Parser.name)
                 sg)
          then add (Printf.sprintf "support module %s added" m.Parser.name))
        sc;
      Ok (List.rev !diffs))
  | eg, ec -> Error (eg @ ec)
