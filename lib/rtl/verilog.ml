module Datapath = Bistpath_datapath.Datapath
module Massign = Bistpath_dfg.Massign
module Dfg = Bistpath_dfg.Dfg
module Op = Bistpath_dfg.Op
module Resource = Bistpath_bist.Resource
module Allocator = Bistpath_bist.Allocator
module Session = Bistpath_bist.Session
module Ipath = Bistpath_ipath.Ipath

(* Hex-escaping keeps the map injective for names that differ only in
   their punctuation (greedy module binders name units "*1", "+1", ...,
   which a collapse-to-underscore map would merge into one wire). *)
let sanitize name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | c -> Buffer.add_string buf (Printf.sprintf "_%02x" (Char.code c)))
    name;
  Buffer.contents buf

(* Verilog-2001 reserved words a sanitized netlist name could collide
   with when used bare (instance or module names). *)
let keywords =
  [ "always"; "and"; "assign"; "begin"; "buf"; "case"; "casex"; "casez";
    "default"; "defparam"; "disable"; "edge"; "else"; "end"; "endcase";
    "endfunction"; "endgenerate"; "endmodule"; "endtask"; "for"; "forever";
    "function"; "generate"; "genvar"; "if"; "initial"; "inout"; "input";
    "integer"; "localparam"; "module"; "nand"; "negedge"; "nor"; "not";
    "or"; "output"; "parameter"; "posedge"; "real"; "reg"; "repeat";
    "signed"; "task"; "time"; "tri"; "wait"; "while"; "wire"; "xnor"; "xor" ]

(* Escaped-identifier form for names that are not legal bare Verilog
   identifiers (reserved words, leading digit). The trailing space is
   part of the escaped-identifier syntax. *)
let escape s =
  let s = if s = "" then "_" else s in
  let digit_lead = match s.[0] with '0' .. '9' -> true | _ -> false in
  if digit_lead || List.mem s keywords then "\\" ^ s ^ " " else s

let mangle name = escape (sanitize name)

let module_name (dp : Datapath.t) =
  escape (sanitize dp.Datapath.dfg.Bistpath_dfg.Dfg.name ^ "_datapath")

let unit_module (u : Massign.hw) =
  match u.kinds with
  | [ Op.Add ] -> "dp_add"
  | [ Op.Sub ] -> "dp_sub"
  | [ Op.Mul ] -> "dp_mul"
  | [ Op.Div ] -> "dp_div"
  | [ Op.And ] -> "dp_and"
  | [ Op.Or ] -> "dp_or"
  | [ Op.Xor ] -> "dp_xor"
  | [ Op.Less ] -> "dp_less"
  | _ -> "dp_alu"

(* Distinct non-zero LFSR reset seed per register: identically seeded
   generators would feed correlated (even identical) streams into the
   units under test — a subtractor reading two same-seed TPGs would see
   x - x = 0 forever. *)
let test_seed ~width rid =
  let mask = (1 lsl width) - 1 in
  match Hashtbl.hash rid land mask with 0 -> 1 | s -> s

let reg_module = function
  | Resource.Normal -> "dp_register"
  | Resource.Tpg -> "tpg_register"
  | Resource.Sa -> "sa_register"
  | Resource.Bilbo -> "bilbo_register"
  | Resource.Cbilbo -> "cbilbo_register"

let emit ?(width = 8) ?bist ?sessions ?(regw = []) ?(unitw = []) dp =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* Per-component narrowed widths (synth rtl --narrow). Ports stay at
     the uniform width; Verilog's implicit zero-extension / truncation
     on assignment does the width adaptation at every boundary, so the
     expression structure is identical to the uniform-width netlist. *)
  let rw rid = match List.assoc_opt rid regw with Some w -> w | None -> width in
  let uw mid = match List.assoc_opt mid unitw with Some w -> w | None -> width in
  let style_of rid =
    match bist with
    | None -> Resource.Normal
    | Some (sol : Allocator.solution) -> (
      match List.assoc_opt rid sol.Allocator.styles with
      | Some s -> s
      | None -> Resource.Normal)
  in
  let inputs = List.filter (fun v -> Dfg.consumers dp.Datapath.dfg v <> []) dp.Datapath.dfg.Dfg.inputs in
  pf "module %s (\n" (module_name dp);
  pf "  input  wire clk,\n  input  wire rst,\n";
  if bist <> None then pf "  input  wire test_mode,\n";
  (* Session-driven test overrides: with [sessions], the wrapper selects
     the active session and the datapath steers its multiplexers to the
     chosen BIST embeddings (simple I-paths only; via-embeddings keep
     the functional selects). *)
  let session_list =
    match sessions with Some (t : Session.t) -> t.Session.sessions | None -> []
  in
  let nsess = List.length session_list in
  let sess_bits =
    max 1 (int_of_float (ceil (log (float_of_int (nsess + 1)) /. log 2.0)))
  in
  if nsess > 0 then pf "  input  wire [%d:0] test_session,\n" (sess_bits - 1);
  let embedding_of mid =
    match bist with
    | None -> None
    | Some (sol : Allocator.solution) ->
      List.find_opt
        (fun (e : Ipath.embedding) ->
          String.equal e.Ipath.mid mid && e.Ipath.l_via = None && e.Ipath.r_via = None)
        sol.Allocator.embeddings
  in
  let sess_eq k = Printf.sprintf "test_session == %d'd%d" sess_bits k in
  (* session index in which a unit is tested *)
  let session_of mid =
    let rec go k = function
      | [] -> None
      | units :: rest -> if List.mem mid units then Some k else go (k + 1) rest
    in
    go 0 session_list
  in
  List.iter (fun v -> pf "  input  wire [%d:0] pin_%s,\n" (width - 1) (sanitize v)) inputs;
  let outs = dp.Datapath.outputs in
  let sa_regs =
    match bist with
    | None -> []
    | Some (sol : Allocator.solution) ->
      List.filter_map
        (fun (rid, style) ->
          match style with
          | Resource.Sa | Resource.Bilbo | Resource.Cbilbo -> Some rid
          | Resource.Normal | Resource.Tpg -> None)
        sol.Allocator.styles
  in
  List.iteri
    (fun i (v, _) ->
      pf "  output wire [%d:0] pout_%s%s\n" (width - 1) (sanitize v)
        (if i = List.length outs - 1 && sa_regs = [] then "" else ","))
    outs;
  List.iteri
    (fun i rid ->
      pf "  output wire [%d:0] sig_%s%s\n" (width - 1) (sanitize rid)
        (if i = List.length sa_regs - 1 then "" else ","))
    sa_regs;
  pf ");\n\n";
  (* Controller: a free-running step counter; per-step selects and
     enables are derived from the synthesized control table so the
     module is self-contained (step 0 loads inputs, steps 1..T run the
     schedule, then the counter saturates). *)
  let control = Bistpath_datapath.Control.build dp in
  let steps = Dfg.num_csteps dp.Datapath.dfg in
  let step_bits =
    max 1 (int_of_float (ceil (log (float_of_int (steps + 2)) /. log 2.0)))
  in
  pf "  localparam NUM_STEPS = %d;\n" steps;
  pf "  reg [%d:0] step;\n" (step_bits - 1);
  pf "  always @(posedge clk) begin\n";
  pf "    if (rst) step <= %d'd0;\n" step_bits;
  pf "    else if (step <= %d'd%d) step <= step + %d'd1;\n" step_bits steps step_bits;
  pf "  end\n\n";
  let step_eq i = Printf.sprintf "step == %d'd%d" step_bits i in
  (* Register input muxes and register instances. *)
  List.iter
    (fun (r : Datapath.reg) ->
      let rid = sanitize r.rid in
      let writers = List.assoc r.rid dp.Datapath.reg_writers in
      let wire_of = function
        | Datapath.From_unit mid -> Printf.sprintf "out_%s" (sanitize mid)
        | Datapath.From_port v -> Printf.sprintf "pin_%s" (sanitize v)
      in
      let write_schedule =
        List.concat_map
          (fun (s : Bistpath_datapath.Control.step) ->
            List.filter_map
              (fun (w : Bistpath_datapath.Control.write) ->
                if String.equal w.Bistpath_datapath.Control.rid r.rid then
                  Some (s.Bistpath_datapath.Control.index, w.Bistpath_datapath.Control.source_index)
                else None)
              s.Bistpath_datapath.Control.writes)
          control.Bistpath_datapath.Control.steps
      in
      pf "  wire [%d:0] d_%s;\n" (rw r.rid - 1) rid;
      (match writers with
      | [] -> pf "  assign d_%s = {%d{1'b0}};\n" rid (rw r.rid)
      | [ w ] -> pf "  assign d_%s = %s;\n" rid (wire_of w)
      | ws ->
        let n = List.length ws in
        let sel_bits = max 1 (int_of_float (ceil (log (float_of_int n) /. log 2.0))) in
        pf "  wire [%d:0] sel_%s;\n" (sel_bits - 1) rid;
        pf "  assign sel_%s =\n" rid;
        (* test mode: compact the output of the unit whose SA this
           register is in the active session *)
        if nsess > 0 then
          List.iteri
            (fun k units ->
              let sa_source =
                List.find_map
                  (fun mid ->
                    match embedding_of mid with
                    | Some e when String.equal e.Ipath.sa r.rid ->
                      Bistpath_util.Listx.index_of
                        (fun w -> w = Datapath.From_unit mid)
                        ws
                    | Some _ | None -> None)
                  units
              in
              match sa_source with
              | Some idx ->
                pf "    (test_mode && %s) ? %d'd%d :\n" (sess_eq k) sel_bits idx
              | None -> ())
            session_list;
        List.iter
          (fun (st, src) -> pf "    %s ? %d'd%d :\n" (step_eq st) sel_bits src)
          write_schedule;
        pf "    %d'd0;\n" sel_bits;
        pf "  assign d_%s =\n" rid;
        List.iteri
          (fun i w ->
            if i = n - 1 then pf "    %s;\n" (wire_of w)
            else pf "    sel_%s == %d'd%d ? %s :\n" rid sel_bits i (wire_of w))
          ws);
      let style = style_of r.rid in
      let inst = escape rid in
      pf "  wire en_%s;\n" rid;
      (match write_schedule with
      | [] -> pf "  assign en_%s = 1'b0;\n" rid
      | sched ->
        pf "  assign en_%s = %s;\n" rid
          (String.concat " || " (List.map (fun (st, _) -> "(" ^ step_eq st ^ ")") sched)));
      pf "  wire [%d:0] q_%s;\n" (rw r.rid - 1) rid;
      (match style with
      | Resource.Normal ->
        pf "  dp_register #(.WIDTH(%d)) %s (.clk(clk), .rst(rst), .en(en_%s), .d(d_%s), .q(q_%s));\n"
          (rw r.rid) inst rid rid rid
      | Resource.Tpg ->
        pf
          "  %s #(.WIDTH(%d), .SEED(%d'd%d)) %s (.clk(clk), .rst(rst), .en(en_%s), .test_mode(test_mode), .d(d_%s), .q(q_%s));\n"
          (reg_module style) width width (test_seed ~width r.rid) inst rid rid rid
      | Resource.Sa ->
        pf
          "  sa_register #(.WIDTH(%d)) %s (.clk(clk), .rst(rst), .en(en_%s), .test_mode(test_mode), .d(d_%s), .q(q_%s), .sig_out(sig_%s));\n"
          width inst rid rid rid rid
      | Resource.Cbilbo ->
        pf
          "  cbilbo_register #(.WIDTH(%d), .SEED(%d'd%d)) %s (.clk(clk), .rst(rst), .en(en_%s), .test_mode(test_mode), .d(d_%s), .q(q_%s), .sig_out(sig_%s));\n"
          width width (test_seed ~width r.rid) inst rid rid rid rid
      | Resource.Bilbo ->
        (* compact whenever the active session tests a unit whose SA
           this register is; otherwise generate *)
        let compact_terms =
          List.concat
            (List.mapi
               (fun k units ->
                 List.filter_map
                   (fun mid ->
                     match embedding_of mid with
                     | Some e when String.equal e.Ipath.sa r.rid -> Some (sess_eq k)
                     | Some _ | None -> None)
                   units)
               session_list)
        in
        (match compact_terms with
        | [] -> pf "  wire compact_%s = 1'b0;\n" rid
        | ts -> pf "  wire compact_%s = %s;\n" rid (String.concat " || " (List.map (fun t -> "(" ^ t ^ ")") ts)));
        pf
          "  bilbo_register #(.WIDTH(%d), .SEED(%d'd%d)) %s (.clk(clk), .rst(rst), .en(en_%s), .test_mode(test_mode), .compact(compact_%s), .d(d_%s), .q(q_%s), .sig_out(sig_%s));\n"
          width width (test_seed ~width r.rid) inst rid rid rid rid rid);
      pf "\n")
    dp.Datapath.regs;
  (* Functional units with port muxes. *)
  List.iter
    (fun (u : Massign.hw) ->
      let l, rr = Datapath.unit_port_sources dp u.mid in
      if l <> [] || rr <> [] then begin
        let mid = sanitize u.mid in
        (* (step, l_select, r_select, f_select) whenever this unit runs *)
        let activity =
          List.concat_map
            (fun (s : Bistpath_datapath.Control.step) ->
              List.filter_map
                (fun (o : Bistpath_datapath.Control.unit_op) ->
                  if String.equal o.Bistpath_datapath.Control.mid u.mid then
                    Some
                      ( s.Bistpath_datapath.Control.index,
                        o.Bistpath_datapath.Control.l_select,
                        o.Bistpath_datapath.Control.r_select,
                        o.Bistpath_datapath.Control.f_select )
                  else None)
                s.Bistpath_datapath.Control.ops)
            control.Bistpath_datapath.Control.steps
        in
        let port side select_of srcs =
          pf "  wire [%d:0] %s_%s;\n" (uw u.mid - 1) side mid;
          match srcs with
          | [] -> pf "  assign %s_%s = {%d{1'b0}};\n" side mid (uw u.mid)
          | [ s ] -> pf "  assign %s_%s = q_%s;\n" side mid (sanitize s)
          | ss ->
            let n = List.length ss in
            let sel_bits = max 1 (int_of_float (ceil (log (float_of_int n) /. log 2.0))) in
            pf "  wire [%d:0] %ssel_%s;\n" (sel_bits - 1) side mid;
            pf "  assign %ssel_%s =\n" side mid;
            (if nsess > 0 then
               match (session_of u.mid, embedding_of u.mid) with
               | Some k, Some e ->
                 let tpg = if String.equal side "l" then e.Ipath.l_tpg else e.Ipath.r_tpg in
                 (match Bistpath_util.Listx.index_of (String.equal tpg) ss with
                 | Some idx ->
                   pf "    (test_mode && %s) ? %d'd%d :\n" (sess_eq k) sel_bits idx
                 | None -> ())
               | _ -> ());
            List.iter
              (fun entry ->
                let st, _, _, _ = entry in
                pf "    %s ? %d'd%d :\n" (step_eq st) sel_bits (select_of entry))
              activity;
            pf "    %d'd0;\n" sel_bits;
            pf "  assign %s_%s =\n" side mid;
            List.iteri
              (fun i s ->
                if i = n - 1 then pf "    q_%s;\n" (sanitize s)
                else pf "    %ssel_%s == %d'd%d ? q_%s :\n" side mid sel_bits i (sanitize s))
              ss
        in
        port "l" (fun (_, ls, _, _) -> ls) l;
        port "r" (fun (_, _, rs, _) -> rs) rr;
        pf "  wire [%d:0] out_%s;\n" (uw u.mid - 1) mid;
        (match u.kinds with
        | [ _ ] ->
          pf "  %s #(.WIDTH(%d)) u_%s (.a(l_%s), .b(r_%s), .y(out_%s));\n"
            (unit_module u) (uw u.mid) mid mid mid mid
        | kinds ->
          (* multifunction unit: one-hot select, specialized inline *)
          let w = uw u.mid in
          let expr kind =
            match kind with
            | Op.Add -> Printf.sprintf "l_%s + r_%s" mid mid
            | Op.Sub -> Printf.sprintf "l_%s - r_%s" mid mid
            | Op.Mul -> Printf.sprintf "l_%s * r_%s" mid mid
            | Op.Div ->
              Printf.sprintf "(r_%s == 0 ? {%d{1'b1}} : l_%s / r_%s)" mid w mid mid
            | Op.And -> Printf.sprintf "l_%s & r_%s" mid mid
            | Op.Or -> Printf.sprintf "l_%s | r_%s" mid mid
            | Op.Xor -> Printf.sprintf "l_%s ^ r_%s" mid mid
            | Op.Less ->
              (* width 1 would make the pad a zero-width literal, which
                 is illegal Verilog: the bare comparison already has the
                 right width *)
              if w = 1 then Printf.sprintf "l_%s < r_%s" mid mid
              else Printf.sprintf "{%d'd0, l_%s < r_%s}" (w - 1) mid mid
          in
          let nf = List.length kinds in
          pf "  wire [%d:0] fsel_%s;\n" (nf - 1) mid;
          pf "  assign fsel_%s =\n" mid;
          List.iter
            (fun (st, _, _, fs) -> pf "    %s ? %d'd%d :\n" (step_eq st) nf (1 lsl fs))
            activity;
          pf "    %d'd0;\n" nf;
          pf "  assign out_%s =\n" mid;
          List.iteri
            (fun i kind ->
              if i = List.length kinds - 1 then pf "    %s;\n" (expr kind)
              else pf "    fsel_%s[%d] ? (%s) :\n" mid i (expr kind))
            kinds);
        pf "\n"
      end)
    dp.Datapath.massign.Massign.units;
  List.iter
    (fun (v, rid) -> pf "  assign pout_%s = q_%s;\n" (sanitize v) (sanitize rid))
    dp.Datapath.outputs;
  pf "\nendmodule\n";
  Buffer.contents buf

let primitives ~width =
  ignore width;
  String.concat "\n"
    [
      "module dp_register #(parameter WIDTH = 8) (";
      "  input wire clk, input wire rst, input wire en,";
      "  input wire [WIDTH-1:0] d, output reg [WIDTH-1:0] q);";
      "  always @(posedge clk) begin";
      "    if (rst) q <= {WIDTH{1'b0}};";
      "    else if (en) q <= d;";
      "  end";
      "endmodule";
      "";
      "module tpg_register #(parameter WIDTH = 8, parameter [WIDTH-1:0] SEED = 1) (";
      "  input wire clk, input wire rst, input wire en, input wire test_mode,";
      "  input wire [WIDTH-1:0] d, output reg [WIDTH-1:0] q);";
      "  wire fb = q[WIDTH-1] ^ (^(q & {{(WIDTH-4){1'b0}}, 4'b1011}));";
      "  always @(posedge clk) begin";
      "    if (rst) q <= SEED;";
      "    else if (test_mode) q <= {q[WIDTH-2:0], fb};";
      "    else if (en) q <= d;";
      "  end";
      "endmodule";
      "";
      "module sa_register #(parameter WIDTH = 8) (";
      "  input wire clk, input wire rst, input wire en, input wire test_mode,";
      "  input wire [WIDTH-1:0] d, output reg [WIDTH-1:0] q,";
      "  output wire [WIDTH-1:0] sig_out);";
      "  wire fb = q[WIDTH-1] ^ (^(q & {{(WIDTH-4){1'b0}}, 4'b1011}));";
      "  assign sig_out = q;";
      "  always @(posedge clk) begin";
      "    if (rst) q <= {WIDTH{1'b0}};";
      "    else if (test_mode) q <= {q[WIDTH-2:0], fb} ^ d;";
      "    else if (en) q <= d;";
      "  end";
      "endmodule";
      "";
      "module bilbo_register #(parameter WIDTH = 8, parameter [WIDTH-1:0] SEED = 1) (";
      "  input wire clk, input wire rst, input wire en, input wire test_mode,";
      "  input wire compact,  // 1 = signature analysis, 0 = pattern generation";
      "  input wire [WIDTH-1:0] d, output reg [WIDTH-1:0] q,";
      "  output wire [WIDTH-1:0] sig_out);";
      "  wire fb = q[WIDTH-1] ^ (^(q & {{(WIDTH-4){1'b0}}, 4'b1011}));";
      "  assign sig_out = q;";
      "  always @(posedge clk) begin";
      "    if (rst) q <= SEED;";
      "    else if (test_mode) q <= compact ? ({q[WIDTH-2:0], fb} ^ d) : {q[WIDTH-2:0], fb};";
      "    else if (en) q <= d;";
      "  end";
      "endmodule";
      "";
      "module cbilbo_register #(parameter WIDTH = 8, parameter [WIDTH-1:0] SEED = 1) (";
      "  input wire clk, input wire rst, input wire en, input wire test_mode,";
      "  input wire [WIDTH-1:0] d, output reg [WIDTH-1:0] q,";
      "  output wire [WIDTH-1:0] sig_out);";
      "  // two ranks: generator rank feeds the datapath, compactor rank";
      "  // absorbs responses concurrently (roughly 2x register area)";
      "  reg [WIDTH-1:0] sig;";
      "  wire fb  = q[WIDTH-1] ^ (^(q   & {{(WIDTH-4){1'b0}}, 4'b1011}));";
      "  wire fb2 = sig[WIDTH-1] ^ (^(sig & {{(WIDTH-4){1'b0}}, 4'b1011}));";
      "  assign sig_out = sig;";
      "  always @(posedge clk) begin";
      "    if (rst) begin q <= SEED; sig <= {WIDTH{1'b0}}; end";
      "    else if (test_mode) begin";
      "      q   <= {q[WIDTH-2:0], fb};";
      "      sig <= {sig[WIDTH-2:0], fb2} ^ d;";
      "    end else if (en) q <= d;";
      "  end";
      "endmodule";
      "";
      "module dp_add #(parameter WIDTH = 8) (input wire [WIDTH-1:0] a, b, output wire [WIDTH-1:0] y);";
      "  assign y = a + b;";
      "endmodule";
      "module dp_sub #(parameter WIDTH = 8) (input wire [WIDTH-1:0] a, b, output wire [WIDTH-1:0] y);";
      "  assign y = a - b;";
      "endmodule";
      "module dp_mul #(parameter WIDTH = 8) (input wire [WIDTH-1:0] a, b, output wire [WIDTH-1:0] y);";
      "  assign y = a * b;";
      "endmodule";
      "module dp_div #(parameter WIDTH = 8) (input wire [WIDTH-1:0] a, b, output wire [WIDTH-1:0] y);";
      "  assign y = (b == 0) ? {WIDTH{1'b1}} : a / b;";
      "endmodule";
      "module dp_and #(parameter WIDTH = 8) (input wire [WIDTH-1:0] a, b, output wire [WIDTH-1:0] y);";
      "  assign y = a & b;";
      "endmodule";
      "module dp_or #(parameter WIDTH = 8) (input wire [WIDTH-1:0] a, b, output wire [WIDTH-1:0] y);";
      "  assign y = a | b;";
      "endmodule";
      "module dp_xor #(parameter WIDTH = 8) (input wire [WIDTH-1:0] a, b, output wire [WIDTH-1:0] y);";
      "  assign y = a ^ b;";
      "endmodule";
      "module dp_less #(parameter WIDTH = 8) (input wire [WIDTH-1:0] a, b, output wire [WIDTH-1:0] y);";
      "  assign y = {{(WIDTH-1){1'b0}}, a < b};";
      "endmodule";
      "";
    ]
