(** Structural Verilog-subset emission of a synthesized data path.

    The module instantiates one register per datapath register (plain,
    or the BIST variant chosen by an allocation), one functional unit
    per module, and the multiplexers implied by the connectivity; a
    simple FSM-less controller interface (per-step select/enable values)
    is emitted as localparam tables so the output is self-contained and
    lintable. This is an RTL rendering for inspection and downstream
    tooling, not a verified synthesis target. *)

val emit :
  ?width:int ->
  ?bist:Bistpath_bist.Allocator.solution ->
  ?sessions:Bistpath_bist.Session.t ->
  ?regw:(string * int) list ->
  ?unitw:(string * int) list ->
  Bistpath_datapath.Datapath.t ->
  string
(** Verilog source text. [regw] / [unitw] narrow individual registers /
    functional units below the uniform [width] (the [synth rtl
    --narrow] plan from {!Bistpath_absint.Absint.narrow_plan}); ports
    stay at full width and every width boundary is adapted by Verilog's
    implicit zero-extension/truncation on assignment, so the netlist
    structure is unchanged. With [bist], registers are emitted as the
    allocated test-register variants (tpg_register, sa_register,
    bilbo_register, cbilbo_register), a [test_mode] port is added, and
    every signature-capable register's compactor is exported on a
    [sig_*] output. With [sessions] too, a [test_session] input is added
    and, in test mode, the multiplexers steer to the active session's
    BIST embeddings (port selects to the chosen TPGs, each SA register's
    input to the unit it compacts, BILBO compact/generate modes) —
    making the emitted architecture execute exactly the configurations
    the allocator chose. *)

val test_seed : width:int -> string -> int
(** Per-register non-zero LFSR reset seed (hash of the register name),
    baked into the emitted generator instances and mirrored by
    {!Rtl_sim}. *)

val sanitize : string -> string
(** Map arbitrary netlist names to Verilog identifiers: alphanumerics
    and underscores pass through, any other character becomes its
    [_&lt;hex&gt;] escape — so names that differ only in punctuation
    (["*1"] vs ["+1"]) stay distinct instead of colliding on the same
    wire. *)

val mangle : string -> string
(** [sanitize], then wrap in escaped-identifier syntax ([\name ],
    trailing space included) when the result is a reserved word or
    starts with a digit — i.e. the name as it may legally appear bare in
    emitted source. Prefixed uses ([q_<name>] etc.) only need
    [sanitize]. *)

val module_name : Bistpath_datapath.Datapath.t -> string
(** The emitted module's name, [<sanitized design name>_datapath],
    escaped if necessary — use this when instantiating the module. *)

val primitives : width:int -> string
(** Library of the register/unit/mux primitives the emitted module
    instantiates (behavioural Verilog), so [primitives ^ emit dp] is a
    complete compilation unit. *)
