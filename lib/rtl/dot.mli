(** Graphviz DOT renderings for the paper's figures: data paths (Fig. 5)
    and scheduled DFGs (Fig. 2). *)

val of_datapath :
  ?bist:Bistpath_bist.Allocator.solution ->
  Bistpath_datapath.Datapath.t ->
  string
(** Registers as boxes (BIST style in the label when [bist] is given),
    units as ellipses, multiplexed connections as edges labelled with the
    source count. *)

val of_dfg : Bistpath_dfg.Dfg.t -> string
(** Operations ranked by control step, variables as edges. *)
