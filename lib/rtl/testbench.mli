(** Self-checking Verilog testbench generation.

    The testbench drives the emitted datapath module's pins with given
    input vectors, waits the schedule out, and compares each primary
    output against the value computed by the behavioural DFG evaluator —
    so [primitives ^ emit dp ^ generate dp vectors] is a complete,
    simulator-ready compilation unit whose expected values were derived
    by the same semantics the cycle-accurate interpreter validates. *)

val generate :
  ?width:int ->
  ?name:string ->
  Bistpath_datapath.Datapath.t ->
  vectors:(string * int) list list ->
  string
(** One test per vector set (a full assignment of the DFG's used
    inputs). Outputs are sampled at the control step in which they are
    produced. Raises [Invalid_argument] on incomplete vectors (via
    {!Bistpath_dfg.Eval}). *)

val random_vectors :
  Bistpath_util.Prng.t ->
  Bistpath_datapath.Datapath.t ->
  width:int ->
  count:int ->
  (string * int) list list
(** Uniform random assignments for the datapath's used inputs. *)
