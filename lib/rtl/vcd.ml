module Datapath = Bistpath_datapath.Datapath
module Interp = Bistpath_datapath.Interp

(* VCD identifiers: printable ASCII starting at '!'. *)
let ident i =
  let base = 94 in
  let rec go i acc =
    let c = Char.chr (33 + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let binary width v =
  String.init width (fun i -> if (v lsr (width - 1 - i)) land 1 = 1 then '1' else '0')

let of_trace (dp : Datapath.t) ~width trace =
  let buf = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "$date bistpath $end\n$version bistpath interp $end\n$timescale 1ns $end\n";
  pf "$scope module datapath $end\n";
  List.iteri
    (fun i (r : Datapath.reg) ->
      pf "$var wire %d %s %s $end\n" width (ident i) (Verilog.sanitize r.Datapath.rid))
    dp.Datapath.regs;
  pf "$upscope $end\n$enddefinitions $end\n";
  let previous = Hashtbl.create 16 in
  List.iter
    (fun (entry : Interp.trace_entry) ->
      pf "#%d\n" (entry.Interp.step * 10);
      List.iteri
        (fun i (r : Datapath.reg) ->
          let v = List.assoc r.Datapath.rid entry.Interp.register_file in
          let changed =
            match Hashtbl.find_opt previous r.Datapath.rid with
            | Some old -> old <> v
            | None -> true
          in
          if changed then begin
            Hashtbl.replace previous r.Datapath.rid v;
            pf "b%s %s\n" (binary width v) (ident i)
          end)
        dp.Datapath.regs)
    trace;
  Buffer.contents buf

let dump_run dp ~width ~inputs =
  let _, trace = Interp.run ~trace:true dp ~width ~inputs in
  of_trace dp ~width trace
