module Datapath = Bistpath_datapath.Datapath
module Dfg = Bistpath_dfg.Dfg
module Resource = Bistpath_bist.Resource
module Allocator = Bistpath_bist.Allocator
module Session = Bistpath_bist.Session
module Ipath = Bistpath_ipath.Ipath

let sanitize = Verilog.sanitize

(* SA register of each unit's embedding, deduplicated per session. *)
let session_sa_registers (sol : Allocator.solution) units =
  List.filter_map
    (fun (e : Ipath.embedding) ->
      if List.mem e.mid units then Some e.sa else None)
    sol.Allocator.embeddings
  |> List.sort_uniq compare

let emit ?(width = 8) ?patterns ?(golden = []) dp (sol : Allocator.solution)
    (sessions : Session.t) =
  let patterns = match patterns with Some p -> p | None -> (1 lsl width) - 1 in
  let name = sanitize dp.Datapath.dfg.Dfg.name in
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let inputs =
    List.filter (fun v -> Dfg.consumers dp.Datapath.dfg v <> []) dp.Datapath.dfg.Dfg.inputs
  in
  let sa_regs =
    List.filter_map
      (fun (rid, style) ->
        match style with
        | Resource.Sa | Resource.Bilbo | Resource.Cbilbo -> Some rid
        | Resource.Normal | Resource.Tpg -> None)
      sol.Allocator.styles
  in
  let nsess = List.length sessions.Session.sessions in
  pf "// Self-test wrapper for %s_datapath.\n" name;
  let dut_module = Verilog.module_name dp in
  let wrapper = Verilog.mangle (dp.Datapath.dfg.Dfg.name ^ "_bist") in
  if golden = [] then begin
    pf "// Golden signature parameters default to 0: obtain the real values by\n";
    pf "// simulating the fault-free design through each session (reset, then\n";
    pf "// PATTERNS clocks of test_mode) and reading the sig_* taps.\n"
  end
  else
    pf "// Golden signatures computed by the bit-exact RTL model (Rtl_sim).\n";
  pf "module %s #(\n" wrapper;
  pf "  parameter PATTERNS = %d%s\n" patterns (if sa_regs = [] then "" else ",");
  List.iteri
    (fun si units ->
      let sas = session_sa_registers sol units in
      List.iteri
        (fun i rid ->
          let last =
            si = nsess - 1
            && i = List.length (session_sa_registers sol units) - 1
          in
          let value =
            match
              List.find_opt
                (fun (g : Rtl_sim.golden) ->
                  g.Rtl_sim.session = si && String.equal g.Rtl_sim.rid rid)
                golden
            with
            | Some g -> g.Rtl_sim.signature
            | None -> 0
          in
          pf "  parameter [%d:0] GOLDEN_S%d_%s = %d'd%d%s\n" (width - 1) si
            (sanitize rid) width value
            (if last then "" else ","))
        sas)
    sessions.Session.sessions;
  pf ") (\n";
  pf "  input  wire clk,\n  input  wire rst,\n  input  wire start,\n";
  pf "  output reg  done,\n  output reg  pass\n";
  pf ");\n\n";
  (* datapath instance: pins tied off during self-test *)
  let sess_bits = max 1 (int_of_float (ceil (log (float_of_int (nsess + 1)) /. log 2.0))) in
  pf "  reg test_mode;\n";
  pf "  reg dp_rst;\n";
  pf "  reg [%d:0] session;\n" (sess_bits - 1);
  List.iter
    (fun v -> pf "  wire [%d:0] pin_%s = {%d{1'b0}};\n" (width - 1) (sanitize v) width)
    inputs;
  List.iter
    (fun (v, _) -> pf "  wire [%d:0] pout_%s;\n" (width - 1) (sanitize v))
    dp.Datapath.outputs;
  List.iter
    (fun rid -> pf "  wire [%d:0] sig_%s;\n" (width - 1) (sanitize rid))
    sa_regs;
  pf "\n  %s dut (\n    .clk(clk), .rst(dp_rst), .test_mode(test_mode), .test_session(session),\n"
    dut_module;
  List.iter (fun v -> pf "    .pin_%s(pin_%s),\n" (sanitize v) (sanitize v)) inputs;
  List.iter
    (fun (v, _) -> pf "    .pout_%s(pout_%s),\n" (sanitize v) (sanitize v))
    dp.Datapath.outputs;
  List.iteri
    (fun i rid ->
      pf "    .sig_%s(sig_%s)%s\n" (sanitize rid) (sanitize rid)
        (if i = List.length sa_regs - 1 then "" else ","))
    sa_regs;
  pf "  );\n\n";
  (* session FSM *)
  pf "  localparam NSESSIONS = %d;\n" nsess;
  pf "  localparam S_IDLE = 2'd0, S_RESET = 2'd1, S_RUN = 2'd2, S_CHECK = 2'd3;\n";
  pf "  reg [1:0] state;\n";
  pf "  reg [31:0] cycle;\n";
  pf "  wire session_ok =\n";
  List.iteri
    (fun si units ->
      let sas = session_sa_registers sol units in
      let conj =
        match sas with
        | [] -> "1'b1"
        | _ ->
          String.concat " && "
            (List.map
               (fun rid ->
                 Printf.sprintf "(sig_%s == GOLDEN_S%d_%s)" (sanitize rid) si
                   (sanitize rid))
               sas)
      in
      pf "    session == %d'd%d ? (%s) :\n" sess_bits si conj)
    sessions.Session.sessions;
  pf "    1'b1;\n\n";
  pf "  always @(posedge clk) begin\n";
  pf "    if (rst) begin\n";
  pf "      state <= S_IDLE; done <= 1'b0; pass <= 1'b1;\n";
  pf "      session <= %d'd0; cycle <= 32'd0; test_mode <= 1'b0; dp_rst <= 1'b1;\n" sess_bits;
  pf "    end else begin\n";
  pf "      case (state)\n";
  pf "        S_IDLE: if (start) begin\n";
  pf "          done <= 1'b0; pass <= 1'b1; session <= %d'd0; state <= S_RESET;\n" sess_bits;
  pf "        end\n";
  pf "        S_RESET: begin\n";
  pf "          dp_rst <= 1'b0; test_mode <= 1'b1; cycle <= 32'd0; state <= S_RUN;\n";
  pf "        end\n";
  pf "        S_RUN: begin\n";
  pf "          if (cycle == PATTERNS - 1) state <= S_CHECK;\n";
  pf "          cycle <= cycle + 32'd1;\n";
  pf "        end\n";
  pf "        S_CHECK: begin\n";
  pf "          if (!session_ok) pass <= 1'b0;\n";
  pf "          test_mode <= 1'b0; dp_rst <= 1'b1;\n";
  pf "          if (session == %d'd%d) begin done <= 1'b1; state <= S_IDLE; end\n"
    sess_bits (nsess - 1);
  pf "          else begin session <= session + %d'd1; state <= S_RESET; end\n" sess_bits;
  pf "        end\n";
  pf "        default: state <= S_IDLE;\n";
  pf "      endcase\n";
  pf "    end\n";
  pf "  end\nendmodule\n";
  Buffer.contents buf
