module Diagnostic = Bistpath_resilience.Diagnostic
module Inject = Bistpath_resilience.Inject
module Telemetry = Bistpath_telemetry.Telemetry

type unop = Bnot | Lnot | Rxor | Neg

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor
  | Land | Lor
  | Eq | Neq | Lt | Le | Gt | Ge
  | Shl | Shr

type expr =
  | Ident of string
  | Num of int option * int
  | Str of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Cond of expr * expr * expr
  | Concat of expr list
  | Repl of expr * expr
  | Index of expr * expr
  | Range of expr * expr * expr

type dir = Input | Output

type port = {
  dir : dir;
  preg : bool;
  prange : (expr * expr) option;
  pname : string;
  pline : int;
}

type stmt =
  | Block of stmt list
  | If of expr * stmt * stmt option
  | Case of expr * (expr list * stmt) list * stmt option
  | Nonblocking of string * expr
  | Blocking of string * expr
  | Sys of string * expr list
  | Timing of stmt option
  | Nop

type trigger = Posedge of string | Delay of int | Star

type item =
  | Decl of {
      dreg : bool;
      drange : (expr * expr) option;
      names : (string * expr option) list;
      dline : int;
    }
  | Assign of { lhs : string; rhs : expr; aline : int }
  | Localparam of { name : string; value : expr; lline : int }
  | Always of { trigger : trigger; body : stmt; bline : int }
  | Initial of stmt
  | Instance of {
      module_name : string;
      params : (string * expr) list;
      instance_name : string;
      conns : (string * expr) list;
      iline : int;
    }

type module_ = {
  name : string;
  mparams : (string * expr) list;
  ports : port list;
  items : item list;
  mline : int;
}

type t = { modules : module_ list; diagnostics : Diagnostic.t list }

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

(* [Id] carries whether the identifier was escaped ([\name ]): escaped
   identifiers never match keywords, which is the whole point of the
   escape syntax. *)
type token =
  | Tid of string * bool  (* name, escaped *)
  | Tnum of int option * int
  | Tstr of string
  | Tpunct of string
  | Teof

type ltoken = { tok : token; line : int }

let keywords =
  [ "module"; "endmodule"; "input"; "output"; "inout"; "wire"; "reg";
    "integer"; "assign"; "always"; "initial"; "begin"; "end"; "if"; "else";
    "case"; "casez"; "endcase"; "default"; "posedge"; "negedge"; "parameter";
    "localparam"; "signed"; "generate"; "endgenerate"; "function";
    "endfunction" ]

let is_keyword s = List.mem s keywords

let lex ~diag src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let peek k = if !i + k < n then src.[!i + k] else '\000' in
  let push tok = toks := { tok; line = !line } :: !toks in
  let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_id c = is_id_start c || (c >= '0' && c <= '9') || c = '$' in
  let is_digit c = c >= '0' && c <= '9' in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && peek 1 = '*' then begin
      i := !i + 2;
      let fin = ref false in
      while !i < n && not !fin do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && peek 1 = '/' then begin fin := true; i := !i + 2 end
        else incr i
      done;
      if not !fin then diag !line "unterminated block comment"
    end
    else if c = '`' then begin
      (* compiler directive (`timescale ...): skip to end of line *)
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '"' then begin
      let b = Buffer.create 16 in
      incr i;
      let fin = ref false in
      while !i < n && not !fin do
        let d = src.[!i] in
        if d = '"' then begin fin := true; incr i end
        else if d = '\\' && !i + 1 < n then begin
          Buffer.add_char b d; Buffer.add_char b (peek 1); i := !i + 2
        end
        else begin
          if d = '\n' then incr line;
          Buffer.add_char b d; incr i
        end
      done;
      if not !fin then diag !line "unterminated string literal";
      push (Tstr (Buffer.contents b))
    end
    else if c = '\\' then begin
      (* escaped identifier: backslash to next whitespace *)
      let b = Buffer.create 8 in
      incr i;
      while !i < n && not (List.mem src.[!i] [ ' '; '\t'; '\n'; '\r' ]) do
        Buffer.add_char b src.[!i]; incr i
      done;
      if Buffer.length b = 0 then diag !line "empty escaped identifier"
      else push (Tid (Buffer.contents b, true))
    end
    else if is_id_start c || c = '$' then begin
      let b = Buffer.create 8 in
      while !i < n && is_id src.[!i] do Buffer.add_char b src.[!i]; incr i done;
      push (Tid (Buffer.contents b, false))
    end
    else if is_digit c || (c = '\'' && is_id_start (peek 1)) then begin
      (* number: [width] ' base digits | plain decimal *)
      let start_line = !line in
      let width =
        if is_digit c then begin
          let b = Buffer.create 4 in
          while !i < n && (is_digit src.[!i] || src.[!i] = '_') do
            if src.[!i] <> '_' then Buffer.add_char b src.[!i];
            incr i
          done;
          int_of_string (Buffer.contents b)
        end
        else (-1)
      in
      if !i < n && src.[!i] = '\'' then begin
        incr i;
        let base = if !i < n then Char.lowercase_ascii src.[!i] else '?' in
        incr i;
        let radix =
          match base with
          | 'd' -> 10 | 'b' -> 2 | 'h' -> 16 | 'o' -> 8
          | _ ->
            diag start_line (Printf.sprintf "unknown number base '%c'" base);
            10
        in
        let b = Buffer.create 8 in
        let is_based_digit ch =
          is_digit ch || (ch >= 'a' && ch <= 'f') || (ch >= 'A' && ch <= 'F')
          || ch = '_'
        in
        while !i < n && is_based_digit src.[!i] do
          if src.[!i] <> '_' then Buffer.add_char b src.[!i];
          incr i
        done;
        let digits = Buffer.contents b in
        let value =
          if digits = "" then begin
            diag start_line "number literal has no digits";
            0
          end
          else
            match int_of_string_opt (Printf.sprintf "0%c%s"
                     (match radix with 2 -> 'b' | 8 -> 'o' | 16 -> 'x' | _ -> 'u')
                     digits)
            with
            | Some v -> v
            | None -> (
              match int_of_string_opt digits with
              | Some v when radix = 10 -> v
              | _ ->
                diag start_line (Printf.sprintf "bad number literal %S" digits);
                0)
        in
        let w =
          if width < 0 then None
          else if width = 0 then begin
            diag start_line "zero-width sized literal";
            Some 0
          end
          else Some width
        in
        push (Tnum (w, value))
      end
      else if width >= 0 then push (Tnum (None, width))
      else diag start_line "stray tick"
    end
    else begin
      (* punctuation, longest match first *)
      let three = if !i + 2 < n then String.init 3 (fun k -> src.[!i + k]) else "" in
      let two = if !i + 1 < n then String.init 2 (fun k -> src.[!i + k]) else "" in
      match (three, two) with
      (* case (in)equality folds onto plain (in)equality: no x/z values
         in this subset *)
      | "===", _ -> push (Tpunct "=="); i := !i + 3
      | "!==", _ -> push (Tpunct "!="); i := !i + 3
      | _, ("==" | "!=" | "<=" | ">=" | "&&" | "||" | "<<" | ">>") ->
        push (Tpunct two); i := !i + 2
      | _ ->
        (match c with
        | '(' | ')' | '{' | '}' | '[' | ']' | ';' | ':' | ',' | '.' | '?'
        | '=' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '~' | '!'
        | '<' | '>' | '#' | '@' ->
          push (Tpunct (String.make 1 c))
        | _ -> diag !line (Printf.sprintf "unexpected character %C" c));
        incr i
    end
  done;
  toks := { tok = Teof; line = !line } :: !toks;
  Array.of_list (List.rev !toks)

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

type state = {
  toks : ltoken array;
  mutable pos : int;
  collector : Diagnostic.collector;
  file : string option;
}

exception Recover
(* Internal-only: raised on a syntax error after recording the
   diagnostic, caught at the item/module level to resynchronize. It
   never escapes [parse]. *)

let cur st = st.toks.(st.pos)
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let err st line fmt =
  Printf.ksprintf
    (fun msg ->
      Diagnostic.emit st.collector (Diagnostic.error ?file:st.file ~line msg))
    fmt

let fail st fmt =
  let line = (cur st).line in
  Printf.ksprintf
    (fun msg ->
      err st line "%s" msg;
      raise Recover)
    fmt

let describe = function
  | Tid (s, false) -> Printf.sprintf "%S" s
  | Tid (s, true) -> Printf.sprintf "\\%s" s
  | Tnum (_, v) -> Printf.sprintf "number %d" v
  | Tstr _ -> "string literal"
  | Tpunct p -> Printf.sprintf "%S" p
  | Teof -> "end of input"

let at_punct st p = match (cur st).tok with Tpunct q -> q = p | _ -> false

let at_kw st kw =
  match (cur st).tok with Tid (s, false) -> s = kw | _ -> false

let eat_punct st p =
  if at_punct st p then advance st
  else fail st "expected %S, found %s" p (describe (cur st).tok)

let eat_kw st kw =
  if at_kw st kw then advance st
  else fail st "expected %S, found %s" kw (describe (cur st).tok)

let eat_ident st =
  match (cur st).tok with
  | Tid (s, true) -> advance st; s
  | Tid (s, false) when not (is_keyword s) -> advance st; s
  | t -> fail st "expected an identifier, found %s" (describe t)

(* Resynchronize after a syntax error: skip to just past the next ';',
   or stop before 'endmodule'/'module'/EOF. *)
let sync st =
  let rec go () =
    match (cur st).tok with
    | Teof -> ()
    | Tpunct ";" -> advance st
    | Tid (("endmodule" | "module"), false) -> ()
    | _ -> advance st; go ()
  in
  go ()

(* --- expressions --------------------------------------------------- *)

let rec parse_expr st = parse_cond st

and parse_cond st =
  let c = parse_lor st in
  if at_punct st "?" then begin
    advance st;
    let t = parse_cond st in
    eat_punct st ":";
    let f = parse_cond st in
    Cond (c, t, f)
  end
  else c

and parse_lor st =
  let rec go acc =
    if at_punct st "||" then begin advance st; go (Binop (Lor, acc, parse_land st)) end
    else acc
  in
  go (parse_land st)

and parse_land st =
  let rec go acc =
    if at_punct st "&&" then begin advance st; go (Binop (Land, acc, parse_bor st)) end
    else acc
  in
  go (parse_bor st)

and parse_bor st =
  let rec go acc =
    if at_punct st "|" then begin advance st; go (Binop (Bor, acc, parse_bxor st)) end
    else acc
  in
  go (parse_bxor st)

and parse_bxor st =
  let rec go acc =
    if at_punct st "^" then begin advance st; go (Binop (Bxor, acc, parse_band st)) end
    else acc
  in
  go (parse_band st)

and parse_band st =
  let rec go acc =
    if at_punct st "&" then begin advance st; go (Binop (Band, acc, parse_eq st)) end
    else acc
  in
  go (parse_eq st)

and parse_eq st =
  let rec go acc =
    if at_punct st "==" then begin advance st; go (Binop (Eq, acc, parse_rel st)) end
    else if at_punct st "!=" then begin advance st; go (Binop (Neq, acc, parse_rel st)) end
    else acc
  in
  go (parse_rel st)

and parse_rel st =
  let rec go acc =
    if at_punct st "<" then begin advance st; go (Binop (Lt, acc, parse_shift st)) end
    else if at_punct st "<=" then begin advance st; go (Binop (Le, acc, parse_shift st)) end
    else if at_punct st ">" then begin advance st; go (Binop (Gt, acc, parse_shift st)) end
    else if at_punct st ">=" then begin advance st; go (Binop (Ge, acc, parse_shift st)) end
    else acc
  in
  go (parse_shift st)

and parse_shift st =
  let rec go acc =
    if at_punct st "<<" then begin advance st; go (Binop (Shl, acc, parse_add st)) end
    else if at_punct st ">>" then begin advance st; go (Binop (Shr, acc, parse_add st)) end
    else acc
  in
  go (parse_add st)

and parse_add st =
  let rec go acc =
    if at_punct st "+" then begin advance st; go (Binop (Add, acc, parse_mul st)) end
    else if at_punct st "-" then begin advance st; go (Binop (Sub, acc, parse_mul st)) end
    else acc
  in
  go (parse_mul st)

and parse_mul st =
  let rec go acc =
    if at_punct st "*" then begin advance st; go (Binop (Mul, acc, parse_unary st)) end
    else if at_punct st "/" then begin advance st; go (Binop (Div, acc, parse_unary st)) end
    else if at_punct st "%" then begin advance st; go (Binop (Mod, acc, parse_unary st)) end
    else acc
  in
  go (parse_unary st)

and parse_unary st =
  if at_punct st "~" then begin advance st; Unop (Bnot, parse_unary st) end
  else if at_punct st "!" then begin advance st; Unop (Lnot, parse_unary st) end
  else if at_punct st "^" then begin advance st; Unop (Rxor, parse_unary st) end
  else if at_punct st "-" then begin advance st; Unop (Neg, parse_unary st) end
  else parse_postfix st

and parse_postfix st =
  let e = parse_primary st in
  let rec go acc =
    if at_punct st "[" then begin
      advance st;
      let a = parse_expr st in
      if at_punct st ":" then begin
        advance st;
        let b = parse_expr st in
        eat_punct st "]";
        go (Range (acc, a, b))
      end
      else begin
        eat_punct st "]";
        go (Index (acc, a))
      end
    end
    else acc
  in
  go e

and parse_primary st =
  match (cur st).tok with
  | Tnum (w, v) -> advance st; Num (w, v)
  | Tstr s -> advance st; Str s
  | Tid (s, true) -> advance st; Ident s
  | Tid (s, false) when not (is_keyword s) -> advance st; Ident s
  | Tpunct "(" ->
    advance st;
    let e = parse_expr st in
    eat_punct st ")";
    e
  | Tpunct "{" ->
    advance st;
    let first = parse_expr st in
    if at_punct st "{" then begin
      (* replication: {count{inner[, inner]*}} *)
      advance st;
      let rec items acc =
        let e = parse_expr st in
        if at_punct st "," then begin advance st; items (e :: acc) end
        else List.rev (e :: acc)
      in
      let inner = items [] in
      eat_punct st "}";
      eat_punct st "}";
      Repl (first, match inner with [ e ] -> e | es -> Concat es)
    end
    else begin
      let rec items acc =
        if at_punct st "," then begin
          advance st;
          items (parse_expr st :: acc)
        end
        else List.rev acc
      in
      let es = items [ first ] in
      eat_punct st "}";
      match es with [ e ] -> e | _ -> Concat es
    end
  | t -> fail st "expected an expression, found %s" (describe t)

(* --- statements ---------------------------------------------------- *)

let rec parse_stmt st =
  match (cur st).tok with
  | Tid ("begin", false) ->
    advance st;
    let rec go acc =
      if at_kw st "end" then begin advance st; Block (List.rev acc) end
      else if (cur st).tok = Teof then fail st "unterminated begin/end block"
      else go (parse_stmt st :: acc)
    in
    go []
  | Tid ("if", false) ->
    advance st;
    eat_punct st "(";
    let c = parse_expr st in
    eat_punct st ")";
    let t = parse_stmt st in
    if at_kw st "else" then begin
      advance st;
      let f = parse_stmt st in
      If (c, t, Some f)
    end
    else If (c, t, None)
  | Tid (("case" | "casez"), false) ->
    advance st;
    eat_punct st "(";
    let scrut = parse_expr st in
    eat_punct st ")";
    let rec arms acc dflt =
      if at_kw st "endcase" then begin advance st; Case (scrut, List.rev acc, dflt) end
      else if (cur st).tok = Teof then fail st "unterminated case"
      else if at_kw st "default" then begin
        advance st;
        eat_punct st ":";
        let s = parse_stmt st in
        arms acc (Some s)
      end
      else begin
        let rec labels ls =
          let e = parse_expr st in
          if at_punct st "," then begin advance st; labels (e :: ls) end
          else List.rev (e :: ls)
        in
        let ls = labels [] in
        eat_punct st ":";
        let s = parse_stmt st in
        arms ((ls, s) :: acc) dflt
      end
    in
    arms [] None
  | Tid (s, false) when s.[0] = '$' ->
    advance st;
    let args =
      if at_punct st "(" then begin
        advance st;
        let rec go acc =
          if at_punct st ")" then begin advance st; List.rev acc end
          else begin
            let e = parse_expr st in
            if at_punct st "," then advance st;
            go (e :: acc)
          end
        in
        go []
      end
      else []
    in
    eat_punct st ";";
    Sys (s, args)
  | Tpunct "@" ->
    advance st;
    eat_punct st "(";
    let rec skip depth =
      match (cur st).tok with
      | Tpunct "(" -> advance st; skip (depth + 1)
      | Tpunct ")" -> advance st; if depth > 1 then skip (depth - 1)
      | Teof -> fail st "unterminated event control"
      | _ -> advance st; skip depth
    in
    skip 1;
    if at_punct st ";" then begin advance st; Timing None end
    else Timing (Some (parse_stmt st))
  | Tpunct "#" ->
    advance st;
    (match (cur st).tok with
    | Tnum _ -> advance st
    | _ -> fail st "expected a delay value after '#'");
    if at_punct st ";" then begin advance st; Timing None end
    else Timing (Some (parse_stmt st))
  | Tpunct ";" -> advance st; Nop
  | Tid _ ->
    let lhs = eat_ident st in
    if at_punct st "<=" then begin
      advance st;
      let rhs = parse_expr st in
      eat_punct st ";";
      Nonblocking (lhs, rhs)
    end
    else if at_punct st "=" then begin
      advance st;
      let rhs = parse_expr st in
      eat_punct st ";";
      Blocking (lhs, rhs)
    end
    else fail st "expected '=' or '<=' in statement"
  | t -> fail st "expected a statement, found %s" (describe t)

(* --- module items -------------------------------------------------- *)

let parse_range_opt st =
  if at_punct st "[" then begin
    advance st;
    let msb = parse_expr st in
    eat_punct st ":";
    let lsb = parse_expr st in
    eat_punct st "]";
    Some (msb, lsb)
  end
  else None

(* header parameter list: #(parameter [range] NAME = expr, ...) *)
let parse_header_params st =
  if not (at_punct st "#") then []
  else begin
    advance st;
    eat_punct st "(";
    let rec go acc =
      if at_punct st ")" then begin advance st; List.rev acc end
      else begin
        eat_kw st "parameter";
        ignore (parse_range_opt st);
        let name = eat_ident st in
        eat_punct st "=";
        let v = parse_expr st in
        if at_punct st "," then advance st;
        go ((name, v) :: acc)
      end
    in
    go []
  end

let parse_ports st =
  eat_punct st "(";
  let rec go acc dir preg prange =
    match (cur st).tok with
    | Tpunct ")" -> advance st; List.rev acc
    | Teof -> fail st "unterminated port list"
    | Tid (("input" | "output" | "inout") as d, false) ->
      let line = (cur st).line in
      advance st;
      let dir = if d = "input" then Input else Output in
      if d = "inout" then err st line "inout ports are not supported";
      let preg =
        if at_kw st "reg" then begin advance st; true end
        else begin
          if at_kw st "wire" then advance st;
          false
        end
      in
      let prange = parse_range_opt st in
      go acc (Some dir) preg prange
    | _ ->
      let line = (cur st).line in
      let name = eat_ident st in
      (match dir with
      | None -> fail st "port %S has no direction (non-ANSI headers are not supported)" name
      | Some d ->
        let p = { dir = d; preg; prange; pname = name; pline = line } in
        if at_punct st "," then advance st;
        go (p :: acc) dir preg prange)
  in
  go [] None false None

let parse_instance st module_name iline =
  let params =
    if at_punct st "#" then begin
      advance st;
      eat_punct st "(";
      let rec go acc =
        if at_punct st ")" then begin advance st; List.rev acc end
        else begin
          eat_punct st ".";
          let p = eat_ident st in
          eat_punct st "(";
          let v = parse_expr st in
          eat_punct st ")";
          if at_punct st "," then advance st;
          go ((p, v) :: acc)
        end
      in
      go []
    end
    else []
  in
  let instance_name = eat_ident st in
  eat_punct st "(";
  let rec conns acc =
    if at_punct st ")" then begin advance st; List.rev acc end
    else begin
      eat_punct st ".";
      let p = eat_ident st in
      eat_punct st "(";
      let v = parse_expr st in
      eat_punct st ")";
      if at_punct st "," then advance st;
      conns ((p, v) :: acc)
    end
  in
  let conns = conns [] in
  eat_punct st ";";
  Instance { module_name; params; instance_name; conns; iline }

let parse_item st =
  let line = (cur st).line in
  match (cur st).tok with
  | Tid (("wire" | "reg" | "integer") as kw, false) ->
    advance st;
    let drange = parse_range_opt st in
    let rec names acc =
      let n = eat_ident st in
      let init =
        if at_punct st "=" then begin advance st; Some (parse_expr st) end
        else None
      in
      if at_punct st "," then begin advance st; names ((n, init) :: acc) end
      else List.rev ((n, init) :: acc)
    in
    let names = names [] in
    eat_punct st ";";
    [ Decl { dreg = kw <> "wire"; drange; names; dline = line } ]
  | Tid ("assign", false) ->
    advance st;
    let lhs = eat_ident st in
    eat_punct st "=";
    let rhs = parse_expr st in
    eat_punct st ";";
    [ Assign { lhs; rhs; aline = line } ]
  | Tid ("localparam", false) ->
    advance st;
    let rec go acc =
      let name = eat_ident st in
      eat_punct st "=";
      let value = parse_expr st in
      let acc = Localparam { name; value; lline = line } :: acc in
      if at_punct st "," then begin advance st; go acc end
      else begin
        eat_punct st ";";
        List.rev acc
      end
    in
    go []
  | Tid ("always", false) ->
    advance st;
    let trigger =
      if at_punct st "@" then begin
        advance st;
        eat_punct st "(";
        if at_punct st "*" then begin advance st; eat_punct st ")"; Star end
        else begin
          eat_kw st "posedge";
          let clk = eat_ident st in
          eat_punct st ")";
          Posedge clk
        end
      end
      else if at_punct st "#" then begin
        advance st;
        match (cur st).tok with
        | Tnum (_, v) -> advance st; Delay v
        | _ -> fail st "expected a delay after 'always #'"
      end
      else fail st "expected '@(posedge ...)' or '#N' after 'always'"
    in
    let body = parse_stmt st in
    [ Always { trigger; body; bline = line } ]
  | Tid ("initial", false) ->
    advance st;
    [ Initial (parse_stmt st) ]
  | Tid (name, esc) when esc || not (is_keyword name) ->
    advance st;
    [ parse_instance st name line ]
  | t -> fail st "expected a module item, found %s" (describe t)

let parse_module st =
  let mline = (cur st).line in
  eat_kw st "module";
  let name = eat_ident st in
  let mparams = parse_header_params st in
  let ports = if at_punct st "(" then parse_ports st else [] in
  eat_punct st ";";
  let items = ref [] in
  let rec go () =
    match (cur st).tok with
    | Tid ("endmodule", false) -> advance st
    | Teof -> fail st "missing 'endmodule' for module %S" name
    | _ ->
      (match parse_item st with
      | its -> items := List.rev_append its !items
      | exception Recover -> sync st);
      go ()
  in
  go ();
  { name; mparams; ports; items = List.rev !items; mline }

let parse ?max_errors ?file src =
  let collector = Diagnostic.collector ?max_errors () in
  if Inject.should_fire "rtl.parse" then
    Diagnostic.emit collector
      (Diagnostic.error ?file "injected fault at site rtl.parse");
  let diag line msg =
    Diagnostic.emit collector (Diagnostic.error ?file ~line msg)
  in
  let toks = lex ~diag src in
  let st = { toks; pos = 0; collector; file } in
  let modules = ref [] in
  let rec go () =
    match (cur st).tok with
    | Teof -> ()
    | Tid ("module", false) ->
      (match parse_module st with
      | m -> modules := m :: !modules
      | exception Recover ->
        sync st;
        (* a failed module header leaves us before the next sync point;
           make progress unconditionally so the loop terminates *)
        if at_kw st "module" then advance st);
      go ()
    | t ->
      err st (cur st).line "expected \"module\", found %s" (describe t);
      advance st;
      sync st;
      go ()
  in
  go ();
  let diagnostics = Diagnostic.all collector in
  let nerrors =
    List.length
      (List.filter (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error) diagnostics)
  in
  if nerrors > 0 then Telemetry.incr ~by:nerrors "rtl.parse_errors";
  { modules = List.rev !modules; diagnostics }

let errors t =
  List.filter (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error) t.diagnostics
