(** Parser for the Verilog subset this library emits.

    Reads the output of {!Verilog.emit}/{!Verilog.primitives},
    {!Testbench.generate} and {!Bist_wrapper.emit} back into a typed
    AST so the emitted RTL can be re-analyzed — structural equivalence
    ({!Equiv}), golden-drift detection, chaos semantic checks.

    Resilience contract: parsing {e never raises}. Malformed input
    produces a best-effort AST plus accumulated typed diagnostics with
    line numbers, capped by [max_errors]; recovery skips to the next
    [;] or [endmodule]. The [rtl.parse] injection site degrades to a
    counted error diagnostic, and every error diagnostic bumps the
    [rtl.parse_errors] telemetry counter. *)

type unop = Bnot  (** [~] *) | Lnot  (** [!] *) | Rxor  (** [^e] *) | Neg  (** [-e] *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor
  | Land | Lor
  | Eq | Neq | Lt | Le | Gt | Ge
  | Shl | Shr

type expr =
  | Ident of string
  | Num of int option * int  (** sized or unsized literal: [(width, value)] *)
  | Str of string  (** string literal (testbench [$display] arguments) *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Cond of expr * expr * expr
  | Concat of expr list
  | Repl of expr * expr  (** [{count{inner}}] *)
  | Index of expr * expr  (** [e\[i\]] *)
  | Range of expr * expr * expr  (** [e\[msb:lsb\]] *)

type dir = Input | Output

type port = {
  dir : dir;
  preg : bool;  (** declared [output reg] *)
  prange : (expr * expr) option;  (** [\[msb:lsb\]] *)
  pname : string;
  pline : int;
}

type stmt =
  | Block of stmt list
  | If of expr * stmt * stmt option
  | Case of expr * (expr list * stmt) list * stmt option
  | Nonblocking of string * expr  (** [lhs <= rhs] *)
  | Blocking of string * expr  (** [lhs = rhs] *)
  | Sys of string * expr list  (** [$display(...)], [$finish] ... *)
  | Timing of stmt option  (** [@(...)]/[#n] prefix, statement skipped *)
  | Nop

type trigger = Posedge of string | Delay of int | Star

type item =
  | Decl of {
      dreg : bool;  (** [reg]/[integer] as opposed to [wire] *)
      drange : (expr * expr) option;
      names : (string * expr option) list;  (** name, optional [= init] *)
      dline : int;
    }
  | Assign of { lhs : string; rhs : expr; aline : int }
  | Localparam of { name : string; value : expr; lline : int }
  | Always of { trigger : trigger; body : stmt; bline : int }
  | Initial of stmt
  | Instance of {
      module_name : string;
      params : (string * expr) list;  (** [#(.P(v), ...)] *)
      instance_name : string;
      conns : (string * expr) list;  (** [.port(expr), ...] *)
      iline : int;
    }

type module_ = {
  name : string;
  mparams : (string * expr) list;  (** header [#(parameter ...)] defaults *)
  ports : port list;
  items : item list;
  mline : int;
}

type t = {
  modules : module_ list;
  diagnostics : Bistpath_resilience.Diagnostic.t list;
}

val parse : ?max_errors:int -> ?file:string -> string -> t
(** Parse Verilog source text. Never raises; accumulates diagnostics
    (errors capped at [max_errors], default
    {!Bistpath_resilience.Diagnostic.default_max_errors}). [file] is
    stamped into diagnostics for reporting. *)

val errors : t -> Bistpath_resilience.Diagnostic.t list
(** The error-severity diagnostics of a parse (empty means the input
    was fully parsed). *)
