(** Bit-exact simulation of the emitted BIST architecture in test mode.

    Mirrors the Verilog semantics clock by clock — the step counter, the
    functional and test-override multiplexer selects, the LFSR/MISR
    update rules of the register primitives (feedback taps 0,1,3, seeds
    1 for generators and 0 for compactors), pins tied low — so the
    signatures it computes are exactly what the silicon's [sig_*] taps
    would show. Used to bake real golden values into the self-test
    wrapper, and to demonstrate RTL-level fault detection. *)

type golden = { session : int; rid : string; signature : int }

val golden_signatures :
  ?width:int ->
  ?patterns:int ->
  ?faulty_unit:string * (width:int -> int -> int -> int) ->
  Bistpath_datapath.Datapath.t ->
  Bistpath_bist.Allocator.solution ->
  Bistpath_bist.Session.t ->
  golden list
(** One record per (session, signature register of a unit tested in that
    session). [patterns] defaults to 2^width - 1 clocks per session.
    [faulty_unit] replaces the named unit's function (for demonstrating
    that a misbehaving unit corrupts its session's signature). Raises
    [Invalid_argument] if a tested unit's embedding uses a transparent
    via (the emitted overrides cover simple I-paths only). *)

val detects_fault :
  ?width:int ->
  ?patterns:int ->
  Bistpath_datapath.Datapath.t ->
  Bistpath_bist.Allocator.solution ->
  Bistpath_bist.Session.t ->
  mid:string ->
  fault:(width:int -> int -> int -> int) ->
  bool
(** Do the golden signatures differ when [mid] computes [fault] instead
    of its real function? *)
