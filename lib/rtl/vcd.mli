(** Value-change-dump (VCD) export of an interpreter trace, viewable in
    GTKWave & co: one wire per datapath register, one timestep per
    control step. *)

val of_trace :
  Bistpath_datapath.Datapath.t ->
  width:int ->
  Bistpath_datapath.Interp.trace_entry list ->
  string
(** Render a trace (from [Interp.run ~trace:true]). Registers appear
    under scope "datapath" in declaration order. *)

val dump_run :
  Bistpath_datapath.Datapath.t ->
  width:int ->
  inputs:(string * int) list ->
  string
(** Convenience: interpret the data path on [inputs] and render the
    trace. *)
