module Datapath = Bistpath_datapath.Datapath
module Control = Bistpath_datapath.Control
module Dfg = Bistpath_dfg.Dfg
module Op = Bistpath_dfg.Op
module Massign = Bistpath_dfg.Massign
module Resource = Bistpath_bist.Resource
module Allocator = Bistpath_bist.Allocator
module Session = Bistpath_bist.Session
module Ipath = Bistpath_ipath.Ipath
module Listx = Bistpath_util.Listx

type golden = { session : int; rid : string; signature : int }

(* Primitive update rules, mirroring the Verilog: feedback = shifted-out
   MSB xor parity of (q & 4'b1011) — an invertible state map, so no
   nonzero generator state can collapse to the stuck all-zero state —
   shift left, compactors XOR the data in. *)
let fb ~width q =
  ((q lsr (width - 1)) lxor q lxor (q lsr 1) lxor (q lsr 3)) land 1

let lfsr_step ~width ~mask q = (((q lsl 1) lor fb ~width q) land mask : int)

let misr_step ~width ~mask q d = ((((q lsl 1) lor fb ~width q) lxor d) land mask : int)

type regstate = { mutable q : int; mutable sig_rank : int }

let simulate_session ~width ~patterns ~faulty_unit (dp : Datapath.t)
    (sol : Allocator.solution) units =
  let mask = (1 lsl width) - 1 in
  let dfg = dp.Datapath.dfg in
  let control = Control.build dp in
  let steps = Dfg.num_csteps dfg in
  let style_of rid =
    match List.assoc_opt rid sol.Allocator.styles with
    | Some s -> s
    | None -> Resource.Normal
  in
  (* reset values: generator ranks seed 1, everything else 0 *)
  let state = Hashtbl.create 16 in
  List.iter
    (fun (r : Datapath.reg) ->
      let q0 =
        match style_of r.Datapath.rid with
        | Resource.Tpg | Resource.Bilbo | Resource.Cbilbo ->
          Verilog.test_seed ~width r.Datapath.rid
        | Resource.Sa | Resource.Normal -> 0
      in
      Hashtbl.replace state r.Datapath.rid { q = q0; sig_rank = 0 })
    dp.Datapath.regs;
  let reg rid = Hashtbl.find state rid in
  (* embeddings of the units tested in this session *)
  let tested =
    List.filter_map
      (fun (e : Ipath.embedding) ->
        if List.mem e.Ipath.mid units then begin
          if e.Ipath.l_via <> None || e.Ipath.r_via <> None then
            invalid_arg
              (Printf.sprintf
                 "Rtl_sim: unit %s uses a transparent via; emitted overrides cover simple I-paths only"
                 e.Ipath.mid);
          Some (e.Ipath.mid, e)
        end
        else None)
      sol.Allocator.embeddings
  in
  (* compact mode of a BILBO: it is the SA of some tested unit *)
  let compacts rid =
    List.exists (fun (_, (e : Ipath.embedding)) -> String.equal e.Ipath.sa rid) tested
  in
  (* per-step functional routing *)
  let activity_at st mid =
    List.find_map
      (fun (s : Control.step) ->
        if s.Control.index = st then
          List.find_opt (fun (o : Control.unit_op) -> String.equal o.Control.mid mid)
            s.Control.ops
        else None)
      control.Control.steps
  in
  let write_at st rid =
    List.find_map
      (fun (s : Control.step) ->
        if s.Control.index = st then
          List.find_opt (fun (w : Control.write) -> String.equal w.Control.rid rid)
            s.Control.writes
        else None)
      control.Control.steps
  in
  let unit_eval (u : Massign.hw) fsel l r =
    let eval kind = Op.eval kind ~width l r in
    let eval_real kind =
      match faulty_unit with
      | Some (m, f) when String.equal m u.Massign.mid -> f ~width l r
      | Some _ | None -> eval kind
    in
    match u.Massign.kinds with
    | [ k ] -> eval_real k
    | kinds -> (
      (* the emitted chain: fsel[0] ? e0 : ... : e_last *)
      let rec pick i = function
        | [ k ] -> eval_real k
        | k :: rest -> if (fsel lsr i) land 1 = 1 then eval_real k else pick (i + 1) rest
        | [] -> 0
      in
      pick 0 kinds)
  in
  let step = ref 0 in
  for _ = 1 to patterns do
    (* combinational phase: every unit output from current registers *)
    let outs = Hashtbl.create 8 in
    List.iter
      (fun (u : Massign.hw) ->
        let l_sources, r_sources = Datapath.unit_port_sources dp u.Massign.mid in
        if l_sources <> [] || r_sources <> [] then begin
          let port sources tpg_of select_of =
            match sources with
            | [] -> 0
            | _ -> (
              match List.assoc_opt u.Massign.mid tested with
              | Some e -> (reg (tpg_of e)).q
              | None -> (
                (* functional select by current step, default source 0 *)
                match activity_at !step u.Massign.mid with
                | Some o -> (reg (List.nth sources (select_of o))).q
                | None -> (reg (List.hd sources)).q))
          in
          let l =
            port l_sources (fun e -> e.Ipath.l_tpg) (fun o -> o.Control.l_select)
          in
          let r =
            port r_sources (fun e -> e.Ipath.r_tpg) (fun o -> o.Control.r_select)
          in
          let fsel =
            match List.assoc_opt u.Massign.mid tested with
            | Some _ -> 0 (* saturated/overridden: chain falls to last kind *)
            | None -> (
              match activity_at !step u.Massign.mid with
              | Some o -> 1 lsl o.Control.f_select
              | None -> 0)
          in
          Hashtbl.replace outs u.Massign.mid (unit_eval u fsel l r)
        end)
      dp.Datapath.massign.Massign.units;
    (* latch phase *)
    let updates =
      List.map
        (fun (r : Datapath.reg) ->
          let rid = r.Datapath.rid in
          let writers = List.assoc rid dp.Datapath.reg_writers in
          let d =
            match writers with
            | [] -> 0
            | _ -> (
              (* test override: compact the tested unit this register
                 serves as SA; else functional select; else writer 0 *)
              let test_src =
                List.find_map
                  (fun (mid, (e : Ipath.embedding)) ->
                    if String.equal e.Ipath.sa rid then
                      Listx.index_of (fun w -> w = Datapath.From_unit mid) writers
                    else None)
                  tested
              in
              let idx =
                match test_src with
                | Some i -> i
                | None -> (
                  match write_at !step rid with
                  | Some w -> w.Control.source_index
                  | None -> 0)
              in
              match List.nth writers idx with
              | Datapath.From_unit mid -> (
                match Hashtbl.find_opt outs mid with Some x -> x | None -> 0)
              | Datapath.From_port _ -> 0 (* pins tied low in self-test *))
          in
          let st = reg rid in
          let enabled = write_at !step rid <> None in
          let q', sig' =
            match style_of rid with
            | Resource.Normal -> ((if enabled then d else st.q), st.sig_rank)
            | Resource.Tpg -> (lfsr_step ~width ~mask st.q, st.sig_rank)
            | Resource.Sa -> (misr_step ~width ~mask st.q d, st.sig_rank)
            | Resource.Bilbo ->
              ((if compacts rid then misr_step ~width ~mask st.q d else lfsr_step ~width ~mask st.q),
               st.sig_rank)
            | Resource.Cbilbo -> (lfsr_step ~width ~mask st.q, misr_step ~width ~mask st.sig_rank d)
          in
          (rid, q', sig'))
        dp.Datapath.regs
    in
    List.iter
      (fun (rid, q', sig') ->
        let st = reg rid in
        st.q <- q';
        st.sig_rank <- sig')
      updates;
    if !step <= steps then incr step
  done;
  (* signatures of this session's SA registers *)
  List.map
    (fun (_, (e : Ipath.embedding)) ->
      let st = reg e.Ipath.sa in
      let signature =
        match style_of e.Ipath.sa with
        | Resource.Cbilbo -> st.sig_rank
        | Resource.Sa | Resource.Bilbo | Resource.Tpg | Resource.Normal -> st.q
      in
      (e.Ipath.sa, signature))
    tested
  |> List.sort_uniq compare

let golden_signatures ?(width = 8) ?patterns ?faulty_unit dp sol (sessions : Session.t) =
  let patterns = match patterns with Some p -> p | None -> (1 lsl width) - 1 in
  List.concat
    (List.mapi
       (fun k units ->
         simulate_session ~width ~patterns ~faulty_unit dp sol units
         |> List.map (fun (rid, signature) -> { session = k; rid; signature }))
       sessions.Session.sessions)

let detects_fault ?(width = 8) ?patterns dp sol sessions ~mid ~fault =
  let clean = golden_signatures ~width ?patterns dp sol sessions in
  let faulty = golden_signatures ~width ?patterns ~faulty_unit:(mid, fault) dp sol sessions in
  clean <> faulty
