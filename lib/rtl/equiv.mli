(** Structural and functional equivalence of emitted RTL against the
    in-memory data path.

    Closes the emission loop: {!Verilog.emit} output is parsed back
    ({!Parser}) and elaborated into a canonical netlist — one cell per
    register instance, with every combinational cone partially
    evaluated per (test context, control step) into name-free
    expression trees over the ports and register outputs. A reference
    netlist is built the same way directly from the
    {!Bistpath_datapath.Datapath.t} and its control table, and the two
    are matched name-insensitively: anchored on the port interface,
    registers paired by iterated structural color refinement (a
    Weisfeiler–Leman style partition over the per-slot input trees),
    with commutative operator inputs canonicalized so benign operand
    reordering never false-alarms. A random-vector simulation
    cross-check then runs the parsed AST cycle by cycle against
    {!Bistpath_datapath.Interp} and reports the first distinguishing
    vector.

    Structural differences and simulation mismatches are reported as
    data, never exceptions; unparsable input surfaces the parser's
    accumulated diagnostics. Each verification records its latency in
    the [rtl.verify_ns] telemetry histogram. *)

type mismatch = {
  vector : (string * int) list;  (** primary-input assignment *)
  output : string;  (** DFG output variable that disagrees *)
  expected : int;  (** in-memory model ({!Bistpath_datapath.Interp}) *)
  actual : int;  (** parsed-back RTL simulation *)
}

type report = {
  structural : string list;
      (** human-readable structural differences; empty = equivalent *)
  functional : mismatch option;
      (** first distinguishing vector; [None] = all vectors agree *)
  vectors_run : int;
}

val verify :
  ?vectors:int ->
  ?seed:int ->
  ?width:int ->
  ?bist:Bistpath_bist.Allocator.solution ->
  ?sessions:Bistpath_bist.Session.t ->
  ?regw:(string * int) list ->
  rtl:string ->
  Bistpath_datapath.Datapath.t ->
  (report, Bistpath_resilience.Diagnostic.t list) result
(** Parse [rtl] (expected: {!Verilog.primitives} + {!Verilog.emit}
    output, but any text is safe) and compare it against [dp] emitted
    with the same [width]/[bist]/[sessions]/[regw] configuration
    ([regw] mirrors {!Verilog.emit}'s narrowed register widths so the
    reference register cells carry the same [WIDTH] parameters the
    narrowed RTL declares). [Error]
    means the input was unparsable (accumulated diagnostics);
    elaboration problems in parsable input are reported as structural
    differences instead. [vectors] (default 16) random input vectors
    drive the simulation cross-check; 0 skips it ([functional] is
    [None]). [seed] (default 7) seeds the vector generator. *)

val drift :
  golden:string -> current:string -> (string list, Bistpath_resilience.Diagnostic.t list) result
(** Structural (not byte) comparison of two emitted RTL artifacts: the
    datapath modules are elaborated and matched exactly as in
    {!verify}, and every support (primitive) module is compared by
    location-stripped AST so formatting and comment churn never
    false-alarms while a semantic change always does. [Ok []] means no
    drift; [Error] means one side failed to parse (diagnostics carry
    the [golden:]/[current:] file tag). *)
