module Massign = Bistpath_dfg.Massign
module Op = Bistpath_dfg.Op
module Listx = Bistpath_util.Listx

type model = {
  register_per_bit : int;
  tpg_delta_per_bit : int;
  sa_delta_per_bit : int;
  bilbo_delta_per_bit : int;
  cbilbo_delta_per_bit : int;
  mux2_per_bit : int;
  add_per_bit : int;
  sub_per_bit : int;
  logic_per_bit : int;
  less_per_bit : int;
  mul_per_bit_sq : int;
  div_per_bit_sq : int;
  alu_base_per_bit : int;
  alu_per_kind_per_bit : int;
}

let default =
  {
    register_per_bit = 7;
    tpg_delta_per_bit = 3;
    sa_delta_per_bit = 4;
    bilbo_delta_per_bit = 5;
    cbilbo_delta_per_bit = 7;
    mux2_per_bit = 3;
    add_per_bit = 5;
    sub_per_bit = 6;
    logic_per_bit = 1;
    less_per_bit = 4;
    mul_per_bit_sq = 6;
    div_per_bit_sq = 8;
    alu_base_per_bit = 8;
    alu_per_kind_per_bit = 3;
  }

let register_gates m ~width = m.register_per_bit * width

let kind_gates m ~width = function
  | Op.Add -> m.add_per_bit * width
  | Op.Sub -> m.sub_per_bit * width
  | Op.And | Op.Or | Op.Xor -> m.logic_per_bit * width
  | Op.Less -> m.less_per_bit * width
  | Op.Mul -> m.mul_per_bit_sq * width * width
  | Op.Div -> m.div_per_bit_sq * width * width

let unit_gates m ~width (u : Massign.hw) =
  match u.kinds with
  | [] -> 0
  | [ k ] -> kind_gates m ~width k
  | kinds ->
    (m.alu_base_per_bit + (m.alu_per_kind_per_bit * List.length kinds)) * width

let mux_gates m ~width ~inputs =
  if inputs <= 1 then 0 else m.mux2_per_bit * width * (inputs - 1)

let functional_gates m ~width (dp : Datapath.t) =
  let regs = List.length dp.regs * register_gates m ~width in
  let units =
    Listx.sum_by (unit_gates m ~width) dp.massign.Massign.units
  in
  let muxes = m.mux2_per_bit * width * Datapath.mux_input_total dp in
  regs + units + muxes

type breakdown = {
  registers : int;
  dedicated_registers : int;
  units : int;
  muxes : int;
  total : int;
}

let breakdown m ~width (dp : Datapath.t) =
  let count p = List.length (List.filter p dp.regs) in
  let registers = count (fun r -> not r.Datapath.dedicated) * register_gates m ~width in
  let dedicated_registers = count (fun r -> r.Datapath.dedicated) * register_gates m ~width in
  let units = Listx.sum_by (unit_gates m ~width) dp.massign.Massign.units in
  let muxes = m.mux2_per_bit * width * Datapath.mux_input_total dp in
  { registers; dedicated_registers; units; muxes;
    total = registers + dedicated_registers + units + muxes }

let pp_breakdown ppf b =
  Format.fprintf ppf
    "registers %d + dedicated %d + units %d + muxes %d = %d gates"
    b.registers b.dedicated_registers b.units b.muxes b.total
