module Dfg = Bistpath_dfg.Dfg
module Op = Bistpath_dfg.Op
module Massign = Bistpath_dfg.Massign

type reg = { rid : string; vars : string list; dedicated : bool }

type route = {
  opid : string;
  l_reg : string;
  r_reg : string;
  swapped : bool;
  out_reg : string;
}

type wsrc = From_unit of string | From_port of string

type t = {
  dfg : Dfg.t;
  massign : Massign.t;
  regs : reg list;
  routes : route list;
  reg_writers : (string * wsrc list) list;
  outputs : (string * string) list;
}

let dedicated_rid v = "IN_" ^ v

let build dfg massign regalloc ~policy ~swap =
  Bistpath_dfg.Policy.validate dfg policy;
  if not (Regalloc.is_valid_for regalloc dfg ~policy) then
    invalid_arg "Datapath.build: register assignment does not fit the DFG";
  let allocated =
    List.map
      (fun (rid, vars) -> { rid; vars; dedicated = false })
      regalloc.Regalloc.classes
  in
  let carried_of v =
    List.filter_map
      (fun (w, target) -> if String.equal target v then Some w else None)
      policy.Bistpath_dfg.Policy.carried
  in
  let dedicated_inputs =
    if policy.Bistpath_dfg.Policy.allocate_inputs then []
    else
      dfg.Dfg.inputs
      |> List.filter (fun v -> Dfg.consumers dfg v <> [])
      |> List.map (fun v ->
             { rid = dedicated_rid v; vars = v :: carried_of v; dedicated = true })
  in
  let regs = allocated @ dedicated_inputs in
  let reg_of_var v =
    match Regalloc.register_of regalloc v with
    | Some rid -> rid
    | None -> (
      match Bistpath_dfg.Policy.carried_into policy v with
      | Some target -> dedicated_rid target
      | None ->
        if
          (not policy.Bistpath_dfg.Policy.allocate_inputs)
          && List.mem v dfg.Dfg.inputs
        then dedicated_rid v
        else
          invalid_arg (Printf.sprintf "Datapath.build: variable %s has no register" v))
  in
  let routes =
    List.map
      (fun (op : Op.t) ->
        let swapped = Op.commutative op.kind && swap op.id in
        let l_var, r_var = if swapped then (op.right, op.left) else (op.left, op.right) in
        {
          opid = op.id;
          l_reg = reg_of_var l_var;
          r_reg = reg_of_var r_var;
          swapped;
          out_reg = reg_of_var op.out;
        })
      dfg.Dfg.ops
  in
  let writers_of { rid; vars; dedicated = _ } =
    let from_units =
      vars
      |> List.filter_map (fun v ->
             Dfg.producer dfg v
             |> Option.map (fun (op : Op.t) -> From_unit (Massign.unit_of_op massign op.id).Massign.mid))
    in
    let from_ports =
      vars
      |> List.filter_map (fun v ->
             if List.mem v dfg.Dfg.inputs then Some (From_port v) else None)
    in
    (rid, List.sort_uniq compare (from_units @ from_ports))
  in
  let outputs =
    dfg.Dfg.outputs |> List.map (fun v -> (v, reg_of_var v))
  in
  { dfg; massign; regs; routes; reg_writers = List.map writers_of regs; outputs }

let reg_by_id t rid =
  match List.find_opt (fun r -> String.equal r.rid rid) t.regs with
  | Some r -> r
  | None -> raise Not_found

let routes_of_unit t mid =
  List.filter
    (fun r ->
      String.equal (Massign.unit_of_op t.massign r.opid).Massign.mid mid)
    t.routes

let unit_port_sources t mid =
  let rs = routes_of_unit t mid in
  let l = List.sort_uniq compare (List.map (fun r -> r.l_reg) rs) in
  let r = List.sort_uniq compare (List.map (fun r -> r.r_reg) rs) in
  (l, r)

let input_registers t mid =
  let l, r = unit_port_sources t mid in
  List.sort_uniq compare (l @ r)

let output_registers t mid =
  routes_of_unit t mid |> List.map (fun r -> r.out_reg) |> List.sort_uniq compare

let multiplexed_points t =
  let unit_points =
    List.concat_map
      (fun (u : Massign.hw) ->
        let l, r = unit_port_sources t u.mid in
        [ List.length l; List.length r ])
      t.massign.Massign.units
  in
  let reg_points = List.map (fun (_, ws) -> List.length ws) t.reg_writers in
  unit_points @ reg_points

let mux_count t =
  List.length (List.filter (fun n -> n >= 2) (multiplexed_points t))

let mux_input_total t =
  Bistpath_util.Listx.sum_by (fun n -> max 0 (n - 1)) (multiplexed_points t)

let allocated_register_count t =
  List.length (List.filter (fun r -> not r.dedicated) t.regs)

let self_adjacent_registers t =
  t.regs
  |> List.filter_map (fun { rid; _ } ->
         let loop =
           List.exists
             (fun (u : Massign.hw) ->
               List.mem rid (input_registers t u.mid)
               && List.mem rid (output_registers t u.mid))
             t.massign.Massign.units
         in
         if loop then Some rid else None)

let pp ppf t =
  Format.fprintf ppf "@[<v>registers:@,";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %s%s = {%s}@," r.rid
        (if r.dedicated then " (dedicated)" else "")
        (String.concat "," r.vars))
    t.regs;
  Format.fprintf ppf "units:@,";
  List.iter
    (fun (u : Massign.hw) ->
      let l, r = unit_port_sources t u.mid in
      Format.fprintf ppf "  %s: L<-{%s} R<-{%s} -> {%s}@," u.mid
        (String.concat "," l) (String.concat "," r)
        (String.concat "," (output_registers t u.mid)))
    t.massign.Massign.units;
  Format.fprintf ppf "register inputs:@,";
  List.iter
    (fun (rid, ws) ->
      let show = function From_unit m -> m | From_port v -> "pin:" ^ v in
      Format.fprintf ppf "  %s <- {%s}@," rid (String.concat "," (List.map show ws)))
    t.reg_writers;
  Format.fprintf ppf "outputs: %s@]"
    (String.concat ", " (List.map (fun (v, r) -> v ^ " from " ^ r) t.outputs))
