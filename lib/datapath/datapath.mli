(** Structural RTL data paths: registers, functional units and the
    multiplexer connectivity implied by a register assignment plus an
    operand-orientation (interconnect) choice.

    Every operand reaches a unit port from a register: variables excluded
    from allocation (DESIGN.md §3) get a dedicated input register. A port
    or register fed by more than one source gets a multiplexer. *)

type reg = {
  rid : string;
  vars : string list;  (** variables stored over time *)
  dedicated : bool;  (** dedicated I/O register, outside the allocated file *)
}

type route = {
  opid : string;
  l_reg : string;  (** register feeding the unit's left port *)
  r_reg : string;  (** register feeding the unit's right port *)
  swapped : bool;  (** operands exchanged w.r.t. the DFG text (commutative only) *)
  out_reg : string;  (** register receiving the result *)
}

type wsrc = From_unit of string | From_port of string
(** What can drive a register input: a functional unit's output, or a
    primary-input pin. *)

type t = {
  dfg : Bistpath_dfg.Dfg.t;
  massign : Bistpath_dfg.Massign.t;
  regs : reg list;
  routes : route list;  (** one per operation *)
  reg_writers : (string * wsrc list) list;  (** per register, distinct, sorted *)
  outputs : (string * string) list;  (** primary output variable -> register *)
}

val build :
  Bistpath_dfg.Dfg.t ->
  Bistpath_dfg.Massign.t ->
  Regalloc.t ->
  policy:Bistpath_dfg.Policy.t ->
  swap:(string -> bool) ->
  t
(** Assemble the data path. [swap op] decides operand orientation per
    operation (ignored — forced to [false] — for non-commutative kinds).
    Variables excluded from allocation by the policy live in dedicated
    registers named "IN_<input>"; a carried result is routed into its
    target's dedicated register (loop write-back). Raises
    [Invalid_argument] if the register assignment does not cover the DFG
    ({!Regalloc.is_valid_for}). *)

val reg_by_id : t -> string -> reg
(** Raises [Not_found]. *)

val unit_port_sources : t -> string -> string list * string list
(** Distinct registers feeding the (left, right) ports of a unit, each
    list sorted. *)

val input_registers : t -> string -> string list
(** IR_k of Definition 6: registers holding at least one operand of some
    instance of the unit — equals the union of both port source lists. *)

val output_registers : t -> string -> string list
(** OR_k of Definition 6: registers receiving at least one result of the
    unit. *)

val mux_count : t -> int
(** Number of multiplexers: one per unit port or register input with two
    or more distinct sources (the counting used by the paper's Table I). *)

val mux_input_total : t -> int
(** Total 2:1-multiplexer equivalents: sum over multiplexed points of
    (sources - 1); used by the area model. *)

val allocated_register_count : t -> int
(** Registers excluding dedicated I/O registers (Table I's "# Reg"). *)

val self_adjacent_registers : t -> string list
(** Registers R with a combinational loop R -> unit -> R: R feeds some
    port of a unit (in any instance) and also receives that unit's
    output (in any instance). Avra's RALLOC minimizes these; testing
    such a unit with R as both pattern source and response sink needs a
    CBILBO. *)

val pp : Format.formatter -> t -> unit
