(** Clock-period and test-time estimation.

    A simple level-based delay model (gate levels, not picoseconds): the
    clock period of a data path is set by its slowest register-to-
    register path — port multiplexer, functional unit, destination
    multiplexer. Test time combines sessions, patterns and the clock. *)

val unit_levels : width:int -> Bistpath_dfg.Massign.hw -> int
(** Logic depth of a unit: ripple adder/subtractor ~ 2 levels per bit,
    comparator 3 per bit, array multiplier ~ 4 per bit, divider ~ 6 per
    bit, bitwise logic 1; an ALU adds 2 levels of result selection on
    top of its slowest kind. *)

val mux_levels : inputs:int -> int
(** ceil(log2 k) levels of 2:1 multiplexing; 0 for k <= 1. *)

val clock_levels : width:int -> Datapath.t -> int
(** The critical register-to-register path of the data path. *)

val schedule_latency : Datapath.t -> int
(** Control steps per execution, including the input-load step. *)

val execution_levels : width:int -> Datapath.t -> int
(** latency x clock: total gate levels per DFG execution. *)

type test_time = {
  sessions : int;
  patterns_per_session : int;
  clock : int;  (** gate levels per test clock *)
  total_cycles : int;  (** sessions x patterns *)
}

val test_time : ?patterns:int -> width:int -> Datapath.t -> sessions:int -> test_time
(** Patterns default to one LFSR period (2^width - 1). *)

val pp_test_time : Format.formatter -> test_time -> unit
