module Dfg = Bistpath_dfg.Dfg
module Op = Bistpath_dfg.Op

type trace_entry = {
  step : int;
  register_file : (string * int) list;
}

let run ?(trace = false) (dp : Datapath.t) ~width ~inputs =
  let dfg = dp.Datapath.dfg in
  let used_inputs = List.filter (fun v -> Dfg.consumers dfg v <> []) dfg.Dfg.inputs in
  List.iter
    (fun v ->
      if not (List.mem_assoc v inputs) then
        invalid_arg (Printf.sprintf "Interp.run: missing value for input %s" v))
    used_inputs;
  let pin v =
    match List.assoc_opt v inputs with
    | Some x -> x land ((1 lsl width) - 1)
    | None -> invalid_arg (Printf.sprintf "Interp.run: no pin %s" v)
  in
  let control = Control.build dp in
  let regs = Hashtbl.create 16 in
  List.iter (fun (r : Datapath.reg) -> Hashtbl.replace regs r.Datapath.rid 0) dp.Datapath.regs;
  let reg_value rid = Hashtbl.find regs rid in
  let route_of opid =
    List.find (fun (rt : Datapath.route) -> String.equal rt.opid opid) dp.Datapath.routes
  in
  let captured = Hashtbl.create 8 in
  let capture_step v =
    match Dfg.producer dfg v with
    | Some op -> Dfg.cstep dfg op.Op.id
    | None -> 0
  in
  let traces = ref [] in
  List.iter
    (fun (s : Control.step) ->
      (* compute phase: every active unit reads the current registers *)
      let unit_results = Hashtbl.create 8 in
      List.iter
        (fun (uop : Control.unit_op) ->
          let rt = route_of uop.Control.opid in
          let op =
            match Dfg.op_by_id dfg uop.Control.opid with
            | Some op -> op
            | None -> assert false
          in
          let result =
            Op.eval op.Op.kind ~width (reg_value rt.Datapath.l_reg)
              (reg_value rt.Datapath.r_reg)
          in
          Hashtbl.replace unit_results uop.Control.mid result)
        s.Control.ops;
      (* latch phase *)
      let pending =
        List.map
          (fun (w : Control.write) ->
            let writers = List.assoc w.Control.rid dp.Datapath.reg_writers in
            let value =
              match List.nth writers w.Control.source_index with
              | Datapath.From_unit mid -> (
                match Hashtbl.find_opt unit_results mid with
                | Some x -> x
                | None ->
                  invalid_arg
                    (Printf.sprintf "Interp.run: %s latches from idle unit %s"
                       w.Control.rid mid))
              | Datapath.From_port v -> pin v
            in
            (w.Control.rid, value))
          s.Control.writes
      in
      List.iter (fun (rid, x) -> Hashtbl.replace regs rid x) pending;
      (* capture primary outputs that became available this step *)
      List.iter
        (fun (v, rid) ->
          if capture_step v = s.Control.index && not (Hashtbl.mem captured v) then
            Hashtbl.replace captured v
              (match Dfg.producer dfg v with
              | Some _ -> reg_value rid
              | None -> pin v))
        dp.Datapath.outputs;
      if trace then
        traces :=
          {
            step = s.Control.index;
            register_file =
              List.map (fun (r : Datapath.reg) -> (r.Datapath.rid, reg_value r.Datapath.rid))
                dp.Datapath.regs;
          }
          :: !traces)
    control.Control.steps;
  let outputs =
    List.map (fun (v, _) -> (v, Hashtbl.find captured v)) dp.Datapath.outputs
    |> List.sort compare
  in
  (outputs, List.rev !traces)

let equivalent_to_dfg dp ~width ~inputs =
  let got, _ = run dp ~width ~inputs in
  let expected = Bistpath_dfg.Eval.run dp.Datapath.dfg ~width ~inputs in
  got = expected

let run_iterations dp ~policy ~width ~iterations ~inputs =
  if iterations < 1 then invalid_arg "Interp.run_iterations: iterations must be >= 1";
  let carried = policy.Bistpath_dfg.Policy.carried in
  List.iter
    (fun (w, _) ->
      if not (List.mem_assoc w dp.Datapath.outputs) then
        invalid_arg
          (Printf.sprintf
             "Interp.run_iterations: carried result %s is not a primary output" w))
    carried;
  let rec go k inputs acc =
    let outs, _ = run dp ~width ~inputs in
    let acc = outs :: acc in
    if k = iterations then List.rev acc
    else
      let next =
        List.map
          (fun (v, x) ->
            match List.find_opt (fun (_, target) -> String.equal target v) carried with
            | Some (w, _) -> (v, List.assoc w outs)
            | None -> (v, x))
          inputs
      in
      go (k + 1) next acc
  in
  go 1 inputs []
