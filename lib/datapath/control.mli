(** Controller synthesis: the per-control-step words that drive the data
    path — multiplexer selects, ALU function selects and register
    enables. Step 0 is the input-load phase (primary inputs latched into
    their registers); steps 1..T mirror the schedule, with each step's
    results latched at its end. *)

type write = {
  rid : string;
  source_index : int;  (** index into the register's writer list *)
  variable : string;  (** the value being latched (result or input) *)
}

type unit_op = {
  mid : string;
  opid : string;
  l_select : int;  (** index into the unit's left-port source list *)
  r_select : int;  (** index into the right-port source list *)
  f_select : int;  (** index into the unit's kind list (0 for single-function) *)
}

type step = {
  index : int;  (** 0 = load phase, then 1..T *)
  ops : unit_op list;  (** units computing during this step *)
  writes : write list;  (** registers latching at the end of this step *)
}

type t = { steps : step list (* by index, 0..T *) }

val build : Datapath.t -> t
(** Derive the full control table. Raises [Invalid_argument] if some
    register would have to latch two values in one step (impossible for
    a valid register assignment — the lifetimes would overlap). *)

val register_enables : t -> string -> int list
(** Steps at whose end the register latches. *)

val pp : Format.formatter -> t -> unit
