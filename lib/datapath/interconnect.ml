module Dfg = Bistpath_dfg.Dfg
module Op = Bistpath_dfg.Op
module Massign = Bistpath_dfg.Massign
module Policy = Bistpath_dfg.Policy
module Listx = Bistpath_util.Listx
module Telemetry = Bistpath_telemetry.Telemetry

type objective = { weight : string -> int }

let lr_registers dp mid =
  let l, r = Datapath.unit_port_sources dp mid in
  List.filter (fun x -> List.mem x r) l

(* Register feeding each operand of an instance, without building the
   data path: mirrors Datapath.build's reg_of_var. *)
let operand_regs regalloc policy (op : Op.t) =
  let reg_of v =
    match Regalloc.register_of regalloc v with
    | Some rid -> rid
    | None -> (
      match Policy.carried_into policy v with
      | Some target -> "IN_" ^ target
      | None -> "IN_" ^ v)
  in
  (reg_of op.left, reg_of op.right)

(* Score one unit's orientation assignment directly from the instance
   list: smaller tuples are better. [swaps] has one bit per instance
   (non-commutative instances are pinned to false). *)
let score_unit objective instances swaps =
  Telemetry.incr "interconnect.orientations";
  let l_sources = Hashtbl.create 8 and r_sources = Hashtbl.create 8 in
  List.iteri
    (fun i ((l, r), _commutative) ->
      let l, r = if swaps.(i) then (r, l) else (l, r) in
      Hashtbl.replace l_sources l ();
      Hashtbl.replace r_sources r ())
    instances;
  let connections = Hashtbl.length l_sources + Hashtbl.length r_sources in
  let lr_weight =
    Hashtbl.fold
      (fun reg () acc -> if Hashtbl.mem r_sources reg then acc + objective.weight reg else acc)
      l_sources 0
  in
  (* among equal-cost orientations, balanced port source counts offer the
     BIST search more distinct TPG pairs *)
  let balance = min (Hashtbl.length l_sources) (Hashtbl.length r_sources) in
  let swap_count = Array.fold_left (fun acc s -> acc + if s then 1 else 0) 0 swaps in
  (connections, -lr_weight, (-balance, swap_count))

let optimize dfg massign regalloc ~policy ~objective =
  (* Orientations of different units are independent; optimize each unit
     separately, then build the data path once. *)
  let best_swaps_for (u : Massign.hw) =
    let ops = Massign.instances massign dfg u.mid in
    let instances =
      List.map
        (fun (op : Op.t) -> (operand_regs regalloc policy op, Op.commutative op.kind))
        ops
    in
    let free_idx =
      List.concat (List.mapi (fun i (_, c) -> if c then [ i ] else []) instances)
    in
    let free = List.length free_idx in
    let n = List.length instances in
    let swaps = Array.make n false in
    let apply_mask mask =
      List.iteri (fun bit i -> swaps.(i) <- mask land (1 lsl bit) <> 0) free_idx
    in
    let best = ref (score_unit objective instances swaps) in
    let best_mask = ref 0 in
    if free <= 12 then
      (* exhaustive *)
      for mask = 0 to (1 lsl free) - 1 do
        apply_mask mask;
        let s = score_unit objective instances swaps in
        if s < !best then begin
          best := s;
          best_mask := mask
        end
      done
    else begin
      (* greedy hill climbing from the identity orientation *)
      apply_mask 0;
      best := score_unit objective instances swaps;
      let improved = ref true in
      let mask = ref 0 in
      while !improved do
        improved := false;
        List.iteri
          (fun bit _ ->
            let candidate = !mask lxor (1 lsl bit) in
            apply_mask candidate;
            let s = score_unit objective instances swaps in
            if s < !best then begin
              best := s;
              mask := candidate;
              improved := true
            end)
          free_idx
      done;
      best_mask := !mask
    end;
    apply_mask !best_mask;
    let tbl = Hashtbl.create 8 in
    List.iteri (fun i (op : Op.t) -> Hashtbl.replace tbl op.id swaps.(i)) ops;
    tbl
  in
  let per_unit =
    List.map (fun (u : Massign.hw) -> (u.mid, best_swaps_for u)) massign.Massign.units
  in
  let swap opid =
    let mid = (Massign.unit_of_op massign opid).Massign.mid in
    match List.assoc_opt mid per_unit with
    | Some tbl -> ( match Hashtbl.find_opt tbl opid with Some s -> s | None -> false)
    | None -> false
  in
  Datapath.build dfg massign regalloc ~policy ~swap
