module Op = Bistpath_dfg.Op
module Massign = Bistpath_dfg.Massign
module Dfg = Bistpath_dfg.Dfg

let kind_levels ~width = function
  | Op.Add -> 2 * width
  | Op.Sub -> (2 * width) + 1
  | Op.Less -> 3 * width
  | Op.And | Op.Or | Op.Xor -> 1
  | Op.Mul -> 4 * width
  | Op.Div -> 6 * width

let unit_levels ~width (u : Massign.hw) =
  match u.kinds with
  | [] -> 0
  | [ k ] -> kind_levels ~width k
  | kinds ->
    2 + List.fold_left (fun acc k -> max acc (kind_levels ~width k)) 0 kinds

let mux_levels ~inputs =
  if inputs <= 1 then 0
  else
    let rec go k levels = if k >= inputs then levels else go (k * 2) (levels + 1) in
    go 1 0

let clock_levels ~width (dp : Datapath.t) =
  let unit_paths =
    List.filter_map
      (fun (u : Massign.hw) ->
        let l, r = Datapath.unit_port_sources dp u.mid in
        if l = [] && r = [] then None
        else
          Some
            (max (mux_levels ~inputs:(List.length l)) (mux_levels ~inputs:(List.length r))
            + unit_levels ~width u))
      dp.Datapath.massign.Massign.units
  in
  let reg_paths =
    List.map (fun (_, ws) -> mux_levels ~inputs:(List.length ws)) dp.Datapath.reg_writers
  in
  (* unit path already lands at a register input mux; combine the
     slowest unit with the deepest destination mux conservatively *)
  let deepest_reg_mux = List.fold_left max 0 reg_paths in
  List.fold_left max 1 (List.map (fun p -> p + deepest_reg_mux) unit_paths)

let schedule_latency (dp : Datapath.t) = Dfg.num_csteps dp.Datapath.dfg + 1

let execution_levels ~width dp = clock_levels ~width dp * schedule_latency dp

type test_time = {
  sessions : int;
  patterns_per_session : int;
  clock : int;
  total_cycles : int;
}

let test_time ?patterns ~width dp ~sessions =
  let patterns_per_session =
    match patterns with Some p -> p | None -> (1 lsl width) - 1
  in
  {
    sessions;
    patterns_per_session;
    clock = clock_levels ~width dp;
    total_cycles = sessions * patterns_per_session;
  }

let pp_test_time ppf t =
  Format.fprintf ppf "%d session%s x %d patterns = %d cycles (clock ~%d gate levels)"
    t.sessions
    (if t.sessions = 1 then "" else "s")
    t.patterns_per_session t.total_cycles t.clock
