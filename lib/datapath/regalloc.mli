(** A register assignment Pi_R: a partition of the (allocated) variables
    into registers (Section III of the paper). *)

type t = {
  classes : (string * string list) list;
      (** register id -> variables it holds, ids unique, variables sorted *)
}

val make : (string * string list) list -> t
(** Validate: unique register ids, no variable in two registers, no empty
    register. Raises [Invalid_argument]. *)

val of_coloring :
  Bistpath_graphs.Coloring.t -> index_to_var:(int -> string) -> t
(** Registers named "R1".."Rk" from color classes 0..k-1. *)

val register_of : t -> string -> string option
(** Register holding a variable, if allocated. *)

val num_registers : t -> int

val variables : t -> string list

val is_valid_for : t -> Bistpath_dfg.Dfg.t -> policy:Bistpath_dfg.Policy.t -> bool
(** Partition covers exactly the allocatable variables under the policy
    and no two variables sharing a register have overlapping lifetimes. *)

val pp : Format.formatter -> t -> unit
(** e.g. "R1={a,c,f} R2={b,d,g,h} R3={e}". *)
