module Dfg = Bistpath_dfg.Dfg
module Op = Bistpath_dfg.Op
module Massign = Bistpath_dfg.Massign
module Lifetime = Bistpath_dfg.Lifetime
module Listx = Bistpath_util.Listx

type write = {
  rid : string;
  source_index : int;
  variable : string;
}

type unit_op = {
  mid : string;
  opid : string;
  l_select : int;
  r_select : int;
  f_select : int;
}

type step = {
  index : int;
  ops : unit_op list;
  writes : write list;
}

type t = { steps : step list }

let index_of_exn what x l =
  match Listx.index_of (fun y -> y = x) l with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Control.build: %s not found" what)

let build (dp : Datapath.t) =
  let dfg = dp.Datapath.dfg in
  let num_steps = Dfg.num_csteps dfg in
  let writer_index rid src =
    let writers = List.assoc rid dp.Datapath.reg_writers in
    index_of_exn (Printf.sprintf "writer of %s" rid) src writers
  in
  (* computation and result latching per scheduled operation *)
  let op_events =
    List.map
      (fun (rt : Datapath.route) ->
        let op =
          match Dfg.op_by_id dfg rt.opid with
          | Some op -> op
          | None -> assert false
        in
        let u = Massign.unit_of_op dp.Datapath.massign rt.opid in
        let l_sources, r_sources = Datapath.unit_port_sources dp u.Massign.mid in
        let cstep = Dfg.cstep dfg rt.opid in
        let uop =
          {
            mid = u.Massign.mid;
            opid = rt.opid;
            l_select = index_of_exn "left source" rt.l_reg l_sources;
            r_select = index_of_exn "right source" rt.r_reg r_sources;
            f_select = index_of_exn "function" op.Op.kind u.Massign.kinds;
          }
        in
        let write =
          {
            rid = rt.out_reg;
            source_index = writer_index rt.out_reg (Datapath.From_unit u.Massign.mid);
            variable = op.Op.out;
          }
        in
        (cstep, uop, write))
      dp.Datapath.routes
  in
  (* input loads: latch each stored primary input at the end of its
     birth step (one step before first use) *)
  let load_events =
    List.concat_map
      (fun (r : Datapath.reg) ->
        List.filter_map
          (fun v ->
            if List.mem v dfg.Dfg.inputs && Dfg.consumers dfg v <> [] then
              let birth = (Lifetime.span dfg v).Bistpath_graphs.Interval.birth in
              Some
                ( birth,
                  {
                    rid = r.Datapath.rid;
                    source_index = writer_index r.Datapath.rid (Datapath.From_port v);
                    variable = v;
                  } )
            else None)
          r.Datapath.vars)
      dp.Datapath.regs
  in
  let steps =
    List.map
      (fun index ->
        let ops =
          List.filter_map (fun (c, uop, _) -> if c = index then Some uop else None) op_events
        in
        let writes =
          List.filter_map (fun (c, _, w) -> if c = index then Some w else None) op_events
          @ List.filter_map (fun (c, w) -> if c = index then Some w else None) load_events
        in
        (* a register latches at most once per step *)
        let rids = List.map (fun w -> w.rid) writes in
        (match
           List.find_opt (fun r -> List.length (List.filter (String.equal r) rids) > 1) rids
         with
        | Some rid ->
          invalid_arg
            (Printf.sprintf "Control.build: register %s written twice in step %d" rid index)
        | None -> ());
        { index; ops; writes })
      (Listx.range 0 (num_steps + 1))
  in
  { steps }

let register_enables t rid =
  List.filter_map
    (fun s -> if List.exists (fun w -> String.equal w.rid rid) s.writes then Some s.index else None)
    t.steps

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun s ->
      if s.ops <> [] || s.writes <> [] then begin
        Format.fprintf ppf "step %d:@," s.index;
        List.iter
          (fun o ->
            Format.fprintf ppf "  %s runs %s (L=%d R=%d F=%d)@," o.mid o.opid o.l_select
              o.r_select o.f_select)
          s.ops;
        List.iter
          (fun w ->
            Format.fprintf ppf "  %s <= source %d (%s)@," w.rid w.source_index w.variable)
          s.writes
      end)
    t.steps;
  Format.fprintf ppf "@]"
