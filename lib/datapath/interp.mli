(** Cycle-accurate interpretation of a synthesized data path.

    Executes the control table step by step over the register file:
    during a step every active unit reads its selected registers and
    computes; at the step's end the selected registers latch. Primary
    outputs are captured from their registers in the step after their
    value is latched (while it is still live).

    This is the repository's strongest functional check: for every
    register assignment and interconnect choice, the interpreted data
    path must agree with the behavioural DFG evaluation
    ({!Bistpath_dfg.Eval}). *)

type trace_entry = {
  step : int;
  register_file : (string * int) list;  (** after the step's latches *)
}

val run :
  ?trace:bool ->
  Datapath.t ->
  width:int ->
  inputs:(string * int) list ->
  (string * int) list * trace_entry list
(** Returns the primary outputs (sorted by name) and, with [~trace:true],
    the register file after every step. Raises [Invalid_argument] on
    missing inputs (via {!Bistpath_dfg.Eval}-compatible checking). *)

val equivalent_to_dfg :
  Datapath.t -> width:int -> inputs:(string * int) list -> bool
(** Do the interpreted data path and the behavioural evaluation agree on
    every primary output? *)

val run_iterations :
  Datapath.t ->
  policy:Bistpath_dfg.Policy.t ->
  width:int ->
  iterations:int ->
  inputs:(string * int) list ->
  (string * int) list list
(** Execute the loop body repeatedly: carried registers (e.g. x1 -> x)
    keep their written-back values between iterations, so iteration n+1
    reads iteration n's results — the hardware loop the Paulin
    benchmark's data path implements. Non-carried inputs are re-applied
    every iteration. Returns the primary outputs of each iteration.
    Raises [Invalid_argument] if [iterations < 1]. *)
