module Dfg = Bistpath_dfg.Dfg
module Lifetime = Bistpath_dfg.Lifetime
module Interval = Bistpath_graphs.Interval

type t = { classes : (string * string list) list }

let make classes =
  let ids = List.map fst classes in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Regalloc.make: duplicate register id";
  List.iter
    (fun (rid, vars) ->
      if vars = [] then invalid_arg (Printf.sprintf "Regalloc.make: register %s is empty" rid))
    classes;
  let all = List.concat_map snd classes in
  if List.length (List.sort_uniq compare all) <> List.length all then
    invalid_arg "Regalloc.make: variable allocated twice";
  { classes = List.map (fun (rid, vars) -> (rid, List.sort compare vars)) classes }

let of_coloring coloring ~index_to_var =
  let classes =
    Bistpath_graphs.Coloring.classes coloring
    |> List.map (fun (c, members) ->
           (Printf.sprintf "R%d" (c + 1), List.map index_to_var members))
  in
  make classes

let register_of t v =
  List.find_opt (fun (_, vars) -> List.mem v vars) t.classes |> Option.map fst

let num_registers t = List.length t.classes

let variables t = List.sort compare (List.concat_map snd t.classes)

let is_valid_for t dfg ~policy =
  let expected = List.map fst (Lifetime.spans ~policy dfg) in
  List.sort compare expected = variables t
  && List.for_all
       (fun (_, vars) ->
         Bistpath_util.Listx.pairs vars
         |> List.for_all (fun (u, v) ->
                not (Interval.overlap (Lifetime.span dfg u) (Lifetime.span dfg v))))
       t.classes

let pp ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_space
    (fun ppf (rid, vars) ->
      Format.fprintf ppf "%s={%s}" rid (String.concat "," vars))
    ppf t.classes
