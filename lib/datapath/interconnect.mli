(** Minimum interconnect assignment (Section IV).

    After register assignment, each commutative operation may present its
    operands to its unit's (left, right) ports in either orientation. The
    orientation choice partitions each unit's input registers into
    IR^L, IR^R and IR^LR (connected to both ports); Pangrle's minimum
    connectivity result says to minimize |IR^LR|, which here equals
    minimizing the total number of port-source connections. The paper
    further directs ties so that registers with high sharing degrees land
    in IR^LR (better TPG candidates). *)

type objective = {
  weight : string -> int;
      (** reward for a register connected to both ports of some unit; the
          testable flow passes the register sharing degree, the
          traditional flow passes [fun _ -> 0] *)
}

val optimize :
  Bistpath_dfg.Dfg.t ->
  Bistpath_dfg.Massign.t ->
  Regalloc.t ->
  policy:Bistpath_dfg.Policy.t ->
  objective:objective ->
  Datapath.t
(** Exhaustive orientation search per unit (units are independent;
    2^instances each, instances are small). Primary objective: fewest
    total connections; tie-break: largest summed [weight] over registers
    in IR^LR; final tie-break: no swaps preferred. *)

val lr_registers : Datapath.t -> string -> string list
(** IR^LR of a unit: registers feeding both its ports. *)
