(** Gate-equivalent area model (DESIGN.md §3).

    The paper measured overhead in gate counts of a proprietary library;
    we use a self-consistent model: every figure is gates for a [width]-
    bit datapath. The same model is applied to the traditional and the
    testable flow, so the overhead *ratios* are comparable even though
    absolute percentages differ from the paper's library. *)

type model = {
  register_per_bit : int;  (** plain load-enabled register *)
  tpg_delta_per_bit : int;  (** extra gates to make a register an LFSR TPG *)
  sa_delta_per_bit : int;  (** extra gates for MISR signature analysis *)
  bilbo_delta_per_bit : int;  (** TPG+SA capable (different sessions) *)
  cbilbo_delta_per_bit : int;  (** concurrent BILBO: TPG and SA at once *)
  mux2_per_bit : int;  (** one 2:1 multiplexer slice *)
  add_per_bit : int;
  sub_per_bit : int;
  logic_per_bit : int;  (** and / or / xor *)
  less_per_bit : int;  (** magnitude comparator slice *)
  mul_per_bit_sq : int;  (** array multiplier: coefficient of width^2 *)
  div_per_bit_sq : int;  (** restoring divider: coefficient of width^2 *)
  alu_base_per_bit : int;  (** multifunction unit: base cost *)
  alu_per_kind_per_bit : int;  (** plus this per supported operation kind *)
}

val default : model
(** Values chosen so that a CBILBO costs about twice a plain register
    (the paper's stated ratio) and TPG < SA < BILBO < CBILBO. *)

val register_gates : model -> width:int -> int

val unit_gates : model -> width:int -> Bistpath_dfg.Massign.hw -> int

val mux_gates : model -> width:int -> inputs:int -> int
(** A k:1 multiplexer as (k-1) 2:1 slices; 0 for k <= 1. *)

val functional_gates : model -> width:int -> Datapath.t -> int
(** Registers (including dedicated ones) + units + multiplexers, before
    any BIST modification: the overhead denominator. *)

type breakdown = {
  registers : int;
  dedicated_registers : int;
  units : int;
  muxes : int;
  total : int;
}
(** Itemized gate counts; [registers] covers allocated registers only,
    [total] = all four. *)

val breakdown : model -> width:int -> Datapath.t -> breakdown

val pp_breakdown : Format.formatter -> breakdown -> unit
