module Dfg = Bistpath_dfg.Dfg
module Datapath = Bistpath_datapath.Datapath

type kind = Seq | Comb | Source | Sink

type pin = { net : string; width : int }

type cell = { cid : string; kind : kind; ins : pin list; outs : pin list }

type t = { cells : cell list }

let sel_width n =
  let rec bits acc v = if v <= 1 then acc else bits (acc + 1) ((v + 1) / 2) in
  max 1 (bits 0 n)

(* Net naming scheme. Every net is identified by what produces or
   consumes it, mirroring the emitter's wire names closely enough that
   findings are actionable. *)
let reg_net rid = "reg:" ^ rid
let pin_net v = "pin:" ^ v
let unit_net mid = "unit:" ^ mid
let regin_net rid = "regin:" ^ rid
let port_net mid side = "port:" ^ mid ^ "." ^ side
let sel_net what = "sel:" ^ what
let en_net rid = "en:" ^ rid

let of_datapath ~width (dp : Datapath.t) =
  let writers rid =
    match List.assoc_opt rid dp.Datapath.reg_writers with
    | Some ws -> ws
    | None -> []
  in
  (* Routes grouped per unit, resolved through the op->unit map without
     raising on a dangling opid (the datapath rules report those). *)
  let mid_of_op opid = Dfg.Smap.find_opt opid dp.Datapath.massign.Bistpath_dfg.Massign.of_op in
  let unit_routes =
    List.filter_map
      (fun (u : Bistpath_dfg.Massign.hw) ->
        let rs =
          List.filter
            (fun (r : Datapath.route) -> mid_of_op r.Datapath.opid = Some u.Bistpath_dfg.Massign.mid)
            dp.Datapath.routes
        in
        if rs = [] then None else Some (u, rs))
      dp.Datapath.massign.Bistpath_dfg.Massign.units
  in
  let port_sources rs side =
    List.sort_uniq compare
      (List.map
         (fun (r : Datapath.route) ->
           match side with `L -> r.Datapath.l_reg | `R -> r.Datapath.r_reg)
         rs)
  in
  let wsrc_net = function
    | Datapath.From_unit m -> unit_net m
    | Datapath.From_port v -> pin_net v
  in
  (* Primary-input pins: every From_port mentioned anywhere. *)
  let pins =
    List.sort_uniq compare
      (List.concat_map
         (fun (_, ws) ->
           List.filter_map
             (function Datapath.From_port v -> Some v | Datapath.From_unit _ -> None)
             ws)
         dp.Datapath.reg_writers)
  in
  let pin_cells =
    List.map
      (fun v -> { cid = "pin:" ^ v; kind = Source; ins = []; outs = [ { net = pin_net v; width } ] })
      pins
  in
  (* Controller: one Seq cell sourcing every select and enable word. *)
  let ctrl_outs =
    List.concat_map
      (fun (reg : Datapath.reg) ->
        let rid = reg.Datapath.rid in
        let ws = writers rid in
        let sel =
          if List.length ws >= 2 then
            [ { net = sel_net (rid ^ ".in"); width = sel_width (List.length ws) } ]
          else []
        in
        { net = en_net rid; width = 1 } :: sel)
      dp.Datapath.regs
    @ List.concat_map
        (fun ((u : Bistpath_dfg.Massign.hw), rs) ->
          let mid = u.Bistpath_dfg.Massign.mid in
          let per side tag =
            let srcs = port_sources rs side in
            if List.length srcs >= 2 then
              [ { net = sel_net (mid ^ "." ^ tag); width = sel_width (List.length srcs) } ]
            else []
          in
          let fsel =
            if List.length u.Bistpath_dfg.Massign.kinds >= 2 then
              [ { net = sel_net (mid ^ ".F");
                  width = sel_width (List.length u.Bistpath_dfg.Massign.kinds) } ]
            else []
          in
          per `L "L" @ per `R "R" @ fsel)
        unit_routes
  in
  let ctrl = { cid = "ctrl"; kind = Seq; ins = []; outs = ctrl_outs } in
  (* Register-input multiplexers and registers. *)
  let reg_cells =
    List.concat_map
      (fun (reg : Datapath.reg) ->
        let rid = reg.Datapath.rid in
        let ws = writers rid in
        let data_ins, mux =
          match ws with
          | [] -> ([], [])  (* never written: rules flag it, model stays total *)
          | [ w ] -> ([ { net = wsrc_net w; width } ], [])
          | _ ->
              let mux =
                { cid = "mux:" ^ rid ^ ".in";
                  kind = Comb;
                  ins =
                    List.map (fun w -> { net = wsrc_net w; width }) ws
                    @ [ { net = sel_net (rid ^ ".in"); width = sel_width (List.length ws) } ];
                  outs = [ { net = regin_net rid; width } ];
                }
              in
              ([ { net = regin_net rid; width } ], [ mux ])
        in
        mux
        @ [ { cid = "reg:" ^ rid;
              kind = Seq;
              ins = data_ins @ [ { net = en_net rid; width = 1 } ];
              outs = [ { net = reg_net rid; width } ];
            } ])
      dp.Datapath.regs
  in
  (* Unit-port multiplexers and functional units. *)
  let unit_cells =
    List.concat_map
      (fun ((u : Bistpath_dfg.Massign.hw), rs) ->
        let mid = u.Bistpath_dfg.Massign.mid in
        let port side tag =
          match port_sources rs side with
          | [] -> ([ { net = port_net mid tag; width } ], [])  (* undriven *)
          | [ r ] -> ([ { net = reg_net r; width } ], [])
          | srcs ->
              let mux =
                { cid = "mux:" ^ mid ^ "." ^ tag;
                  kind = Comb;
                  ins =
                    List.map (fun r -> { net = reg_net r; width }) srcs
                    @ [ { net = sel_net (mid ^ "." ^ tag); width = sel_width (List.length srcs) } ];
                  outs = [ { net = port_net mid tag; width } ];
                }
              in
              ([ { net = port_net mid tag; width } ], [ mux ])
        in
        let l_in, l_mux = port `L "L" in
        let r_in, r_mux = port `R "R" in
        let fsel =
          if List.length u.Bistpath_dfg.Massign.kinds >= 2 then
            [ { net = sel_net (mid ^ ".F");
                width = sel_width (List.length u.Bistpath_dfg.Massign.kinds) } ]
          else []
        in
        l_mux @ r_mux
        @ [ { cid = "unit:" ^ mid;
              kind = Comb;
              ins = l_in @ r_in @ fsel;
              outs = [ { net = unit_net mid; width } ];
            } ])
      unit_routes
  in
  let out_cells =
    List.map
      (fun (v, rid) ->
        { cid = "out:" ^ v; kind = Sink; ins = [ { net = reg_net rid; width } ]; outs = [] })
      dp.Datapath.outputs
  in
  { cells = (ctrl :: pin_cells) @ reg_cells @ unit_cells @ out_cells }

let net_map proj t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun c ->
      List.iter
        (fun p ->
          let prev = try Hashtbl.find tbl p.net with Not_found -> [] in
          Hashtbl.replace tbl p.net ((c.cid, p.width) :: prev))
        (proj c))
    t.cells;
  Hashtbl.fold (fun net cs acc -> (net, List.rev cs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let drivers t = net_map (fun c -> c.outs) t
let readers t = net_map (fun c -> c.ins) t

let combinational_cycles t =
  let comb = List.filter (fun c -> c.kind = Comb) t.cells in
  let by_out = Hashtbl.create 64 in
  List.iter (fun c -> List.iter (fun p -> Hashtbl.replace by_out p.net c.cid) c.outs) comb;
  let succs =
    List.map
      (fun c ->
        ( c.cid,
          List.sort_uniq compare
            (List.concat_map
               (fun reader ->
                 List.filter_map
                   (fun p ->
                     (* edge: driver of [p.net] -> [reader] *)
                     if List.exists (fun q -> q.net = p.net) c.outs then Some reader.cid
                     else None)
                   reader.ins)
               comb) ))
      comb
  in
  let succ cid = try List.assoc cid succs with Not_found -> [] in
  (* Tarjan's SCC, iterative enough for our sizes via recursion on
     cells (model sizes are tiny). *)
  let index = Hashtbl.create 16 and low = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] and counter = ref 0 and sccs = ref [] in
  let rec strong v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strong w;
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (succ v);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
      in
      let comp = pop [] in
      let cyclic =
        match comp with [ x ] -> List.mem x (succ x) | _ :: _ :: _ -> true | [] -> false
      in
      if cyclic then sccs := List.sort compare comp :: !sccs
    end
  in
  List.iter (fun (v, _) -> if not (Hashtbl.mem index v) then strong v) succs;
  List.sort compare !sccs
