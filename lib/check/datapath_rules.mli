(** Data-path pass: structural connectivity and interconnect-completeness
    rules over [Datapath.t] (DP001–DP006, EQ001). See the table in
    {!Check}. *)

val rules : Rule.t list
