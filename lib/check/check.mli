(** Independent static verifier for synthesized artifacts.

    Re-derives the paper's structural invariants from the artifacts
    alone — scheduled DFG, register assignment, data path, BIST
    allocation, control table, netlist structure — and reports every
    violation as a typed finding. The checker shares no code with the
    allocator paths it audits: lifetimes, conflicts, CBILBO conditions
    and connectivity are all recomputed here, so an allocator bug cannot
    vouch for itself.

    {1 Rule table}

    Severity [error] findings gate ([synth check] exits 2); [warning]
    findings are reported but do not gate. Any rule can be suppressed by
    id ([~suppress] / [--suppress]).

    {v
    Allocation pass
      ALC001  error    conflicting variables share a register
      ALC002  error    assignment is not a partition of the allocatable variables
      ALC003  error    recomputed conflict graph is not chordal
      ALC004  warning  register count exceeds the recomputed minimum
      ALC005  error    coloring order is not a reverse PVES (needs a recorded order)
      BIST001 error    embedding claims an I-path / variable-set sharing that does not exist
      BIST002 error    register style differs from its accumulated test duties
      BIST003 error    CBILBO condition triggered but register not flagged
      BIST004 error    register flagged CBILBO without a generate-and-compact duty
      BIST005 warning  Lemma 1/2 prediction disagrees with post-interconnect ground truth
      BIST006 error    test session schedules conflicting duties together

    Data-path pass
      DP001   error    register must latch two values in one control step
      DP002   error    port width mismatch
      DP003   error    scheduled transfer has no physical path (interconnect completeness)
      DP004   warning  dead register (never read)
      DP005   error    route disagrees with the register assignment
      DP006   error    operands of a non-commutative operation are swapped
      EQ001   error    data path diverges from DFG semantics on random vectors

    RTL pass
      RTL001  error    combinational loop (SCC over the structural netlist)
      RTL002  error    undriven net with readers
      RTL003  warning  floating net (driven, never read)
      RTL004  error    multi-driven net
      CTL001  error    control FSM has missing or phantom states
      CTL002  error    control select or enable index out of range
      RTL005  error    emitted RTL does not parse back structurally equivalent
      EQ002   error    parsed-back RTL diverges from the interpreter on random vectors

    Abstract interpretation (proof-carrying; findings embed the
    interval witness that justifies them)
      ABS001  error    arithmetic provably wraps mod 2^width (warning when
                       asserted --assume ranges still admit a wrap)
      ABS002  error    reachable division by zero (warning under --assume)
      ABS003  warning  dead multiplexer leg — never selected by any
                       reachable control step
      ABS004  error    unreachable controller state (reachability superset
                       of CTL001's syntactic index check)
      ABS005  warning  provably constant net
      ABS006  error    register read before its first write

    Framework
      CHK000  error    a rule crashed (also raised by the check.rule injection site)
    v} *)

type severity = Bistpath_resilience.Diagnostic.severity

type finding = Rule.finding = {
  rule : string;
  severity : severity;
  subject : string;
  detail : string;
}

type ctx = Rule.ctx = {
  design : string;
  width : int;
  transparency : bool;
  vectors : int;
  assumes : (string * (int * int)) list;
  dfg : Bistpath_dfg.Dfg.t;
  massign : Bistpath_dfg.Massign.t;
  policy : Bistpath_dfg.Policy.t;
  regalloc : Bistpath_datapath.Regalloc.t;
  datapath : Bistpath_datapath.Datapath.t;
  bist : Bistpath_bist.Allocator.solution option;
  sessions : Bistpath_bist.Session.t option;
  order : string list option;
  control : Bistpath_datapath.Control.t option;
  model : Rtl_model.t;
}

val rule_table : (string * string) list
(** Every rule id with its one-line title, registration order (the
    order findings are reported in), CHK000 included. *)

val known_rule : string -> bool
(** Is this a valid id for [~suppress]? *)

val rule_info : (string * severity * string) list
(** Every rule as (id, worst severity, title), registration order,
    CHK000 included — the catalogue behind [--list-rules] and the SARIF
    driver block. *)

val absint_family : Rule.t list
(** Just the ABS001..ABS006 rules — the subset [synth analyze] runs. *)


val make_ctx :
  ?bist:Bistpath_bist.Allocator.solution ->
  ?sessions:Bistpath_bist.Session.t ->
  ?order:string list ->
  ?transparency:bool ->
  ?vectors:int ->
  ?assumes:(string * (int * int)) list ->
  design:string ->
  width:int ->
  Bistpath_dfg.Dfg.t ->
  Bistpath_dfg.Massign.t ->
  policy:Bistpath_dfg.Policy.t ->
  Bistpath_datapath.Regalloc.t ->
  Bistpath_datapath.Datapath.t ->
  ctx
(** Bundle artifacts for checking. The control table and the structural
    netlist model are derived here (a datapath [Control.build] rejects
    yields [control = None]; the model builder is total); tests corrupt
    individual fields afterwards with record update. [vectors] defaults
    to 0 (EQ001 off); [transparency] must match the flow that produced
    the BIST solution. *)

val ctx_of_flow :
  ?vectors:int ->
  ?transparency:bool ->
  ?assumes:(string * (int * int)) list ->
  design:string ->
  width:int ->
  Bistpath_dfg.Dfg.t ->
  Bistpath_dfg.Massign.t ->
  policy:Bistpath_dfg.Policy.t ->
  Bistpath_core.Flow.result ->
  ctx
(** Bundle a {!Bistpath_core.Flow.run} result. For the testable style
    the allocation trace is re-derived so ALC005 (reverse-PVES) can
    run. *)

type report = {
  design : string;
  total_rules : int;
  rules_run : int;  (** evaluated (including crashed ones) *)
  rules_crashed : int;
  rules_skipped : int;  (** budget-skipped, never evaluated *)
  findings : finding list;  (** active findings, CHK000 included *)
  suppressed : finding list;
  degraded : bool;  (** [rules_skipped > 0] *)
}

val run :
  ?suppress:string list ->
  ?budget:Bistpath_resilience.Budget.t ->
  ?rules:Rule.t list ->
  ctx ->
  report
(** Evaluate [rules] (default: every rule), in parallel via {!Bistpath_parallel.Par} under
    the budget (a tripped budget skips the remaining rules and marks the
    report degraded). A rule that raises — including an injected
    [check.rule] fault — degrades to a CHK000 finding naming the rule;
    the other rules still run. Deterministic at any pool width.
    Telemetry: [check.rules_run], [check.rules_crashed],
    [check.rules_skipped], [check.findings], [check.suppressed]. *)

val errors : report -> int
(** Active findings with severity [Error]. *)

val warnings : report -> int

val to_text : report -> string
(** Human-readable report: a summary line, one indented line per
    finding, suppressed findings listed separately. *)

val to_json : report -> Bistpath_util.Json.t
(** Machine-readable report (suppressed findings carried inline with
    ["suppressed": true]). *)

val to_sarif : report -> Bistpath_util.Json.t
(** SARIF 2.1.0 document (the minimal shape GitHub code scanning
    ingests): the full rule catalogue in the driver block, one result
    per active finding, located at the design name. Suppressed findings
    are omitted. *)

val diagnostics : report -> Bistpath_resilience.Diagnostic.t list
(** Active findings as diagnostics ("[ALC001] subject: detail"). *)
