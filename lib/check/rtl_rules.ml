module Dfg = Bistpath_dfg.Dfg
module Control = Bistpath_datapath.Control
open Rule

let error = Bistpath_resilience.Diagnostic.Error
let warning = Bistpath_resilience.Diagnostic.Warning

(* RTL001: combinational loop — an SCC among the combinational cells. *)
let rtl001 ctx =
  List.map
    (fun comp ->
      v "RTL001" error (List.hd comp) "combinational loop through %s"
        (String.concat " -> " comp))
    (Rtl_model.combinational_cycles ctx.model)

(* RTL002: a net something reads but nothing drives. *)
let rtl002 ctx =
  let drivers = Rtl_model.drivers ctx.model in
  List.filter_map
    (fun (net, rs) ->
      match List.assoc_opt net drivers with
      | Some (_ :: _) -> None
      | _ ->
          Some
            (v "RTL002" error net "undriven net read by %s"
               (String.concat ", " (List.sort_uniq compare (List.map fst rs)))))
    (Rtl_model.readers ctx.model)

(* RTL003: a net something drives but nothing reads. *)
let rtl003 ctx =
  let readers = Rtl_model.readers ctx.model in
  List.filter_map
    (fun (net, ds) ->
      match List.assoc_opt net readers with
      | Some (_ :: _) -> None
      | _ ->
          Some
            (v "RTL003" warning net "floating net driven by %s"
               (String.concat ", " (List.sort_uniq compare (List.map fst ds)))))
    (Rtl_model.drivers ctx.model)

(* RTL004: a net with more than one driver. *)
let rtl004 ctx =
  List.filter_map
    (fun (net, ds) ->
      match ds with
      | _ :: _ :: _ ->
          Some
            (v "RTL004" error net "net driven by %d cells: %s" (List.length ds)
               (String.concat ", " (List.sort_uniq compare (List.map fst ds))))
      | _ -> None)
    (Rtl_model.drivers ctx.model)

(* CTL001: the control FSM must have exactly the states 0..T, each
   reachable from its predecessor (the FSM is a linear counter, so
   contiguity is reachability). *)
let ctl001 ctx =
  match ctx.control with
  | None -> []
  | Some c ->
      let indices = List.map (fun (s : Control.step) -> s.Control.index) c.Control.steps in
      let expected = List.init (Dfg.num_csteps ctx.dfg + 1) (fun i -> i) in
      let missing = List.filter (fun i -> not (List.mem i indices)) expected in
      let extra = List.filter (fun i -> not (List.mem i expected)) indices in
      let dup =
        List.filter
          (fun i -> List.length (List.filter (( = ) i) indices) >= 2)
          (List.sort_uniq compare indices)
      in
      List.map
        (fun i ->
          v "CTL001" error (string_of_int i) "control step is missing: the FSM never reaches it")
        missing
      @ List.map
          (fun i ->
            v "CTL001" error (string_of_int i)
              "control step is outside the schedule (steps run 0..%d)" (Dfg.num_csteps ctx.dfg))
          extra
      @ List.map (fun i -> v "CTL001" error (string_of_int i) "control step appears twice") dup

(* CTL002: every select and enable index must address an existing source. *)
let ctl002 ctx =
  match ctx.control with
  | None -> []
  | Some c ->
      let sources mid =
        match List.find_opt (fun (u, _) -> u.Bistpath_dfg.Massign.mid = mid) (unit_routes ctx) with
        | Some (u, rs) -> Some (u, port_sources rs `L, port_sources rs `R)
        | None -> None
      in
      List.concat_map
        (fun (s : Control.step) ->
          let ops =
            List.concat_map
              (fun (uo : Control.unit_op) ->
                match sources uo.Control.mid with
                | None ->
                    [ v "CTL002" error uo.Control.mid
                        "step %d activates a unit with no routes" s.Control.index ]
                | Some (u, ls, rs) ->
                    let chk what sel n =
                      if sel < 0 || sel >= max 1 n then
                        [ v "CTL002" error uo.Control.mid
                            "step %d %s select %d is out of range (unit has %d sources)"
                            s.Control.index what sel n ]
                      else []
                    in
                    chk "left" uo.Control.l_select (List.length ls)
                    @ chk "right" uo.Control.r_select (List.length rs)
                    @ chk "function" uo.Control.f_select
                        (List.length u.Bistpath_dfg.Massign.kinds))
              s.Control.ops
          in
          let writes =
            List.concat_map
              (fun (w : Control.write) ->
                let n = List.length (writers ctx w.Control.rid) in
                if w.Control.source_index < 0 || w.Control.source_index >= max 1 n then
                  [ v "CTL002" error w.Control.rid
                      "step %d write source index %d is out of range (register has %d writers)"
                      s.Control.index w.Control.source_index n ]
                else [])
              s.Control.writes
          in
          ops @ writes)
        c.Control.steps

let rules =
  [
    { id = "RTL001"; severity = error; title = "combinational loop"; pass = Rtl; run = rtl001 };
    { id = "RTL002"; severity = error; title = "undriven net with readers"; pass = Rtl; run = rtl002 };
    { id = "RTL003"; severity = warning; title = "floating net"; pass = Rtl; run = rtl003 };
    { id = "RTL004"; severity = error; title = "multi-driven net"; pass = Rtl; run = rtl004 };
    { id = "CTL001"; severity = error; title = "control FSM has missing or phantom states"; pass = Rtl; run = ctl001 };
    { id = "CTL002"; severity = error; title = "control select or enable index out of range"; pass = Rtl; run = ctl002 };
  ]
