module Dfg = Bistpath_dfg.Dfg
module Op = Bistpath_dfg.Op
module Datapath = Bistpath_datapath.Datapath
module Interp = Bistpath_datapath.Interp
module Prng = Bistpath_util.Prng
open Rule

let error = Bistpath_resilience.Diagnostic.Error
let warning = Bistpath_resilience.Diagnostic.Warning

(* DP001: a register would have to latch two values in one control step.
   Re-derived from the schedule and routes, independently of
   [Control.build] (which refuses to build such a table at all). *)
let dp001 ctx =
  let writes =
    (* a stored primary input latches at the end of its birth step (one
       step before first use), mirroring the controller's load schedule *)
    List.filter_map
      (fun x ->
        match expected_reg ctx x with
        | Some r ->
            let birth =
              (Bistpath_dfg.Lifetime.span ctx.dfg x).Bistpath_graphs.Interval.birth
            in
            Some (birth, r, x)
        | None -> None)
      (consumed_inputs ctx)
    @ List.concat_map
        (fun (op : Op.t) ->
          List.map
            (fun (r : Datapath.route) -> (Dfg.cstep ctx.dfg op.Op.id, r.Datapath.out_reg, op.Op.out))
            (op_routes ctx op))
        ctx.dfg.Dfg.ops
  in
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (step, rid, var) ->
      let key = (step, rid) in
      let prev = try Hashtbl.find tbl key with Not_found -> [] in
      Hashtbl.replace tbl key (var :: prev))
    writes;
  Hashtbl.fold
    (fun (step, rid) vars acc ->
      match List.sort_uniq compare vars with
      | _ :: _ :: _ as vs ->
          v "DP001" error rid "register must latch %s simultaneously at the end of step %d"
            (String.concat ", " vs) step
          :: acc
      | _ -> acc)
    tbl []
  |> List.sort compare

(* DP002: the width of every net's driver must match every reader. *)
let dp002 ctx =
  let drivers = Rtl_model.drivers ctx.model in
  let readers = Rtl_model.readers ctx.model in
  List.concat_map
    (fun (net, rs) ->
      match List.assoc_opt net drivers with
      | Some ((_, w) :: _) ->
          List.filter_map
            (fun (cid, w') ->
              if w' <> w then
                Some
                  (v "DP002" error net "driven %d bits wide but %s reads it as %d bits" w cid w')
              else None)
            rs
      | _ -> [])
    readers

(* DP003: interconnect completeness — every scheduled transfer has a
   physical path. *)
let dp003 ctx =
  let per_op =
    List.concat_map
      (fun (op : Op.t) ->
        match op_routes ctx op with
        | [] -> [ v "DP003" error op.Op.id "operation has no route through the interconnect" ]
        | _ :: _ :: _ -> [ v "DP003" error op.Op.id "operation has more than one route" ]
        | [ route ] -> (
            match mid_of_op ctx op.Op.id with
            | None -> [ v "DP003" error op.Op.id "operation is bound to no functional unit" ]
            | Some mid ->
                if List.mem (Datapath.From_unit mid) (writers ctx route.Datapath.out_reg) then
                  []
                else
                  [ v "DP003" error op.Op.id
                      "result transfer %s -> %s has no physical path: the register's writer \
                       list lacks the unit"
                      mid route.Datapath.out_reg ]))
      ctx.dfg.Dfg.ops
  in
  let per_input =
    List.concat_map
      (fun x ->
        match expected_reg ctx x with
        | None -> [ v "DP003" error x "consumed primary input has no register" ]
        | Some r ->
            if List.mem (Datapath.From_port x) (writers ctx r) then []
            else
              [ v "DP003" error x
                  "input load %s -> %s has no physical path: the register's writer list \
                   lacks the pin"
                  x r ])
      (consumed_inputs ctx)
  in
  let per_output =
    List.concat_map
      (fun o ->
        match List.assoc_opt o ctx.datapath.Datapath.outputs with
        | None -> [ v "DP003" error o "primary output is not latched in any register" ]
        | Some rid -> (
            match stored_vars ctx rid with
            | None -> [ v "DP003" error o "primary output points at a register that does not exist" ]
            | Some vars ->
                if List.mem o vars then []
                else
                  [ v "DP003" error o "primary output claims register %s, which never holds it" rid ]))
      ctx.dfg.Dfg.outputs
  in
  per_op @ per_input @ per_output

(* DP004: a register nothing ever reads. *)
let dp004 ctx =
  let read rid =
    List.exists
      (fun (r : Datapath.route) -> r.Datapath.l_reg = rid || r.Datapath.r_reg = rid)
      ctx.datapath.Datapath.routes
    || List.exists (fun (_, r) -> r = rid) ctx.datapath.Datapath.outputs
  in
  List.filter_map
    (fun (r : Datapath.reg) ->
      if read r.Datapath.rid then None
      else
        Some
          (v "DP004" warning r.Datapath.rid
             "register is never read by any unit port or output port (dead storage)"))
    ctx.datapath.Datapath.regs

(* DP005: a route's registers disagree with the register assignment. *)
let dp005 ctx =
  List.concat_map
    (fun (op : Op.t) ->
      match op_routes ctx op with
      | [ route ] ->
          let l_var, r_var =
            if route.Datapath.swapped then (op.Op.right, op.Op.left) else (op.Op.left, op.Op.right)
          in
          let check what claimed var =
            match expected_reg ctx var with
            | None -> []  (* DP003 reports unplaceable variables *)
            | Some expect ->
                if claimed = expect then []
                else
                  [ v "DP005" error op.Op.id
                      "%s operand %s lives in %s but the route reads %s" what var expect claimed ]
          in
          check "left" route.Datapath.l_reg l_var
          @ check "right" route.Datapath.r_reg r_var
          @ check "result" route.Datapath.out_reg op.Op.out
      | _ -> [])
    ctx.dfg.Dfg.ops

(* DP006: swapped operands on a non-commutative operation. *)
let dp006 ctx =
  List.concat_map
    (fun (op : Op.t) ->
      List.filter_map
        (fun (r : Datapath.route) ->
          if r.Datapath.swapped && not (Op.commutative op.Op.kind) then
            Some
              (v "DP006" error op.Op.id "operands of non-commutative %s are swapped"
                 (Op.symbol op.Op.kind))
          else None)
        (op_routes ctx op))
    ctx.dfg.Dfg.ops

(* EQ001: dynamic spot-check — the interpreted data path must agree with
   the behavioural DFG on random vectors. Disabled when [vectors = 0]
   (hand-corrupted fixtures exercise the static rules in isolation). *)
let eq001 ctx =
  if ctx.vectors <= 0 then []
  else
    let rng = Prng.create 0x5EED in
    let limit = 1 lsl ctx.width in
    let rec go i =
      if i > ctx.vectors then []
      else
        let inputs = List.map (fun x -> (x, Prng.int rng limit)) ctx.dfg.Dfg.inputs in
        match Interp.equivalent_to_dfg ctx.datapath ~width:ctx.width ~inputs with
        | true -> go (i + 1)
        | false ->
            [ v "EQ001" error ctx.design
                "data path diverges from the DFG semantics on random vector %d of %d" i
                ctx.vectors ]
        | exception e ->
            [ v "EQ001" error ctx.design "data-path interpretation failed: %s"
                (Printexc.to_string e) ]
    in
    go 1

let rules =
  [
    { id = "DP001"; severity = error;
      title = "register must latch two values in one control step";
      pass = Datapath_pass;
      run = dp001;
    };
    { id = "DP002"; severity = error; title = "port width mismatch"; pass = Datapath_pass; run = dp002 };
    { id = "DP003"; severity = error;
      title = "scheduled transfer has no physical path";
      pass = Datapath_pass;
      run = dp003;
    };
    { id = "DP004"; severity = warning; title = "dead register"; pass = Datapath_pass; run = dp004 };
    { id = "DP005"; severity = error;
      title = "route disagrees with the register assignment";
      pass = Datapath_pass;
      run = dp005;
    };
    { id = "DP006"; severity = error;
      title = "operands of a non-commutative operation are swapped";
      pass = Datapath_pass;
      run = dp006;
    };
    { id = "EQ001"; severity = error;
      title = "data path diverges from the DFG semantics (random vectors)";
      pass = Datapath_pass;
      run = eq001;
    };
  ]
