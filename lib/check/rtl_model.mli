(** Structural netlist abstraction of the emitted RTL.

    The RTL checker does not parse Verilog text back; it re-derives the
    same structure the emitter ({!Bistpath_rtl}) produces — registers,
    functional units, multiplexers, primary-input pins, output ports and
    the controller — as a flat cell/net graph, then checks graph-level
    properties (combinational loops, undriven/floating/multi-driven
    nets, port-width consistency) on it.

    The model is deliberately constructible by hand so tests can build
    deliberately-broken netlists (e.g. a forced combinational loop)
    without going through [Datapath.build]. *)

type kind =
  | Seq  (** clocked: registers and the controller *)
  | Comb  (** combinational: functional units and multiplexers *)
  | Source  (** primary-input pin *)
  | Sink  (** primary-output port *)

type pin = { net : string; width : int }

type cell = { cid : string; kind : kind; ins : pin list; outs : pin list }

type t = { cells : cell list }

val of_datapath : width:int -> Bistpath_datapath.Datapath.t -> t
(** Total and defensive: a structurally corrupted datapath (severed
    writer lists, missing routes) yields a model with the corresponding
    nets undriven or floating rather than an exception — the rules
    report the damage. *)

val drivers : t -> (string * (string * int) list) list
(** Net name -> [(cell id, declared width)] of every cell output pin
    driving it, sorted by net. *)

val readers : t -> (string * (string * int) list) list
(** Net name -> [(cell id, declared width)] of every cell input pin
    reading it, sorted by net. *)

val combinational_cycles : t -> string list list
(** Strongly connected components (of size > 1, or self-loops) of the
    cell graph restricted to [Comb] cells, where an edge [a -> b] means
    some output net of [a] is an input net of [b]. Registers, pins and
    ports break paths, so any component returned is a genuine
    combinational loop. Each component is a sorted list of cell ids;
    components are sorted by first element. *)

val sel_width : int -> int
(** Bits needed to address [n] mux inputs (min 1). Shared by the model
    builder and the width rule so the two cannot drift apart. *)
