(** Rule framework shared by the three analysis passes.

    A rule is a pure function from a {!ctx} — the complete artifact
    bundle of one synthesized design — to a list of {!finding}s. Rules
    never raise for corrupted artifacts (they report them); an actual
    crash is caught by the runner ({!Check.run}) and degraded to a
    [CHK000] finding for that rule alone. *)

type severity = Bistpath_resilience.Diagnostic.severity

type finding = {
  rule : string;  (** rule id, e.g. "ALC001" *)
  severity : severity;
  subject : string;  (** what the finding is about: a register, net, unit... *)
  detail : string;
}

type pass = Alloc | Datapath_pass | Rtl

(** The artifact bundle under analysis. Tests corrupt individual fields
    with record update (e.g. [{ ctx with model = broken }]); everything
    here is data, so the rules see exactly the corruption and nothing
    recomputed behind their back. *)
type ctx = {
  design : string;
  width : int;
  transparency : bool;
  vectors : int;  (** random vectors for the dynamic-equivalence rule; 0 disables *)
  assumes : (string * (int * int)) list;
      (** asserted primary-input ranges for the abstract-interpretation
          rules ([--assume] on [synth analyze]); unlisted inputs are
          full-range *)
  dfg : Bistpath_dfg.Dfg.t;
  massign : Bistpath_dfg.Massign.t;
  policy : Bistpath_dfg.Policy.t;
  regalloc : Bistpath_datapath.Regalloc.t;
  datapath : Bistpath_datapath.Datapath.t;
  bist : Bistpath_bist.Allocator.solution option;
  sessions : Bistpath_bist.Session.t option;
  order : string list option;
      (** coloring order (allocation trace), when the producing flow
          recorded one; enables the reverse-PVES rule *)
  control : Bistpath_datapath.Control.t option;
      (** [None] when [Control.build] rejected the datapath — every
          cause of that is covered by a DP rule *)
  model : Rtl_model.t;
}

type t = {
  id : string;
  title : string;
  severity : severity;  (** worst severity the rule can report *)
  pass : pass;
  run : ctx -> finding list;
}

val v : string -> severity -> string -> ('a, unit, string, finding) format4 -> 'a
(** [v rule severity subject fmt ...] builds a finding. *)

(** {1 Walker helpers} *)

val mid_of_op : ctx -> string -> string option
(** Unit an operation id is bound to ([None] instead of raising). *)

val expected_reg : ctx -> string -> string option
(** The register a variable should live in, re-deriving
    [Datapath.build]'s placement: the allocated register, else the
    carried-into dedicated register, else the input's own dedicated
    register. [None] for an unplaceable variable. *)

val op_routes : ctx -> Bistpath_dfg.Op.t -> Bistpath_datapath.Datapath.route list
(** Routes claiming this operation (exactly one in a well-formed
    datapath). *)

val unit_routes :
  ctx -> (Bistpath_dfg.Massign.hw * Bistpath_datapath.Datapath.route list) list
(** Units with at least one route, in module-assignment order. *)

val port_sources :
  Bistpath_datapath.Datapath.route list -> [ `L | `R ] -> string list
(** Distinct sorted registers feeding a port, re-derived from routes. *)

val writers : ctx -> string -> Bistpath_datapath.Datapath.wsrc list
(** A register's writer list ([[]] when the register is missing from
    [reg_writers] — itself a finding for other rules to make). *)

val stored_vars : ctx -> string -> string list option
(** Variables a register holds, [None] if no such register exists. *)

val consumed_inputs : ctx -> string list
(** Primary inputs read by at least one operation, sorted. *)
