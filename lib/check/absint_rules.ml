(* Proof-carrying rules backed by the abstract-interpretation engine
   (lib/absint). Every finding embeds the interval witness that
   justifies it, so a report line is checkable by hand against the
   documented Op.eval semantics.

   Severity policy: the uniform-width data path implements mod-2^width
   unsigned arithmetic and a guarded division by design, so *feasible*
   wrap-around or division-by-zero over full-range inputs is the normal
   semantics and stays silent. The rules speak up when the analysis can
   *prove* something: a certain wrap, a certain zero divisor, a
   constant net, a mux leg or controller state no reachable execution
   selects, or a read that beats the first write. Feasible-but-unproven
   wrap/zero-divisor findings are reported only when the user asserted
   input ranges (--assume) that still admit the event — then the
   assertion, not the analysis, is what made the claim checkable. *)

open Rule
module Dfg = Bistpath_dfg.Dfg
module Op = Bistpath_dfg.Op
module Datapath = Bistpath_datapath.Datapath
module Interval = Bistpath_absint.Interval
module Absint = Bistpath_absint.Absint

let error = Bistpath_resilience.Diagnostic.Error
let warning = Bistpath_resilience.Diagnostic.Warning

let solve ctx =
  Absint.solve_dfg ~assumes:ctx.assumes ~width:ctx.width ~policy:ctx.policy ctx.dfg

let solve_ctl ctx =
  match ctx.control with
  | None -> None
  | Some control ->
      Some
        (Absint.solve_control ~assumes:ctx.assumes ~width:ctx.width ctx.datapath
           control)

let assumed ctx v = List.mem_assoc v ctx.assumes

(* ABS001: an arithmetic operation the value analysis proves (Must) or,
   under asserted input ranges, still admits (May) a mod-2^width
   wrap-around. *)
let abs001 ctx =
  List.concat_map
    (fun (f : Absint.op_facts) ->
      let witness () =
        Printf.sprintf "%s %s %s with %s ∈ %s, %s ∈ %s at width %d" f.Absint.op.Op.left
          (Op.symbol f.Absint.op.Op.kind) f.Absint.op.Op.right f.Absint.op.Op.left
          (Interval.to_string f.Absint.left_v) f.Absint.op.Op.right
          (Interval.to_string f.Absint.right_v) ctx.width
      in
      match f.Absint.overflow with
      | Interval.Must ->
          [ v "ABS001" error f.Absint.op.Op.id
              "every execution wraps mod 2^%d: %s always exceeds %d (result %s)"
              ctx.width (witness ())
              ((1 lsl ctx.width) - 1)
              (Interval.to_string f.Absint.out_v) ]
      | Interval.May
        when assumed ctx f.Absint.op.Op.left || assumed ctx f.Absint.op.Op.right ->
          [ v "ABS001" warning f.Absint.op.Op.id
              "the asserted ranges still admit a wrap mod 2^%d: %s" ctx.width
              (witness ()) ]
      | Interval.May | Interval.No -> [])
    (solve ctx).Absint.op_facts

(* ABS002: a division whose divisor range proves (or, under asserted
   ranges, still admits) zero — the emitted guard then forces the
   all-ones word. *)
let abs002 ctx =
  List.concat_map
    (fun (f : Absint.op_facts) ->
      let witness () =
        Printf.sprintf "divisor %s ∈ %s" f.Absint.op.Op.right
          (Interval.to_string f.Absint.right_v)
      in
      match f.Absint.div_by_zero with
      | Interval.Must ->
          [ v "ABS002" error f.Absint.op.Op.id
              "division by zero is certain: %s, so the result is forced to %d"
              (witness ())
              ((1 lsl ctx.width) - 1) ]
      | Interval.May when assumed ctx f.Absint.op.Op.right ->
          [ v "ABS002" warning f.Absint.op.Op.id
              "the asserted range still admits a zero divisor: %s" (witness ()) ]
      | Interval.May | Interval.No -> [])
    (solve ctx).Absint.op_facts

(* ABS003: a multiplexer leg (register writer mux or unit port mux) no
   reachable control step ever selects — pure interconnect area. *)
let abs003 ctx =
  match solve_ctl ctx with
  | None -> []
  | Some cr ->
      let writer_leg rid i =
        match List.assoc_opt rid ctx.datapath.Datapath.reg_writers with
        | Some ws -> (
            match List.nth_opt ws i with
            | Some (Datapath.From_unit m) -> Printf.sprintf "unit %s" m
            | Some (Datapath.From_port p) -> Printf.sprintf "pin %s" p
            | None -> "out of range")
        | None -> "out of range"
      in
      List.concat_map
        (fun (rf : Absint.reg_facts) ->
          List.map
            (fun i ->
              v "ABS003" warning rf.Absint.rid
                "writer mux leg %d (%s) is never selected by any reachable control step [0,%d]"
                i
                (writer_leg rf.Absint.rid i)
                (cr.Absint.horizon + 1))
            rf.Absint.dead_writers)
        cr.Absint.regs
      @ List.map
          (fun (l : Absint.port_leg) ->
            v "ABS003" warning l.Absint.leg_mid
              "%s-port mux leg %d (register %s) is never selected by any reachable control step [0,%d]"
              (match l.Absint.side with `L -> "left" | `R -> "right")
              l.Absint.leg_index l.Absint.source
              (cr.Absint.horizon + 1))
          cr.Absint.dead_port_legs

(* ABS004: a control-table entry at a counter state the abstract step
   counter (reset 0, increment, saturate at T+1) can never reach —
   the reachability superset of CTL001's syntactic index check. *)
let abs004 ctx =
  match solve_ctl ctx with
  | None -> []
  | Some cr ->
      List.map
        (fun idx ->
          v "ABS004" error ctx.design
            "control step %d is unreachable: the step counter's reachable states are [0,%d] (reset 0, saturation at %d)"
            idx
            (cr.Absint.horizon + 1)
            (cr.Absint.horizon + 1))
        cr.Absint.unreachable

(* ABS005: a net the analysis proves constant. A constant-zero net
   consumed as a divisor is reported once, by ABS002, at the division
   where it does damage. *)
let abs005 ctx =
  List.concat_map
    (fun (f : Absint.op_facts) ->
      match Interval.is_const f.Absint.out_v with
      | None -> []
      | Some k ->
          let feeds_divisor =
            k = 0
            && List.exists
                 (fun (c : Op.t) ->
                   c.Op.kind = Op.Div && String.equal c.Op.right f.Absint.op.Op.out)
                 (Dfg.consumers ctx.dfg f.Absint.op.Op.out)
          in
          if feeds_divisor then []
          else
            [ v "ABS005" warning f.Absint.op.Op.out
                "net is provably constant %s: %s %s %s with %s ∈ %s, %s ∈ %s"
                (Interval.to_string f.Absint.out_v)
                f.Absint.op.Op.left
                (Op.symbol f.Absint.op.Op.kind)
                f.Absint.op.Op.right f.Absint.op.Op.left
                (Interval.to_string f.Absint.left_v)
                f.Absint.op.Op.right
                (Interval.to_string f.Absint.right_v) ])
    (solve ctx).Absint.op_facts

(* ABS006: a unit reads a register at a step before the register's
   first write — the value consumed is the reset word, not a computed
   or loaded one. *)
let abs006 ctx =
  match solve_ctl ctx with
  | None -> []
  | Some cr ->
      List.map
        (fun (step, opid, rid) ->
          let first_write =
            List.find_map
              (fun (rf : Absint.reg_facts) ->
                if String.equal rf.Absint.rid rid then
                  match rf.Absint.write_steps with s :: _ -> Some s | [] -> None
                else None)
              cr.Absint.regs
          in
          v "ABS006" error opid
            "reads register %s at step %d before its first write%s: the register still holds the reset interval {0}"
            rid step
            (match first_write with
            | Some s -> Printf.sprintf " (first write is at step %d)" s
            | None -> " (never written)"))
        cr.Absint.uninit_reads

let rules =
  [
    { id = "ABS001"; severity = error;
      title = "arithmetic provably wraps mod 2^width";
      pass = Datapath_pass;
      run = abs001;
    };
    { id = "ABS002"; severity = error;
      title = "reachable division by zero";
      pass = Datapath_pass;
      run = abs002;
    };
    { id = "ABS003"; severity = warning;
      title = "dead multiplexer leg (never-selected interconnect)";
      pass = Rtl;
      run = abs003;
    };
    { id = "ABS004"; severity = error;
      title = "unreachable controller state";
      pass = Rtl;
      run = abs004;
    };
    { id = "ABS005"; severity = warning;
      title = "provably constant net";
      pass = Datapath_pass;
      run = abs005;
    };
    { id = "ABS006"; severity = error;
      title = "register read before first write";
      pass = Rtl;
      run = abs006;
    };
  ]
