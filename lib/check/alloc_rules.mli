(** Allocation pass: register-coloring and BIST-allocation rules
    (ALC001–ALC005, BIST001–BIST006). See the table in {!Check}. *)

val rules : Rule.t list
