(* Parse-back equivalence: the emitted Verilog is parsed back and
   matched against the in-memory data path, closing the emission loop.
   Unlike the other RTL rules, which audit the Rtl_model abstraction,
   these two audit the emitted text itself — an emitter bug (name
   collision, operand swap, select-table typo) is caught here even when
   the structural model is internally consistent. *)

module Verilog = Bistpath_rtl.Verilog
module Equiv = Bistpath_rtl.Equiv
open Rule

let error = Bistpath_resilience.Diagnostic.Error

(* A corrupted data path (severed interconnect, broken control table)
   may not be emittable at all; those defects belong to the dedicated
   structural rules (DP003, CTL001, ...), so the parse-back rules only
   apply when an RTL artifact exists to parse back. *)
let emitted ctx =
  match
    ( Bistpath_datapath.Control.build ctx.datapath,
      Verilog.emit ~width:ctx.width ?bist:ctx.bist ?sessions:ctx.sessions
        ctx.datapath )
  with
  | _, rtl -> Some (Verilog.primitives ~width:ctx.width ^ "\n" ^ rtl ^ "\n")
  | exception _ -> None

(* RTL005: structural equivalence of the parsed-back netlist. *)
let rtl005 ctx =
  match emitted ctx with
  | None -> []
  | Some rtl -> (
    match
      Equiv.verify ~vectors:0 ~width:ctx.width ?bist:ctx.bist
        ?sessions:ctx.sessions ~rtl ctx.datapath
    with
    | Error diags ->
      List.map
        (fun d ->
          v "RTL005" error ctx.design "emitted RTL is unparsable: %s"
            (Bistpath_resilience.Diagnostic.to_string d))
        diags
    | Ok report ->
      List.map
        (fun diff -> v "RTL005" error ctx.design "parse-back mismatch: %s" diff)
        report.Equiv.structural)

(* EQ002: random-vector simulation of the parsed AST against the
   interpreter. Gated on [vectors] like EQ001; structural problems are
   RTL005's to report, so this rule stays quiet on them. *)
let eq002 ctx =
  if ctx.vectors <= 0 then []
  else
    match emitted ctx with
    | None -> []
    | Some rtl -> (
      match
        Equiv.verify ~vectors:ctx.vectors ~width:ctx.width ?bist:ctx.bist
          ?sessions:ctx.sessions ~rtl ctx.datapath
      with
      | Error _ -> []
      | Ok report -> (
        match report.Equiv.functional with
        | None -> []
        | Some m ->
          [
            v "EQ002" error ctx.design
              "parsed RTL disagrees with the interpreter on output %s \
               (expected %d, got %d) for vector %s"
              m.Equiv.output m.Equiv.expected m.Equiv.actual
              (String.concat ", "
                 (List.map
                    (fun (x, value) -> Printf.sprintf "%s=%d" x value)
                    m.Equiv.vector));
          ]))

let rules =
  [
    {
      id = "RTL005"; severity = error;
      title = "emitted RTL parses back structurally equivalent";
      pass = Rtl;
      run = rtl005;
    };
    {
      id = "EQ002"; severity = error;
      title = "parsed RTL diverges from the interpreter (random vectors)";
      pass = Rtl;
      run = eq002;
    };
  ]
