module Dfg = Bistpath_dfg.Dfg
module Massign = Bistpath_dfg.Massign
module Policy = Bistpath_dfg.Policy
module Regalloc = Bistpath_datapath.Regalloc
module Datapath = Bistpath_datapath.Datapath
module Control = Bistpath_datapath.Control
module Flow = Bistpath_core.Flow
module Testable_alloc = Bistpath_core.Testable_alloc
module Budget = Bistpath_resilience.Budget
module Diagnostic = Bistpath_resilience.Diagnostic
module Inject = Bistpath_resilience.Inject
module Par = Bistpath_parallel.Par
module Telemetry = Bistpath_telemetry.Telemetry
module Json = Bistpath_util.Json

type severity = Diagnostic.severity

type finding = Rule.finding = {
  rule : string;
  severity : severity;
  subject : string;
  detail : string;
}

type ctx = Rule.ctx = {
  design : string;
  width : int;
  transparency : bool;
  vectors : int;
  assumes : (string * (int * int)) list;
  dfg : Dfg.t;
  massign : Massign.t;
  policy : Policy.t;
  regalloc : Regalloc.t;
  datapath : Datapath.t;
  bist : Bistpath_bist.Allocator.solution option;
  sessions : Bistpath_bist.Session.t option;
  order : string list option;
  control : Control.t option;
  model : Rtl_model.t;
}

let all_rules =
  Alloc_rules.rules @ Datapath_rules.rules @ Rtl_rules.rules @ Equiv_rules.rules
  @ Absint_rules.rules

let absint_family = Absint_rules.rules

let rule_table =
  List.map (fun (r : Rule.t) -> (r.Rule.id, r.Rule.title)) all_rules
  @ [ ("CHK000", "rule crashed while evaluating") ]

let known_rule id = List.mem_assoc id rule_table

let rule_info =
  List.map (fun (r : Rule.t) -> (r.Rule.id, r.Rule.severity, r.Rule.title)) all_rules
  @ [ ("CHK000", Diagnostic.Error, "rule crashed while evaluating") ]

let make_ctx ?bist ?sessions ?order ?(transparency = false) ?(vectors = 0) ?(assumes = [])
    ~design ~width dfg massign ~policy regalloc datapath =
  let control = try Some (Control.build datapath) with _ -> None in
  let model = Rtl_model.of_datapath ~width datapath in
  { design; width; transparency; vectors; assumes; dfg; massign; policy; regalloc; datapath;
    bist; sessions; order; control; model }

let ctx_of_flow ?(vectors = 0) ?(transparency = false) ?(assumes = []) ~design ~width dfg
    massign ~policy (r : Flow.result) =
  let order =
    match r.Flow.style with
    | Flow.Traditional -> None
    | Flow.Testable options -> (
        try
          Some
            (List.map
               (fun (s : Testable_alloc.trace_step) -> s.Testable_alloc.vertex)
               (snd (Testable_alloc.allocate ~options dfg massign ~policy)))
        with _ -> None)
  in
  make_ctx ~bist:r.Flow.bist ~sessions:r.Flow.sessions ?order ~transparency ~vectors ~assumes
    ~design ~width dfg massign ~policy r.Flow.regalloc r.Flow.datapath

type report = {
  design : string;
  total_rules : int;
  rules_run : int;
  rules_crashed : int;
  rules_skipped : int;
  findings : finding list;
  suppressed : finding list;
  degraded : bool;
}

type outcome = Evaluated of finding list | Crashed of string

let run ?(suppress = []) ?(budget = Budget.unlimited) ?(rules = all_rules) ctx =
  let eval (r : Rule.t) =
    (* Per-rule latency distribution (crashed rules included: the time
       until the raise is still time the checker spent in the rule). *)
    let t0 = if Telemetry.enabled () then Telemetry.now () else 0L in
    let result =
      match
        Inject.fire "check.rule";
        r.Rule.run ctx
      with
      | fs -> Evaluated fs
      | exception e -> Crashed (Printexc.to_string e)
    in
    if Telemetry.enabled () then
      Telemetry.observe "check.rule_ns" (Int64.to_int (Int64.sub (Telemetry.now ()) t0));
    result
  in
  let results = Par.map_list_budget ~budget eval rules in
  let findings, run_count, crashed, skipped =
    List.fold_left2
      (fun (fs, run_count, crashed, skipped) (r : Rule.t) result ->
        match result with
        | None -> (fs, run_count, crashed, skipped + 1)
        | Some (Evaluated found) -> (fs @ found, run_count + 1, crashed, skipped)
        | Some (Crashed msg) ->
            ( fs
              @ [ Rule.v "CHK000" Diagnostic.Error r.Rule.id "rule crashed: %s" msg ],
              run_count + 1,
              crashed + 1,
              skipped ))
      ([], 0, 0, 0) rules results
  in
  let active, suppressed = List.partition (fun f -> not (List.mem f.rule suppress)) findings in
  Telemetry.incr ~by:run_count "check.rules_run";
  Telemetry.incr ~by:crashed "check.rules_crashed";
  Telemetry.incr ~by:skipped "check.rules_skipped";
  Telemetry.incr ~by:(List.length active) "check.findings";
  Telemetry.incr ~by:(List.length suppressed) "check.suppressed";
  { design = ctx.design;
    total_rules = List.length rules;
    rules_run = run_count;
    rules_crashed = crashed;
    rules_skipped = skipped;
    findings = active;
    suppressed;
    degraded = skipped > 0;
  }

let count sev fs = List.length (List.filter (fun f -> f.severity = sev) fs)
let errors r = count Diagnostic.Error r.findings
let warnings r = count Diagnostic.Warning r.findings

let severity_label = function
  | Diagnostic.Error -> "error"
  | Diagnostic.Warning -> "warning"
  | Diagnostic.Note -> "note"

let finding_line f =
  Printf.sprintf "  [%s] %s %s: %s" f.rule (severity_label f.severity) f.subject f.detail

let to_text r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "check %s: %d/%d rules, %d finding(s) (%d error(s), %d warning(s))"
       r.design r.rules_run r.total_rules (List.length r.findings) (errors r) (warnings r));
  if r.suppressed <> [] then
    Buffer.add_string buf (Printf.sprintf ", %d suppressed" (List.length r.suppressed));
  if r.rules_crashed > 0 then
    Buffer.add_string buf (Printf.sprintf ", %d rule(s) crashed" r.rules_crashed);
  if r.rules_skipped > 0 then
    Buffer.add_string buf (Printf.sprintf ", %d rule(s) budget-skipped" r.rules_skipped);
  Buffer.add_char buf '\n';
  List.iter (fun f -> Buffer.add_string buf (finding_line f ^ "\n")) r.findings;
  if r.suppressed <> [] then begin
    Buffer.add_string buf "suppressed:\n";
    List.iter (fun f -> Buffer.add_string buf (finding_line f ^ "\n")) r.suppressed
  end;
  Buffer.contents buf

let finding_json suppressed f =
  Json.Obj
    [ ("rule", Json.Str f.rule);
      ("severity", Json.Str (severity_label f.severity));
      ("subject", Json.Str f.subject);
      ("detail", Json.Str f.detail);
      ("suppressed", Json.Bool suppressed);
    ]

let to_json r =
  Json.Obj
    [ ("design", Json.Str r.design);
      ("rules", Json.Num (float_of_int r.total_rules));
      ("run", Json.Num (float_of_int r.rules_run));
      ("crashed", Json.Num (float_of_int r.rules_crashed));
      ("skipped", Json.Num (float_of_int r.rules_skipped));
      ("degraded", Json.Bool r.degraded);
      ("errors", Json.Num (float_of_int (errors r)));
      ("warnings", Json.Num (float_of_int (warnings r)));
      ( "findings",
        Json.Arr
          (List.map (finding_json false) r.findings
          @ List.map (finding_json true) r.suppressed) );
    ]

(* SARIF 2.1.0 — the minimal schema GitHub code scanning ingests: one
   run, the full rule catalogue in the driver, one result per finding
   (suppressed findings are omitted; SARIF suppression objects are a
   per-result attribute most consumers ignore). *)
let sarif_level = function
  | Diagnostic.Error -> "error"
  | Diagnostic.Warning -> "warning"
  | Diagnostic.Note -> "note"

let to_sarif r =
  let rule_json (id, severity, title) =
    Json.Obj
      [ ("id", Json.Str id);
        ("shortDescription", Json.Obj [ ("text", Json.Str title) ]);
        ( "defaultConfiguration",
          Json.Obj [ ("level", Json.Str (sarif_level severity)) ] );
      ]
  in
  let result_json f =
    Json.Obj
      [ ("ruleId", Json.Str f.rule);
        ("level", Json.Str (sarif_level f.severity));
        ( "message",
          Json.Obj [ ("text", Json.Str (Printf.sprintf "%s: %s" f.subject f.detail)) ] );
        ( "locations",
          Json.Arr
            [ Json.Obj
                [ ( "physicalLocation",
                    Json.Obj
                      [ ( "artifactLocation",
                          Json.Obj [ ("uri", Json.Str r.design) ] )
                      ] )
                ]
            ] );
      ]
  in
  Json.Obj
    [ ("$schema", Json.Str "https://json.schemastore.org/sarif-2.1.0.json");
      ("version", Json.Str "2.1.0");
      ( "runs",
        Json.Arr
          [ Json.Obj
              [ ( "tool",
                  Json.Obj
                    [ ( "driver",
                        Json.Obj
                          [ ("name", Json.Str "bistpath-synth");
                            ("rules", Json.Arr (List.map rule_json rule_info));
                          ] )
                    ] );
                ("results", Json.Arr (List.map result_json r.findings));
              ]
          ] );
    ]

let diagnostics r =
  List.map
    (fun f ->
      let msg = Printf.sprintf "[%s] %s: %s" f.rule f.subject f.detail in
      match f.severity with
      | Diagnostic.Error -> Diagnostic.error msg
      | Diagnostic.Warning -> Diagnostic.warning msg
      | Diagnostic.Note -> Diagnostic.note msg)
    r.findings
