(** RTL/netlist pass: graph-level rules over the structural model and
    the control FSM (RTL001–RTL004, CTL001–CTL002). See the table in
    {!Check}. *)

val rules : Rule.t list
