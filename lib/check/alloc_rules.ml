module Dfg = Bistpath_dfg.Dfg
module Massign = Bistpath_dfg.Massign
module Lifetime = Bistpath_dfg.Lifetime
module Regalloc = Bistpath_datapath.Regalloc
module Datapath = Bistpath_datapath.Datapath
module Interval = Bistpath_graphs.Interval
module Chordal = Bistpath_graphs.Chordal
module Ipath = Bistpath_ipath.Ipath
module Allocator = Bistpath_bist.Allocator
module Resource = Bistpath_bist.Resource
module Sharing = Bistpath_core.Sharing
module Cbilbo_rules = Bistpath_core.Cbilbo_rules
open Rule

let error = Bistpath_resilience.Diagnostic.Error
let warning = Bistpath_resilience.Diagnostic.Warning

let spans ctx = Lifetime.spans ~policy:ctx.policy ctx.dfg

(* ALC001: two variables with overlapping lifetimes in one register. *)
let alc001 ctx =
  let sp = spans ctx in
  let span_of v = List.assoc_opt v sp in
  List.concat_map
    (fun (rid, vars) ->
      let rec pairs = function
        | [] -> []
        | a :: rest ->
            List.filter_map
              (fun b ->
                match (span_of a, span_of b) with
                | Some sa, Some sb when Interval.overlap sa sb ->
                    Some
                      (v "ALC001" error rid
                         "variables %s and %s have overlapping lifetimes (%d,%d] and (%d,%d] \
                          but share this register"
                         a b sa.Interval.birth sa.Interval.death sb.Interval.birth
                         sb.Interval.death)
                | _ -> None)
              rest
            @ pairs rest
      in
      pairs vars)
    ctx.regalloc.Regalloc.classes

(* ALC002: the assignment is not a partition of the allocatable variables. *)
let alc002 ctx =
  let allocatable = List.map fst (spans ctx) in
  let assigned = Regalloc.variables ctx.regalloc in
  let missing = List.filter (fun v -> not (List.mem v assigned)) allocatable in
  let extra = List.filter (fun v -> not (List.mem v allocatable)) assigned in
  let dup =
    List.filter
      (fun var ->
        List.length
          (List.filter (fun (_, vars) -> List.mem var vars) ctx.regalloc.Regalloc.classes)
        >= 2)
      (List.sort_uniq compare assigned)
  in
  List.map (fun x -> v "ALC002" error x "allocatable variable is assigned to no register") missing
  @ List.map
      (fun x -> v "ALC002" error x "variable is in the register file but is not allocatable")
      extra
  @ List.map (fun x -> v "ALC002" error x "variable is assigned to more than one register") dup

(* ALC003: the recomputed conflict graph must be chordal (interval graphs
   always are — this rule guards the lifetime machinery itself). *)
let alc003 ctx =
  let g, _ = Lifetime.conflict_graph ~policy:ctx.policy ctx.dfg in
  if Chordal.is_chordal g then []
  else [ v "ALC003" error ctx.design "recomputed variable conflict graph is not chordal" ]

(* ALC004: more registers than the chromatic number — legal but not the
   paper's minimum, so worth a warning. *)
let alc004 ctx =
  let used = Regalloc.num_registers ctx.regalloc in
  let minimum = Lifetime.min_registers ~policy:ctx.policy ctx.dfg in
  if used > minimum then
    [ v "ALC004" warning ctx.design
        "register file uses %d registers where %d suffice (clique number of the conflict graph)"
        used minimum ]
  else []

(* ALC005: the recorded coloring order must be the reverse of a perfect
   vertex elimination scheme of the conflict graph. *)
let alc005 ctx =
  match ctx.order with
  | None -> []
  | Some order ->
      let g, idx = Lifetime.conflict_graph ~policy:ctx.policy ctx.dfg in
      let sp = spans ctx in
      let unknown = List.filter (fun v -> not (List.mem_assoc v sp)) order in
      if unknown <> [] then
        List.map
          (fun x -> v "ALC005" error x "coloring order mentions an unknown or unallocatable variable")
          unknown
      else if List.length order <> List.length sp then
        [ v "ALC005" error ctx.design
            "coloring order covers %d of %d allocatable variables" (List.length order)
            (List.length sp) ]
      else
        let peo = List.rev_map idx.Lifetime.to_index order in
        if Chordal.is_peo g peo then []
        else
          [ v "ALC005" error ctx.design
              "coloring order reversed is not a perfect vertex elimination scheme of the \
               conflict graph" ]

(* --- BIST rules (active when the artifact bundle carries a solution) --- *)

let style_name s = Resource.style_label s

let declared_style (sol : Allocator.solution) rid =
  List.assoc_opt rid sol.Allocator.styles

(* BIST001: every chosen embedding must denote I-paths that exist on this
   datapath, and (for simple paths) the claimed sharing must be backed by
   an actual variable-set intersection. *)
let bist001 ctx =
  match ctx.bist with
  | None -> []
  | Some sol ->
      let sctx = Sharing.make ctx.dfg ctx.massign in
      let known_unit mid = List.mem mid (Sharing.units sctx) in
      let check_tpg (e : Ipath.embedding) side =
        let reg, via, label =
          match side with
          | `L -> (e.Ipath.l_tpg, e.Ipath.l_via, "left")
          | `R -> (e.Ipath.r_tpg, e.Ipath.r_via, "right")
        in
        let ipath_side = match side with `L -> Ipath.L | `R -> Ipath.R in
        let structural =
          match via with
          | None -> List.mem reg (Ipath.tpg_candidates ctx.datapath e.Ipath.mid ipath_side)
          | Some u ->
              List.mem (reg, u)
                (Ipath.tpg_candidates_transparent ctx.datapath e.Ipath.mid ipath_side)
        in
        let findings =
          if structural then []
          else
            [ v "BIST001" error e.Ipath.mid
                "embedding claims %s-port TPG %s%s but no such I-path exists on the data path"
                label reg
                (match via with Some u -> " (via " ^ u ^ ")" | None -> "") ]
        in
        (* Sharing claim: a simple-path TPG register must actually hold an
           operand variable of the unit. *)
        let sharing =
          match via with
          | Some _ -> []
          | None -> (
              match stored_vars ctx reg with
              | None -> []  (* missing register: structural check already fired *)
              | Some vars ->
                  if
                    known_unit e.Ipath.mid
                    && not
                         (List.exists
                            (fun x -> Dfg.Sset.mem x (Sharing.in_set sctx e.Ipath.mid))
                            vars)
                  then
                    [ v "BIST001" error e.Ipath.mid
                        "TPG register %s shares no variable with I_%s — the sharing claim \
                         behind the I-path is vacuous"
                        reg e.Ipath.mid ]
                  else [])
        in
        findings @ sharing
      in
      List.concat_map
        (fun (e : Ipath.embedding) ->
          let tpgs = check_tpg e `L @ check_tpg e `R in
          let distinct =
            if e.Ipath.l_tpg = e.Ipath.r_tpg then
              [ v "BIST001" error e.Ipath.mid
                  "both ports draw patterns from %s — the two ports need independent sources"
                  e.Ipath.l_tpg ]
            else []
          in
          let sa =
            if List.mem e.Ipath.sa (Ipath.sa_candidates ctx.datapath e.Ipath.mid) then
              match stored_vars ctx e.Ipath.sa with
              | Some vars
                when known_unit e.Ipath.mid
                     && not
                          (List.exists
                             (fun x -> Dfg.Sset.mem x (Sharing.out_set sctx e.Ipath.mid))
                             vars) ->
                  [ v "BIST001" error e.Ipath.mid
                      "SA register %s shares no variable with O_%s — the sharing claim \
                       behind the I-path is vacuous"
                      e.Ipath.sa e.Ipath.mid ]
              | _ -> []
            else
              [ v "BIST001" error e.Ipath.mid
                  "embedding claims SA %s but the unit has no I-path into it" e.Ipath.sa ]
          in
          tpgs @ distinct @ sa)
        sol.Allocator.embeddings

(* BIST002: each register's declared style must equal the cheapest style
   covering the duties the embeddings actually place on it. *)
let bist002 ctx =
  match ctx.bist with
  | None -> []
  | Some sol ->
      let roles rid =
        List.concat_map
          (fun (e : Ipath.embedding) ->
            let gen side = if side = rid then [ Resource.Generates e.Ipath.mid ] else [] in
            gen e.Ipath.l_tpg @ gen e.Ipath.r_tpg
            @ if e.Ipath.sa = rid then [ Resource.Compacts e.Ipath.mid ] else [])
          sol.Allocator.embeddings
      in
      let reg_ids = List.map (fun (r : Datapath.reg) -> r.Datapath.rid) ctx.datapath.Datapath.regs in
      let missing =
        List.filter_map
          (fun rid ->
            if declared_style sol rid = None then
              Some (v "BIST002" error rid "register has no entry in the style table")
            else None)
          reg_ids
      in
      let unknown =
        List.filter_map
          (fun (rid, _) ->
            if List.mem rid reg_ids then None
            else Some (v "BIST002" error rid "style table names a register the data path lacks"))
          sol.Allocator.styles
      in
      let mismatched =
        List.filter_map
          (fun (rid, declared) ->
            if not (List.mem rid reg_ids) then None
            else
              let expected =
                match roles rid with [] -> Resource.Normal | rs -> Resource.style_of_roles rs
              in
              if declared = expected then None
              else
                Some
                  (v "BIST002" error rid
                     "declared style %s but the chosen embeddings give it duties requiring %s"
                     (style_name declared) (style_name expected)))
          sol.Allocator.styles
      in
      missing @ unknown @ mismatched

(* BIST003: a CBILBO condition is triggered but the register is not
   flagged — either the chosen embedding itself places the double duty,
   or every embedding of the unit does (ground truth) yet the chosen one
   claims otherwise. *)
let bist003 ctx =
  match ctx.bist with
  | None -> []
  | Some sol ->
      List.concat_map
        (fun (e : Ipath.embedding) ->
          let flagged =
            if
              Ipath.requires_cbilbo e
              && declared_style sol e.Ipath.sa <> Some Resource.Cbilbo
            then
              [ v "BIST003" error e.Ipath.sa
                  "register generates and compacts concurrently for %s but is styled %s, \
                   not CBILBO"
                  e.Ipath.mid
                  (match declared_style sol e.Ipath.sa with
                  | Some s -> style_name s
                  | None -> "nothing") ]
            else []
          in
          let unavoidable =
            if
              (not (Ipath.requires_cbilbo e))
              && Ipath.cbilbo_unavoidable ~transparency:ctx.transparency ctx.datapath
                   e.Ipath.mid
            then
              [ v "BIST003" error e.Ipath.mid
                  "every embedding of this unit needs a CBILBO, yet the chosen one is \
                   recorded as avoiding it" ]
            else []
          in
          flagged @ unavoidable)
        sol.Allocator.embeddings

(* BIST004: a register flagged CBILBO that no chosen embedding justifies. *)
let bist004 ctx =
  match ctx.bist with
  | None -> []
  | Some sol ->
      List.filter_map
        (fun (rid, style) ->
          if style <> Resource.Cbilbo then None
          else if
            List.exists
              (fun (e : Ipath.embedding) -> Ipath.requires_cbilbo e && e.Ipath.sa = rid)
              sol.Allocator.embeddings
          then None
          else
            Some
              (v "BIST004" error rid
                 "register is flagged CBILBO but no chosen embedding makes it generate and \
                  compact for the same unit"))
        sol.Allocator.styles

(* BIST005: Lemma 1/2 prediction vs. post-interconnect ground truth. The
   lemma is documented as perfect-precision / ~90%-recall, so a
   disagreement is a warning, not an error. *)
let bist005 ctx =
  let sctx = Sharing.make ctx.dfg ctx.massign in
  let classes =
    List.map (fun (r : Datapath.reg) -> (r.Datapath.rid, r.Datapath.vars)) ctx.datapath.Datapath.regs
  in
  List.concat_map
    (fun mid ->
      if Ipath.embeddings ~transparency:ctx.transparency ctx.datapath mid = [] then []
      else
        let predicted =
          Cbilbo_rules.forced
            (Cbilbo_rules.check_module sctx ctx.massign ctx.dfg ~mid ~classes)
        in
        let ground =
          Ipath.cbilbo_unavoidable ~transparency:ctx.transparency ctx.datapath mid
        in
        let all_commutative =
          match List.find_opt (fun (u : Massign.hw) -> u.Massign.mid = mid) ctx.massign.Massign.units with
          | Some u -> List.for_all Bistpath_dfg.Op.commutative u.Massign.kinds
          | None -> true
        in
        if predicted && not ground then
          (* For non-commutative units the lemma is a documented
             over-approximation (pinned operand sides), so a precision
             escape there carries no signal. *)
          if not all_commutative then []
          else
            [ v "BIST005" warning mid
                "Lemma 1/2 predicts a forced CBILBO but some embedding avoids it (precision \
                 escape — unexpected, the lemma is documented exact on commutative units)" ]
        else if ground && not predicted then
          [ v "BIST005" warning mid
              "every embedding needs a CBILBO but Lemma 1/2 did not predict it (known \
               ~90%%-recall escape)" ]
        else [])
    (Sharing.units sctx)

(* BIST006: two units in the same test session with conflicting duties —
   shared SA, or generate-for-one/compact-for-another on a non-CBILBO. *)
let bist006 ctx =
  match (ctx.bist, ctx.sessions) with
  | Some sol, Some sched ->
      let emb mid =
        List.find_opt (fun (e : Ipath.embedding) -> e.Ipath.mid = mid) sol.Allocator.embeddings
      in
      let is_cbilbo rid = declared_style sol rid = Some Resource.Cbilbo in
      let tpgs (e : Ipath.embedding) = [ e.Ipath.l_tpg; e.Ipath.r_tpg ] in
      let conflict (a : Ipath.embedding) (b : Ipath.embedding) =
        if a.Ipath.sa = b.Ipath.sa then
          Some (Printf.sprintf "both compact into %s" a.Ipath.sa)
        else if List.mem b.Ipath.sa (tpgs a) && not (is_cbilbo b.Ipath.sa) then
          Some
            (Printf.sprintf "%s generates for %s while compacting for %s without being a CBILBO"
               b.Ipath.sa a.Ipath.mid b.Ipath.mid)
        else if List.mem a.Ipath.sa (tpgs b) && not (is_cbilbo a.Ipath.sa) then
          Some
            (Printf.sprintf "%s generates for %s while compacting for %s without being a CBILBO"
               a.Ipath.sa b.Ipath.mid a.Ipath.mid)
        else None
      in
      List.concat_map
        (fun session ->
          let rec pairs = function
            | [] -> []
            | ma :: rest ->
                List.filter_map
                  (fun mb ->
                    match (emb ma, emb mb) with
                    | Some ea, Some eb -> (
                        match conflict ea eb with
                        | Some why ->
                            Some
                              (v "BIST006" error (ma ^ "+" ^ mb)
                                 "units scheduled in one session conflict: %s" why)
                        | None -> None)
                    | _ -> None)
                  rest
                @ pairs rest
          in
          pairs session)
        sched.Bistpath_bist.Session.sessions
  | _ -> []

let rules =
  [
    { id = "ALC001"; severity = error; title = "conflicting variables share a register"; pass = Alloc; run = alc001 };
    { id = "ALC002"; severity = error;
      title = "register assignment does not partition the allocatable variables";
      pass = Alloc;
      run = alc002;
    };
    { id = "ALC003"; severity = error; title = "conflict graph is not chordal"; pass = Alloc; run = alc003 };
    { id = "ALC004"; severity = warning;
      title = "register count exceeds the recomputed minimum";
      pass = Alloc;
      run = alc004;
    };
    { id = "ALC005"; severity = error;
      title = "coloring order is not a reverse perfect vertex elimination scheme";
      pass = Alloc;
      run = alc005;
    };
    { id = "BIST001"; severity = error;
      title = "BIST embedding claims an I-path the data path does not have";
      pass = Alloc;
      run = bist001;
    };
    { id = "BIST002"; severity = error;
      title = "register style does not match its accumulated test duties";
      pass = Alloc;
      run = bist002;
    };
    { id = "BIST003"; severity = error;
      title = "CBILBO condition triggered but register not flagged";
      pass = Alloc;
      run = bist003;
    };
    { id = "BIST004"; severity = error;
      title = "register flagged CBILBO without a generate-and-compact duty";
      pass = Alloc;
      run = bist004;
    };
    { id = "BIST005"; severity = warning;
      title = "Lemma 1/2 prediction disagrees with the post-interconnect ground truth";
      pass = Alloc;
      run = bist005;
    };
    { id = "BIST006"; severity = error;
      title = "test session schedules conflicting duties together";
      pass = Alloc;
      run = bist006;
    };
  ]
