module Dfg = Bistpath_dfg.Dfg
module Op = Bistpath_dfg.Op
module Policy = Bistpath_dfg.Policy
module Massign = Bistpath_dfg.Massign
module Regalloc = Bistpath_datapath.Regalloc
module Datapath = Bistpath_datapath.Datapath

type severity = Bistpath_resilience.Diagnostic.severity

type finding = { rule : string; severity : severity; subject : string; detail : string }

type pass = Alloc | Datapath_pass | Rtl

type ctx = {
  design : string;
  width : int;
  transparency : bool;
  vectors : int;
  assumes : (string * (int * int)) list;
  dfg : Dfg.t;
  massign : Massign.t;
  policy : Policy.t;
  regalloc : Regalloc.t;
  datapath : Datapath.t;
  bist : Bistpath_bist.Allocator.solution option;
  sessions : Bistpath_bist.Session.t option;
  order : string list option;
  control : Bistpath_datapath.Control.t option;
  model : Rtl_model.t;
}

type t = {
  id : string;
  title : string;
  severity : severity;
  pass : pass;
  run : ctx -> finding list;
}

let v rule severity subject fmt =
  Printf.ksprintf (fun detail -> { rule; severity; subject; detail }) fmt

let mid_of_op ctx opid = Dfg.Smap.find_opt opid ctx.massign.Massign.of_op

let expected_reg ctx v =
  match Regalloc.register_of ctx.regalloc v with
  | Some r -> Some r
  | None -> (
      match Policy.carried_into ctx.policy v with
      | Some target -> Some ("IN_" ^ target)
      | None -> if List.mem v ctx.dfg.Dfg.inputs then Some ("IN_" ^ v) else None)

let op_routes ctx (op : Op.t) =
  List.filter (fun (r : Datapath.route) -> r.Datapath.opid = op.Op.id) ctx.datapath.Datapath.routes

let unit_routes ctx =
  List.filter_map
    (fun (u : Massign.hw) ->
      let rs =
        List.filter
          (fun (r : Datapath.route) -> mid_of_op ctx r.Datapath.opid = Some u.Massign.mid)
          ctx.datapath.Datapath.routes
      in
      if rs = [] then None else Some (u, rs))
    ctx.massign.Massign.units

let port_sources rs side =
  List.sort_uniq compare
    (List.map
       (fun (r : Datapath.route) ->
         match side with `L -> r.Datapath.l_reg | `R -> r.Datapath.r_reg)
       rs)

let writers ctx rid =
  match List.assoc_opt rid ctx.datapath.Datapath.reg_writers with Some ws -> ws | None -> []

let stored_vars ctx rid =
  List.find_map
    (fun (r : Datapath.reg) -> if r.Datapath.rid = rid then Some r.Datapath.vars else None)
    ctx.datapath.Datapath.regs

let consumed_inputs ctx =
  List.filter
    (fun v -> List.exists (fun (op : Op.t) -> List.mem v (Op.operands op)) ctx.dfg.Dfg.ops)
    (List.sort_uniq compare ctx.dfg.Dfg.inputs)
