module Ipath = Bistpath_ipath.Ipath
module Ugraph = Bistpath_graphs.Ugraph
module Coloring = Bistpath_graphs.Coloring
module Listx = Bistpath_util.Listx
module Budget = Bistpath_resilience.Budget

type t = { sessions : string list list }

let conflict styles (a : Ipath.embedding) (b : Ipath.embedding) =
  let is_cbilbo r = List.assoc_opt r styles = Some Resource.Cbilbo in
  let tpgs (e : Ipath.embedding) = [ e.l_tpg; e.r_tpg ] in
  let channels (e : Ipath.embedding) =
    List.filter_map Fun.id [ e.l_via; e.r_via ]
  in
  String.equal a.sa b.sa
  || (List.mem b.sa (tpgs a) && not (is_cbilbo b.sa))
  || (List.mem a.sa (tpgs b) && not (is_cbilbo a.sa))
  (* a unit cannot be a transparent pattern channel while under test *)
  || List.mem b.mid (channels a)
  || List.mem a.mid (channels b)

let schedule ?(budget = Budget.unlimited) (sol : Allocator.solution) =
  if Budget.should_stop budget then
    (* Degenerate but always-valid fallback under cancellation: one unit
       per session trivially satisfies every conflict constraint. *)
    { sessions = List.map (fun (e : Ipath.embedding) -> [ e.Ipath.mid ]) sol.embeddings }
  else
  let es = Array.of_list sol.embeddings in
  let n = Array.length es in
  let edges =
    Listx.pairs (Listx.range 0 n)
    |> List.filter (fun (i, j) -> conflict sol.styles es.(i) es.(j))
  in
  let g = Ugraph.of_edges ~vertices:(Listx.range 0 n) edges in
  let coloring = Coloring.first_fit g (Listx.range 0 n) in
  let sessions =
    Coloring.classes coloring
    |> List.map (fun (_, members) -> List.map (fun i -> es.(i).Ipath.mid) members)
  in
  { sessions }

let num_sessions t = List.length t.sessions

let pp ppf t =
  List.iteri
    (fun i units ->
      Format.fprintf ppf "session %d: %s@ " (i + 1) (String.concat ", " units))
    t.sessions
