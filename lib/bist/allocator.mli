(** Minimal-area BIST resource allocation — our reimplementation of the
    role the BITS system plays in the paper's evaluation (DESIGN.md §3).

    Given a data path, pick one BIST embedding per functional unit so that
    the total modification cost (gates added to upgrade registers to
    their accumulated styles) is minimal. Branch-and-bound with a greedy
    warm start and incremental cost maintenance: units in
    fewest-embeddings-first order, branches in cheapest-delta-first
    order, pruning on the running cost. The paper-scale designs are
    solved exactly; a node budget caps the search on large generated
    designs (the [exact] flag reports which happened). *)

type solution = {
  embeddings : Bistpath_ipath.Ipath.embedding list;  (** one per testable unit *)
  styles : (string * Resource.style) list;  (** per register, Normal included *)
  untestable : string list;  (** units with no usable embedding *)
  delta_gates : int;  (** total modification cost *)
  exact : bool;  (** search completed within the node budget *)
}

val solve :
  ?model:Bistpath_datapath.Area.model ->
  ?width:int ->
  ?forbidden:Resource.style list ->
  ?node_budget:int ->
  ?io_penalty_percent:int ->
  ?transparency:bool ->
  ?budget:Bistpath_resilience.Budget.t ->
  Bistpath_datapath.Datapath.t ->
  solution
(** Default model {!Bistpath_datapath.Area.default}, width 8, node budget
    200_000. Units with no operations bound to them are skipped (they
    exist only on paper). [forbidden] styles are rejected outright (used
    by the SYNTEST-like baseline, whose self-testable template never
    mixes generate and compact duties on one register); a unit whose
    every embedding would need a forbidden style is reported untestable.
    [io_penalty_percent] (default 100 = no penalty) scales the
    modification cost of {e dedicated} I/O registers — pad-ring
    registers are costlier to convert than datapath registers; the
    sensitivity study in the bench harness sweeps this. With
    [~transparency:true] (default false) pattern generators may reach a
    port through one transparent unit ({!Bistpath_ipath.Ipath}), which
    can only lower the minimum. Deterministic.

    [budget] (default {!Bistpath_resilience.Budget.unlimited}) makes the
    search anytime: every branch-and-bound node is counted against the
    budget and the search polls its token, so a deadline or external
    cancel truncates it exactly like the local node quota — the greedy
    warm start (or best solution found so far) is returned with
    [exact = false]. With the default budget behaviour and results are
    bit-identical to previous releases.

    Fault injection: each complete leaf probes the [allocator.leaf] site
    ({!Bistpath_resilience.Inject}). *)

val solve_outcome :
  ?model:Bistpath_datapath.Area.model ->
  ?width:int ->
  ?forbidden:Resource.style list ->
  ?node_budget:int ->
  ?io_penalty_percent:int ->
  ?transparency:bool ->
  ?budget:Bistpath_resilience.Budget.t ->
  Bistpath_datapath.Datapath.t ->
  solution Bistpath_resilience.Outcome.t
(** [solve] with the truncation cause made explicit: [Complete] iff
    [exact], otherwise [Degraded] carrying the budget's stop reason
    (falling back to [Node_budget] for the local quota, which has no
    token). *)

val style_counts : solution -> (Resource.style * int) list
(** Histogram of non-[Normal] styles (Table II's resource mixes). *)

val overhead_percent :
  ?model:Bistpath_datapath.Area.model ->
  ?width:int ->
  Bistpath_datapath.Datapath.t ->
  solution ->
  float
(** 100 * delta / functional gates of the unmodified data path. *)

val pp_solution : Format.formatter -> solution -> unit
