(** Area / test-time trade-off exploration.

    Minimal modification area is the paper's objective, but every extra
    test session multiplies test time (each session runs its own pattern
    budget). Different embedding choices trade the two: sharing one SA
    register across units saves gates yet serializes their sessions.
    This module enumerates embedding combinations within an area slack
    of the minimum and reports the Pareto front over
    (modification gates, number of sessions). *)

type point = {
  delta_gates : int;
  sessions : int;
  solution : Allocator.solution;
}

val explore :
  ?model:Bistpath_datapath.Area.model ->
  ?width:int ->
  ?transparency:bool ->
  ?slack_percent:int ->
  ?leaf_budget:int ->
  ?pool:Bistpath_parallel.Pool.t ->
  ?budget:Bistpath_resilience.Budget.t ->
  Bistpath_datapath.Datapath.t ->
  point list
(** Points sorted by [delta_gates], mutually non-dominated (no point is
    at least as good on both axes as another). [slack_percent] (default
    50) bounds the search to cost <= minimum * (100+slack)/100;
    [leaf_budget] (default 20_000) caps the enumeration. The minimum-
    area solution's cost is always represented. Embedding leaves are
    costed (solution build + session scheduling) in parallel on the
    [Bistpath_parallel] pool (the shared pool unless [?pool] is given);
    the front is assembled in deterministic enumeration order and is
    bit-identical to the sequential result at any pool width.

    [budget] (default {!Bistpath_resilience.Budget.unlimited}) makes the
    exploration anytime: the minimum-area search, the enumeration (one
    {!Bistpath_resilience.Budget.leaf} per combination, checked before
    fan-out — so a leaf-budget truncation is still width-independent),
    leaf costing (budget-aware parallel map; a mid-batch deadline
    abandons queued leaves) and session scheduling all observe it. The
    front of whatever was evaluated is still returned, with the
    always-included minimum point guaranteeing it is non-empty.

    Fault injection: every costed leaf probes the [pareto.leaf] site
    ({!Bistpath_resilience.Inject}). *)

val explore_outcome :
  ?model:Bistpath_datapath.Area.model ->
  ?width:int ->
  ?transparency:bool ->
  ?slack_percent:int ->
  ?leaf_budget:int ->
  ?pool:Bistpath_parallel.Pool.t ->
  ?budget:Bistpath_resilience.Budget.t ->
  Bistpath_datapath.Datapath.t ->
  point list Bistpath_resilience.Outcome.t
(** [explore] with the truncation cause made explicit: [Degraded] with
    the budget's stop reason if its token tripped, [Degraded] with
    [Leaf_budget] if the local enumeration cap was exceeded, [Complete]
    otherwise. *)

val pp : Format.formatter -> point list -> unit
