module Area = Bistpath_datapath.Area
module Datapath = Bistpath_datapath.Datapath
module Massign = Bistpath_dfg.Massign
module Ipath = Bistpath_ipath.Ipath
module Budget = Bistpath_resilience.Budget
module Cancel = Bistpath_resilience.Cancel
module Outcome = Bistpath_resilience.Outcome
module Inject = Bistpath_resilience.Inject

type point = {
  delta_gates : int;
  sessions : int;
  solution : Allocator.solution;
}

let solution_of dp model width embeddings =
  let tbl = Hashtbl.create 16 in
  let push rid role =
    Hashtbl.replace tbl rid
      (role :: (match Hashtbl.find_opt tbl rid with Some l -> l | None -> []))
  in
  List.iter
    (fun (e : Ipath.embedding) ->
      push e.l_tpg (Resource.Generates e.mid);
      push e.r_tpg (Resource.Generates e.mid);
      push e.sa (Resource.Compacts e.mid))
    embeddings;
  let styles =
    List.map
      (fun (r : Datapath.reg) ->
        let roles = match Hashtbl.find_opt tbl r.rid with Some l -> l | None -> [] in
        (r.rid, Resource.style_of_roles roles))
      dp.Datapath.regs
  in
  let delta =
    Bistpath_util.Listx.sum_by
      (fun (_, s) -> Resource.delta_gates model ~width s)
      styles
  in
  {
    Allocator.embeddings =
      List.sort (fun (a : Ipath.embedding) b -> compare a.mid b.mid) embeddings;
    styles;
    untestable = [];
    delta_gates = delta;
    exact = true;
  }

let explore_outcome ?(model = Area.default) ?(width = 8) ?(transparency = false)
    ?(slack_percent = 50) ?(leaf_budget = 20_000) ?pool
    ?(budget = Budget.unlimited) dp =
  let minimum = Allocator.solve ~model ~width ~transparency ~budget dp in
  let bound = minimum.Allocator.delta_gates * (100 + slack_percent) / 100 in
  let units =
    dp.Datapath.massign.Massign.units
    |> List.filter (fun (u : Massign.hw) ->
           Massign.temporal_multiplicity dp.Datapath.massign dp.Datapath.dfg u.mid > 0)
    |> List.filter_map (fun (u : Massign.hw) ->
           match Ipath.embeddings ~transparency dp u.mid with
           | [] -> None
           | es -> Some es)
  in
  (* Enumerating the embedding combinations is cheap (cons cells only);
     costing a leaf — building the solution and scheduling its sessions —
     is the hot part, so the leaves are collected first and evaluated on
     the domain pool. The collected list is in reverse enumeration order,
     exactly the order the sequential evaluator accumulated results in,
     so the front below is bit-identical at any pool width. *)
  let chosen_leaves = ref [] in
  let count = ref 0 in
  (* The enumeration counts every leaf against both the local quota and
     the shared budget before fan-out, so a leaf-budget truncation is
     decided here, sequentially — which is what keeps the truncated
     front identical at every pool width. *)
  let rec enumerate chosen = function
    | [] ->
      incr count;
      Budget.leaf budget;
      if !count <= leaf_budget && not (Budget.should_stop budget) then
        chosen_leaves := chosen :: !chosen_leaves
    | es :: rest ->
      if !count <= leaf_budget && not (Budget.should_stop budget) then
        List.iter (fun e -> enumerate (e :: chosen) rest) es
  in
  enumerate [] units;
  let evaluate chosen =
    Inject.fire "pareto.leaf";
    let sol = solution_of dp model width chosen in
    if sol.Allocator.delta_gates <= bound then
      Some
        ( sol.Allocator.delta_gates,
          Session.num_sessions (Session.schedule ~budget sol),
          sol )
    else None
  in
  let leaves =
    let evaluated =
      if Budget.is_unlimited budget then
        Bistpath_parallel.Par.map_list ?pool evaluate !chosen_leaves
      else
        (* Under a live budget the chunks poll the token too, so a
           deadline that trips mid-evaluation abandons queued leaves
           ([None]) instead of finishing the whole batch. *)
        Bistpath_parallel.Par.map_list_budget ?pool ~budget evaluate !chosen_leaves
        |> List.map (function Some r -> r | None -> None)
    in
    List.filter_map Fun.id evaluated
  in
  (* Always include the true minimum (the enumeration may be cut). *)
  let min_point =
    ( minimum.Allocator.delta_gates,
      Session.num_sessions (Session.schedule ~budget minimum),
      minimum )
  in
  let candidates = min_point :: leaves in
  let dominated (d, s, _) =
    List.exists
      (fun (d', s', _) -> d' <= d && s' <= s && (d' < d || s' < s))
      candidates
  in
  let points =
    candidates
    |> List.filter (fun p -> not (dominated p))
    |> List.sort_uniq (fun (d, s, _) (d', s', _) -> compare (d, s) (d', s'))
    |> List.map (fun (delta_gates, sessions, solution) -> { delta_gates; sessions; solution })
  in
  match Budget.stop_reason budget with
  | Some r -> Outcome.Degraded (points, r)
  | None ->
    if !count > leaf_budget then Outcome.Degraded (points, Cancel.Leaf_budget leaf_budget)
    else Outcome.Complete points

let explore ?model ?width ?transparency ?slack_percent ?leaf_budget ?pool ?budget dp =
  Outcome.value
    (explore_outcome ?model ?width ?transparency ?slack_percent ?leaf_budget ?pool
       ?budget dp)

let pp ppf points =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun p ->
      Format.fprintf ppf "%5d gates, %d session%s@," p.delta_gates p.sessions
        (if p.sessions = 1 then "" else "s"))
    points;
  Format.fprintf ppf "@]"
