(** BIST register styles and their area cost.

    A register accumulates roles over the modules it helps test; the
    cheapest style honoring all roles:

    - TPG for one or more modules: [Tpg] (an LFSR-capable register);
    - SA for one or more modules, one per session: [Sa] (MISR-capable);
    - both TPG roles and SA roles, but never both for the same module:
      [Bilbo] (mode chosen per test session);
    - TPG and SA {e for the same module} (head and tail of the module's
      I-path configuration coincide): [Cbilbo], able to generate and
      compact concurrently. *)

type style = Normal | Tpg | Sa | Bilbo | Cbilbo

val pp_style : Format.formatter -> style -> unit

val style_label : style -> string
(** "none", "TPG", "SA", "TPG/SA", "CBILBO" — Table II's vocabulary
    ([Bilbo] prints as "TPG/SA"). *)

type role = Generates of string | Compacts of string
(** TPG (resp. SA) duty for the named module's test. *)

val style_of_roles : role list -> style
(** Cheapest style covering the given duties. *)

val delta_gates :
  Bistpath_datapath.Area.model -> width:int -> style -> int
(** Extra gates over a plain register. 0 for [Normal]. *)
