module Area = Bistpath_datapath.Area
module Datapath = Bistpath_datapath.Datapath
module Massign = Bistpath_dfg.Massign
module Ipath = Bistpath_ipath.Ipath
module Listx = Bistpath_util.Listx
module Telemetry = Bistpath_telemetry.Telemetry
module Budget = Bistpath_resilience.Budget
module Cancel = Bistpath_resilience.Cancel
module Outcome = Bistpath_resilience.Outcome
module Inject = Bistpath_resilience.Inject

type solution = {
  embeddings : Ipath.embedding list;
  styles : (string * Resource.style) list;
  untestable : string list;
  delta_gates : int;
  exact : bool;
}

(* Incremental role state: per register, counts of generate/compact
   duties and of units for which the register does both. The style (and
   hence cost) of a register is a function of this summary only. *)
type reg_state = {
  mutable gen : int;  (* TPG duties *)
  mutable comp : int;  (* SA duties *)
  mutable both : int;  (* units for which this register is TPG and SA *)
}

let style_of_state s =
  if s.both > 0 then Resource.Cbilbo
  else
    match (s.gen > 0, s.comp > 0) with
    | false, false -> Resource.Normal
    | true, false -> Resource.Tpg
    | false, true -> Resource.Sa
    | true, true -> Resource.Bilbo

type engine = {
  model : Area.model;
  width : int;
  forbidden : Resource.style list;
  penalized : (string, unit) Hashtbl.t;  (* dedicated registers *)
  io_penalty : int;  (* percent, 100 = none *)
  states : (string, reg_state) Hashtbl.t;
  mutable cost : int;
  mutable feasible : int;  (* number of registers in a forbidden style *)
}

let state_of eng rid =
  match Hashtbl.find_opt eng.states rid with
  | Some s -> s
  | None ->
    let s = { gen = 0; comp = 0; both = 0 } in
    Hashtbl.replace eng.states rid s;
    s

let gates eng rid style =
  let base = Resource.delta_gates eng.model ~width:eng.width style in
  if Hashtbl.mem eng.penalized rid then base * eng.io_penalty / 100 else base

let touch eng rid f =
  let s = state_of eng rid in
  let before = style_of_state s in
  f s;
  let after = style_of_state s in
  eng.cost <- eng.cost - gates eng rid before + gates eng rid after;
  let bad style = List.mem style eng.forbidden in
  eng.feasible <- eng.feasible + (if bad after then 1 else 0) - (if bad before then 1 else 0)

let apply eng (e : Ipath.embedding) =
  touch eng e.l_tpg (fun s ->
      s.gen <- s.gen + 1;
      if String.equal e.l_tpg e.sa then s.both <- s.both + 1);
  touch eng e.r_tpg (fun s ->
      s.gen <- s.gen + 1;
      if String.equal e.r_tpg e.sa then s.both <- s.both + 1);
  touch eng e.sa (fun s -> s.comp <- s.comp + 1)

let unapply eng (e : Ipath.embedding) =
  touch eng e.sa (fun s -> s.comp <- s.comp - 1);
  touch eng e.r_tpg (fun s ->
      s.gen <- s.gen - 1;
      if String.equal e.r_tpg e.sa then s.both <- s.both - 1);
  touch eng e.l_tpg (fun s ->
      s.gen <- s.gen - 1;
      if String.equal e.l_tpg e.sa then s.both <- s.both - 1)

let solve ?(model = Area.default) ?(width = 8) ?(forbidden = [])
    ?(node_budget = 200_000) ?(io_penalty_percent = 100) ?(transparency = false)
    ?(budget = Budget.unlimited) dp =
  let penalized = Hashtbl.create 8 in
  if io_penalty_percent <> 100 then
    List.iter
      (fun (r : Datapath.reg) ->
        if r.Datapath.dedicated then Hashtbl.replace penalized r.Datapath.rid ())
      dp.Datapath.regs;
  let fresh_engine () =
    {
      model;
      width;
      forbidden;
      penalized;
      io_penalty = io_penalty_percent;
      states = Hashtbl.create 16;
      cost = 0;
      feasible = 0;
    }
  in
  let units =
    dp.Datapath.massign.Massign.units
    |> List.filter (fun (u : Massign.hw) ->
           Massign.temporal_multiplicity dp.Datapath.massign dp.Datapath.dfg u.mid > 0)
  in
  let with_embeddings =
    List.map (fun (u : Massign.hw) -> (u.mid, Ipath.embeddings ~transparency dp u.mid)) units
  in
  let untestable =
    List.filter_map (fun (m, es) -> if es = [] then Some m else None) with_embeddings
  in
  Telemetry.incr "bist.units" ~by:(List.length with_embeddings);
  Telemetry.incr "bist.embedding_candidates"
    ~by:(Listx.sum_by (fun (_, es) -> List.length es) with_embeddings);
  let eng = fresh_engine () in
  let delta_of e =
    apply eng e;
    let c = eng.cost in
    let ok = eng.feasible = 0 in
    unapply eng e;
    (c, ok)
  in
  (* Order: units with fewest embeddings first; within a unit, embeddings
     sorted by their cost against the empty state (cheap first). *)
  let testable =
    List.filter (fun (_, es) -> es <> []) with_embeddings
    |> List.map (fun (m, es) ->
           let keyed = List.map (fun e -> (fst (delta_of e), e)) es in
           (m, List.map snd (List.sort compare keyed)))
    |> List.sort (fun (_, a) (_, b) -> compare (List.length a) (List.length b))
  in
  let arr = Array.of_list testable in
  let n = Array.length arr in
  (* Greedy warm start: take, per unit in order, the embedding with the
     smallest feasible cost increase. *)
  let greedy = Array.make n None in
  Array.iteri
    (fun i (_, es) ->
      let best = ref None in
      List.iter
        (fun e ->
          let c, ok = delta_of e in
          if ok then
            match !best with
            | Some (bc, _) when bc <= c -> ()
            | _ -> best := Some (c, e))
        es;
      match !best with
      | Some (_, e) ->
        apply eng e;
        greedy.(i) <- Some e
      | None -> ())
    arr;
  let greedy_cost = if Array.exists Option.is_none greedy then max_int else eng.cost in
  (* Reset engine. *)
  Array.iter (function Some e -> unapply eng e | None -> ()) greedy;
  let best_cost = ref greedy_cost in
  let best = ref (if greedy_cost = max_int then None else Some (Array.to_list greedy |> List.filter_map Fun.id)) in
  let chosen = Array.make n None in
  let nodes = ref 0 in
  let exhausted = ref false in
  let rec branch i =
    if !nodes > node_budget || Budget.should_stop budget then exhausted := true
    else if i = n then begin
      Inject.fire "allocator.leaf";
      if eng.feasible = 0 && eng.cost < !best_cost then begin
        best_cost := eng.cost;
        best := Some (Array.to_list chosen |> List.filter_map Fun.id)
      end
    end
    else
      List.iter
        (fun e ->
          if (not !exhausted) && eng.cost < !best_cost then begin
            incr nodes;
            Budget.node budget;
            Telemetry.incr "bist.embeddings_explored";
            apply eng e;
            chosen.(i) <- Some e;
            (* A later embedding can never remove a duty, so a partial
               already using a forbidden style cannot recover: prune. *)
            if eng.feasible = 0 then branch (i + 1);
            chosen.(i) <- None;
            unapply eng e
          end)
        (snd arr.(i))
  in
  branch 0;
  (* If nothing feasible was found under the constraints, drop units one
     by one (most-embeddings last) until a feasible core remains. *)
  let chosen_embeddings, extra_untestable =
    match !best with
    | Some es -> (es, [])
    | None ->
      let rec shrink dropped lst =
        match lst with
        | [] -> ([], dropped)
        | (mid, _) :: rest ->
          let eng2 = fresh_engine () in
          let ok = ref true in
          let acc = ref [] in
          List.iter
            (fun (_, es) ->
              if !ok then begin
                let best = ref None in
                List.iter
                  (fun e ->
                    apply eng2 e;
                    let c = eng2.cost and feas = eng2.feasible = 0 in
                    unapply eng2 e;
                    if feas then
                      match !best with
                      | Some (bc, _) when bc <= c -> ()
                      | _ -> best := Some (c, e)
                  )
                  es;
                match !best with
                | Some (_, e) ->
                  apply eng2 e;
                  acc := e :: !acc
                | None -> ok := false
              end)
            rest;
          if !ok then (List.rev !acc, dropped @ [ mid ])
          else shrink (dropped @ [ mid ]) rest
      in
      shrink [] (Array.to_list arr)
  in
  let embeddings =
    List.sort (fun (a : Ipath.embedding) b -> compare a.mid b.mid) chosen_embeddings
  in
  (* CBILBO-requiring embeddings that were on the table but not picked. *)
  let cbilbos l = List.length (List.filter Ipath.requires_cbilbo l) in
  Telemetry.incr "bist.cbilbos_avoided"
    ~by:
      (max 0
         (cbilbos (List.concat_map snd with_embeddings) - cbilbos embeddings));
  (* Recompute final styles and cost from scratch for reporting. *)
  let eng3 = fresh_engine () in
  List.iter (apply eng3) embeddings;
  let styles =
    List.map
      (fun (r : Datapath.reg) ->
        let style =
          match Hashtbl.find_opt eng3.states r.rid with
          | Some s -> style_of_state s
          | None -> Resource.Normal
        in
        (r.rid, style))
      dp.Datapath.regs
  in
  {
    embeddings;
    styles;
    untestable = List.sort compare (untestable @ extra_untestable);
    delta_gates = eng3.cost;
    exact = not !exhausted;
  }

let solve_outcome ?model ?width ?forbidden ?(node_budget = 200_000)
    ?io_penalty_percent ?transparency ?(budget = Budget.unlimited) dp =
  let sol =
    solve ?model ?width ?forbidden ~node_budget ?io_penalty_percent ?transparency
      ~budget dp
  in
  if sol.exact then Outcome.Complete sol
  else
    (* Token first: a deadline or external cancel is the real cause even
       though it surfaces through the same [exhausted] flag as the local
       node quota. *)
    match Budget.stop_reason budget with
    | Some r -> Outcome.Degraded (sol, r)
    | None -> Outcome.Degraded (sol, Cancel.Node_budget node_budget)

let style_counts sol =
  [ Resource.Cbilbo; Resource.Bilbo; Resource.Tpg; Resource.Sa ]
  |> List.filter_map (fun s ->
         match List.length (List.filter (fun (_, s') -> s' = s) sol.styles) with
         | 0 -> None
         | n -> Some (s, n))

let overhead_percent ?(model = Area.default) ?(width = 8) dp sol =
  let base = Area.functional_gates model ~width dp in
  if base = 0 then 0.0 else 100.0 *. float_of_int sol.delta_gates /. float_of_int base

let pp_solution ppf sol =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (e : Ipath.embedding) ->
      let via = function None -> "" | Some u -> Printf.sprintf " (via %s)" u in
      Format.fprintf ppf "test %s: TPG L=%s%s R=%s%s, SA=%s%s@," e.mid e.l_tpg
        (via e.l_via) e.r_tpg (via e.r_via) e.sa
        (if Ipath.requires_cbilbo e then " (CBILBO)" else ""))
    sol.embeddings;
  List.iter
    (fun (rid, s) ->
      if s <> Resource.Normal then
        Format.fprintf ppf "%s: %s@," rid (Resource.style_label s))
    sol.styles;
  if sol.untestable <> [] then
    Format.fprintf ppf "untestable: %s@," (String.concat ", " sol.untestable);
  Format.fprintf ppf "delta gates: %d%s@]" sol.delta_gates
    (if sol.exact then "" else " (search truncated)")
