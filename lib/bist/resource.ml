module Area = Bistpath_datapath.Area

type style = Normal | Tpg | Sa | Bilbo | Cbilbo

let pp_style ppf s =
  Format.pp_print_string ppf
    (match s with
    | Normal -> "Normal"
    | Tpg -> "Tpg"
    | Sa -> "Sa"
    | Bilbo -> "Bilbo"
    | Cbilbo -> "Cbilbo")

let style_label = function
  | Normal -> "none"
  | Tpg -> "TPG"
  | Sa -> "SA"
  | Bilbo -> "TPG/SA"
  | Cbilbo -> "CBILBO"

type role = Generates of string | Compacts of string

let style_of_roles roles =
  let gens = List.filter_map (function Generates m -> Some m | Compacts _ -> None) roles in
  let comps = List.filter_map (function Compacts m -> Some m | Generates _ -> None) roles in
  let concurrent = List.exists (fun m -> List.mem m comps) gens in
  if concurrent then Cbilbo
  else
    match (gens, comps) with
    | [], [] -> Normal
    | _ :: _, [] -> Tpg
    | [], _ :: _ -> Sa
    | _ :: _, _ :: _ -> Bilbo

let delta_gates (m : Area.model) ~width = function
  | Normal -> 0
  | Tpg -> m.tpg_delta_per_bit * width
  | Sa -> m.sa_delta_per_bit * width
  | Bilbo -> m.bilbo_delta_per_bit * width
  | Cbilbo -> m.cbilbo_delta_per_bit * width
