(** Test-session scheduling.

    Minimal BIST area deliberately does not test every unit at once
    (Section II); units whose chosen embeddings place incompatible duties
    on the same register must run in different sessions:

    - two units sharing an SA register conflict (one MISR input per
      cycle);
    - a register generating for one unit and compacting for another
      conflicts unless it became a CBILBO (whose two halves are
      independent).

    Sessions are assigned by greedy coloring of this conflict graph. *)

type t = {
  sessions : string list list;  (** unit ids per session, session order *)
}

val schedule : ?budget:Bistpath_resilience.Budget.t -> Allocator.solution -> t
(** Greedy-coloring schedule. If [budget] (default
    {!Bistpath_resilience.Budget.unlimited}) has already tripped, the
    coloring is skipped and the degenerate one-unit-per-session schedule
    — valid under every conflict constraint, just conservative — is
    returned so a cancelled pipeline still emits a usable plan. *)

val num_sessions : t -> int

val pp : Format.formatter -> t -> unit
