(** Experiment drivers: each function regenerates one table or figure of
    the paper (see DESIGN.md §4 and EXPERIMENTS.md) as printable text.
    Shared by [bench/main.exe] and the [bin/synth] CLI. *)

type comparison = {
  instance : Bistpath_benchmarks.Benchmarks.instance;
  traditional : Bistpath_core.Flow.result;
  testable : Bistpath_core.Flow.result;
}

val compare_instance :
  ?width:int -> Bistpath_benchmarks.Benchmarks.instance -> comparison
(** Run both flows on one benchmark. *)

val table1 : ?width:int -> unit -> string
(** Design comparisons with BIST area overhead (registers, muxes,
    overhead %, reduction %) over the five paper benchmarks. *)

val table2 : ?width:int -> unit -> string
(** Minimal-area BIST solutions: the resource mix per design and flow. *)

val table3 : ?width:int -> unit -> string
(** Paulin example vs the RALLOC-like and SYNTEST-like baselines. *)

val fig2 : unit -> string
(** The ex1 scheduled DFG. *)

val fig4 : unit -> string
(** The ex1 variable conflict graph with SD and MCS annotations, plus the
    PVES and coloring trace of the testable allocator (the Section III
    walkthrough). *)

val fig5 : ?width:int -> unit -> string
(** The two ex1 data paths (testable vs traditional) with their minimal
    BIST solutions. *)

val fig1_3 : ?width:int -> unit -> string
(** Simple I-paths of the ex1 testable data path (the paper's generic
    I-path configurations, instantiated). *)

val fig6 : unit -> string
(** The five register-merge cases with their empirically measured effect
    on multiplexer inputs, on constructed scenarios. *)

val ablation : ?width:int -> unit -> string
(** Effect of switching off each ingredient of the testable allocator
    (SD-guided PVES, case preferences, CBILBO avoidance) across all
    benchmarks, including the extension benchmarks. *)

val width_sweep : unit -> string
(** Table I reductions as the datapath width grows (4..32 bits): the
    register/multiplier area ratio shifts, so the relative cost of a
    CBILBO — and with it the testable flow's edge — changes. *)

val testability : unit -> string
(** Gate-level testability of the module library: SCOAP profiles, PODEM
    fault classification (tested / proven-redundant), and the number of
    deterministic PODEM vectors vs LFSR patterns for full coverage. *)

val transparency : ?width:int -> unit -> string
(** BIST overhead with the embedding space extended by one-hop
    transparent I-paths (a register generating patterns through an
    adder whose other port holds 0, etc.) — the generalization of
    Abadir-Breuer I-paths the paper's reference [8] suggests. *)

val pareto : ?width:int -> unit -> string
(** Area vs test-time Pareto fronts: modification gates against the
    number of test sessions, per benchmark (sharing one SA register
    saves gates but serializes sessions). *)

val scan_vs_bist : ?width:int -> unit -> string
(** The classical DFT trade the paper's introduction frames: partial
    scan (minimum feedback vertex set, external test) against BIST
    (register conversion, self-test) — area overheads side by side,
    with the scanned register sets. *)

val io_sensitivity : ?width:int -> unit -> string
(** Sensitivity of the Table I reductions to the cost of converting
    dedicated I/O registers (pad-ring registers are more expensive to
    modify than datapath registers): sweep the penalty from 1x to 3x.
    Only benchmarks with dedicated registers (Paulin and the extension
    set) move. *)

val all : ?width:int -> unit -> string
(** Every section above, concatenated with headers. *)
