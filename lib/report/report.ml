module B = Bistpath_benchmarks.Benchmarks
module Flow = Bistpath_core.Flow
module Testable_alloc = Bistpath_core.Testable_alloc
module Sharing = Bistpath_core.Sharing
module Merge_cases = Bistpath_core.Merge_cases
module Ralloc = Bistpath_core.Ralloc
module Syntest = Bistpath_core.Syntest
module Dfg = Bistpath_dfg.Dfg
module Op = Bistpath_dfg.Op
module Massign = Bistpath_dfg.Massign
module Policy = Bistpath_dfg.Policy
module Lifetime = Bistpath_dfg.Lifetime
module Chordal = Bistpath_graphs.Chordal
module Ugraph = Bistpath_graphs.Ugraph
module Regalloc = Bistpath_datapath.Regalloc
module Datapath = Bistpath_datapath.Datapath
module Interconnect = Bistpath_datapath.Interconnect
module Ipath = Bistpath_ipath.Ipath
module Allocator = Bistpath_bist.Allocator
module Resource = Bistpath_bist.Resource
module Table = Bistpath_util.Table

type comparison = {
  instance : B.instance;
  traditional : Flow.result;
  testable : Flow.result;
}

let compare_instance ?(width = 8) (instance : B.instance) =
  let run style = Flow.run ~width ~style instance.dfg instance.massign ~policy:instance.policy in
  {
    instance;
    traditional = run Flow.Traditional;
    testable = run (Flow.Testable Testable_alloc.default_options);
  }

let pct f = Printf.sprintf "%.2f" f

let table1 ?(width = 8) () =
  let t =
    Table.create
      [
        ("DFG", Table.Left); ("Module Assignment", Table.Left);
        ("T #Reg", Table.Right); ("T #Mux", Table.Right); ("T %BIST", Table.Right);
        ("O #Reg", Table.Right); ("O #Mux", Table.Right); ("O %BIST", Table.Right);
        ("%Reduction", Table.Right);
      ]
  in
  List.iter
    (fun inst ->
      let c = compare_instance ~width inst in
      Table.add_row t
        [
          inst.B.tag;
          Massign.describe inst.B.massign inst.B.dfg;
          string_of_int c.traditional.Flow.registers;
          string_of_int c.traditional.Flow.muxes;
          pct c.traditional.Flow.overhead_percent;
          string_of_int c.testable.Flow.registers;
          string_of_int c.testable.Flow.muxes;
          pct c.testable.Flow.overhead_percent;
          pct (Flow.reduction_percent ~traditional:c.traditional ~testable:c.testable);
        ])
    (B.table1 ());
  "Table I. Design comparisons with BIST area overhead\n\
   (T = traditional HLS, O = our testable HLS; %BIST = gate overhead of the\n\
   minimal-area BIST solution found by the exact search)\n\n"
  ^ Table.to_string t

let mix_string styles_counts =
  match
    List.map
      (fun (s, n) -> Printf.sprintf "%d %s" n (Resource.style_label s))
      styles_counts
  with
  | [] -> "none"
  | parts -> String.concat ", " parts

let table2 ?(width = 8) () =
  let t =
    Table.create
      [ ("DFG", Table.Left); ("Traditional HLS", Table.Left); ("Testable HLS", Table.Left) ]
  in
  List.iter
    (fun inst ->
      let c = compare_instance ~width inst in
      Table.add_row t
        [
          inst.B.tag;
          mix_string (Allocator.style_counts c.traditional.Flow.bist);
          mix_string (Allocator.style_counts c.testable.Flow.bist);
        ])
    (B.table1 ());
  "Table II. Minimal area BIST solutions (resource mixes; dedicated I/O\n\
   registers included when the search converts them)\n\n"
  ^ Table.to_string t

let count_style counts s =
  match List.assoc_opt s counts with Some n -> n | None -> 0

let table3 ?(width = 8) () =
  let inst = B.paulin () in
  let t =
    Table.create
      [
        ("HLS System", Table.Left); ("Module allocation", Table.Left);
        ("#Reg", Table.Right); ("#TPG", Table.Right); ("#SA", Table.Right);
        ("#BILBO", Table.Right); ("#CBILBO", Table.Right);
      ]
  in
  let row name alloc regs counts =
    Table.add_row t
      [
        name; alloc; string_of_int regs;
        string_of_int (count_style counts Resource.Tpg);
        string_of_int (count_style counts Resource.Sa);
        string_of_int (count_style counts Resource.Bilbo);
        string_of_int (count_style counts Resource.Cbilbo);
      ]
  in
  let r = Ralloc.run ~width inst.B.dfg inst.B.massign ~policy:inst.B.policy in
  row "RALLOC-like"
    (Massign.describe inst.B.massign inst.B.dfg)
    (Regalloc.num_registers r.Ralloc.regalloc)
    (Ralloc.style_counts r);
  let s = Syntest.run ~width inst.B.dfg ~policy:inst.B.policy in
  row "SYNTEST-like"
    (Massign.describe s.Syntest.massign inst.B.dfg)
    (Regalloc.num_registers s.Syntest.regalloc)
    (Syntest.style_counts s);
  let o =
    Flow.run ~width ~style:(Flow.Testable Testable_alloc.default_options) inst.B.dfg
      inst.B.massign ~policy:inst.B.policy
  in
  row "Ours"
    (Massign.describe inst.B.massign inst.B.dfg)
    o.Flow.registers
    (Allocator.style_counts o.Flow.bist);
  "Table III. Design comparison for the Paulin example against the\n\
   RALLOC-like and SYNTEST-like baselines (style counts cover dedicated\n\
   I/O registers too when converted; #Reg counts allocated registers)\n\n"
  ^ Table.to_string t

let fig2 () =
  let inst = B.ex1 () in
  Format.asprintf "Fig. 2. The ex1 scheduled DFG@.@.%a" Dfg.pp inst.B.dfg

let fig4 () =
  let inst = B.ex1 () in
  let g, idx = Lifetime.conflict_graph ~policy:inst.B.policy inst.B.dfg in
  let ctx = Sharing.make inst.B.dfg inst.B.massign in
  let mcs = Chordal.max_clique_size_per_vertex g in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "Fig. 4. ex1 variable conflict graph (SD, MCS per vertex)\n\n";
  List.iter
    (fun (i, m) ->
      let v = idx.Lifetime.of_index i in
      let nbrs =
        Ugraph.Iset.elements (Ugraph.neighbors g i)
        |> List.map idx.Lifetime.of_index
        |> String.concat ","
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s: SD=%d MCS=%d  conflicts {%s}\n" v (Sharing.sd_var ctx v) m nbrs))
    mcs;
  let regalloc, trace =
    Testable_alloc.allocate inst.B.dfg inst.B.massign ~policy:inst.B.policy
  in
  Buffer.add_string buf "\nColoring in reverse PVES order:\n";
  List.iter
    (fun (s : Testable_alloc.trace_step) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s (%s)\n" s.vertex s.chosen s.reason))
    trace;
  Buffer.add_string buf
    (Format.asprintf "final assignment: %a\n" Regalloc.pp regalloc);
  Buffer.contents buf

let fig5 ?(width = 8) () =
  let c = compare_instance ~width (B.ex1 ()) in
  Format.asprintf
    "Fig. 5. Data paths synthesized from ex1@.@.(a) testable allocation:@.%a@.%a@.@.(b) traditional allocation:@.%a@.%a@."
    Datapath.pp c.testable.Flow.datapath Allocator.pp_solution c.testable.Flow.bist
    Datapath.pp c.traditional.Flow.datapath Allocator.pp_solution c.traditional.Flow.bist

let fig1_3 ?(width = 8) () =
  let c = compare_instance ~width (B.ex1 ()) in
  let paths = Ipath.simple_ipaths c.testable.Flow.datapath in
  "Fig. 1/3. Simple I-paths of the ex1 testable data path\n\n  "
  ^ String.concat "\n  " paths ^ "\n"

(* Five purpose-built merge scenarios, one per Fig. 6 case: measure the
   change in 2:1-multiplexer equivalents when the two variables u and v
   share a register instead of sitting in separate ones. *)
let fig6_scenarios () =
  let mk name ops schedule inputs outputs units bind =
    let dfg = Dfg.make ~name ~ops ~inputs ~outputs ~schedule in
    let massign = Massign.make dfg ~units ~bind in
    (dfg, massign)
  in
  let o id kind l r out = { Op.id; kind; left = l; right = r; out } in
  let add_u = o "+1" Op.Add "a" "b" "u" in
  let scen1 =
    mk "case1"
      [ add_u; o "-1" Op.Sub "c" "d" "v"; o "*1" Op.Mul "u" "k" "p"; o "&1" Op.And "v" "m" "q" ]
      [ ("+1", 1); ("-1", 2); ("*1", 2); ("&1", 3) ]
      [ "a"; "b"; "c"; "d"; "k"; "m" ] [ "p"; "q" ]
      [
        { Massign.mid = "ADD"; kinds = [ Op.Add ] };
        { Massign.mid = "SUB"; kinds = [ Op.Sub ] };
        { Massign.mid = "MUL"; kinds = [ Op.Mul ] };
        { Massign.mid = "AND"; kinds = [ Op.And ] };
      ]
      [ ("+1", "ADD"); ("-1", "SUB"); ("*1", "MUL"); ("&1", "AND") ]
  in
  (* v is produced by the very unit that consumes u, so merging u and v
     creates a register -> MUL -> register self-loop. *)
  let scen2 =
    mk "case2"
      [ add_u; o "*1" Op.Mul "u" "c" "w"; o "*2" Op.Mul "g" "h" "v"; o "&1" Op.And "v" "e" "z" ]
      [ ("+1", 1); ("*1", 2); ("*2", 3); ("&1", 4) ]
      [ "a"; "b"; "c"; "e"; "g"; "h" ] [ "w"; "z" ]
      [
        { Massign.mid = "ADD"; kinds = [ Op.Add ] };
        { Massign.mid = "MUL"; kinds = [ Op.Mul ] };
        { Massign.mid = "AND"; kinds = [ Op.And ] };
      ]
      [ ("+1", "ADD"); ("*1", "MUL"); ("*2", "MUL"); ("&1", "AND") ]
  in
  let scen3 =
    mk "case3"
      [ add_u; o "-1" Op.Sub "c" "d" "v"; o "*1" Op.Mul "u" "k" "p"; o "*2" Op.Mul "v" "m" "q" ]
      [ ("+1", 1); ("-1", 2); ("*1", 2); ("*2", 3) ]
      [ "a"; "b"; "c"; "d"; "k"; "m" ] [ "p"; "q" ]
      [
        { Massign.mid = "ADD"; kinds = [ Op.Add ] };
        { Massign.mid = "SUB"; kinds = [ Op.Sub ] };
        { Massign.mid = "MUL"; kinds = [ Op.Mul ] };
      ]
      [ ("+1", "ADD"); ("-1", "SUB"); ("*1", "MUL"); ("*2", "MUL") ]
  in
  let scen4 =
    mk "case4"
      [ add_u; o "+2" Op.Add "c" "d" "v"; o "*1" Op.Mul "u" "k" "p"; o "&1" Op.And "v" "m" "q" ]
      [ ("+1", 1); ("+2", 2); ("*1", 2); ("&1", 3) ]
      [ "a"; "b"; "c"; "d"; "k"; "m" ] [ "p"; "q" ]
      [
        { Massign.mid = "ADD"; kinds = [ Op.Add ] };
        { Massign.mid = "MUL"; kinds = [ Op.Mul ] };
        { Massign.mid = "AND"; kinds = [ Op.And ] };
      ]
      [ ("+1", "ADD"); ("+2", "ADD"); ("*1", "MUL"); ("&1", "AND") ]
  in
  let scen5 =
    mk "case5"
      [ add_u; o "+2" Op.Add "c" "d" "v"; o "*1" Op.Mul "u" "k" "p"; o "*2" Op.Mul "v" "m" "q" ]
      [ ("+1", 1); ("+2", 2); ("*1", 2); ("*2", 3) ]
      [ "a"; "b"; "c"; "d"; "k"; "m" ] [ "p"; "q" ]
      [
        { Massign.mid = "ADD"; kinds = [ Op.Add ] };
        { Massign.mid = "MUL"; kinds = [ Op.Mul ] };
      ]
      [ ("+1", "ADD"); ("+2", "ADD"); ("*1", "MUL"); ("*2", "MUL") ]
  in
  [ scen1; scen2; scen3; scen4; scen5 ]

let fig6 () =
  let t =
    Table.create
      [
        ("Case", Table.Right); ("Situation", Table.Left);
        ("mux inputs split", Table.Right); ("mux inputs merged", Table.Right);
        ("delta", Table.Right); ("self-adjacent after merge", Table.Left);
      ]
  in
  List.iter
    (fun (dfg, massign) ->
      let ctx = Sharing.make dfg massign in
      let case = Merge_cases.classify ctx "u" "v" in
      let spans = Lifetime.spans dfg in
      let split =
        Regalloc.make
          (List.mapi (fun i (v, _) -> (Printf.sprintf "R%d" (i + 1), [ v ])) spans)
      in
      let merged =
        let rec build i acc = function
          | [] -> List.rev acc
          | (v, _) :: rest ->
            if String.equal v "v" then build i acc rest
            else if String.equal v "u" then
              build (i + 1) ((Printf.sprintf "R%d" (i + 1), [ "u"; "v" ]) :: acc) rest
            else build (i + 1) ((Printf.sprintf "R%d" (i + 1), [ v ]) :: acc) rest
        in
        Regalloc.make (build 0 [] spans)
      in
      let dp ra =
        Interconnect.optimize dfg massign ra ~policy:Policy.default
          ~objective:{ Interconnect.weight = (fun _ -> 0) }
      in
      let dps = dp split and dpm = dp merged in
      let ms = Datapath.mux_input_total dps and mm = Datapath.mux_input_total dpm in
      Table.add_row t
        [
          string_of_int (Merge_cases.case_number case);
          Merge_cases.describe case;
          string_of_int ms; string_of_int mm;
          Printf.sprintf "%+d" (mm - ms);
          String.concat "," (Datapath.self_adjacent_registers dpm);
        ])
    (fig6_scenarios ());
  "Fig. 6. Effect of merging variables u and v into one register, by case\n\n"
  ^ Table.to_string t

let ablation ?(width = 8) () =
  let t =
    Table.create
      ([ ("DFG", Table.Left); ("traditional", Table.Right); ("full", Table.Right) ]
      @ [ ("no SD order", Table.Right); ("no cases", Table.Right); ("no CBILBO avoid", Table.Right);
          ("clique-part.", Table.Right) ])
  in
  let variants =
    [
      { Testable_alloc.default_options with sd_ordering = false };
      { Testable_alloc.default_options with case_preferences = false };
      { Testable_alloc.default_options with cbilbo_avoidance = false };
    ]
  in
  let tags =
    [ "ex1"; "ex2"; "Tseng1"; "Tseng2"; "Paulin"; "fir8"; "iir"; "ewf"; "ar"; "dct4" ]
  in
  List.iter
    (fun tag ->
      match B.by_tag tag with
      | None -> ()
      | Some inst ->
        let run style = Flow.run ~width ~style inst.B.dfg inst.B.massign ~policy:inst.B.policy in
        let trad = run Flow.Traditional in
        let full = run (Flow.Testable Testable_alloc.default_options) in
        let alts = List.map (fun o -> run (Flow.Testable o)) variants in
        let cp_overhead =
          let ra = Bistpath_core.Cp_alloc.allocate inst.B.dfg inst.B.massign ~policy:inst.B.policy in
          let dp =
            Interconnect.optimize inst.B.dfg inst.B.massign ra ~policy:inst.B.policy
              ~objective:{ Interconnect.weight = (fun _ -> 0) }
          in
          Allocator.overhead_percent ~width dp (Allocator.solve ~width dp)
        in
        Table.add_row t
          (tag :: pct trad.Flow.overhead_percent :: pct full.Flow.overhead_percent
          :: (List.map (fun r -> pct r.Flow.overhead_percent) alts
             @ [ pct cp_overhead ])))
    tags;
  "Ablation. %BIST overhead with allocator ingredients disabled, plus an\n\
   SD-weighted clique-partitioning allocator as an algorithmic baseline\n\n"
  ^ Table.to_string t

let width_sweep () =
  let widths = [ 4; 8; 16; 32 ] in
  let t =
    Table.create
      (("DFG", Table.Left)
      :: List.map (fun w -> (Printf.sprintf "red%% @%db" w, Table.Right)) widths)
  in
  List.iter
    (fun inst ->
      let reduction w =
        let run style =
          Flow.run ~width:w ~style inst.B.dfg inst.B.massign ~policy:inst.B.policy
        in
        Flow.reduction_percent
          ~traditional:(run Flow.Traditional)
          ~testable:(run (Flow.Testable Testable_alloc.default_options))
      in
      Table.add_row t (inst.B.tag :: List.map (fun w -> pct (reduction w)) widths))
    (B.table1 ());
  "Width sweep. %BIST reduction as datapath width grows: multiplier and\n\
   divider area scales with width^2 while register modifications scale\n\
   with width, so the relative BIST overhead (and the absolute gap the\n\
   testable allocation can win) shrinks on multiplier-heavy designs\n\n"
  ^ Table.to_string t

let testability () =
  let module G = Bistpath_gatelevel in
  let width = 4 in
  let t =
    Table.create
      [
        ("module", Table.Left); ("gates", Table.Right); ("faults", Table.Right);
        ("PODEM tested", Table.Right); ("redundant", Table.Right);
        ("PODEM vectors", Table.Right); ("LFSR cov. % @period", Table.Right);
        ("unif./wght. cov. @24", Table.Left); ("max finite CO", Table.Right);
      ]
  in
  List.iter
    (fun kind ->
      let c = G.Library.of_kind kind ~width in
      let scoap = G.Scoap.analyze c in
      let cls = G.Podem.classify_all c in
      let faults = G.Fault.collapsed c in
      let testable_count = List.length cls.G.Podem.tested in
      let distinct_vectors =
        List.sort_uniq compare (List.map snd cls.G.Podem.tested) |> List.length
      in
      (* smallest LFSR prefix covering every testable fault *)
      let gen_l = G.Lfsr.create ~width ~seed:1 in
      let gen_r = G.Lfsr.create ~width ~seed:7 in
      let all_patterns =
        List.init (G.Lfsr.period ~width) (fun _ -> (G.Lfsr.step gen_l, G.Lfsr.step gen_r))
      in
      (* a two-LFSR pattern source with one polynomial only produces
         "period" distinct operand pairs (the sequences are shifts of
         each other), so report the coverage it reaches at full period *)
      let lfsr_cov =
        let r = G.Fault_sim.run_operand_patterns c ~width ~faults ~patterns:all_patterns in
        100.0 *. float_of_int r.G.Fault_sim.detected /. float_of_int (max 1 testable_count)
      in
      let max_co =
        List.fold_left
          (fun acc i ->
            let o = G.Scoap.co scoap i in
            if o < max_int / 2 then max acc o else acc)
          0
          (Bistpath_util.Listx.range 0 c.G.Circuit.num_nets)
      in
      let wr = G.Weighted.compare_coverage c ~count:24 in
      Table.add_row t
        [
          Op.symbol kind;
          string_of_int (G.Circuit.num_gates c);
          string_of_int (List.length faults);
          string_of_int testable_count;
          string_of_int (List.length cls.G.Podem.untestable);
          string_of_int distinct_vectors;
          Printf.sprintf "%.1f" lfsr_cov;
          Printf.sprintf "%d / %d of %d" wr.G.Weighted.uniform_detected
            wr.G.Weighted.weighted_detected wr.G.Weighted.testable;
          string_of_int max_co;
        ])
    [ Op.Add; Op.Sub; Op.Mul; Op.Div; Op.And; Op.Less ];
  Printf.sprintf
    "Gate-level testability of the module library (width %d): SCOAP\n\
     observability, PODEM classification (all faults either tested or\n\
     proven redundant; no aborts), and deterministic-vs-pseudo-random\n\
     test length\n\n"
    width
  ^ Table.to_string t

let transparency ?(width = 8) () =
  let t =
    Table.create
      [
        ("DFG", Table.Left);
        ("T simple", Table.Right); ("T +transparent", Table.Right);
        ("O simple", Table.Right); ("O +transparent", Table.Right);
      ]
  in
  List.iter
    (fun tag ->
      match B.by_tag tag with
      | None -> ()
      | Some inst ->
        let run tr style =
          (Flow.run ~width ~transparency:tr ~style inst.B.dfg inst.B.massign
             ~policy:inst.B.policy).Flow.overhead_percent
        in
        let style = Flow.Testable Testable_alloc.default_options in
        Table.add_row t
          [
            tag;
            pct (run false Flow.Traditional); pct (run true Flow.Traditional);
            pct (run false style); pct (run true style);
          ])
    B.all_tags;
  "Transparent I-paths. %BIST overhead when pattern generators may reach\n\
   a port through one transparent unit (adder holding 0, multiplier\n\
   holding 1, ...): the embedding space grows, so the minimal-area\n\
   solution can only improve (T = traditional, O = testable flow)\n\n"
  ^ Table.to_string t

let pareto ?(width = 8) () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Area vs test time. Pareto-optimal BIST configurations within 50%\n\
     area slack of the minimum: modification gates / test sessions\n\n";
  List.iter
    (fun tag ->
      match B.by_tag tag with
      | None -> ()
      | Some inst ->
        let r =
          Flow.run ~width ~style:(Flow.Testable Testable_alloc.default_options)
            inst.B.dfg inst.B.massign ~policy:inst.B.policy
        in
        let points = Bistpath_bist.Pareto.explore ~width r.Flow.datapath in
        Buffer.add_string buf
          (Printf.sprintf "  %-7s %s\n" tag
             (String.concat "  |  "
                (List.map
                   (fun (p : Bistpath_bist.Pareto.point) ->
                     Printf.sprintf "%d gates / %d sess." p.Bistpath_bist.Pareto.delta_gates
                       p.Bistpath_bist.Pareto.sessions)
                   points))))
    [ "ex1"; "ex2"; "Tseng1"; "Tseng2"; "Paulin"; "iir"; "dct4" ];
  Buffer.contents buf

let scan_vs_bist ?(width = 8) () =
  let t =
    Table.create
      [
        ("DFG", Table.Left); ("scan regs (MFVS)", Table.Left);
        ("scan %area", Table.Right); ("BIST %area (ours)", Table.Right);
        ("BIST self-tests", Table.Left);
      ]
  in
  List.iter
    (fun tag ->
      match B.by_tag tag with
      | None -> ()
      | Some inst ->
        let r =
          Flow.run ~width ~style:(Flow.Testable Testable_alloc.default_options)
            inst.B.dfg inst.B.massign ~policy:inst.B.policy
        in
        let scan = Bistpath_core.Partial_scan.mfvs r.Flow.datapath in
        Table.add_row t
          [
            tag;
            String.concat "," scan;
            pct (Bistpath_core.Partial_scan.overhead_percent ~width r.Flow.datapath);
            pct r.Flow.overhead_percent;
            "yes (no external tester)";
          ])
    B.all_tags;
  "Partial scan vs BIST. Scan conversion of a minimum feedback vertex\n\
   set is cheaper in area, but the circuit is then tested from outside\n\
   through the scan chain; BIST pays register conversions for autonomy\n\n"
  ^ Table.to_string t

let io_sensitivity ?(width = 8) () =
  let penalties = [ 100; 150; 200; 300 ] in
  let t =
    Table.create
      (("DFG", Table.Left)
      :: List.map (fun p -> (Printf.sprintf "red%% @%dx%02d" (p / 100) (p mod 100), Table.Right)) penalties)
  in
  let tags = [ "ex1"; "Paulin"; "fir8"; "iir"; "ewf" ] in
  List.iter
    (fun tag ->
      match B.by_tag tag with
      | None -> ()
      | Some inst ->
        let reduction p =
          let run style =
            Flow.run ~width ~io_penalty_percent:p ~style inst.B.dfg inst.B.massign
              ~policy:inst.B.policy
          in
          let trad = run Flow.Traditional in
          let test = run (Flow.Testable Testable_alloc.default_options) in
          Flow.reduction_percent ~traditional:trad ~testable:test
        in
        Table.add_row t (tag :: List.map (fun p -> pct (reduction p)) penalties))
    tags;
  "I/O-conversion-cost sensitivity. %BIST reduction as dedicated I/O\n\
   registers become 1x..3x as expensive to convert as datapath registers\n\
   (benchmarks without dedicated registers are flat by construction)\n\n"
  ^ Table.to_string t

let all ?(width = 8) () =
  String.concat "\n\n================================================================\n\n"
    [
      table1 ~width (); table2 ~width (); table3 ~width ();
      fig2 (); fig4 (); fig5 ~width (); fig1_3 ~width (); fig6 ();
      ablation ~width (); transparency ~width (); pareto ~width ();
      scan_vs_bist ~width (); io_sensitivity ~width (); width_sweep ();
      testability ();
    ]
