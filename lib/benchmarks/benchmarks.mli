(** The paper's benchmark instances plus larger extension benchmarks.

    Each [instance] bundles a scheduled DFG, a fixed module assignment
    (Table I column "Module Assignment"), and the input-allocation policy
    (see DESIGN.md §3 for why Paulin differs). The paper benchmarks are
    reconstructions from the published descriptions; [ex1] additionally
    reproduces the paper's walkthrough exactly (minimum of 3 registers,
    108 distinct 3-register assignments, the final testable allocation
    ({c,f,a},{d,g,b,h},{e})). *)

type instance = {
  tag : string;  (** Table I row label, e.g. "ex1", "Tseng1" *)
  dfg : Bistpath_dfg.Dfg.t;
  massign : Bistpath_dfg.Massign.t;
  policy : Bistpath_dfg.Policy.t;
}

val ex1 : unit -> instance
(** Fig. 2 of the paper: 2 additions on M1, 2 multiplications on M2. *)

val ex2 : unit -> instance
(** Reconstruction of the DFG taken from Papachristou et al. (DAC '91):
    module assignment 1/, 2*, 2+, 1&; 5 registers minimum. *)

val tseng1 : unit -> instance
(** Tseng benchmark, single-function units: 2+, 1*, 1-, 1&, 1|, 1/. *)

val tseng2 : unit -> instance
(** Same DFG, multifunction assignment: 1+ and 3 ALUs. *)

val paulin : unit -> instance
(** Differential-equation solver (Paulin & Knight), 1+, 2*, 1-. A loop
    body: x1/y1/u1 write back into the dedicated registers of x/y/u
    (carried policy), parameters dx/a/3 stay in dedicated read-only
    registers; 4 allocated registers minimum for the temporaries. *)

val table1 : unit -> instance list
(** The five Table I rows in paper order. *)

(** {2 Extension benchmarks} (not in the paper; used by ablations,
    property tests and timing benches). *)

val fir : taps:int -> instance
(** Transposed-form FIR filter, [taps] >= 2 multiply-accumulate stages,
    scheduled by the list scheduler with 2 multipliers and 1 adder. *)

val iir_biquad : unit -> instance
(** Direct-form-II biquad section: 5 multiplications, 2 additions and 2
    subtractions. *)

val ewf : unit -> instance
(** Fifth-order elliptic wave filter (34 operations: 26 additions, 8
    multiplications), the classic large HLS benchmark, list-scheduled
    with 2 adders and 1 multiplier. *)

val ar_lattice : unit -> instance
(** Four-section auto-regressive lattice filter: 8 multiplications and 8
    additions with the characteristic cross-coupled dependencies,
    list-scheduled with 2 multipliers and 2 adders. *)

val dct4 : unit -> instance
(** Four-point DCT butterfly: 6 constant multiplications plus 8
    additions/subtractions, list-scheduled with 2 multipliers and 2
    add/sub units. *)

val random :
  Bistpath_util.Prng.t ->
  ops:int ->
  inputs:int ->
  instance
(** Random well-formed scheduled DFG with a random valid module
    assignment; every output satisfies [Dfg.make]'s and [Massign.make]'s
    validation, which property tests rely on. *)

val by_tag : string -> instance option
(** Look up any of the named instances above ("ex1", "ex2", "Tseng1",
    "Tseng2", "Paulin", "fir8", "iir", "ewf"), or a parametric
    ["fir<N>"] tag (N >= 2, e.g. "fir32") for larger stress
    instances. *)

val all_tags : string list
