module Dfg = Bistpath_dfg.Dfg
module Op = Bistpath_dfg.Op
module Massign = Bistpath_dfg.Massign
module Scheduler = Bistpath_dfg.Scheduler
module Prng = Bistpath_util.Prng
module Listx = Bistpath_util.Listx

type instance = {
  tag : string;
  dfg : Dfg.t;
  massign : Massign.t;
  policy : Bistpath_dfg.Policy.t;
}

let op id kind left right out = { Op.id; kind; left; right; out }

(* Fig. 2 reconstruction; see DESIGN.md §3 for the consistency argument. *)
let ex1 () =
  let ops =
    [
      op "+1" Op.Add "a" "b" "d";
      op "*1" Op.Mul "a" "b" "c";
      op "+2" Op.Add "c" "d" "f";
      op "*2" Op.Mul "e" "g" "h";
    ]
  in
  let dfg =
    Dfg.make ~name:"ex1" ~ops ~inputs:[ "a"; "b"; "e"; "g" ] ~outputs:[ "f"; "h" ]
      ~schedule:[ ("+1", 1); ("*1", 1); ("+2", 2); ("*2", 3) ]
  in
  let massign =
    Massign.make dfg
      ~units:[ { mid = "M1"; kinds = [ Op.Add ] }; { mid = "M2"; kinds = [ Op.Mul ] } ]
      ~bind:[ ("+1", "M1"); ("+2", "M1"); ("*1", "M2"); ("*2", "M2") ]
  in
  { tag = "ex1"; dfg; massign; policy = Bistpath_dfg.Policy.default }

let ex2 () =
  let ops =
    [
      op "*1" Op.Mul "a" "b" "t1";
      op "*2" Op.Mul "c" "d" "t2";
      op "+1" Op.Add "a" "c" "t3";
      op "/1" Op.Div "t1" "t2" "t4";
      op "+2" Op.Add "t3" "e" "t5";
      op "+3" Op.Add "e" "d" "t6";
      op "*3" Op.Mul "t4" "t5" "t7";
      op "&1" Op.And "t6" "f" "t8";
      op "+4" Op.Add "t7" "t8" "t9";
    ]
  in
  let dfg =
    Dfg.make ~name:"ex2" ~ops
      ~inputs:[ "a"; "b"; "c"; "d"; "e"; "f" ]
      ~outputs:[ "t9" ]
      ~schedule:
        [
          ("*1", 1); ("*2", 1); ("+1", 1);
          ("/1", 2); ("+2", 2); ("+3", 2);
          ("*3", 3); ("&1", 3);
          ("+4", 4);
        ]
  in
  let massign =
    Massign.make dfg
      ~units:
        [
          { mid = "MUL1"; kinds = [ Op.Mul ] };
          { mid = "MUL2"; kinds = [ Op.Mul ] };
          { mid = "DIV"; kinds = [ Op.Div ] };
          { mid = "ADD1"; kinds = [ Op.Add ] };
          { mid = "ADD2"; kinds = [ Op.Add ] };
          { mid = "AND"; kinds = [ Op.And ] };
        ]
      ~bind:
        [
          ("*1", "MUL1"); ("*3", "MUL1"); ("*2", "MUL2");
          ("/1", "DIV");
          ("+1", "ADD1"); ("+2", "ADD1"); ("+4", "ADD1"); ("+3", "ADD2");
          ("&1", "AND");
        ]
  in
  { tag = "ex2"; dfg; massign; policy = Bistpath_dfg.Policy.default }

let tseng_dfg () =
  let ops =
    [
      op "+1" Op.Add "a" "b" "t1";
      op "+2" Op.Add "c" "d" "t2";
      op "*1" Op.Mul "t1" "e" "t3";
      op "/1" Op.Div "t2" "t1" "t4";
      op "-1" Op.Sub "t3" "t4" "t5";
      op "|1" Op.Or "e" "f" "t6";
      op "+3" Op.Add "t5" "t6" "t7";
      op "&1" Op.And "t5" "a" "t8";
    ]
  in
  Dfg.make ~name:"tseng" ~ops
    ~inputs:[ "a"; "b"; "c"; "d"; "e"; "f" ]
    ~outputs:[ "t7"; "t8" ]
    ~schedule:
      [
        ("+1", 1); ("+2", 1);
        ("*1", 2); ("/1", 2);
        ("-1", 3); ("|1", 3);
        ("+3", 4); ("&1", 4);
      ]

let tseng1 () =
  let dfg = tseng_dfg () in
  let massign =
    Massign.make dfg
      ~units:
        [
          { mid = "ADD1"; kinds = [ Op.Add ] };
          { mid = "ADD2"; kinds = [ Op.Add ] };
          { mid = "MUL"; kinds = [ Op.Mul ] };
          { mid = "SUB"; kinds = [ Op.Sub ] };
          { mid = "AND"; kinds = [ Op.And ] };
          { mid = "OR"; kinds = [ Op.Or ] };
          { mid = "DIV"; kinds = [ Op.Div ] };
        ]
      ~bind:
        [
          ("+1", "ADD1"); ("+3", "ADD1"); ("+2", "ADD2");
          ("*1", "MUL"); ("/1", "DIV"); ("-1", "SUB");
          ("|1", "OR"); ("&1", "AND");
        ]
  in
  { tag = "Tseng1"; dfg; massign; policy = Bistpath_dfg.Policy.default }

let tseng2 () =
  let dfg = tseng_dfg () in
  let alu = [ Op.Add; Op.Sub; Op.Mul; Op.Div; Op.And; Op.Or ] in
  let massign =
    Massign.make dfg
      ~units:
        [
          { mid = "ADD"; kinds = [ Op.Add ] };
          { mid = "ALU1"; kinds = alu };
          { mid = "ALU2"; kinds = alu };
          { mid = "ALU3"; kinds = alu };
        ]
      ~bind:
        [
          ("+1", "ADD");
          ("+2", "ALU1"); ("*1", "ALU1"); ("-1", "ALU1");
          ("/1", "ALU2"); ("+3", "ALU2");
          ("|1", "ALU3"); ("&1", "ALU3");
        ]
  in
  { tag = "Tseng2"; dfg; massign; policy = Bistpath_dfg.Policy.default }

(* Differential-equation solver: y'' + 3xy' + 3y = 0 integrated by Euler
   steps; the loop-body DFG of Paulin & Knight. The comparison x1 < a is
   modelled as the subtraction producing the condition variable. *)
let paulin () =
  let ops =
    [
      op "*1" Op.Mul "c3" "x" "t1";
      op "*2" Op.Mul "u" "dx" "t2";
      op "+1" Op.Add "x" "dx" "x1";
      op "*3" Op.Mul "t1" "t2" "t3";
      op "*4" Op.Mul "c3" "y" "t4";
      op "-3" Op.Sub "x1" "a" "cc";
      op "*5" Op.Mul "dx" "t4" "t5";
      op "-1" Op.Sub "u" "t3" "t6";
      op "-2" Op.Sub "t6" "t5" "u1";
      op "+2" Op.Add "y" "t2" "y1";
    ]
  in
  let dfg =
    Dfg.make ~name:"paulin" ~ops
      ~inputs:[ "x"; "y"; "u"; "dx"; "a"; "c3" ]
      ~outputs:[ "x1"; "y1"; "u1"; "cc" ]
      ~schedule:
        [
          ("*1", 1); ("*2", 1); ("+1", 1);
          ("*3", 2); ("*4", 2); ("-3", 2);
          ("*5", 3); ("-1", 3);
          ("-2", 4); ("+2", 4);
        ]
  in
  let massign =
    Massign.make dfg
      ~units:
        [
          { mid = "ADD"; kinds = [ Op.Add ] };
          { mid = "MUL1"; kinds = [ Op.Mul ] };
          { mid = "MUL2"; kinds = [ Op.Mul ] };
          { mid = "SUB"; kinds = [ Op.Sub ] };
        ]
      ~bind:
        [
          ("+1", "ADD"); ("+2", "ADD");
          ("*1", "MUL1"); ("*3", "MUL1"); ("*5", "MUL1");
          ("*2", "MUL2"); ("*4", "MUL2");
          ("-3", "SUB"); ("-1", "SUB"); ("-2", "SUB");
        ]
  in
  { tag = "Paulin"; dfg; massign;
    policy = Bistpath_dfg.Policy.with_carried [ ("x1", "x"); ("y1", "y"); ("u1", "u") ] }

let table1 () = [ ex1 (); ex2 (); tseng1 (); tseng2 (); paulin () ]

(* Greedy single-function module assignment used by the generated
   benchmarks: first-fit each operation onto a unit of its kind that is
   free in its control step, opening units as needed. *)
let single_function_assignment dfg =
  let units = Hashtbl.create 8 in
  (* kind -> (mid * busy steps ref) list, newest last *)
  let bind = ref [] in
  let counter = Hashtbl.create 8 in
  List.iter
    (fun (o : Op.t) ->
      let step = Dfg.cstep dfg o.id in
      let existing = match Hashtbl.find_opt units o.kind with Some l -> l | None -> [] in
      let free = List.find_opt (fun (_, busy) -> not (List.mem step !busy)) existing in
      let mid, busy =
        match free with
        | Some (mid, busy) -> (mid, busy)
        | None ->
          let n = (match Hashtbl.find_opt counter o.kind with Some n -> n | None -> 0) + 1 in
          Hashtbl.replace counter o.kind n;
          let mid = Printf.sprintf "%s%d" (Op.symbol o.kind) n in
          let busy = ref [] in
          Hashtbl.replace units o.kind (existing @ [ (mid, busy) ]);
          (mid, busy)
      in
      busy := step :: !busy;
      bind := (o.id, mid) :: !bind)
    dfg.Dfg.ops;
  let unit_list =
    Hashtbl.fold
      (fun kind l acc -> List.map (fun (mid, _) -> { Massign.mid; kinds = [ kind ] }) l @ acc)
      units []
    |> List.sort (fun a b -> compare a.Massign.mid b.Massign.mid)
  in
  Massign.make dfg ~units:unit_list ~bind:!bind

let fir ~taps =
  if taps < 2 then invalid_arg "Benchmarks.fir: taps must be >= 2";
  let inputs =
    List.concat_map
      (fun i -> [ Printf.sprintf "x%d" i; Printf.sprintf "h%d" i ])
      (Listx.range 0 taps)
  in
  let mults =
    List.map
      (fun i ->
        op
          (Printf.sprintf "*%d" i)
          Op.Mul
          (Printf.sprintf "x%d" i)
          (Printf.sprintf "h%d" i)
          (Printf.sprintf "p%d" i))
      (Listx.range 0 taps)
  in
  let adds =
    List.map
      (fun i ->
        let acc_in = if i = 1 then "p0" else Printf.sprintf "s%d" (i - 1) in
        op (Printf.sprintf "+%d" i) Op.Add acc_in (Printf.sprintf "p%d" i)
          (Printf.sprintf "s%d" i))
      (Listx.range 1 taps)
  in
  let problem =
    {
      Scheduler.name = Printf.sprintf "fir%d" taps;
      ops = mults @ adds;
      inputs;
      outputs = [ Printf.sprintf "s%d" (taps - 1) ];
    }
  in
  let schedule = Scheduler.list_schedule problem ~resources:[ (Op.Mul, 2); (Op.Add, 1) ] in
  let dfg = Scheduler.to_dfg problem schedule in
  {
    tag = problem.name;
    dfg;
    massign = single_function_assignment dfg;
    policy = Bistpath_dfg.Policy.dedicated_io;
  }

let iir_biquad () =
  let ops =
    [
      op "*1" Op.Mul "a1" "w1" "m1";
      op "*2" Op.Mul "a2" "w2" "m2";
      op "-1" Op.Sub "x" "m1" "d1";
      op "-2" Op.Sub "d1" "m2" "w";
      op "*3" Op.Mul "b0" "w" "m3";
      op "*4" Op.Mul "b1" "w1" "m4";
      op "*5" Op.Mul "b2" "w2" "m5";
      op "+1" Op.Add "m3" "m4" "s1";
      op "+2" Op.Add "s1" "m5" "y";
    ]
  in
  let problem =
    {
      Scheduler.name = "iir";
      ops;
      inputs = [ "x"; "w1"; "w2"; "a1"; "a2"; "b0"; "b1"; "b2" ];
      outputs = [ "y"; "w" ];
    }
  in
  let schedule = Scheduler.list_schedule problem ~resources:[ (Op.Mul, 2); (Op.Add, 1); (Op.Sub, 1) ] in
  let dfg = Scheduler.to_dfg problem schedule in
  {
    tag = "iir";
    dfg;
    massign = single_function_assignment dfg;
    policy = Bistpath_dfg.Policy.dedicated_io;
  }

(* Fifth-order elliptic wave filter shape: a ladder of adaptor sections.
   Exactly 26 additions and 8 multiplications, matching the operation mix
   of the classic benchmark; the precise interconnection is our
   reconstruction (the original netlist circulated with 1980s tools). *)
let ewf () =
  let ops = ref [] in
  let push o = ops := o :: !ops in
  let add i a b out = push (op (Printf.sprintf "+%d" i) Op.Add a b out) in
  let mul i a b out = push (op (Printf.sprintf "*%d" i) Op.Mul a b out) in
  (* Five adaptor sections; section i consumes the running signal and one
     state variable, produces a new running signal and state update. *)
  let adders = ref 0 and mults = ref 0 in
  let next_add () = incr adders; !adders in
  let next_mul () = incr mults; !mults in
  let section i signal state coeff =
    let s = Printf.sprintf "sec%d" i in
    let a1 = s ^ "a" and m1 = s ^ "m" and a2 = s ^ "b" and a3 = s ^ "c" in
    add (next_add ()) signal state a1;
    mul (next_mul ()) a1 coeff m1;
    add (next_add ()) m1 state a2;
    add (next_add ()) m1 signal a3;
    (a3, a2)
  in
  let rec ladder i signal acc =
    if i > 5 then (signal, List.rev acc)
    else
      let out, upd = section i signal (Printf.sprintf "sv%d" i) (Printf.sprintf "k%d" i) in
      ladder (i + 1) out (upd :: acc)
  in
  let out, updates = ladder 1 "xin" [] in
  (* Output smoothing chain: mix the state updates pairwise, then three
     final multiplies to scale taps (brings totals to 26 adds, 8 muls). *)
  let rec mix acc = function
    | a :: b :: rest ->
      let o = Printf.sprintf "mix%d" (List.length acc) in
      add (next_add ()) a b o;
      mix (o :: acc) rest
    | [ a ] -> a :: acc
    | [] -> acc
  in
  let mixed = mix [] (out :: updates) in
  let scaled =
    List.mapi
      (fun i v ->
        if i < 3 then begin
          let o = Printf.sprintf "sc%d" i in
          mul (next_mul ()) v (Printf.sprintf "g%d" i) o;
          o
        end
        else v)
      mixed
  in
  let rec reduce = function
    | a :: b :: rest ->
      let o = Printf.sprintf "red%d" !adders in
      add (next_add ()) a b o;
      reduce (o :: rest)
    | [ a ] -> a
    | [] -> assert false
  in
  let yout = reduce scaled in
  (* Pad additions up to 26 with an averaging chain on the output. *)
  let rec pad v =
    if !adders >= 26 then v
    else begin
      let o = Printf.sprintf "pad%d" !adders in
      add (next_add ()) v "xin" o;
      pad o
    end
  in
  let yout = pad yout in
  let inputs =
    "xin"
    :: (List.map (fun i -> Printf.sprintf "sv%d" i) (Listx.range 1 6)
       @ List.map (fun i -> Printf.sprintf "k%d" i) (Listx.range 1 6)
       @ List.map (fun i -> Printf.sprintf "g%d" i) (Listx.range 0 3))
  in
  let problem =
    { Scheduler.name = "ewf"; ops = List.rev !ops; inputs; outputs = [ yout ] }
  in
  let schedule = Scheduler.list_schedule problem ~resources:[ (Op.Add, 2); (Op.Mul, 1) ] in
  let dfg = Scheduler.to_dfg problem schedule in
  {
    tag = "ewf";
    dfg;
    massign = single_function_assignment dfg;
    policy = Bistpath_dfg.Policy.dedicated_io;
  }

(* Four-section lattice: each section cross-couples the forward and
   backward signals through its reflection coefficient. *)
let ar_lattice () =
  let ops = ref [] in
  let push o = ops := o :: !ops in
  let rec sections i f b =
    if i > 4 then (f, b)
    else begin
      let k = Printf.sprintf "k%d" i in
      let mf = Printf.sprintf "mf%d" i and mb = Printf.sprintf "mb%d" i in
      let f' = Printf.sprintf "f%d" i and b' = Printf.sprintf "b%d" i in
      push (op (Printf.sprintf "*f%d" i) Op.Mul k b mf);
      push (op (Printf.sprintf "*b%d" i) Op.Mul k f mb);
      push (op (Printf.sprintf "+f%d" i) Op.Add f mf f');
      push (op (Printf.sprintf "+b%d" i) Op.Add b mb b');
      sections (i + 1) f' b'
    end
  in
  let fout, bout = sections 1 "fin" "bin" in
  let inputs = "fin" :: "bin" :: List.map (fun i -> Printf.sprintf "k%d" i) (Listx.range 1 5) in
  let problem =
    { Scheduler.name = "ar"; ops = List.rev !ops; inputs; outputs = [ fout; bout ] }
  in
  let schedule = Scheduler.list_schedule problem ~resources:[ (Op.Mul, 2); (Op.Add, 2) ] in
  let dfg = Scheduler.to_dfg problem schedule in
  {
    tag = "ar";
    dfg;
    massign = single_function_assignment dfg;
    policy = Bistpath_dfg.Policy.dedicated_io;
  }

(* Four-point DCT butterfly with rotation stages. *)
let dct4 () =
  let ops =
    [
      op "+s0" Op.Add "x0" "x3" "s0";
      op "+s1" Op.Add "x1" "x2" "s1";
      op "-d0" Op.Sub "x0" "x3" "d0";
      op "-d1" Op.Sub "x1" "x2" "d1";
      op "+t0" Op.Add "s0" "s1" "t0";
      op "-t1" Op.Sub "s0" "s1" "t1";
      op "*y0" Op.Mul "c4" "t0" "y0";
      op "*y2" Op.Mul "c4" "t1" "y2";
      op "*m1" Op.Mul "c1" "d0" "m1";
      op "*m2" Op.Mul "c3" "d1" "m2";
      op "*m3" Op.Mul "c3" "d0" "m3";
      op "*m4" Op.Mul "c1" "d1" "m4";
      op "+y1" Op.Add "m1" "m2" "y1";
      op "-y3" Op.Sub "m3" "m4" "y3";
    ]
  in
  let problem =
    {
      Scheduler.name = "dct4";
      ops;
      inputs = [ "x0"; "x1"; "x2"; "x3"; "c1"; "c3"; "c4" ];
      outputs = [ "y0"; "y1"; "y2"; "y3" ];
    }
  in
  let schedule =
    Scheduler.list_schedule problem ~resources:[ (Op.Mul, 2); (Op.Add, 2); (Op.Sub, 2) ]
  in
  let dfg = Scheduler.to_dfg problem schedule in
  {
    tag = "dct4";
    dfg;
    massign = single_function_assignment dfg;
    policy = Bistpath_dfg.Policy.dedicated_io;
  }

let random rng ~ops:n ~inputs:k =
  if n < 1 || k < 2 then invalid_arg "Benchmarks.random: need ops >= 1, inputs >= 2";
  let kinds = [| Op.Add; Op.Sub; Op.Mul; Op.And; Op.Or; Op.Xor |] in
  let inputs = List.map (fun i -> Printf.sprintf "i%d" i) (Listx.range 0 k) in
  let avail = ref inputs in
  let ops = ref [] in
  for j = 0 to n - 1 do
    let arr = Array.of_list !avail in
    let left = arr.(Prng.int rng (Array.length arr)) in
    let right = arr.(Prng.int rng (Array.length arr)) in
    let kind = kinds.(Prng.int rng (Array.length kinds)) in
    let kind = if String.equal left right && not (Op.commutative kind) then Op.Add else kind in
    let out = Printf.sprintf "v%d" j in
    ops := op (Printf.sprintf "o%d" j) kind left right out :: !ops;
    avail := out :: !avail
  done;
  let ops = List.rev !ops in
  let used v =
    List.exists (fun (o : Op.t) -> String.equal o.left v || String.equal o.right v) ops
  in
  let outputs =
    List.filter_map
      (fun (o : Op.t) -> if used o.out then None else Some o.out)
      ops
  in
  let inputs = List.filter used inputs in
  let problem = { Scheduler.name = "random"; ops; inputs; outputs } in
  let budget = 1 + Prng.int rng 3 in
  let resources = List.map (fun kind -> (kind, budget)) (Array.to_list kinds) in
  let schedule = Scheduler.list_schedule problem ~resources in
  let dfg = Scheduler.to_dfg problem schedule in
  {
    tag = "random";
    dfg;
    massign = single_function_assignment dfg;
    policy = (if Prng.bool rng then Bistpath_dfg.Policy.default else Bistpath_dfg.Policy.dedicated_io);
  }

let by_tag = function
  | "ex1" -> Some (ex1 ())
  | "ex2" -> Some (ex2 ())
  | "Tseng1" -> Some (tseng1 ())
  | "Tseng2" -> Some (tseng2 ())
  | "Paulin" -> Some (paulin ())
  | "fir8" -> Some (fir ~taps:8)
  | "iir" -> Some (iir_biquad ())
  | "ewf" -> Some (ewf ())
  | "ar" -> Some (ar_lattice ())
  | "dct4" -> Some (dct4 ())
  | tag
    when String.length tag > 3
         && String.equal (String.sub tag 0 3) "fir" -> (
    (* parametric family: "fir<N>" for any N >= 2, e.g. fir32 as a
       larger stress instance; fir8 above stays the canonical tag *)
    match int_of_string_opt (String.sub tag 3 (String.length tag - 3)) with
    | Some taps when taps >= 2 -> Some (fir ~taps)
    | _ -> None)
  | _ -> None

let all_tags =
  [ "ex1"; "ex2"; "Tseng1"; "Tseng2"; "Paulin"; "fir8"; "iir"; "ewf"; "ar"; "dct4" ]
