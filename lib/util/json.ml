type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let num_to_string f =
  if Float.is_integer f && Float.abs f <= 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.is_finite f then
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.17g" f in
    let short = Printf.sprintf "%.15g" f in
    if float_of_string short = f then short else s
  else "null"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (num_to_string f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  write buf v;
  Buffer.contents buf

(* Canonical form for hashing: identical to [to_string] except that
   object keys are emitted in sorted order at every depth. Number
   formatting is already deterministic ([num_to_string] picks %.0f for
   integral values and the shortest of %.15g/%.17g that round-trips,
   both defined by the float value alone), so sorting keys is the only
   remaining source of representation variance. *)
let rec sort_keys = function
  | (Null | Bool _ | Num _ | Str _) as v -> v
  | Arr xs -> Arr (List.map sort_keys xs)
  | Obj fields ->
    Obj
      (List.stable_sort
         (fun (a, _) (b, _) -> String.compare a b)
         (List.map (fun (k, v) -> (k, sort_keys v)) fields))

let canonical v = to_string (sort_keys v)

(* --- parsing ------------------------------------------------------- *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf cp =
    (* encode one Unicode scalar value *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'u' ->
           advance ();
           let cp = hex4 () in
           (* surrogate pair *)
           if cp >= 0xD800 && cp <= 0xDBFF && !pos + 2 <= n
              && s.[!pos] = '\\'
              && !pos + 1 < n
              && s.[!pos + 1] = 'u'
           then begin
             pos := !pos + 2;
             let lo = hex4 () in
             if lo >= 0xDC00 && lo <= 0xDFFF then
               add_utf8 buf (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
             else begin
               add_utf8 buf cp;
               add_utf8 buf lo
             end
           end
           else add_utf8 buf cp
         | _ -> fail "unknown escape");
        loop ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let d0 = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with
      | Some ('+' | '-') -> advance ()
      | _ -> ());
      digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "offset %d: %s" at msg)

(* --- accessors ----------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_num = function Num f -> Some f | _ -> None

let to_int = function
  | Num f
    when Float.is_integer f
         && f >= Int.to_float min_int
         && f <= Int.to_float max_int -> Some (Float.to_int f)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None
