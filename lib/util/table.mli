(** Plain-text aligned tables, used by the benchmark harness and CLI to
    print the paper's tables. *)

type align = Left | Right

type t
(** A table under construction: a header row plus data rows. *)

val create : (string * align) list -> t
(** [create columns] starts a table with the given column headers and
    alignments. *)

val add_row : t -> string list -> unit
(** Append a data row. Raises [Invalid_argument] if the width differs from
    the header. *)

val add_rule : t -> unit
(** Append a horizontal rule. *)

val to_string : t -> string
(** Render with box-drawing-free ASCII, columns padded to content. *)

val print : t -> unit
(** [to_string] to stdout followed by a newline. *)
