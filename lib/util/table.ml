type align = Left | Right

type row = Cells of string list | Rule

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create columns =
  { headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let width t = List.length t.headers

let add_row t cells =
  if List.length cells <> width t then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d" (width t)
         (List.length cells));
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let to_string t =
  let rows = List.rev t.rows in
  let all_cell_rows =
    t.headers :: List.filter_map (function Cells c -> Some c | Rule -> None) rows
  in
  let widths =
    List.mapi
      (fun i _ ->
        List.fold_left (fun acc r -> max acc (String.length (List.nth r i))) 0 all_cell_rows)
      t.headers
  in
  let pad align w s =
    let n = w - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let render_cells cells =
    let padded = List.mapi (fun i c -> pad (List.nth t.aligns i) (List.nth widths i) c) cells in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let rule =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|"
  in
  let body =
    List.map (function Cells c -> render_cells c | Rule -> rule) rows
  in
  String.concat "\n" (render_cells t.headers :: rule :: body)

let print t = print_endline (to_string t)
