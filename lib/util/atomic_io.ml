let sys_error path e =
  raise (Sys_error (Printf.sprintf "%s: %s" path (Unix.error_message e)))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | Unix.Unix_error (e, _, _) -> sys_error dir e
  end
  else if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"))

let write_all fd path s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    match Unix.write_substring fd s !off (len - !off) with
    | 0 -> raise (Sys_error (path ^ ": write returned 0"))
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (e, _, _) -> sys_error path e
  done

(* Directory fsync is what makes the rename durable, but some
   filesystems refuse to fsync a directory fd; treat that as advisory. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let write_file path contents =
  let dir = Filename.dirname path in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".%s.%d.tmp" (Filename.basename path) (Unix.getpid ()))
  in
  let fd =
    match
      Unix.openfile tmp
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
        0o644
    with
    | fd -> fd
    | exception Unix.Unix_error (e, _, _) -> sys_error tmp e
  in
  (try
     write_all fd tmp contents;
     (try Unix.fsync fd with Unix.Unix_error (e, _, _) -> sys_error tmp e);
     (try Unix.close fd with Unix.Unix_error (e, _, _) -> sys_error tmp e)
   with e ->
     (try Unix.close fd with _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (match Unix.rename tmp path with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
    (try Sys.remove tmp with Sys_error _ -> ());
    sys_error path e);
  fsync_dir dir

let fsync_append fd line =
  write_all fd "journal" line;
  try Unix.fsync fd with Unix.Unix_error (e, _, _) -> sys_error "journal" e
