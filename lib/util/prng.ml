type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem r (Int64.of_int bound))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t bound =
  let r = Int64.shift_right_logical (next_int64 t) 11 in
  (* 53 random bits, the mantissa width of a double *)
  Int64.to_float r /. 9007199254740992.0 *. bound

(* Splitting draws one value from the parent (advancing it by exactly one
   step) and pushes it through a second, different finalizer — the
   MurmurHash3 fmix64 constants — so the child's state cannot coincide
   with any state the parent's own golden-ratio walk visits for the same
   low-order trajectory. This is the split construction of the SplitMix64
   paper, specialized to our fixed-gamma generator. *)
let split t =
  let z = next_int64 t in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  let z = Int64.logxor z (Int64.shift_right_logical z 33) in
  { state = z }

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | l -> List.nth l (int t (List.length l))
