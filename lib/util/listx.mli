(** List helpers used across the project. *)

val pairs : 'a list -> ('a * 'a) list
(** All unordered pairs of distinct positions, in order. *)

val max_by : ('a -> int) -> 'a list -> 'a option
(** Element maximizing [f]; first one on ties; [None] on the empty list. *)

val min_by : ('a -> int) -> 'a list -> 'a option
(** Element minimizing [f]; first one on ties; [None] on the empty list. *)

val sum_by : ('a -> int) -> 'a list -> int
(** Integer sum of [f] over the list. *)

val group_by : ('a -> 'b) -> 'a list -> ('b * 'a list) list
(** Group equal keys together (polymorphic compare); keys in sorted order,
    elements in original order within a group. *)

val take : int -> 'a list -> 'a list
(** First [n] elements (all of them if shorter). *)

val range : int -> int -> int list
(** [range lo hi] is [lo; lo+1; ...; hi-1]. Empty if [hi <= lo]. *)

val index_of : ('a -> bool) -> 'a list -> int option
(** Position of the first element satisfying the predicate. *)
