(** Crash-safe file writes.

    [write_file path contents] makes the artifact at [path] appear
    atomically: the bytes are written to a temporary file in the same
    directory, flushed to stable storage ([fsync]), and renamed over
    [path] (a POSIX-atomic replacement), after which the containing
    directory is fsynced best-effort so the rename itself survives a
    power cut. A reader therefore sees either the old file or the
    complete new one — never a truncated hybrid — even if the writer is
    SIGKILLed mid-write.

    Every artifact writer in the repo (the Chrome-trace sink, the
    benchmark harness's [BENCH_*.json] dumps, the service layer's
    per-job result files) goes through this.

    Failures raise [Sys_error] (with the target path and the OS
    message), matching what [Out_channel] would raise, so existing
    error handling keeps working; the temporary file is removed on the
    error path. *)

val write_file : string -> string -> unit

val mkdir_p : string -> unit
(** Create a directory and its missing ancestors ([mkdir -p]). A
    concurrent creator winning the race ([EEXIST]) is success; a
    non-directory in the way raises [Sys_error]. *)

val fsync_append : Unix.file_descr -> string -> unit
(** [fsync_append fd line] writes all of [line] to [fd] and fsyncs —
    the journal primitive: used with an [O_APPEND] descriptor, the
    record is durable when the call returns. Raises [Sys_error]. *)
