(** Deterministic pseudo-random number generator (SplitMix64).

    Used everywhere a randomized choice or synthetic workload is needed so
    that every experiment and property test is reproducible bit-for-bit.
    The interface mirrors the small subset of [Random.State] we need. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from [seed]. *)

val copy : t -> t
(** Independent copy of the current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound). Requires [bound > 0]. *)

val bool : t -> bool
(** Uniform boolean. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. Raises [Invalid_argument] on []. *)
