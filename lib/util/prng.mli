(** Deterministic pseudo-random number generator (SplitMix64).

    Used everywhere a randomized choice or synthetic workload is needed so
    that every experiment and property test is reproducible bit-for-bit.
    The interface mirrors the small subset of [Random.State] we need. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from [seed]. *)

val copy : t -> t
(** Independent copy of the current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val split : t -> t
(** [split t] advances [t] by exactly one draw and returns a fresh
    generator whose stream is statistically independent of the parent's
    continuation (SplitMix64 stream split: the drawn value is remixed
    through the MurmurHash3 fmix64 finalizer to seed the child).

    Splitting is deterministic: the same parent state always yields the
    same child. Reference vectors (see [test_util.ml]):

    {[
      let t = create 42 in
      let c = split t in
      next_int64 c = 0x2559B167601B8DD1L;   (* child's first draw *)
      next_int64 t = 0x28EFE333B266F103L    (* parent continues as if
                                               one draw was consumed *)
    ]}

    Parallel workers should each receive one [split] child (split
    sequentially from a root generator in task order) so they draw from
    independent deterministic streams instead of sharing mutable state. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound). Requires [bound > 0]. *)

val bool : t -> bool
(** Uniform boolean. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. Raises [Invalid_argument] on []. *)
