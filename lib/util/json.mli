(** Minimal JSON values, parser and printer.

    The service layer exchanges NDJSON job specs and journal records;
    this module is the self-contained subset of JSON it needs — no
    external dependency, deterministic compact printing (object fields
    in the order given, no whitespace) so journal records and job specs
    round-trip byte-for-byte.

    The parser accepts standard JSON: numbers (integer, fractional,
    exponent), strings with the usual escapes (including [\uXXXX],
    decoded to UTF-8), [true]/[false]/[null], arrays and objects, with
    arbitrary whitespace. It rejects trailing garbage. Numbers are kept
    as [float]; {!to_int} checks integrality. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON document. The error string carries a 0-based byte
    offset, e.g. ["offset 12: expected ':'"]. *)

val to_string : t -> string
(** Compact rendering. Integral [Num] values print without a decimal
    point ([Num 3.] prints ["3"]); non-finite floats print as [null]
    (JSON has no representation for them). Object fields keep the order
    given — journal records must round-trip byte-for-byte — so this
    form is {e not} suitable for content hashing; use {!canonical}. *)

val canonical : t -> string
(** Deterministic rendering for content hashing: like {!to_string} but
    with object keys sorted ([String.compare]) at every depth, so two
    structurally equal values always print identically regardless of
    field insertion order. Numeric formatting is deterministic across
    OCaml versions: integral values in \[-1e15, 1e15\] print via
    ["%.0f"], other finite values as the shortest of ["%.15g"] /
    ["%.17g"] that round-trips through [float_of_string] — both depend
    only on the IEEE-754 double, never on locale or platform. All cache
    keys are digests of this form. *)

val escape : string -> string
(** Escape for inclusion inside JSON double quotes. *)

(** {1 Accessors}

    All return [None] on a shape mismatch instead of raising, so spec
    parsing can accumulate readable errors. *)

val member : string -> t -> t option
(** Field of an [Obj] (first occurrence). [None] on non-objects. *)

val to_str : t -> string option
val to_num : t -> float option

val to_int : t -> int option
(** [Num] that is integral and in [int] range. *)

val to_bool : t -> bool option
val to_list : t -> t list option
