let pairs l =
  let rec go acc = function
    | [] -> List.rev acc
    | x :: rest ->
      let acc = List.fold_left (fun acc y -> (x, y) :: acc) acc rest in
      go acc rest
  in
  go [] l

let max_by f = function
  | [] -> None
  | x :: rest ->
    let best, _ =
      List.fold_left
        (fun (b, fb) y ->
          let fy = f y in
          if fy > fb then (y, fy) else (b, fb))
        (x, f x) rest
    in
    Some best

let min_by f l = max_by (fun x -> -f x) l

let sum_by f l = List.fold_left (fun acc x -> acc + f x) 0 l

let group_by key l =
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i x -> Hashtbl.add tbl (key x) (i, x)) l;
  let keys = List.sort_uniq compare (List.map key l) in
  let in_order k =
    let elems = Hashtbl.find_all tbl k in
    List.map snd (List.sort (fun (i, _) (j, _) -> compare i j) elems)
  in
  List.map (fun k -> (k, in_order k)) keys

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let range lo hi =
  let rec go i acc = if i < lo then acc else go (i - 1) (i :: acc) in
  go (hi - 1) []

let index_of p l =
  let rec go i = function
    | [] -> None
    | x :: rest -> if p x then Some i else go (i + 1) rest
  in
  go 0 l
