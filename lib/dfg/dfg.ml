module Smap = Map.Make (String)
module Sset = Set.Make (String)
module Diagnostic = Bistpath_resilience.Diagnostic

type t = {
  name : string;
  ops : Op.t list;
  inputs : string list;
  outputs : string list;
  schedule : int Smap.t;
}

let variables t =
  let add set v = Sset.add v set in
  let set = List.fold_left add Sset.empty t.inputs in
  let set =
    List.fold_left
      (fun set (op : Op.t) -> add (add (add set op.left) op.right) op.out)
      set t.ops
  in
  Sset.elements set

let producer t v = List.find_opt (fun (op : Op.t) -> String.equal op.out v) t.ops

let consumers t v =
  List.filter (fun (op : Op.t) -> String.equal op.left v || String.equal op.right v) t.ops

let cstep t id =
  match Smap.find_opt id t.schedule with Some c -> c | None -> raise Not_found

let op_by_id t id = List.find_opt (fun (op : Op.t) -> String.equal op.id id) t.ops

let num_csteps t = Smap.fold (fun _ c acc -> max acc c) t.schedule 0

let ops_in_step t step = List.filter (fun (op : Op.t) -> cstep t op.id = step) t.ops

let diagnostics ?max_errors t =
  let coll = Diagnostic.collector ?max_errors () in
  let err fmt = Format.kasprintf (fun m -> Diagnostic.emit coll (Diagnostic.error m)) fmt in
  (* Report each duplicated element once, at its first occurrence,
     scanning positions in order — so the first diagnostic is exactly
     the one the first-error path used to raise. *)
  let dup_once l report =
    let seen = Hashtbl.create 16 in
    List.iter
      (fun x ->
        if
          (not (Hashtbl.mem seen x))
          && List.length (List.filter (String.equal x) l) > 1
        then begin
          Hashtbl.replace seen x ();
          report x
        end)
      l
  in
  let ids = List.map (fun (op : Op.t) -> op.id) t.ops in
  dup_once ids (fun id -> err "Dfg %s: duplicate operation id %s" t.name id);
  let produced = List.map (fun (op : Op.t) -> op.out) t.ops in
  dup_once produced (fun v -> err "Dfg %s: variable %s produced by two operations" t.name v);
  List.iter
    (fun v ->
      if List.mem v t.inputs then
        err "Dfg %s: primary input %s is also an operation result" t.name v)
    produced;
  let defined = Sset.union (Sset.of_list t.inputs) (Sset.of_list produced) in
  List.iter
    (fun (op : Op.t) ->
      List.iter
        (fun v ->
          if not (Sset.mem v defined) then
            err "Dfg %s: operand %s of %s is undefined" t.name v op.id)
        [ op.left; op.right ])
    t.ops;
  List.iter
    (fun v ->
      if not (Sset.mem v defined) then
        err "Dfg %s: primary output %s is undefined" t.name v)
    t.outputs;
  List.iter
    (fun (op : Op.t) ->
      match Smap.find_opt op.id t.schedule with
      | None -> err "Dfg %s: operation %s is not scheduled" t.name op.id
      | Some c when c < 1 -> err "Dfg %s: operation %s has control step %d < 1" t.name op.id c
      | Some _ -> ())
    t.ops;
  (* Data dependencies: a producer must finish strictly before any use;
     this also rules out cycles since csteps strictly increase along
     every path. Unlike the first-error path, accumulation reaches this
     stage with unscheduled operations still present (reported above),
     so comparisons are restricted to scheduled pairs. *)
  let step id = Smap.find_opt id t.schedule in
  List.iter
    (fun (op : Op.t) ->
      List.iter
        (fun v ->
          match producer t v with
          | Some p -> (
            match (step p.id, step op.id) with
            | Some pc, Some oc when pc >= oc ->
              err "Dfg %s: %s reads %s before %s produces it" t.name op.id v p.id
            | _ -> ())
          | None -> ())
        [ op.left; op.right ])
    t.ops;
  Diagnostic.all coll

let validate t =
  match
    List.find_opt
      (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error)
      (diagnostics t)
  with
  | Some d -> invalid_arg d.Diagnostic.message
  | None -> ()

let make ~name ~ops ~inputs ~outputs ~schedule =
  let schedule =
    List.fold_left (fun m (id, c) -> Smap.add id c m) Smap.empty schedule
  in
  let t = { name; ops; inputs; outputs; schedule } in
  validate t;
  t

let make_diags ?max_errors ~name ~ops ~inputs ~outputs ~schedule () =
  let schedule =
    List.fold_left (fun m (id, c) -> Smap.add id c m) Smap.empty schedule
  in
  let t = { name; ops; inputs; outputs; schedule } in
  match diagnostics ?max_errors t with [] -> Ok t | ds -> Error ds

let kind_counts t =
  Op.all_kinds
  |> List.filter_map (fun k ->
         match List.length (List.filter (fun (op : Op.t) -> op.kind = k) t.ops) with
         | 0 -> None
         | n -> Some (k, n))

let pp ppf t =
  Format.fprintf ppf "@[<v>DFG %s  (inputs: %s; outputs: %s)@," t.name
    (String.concat " " t.inputs)
    (String.concat " " t.outputs);
  for step = 1 to num_csteps t do
    Format.fprintf ppf "  step %d:" step;
    List.iter (fun op -> Format.fprintf ppf "  [%a]" Op.pp op) (ops_in_step t step);
    Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
