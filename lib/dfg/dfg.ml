module Smap = Map.Make (String)
module Sset = Set.Make (String)

type t = {
  name : string;
  ops : Op.t list;
  inputs : string list;
  outputs : string list;
  schedule : int Smap.t;
}

let fail fmt = Format.kasprintf invalid_arg fmt

let variables t =
  let add set v = Sset.add v set in
  let set = List.fold_left add Sset.empty t.inputs in
  let set =
    List.fold_left
      (fun set (op : Op.t) -> add (add (add set op.left) op.right) op.out)
      set t.ops
  in
  Sset.elements set

let producer t v = List.find_opt (fun (op : Op.t) -> String.equal op.out v) t.ops

let consumers t v =
  List.filter (fun (op : Op.t) -> String.equal op.left v || String.equal op.right v) t.ops

let cstep t id =
  match Smap.find_opt id t.schedule with Some c -> c | None -> raise Not_found

let op_by_id t id = List.find_opt (fun (op : Op.t) -> String.equal op.id id) t.ops

let num_csteps t = Smap.fold (fun _ c acc -> max acc c) t.schedule 0

let ops_in_step t step = List.filter (fun (op : Op.t) -> cstep t op.id = step) t.ops

let validate t =
  let ids = List.map (fun (op : Op.t) -> op.id) t.ops in
  (match
     List.find_opt
       (fun id -> List.length (List.filter (String.equal id) ids) > 1)
       ids
   with
  | Some id -> fail "Dfg %s: duplicate operation id %s" t.name id
  | None -> ());
  let produced = List.map (fun (op : Op.t) -> op.out) t.ops in
  (match
     List.find_opt
       (fun v -> List.length (List.filter (String.equal v) produced) > 1)
       produced
   with
  | Some v -> fail "Dfg %s: variable %s produced by two operations" t.name v
  | None -> ());
  List.iter
    (fun v ->
      if List.mem v t.inputs then
        fail "Dfg %s: primary input %s is also an operation result" t.name v)
    produced;
  let defined = Sset.union (Sset.of_list t.inputs) (Sset.of_list produced) in
  List.iter
    (fun (op : Op.t) ->
      List.iter
        (fun v ->
          if not (Sset.mem v defined) then
            fail "Dfg %s: operand %s of %s is undefined" t.name v op.id)
        [ op.left; op.right ])
    t.ops;
  List.iter
    (fun v ->
      if not (Sset.mem v defined) then
        fail "Dfg %s: primary output %s is undefined" t.name v)
    t.outputs;
  List.iter
    (fun (op : Op.t) ->
      match Smap.find_opt op.id t.schedule with
      | None -> fail "Dfg %s: operation %s is not scheduled" t.name op.id
      | Some c when c < 1 -> fail "Dfg %s: operation %s has control step %d < 1" t.name op.id c
      | Some _ -> ())
    t.ops;
  (* Data dependencies: a producer must finish strictly before any use;
     this also rules out cycles since csteps strictly increase along
     every path. *)
  List.iter
    (fun (op : Op.t) ->
      List.iter
        (fun v ->
          match producer t v with
          | Some p when cstep t p.id >= cstep t op.id ->
            fail "Dfg %s: %s reads %s before %s produces it" t.name op.id v p.id
          | Some _ | None -> ())
        [ op.left; op.right ])
    t.ops

let make ~name ~ops ~inputs ~outputs ~schedule =
  let schedule =
    List.fold_left (fun m (id, c) -> Smap.add id c m) Smap.empty schedule
  in
  let t = { name; ops; inputs; outputs; schedule } in
  validate t;
  t

let kind_counts t =
  Op.all_kinds
  |> List.filter_map (fun k ->
         match List.length (List.filter (fun (op : Op.t) -> op.kind = k) t.ops) with
         | 0 -> None
         | n -> Some (k, n))

let pp ppf t =
  Format.fprintf ppf "@[<v>DFG %s  (inputs: %s; outputs: %s)@," t.name
    (String.concat " " t.inputs)
    (String.concat " " t.outputs);
  for step = 1 to num_csteps t do
    Format.fprintf ppf "  step %d:" step;
    List.iter (fun op -> Format.fprintf ppf "  [%a]" Op.pp op) (ops_in_step t step);
    Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
