module Listx = Bistpath_util.Listx

type window = { lo : int; hi : int }


(* Recompute ASAP/ALAP windows under the partial assignment [fixed]. *)
let windows (p : Scheduler.problem) ~latency fixed =
  let prod = Hashtbl.create 16 in
  List.iter (fun (o : Op.t) -> Hashtbl.replace prod o.out o) p.ops;
  let asap = Hashtbl.create 16 in
  let rec asap_of (o : Op.t) =
    match Hashtbl.find_opt asap o.id with
    | Some s -> s
    | None ->
      let dep v =
        match Hashtbl.find_opt prod v with Some d -> asap_of d | None -> 0
      in
      let s =
        match Hashtbl.find_opt fixed o.id with
        | Some t -> t
        | None -> 1 + max (dep o.left) (dep o.right)
      in
      Hashtbl.replace asap o.id s;
      s
  in
  List.iter (fun o -> ignore (asap_of o)) p.ops;
  let consumers = Hashtbl.create 16 in
  List.iter
    (fun (o : Op.t) ->
      List.iter
        (fun v ->
          Hashtbl.replace consumers v
            (o :: (match Hashtbl.find_opt consumers v with Some l -> l | None -> [])))
        [ o.left; o.right ])
    p.ops;
  let alap = Hashtbl.create 16 in
  let rec alap_of (o : Op.t) =
    match Hashtbl.find_opt alap o.id with
    | Some s -> s
    | None ->
      let uses =
        match Hashtbl.find_opt consumers o.out with Some l -> l | None -> []
      in
      let s =
        match Hashtbl.find_opt fixed o.id with
        | Some t -> t
        | None ->
          List.fold_left (fun acc u -> min acc (alap_of u - 1)) latency uses
      in
      Hashtbl.replace alap o.id s;
      s
  in
  List.iter (fun o -> ignore (alap_of o)) p.ops;
  List.map
    (fun (o : Op.t) ->
      let w = { lo = Hashtbl.find asap o.id; hi = Hashtbl.find alap o.id } in
      if w.hi < w.lo then
        invalid_arg
          (Printf.sprintf "Fds.schedule: infeasible window for %s (latency too small?)" o.id);
      (o, w))
    p.ops

(* Distribution graph of a kind: expected concurrency per step, each
   operation spread uniformly over its window. *)
let distribution windows kind ~latency =
  let dg = Array.make (latency + 1) 0.0 in
  List.iter
    (fun ((o : Op.t), w) ->
      if o.kind = kind then begin
        let p = 1.0 /. float_of_int (w.hi - w.lo + 1) in
        for t = w.lo to w.hi do
          dg.(t) <- dg.(t) +. p
        done
      end)
    windows;
  dg

(* Self force of placing the operation at step t given its window. *)
let self_force dg w t =
  let width = float_of_int (w.hi - w.lo + 1) in
  let mean = ref 0.0 in
  for j = w.lo to w.hi do
    mean := !mean +. (dg.(j) /. width)
  done;
  dg.(t) -. !mean

let schedule ~(problem : Scheduler.problem) ~latency =
  let cp =
    List.fold_left (fun acc (_, s) -> max acc s) 0 (Scheduler.asap problem)
  in
  if latency < cp then
    invalid_arg
      (Printf.sprintf "Fds.schedule: latency %d below critical path %d" latency cp);
  let fixed = Hashtbl.create 16 in
  let prod = Hashtbl.create 16 in
  List.iter (fun (o : Op.t) -> Hashtbl.replace prod o.out o) problem.ops;
  let parents (o : Op.t) =
    List.filter_map (fun v -> Hashtbl.find_opt prod v) [ o.left; o.right ]
  in
  let children (o : Op.t) =
    List.filter
      (fun (u : Op.t) -> String.equal u.left o.out || String.equal u.right o.out)
      problem.ops
  in
  let n = List.length problem.ops in
  for _ = 1 to n do
    let ws = windows problem ~latency fixed in
    let dgs =
      List.map (fun kind -> (kind, distribution ws kind ~latency)) Op.all_kinds
    in
    let dg_of kind = List.assoc kind dgs in
    let window_of =
      let tbl = Hashtbl.create 16 in
      List.iter (fun ((o : Op.t), w) -> Hashtbl.replace tbl o.id w) ws;
      fun (o : Op.t) -> Hashtbl.find tbl o.id
    in
    (* candidate = unscheduled op, each step in its window *)
    let best = ref None in
    List.iter
      (fun ((o : Op.t), w) ->
        if not (Hashtbl.mem fixed o.id) then
          for t = w.lo to w.hi do
            let f = ref (self_force (dg_of o.kind) w t) in
            (* predecessor forces: parents lose the steps >= t *)
            List.iter
              (fun (pa : Op.t) ->
                let pw = window_of pa in
                if not (Hashtbl.mem fixed pa.id) then begin
                  let hi' = min pw.hi (t - 1) in
                  if hi' < pw.hi && hi' >= pw.lo then
                    f := !f +. self_force (dg_of pa.kind) pw hi'
                    (* approximate: force of pushing the parent to its
                       new latest step *)
                end)
              (parents o);
            List.iter
              (fun (ch : Op.t) ->
                let cw = window_of ch in
                if not (Hashtbl.mem fixed ch.id) then begin
                  let lo' = max cw.lo (t + 1) in
                  if lo' > cw.lo && lo' <= cw.hi then
                    f := !f +. self_force (dg_of ch.kind) cw lo'
                end)
              (children o);
            match !best with
            | Some (bf, (bo : Op.t), _) when bf < !f || (bf = !f && String.compare bo.id o.id <= 0) -> ()
            | _ -> best := Some (!f, o, t)
          done)
      ws;
    match !best with
    | Some (_, o, t) -> Hashtbl.replace fixed o.id t
    | None -> ()
  done;
  List.map (fun (o : Op.t) -> (o.id, Hashtbl.find fixed o.id)) problem.ops

let to_dfg problem ~latency =
  Scheduler.to_dfg problem (schedule ~problem ~latency)

let max_concurrency dfg =
  Op.all_kinds
  |> List.filter_map (fun kind ->
         let peak =
           List.fold_left
             (fun acc step ->
               max acc
                 (List.length
                    (List.filter (fun (o : Op.t) -> o.kind = kind) (Dfg.ops_in_step dfg step))))
             0
             (Listx.range 1 (Dfg.num_csteps dfg + 1))
         in
         if peak = 0 then None else Some (kind, peak))
