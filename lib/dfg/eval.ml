let env_of dfg ~inputs =
  let used_inputs = List.filter (fun v -> Dfg.consumers dfg v <> []) dfg.Dfg.inputs in
  List.iter
    (fun v ->
      if not (List.mem_assoc v inputs) then
        invalid_arg (Printf.sprintf "Eval.run: missing value for input %s" v))
    used_inputs;
  List.iter
    (fun (v, _) ->
      if not (List.mem v dfg.Dfg.inputs) then
        invalid_arg (Printf.sprintf "Eval.run: %s is not a primary input" v))
    inputs;
  let tbl = Hashtbl.create 16 in
  List.iter (fun (v, x) -> Hashtbl.replace tbl v x) inputs;
  tbl

let eval_all dfg ~width ~inputs =
  let env = env_of dfg ~inputs in
  let value v =
    match Hashtbl.find_opt env v with
    | Some x -> x
    | None -> invalid_arg (Printf.sprintf "Eval.run: %s read before definition" v)
  in
  for step = 1 to Dfg.num_csteps dfg do
    (* all reads of a step happen before its writes land *)
    let results =
      List.map
        (fun (op : Op.t) ->
          (op.out, Op.eval op.kind ~width (value op.left) (value op.right)))
        (Dfg.ops_in_step dfg step)
    in
    List.iter (fun (v, x) -> Hashtbl.replace env v x) results
  done;
  env

let run dfg ~width ~inputs =
  let env = eval_all dfg ~width ~inputs in
  dfg.Dfg.outputs
  |> List.map (fun v -> (v, Hashtbl.find env v))
  |> List.sort compare

let run_all dfg ~width ~inputs =
  let env = eval_all dfg ~width ~inputs in
  Hashtbl.fold (fun v x acc -> (v, x) :: acc) env [] |> List.sort compare
