type problem = {
  name : string;
  ops : Op.t list;
  inputs : string list;
  outputs : string list;
}

let producer_tbl ops =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (op : Op.t) -> Hashtbl.replace tbl op.out op) ops;
  tbl

let asap p =
  let prod = producer_tbl p.ops in
  let memo = Hashtbl.create 16 in
  let rec step_of (op : Op.t) =
    match Hashtbl.find_opt memo op.id with
    | Some (Some s) -> s
    | Some None -> invalid_arg (Printf.sprintf "Scheduler.asap: cycle through %s" op.id)
    | None ->
      Hashtbl.replace memo op.id None;
      let dep v =
        match Hashtbl.find_opt prod v with Some d -> step_of d | None -> 0
      in
      let s = 1 + max (dep op.left) (dep op.right) in
      Hashtbl.replace memo op.id (Some s);
      s
  in
  List.map (fun (op : Op.t) -> (op.id, step_of op)) p.ops

let critical_path p =
  List.fold_left (fun acc (_, s) -> max acc s) 0 (asap p)

let alap p ~latency =
  let cp = critical_path p in
  if latency < cp then
    invalid_arg
      (Printf.sprintf "Scheduler.alap: latency %d below critical path %d" latency cp);
  let consumers_of v =
    List.filter (fun (op : Op.t) -> String.equal op.left v || String.equal op.right v) p.ops
  in
  let memo = Hashtbl.create 16 in
  let rec step_of (op : Op.t) =
    match Hashtbl.find_opt memo op.id with
    | Some s -> s
    | None ->
      let s =
        match consumers_of op.out with
        | [] -> latency
        | uses -> List.fold_left (fun acc u -> min acc (step_of u - 1)) latency uses
      in
      Hashtbl.replace memo op.id s;
      s
  in
  List.map (fun (op : Op.t) -> (op.id, step_of op)) p.ops

let list_schedule p ~resources =
  let prod = producer_tbl p.ops in
  let n = List.length p.ops in
  let alap_map =
    match alap p ~latency:(max 1 (critical_path p)) with
    | l -> l
    | exception Invalid_argument _ -> asap p
  in
  let slack op = List.assoc op alap_map in
  let scheduled = Hashtbl.create 16 in
  let ready step (op : Op.t) =
    (not (Hashtbl.mem scheduled op.id))
    && List.for_all
         (fun v ->
           match Hashtbl.find_opt prod v with
           | None -> true
           | Some (d : Op.t) -> (
             match Hashtbl.find_opt scheduled d.id with
             | Some s -> s < step
             | None -> false))
         [ op.Op.left; op.Op.right ]
  in
  let capacity kind = match List.assoc_opt kind resources with Some c -> c | None -> n in
  let rec go step count =
    if count = n then ()
    else begin
      let candidates =
        List.filter (ready step) p.ops
        |> List.sort (fun (a : Op.t) (b : Op.t) ->
               compare (slack a.id, a.id) (slack b.id, b.id))
      in
      let used = Hashtbl.create 8 in
      let placed =
        List.filter
          (fun (op : Op.t) ->
            let u = match Hashtbl.find_opt used op.kind with Some x -> x | None -> 0 in
            if u < capacity op.kind then begin
              Hashtbl.replace used op.kind (u + 1);
              Hashtbl.replace scheduled op.id step;
              true
            end
            else false)
          candidates
      in
      go (step + 1) (count + List.length placed)
    end
  in
  go 1 0;
  List.map (fun (op : Op.t) -> (op.id, Hashtbl.find scheduled op.id)) p.ops

let to_dfg p schedule =
  Dfg.make ~name:p.name ~ops:p.ops ~inputs:p.inputs ~outputs:p.outputs ~schedule
