(** Force-directed scheduling (Paulin & Knight, 1989) — the classic
    time-constrained scheduler that balances operation concurrency so
    fewer functional units are needed at a given latency. The Paulin
    benchmark of the DAC-1995 paper is the running example of that work,
    so the substrate earns its place here.

    For each unscheduled operation and each feasible control step, the
    {e force} measures how much assigning it there would increase the
    expected concurrency of its operation class (self force from the
    distribution graph, plus the forces its mobility reduction induces
    on direct predecessors and successors). The least-force assignment
    is fixed, mobilities shrink, and the process repeats. *)

val schedule : problem:Scheduler.problem -> latency:int -> (string * int) list
(** Time-constrained FDS. Raises [Invalid_argument] if [latency] is
    below the critical path. Deterministic (ties broken by operation
    id). The result always respects data dependencies and the latency
    bound. *)

val to_dfg : Scheduler.problem -> latency:int -> Dfg.t
(** [schedule] packaged through {!Dfg.make} validation. *)

val max_concurrency : Dfg.t -> (Op.kind * int) list
(** Per operation kind, the maximum number of simultaneous operations in
    any control step — the unit count a single-function module
    assignment needs. Used to compare schedulers. *)
