(** Operation kinds of the behavioral description.

    All operators are binary (the paper's assumption); unary uses are
    expressed by repeating an operand. Commutativity matters to
    interconnect assignment: operands of a non-commutative operator are
    pinned to the left/right ports. *)

type kind = Add | Sub | Mul | Div | And | Or | Xor | Less

val all_kinds : kind list

val commutative : kind -> bool

val symbol : kind -> string
(** "+", "-", "*", "/", "&", "|", "^", "<". *)

val of_symbol : string -> kind option

val eval : kind -> width:int -> int -> int -> int
(** Reference semantics on [width]-bit unsigned words: result mod
    2^width; [Less] yields 0/1; division by zero yields 2^width - 1 (the
    restoring divider's natural output). Shared by the behavioural DFG
    evaluator, the data-path interpreter and the gate-level library. *)

val pp_kind : Format.formatter -> kind -> unit

type t = {
  id : string;  (** unique operation name, e.g. "+1" *)
  kind : kind;
  left : string;  (** left operand variable *)
  right : string;  (** right operand variable *)
  out : string;  (** result variable *)
}

val operands : t -> string list
(** [left; right] (with duplicates collapsed when both are the same). *)

val pp : Format.formatter -> t -> unit
