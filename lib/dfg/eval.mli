(** Behavioural evaluation of a DFG: the golden reference the
    cycle-accurate data-path interpreter is checked against. *)

val run :
  Dfg.t -> width:int -> inputs:(string * int) list -> (string * int) list
(** Execute all operations in schedule order on [width]-bit unsigned
    words; returns the value of every primary output (sorted by name).
    Raises [Invalid_argument] if an input binding is missing or an
    unknown input is supplied. *)

val run_all :
  Dfg.t -> width:int -> inputs:(string * int) list -> (string * int) list
(** Like {!run} but returns the value of every variable. *)
