(** Scheduling substrate: the paper takes a *scheduled* DFG as input, so
    any benchmark distributed unscheduled must first pass through one of
    these. ASAP/ALAP bound the mobility; the list scheduler respects a
    resource bound per operation class. *)

type problem = {
  name : string;
  ops : Op.t list;
  inputs : string list;
  outputs : string list;
}

val asap : problem -> (string * int) list
(** Each operation as soon as its operands exist (1-based steps),
    unlimited resources. Raises [Invalid_argument] on a cyclic or
    ill-formed problem. *)

val alap : problem -> latency:int -> (string * int) list
(** Each operation as late as possible within [latency] steps. Raises
    [Invalid_argument] if [latency] is below the ASAP critical path. *)

val list_schedule :
  problem -> resources:(Op.kind * int) list -> (string * int) list
(** Resource-constrained list scheduling; priority = ALAP slack (critical
    operations first). A kind missing from [resources] is unlimited.
    Result always respects dependencies and the per-step resource bound. *)

val to_dfg : problem -> (string * int) list -> Dfg.t
(** Package a schedule; validates via {!Dfg.make}. *)
