(** Scheduled data-flow graphs G = (V, E): V the operations, E the
    variables, plus a schedule S mapping each operation to a control step
    (Section III of the paper). *)

module Smap : Map.S with type key = string
module Sset : Set.S with type elt = string

type t = {
  name : string;
  ops : Op.t list;  (** in declaration order *)
  inputs : string list;  (** primary-input variables *)
  outputs : string list;  (** primary-output variables *)
  schedule : int Smap.t;  (** op id -> control step, 1-based *)
}

val make :
  name:string ->
  ops:Op.t list ->
  inputs:string list ->
  outputs:string list ->
  schedule:(string * int) list ->
  t
(** Build and validate. Raises [Invalid_argument] describing the first
    violation found: duplicate op ids, a variable produced twice, an
    operand that is neither a primary input nor produced, a cycle, a
    missing or non-positive schedule entry, an operation scheduled no
    later than one of its producers, or an output variable that does not
    exist. (The message is the first diagnostic of {!diagnostics}.) *)

val make_diags :
  ?max_errors:int ->
  name:string ->
  ops:Op.t list ->
  inputs:string list ->
  outputs:string list ->
  schedule:(string * int) list ->
  unit ->
  (t, Bistpath_resilience.Diagnostic.t list) result
(** Like {!make} but accumulating: [Error] carries every violation found
    (capped at [max_errors],
    {!Bistpath_resilience.Diagnostic.default_max_errors} by default)
    instead of raising on the first. *)

val diagnostics : ?max_errors:int -> t -> Bistpath_resilience.Diagnostic.t list
(** All validation violations of an already-built value, in the order
    {!make} checks them; empty iff the DFG is valid. *)

val num_csteps : t -> int
(** Largest control step used. *)

val variables : t -> string list
(** All variables (inputs + every operand/result), sorted, each once. *)

val producer : t -> string -> Op.t option
(** Operation producing a variable, if any ([None] = primary input). *)

val consumers : t -> string -> Op.t list
(** Operations reading a variable, in declaration order. *)

val cstep : t -> string -> int
(** Control step of an operation id. Raises [Not_found] if unknown. *)

val ops_in_step : t -> int -> Op.t list

val op_by_id : t -> string -> Op.t option

val kind_counts : t -> (Op.kind * int) list
(** How many operations of each kind, kinds with zero omitted. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering grouped by control step (regenerates the
    paper's Fig. 2 for ex1). *)
