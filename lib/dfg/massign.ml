type hw = { mid : string; kinds : Op.kind list }

type t = { units : hw list; of_op : string Dfg.Smap.t }

let fail fmt = Format.kasprintf invalid_arg fmt

let unit_by_id t mid = List.find_opt (fun u -> String.equal u.mid mid) t.units

let make dfg ~units ~bind =
  let of_op =
    List.fold_left (fun m (op, mid) -> Dfg.Smap.add op mid m) Dfg.Smap.empty bind
  in
  let t = { units; of_op } in
  (match
     List.find_opt
       (fun u -> List.length (List.filter (fun u' -> String.equal u.mid u'.mid) units) > 1)
       units
   with
  | Some u -> fail "Massign: duplicate unit %s" u.mid
  | None -> ());
  List.iter
    (fun (op : Op.t) ->
      match Dfg.Smap.find_opt op.id of_op with
      | None -> fail "Massign: operation %s is not bound" op.id
      | Some mid -> (
        match unit_by_id t mid with
        | None -> fail "Massign: operation %s bound to unknown unit %s" op.id mid
        | Some u ->
          if not (List.mem op.kind u.kinds) then
            fail "Massign: unit %s cannot perform %s (operation %s)" mid
              (Op.symbol op.kind) op.id))
    dfg.Dfg.ops;
  (* No structural hazard: one operation per unit per control step. *)
  List.iter
    (fun u ->
      let by_step =
        List.filter
          (fun (op : Op.t) -> String.equal (Dfg.Smap.find op.id of_op) u.mid)
          dfg.Dfg.ops
        |> List.map (fun (op : Op.t) -> Dfg.cstep dfg op.id)
      in
      let sorted = List.sort compare by_step in
      let rec dup = function
        | a :: (b :: _ as rest) -> if a = b then Some a else dup rest
        | [ _ ] | [] -> None
      in
      match dup sorted with
      | Some step -> fail "Massign: unit %s used twice in control step %d" u.mid step
      | None -> ())
    units;
  t

let unit_of_op t opid =
  match Dfg.Smap.find_opt opid t.of_op with
  | None -> raise Not_found
  | Some mid -> (
    match unit_by_id t mid with Some u -> u | None -> raise Not_found)

let instances t dfg mid =
  dfg.Dfg.ops
  |> List.filter (fun (op : Op.t) -> String.equal (Dfg.Smap.find op.id t.of_op) mid)
  |> List.sort (fun (a : Op.t) (b : Op.t) ->
         compare (Dfg.cstep dfg a.id) (Dfg.cstep dfg b.id))

let temporal_multiplicity t dfg mid = List.length (instances t dfg mid)

let input_variable_set t dfg mid =
  List.fold_left
    (fun set (op : Op.t) -> Dfg.Sset.add op.left (Dfg.Sset.add op.right set))
    Dfg.Sset.empty (instances t dfg mid)

let output_variable_set t dfg mid =
  List.fold_left
    (fun set (op : Op.t) -> Dfg.Sset.add op.out set)
    Dfg.Sset.empty (instances t dfg mid)

let instance_operands t dfg mid =
  List.map
    (fun (op : Op.t) -> Dfg.Sset.of_list [ op.left; op.right ])
    (instances t dfg mid)

let describe t dfg =
  let capability u =
    match u.kinds with
    | [ k ] -> Op.symbol k
    | _ -> "ALU"
  in
  let used u = temporal_multiplicity t dfg u.mid > 0 in
  let caps = List.map capability (List.filter used t.units) in
  Bistpath_util.Listx.group_by (fun c -> c) caps
  |> List.map (fun (c, l) -> Printf.sprintf "%d%s" (List.length l) c)
  |> String.concat ", "

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun u ->
      let ops =
        Dfg.Smap.fold
          (fun op mid acc -> if String.equal mid u.mid then op :: acc else acc)
          t.of_op []
        |> List.sort compare
      in
      Format.fprintf ppf "%s (%s): {%s}@,"
        u.mid
        (String.concat "," (List.map Op.symbol u.kinds))
        (String.concat ", " ops))
    t.units;
  Format.fprintf ppf "@]"
