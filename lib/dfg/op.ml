type kind = Add | Sub | Mul | Div | And | Or | Xor | Less

let all_kinds = [ Add; Sub; Mul; Div; And; Or; Xor; Less ]

let commutative = function
  | Add | Mul | And | Or | Xor -> true
  | Sub | Div | Less -> false

let symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Less -> "<"

let of_symbol s =
  List.find_opt (fun k -> String.equal (symbol k) s) all_kinds

let eval kind ~width x y =
  let mask = (1 lsl width) - 1 in
  let x = x land mask and y = y land mask in
  (match kind with
  | Add -> x + y
  | Sub -> x - y
  | Mul -> x * y
  | Div -> if y = 0 then mask else x / y
  | And -> x land y
  | Or -> x lor y
  | Xor -> x lxor y
  | Less -> if x < y then 1 else 0)
  land mask

let pp_kind ppf k = Format.pp_print_string ppf (symbol k)

type t = {
  id : string;
  kind : kind;
  left : string;
  right : string;
  out : string;
}

let operands t = if String.equal t.left t.right then [ t.left ] else [ t.left; t.right ]

let pp ppf t =
  Format.fprintf ppf "%s: %s %a %s -> %s" t.id t.left pp_kind t.kind t.right t.out
