(** Allocation policy: which variables compete for allocated registers.

    - [allocate_inputs]: when false, primary inputs live in dedicated
      I/O registers outside the allocated register file (the convention
      for loop benchmarks like the differential-equation solver, whose
      published register counts cover temporaries only).
    - [carried]: loop write-backs [(result, input)] — the result variable
      is stored into the dedicated register of the named input (next
      iteration's value), e.g. x1 -> x in the Paulin benchmark. Carried
      results do not occupy allocated registers, and they make the
      dedicated register a signature-analysis candidate (it receives a
      unit output) and possibly self-adjacent — the structure Avra's and
      the paper's CBILBO analyses revolve around. Requires
      [allocate_inputs = false]. *)

type t = {
  allocate_inputs : bool;
  carried : (string * string) list;  (** (produced variable, input variable) *)
}

val default : t
(** Inputs allocated, nothing carried. *)

val dedicated_io : t
(** Inputs dedicated, nothing carried. *)

val with_carried : (string * string) list -> t
(** Dedicated inputs plus the given write-backs. *)

val validate : Dfg.t -> t -> unit
(** Raises [Invalid_argument] unless every carried pair maps a produced
    variable to a distinct used primary input, with
    [allocate_inputs = false], and no two results carried into the same
    input. *)

val carried_into : t -> string -> string option
(** [carried_into p w] is the input register target of result [w]. *)

val allocatable : Dfg.t -> t -> string -> bool
(** Does this variable compete for an allocated register? *)
