module Diagnostic = Bistpath_resilience.Diagnostic

type unscheduled = {
  name : string;
  ops : Op.t list;
  inputs : string list;
  outputs : string list;
  partial_schedule : (string * int) list;
}

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> not (String.equal w ""))

let parse_op_line words =
  (* op <id> = <left> <sym> <right> -> <out> [@ <step>] *)
  let err msg = Error msg in
  match words with
  | [ "op"; id; "="; left; sym; right; "->"; out ] -> (
    match Op.of_symbol sym with
    | None -> err (Printf.sprintf "unknown operator %S" sym)
    | Some kind -> Ok ({ Op.id; kind; left; right; out }, None))
  | [ "op"; id; "="; left; sym; right; "->"; out; "@"; step ] -> (
    match (Op.of_symbol sym, int_of_string_opt step) with
    | None, _ -> err (Printf.sprintf "unknown operator %S" sym)
    | _, None -> err (Printf.sprintf "bad control step %S" step)
    | Some kind, Some s -> Ok ({ Op.id; kind; left; right; out }, Some s))
  | _ -> err "malformed op line"

let parse_string_diags ?max_errors text =
  let coll = Diagnostic.collector ?max_errors () in
  let acc =
    ref { name = "unnamed"; ops = []; inputs = []; outputs = []; partial_schedule = [] }
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      (* A bad line is reported and skipped; parsing continues so one
         report covers every problem in the file. *)
      match split_words line with
      | [] -> ()
      | "dfg" :: [ name ] -> acc := { !acc with name }
      | "input" :: vars -> acc := { !acc with inputs = !acc.inputs @ vars }
      | "output" :: vars -> acc := { !acc with outputs = !acc.outputs @ vars }
      | "op" :: _ as words -> (
        match parse_op_line words with
        | Error msg -> Diagnostic.emit coll (Diagnostic.error ~line:lineno msg)
        | Ok (op, step) ->
          acc := { !acc with ops = !acc.ops @ [ op ] };
          (match step with
          | Some s ->
            acc := { !acc with partial_schedule = !acc.partial_schedule @ [ (op.Op.id, s) ] }
          | None -> ()))
      | w :: _ ->
        Diagnostic.emit coll (Diagnostic.errorf ~line:lineno "unknown directive %S" w))
    (String.split_on_char '\n' text);
  (!acc, Diagnostic.all coll)

(* Reconstruct the legacy single-error message — with its "line N: "
   prefix when the diagnostic has a location — byte-identically. *)
let render_first diags =
  match
    List.find_opt (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error) diags
  with
  | None -> None
  | Some d ->
    Some
      (match d.Diagnostic.line with
      | Some l -> Printf.sprintf "line %d: %s" l d.Diagnostic.message
      | None -> d.Diagnostic.message)

let parse_string text =
  let u, diags = parse_string_diags text in
  match render_first diags with Some msg -> Error msg | None -> Ok u

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_string text
  | exception Sys_error msg -> Error msg

let parse_file_diags ?max_errors path =
  match In_channel.with_open_text path In_channel.input_all with
  | text ->
    let u, diags = parse_string_diags ?max_errors text in
    (u, List.map (fun d -> { d with Diagnostic.file = Some path }) diags)
  | exception Sys_error msg ->
    ( { name = "unnamed"; ops = []; inputs = []; outputs = []; partial_schedule = [] },
      [ Diagnostic.error msg ] )

let to_dfg_diags ?max_errors u =
  let unscheduled =
    List.filter
      (fun (op : Op.t) -> not (List.mem_assoc op.id u.partial_schedule))
      u.ops
  in
  match unscheduled with
  | [] ->
    Dfg.make_diags ?max_errors ~name:u.name ~ops:u.ops ~inputs:u.inputs
      ~outputs:u.outputs ~schedule:u.partial_schedule ()
  | ops ->
    let coll = Diagnostic.collector ?max_errors () in
    List.iter
      (fun (op : Op.t) ->
        Diagnostic.emit coll
          (Diagnostic.errorf "operation %s has no control step" op.Op.id))
      ops;
    Error (Diagnostic.all coll)

let to_dfg u =
  match to_dfg_diags u with
  | Ok dfg -> Ok dfg
  | Error diags -> (
    match render_first diags with
    | Some msg -> Error msg
    | None -> Error "invalid DFG" (* unreachable: an Error always has an error *))

let to_string (t : Dfg.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "dfg %s\n" t.name);
  if t.inputs <> [] then
    Buffer.add_string buf (Printf.sprintf "input %s\n" (String.concat " " t.inputs));
  if t.outputs <> [] then
    Buffer.add_string buf (Printf.sprintf "output %s\n" (String.concat " " t.outputs));
  List.iter
    (fun (op : Op.t) ->
      Buffer.add_string buf
        (Printf.sprintf "op %s = %s %s %s -> %s @ %d\n" op.id op.left
           (Op.symbol op.kind) op.right op.out
           (Dfg.cstep t op.id)))
    t.ops;
  Buffer.contents buf
