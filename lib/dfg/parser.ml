type unscheduled = {
  name : string;
  ops : Op.t list;
  inputs : string list;
  outputs : string list;
  partial_schedule : (string * int) list;
}

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> not (String.equal w ""))

let parse_op_line lineno words =
  (* op <id> = <left> <sym> <right> -> <out> [@ <step>] *)
  let err msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  match words with
  | [ "op"; id; "="; left; sym; right; "->"; out ] -> (
    match Op.of_symbol sym with
    | None -> err (Printf.sprintf "unknown operator %S" sym)
    | Some kind -> Ok ({ Op.id; kind; left; right; out }, None))
  | [ "op"; id; "="; left; sym; right; "->"; out; "@"; step ] -> (
    match (Op.of_symbol sym, int_of_string_opt step) with
    | None, _ -> err (Printf.sprintf "unknown operator %S" sym)
    | _, None -> err (Printf.sprintf "bad control step %S" step)
    | Some kind, Some s -> Ok ({ Op.id; kind; left; right; out }, Some s))
  | _ -> err "malformed op line"

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok acc
    | line :: rest -> (
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      match split_words line with
      | [] -> go (lineno + 1) acc rest
      | "dfg" :: [ name ] -> go (lineno + 1) { acc with name } rest
      | "input" :: vars -> go (lineno + 1) { acc with inputs = acc.inputs @ vars } rest
      | "output" :: vars -> go (lineno + 1) { acc with outputs = acc.outputs @ vars } rest
      | "op" :: _ as words -> (
        match parse_op_line lineno words with
        | Error _ as e -> e
        | Ok (op, step) ->
          let acc = { acc with ops = acc.ops @ [ op ] } in
          let acc =
            match step with
            | Some s -> { acc with partial_schedule = acc.partial_schedule @ [ (op.Op.id, s) ] }
            | None -> acc
          in
          go (lineno + 1) acc rest)
      | w :: _ -> Error (Printf.sprintf "line %d: unknown directive %S" lineno w))
  in
  go 1 { name = "unnamed"; ops = []; inputs = []; outputs = []; partial_schedule = [] } lines

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_string text
  | exception Sys_error msg -> Error msg

let to_dfg u =
  let unscheduled =
    List.filter
      (fun (op : Op.t) -> not (List.mem_assoc op.id u.partial_schedule))
      u.ops
  in
  match unscheduled with
  | op :: _ -> Error (Printf.sprintf "operation %s has no control step" op.Op.id)
  | [] -> (
    match
      Dfg.make ~name:u.name ~ops:u.ops ~inputs:u.inputs ~outputs:u.outputs
        ~schedule:u.partial_schedule
    with
    | dfg -> Ok dfg
    | exception Invalid_argument msg -> Error msg)

let to_string (t : Dfg.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "dfg %s\n" t.name);
  if t.inputs <> [] then
    Buffer.add_string buf (Printf.sprintf "input %s\n" (String.concat " " t.inputs));
  if t.outputs <> [] then
    Buffer.add_string buf (Printf.sprintf "output %s\n" (String.concat " " t.outputs));
  List.iter
    (fun (op : Op.t) ->
      Buffer.add_string buf
        (Printf.sprintf "op %s = %s %s %s -> %s @ %d\n" op.id op.left
           (Op.symbol op.kind) op.right op.out
           (Dfg.cstep t op.id)))
    t.ops;
  Buffer.contents buf
