(** Variable lifetimes and the variable conflict graph.

    Conventions (see DESIGN.md §5): a variable is live on the half-open
    interval [(birth, death]]; a primary input is born at the start of its
    first-use step ([first_use - 1]); an operation result is born at the
    end of its producing step; death is the last-use step; a variable with
    no uses (a primary output, or dead code) is held one step past birth.
    Touching endpoints do not conflict (edge-triggered registers).

    All functions below consider only variables that compete for allocated
    registers under the given {!Policy.t} (default {!Policy.default}:
    everything but unused inputs). *)

val span : Dfg.t -> string -> Bistpath_graphs.Interval.span
(** Live range of one variable, policy-independent. Raises
    [Invalid_argument] for an unused primary input (it never needs a
    register and has no range). *)

val spans : ?policy:Policy.t -> Dfg.t -> (string * Bistpath_graphs.Interval.span) list
(** Every allocatable variable with its range, sorted by name. *)

type indexing = { to_index : string -> int; of_index : int -> string; count : int }
(** Bijection between variable names and dense indices 0..count-1 used to
    talk to the integer-vertex graph library. *)

val indexing : ?policy:Policy.t -> Dfg.t -> indexing
(** Indices follow the sorted order of {!spans}. *)

val conflict_graph :
  ?policy:Policy.t -> Dfg.t -> Bistpath_graphs.Ugraph.t * indexing
(** The variable conflict graph: one vertex per allocatable variable
    (dense indices), an edge iff lifetimes overlap. Always an interval
    graph. *)

val min_registers : ?policy:Policy.t -> Dfg.t -> int
(** Chromatic number of the conflict graph = the minimum register count
    (exact: clique number, since interval graphs are perfect). *)
