type token =
  | Ident of string
  | Number of int
  | Operator of Op.kind
  | Equals
  | Lparen
  | Rparen
  | Semicolon
  | Output_kw

module Diagnostic = Bistpath_resilience.Diagnostic

(* Internal control flow only; surfaced as diagnostics. *)
exception Error_at of int option * string

let fail lineno fmt =
  Format.kasprintf (fun msg -> raise (Error_at (Some lineno, msg))) fmt

let is_ident_char c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false

(* Tokenize one line. *)
let tokenize lineno line =
  let n = String.length line in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match line.[i] with
      | ' ' | '\t' | '\r' -> go (i + 1) acc
      | '#' -> List.rev acc
      | '=' -> go (i + 1) (Equals :: acc)
      | '(' -> go (i + 1) (Lparen :: acc)
      | ')' -> go (i + 1) (Rparen :: acc)
      | ';' -> go (i + 1) (Semicolon :: acc)
      | ('+' | '-' | '*' | '/' | '&' | '|' | '^' | '<') as c -> (
        match Op.of_symbol (String.make 1 c) with
        | Some k -> go (i + 1) (Operator k :: acc)
        | None -> fail lineno "unknown operator %c" c)
      | '0' .. '9' ->
        let j = ref i in
        while !j < n && line.[!j] >= '0' && line.[!j] <= '9' do
          incr j
        done;
        go !j (Number (int_of_string (String.sub line i (!j - i))) :: acc)
      | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let j = ref i in
        while !j < n && is_ident_char line.[!j] do
          incr j
        done;
        let word = String.sub line i (!j - i) in
        let tok = if String.equal word "output" then Output_kw else Ident word in
        go !j (tok :: acc)
      | c -> fail lineno "unexpected character %C" c
  in
  go 0 []

type ast =
  | Var of string
  | Const of int
  | Bin of Op.kind * ast * ast

(* Precedence climbing: level 0 = '<', level 1 = '+'/'-', level 2 = the
   rest; all left-associative. *)
let level = function
  | Op.Less -> 0
  | Op.Add | Op.Sub -> 1
  | Op.Mul | Op.Div | Op.And | Op.Or | Op.Xor -> 2

let parse_expr lineno tokens =
  let toks = ref tokens in
  let peek () = match !toks with t :: _ -> Some t | [] -> None in
  let advance () = match !toks with _ :: rest -> toks := rest | [] -> () in
  let rec primary () =
    match peek () with
    | Some (Ident v) ->
      advance ();
      Var v
    | Some (Number x) ->
      advance ();
      Const x
    | Some Lparen ->
      advance ();
      let e = expr 0 in
      (match peek () with
      | Some Rparen -> advance ()
      | _ -> fail lineno "expected ')'");
      e
    | _ -> fail lineno "expected identifier, number or '('"
  and expr min_level =
    let left = ref (primary ()) in
    let continue = ref true in
    while !continue do
      match peek () with
      | Some (Operator k) when level k >= min_level ->
        advance ();
        let right = expr (level k + 1) in
        left := Bin (k, !left, right)
      | _ -> continue := false
    done;
    !left
  in
  let e = expr 0 in
  (e, !toks)

type builder = {
  mutable ops : Op.t list;  (* reversed *)
  mutable defined : string list;
  mutable declared_outputs : string list;
  mutable temp : int;
  cse : (Op.kind * string * string, string) Hashtbl.t;
  constants : (int, string) Hashtbl.t;
}

let lower b lineno target ast =
  let rec go = function
    | Var v -> v
    | Const x -> (
      match Hashtbl.find_opt b.constants x with
      | Some v -> v
      | None ->
        let v = Printf.sprintf "k%d" x in
        if List.mem v b.defined then fail lineno "constant name %s collides" v;
        Hashtbl.replace b.constants x v;
        v)
    | Bin (kind, l, r) ->
      let lv = go l and rv = go r in
      let key =
        (* commutative operations share both orientations *)
        if Op.commutative kind && String.compare rv lv < 0 then (kind, rv, lv)
        else (kind, lv, rv)
      in
      (match Hashtbl.find_opt b.cse key with
      | Some v -> v
      | None ->
        b.temp <- b.temp + 1;
        let out = Printf.sprintf "t%d" b.temp in
        let id = Printf.sprintf "%s%d" (Op.symbol kind) b.temp in
        b.ops <- { Op.id; kind; left = lv; right = rv; out } :: b.ops;
        Hashtbl.replace b.cse key out;
        out)
  in
  match ast with
  | Bin (kind, l, r) ->
    (* the root takes the statement's target name directly *)
    let lv = go l and rv = go r in
    b.temp <- b.temp + 1;
    let id = Printf.sprintf "%s%d" (Op.symbol kind) b.temp in
    b.ops <- { Op.id; kind; left = lv; right = rv; out = target } :: b.ops;
    let key =
      if Op.commutative kind && String.compare rv lv < 0 then (kind, rv, lv)
      else (kind, lv, rv)
    in
    Hashtbl.replace b.cse key target
  | Var v ->
    fail lineno "aliasing %s = %s is not supported (registers hold values, not names)"
      target v
  | Const _ -> fail lineno "constant assignment to %s is not supported" target

let parse_diags ~name ?max_errors text =
  let coll = Diagnostic.collector ?max_errors () in
  let emit ?line msg = Diagnostic.emit coll (Diagnostic.error ?line msg) in
  let b =
    {
      ops = [];
      defined = [];
      declared_outputs = [];
      temp = 0;
      cse = Hashtbl.create 32;
      constants = Hashtbl.create 8;
    }
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      (* split statements on ';' *)
      let chunks = String.split_on_char ';' line in
      List.iter
        (fun chunk ->
          (* Statement-level recovery: a bad statement is reported and
             skipped; later statements still parse, so one run reports
             every problem in the text. *)
          try
            match tokenize lineno chunk with
            | [] -> ()
            | Output_kw :: rest ->
              List.iter
                (function
                  | Ident v -> b.declared_outputs <- b.declared_outputs @ [ v ]
                  | _ -> fail lineno "output directive takes identifiers")
                rest
            | Ident target :: Equals :: rest ->
              if List.mem target b.defined then fail lineno "%s defined twice" target;
              let ast, leftover = parse_expr lineno rest in
              if leftover <> [] then fail lineno "trailing tokens after expression";
              lower b lineno target ast;
              b.defined <- target :: b.defined
            | _ -> fail lineno "expected 'name = expr' or 'output ...'"
          with Error_at (l, m) -> emit ?line:l m)
        chunks)
    lines;
  let ops = List.rev b.ops in
  if ops = [] then begin
    emit "no statements";
    Error (Diagnostic.all coll)
  end
  else begin
    let produced = List.map (fun (o : Op.t) -> o.Op.out) ops in
    let used v =
      List.exists (fun (o : Op.t) -> String.equal o.Op.left v || String.equal o.Op.right v) ops
    in
    let inputs =
      List.concat_map (fun (o : Op.t) -> [ o.Op.left; o.Op.right ]) ops
      |> List.sort_uniq compare
      |> List.filter (fun v -> not (List.mem v produced))
    in
    let outputs =
      List.sort_uniq compare
        (b.declared_outputs @ List.filter (fun v -> not (used v)) produced)
    in
    List.iter
      (fun v ->
        if not (List.mem v produced) then
          emit (Printf.sprintf "declared output %s is never defined" v))
      outputs;
    if Diagnostic.errors coll > 0 then Error (Diagnostic.all coll)
    else Ok { Scheduler.name; ops; inputs; outputs }
  end

(* Reconstruct the legacy single-error message (with its "line N: "
   prefix when located) byte-identically. *)
let render_first diags =
  match
    List.find_opt (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error) diags
  with
  | Some d ->
    (match d.Diagnostic.line with
    | Some l -> Printf.sprintf "line %d: %s" l d.Diagnostic.message
    | None -> d.Diagnostic.message)
  | None -> "invalid input" (* unreachable: Error lists always carry an error *)

let parse ~name text =
  match parse_diags ~name text with
  | Ok problem -> Ok problem
  | Error diags -> Error (render_first diags)

let compile_diags ~name ?(resources = []) ?max_errors text =
  match parse_diags ~name ?max_errors text with
  | Error _ as e -> e
  | Ok problem ->
    let schedule =
      if resources = [] then Scheduler.asap problem
      else Scheduler.list_schedule problem ~resources
    in
    Dfg.make_diags ?max_errors ~name:problem.Scheduler.name ~ops:problem.Scheduler.ops
      ~inputs:problem.Scheduler.inputs ~outputs:problem.Scheduler.outputs ~schedule ()

let compile ~name ?(resources = []) text =
  match compile_diags ~name ~resources text with
  | Ok dfg -> Ok dfg
  | Error diags -> Error (render_first diags)
