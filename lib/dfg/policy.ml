type t = {
  allocate_inputs : bool;
  carried : (string * string) list;
}

let default = { allocate_inputs = true; carried = [] }

let dedicated_io = { allocate_inputs = false; carried = [] }

let with_carried carried = { allocate_inputs = false; carried }

let fail fmt = Format.kasprintf invalid_arg fmt

let validate dfg t =
  if t.carried <> [] && t.allocate_inputs then
    fail "Policy: carried variables require allocate_inputs = false";
  let targets = List.map snd t.carried in
  if List.length (List.sort_uniq compare targets) <> List.length targets then
    fail "Policy: two results carried into the same input register";
  let sources = List.map fst t.carried in
  if List.length (List.sort_uniq compare sources) <> List.length sources then
    fail "Policy: a result carried into two input registers";
  List.iter
    (fun (w, v) ->
      (match Dfg.producer dfg w with
      | None -> fail "Policy: carried result %s is not produced by any operation" w
      | Some producer ->
        (* The write-back overwrites the input's register at the end of
           the producing step; every read of the input must be over by
           then (loop-carried timing). *)
        let produced_at = Dfg.cstep dfg producer.Op.id in
        List.iter
          (fun (consumer : Op.t) ->
            let used_at = Dfg.cstep dfg consumer.id in
            if used_at > produced_at then
              fail "Policy: %s still reads %s in step %d after %s overwrites it in step %d"
                consumer.id v used_at w produced_at)
          (Dfg.consumers dfg v));
      if not (List.mem v dfg.Dfg.inputs) then
        fail "Policy: carry target %s is not a primary input" v;
      if Dfg.consumers dfg v = [] then
        fail "Policy: carry target %s is never read" v)
    t.carried

let carried_into t w = List.assoc_opt w t.carried

let allocatable dfg t v =
  match Dfg.producer dfg v with
  | None -> t.allocate_inputs && Dfg.consumers dfg v <> []
  | Some _ -> carried_into t v = None
