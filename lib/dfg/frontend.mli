(** Behavioural front end: compile a small expression language to an
    (unscheduled) operation list, so a design can be written as formulas
    rather than hand-numbered operations.

    {v
    # differential-equation solver body
    x1 = x + dx;
    u1 = u - 3 * x * u * dx - 3 * y * dx;
    y1 = y + u * dx;
    cc = x1 < a;
    v}

    Grammar (per statement, [;] or newline separated, [#] comments):
    [name = expr] with [expr] over identifiers, parentheses and the
    binary operators [+ - * / & | ^ <]; [* / & | ^] bind tighter than
    [+ -], which bind tighter than [<]; same-precedence operators
    associate left. Numeric literals denote constant input ports and
    become inputs named [kN].

    Undefined names are primary inputs; defined-but-unused names are
    primary outputs (plus anything listed in an [output a b c]
    directive). Common subexpressions are shared (hash-consing), and
    every intermediate node gets a fresh [tN] variable. *)

val parse : name:string -> string -> (Scheduler.problem, string) result
(** Compile to an unscheduled problem; the error carries a line number
    (the first diagnostic of {!parse_diags}). *)

val parse_diags :
  name:string ->
  ?max_errors:int ->
  string ->
  (Scheduler.problem, Bistpath_resilience.Diagnostic.t list) result
(** Accumulating {!parse}: a bad statement is reported (with its line
    number) and skipped rather than aborting, so one run surfaces every
    problem in the text, capped at [max_errors]
    ({!Bistpath_resilience.Diagnostic.default_max_errors} by default). *)

val compile :
  name:string ->
  ?resources:(Op.kind * int) list ->
  string ->
  (Dfg.t, string) result
(** {!parse} followed by resource-constrained list scheduling (default:
    unconstrained — every operation as early as possible). *)

val compile_diags :
  name:string ->
  ?resources:(Op.kind * int) list ->
  ?max_errors:int ->
  string ->
  (Dfg.t, Bistpath_resilience.Diagnostic.t list) result
(** Accumulating {!compile}: parse diagnostics, or — when parsing
    succeeded — every DFG validation violation
    ({!Dfg.make_diags}) instead of only the first. *)
