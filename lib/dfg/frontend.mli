(** Behavioural front end: compile a small expression language to an
    (unscheduled) operation list, so a design can be written as formulas
    rather than hand-numbered operations.

    {v
    # differential-equation solver body
    x1 = x + dx;
    u1 = u - 3 * x * u * dx - 3 * y * dx;
    y1 = y + u * dx;
    cc = x1 < a;
    v}

    Grammar (per statement, [;] or newline separated, [#] comments):
    [name = expr] with [expr] over identifiers, parentheses and the
    binary operators [+ - * / & | ^ <]; [* / & | ^] bind tighter than
    [+ -], which bind tighter than [<]; same-precedence operators
    associate left. Numeric literals denote constant input ports and
    become inputs named [kN].

    Undefined names are primary inputs; defined-but-unused names are
    primary outputs (plus anything listed in an [output a b c]
    directive). Common subexpressions are shared (hash-consing), and
    every intermediate node gets a fresh [tN] variable. *)

val parse : name:string -> string -> (Scheduler.problem, string) result
(** Compile to an unscheduled problem; the error carries a line number. *)

val compile :
  name:string ->
  ?resources:(Op.kind * int) list ->
  string ->
  (Dfg.t, string) result
(** {!parse} followed by resource-constrained list scheduling (default:
    unconstrained — every operation as early as possible). *)
