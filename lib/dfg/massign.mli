(** Module assignment sigma : V -> M (Section III) and the derived
    per-module variable sets of Definitions 2 and 3. *)

type hw = {
  mid : string;  (** module instance name, e.g. "M1", "ALU2" *)
  kinds : Op.kind list;  (** operations the unit can perform *)
}
(** A hardware functional unit. A unit with more than one kind is an ALU. *)

type t = {
  units : hw list;
  of_op : string Dfg.Smap.t;  (** op id -> module id *)
}

val make : Dfg.t -> units:hw list -> bind:(string * string) list -> t
(** Validate a module assignment for a DFG: every operation bound exactly
    once, to an existing unit supporting its kind, and no two operations
    on the same unit in the same control step. Raises [Invalid_argument]
    on violations. *)

val unit_of_op : t -> string -> hw
(** Unit an operation id is bound to. Raises [Not_found]. *)

val instances : t -> Dfg.t -> string -> Op.t list
(** [instances t dfg mid]: operations mapped to unit [mid], in schedule
    order — the "instances" of that module. *)

val temporal_multiplicity : t -> Dfg.t -> string -> int
(** Definition 2: TM(M) = number of operations mapped onto M. *)

val input_variable_set : t -> Dfg.t -> string -> Dfg.Sset.t
(** Definition 3: I_M, all operand variables over all instances of M. *)

val output_variable_set : t -> Dfg.t -> string -> Dfg.Sset.t
(** Definition 3: O_M, all result variables over all instances of M. *)

val instance_operands : t -> Dfg.t -> string -> Dfg.Sset.t list
(** Per-instance operand sets I_M^j in schedule order (used by Lemma 2,
    which quantifies over instances). *)

val describe : t -> Dfg.t -> string
(** Short summary like "1+, 2*, 1-" (Table I's "Module Assignment"
    column): counts of units by capability. *)

val pp : Format.formatter -> t -> unit
