module Interval = Bistpath_graphs.Interval
module Ugraph = Bistpath_graphs.Ugraph
module Chordal = Bistpath_graphs.Chordal

let span t v =
  let uses = Dfg.consumers t v in
  let birth =
    match Dfg.producer t v with
    | Some op -> Dfg.cstep t op.Op.id
    | None -> (
      match uses with
      | [] ->
        invalid_arg
          (Printf.sprintf "Lifetime.span: primary input %s is never used" v)
      | _ ->
        let first = List.fold_left (fun acc op -> min acc (Dfg.cstep t op.Op.id)) max_int uses in
        first - 1)
  in
  let death =
    match uses with
    | [] -> birth + 1
    | _ -> List.fold_left (fun acc op -> max acc (Dfg.cstep t op.Op.id)) 0 uses
  in
  { Interval.birth; death }

let spans ?(policy = Policy.default) t =
  Policy.validate t policy;
  Dfg.variables t
  |> List.filter_map (fun v ->
         if Policy.allocatable t policy v then Some (v, span t v) else None)

type indexing = { to_index : string -> int; of_index : int -> string; count : int }

let indexing ?(policy = Policy.default) t =
  let names = List.map fst (spans ~policy t) in
  let arr = Array.of_list names in
  let tbl = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace tbl v i) arr;
  {
    to_index =
      (fun v ->
        match Hashtbl.find_opt tbl v with
        | Some i -> i
        | None -> invalid_arg (Printf.sprintf "Lifetime.indexing: unknown variable %s" v));
    of_index = (fun i -> arr.(i));
    count = Array.length arr;
  }

let conflict_graph ?(policy = Policy.default) t =
  let idx = indexing ~policy t in
  let labelled = List.map (fun (v, s) -> (idx.to_index v, s)) (spans ~policy t) in
  (Interval.graph labelled, idx)

let min_registers ?(policy = Policy.default) t =
  let g, _ = conflict_graph ~policy t in
  Chordal.clique_number g
