(** Textual DFG format, round-trippable with {!to_string}:

    {v
    # comment
    dfg ex1
    input a b e g
    output h
    op +1 = a + b -> d @ 1
    op *2 = e * g -> h @ 3
    v}

    The "@ step" suffix is optional on every [op] line; if any is missing
    the result is unscheduled and must be completed with {!Scheduler}
    before use (parse then returns the raw pieces). *)

type unscheduled = {
  name : string;
  ops : Op.t list;
  inputs : string list;
  outputs : string list;
  partial_schedule : (string * int) list;
}

val parse_string : string -> (unscheduled, string) result
(** Parse; the error is a human-readable message with a line number
    (the first diagnostic of {!parse_string_diags}). *)

val parse_file : string -> (unscheduled, string) result

val parse_string_diags :
  ?max_errors:int -> string -> unscheduled * Bistpath_resilience.Diagnostic.t list
(** Accumulating parse: a malformed line is reported (with its line
    number) and skipped rather than aborting, so one run surfaces every
    problem in the file, capped at [max_errors]
    ({!Bistpath_resilience.Diagnostic.default_max_errors} by default).
    The returned pieces cover every line that did parse; they are only
    meaningful when the diagnostic list carries no error. *)

val parse_file_diags :
  ?max_errors:int -> string -> unscheduled * Bistpath_resilience.Diagnostic.t list
(** {!parse_string_diags} on a file's contents, with the path attached
    to every diagnostic. An unreadable file yields one error. *)

val to_dfg : unscheduled -> (Dfg.t, string) result
(** Requires every operation scheduled; validates via {!Dfg.make}. *)

val to_dfg_diags :
  ?max_errors:int ->
  unscheduled ->
  (Dfg.t, Bistpath_resilience.Diagnostic.t list) result
(** Accumulating {!to_dfg}: reports {e every} unscheduled operation, or
    every validation violation ({!Dfg.make_diags}), instead of only the
    first. *)

val to_string : Dfg.t -> string
(** Render in the accepted format. *)
