(** Textual DFG format, round-trippable with {!to_string}:

    {v
    # comment
    dfg ex1
    input a b e g
    output h
    op +1 = a + b -> d @ 1
    op *2 = e * g -> h @ 3
    v}

    The "@ step" suffix is optional on every [op] line; if any is missing
    the result is unscheduled and must be completed with {!Scheduler}
    before use (parse then returns the raw pieces). *)

type unscheduled = {
  name : string;
  ops : Op.t list;
  inputs : string list;
  outputs : string list;
  partial_schedule : (string * int) list;
}

val parse_string : string -> (unscheduled, string) result
(** Parse; the error is a human-readable message with a line number. *)

val parse_file : string -> (unscheduled, string) result

val to_dfg : unscheduled -> (Dfg.t, string) result
(** Requires every operation scheduled; validates via {!Dfg.make}. *)

val to_string : Dfg.t -> string
(** Render in the accepted format. *)
