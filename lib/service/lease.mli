(** Shared-spool job leases for the worker fleet.

    The lock-free claim substrate fleet mode is built on: one file per
    job under a fleet root directory, moved between states with atomic
    [rename] so any number of crash-prone worker processes can claim
    work without locks, and a dead worker's claims can be recovered by
    the supervisor.

    {v
    <root>/
      pending/<id>.job        durable queue: jobs nobody owns
      claimed/<slot>/<id>.job leases held by the worker on <slot>
      hb/<slot>               heartbeat file, rewritten every beat
      eof                     marker: ingestion is finished
    v}

    A lease file is one JSON object [{"job":{...},"attempts":n}] —
    the full spec plus how many attempts have ever {e started} on it,
    so a claim after a crash (or a steal) knows how much retry budget
    remains without replaying any journal.

    {b Claim protocol.} [claim] renames [pending/<id>.job] into the
    worker's own [claimed/<slot>/] directory. [rename] within a
    filesystem is atomic: exactly one claimant wins, the loser sees
    [ENOENT] and moves on. No lock, no shared descriptor, no window
    where the job is in neither directory.

    {b Recovery.} Every state transition is a whole-file rename or an
    atomic rewrite, so a SIGKILL at any instant leaves each job in
    exactly one well-defined place: [pending/] (unclaimed), or
    [claimed/<slot>/] (the supervisor steals it back with {!requeue}
    when the worker dies or its heartbeat expires).

    Fault-injection sites: [fleet.claim] (a claim rename fails — the
    claimant skips the file this poll; the pending lease is never
    lost) and [fleet.heartbeat] (a beat write fails — the worker keeps
    running; at worst a stale heartbeat provokes a steal, which
    re-runs the job byte-identically). *)

type t
(** A fleet root with its directory layout created. *)

type lease = { job : Job.t; attempts : int }
(** [attempts] = attempts ever started on the job (across all workers
    and incarnations). *)

val create : root:string -> slots:int -> t
(** Create (or reuse) the layout under [root] with claim directories
    for slots [0 .. slots-1]. Raises [Sys_error] on unusable paths. *)

val root : t -> string

val reset : t -> unit
(** Remove every lease, heartbeat and the eof marker — a fresh start
    (new run, or a resume about to rebuild [pending/] from the merged
    journal). The directories themselves remain. *)

val submit : t -> lease -> unit
(** Atomically publish a lease into [pending/] (tmp + rename), making
    it claimable. Overwrites any previous lease of the same id. *)

val claim : t -> slot:int -> lease option
(** Scan [pending/] in sorted id order and atomically take the first
    claimable job into [claimed/<slot>/]. [None] when nothing was
    claimable this poll (empty, lost every race, or an injected
    [fleet.claim] fault). An unparsable pending file is deleted and
    skipped — it can only be a foreign artifact, since {!submit} is
    atomic. *)

val update : t -> slot:int -> lease -> unit
(** Atomically rewrite a held lease (bump [attempts] before starting
    one), so a crash mid-attempt is visible to the stealer. *)

val release : t -> slot:int -> string -> unit
(** Delete a held lease — the job reached a terminal state (result
    committed or given up). Tolerates the file already being gone (a
    steal won the race; re-runs are byte-identical). *)

val return_ : t -> slot:int -> lease -> unit
(** Publish a held lease back to [pending/] and drop the claim — a
    drained worker handing back work it will not finish. *)

val held : t -> slot:int -> lease list
(** The leases currently in [claimed/<slot>/], sorted by id — what the
    supervisor inspects before stealing from a dead worker. *)

val requeue : t -> slot:int -> string -> unit
(** Atomically move one held lease back to [pending/] (the steal).
    Tolerates the file already being gone. *)

val discard : t -> slot:int -> string -> unit
(** Delete one held lease without requeueing (its retry budget is
    exhausted; the caller records the give-up). *)

val pending_count : t -> int
val held_count : t -> int
(** Leases across all slots' claim directories. *)

val mark_eof : t -> unit
(** Ingestion is finished: workers seeing an empty [pending/] after
    this may exit instead of polling. *)

val eof : t -> bool

val beat : t -> slot:int -> unit
(** Rewrite the slot's heartbeat file. Raises [Sys_error] on I/O
    failure or an injected [fleet.heartbeat] fault — callers tolerate
    and keep working. *)

val beat_mtime : t -> slot:int -> float option
(** Wall-clock mtime of the slot's last heartbeat, for expiry checks
    against [Unix.gettimeofday]. [None] before the first beat. *)
