(** Per-class circuit breakers.

    One breaker per job class (pipeline name). The classic three-state
    machine:

    - {b closed} — jobs run normally; [threshold] {e consecutive}
      failures trip the breaker open (one success resets the streak).
    - {b open} — jobs of the class are rejected without running, so a
      poisoned pipeline degrades its own class instead of burning the
      queue's time; after [cooldown_s] the next check admits a single
      probe (half-open).
    - {b half-open} — a probe has been admitted; its success closes
      the breaker, its failure re-opens it for another cooldown. If
      the probe resolves without a verdict (its job was retired
      without reporting {!success} or {!failure} — an invalid-input
      give-up, say), the next {!check} admits a fresh probe instead of
      rejecting, so the class can never starve behind a verdict that
      will never arrive.

    The registry is single-owner (the supervisor loop); it is not
    domain-safe. Time comes from an injectable monotonic nanosecond
    clock so tests can drive the state machine deterministically.

    Telemetry: each closed/half-open → open transition increments
    [service.breaker_trips]; the [service.breaker_open] gauge tracks
    how many classes are currently open or half-open. *)

type t

val create : ?clock:(unit -> int64) -> threshold:int -> cooldown_s:float -> unit -> t
(** [threshold >= 1] ([Invalid_argument] otherwise); [clock] defaults
    to the monotonic clock. *)

type decision =
  | Allow  (** closed: run the job *)
  | Probe
      (** open past cooldown (or half-open with the previous probe's
          verdict never reported): run it as the half-open probe *)
  | Reject of float
      (** open: fail fast; the payload is seconds until the next
          probe would be admitted *)

val check : t -> string -> decision
(** Decide for one class; [Probe] transitions the class to half-open
    as a side effect (the caller must then report {!success} or
    {!failure} for that class before asking again). *)

val success : t -> string -> unit

val failure : t -> string -> bool
(** [true] when this failure tripped the class open (from closed or
    half-open) — the caller's cue to count a breaker trip. *)

val open_count : t -> int
(** Classes currently open or half-open. *)

val state_name : t -> string -> string
(** ["closed"], ["open"] or ["half_open"] — for logs and stats. *)

val states : t -> (string * string) list
(** Every class the breaker has ever seen with its current state name,
    sorted by class — the [--metrics] snapshot exports these as
    [service.breaker.<class>] gauges. *)
