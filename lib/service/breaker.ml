module Telemetry = Bistpath_telemetry.Telemetry

type state =
  | Closed of int  (* consecutive failures so far *)
  | Open of int64  (* opened at (clock ns) *)
  | Half_open

type t = {
  clock : unit -> int64;
  threshold : int;
  cooldown_ns : int64;
  tbl : (string, state) Hashtbl.t;
}

let create ?(clock = Monotonic_clock.now) ~threshold ~cooldown_s () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
  if cooldown_s < 0.0 then invalid_arg "Breaker.create: cooldown_s must be >= 0";
  {
    clock;
    threshold;
    cooldown_ns = Int64.of_float (cooldown_s *. 1e9);
    tbl = Hashtbl.create 8;
  }

let state t cls =
  match Hashtbl.find_opt t.tbl cls with Some s -> s | None -> Closed 0

let open_count t =
  Hashtbl.fold
    (fun _ s acc -> match s with Open _ | Half_open -> acc + 1 | Closed _ -> acc)
    t.tbl 0

let publish_gauge t = Telemetry.set "service.breaker_open" (open_count t)

type decision = Allow | Probe | Reject of float

let check t cls =
  match state t cls with
  | Closed _ -> Allow
  | Half_open ->
    (* The supervisor runs one job at a time and reports its verdict
       before checking again, so observing half-open here means the
       previous probe resolved without feeding the breaker (e.g. an
       invalid-input give-up, which says nothing about the pipeline's
       health). Admit a fresh probe rather than reject: a zero-wait
       reject would make the caller busy-poll — or starve the class
       outright if no verdict is ever coming. *)
    Probe
  | Open since ->
    let elapsed = Int64.sub (t.clock ()) since in
    if elapsed >= t.cooldown_ns then begin
      Hashtbl.replace t.tbl cls Half_open;
      Probe
    end
    else Reject (Int64.to_float (Int64.sub t.cooldown_ns elapsed) /. 1e9)

let success t cls =
  Hashtbl.replace t.tbl cls (Closed 0);
  publish_gauge t

let trip t cls =
  Hashtbl.replace t.tbl cls (Open (t.clock ()));
  Telemetry.incr "service.breaker_trips";
  publish_gauge t

let failure t cls =
  match state t cls with
  | Closed n ->
    if n + 1 >= t.threshold then begin
      trip t cls;
      true
    end
    else begin
      Hashtbl.replace t.tbl cls (Closed (n + 1));
      false
    end
  | Half_open ->
    (* failed probe: back to open, fresh cooldown *)
    trip t cls;
    true
  | Open _ ->
    Hashtbl.replace t.tbl cls (Open (t.clock ()));
    false

let state_name t cls =
  match state t cls with
  | Closed _ -> "closed"
  | Open _ -> "open"
  | Half_open -> "half_open"

let states t =
  Hashtbl.fold (fun cls _ acc -> (cls, state_name t cls) :: acc) t.tbl []
  |> List.sort compare
