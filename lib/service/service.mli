(** Supervised batch service: a crash-isolated job runner.

    [run config] ingests NDJSON job specs (one per line) from a spool
    directory (every [.ndjson]/[.jsonl]/[.json] file, in sorted order)
    or stdin into a bounded in-memory queue — ingestion stops while
    the queue is at [queue_cap] and resumes as jobs drain
    (backpressure) — and executes jobs one at a time on the
    supervising domain; each job's parallel stages fan out on the
    shared {!Bistpath_parallel.Pool}, and each job runs under its own
    {!Bistpath_resilience.Budget} watchdog (deadline / leaf quota from
    the spec or the configured defaults, plus a cancellation token the
    drain signal pulls).

    {b Crash isolation.} Any exception a job raises — bad input,
    injected fault, allocator bug — becomes a typed per-job record in
    the journal, never a daemon crash. Failed attempts retry with
    exponential backoff and deterministic jitter (a
    {!Bistpath_util.Prng} stream derived from the seed and the job
    id), capped at [max_attempts]; invalid specs and invalid input
    designs are deterministic failures and give up immediately. A
    per-class circuit {!Breaker} (class = pipeline name) fails a
    poisoned job class fast instead of letting it monopolize the
    queue.

    {b Crash safety.} Every transition is journaled ({!Journal}) with
    an fsync before the next step; result files are committed with
    tmp+rename+fsync {e before} their [done] record. Re-running after
    a hard kill with [resume = true] replays the journal, skips
    terminal jobs and re-executes the rest; because pipelines are
    deterministic, the final result set is byte-identical to an
    uninterrupted run, with each result appearing exactly once.

    {b Graceful drain.} SIGINT/SIGTERM (or {!request_drain}) stops
    ingestion, cancels the in-flight job's token so it unwinds
    cooperatively (its partial work is discarded and the job stays
    pending for [resume]), journals a [drain] checkpoint and returns
    with [stats.drained = true]; the CLI then exits 3 if work was left
    pending, per the degraded-exit protocol.

    Telemetry: the [service.*] counters and gauges documented in
    {!Bistpath_telemetry.Telemetry}. Fault-injection sites:
    [service.worker], [service.result_io], [service.journal]. *)

type source =
  | Spool_dir of string
  | Stdin  (** read NDJSON job specs from standard input until EOF *)

type config = {
  source : source;
  out_dir : string;  (** per-job [<id>.out] / [<id>.err] artifacts *)
  journal_path : string;
  resume : bool;
      (** replay the journal and skip terminal jobs. When [false], a
          non-empty journal is refused ([Sys_error]) so two runs
          cannot interleave one history. *)
  max_attempts : int;  (** >= 1; retry budget per job *)
  retry_base_ms : float;  (** backoff base; attempt [n] waits
          [base * 2^(n-1)] scaled by jitter in [0.5, 1.5) *)
  breaker_threshold : int;  (** consecutive failures to trip a class *)
  breaker_cooldown_s : float;  (** open time before a half-open probe *)
  queue_cap : int;  (** >= 1; ingestion backpressure bound *)
  job_delay_ms : int;
      (** artificial pause before each attempt — a determinism aid for
          crash/drain tests and demos; 0 in production *)
  default_timeout_s : float option;  (** per-job deadline default *)
  default_leaf_budget : int option;
  seed : int;  (** root of the per-job jitter streams *)
  verbose : bool;  (** per-job progress lines on stderr *)
  metrics_path : string option;
      (** write a Prometheus text-exposition snapshot
          ({!Bistpath_telemetry.Telemetry.prometheus_text}) here,
          atomically (tmp+rename), refreshed at most every
          [metrics_interval_ms] plus once on shutdown — queue depth,
          per-class breaker states, retry counts, job-latency
          quantiles. If no telemetry recorder is installed the
          supervisor owns one for the daemon's lifetime. *)
  metrics_interval_ms : int;  (** >= 1; snapshot refresh period *)
  trace_dir : string option;
      (** write one Chrome-trace file per job ([<id>.trace.json],
          atomic rename) instead of relying on a single flat
          daemon-lifetime trace; per-job scalar aggregates still fold
          into the installed recorder *)
  trace_keep : int;
      (** >= 1; per-job trace files kept on disk — oldest are removed
          beyond this ring bound *)
  cache_dir : string option;
      (** attach a content-addressed result cache
          ({!Bistpath_cache.Store}) rooted here: warm [run]/[rtl]/
          [pareto] jobs are served byte-identical without re-running
          the pipeline (their latency lands in the separate
          [service.job_ns_cached] histogram, and the journal's [Done]
          records carry [cache = hit/miss]). An unusable directory
          degrades to an uncached service with a warning — never a
          startup failure. [None] (the default) runs uncached. *)
  cache_max_mb : int option;
      (** on-disk cap for the result cache; oldest-used entries are
          evicted past it *)
  workers : int;
      (** 0 (the default) runs jobs in-process as described above;
          [workers >= 1] is fleet mode — {!Fleet.run} forks that many
          crash-isolated worker processes claiming jobs from a shared
          {!Lease} spool. {!run} itself always executes in-process;
          the CLI dispatches on this field. *)
  heartbeat_interval_ms : int;  (** >= 1; fleet worker beat period *)
  lease_expiry_ms : int;
      (** >= 1; a fleet worker whose heartbeat is older than this is
          presumed wedged: it is killed and its leases are stolen back
          to the pending queue *)
}

val default_config : source -> config
(** [out_dir]/[journal_path] beside the spool (or under the current
    directory for [Stdin]); [max_attempts = 3]; [retry_base_ms = 100];
    [breaker_threshold = 3]; [breaker_cooldown_s = 1.0];
    [queue_cap = 64]; no default budgets; [seed = 0x5E41CE];
    [verbose = true]; no metrics snapshot ([metrics_interval_ms =
    1000]); no per-job traces ([trace_keep = 32]); no result cache;
    in-process ([workers = 0], [heartbeat_interval_ms = 250],
    [lease_expiry_ms = 5000]). *)

type stats = {
  accepted : int;  (** specs admitted to the queue this run *)
  completed : int;  (** jobs that committed a complete result *)
  degraded : int;  (** jobs that committed a best-so-far result *)
  failed : int;
      (** jobs that ran and failed permanently (retries exhausted,
          invalid input design, or static-check findings) — rejected
          specs are counted separately in [rejected_specs] *)
  rejected_specs : int;  (** unparsable/invalid NDJSON lines *)
  retries : int;  (** attempts re-queued with backoff *)
  breaker_trips : int;
  journal_errors : int;  (** appends lost after bounded retries *)
  pending : int;  (** jobs left unfinished (only after a drain) *)
  drained : bool;
  workers : int;  (** fleet width; 0 for an in-process run *)
  worker_deaths_signal : int;
      (** fleet workers that died by signal (SIGKILL, SIGSEGV, OOM
          kill); their leases were stolen back and re-run *)
  worker_deaths_exit : int;
      (** fleet workers that exited nonzero (a bug in the worker loop
          itself — never caused by a job, which becomes a typed
          failure record instead) *)
  lease_steals : int;
      (** leases reclaimed from workers whose heartbeat expired (a
          wedged or SIGSTOPped worker, killed and replaced) *)
  worker_restarts : int;  (** replacement workers forked, with backoff *)
}

val run : config -> stats
(** Returns when the spool is exhausted and every accepted job is
    terminal, or when a drain was requested. Signal handlers for
    SIGINT/SIGTERM are installed for the duration and restored on
    exit. Raises [Sys_error] only for setup errors (unreadable spool
    directory, refused journal) — never for job failures. *)

val request_drain : unit -> unit
(** What the signal handlers call: stop ingesting, cancel the
    in-flight job cooperatively, checkpoint and return. Exposed for
    embedding and tests. *)

val spec_source : config -> unit -> (string * string) option
(** The spool/stdin reader {!run} ingests from: yields
    [(default_id, ndjson_line)] per spec, skipping blank lines and the
    journal file (identified by inode, so no path alias of it can be
    ingested as job specs). Exposed for {!Fleet.run}, which shares
    ingestion semantics exactly. *)
