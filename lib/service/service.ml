module Atomic_io = Bistpath_util.Atomic_io
module Prng = Bistpath_util.Prng
module Telemetry = Bistpath_telemetry.Telemetry
module Budget = Bistpath_resilience.Budget
module Cancel = Bistpath_resilience.Cancel
module Inject = Bistpath_resilience.Inject

type source = Spool_dir of string | Stdin

type config = {
  source : source;
  out_dir : string;
  journal_path : string;
  resume : bool;
  max_attempts : int;
  retry_base_ms : float;
  breaker_threshold : int;
  breaker_cooldown_s : float;
  queue_cap : int;
  job_delay_ms : int;
  default_timeout_s : float option;
  default_leaf_budget : int option;
  seed : int;
  verbose : bool;
  metrics_path : string option;
  metrics_interval_ms : int;
  trace_dir : string option;
  trace_keep : int;
  cache_dir : string option;
  cache_max_mb : int option;
  workers : int;
  heartbeat_interval_ms : int;
  lease_expiry_ms : int;
}

let default_config source =
  let base = match source with Spool_dir d -> d | Stdin -> "." in
  {
    source;
    out_dir = Filename.concat base "results";
    journal_path = Filename.concat base "journal.ndjson";
    resume = false;
    max_attempts = 3;
    retry_base_ms = 100.0;
    breaker_threshold = 3;
    breaker_cooldown_s = 1.0;
    queue_cap = 64;
    job_delay_ms = 0;
    default_timeout_s = None;
    default_leaf_budget = None;
    seed = 0x5E41CE;
    verbose = true;
    metrics_path = None;
    metrics_interval_ms = 1000;
    trace_dir = None;
    trace_keep = 32;
    cache_dir = None;
    cache_max_mb = None;
    workers = 0;
    heartbeat_interval_ms = 250;
    lease_expiry_ms = 5000;
  }

type stats = {
  accepted : int;
  completed : int;
  degraded : int;
  failed : int;
  rejected_specs : int;
  retries : int;
  breaker_trips : int;
  journal_errors : int;
  pending : int;
  drained : bool;
  workers : int;
  worker_deaths_signal : int;
  worker_deaths_exit : int;
  lease_steals : int;
  worker_restarts : int;
}

(* --- drain signalling ---------------------------------------------- *)

let drain_flag = Atomic.make false
let current_cancel : Cancel.t option ref = ref None
let drain_cause = "drain requested (SIGINT/SIGTERM)"

let request_drain () =
  Atomic.set drain_flag true;
  match !current_cancel with
  | Some c -> ignore (Cancel.cancel c (Cancel.Cancelled drain_cause))
  | None -> ()

let draining () = Atomic.get drain_flag

(* --- helpers ------------------------------------------------------- *)

let mkdir_p = Atomic_io.mkdir_p
let now_ns () = Monotonic_clock.now ()

(* Per-job jitter stream: deterministic in (seed, id) only — stable
   across restarts and independent of accept order. *)
let job_prng ~seed id = Prng.split (Prng.create (seed lxor Hashtbl.hash id))

(* One spec line at a time from the spool or stdin, with a
   deterministic default id per line. *)
let spec_source cfg =
  match cfg.source with
  | Stdin ->
    let n = ref 0 in
    let rec next () =
      match In_channel.input_line stdin with
      | None -> None
      | Some line when String.trim line = "" -> next ()
      | Some line ->
        incr n;
        Some (Printf.sprintf "stdin-%d" !n, line)
    in
    next
  | Spool_dir dir ->
    if not (Sys.file_exists dir && Sys.is_directory dir) then
      raise (Sys_error (dir ^ ": no such spool directory"));
    let spool_file f =
      Filename.check_suffix f ".ndjson"
      || Filename.check_suffix f ".jsonl"
      || Filename.check_suffix f ".json"
    in
    (* The journal often lives inside the spool directory and would
       match the glob; identify it by inode so no alias of its path can
       ever be ingested as job specs (it grows while we run — reading
       it back would chase our own appends forever). *)
    let journal_ident =
      try
        let s = Unix.stat cfg.journal_path in
        Some (s.Unix.st_dev, s.Unix.st_ino)
      with Unix.Unix_error _ | Sys_error _ -> None
    in
    let is_journal f =
      match journal_ident with
      | None -> false
      | Some id -> (
        try
          let s = Unix.stat f in
          (s.Unix.st_dev, s.Unix.st_ino) = id
        with Unix.Unix_error _ | Sys_error _ -> false)
    in
    let files =
      Sys.readdir dir |> Array.to_list |> List.filter spool_file
      |> List.sort compare
      |> List.map (Filename.concat dir)
      |> List.filter (fun f -> not (is_journal f))
    in
    let remaining = ref files in
    let current : (string * In_channel.t * int ref) option ref = ref None in
    let rec next () =
      match !current with
      | None -> (
        match !remaining with
        | [] -> None
        | f :: rest ->
          remaining := rest;
          current := Some (Filename.remove_extension (Filename.basename f),
                           In_channel.open_text f, ref 0);
          next ())
      | Some (stem, ic, lineno) -> (
        match In_channel.input_line ic with
        | None ->
          In_channel.close ic;
          current := None;
          next ()
        | Some line ->
          incr lineno;
          if String.trim line = "" then next ()
          else Some (Printf.sprintf "%s-%d" stem !lineno, line))
    in
    next

(* --- the supervisor ------------------------------------------------ *)

type job_rec = {
  job : Job.t;
  prng : Prng.t;
  mutable attempts : int;
  mutable next_ready_ns : int64;  (* backoff gate; 0 = ready now *)
  mutable enqueued_ns : int64;  (* last (re-)enqueue, for queue-wait latency *)
}

type state = {
  cfg : config;
  journal : Journal.t;
  breaker : Breaker.t;
  cache : Bistpath_cache.Store.t option;
  queue : job_rec Queue.t;  (* rotated to skip not-ready entries *)
  known : (string, unit) Hashtbl.t;  (* accepted ids, this run or replayed *)
  mutable s_accepted : int;
  mutable s_completed : int;
  mutable s_degraded : int;
  mutable s_failed : int;
  mutable s_rejected : int;
  mutable s_retries : int;
  mutable s_breaker_trips : int;
  mutable s_journal_errors : int;
  mutable last_metrics_ns : int64;  (* 0 = never written *)
  trace_ring : string Queue.t;  (* per-job trace paths, oldest first *)
}

let log st fmt =
  Printf.ksprintf
    (fun s -> if st.cfg.verbose then Printf.eprintf "serve: %s\n%!" s)
    fmt

(* A lost journal record degrades resume fidelity (the job may re-run),
   never correctness: results are committed atomically and re-runs are
   byte-identical. So: bounded retries, then warn and move on. *)
let journal_append st ev =
  Telemetry.with_span "journal.append" @@ fun () ->
  let rec go n =
    match Journal.append st.journal ev with
    | () -> ()
    | exception Sys_error msg ->
      if n < 4 then go (n + 1)
      else begin
        st.s_journal_errors <- st.s_journal_errors + 1;
        Telemetry.incr "service.journal_errors";
        Printf.eprintf "serve: warning: journal append failed: %s\n%!" msg
      end
  in
  go 0

let publish_queue_depth st =
  Telemetry.set "service.queue_depth" (Queue.length st.queue)

let enqueue st jr =
  jr.enqueued_ns <- now_ns ();
  Queue.add jr st.queue;
  publish_queue_depth st

let out_path st (job : Job.t) ext = Filename.concat st.cfg.out_dir (job.Job.id ^ ext)

(* --- metrics snapshot and per-job traces --------------------------- *)

(* Job ids come from spec files and may contain path separators; traces
   are flat files keyed by id, so squash anything path-hostile. *)
let safe_filename id =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-') as c -> c | _ -> '_')
    id

(* Unconditional snapshot: refresh the operational gauges, then commit
   the Prometheus exposition atomically so an external scraper reading
   the file mid-write still sees a complete previous snapshot. *)
let write_metrics st =
  match (st.cfg.metrics_path, Telemetry.installed ()) with
  | None, _ | _, None -> ()
  | Some path, Some r ->
    publish_queue_depth st;
    List.iter
      (fun (cls, name) ->
        let v = match name with "closed" -> 0 | "half_open" -> 1 | _ -> 2 in
        Telemetry.set ("service.breaker." ^ cls) v)
      (Breaker.states st.breaker);
    (try Atomic_io.write_file path (Telemetry.prometheus_text r)
     with Sys_error msg ->
       Printf.eprintf "serve: warning: metrics write failed: %s\n%!" msg)

let maybe_write_metrics st =
  if st.cfg.metrics_path <> None then begin
    let interval_ns = Int64.of_int (st.cfg.metrics_interval_ms * 1_000_000) in
    let now = now_ns () in
    if st.last_metrics_ns = 0L || Int64.sub now st.last_metrics_ns >= interval_ns
    then begin
      st.last_metrics_ns <- now;
      write_metrics st
    end
  end

(* Bounded trace ring: remember each written path once (a retried job
   overwrites its own file in place) and evict oldest-first beyond
   [trace_keep] so long daemon runs cannot grow the disk unboundedly. *)
let record_trace st path =
  if not (Queue.fold (fun seen p -> seen || String.equal p path) false st.trace_ring)
  then begin
    Queue.add path st.trace_ring;
    while Queue.length st.trace_ring > st.cfg.trace_keep do
      let victim = Queue.pop st.trace_ring in
      try Sys.remove victim with Sys_error _ -> ()
    done
  end

let backoff_ns st (jr : job_rec) =
  let attempt = jr.attempts in
  let expo = Float.of_int (1 lsl min (attempt - 1) 10) in
  let jitter = 0.5 +. Prng.float jr.prng 1.0 in
  Int64.of_float (st.cfg.retry_base_ms *. 1e6 *. expo *. jitter)

let give_up st (jr : job_rec) ~error =
  journal_append st (Journal.Give_up { id = jr.job.Job.id; error });
  (try Atomic_io.write_file (out_path st jr.job ".err") (error ^ "\n")
   with Sys_error _ -> ());
  st.s_failed <- st.s_failed + 1;
  Telemetry.incr "service.jobs_failed";
  log st "[%s] FAILED permanently: %s" jr.job.Job.id error

let handle_failure st (jr : job_rec) ~error =
  if Breaker.failure st.breaker (Job.class_of jr.job) then begin
    st.s_breaker_trips <- st.s_breaker_trips + 1;
    log st "breaker for class %S tripped open" (Job.class_of jr.job)
  end;
  journal_append st
    (Journal.Fail { id = jr.job.Job.id; attempt = jr.attempts; error });
  if jr.attempts >= st.cfg.max_attempts then give_up st jr ~error
  else begin
    st.s_retries <- st.s_retries + 1;
    Telemetry.incr "service.retries";
    jr.next_ready_ns <- Int64.add (now_ns ()) (backoff_ns st jr);
    enqueue st jr;
    log st "[%s] attempt %d failed (%s); retrying with backoff" jr.job.Job.id
      jr.attempts error
  end

(* One attempt, recorded into whatever telemetry sink is active.
   Returns [false] when the job was interrupted by a drain and should
   stay pending. *)
let run_attempt st (jr : job_rec) =
  jr.attempts <- jr.attempts + 1;
  if Telemetry.enabled () && jr.enqueued_ns <> 0L then
    Telemetry.observe "service.queue_wait_ns"
      (Int64.to_int (Int64.sub (now_ns ()) jr.enqueued_ns));
  Telemetry.with_span "attempt" ~attrs:[ ("n", string_of_int jr.attempts) ]
  @@ fun () ->
  journal_append st (Journal.Start { id = jr.job.Job.id; attempt = jr.attempts });
  if st.cfg.job_delay_ms > 0 then
    Unix.sleepf (Float.of_int st.cfg.job_delay_ms /. 1000.0);
  let cancel = Cancel.create () in
  current_cancel := Some cancel;
  (* the signal may have raced the register above *)
  if draining () then ignore (Cancel.cancel cancel (Cancel.Cancelled drain_cause));
  let timeout_s =
    match jr.job.Job.timeout_s with Some s -> Some s | None -> st.cfg.default_timeout_s
  in
  let leaf_budget =
    match jr.job.Job.leaf_budget with
    | Some n -> Some n
    | None -> st.cfg.default_leaf_budget
  in
  let budget = Budget.create ?deadline_s:timeout_s ?leaf_budget ~cancel () in
  let t0 = now_ns () in
  let outcome =
    match
      Inject.fire "service.worker";
      Telemetry.with_span "pipeline" ~attrs:[ ("class", Job.class_of jr.job) ]
        (fun () -> Runner.execute ?cache:st.cache ~budget jr.job)
    with
    | r -> Ok r
    | exception e -> Error (Printexc.to_string e)
  in
  current_cancel := None;
  let dur_ns = Int64.sub (now_ns ()) t0 in
  (* Cache-served jobs complete orders of magnitude faster; recording
     them into the same histogram would drag every latency quantile
     down and hide real pipeline regressions. They get their own
     series. *)
  if Telemetry.enabled () then begin
    let histogram =
      match outcome with
      | Ok (Ok (_, Some `Hit)) -> "service.job_ns_cached"
      | _ -> "service.job_ns"
    in
    Telemetry.observe histogram (Int64.to_int dur_ns)
  end;
  let ms = Int64.to_float dur_ns /. 1e6 in
  let drain_cancelled =
    match Budget.stop_reason budget with
    | Some (Cancel.Cancelled c) -> String.equal c drain_cause
    | _ -> false
  in
  match outcome with
  | Ok (Error (Runner.Invalid_input lines | Runner.Check_findings lines)) ->
    (* deterministic: retrying cannot help, and a sick input (or a
       design the checker rejects) says nothing about the pipeline's
       health, so the breaker is not fed *)
    give_up st jr ~error:(String.concat "; " lines);
    true
  | _ when drain_cancelled ->
    (* partial work from a drained job is discarded; the job stays
       pending and re-runs (from scratch, deterministically) on resume.
       The interrupted record un-counts the journaled start so resume
       does not charge this never-failed attempt against the retry
       budget — a job drained on its last allowed attempt must re-run,
       not be declared exhausted. *)
    journal_append st
      (Journal.Interrupted { id = jr.job.Job.id; attempt = jr.attempts });
    jr.attempts <- jr.attempts - 1;
    enqueue st jr;
    log st "[%s] interrupted by drain; left pending" jr.job.Job.id;
    false
  | Ok (Ok (artifact, cache_status)) -> (
    match
      Inject.fire_sys_error "service.result_io";
      Atomic_io.write_file (out_path st jr.job ".out") artifact
    with
    | () ->
      let status, reason =
        match Budget.stop_reason budget with
        | Some r -> ("degraded", Some (Cancel.describe r))
        | None -> ("ok", None)
      in
      let cache =
        match cache_status with
        | Some `Hit -> Some "hit"
        | Some `Miss -> Some "miss"
        | None -> None
      in
      journal_append st
        (Journal.Done
           { id = jr.job.Job.id; attempt = jr.attempts; status; reason; cache });
      Breaker.success st.breaker (Job.class_of jr.job);
      (match status with
      | "degraded" ->
        st.s_degraded <- st.s_degraded + 1;
        Telemetry.incr "service.jobs_degraded";
        log st "[%s] degraded in %.1f ms (%s)" jr.job.Job.id ms
          (Option.value reason ~default:"?")
      | _ ->
        st.s_completed <- st.s_completed + 1;
        Telemetry.incr "service.jobs_completed";
        log st "[%s] done in %.1f ms%s" jr.job.Job.id ms
          (match cache with Some "hit" -> " (cache hit)" | _ -> ""));
      true
    | exception Sys_error msg ->
      handle_failure st jr ~error:("result write failed: " ^ msg);
      true)
  | Error error ->
    handle_failure st jr ~error;
    true

(* Returns [false] when the job was interrupted by a drain and should
   stay pending. With [trace_dir] set, the attempt records into its own
   fresh recorder so long-lived daemons yield one readable Chrome-trace
   file per job instead of a single flat lifetime trace; the scalar
   aggregates (counters, gauges, histograms — O(metric names), never
   O(jobs)) are folded back into the long-lived recorder so a
   [--metrics] snapshot still reflects all job activity. *)
let run_job st (jr : job_rec) =
  match st.cfg.trace_dir with
  | None -> run_attempt st jr
  | Some dir ->
    let keep_going, recording =
      Telemetry.collect @@ fun () ->
      Telemetry.with_span "job"
        ~attrs:[ ("id", jr.job.Job.id); ("class", Job.class_of jr.job) ]
        (fun () -> run_attempt st jr)
    in
    (match Telemetry.installed () with
    | Some outer -> Telemetry.merge_into ~into:outer recording
    | None -> ());
    let path = Filename.concat dir (safe_filename jr.job.Job.id ^ ".trace.json") in
    (try
       Atomic_io.write_file path (Telemetry.chrome_trace_json recording);
       record_trace st path
     with Sys_error msg ->
       Printf.eprintf "serve: warning: trace write failed: %s\n%!" msg);
    keep_going

(* Pick the first queued job that is past its backoff gate and admitted
   by its class breaker; rotate everything else. Returns the wait (in
   seconds) until something could become runnable when nothing is. *)
let pick_runnable st =
  let n = Queue.length st.queue in
  let now = now_ns () in
  let min_wait = ref infinity in
  let found = ref None in
  (try
     for _ = 1 to n do
       let jr = Queue.pop st.queue in
       if !found <> None then Queue.add jr st.queue
       else begin
         let backoff_wait =
           if jr.next_ready_ns = 0L || jr.next_ready_ns <= now then 0.0
           else Int64.to_float (Int64.sub jr.next_ready_ns now) /. 1e9
         in
         if backoff_wait > 0.0 then begin
           min_wait := Float.min !min_wait backoff_wait;
           Queue.add jr st.queue
         end
         else
           match Breaker.check st.breaker (Job.class_of jr.job) with
           | Breaker.Allow | Breaker.Probe -> found := Some jr
           | Breaker.Reject wait ->
             min_wait := Float.min !min_wait wait;
             Queue.add jr st.queue
       end
     done
   with Queue.Empty -> ());
  match !found with
  | Some jr ->
    publish_queue_depth st;
    `Run jr
  | None -> if Queue.length st.queue = 0 then `Empty else `Wait !min_wait

let accept st (job : Job.t) ~attempts ~journal_it =
  if journal_it then journal_append st (Journal.Accept job);
  Hashtbl.replace st.known job.Job.id ();
  st.s_accepted <- st.s_accepted + 1;
  Telemetry.incr "service.jobs_accepted";
  enqueue st
    { job; prng = job_prng ~seed:st.cfg.seed job.Job.id; attempts; next_ready_ns = 0L;
      enqueued_ns = 0L }

let reject_spec st ~default_id ~error =
  (* a rejected spec never became a job, so it is counted separately
     from jobs that ran and failed permanently *)
  st.s_rejected <- st.s_rejected + 1;
  (* A duplicate-id rejection carries the id of an already-accepted
     job; journaling give_up under that id would mark the legitimate,
     still-pending job terminal and --resume would silently drop it.
     Known ids keep their journal history untouched. *)
  if not (Hashtbl.mem st.known default_id) then
    journal_append st (Journal.Give_up { id = default_id; error });
  Printf.eprintf "serve: rejected spec %s: %s\n%!" default_id error

let run cfg =
  if cfg.max_attempts < 1 then invalid_arg "Service.run: max_attempts must be >= 1";
  if cfg.queue_cap < 1 then invalid_arg "Service.run: queue_cap must be >= 1";
  if cfg.metrics_interval_ms < 1 then
    invalid_arg "Service.run: metrics_interval_ms must be >= 1";
  if cfg.trace_keep < 1 then invalid_arg "Service.run: trace_keep must be >= 1";
  (* validate the spool before mkdir_p below can create any of its tree *)
  (match cfg.source with
  | Spool_dir dir when not (Sys.file_exists dir && Sys.is_directory dir) ->
    raise (Sys_error (dir ^ ": no such spool directory"))
  | Spool_dir _ | Stdin -> ());
  if not cfg.resume then
    List.iter
      (fun path ->
        if Sys.file_exists path then begin
          let st = Unix.stat path in
          if st.Unix.st_size > 0 then
            raise
              (Sys_error
                 (path
                ^ ": journal already exists; pass --resume to continue it or \
                   remove it to start fresh"))
        end)
      (cfg.journal_path :: Journal.shards cfg.journal_path);
  mkdir_p cfg.out_dir;
  mkdir_p (Filename.dirname cfg.journal_path);
  (match cfg.trace_dir with Some d -> mkdir_p d | None -> ());
  (match cfg.metrics_path with
  | Some p -> mkdir_p (Filename.dirname p)
  | None -> ());
  (* --metrics needs a live recorder for the whole daemon lifetime; if
     the caller did not install one (no --stats/--trace), own one. *)
  let own_recorder =
    if cfg.metrics_path <> None && not (Telemetry.enabled ()) then begin
      Telemetry.install (Telemetry.create ());
      true
    end
    else false
  in
  (* merged: a journal left by a fleet run has per-worker shards beside
     it; resuming in-process must still see every worker's records *)
  let replayed =
    if cfg.resume then Journal.fold_state (Journal.replay_merged cfg.journal_path)
    else []
  in
  Atomic.set drain_flag false;
  current_cancel := None;
  (* an unusable cache directory degrades to an uncached service, not a
     startup failure — caching is an optimization, never a dependency *)
  let cache =
    match cfg.cache_dir with
    | None -> None
    | Some dir -> (
      try Some (Bistpath_cache.Store.open_ ?max_mb:cfg.cache_max_mb ~dir ())
      with Sys_error msg ->
        Printf.eprintf "serve: warning: result cache disabled: %s\n%!" msg;
        None)
  in
  let journal = Journal.open_ cfg.journal_path in
  let st =
    {
      cfg;
      journal;
      cache;
      breaker =
        Breaker.create ~threshold:cfg.breaker_threshold
          ~cooldown_s:cfg.breaker_cooldown_s ();
      queue = Queue.create ();
      known = Hashtbl.create 64;
      s_accepted = 0;
      s_completed = 0;
      s_degraded = 0;
      s_failed = 0;
      s_rejected = 0;
      s_retries = 0;
      s_breaker_trips = 0;
      s_journal_errors = 0;
      last_metrics_ns = 0L;
      trace_ring = Queue.create ();
    }
  in
  (* Replay: every journaled job is known (so spool re-reads do not
     double-accept); the non-terminal ones re-enter the queue with
     their attempt count carried over. *)
  List.iter
    (fun (js : Journal.job_state) ->
      Hashtbl.replace st.known js.Journal.job.Job.id ();
      if not js.Journal.terminal then begin
        if js.Journal.attempts >= cfg.max_attempts then begin
          (* it crashed (or was killed) after its last allowed attempt *)
          let jr =
            { job = js.Journal.job; prng = job_prng ~seed:cfg.seed js.Journal.job.Job.id;
              attempts = js.Journal.attempts; next_ready_ns = 0L; enqueued_ns = 0L }
          in
          give_up st jr ~error:"retry budget exhausted before the previous shutdown"
        end
        else
          accept st js.Journal.job ~attempts:js.Journal.attempts ~journal_it:false
      end)
    replayed;
  if cfg.resume then
    log st "resume: %d journaled job(s), %d re-queued" (List.length replayed)
      (Queue.length st.queue);
  let next_spec = spec_source cfg in
  let exhausted = ref false in
  let ingest () =
    while (not !exhausted) && (not (draining ())) && Queue.length st.queue < cfg.queue_cap do
      match next_spec () with
      | None -> exhausted := true
      | Some (default_id, line) -> (
        match Job.parse_line ~default_id line with
        | Error e -> reject_spec st ~default_id ~error:("invalid job spec: " ^ e)
        | Ok job ->
          if Hashtbl.mem st.known job.Job.id then begin
            if not cfg.resume then
              reject_spec st ~default_id:job.Job.id
                ~error:(Printf.sprintf "duplicate job id %S" job.Job.id)
            (* on resume a known id is simply already journaled: skip *)
          end
          else accept st job ~attempts:0 ~journal_it:true)
    done
  in
  let previous_handlers =
    List.map
      (fun signum ->
        (signum, Sys.signal signum (Sys.Signal_handle (fun _ -> request_drain ()))))
      [ Sys.sigint; Sys.sigterm ]
  in
  let restore () =
    List.iter (fun (signum, h) -> Sys.set_signal signum h) previous_handlers
  in
  Fun.protect
    ~finally:(fun () ->
      restore ();
      Journal.close journal;
      if own_recorder then Telemetry.uninstall ())
  @@ fun () ->
  (* an early first snapshot so scrapers find the file as soon as the
     daemon is up, not only after the first interval elapses *)
  maybe_write_metrics st;
  let rec loop () =
    if draining () then ()
    else begin
      ingest ();
      maybe_write_metrics st;
      match pick_runnable st with
      | `Run jr -> if run_job st jr then loop () (* else: drained mid-job *)
      | `Empty -> if not !exhausted then loop () (* ingest had no room? retry *)
      | `Wait w ->
        (* sleep in short slices so a drain signal is honoured promptly *)
        Unix.sleepf (Float.max 0.001 (Float.min w 0.05));
        loop ()
    end
  in
  loop ();
  let pending = Queue.length st.queue in
  let drained = draining () in
  if drained then journal_append st Journal.Drain;
  publish_queue_depth st;
  write_metrics st;
  log st "finished: %d ok, %d degraded, %d failed, %d retries%s" st.s_completed
    st.s_degraded st.s_failed st.s_retries
    (if drained then Printf.sprintf "; drained with %d pending" pending else "");
  {
    accepted = st.s_accepted;
    completed = st.s_completed;
    degraded = st.s_degraded;
    failed = st.s_failed;
    rejected_specs = st.s_rejected;
    retries = st.s_retries;
    breaker_trips = st.s_breaker_trips;
    journal_errors = st.s_journal_errors;
    pending;
    drained;
    workers = 0;
    worker_deaths_signal = 0;
    worker_deaths_exit = 0;
    lease_steals = 0;
    worker_restarts = 0;
  }
