(** Write-ahead journal for the job service.

    An append-only NDJSON file recording every job state transition:

    {v
    {"ev":"accept","job":{...full spec...}}
    {"ev":"start","id":"j1","attempt":1}
    {"ev":"fail","id":"j1","attempt":1,"error":"..."}
    {"ev":"done","id":"j1","attempt":2,"status":"ok"}
    {"ev":"give_up","id":"j2","error":"..."}
    {"ev":"interrupted","id":"j3","attempt":1}
    {"ev":"drain"}
    v}

    Each append is one [write] + [fsync] on an [O_APPEND] descriptor,
    so a record is durable before the action it authorizes proceeds
    (result files are written {e before} their [done] record, making
    [done] the commit point of exactly-once semantics). {!replay}
    tolerates a truncated final line — the signature of a crash
    mid-append — by ignoring it, and {!open_} repairs such a torn tail
    before the journal is appended to again, so a second crash cannot
    turn it into mid-file corruption.

    Fault injection: {!append} probes the [service.journal] site and
    raises [Sys_error] on a hit, exactly like a real disk error. *)

type event =
  | Accept of Job.t
  | Start of { id : string; attempt : int }
  | Done of {
      id : string;
      attempt : int;
      status : string;
      reason : string option;
      cache : string option;
    }
      (** [status] is ["ok"] or ["degraded"]; [reason] is the budget's
          stop reason for degraded results. [cache] is [Some "hit"] when
          the artifact was served from the result cache, [Some "miss"]
          when a consulted cache had no entry, [None] when the service
          ran without one (including every journal written before
          caching existed — the field is absent on disk and replays as
          [None]). *)
  | Fail of { id : string; attempt : int; error : string }
  | Give_up of { id : string; error : string }
  | Interrupted of { id : string; attempt : int }
      (** a drain cancelled this attempt mid-flight; it is not charged
          against the retry budget (fold_state un-counts its [start]) *)
  | Drain  (** graceful-shutdown checkpoint: in-flight work was abandoned *)

type t
(** An open journal (descriptor kept across appends). *)

val open_ : string -> t
(** Open for append, creating the file if needed. If a previous crash
    left a torn final record (no trailing newline), the tail is
    repaired first — terminated if it parses, truncated away otherwise
    — so new appends can never merge with it into an unreadable
    mid-file line. Raises [Sys_error]. *)

val append : t -> event -> unit
(** Serialize, append, fsync. Raises [Sys_error] on I/O failure or an
    injected [service.journal] fault. *)

val close : t -> unit

val replay : string -> event list
(** Parse the journal back, in order. A missing file is an empty
    journal; an unparsable {e final} line is ignored (crash
    mid-append); an unparsable line elsewhere raises [Sys_error] —
    that is corruption, not a crash artifact. *)

(** {1 Fleet journal shards}

    In fleet mode every worker process appends to its own shard —
    [<journal>.shard<slot>] beside the supervisor's journal — so no
    two processes ever share an append descriptor. *)

val shard_path : string -> int -> string
(** [shard_path journal slot] — the shard file a worker on [slot]
    appends to. Raises [Invalid_argument] for a negative slot. *)

val shards : string -> string list
(** Existing shard files beside [journal], sorted by slot. *)

val replay_merged : string -> event list
(** [replay journal] followed by each shard's replay in slot order.
    Per-job resume state ({!fold_state}) does not depend on event
    order {e between} files: accepts live in the supervisor journal and
    the per-job attempt/terminal counts commute, so concatenation is a
    faithful merge. A torn tail in one shard (worker SIGKILLed
    mid-append) is ignored locally — jobs journaled in other shards
    replay unaffected. *)

(** {1 Derived state} *)

type job_state = {
  job : Job.t;
  attempts : int;
      (** [start] records seen, minus drain-[interrupted] ones — the
          attempts actually charged against the retry budget *)
  terminal : bool;  (** a [done] or [give_up] record exists *)
}

val fold_state : event list -> job_state list
(** Accepted jobs in first-accept order with their replayed state —
    what [--resume] re-queues ([terminal = false] entries). Duplicate
    accepts of one id collapse onto the first. *)

val event_to_json : event -> Bistpath_util.Json.t
val event_of_json : Bistpath_util.Json.t -> (event, string) result
