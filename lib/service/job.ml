module Json = Bistpath_util.Json

type pipeline = Run | Pareto | Coverage | Rtl | Export | Check | Verify

type t = {
  id : string;
  spec : string;
  pipeline : pipeline;
  width : int;
  flow : string;
  transparency : bool;
  patterns : int;
  timeout_s : float option;
  leaf_budget : int option;
}

let pipeline_name = function
  | Run -> "run"
  | Pareto -> "pareto"
  | Coverage -> "coverage"
  | Rtl -> "rtl"
  | Export -> "export"
  | Check -> "check"
  | Verify -> "verify"

let pipeline_of_name = function
  | "run" -> Some Run
  | "pareto" -> Some Pareto
  | "coverage" -> Some Coverage
  | "rtl" -> Some Rtl
  | "export" -> Some Export
  | "check" -> Some Check
  | "verify" -> Some Verify
  | _ -> None

let id_ok id =
  String.length id > 0
  && String.length id <= 128
  && String.for_all
       (function 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-' -> true | _ -> false)
       id
  (* ".." alone would still be a path component *)
  && not (String.for_all (Char.equal '.') id)

let known_fields =
  [ "id"; "spec"; "pipeline"; "width"; "flow"; "transparency"; "patterns";
    "timeout"; "leaf_budget" ]

let of_json ~default_id json =
  let ( let* ) = Result.bind in
  match json with
  | Json.Obj fields ->
    let* () =
      match List.find_opt (fun (k, _) -> not (List.mem k known_fields)) fields with
      | Some (k, _) ->
        Error
          (Printf.sprintf "unknown field %S (known: %s)" k
             (String.concat ", " known_fields))
      | None -> Ok ()
    in
    let field name conv what =
      match Json.member name json with
      | None -> Ok None
      | Some v -> (
        match conv v with
        | Some x -> Ok (Some x)
        | None -> Error (Printf.sprintf "field %S must be %s" name what))
    in
    let* id = field "id" Json.to_str "a string" in
    let id = Option.value id ~default:default_id in
    let* () =
      if id_ok id then Ok ()
      else Error (Printf.sprintf "bad job id %S (want [A-Za-z0-9._-]+)" id)
    in
    let* spec = field "spec" Json.to_str "a string" in
    let* spec =
      match spec with
      | Some s when String.length s > 0 -> Ok s
      | Some _ -> Error "field \"spec\" must be non-empty"
      | None -> Error "missing required field \"spec\""
    in
    let* pname = field "pipeline" Json.to_str "a string" in
    let* pipeline =
      match pname with
      | None -> Ok Run
      | Some s -> (
        match pipeline_of_name s with
        | Some p -> Ok p
        | None ->
          Error
            (Printf.sprintf
               "unknown pipeline %S (want run|pareto|coverage|rtl|export|check|verify)" s))
    in
    let* width = field "width" Json.to_int "an integer" in
    let width = Option.value width ~default:8 in
    let* () = if width >= 1 then Ok () else Error "field \"width\" must be >= 1" in
    let* flow = field "flow" Json.to_str "a string" in
    let flow = Option.value flow ~default:"testable" in
    let* () =
      match flow with
      | "testable" | "traditional" -> Ok ()
      | s -> Error (Printf.sprintf "unknown flow %S (want testable or traditional)" s)
    in
    let* transparency = field "transparency" Json.to_bool "a boolean" in
    let transparency = Option.value transparency ~default:false in
    let* patterns = field "patterns" Json.to_int "an integer" in
    let patterns = Option.value patterns ~default:255 in
    let* () = if patterns >= 1 then Ok () else Error "field \"patterns\" must be >= 1" in
    let* timeout_s = field "timeout" Json.to_num "a number" in
    let* () =
      match timeout_s with
      | Some s when s <= 0.0 -> Error "field \"timeout\" must be > 0"
      | _ -> Ok ()
    in
    let* leaf_budget = field "leaf_budget" Json.to_int "an integer" in
    let* () =
      match leaf_budget with
      | Some n when n < 1 -> Error "field \"leaf_budget\" must be >= 1"
      | _ -> Ok ()
    in
    Ok { id; spec; pipeline; width; flow; transparency; patterns; timeout_s; leaf_budget }
  | _ -> Error "job spec must be a JSON object"

let parse_line ~default_id line =
  match Json.parse line with
  | Error e -> Error ("bad JSON: " ^ e)
  | Ok json -> of_json ~default_id json

let to_json t =
  Json.Obj
    ([
       ("id", Json.Str t.id);
       ("spec", Json.Str t.spec);
       ("pipeline", Json.Str (pipeline_name t.pipeline));
       ("width", Json.Num (float_of_int t.width));
       ("flow", Json.Str t.flow);
       ("transparency", Json.Bool t.transparency);
       ("patterns", Json.Num (float_of_int t.patterns));
     ]
    @ (match t.timeout_s with Some s -> [ ("timeout", Json.Num s) ] | None -> [])
    @
    match t.leaf_budget with
    | Some n -> [ ("leaf_budget", Json.Num (float_of_int n)) ]
    | None -> [])

let class_of t = pipeline_name t.pipeline
