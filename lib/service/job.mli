(** Job specifications for the supervised service.

    One job = one synthesis pipeline applied to one design, described
    by a single NDJSON line:

    {v
    {"id":"fir-rtl","spec":"fir8","pipeline":"rtl","width":8,
     "flow":"testable","transparency":false,"patterns":255,
     "timeout":5.0,"leaf_budget":10000}
    v}

    Only ["spec"] (a benchmark tag or a path to a [.dfg]/[.beh] file)
    is required. ["id"] defaults to a deterministic name derived from
    the spool file and line number; it keys the journal and names the
    result file, so it is restricted to
    [A-Za-z0-9._-] (no path separators). ["pipeline"] defaults to
    ["run"]; ["check"] runs the static verifier over the flow's
    artifacts ({!Bistpath_check.Check}); ["verify"] parses the emitted
    RTL back and proves it equivalent to the in-memory data path
    ({!Bistpath_rtl.Equiv}). ["timeout"] (seconds) and ["leaf_budget"] bound the job
    like the [--timeout] / [--leaf-budget] CLI flags; a tripped budget
    yields a [degraded] (best-so-far) result rather than a failure. *)

type pipeline = Run | Pareto | Coverage | Rtl | Export | Check | Verify

type t = {
  id : string;
  spec : string;  (** benchmark tag or DFG/behavioural file path *)
  pipeline : pipeline;
  width : int;  (** default 8 *)
  flow : string;  (** ["testable"] (default) or ["traditional"] *)
  transparency : bool;
  patterns : int;  (** LFSR patterns for [Coverage]; default 255 *)
  timeout_s : float option;
  leaf_budget : int option;
}

val pipeline_name : pipeline -> string
val pipeline_of_name : string -> pipeline option

val of_json : default_id:string -> Bistpath_util.Json.t -> (t, string) result
(** Validates field types, the id alphabet, the pipeline name and the
    numeric ranges ([width >= 1], [patterns >= 1], [timeout > 0],
    [leaf_budget >= 1]). Unknown fields are rejected so a typo in a
    spec cannot silently change behaviour. *)

val parse_line : default_id:string -> string -> (t, string) result
(** [of_json] over one NDJSON line. *)

val to_json : t -> Bistpath_util.Json.t
(** Inverse of {!of_json}: [of_json (to_json j) = Ok j]. Used by the
    journal's [accept] records so [--resume] can re-queue jobs without
    re-reading the spool. *)

val class_of : t -> string
(** The circuit-breaker class: the pipeline name. A poisoned pipeline
    fails fast without stalling jobs of other classes. *)
