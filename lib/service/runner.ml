module B = Bistpath_benchmarks.Benchmarks
module Flow = Bistpath_core.Flow
module Stage = Bistpath_core.Stage
module Testable_alloc = Bistpath_core.Testable_alloc
module Policy = Bistpath_dfg.Policy
module Parser = Bistpath_dfg.Parser
module Frontend = Bistpath_dfg.Frontend
module Dfg = Bistpath_dfg.Dfg
module Diagnostic = Bistpath_resilience.Diagnostic
module Verilog = Bistpath_rtl.Verilog
module Equiv = Bistpath_rtl.Equiv
module Bist_sim = Bistpath_gatelevel.Bist_sim
module Session = Bistpath_bist.Session
module Pareto = Bistpath_bist.Pareto
module Check = Bistpath_check.Check

type error = Invalid_input of string list | Check_findings of string list

(* Mirrors the CLI's load_instance: benchmark tag, .beh program or
   textual DFG file, with accumulated diagnostics. *)
let load_instance spec =
  match B.by_tag spec with
  | Some inst -> Ok inst
  | None ->
    let instance_of_dfg dfg =
      let massign = Bistpath_core.Module_assign.single_function dfg in
      { B.tag = dfg.Dfg.name; dfg; massign; policy = Policy.default }
    in
    if Sys.file_exists spec then begin
      let locate d = { d with Diagnostic.file = Some spec } in
      let render ds = List.map (fun d -> Diagnostic.to_string (locate d)) ds in
      if Filename.check_suffix spec ".beh" then
        let text = In_channel.with_open_text spec In_channel.input_all in
        let name = Filename.remove_extension (Filename.basename spec) in
        match Frontend.compile_diags ~name text with
        | Ok dfg -> Ok (instance_of_dfg dfg)
        | Error ds -> Error (render ds)
      else begin
        let u, diags = Parser.parse_file_diags spec in
        if List.exists (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error) diags
        then Error (List.map Diagnostic.to_string diags)
        else
          match Parser.to_dfg_diags u with
          | Ok dfg -> Ok (instance_of_dfg dfg)
          | Error ds -> Error (render ds)
      end
    end
    else
      Error
        [ Printf.sprintf "unknown benchmark %S (and no such file); known: %s" spec
            (String.concat ", " B.all_tags) ]

let style_of_flow = function
  | "traditional" -> Flow.Traditional
  | _ -> Flow.Testable Testable_alloc.default_options

let execute ?cache ~budget (job : Job.t) =
  match load_instance job.Job.spec with
  | Error lines -> Error (Invalid_input lines)
  | Ok inst ->
    let width = job.Job.width in
    let style = style_of_flow job.Job.flow in
    let flow () =
      Flow.run ~budget ~width ~transparency:job.Job.transparency ?cache ~style
        inst.B.dfg inst.B.massign ~policy:inst.B.policy
    in
    let check () =
      let r = flow () in
      let ctx =
        Check.ctx_of_flow ~vectors:10 ~transparency:job.Job.transparency
          ~design:(inst.B.tag ^ "/" ^ job.Job.flow)
          ~width inst.B.dfg inst.B.massign ~policy:inst.B.policy r
      in
      let rep = Check.run ~budget ctx in
      if Check.errors rep > 0 then
        Error
          (Check_findings
             (List.map Bistpath_resilience.Diagnostic.to_string (Check.diagnostics rep)))
      else Ok (Bistpath_util.Json.to_string (Check.to_json rep) ^ "\n", None)
    in
    (* Terminal artifact stage: the whole rendered output, keyed from
       the spec's schedule root hash plus the job parameters, so a warm
       job is served byte-identical without running the flow at all.
       Same key derivation as the CLI — the two consumers share one
       cache. *)
    let artifact_key stage extra =
      Option.map
        (fun _ ->
          Flow.artifact_key ~stage
            ~spec_hash:
              (Flow.spec_hash inst.B.dfg inst.B.massign ~policy:inst.B.policy)
            ~params:
              (Bistpath_util.Json.Obj
                 (( "flow",
                    Flow.flow_params_json ~width
                      ~transparency:job.Job.transparency ~style () )
                 :: extra)))
        cache
    in
    let cached ~stage ~extra render =
      let key = artifact_key stage extra in
      match Flow.artifact_find ~cache ~stage ~key with
      | Some payload -> Ok (payload, Some `Hit)
      | None ->
        let payload = render () in
        if not (Bistpath_resilience.Budget.should_stop budget) then
          Flow.artifact_store ~cache ~stage ~key payload;
        Ok (payload, if key = None then None else Some `Miss)
    in
    (* Parse-back equivalence of the emitted RTL. Never cached: the
       point is to re-exercise the emitter/parser loop, and a stored
       verdict would vouch for bytes it never saw. Failures are
       deterministic for a fixed job, so they use the same give-up
       classification as [check] (the breaker is not fed). *)
    let verify () =
      let r = flow () in
      let rtl =
        Verilog.primitives ~width ^ "\n"
        ^ Verilog.emit ~width ~bist:r.Flow.bist r.Flow.datapath
        ^ "\n"
      in
      match Equiv.verify ~width ~bist:r.Flow.bist ~rtl r.Flow.datapath with
      | Error diags ->
        Error
          (Check_findings
             (List.map
                (fun d -> "RTL005 emitted RTL is unparsable: " ^ Diagnostic.to_string d)
                diags))
      | Ok rep ->
        let structural =
          List.map (fun d -> "RTL005 parse-back mismatch: " ^ d) rep.Equiv.structural
        in
        let functional =
          match rep.Equiv.functional with
          | None -> []
          | Some m ->
            [
              Printf.sprintf
                "EQ002 parsed RTL disagrees with the interpreter on output %s \
                 (expected %d, got %d) for vector %s"
                m.Equiv.output m.Equiv.expected m.Equiv.actual
                (String.concat ", "
                   (List.map (fun (x, v) -> Printf.sprintf "%s=%d" x v) m.Equiv.vector));
            ]
        in
        if structural <> [] || functional <> [] then
          Error (Check_findings (structural @ functional))
        else
          Ok
            ( Bistpath_util.Json.to_string
                (Bistpath_util.Json.Obj
                   [
                     ("design", Bistpath_util.Json.Str (inst.B.tag ^ "/" ^ job.Job.flow));
                     ("equivalent", Bistpath_util.Json.Bool true);
                     ( "vectors_run",
                       Bistpath_util.Json.Num (float_of_int rep.Equiv.vectors_run) );
                   ])
              ^ "\n",
              None )
    in
    let str s = Bistpath_util.Json.Str s in
    match job.Job.pipeline with
    | Job.Check -> check ()
    | Job.Verify -> verify ()
    | Job.Run ->
      cached ~stage:Stage.Report ~extra:[ ("artifact", str "run") ] (fun () ->
          let r = flow () in
          Format.asprintf "%a@.@.%a@.@.test sessions: %a@." Dfg.pp inst.B.dfg
            Flow.pp_result r Session.pp r.Flow.sessions)
    | Job.Pareto ->
      cached ~stage:Stage.Report ~extra:[ ("artifact", str "pareto") ] (fun () ->
          let r = flow () in
          Format.asprintf "%a@." Pareto.pp
            (Pareto.explore ~width ~budget r.Flow.datapath))
    | Job.Rtl ->
      cached ~stage:Stage.Rtl
        ~extra:
          [ ("artifact", str "rtl");
            ("bist", Bistpath_util.Json.Bool true);
            ("wrapper", Bistpath_util.Json.Bool false) ]
        (fun () ->
          let r = flow () in
          Verilog.primitives ~width ^ "\n"
          ^ Verilog.emit ~width ~bist:r.Flow.bist r.Flow.datapath
          ^ "\n")
    | Job.Coverage ->
      (* gate-level simulation is not a DAG stage; the flow underneath
         it still reuses cached stages *)
      let r = flow () in
      let rep =
        Bist_sim.run ~budget ~width ~pattern_count:job.Job.patterns
          r.Flow.datapath r.Flow.bist
      in
      Ok (Format.asprintf "%a@." Bist_sim.pp rep, None)
    | Job.Export -> Ok (Parser.to_string inst.B.dfg, None)
