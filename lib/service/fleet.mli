(** Multi-process fleet mode: [synth serve --workers N].

    {!run} converts the supervised service from a process into a
    supervised {e fleet}: the supervisor forks [config.workers]
    crash-isolated worker processes that claim jobs from a shared
    {!Lease} spool (lock-free, atomic-rename claims), each appending
    to its own {!Journal} shard ([<journal>.shard<slot>]), while the
    supervisor ingests specs, watches the children and never runs a
    pipeline itself — so no segfault, OOM kill or wedged allocation in
    a job can take the service down.

    {b Supervision.} Workers are monitored two ways: [waitpid]
    (catches any death — signal or exit) and per-slot heartbeat files
    (catches wedged or SIGSTOPped workers that are alive but not
    making progress). A dead worker's leases are stolen back to the
    pending queue — unless a lease's started-attempt count already
    exhausted [max_attempts], in which case the supervisor records the
    give-up, so a job that {e kills} workers terminates like any other
    failure instead of crash-looping the fleet. A worker whose
    heartbeat is older than [lease_expiry_ms] is SIGKILLed first
    (lease steal after heartbeat expiry). Crashed slots are refilled
    with exponential backoff.

    {b Exactly-once.} The commit protocol is unchanged from the
    in-process service: the result artifact is written atomically
    {e before} its [done] record, and pipelines are deterministic, so
    a worker SIGKILLed in the window between the two at worst causes a
    byte-identical re-run. [--resume] replays the supervisor journal
    merged with every worker shard ({!Journal.replay_merged}); the
    final result set is byte-identical to an uninterrupted
    single-worker run, each result exactly once.

    {b Stats.} Worker-death causes are reported distinctly:
    [worker_deaths_signal] (killed), [worker_deaths_exit] (worker loop
    bug), [lease_steals] (heartbeat-expiry reclaims). Job outcomes are
    derived from the merged journal, counting only jobs this run
    admitted or re-queued. [breaker_trips] is always 0 in fleet mode —
    each worker runs its own per-class breaker and trips are not
    journaled.

    {b Telemetry} (supervisor process): counters [fleet.spawns],
    [fleet.restarts], [fleet.deaths_signal], [fleet.deaths_exit],
    [fleet.heartbeat_expiries], [fleet.lease_steals],
    [fleet.requeued]; gauges [fleet.workers_alive],
    [fleet.pending_depth], [fleet.claimed_depth] and per-slot
    [fleet.worker.<slot>] (0 dead, 1 alive, 2 heartbeat-expired) — all
    exported by [--metrics]; one explicit-track lane per worker slot
    in the Chrome trace (an [X] event per worker incarnation, an [i]
    mark per steal). Fault-injection sites: [fleet.claim],
    [fleet.heartbeat] (see {!Lease}), plus everything the workers
    inherit ([service.worker], [service.result_io], ...).

    The fleet's on-disk state lives under [<journal>.fleet/]; the pid
    map [<journal>.fleet/workers.json]
    ([{"supervisor":pid,"workers":{"<slot>":pid|0}}], rewritten
    atomically on every spawn and death) lets external chaos tooling
    target individual workers. *)

val run : Service.config -> Service.stats
(** Requires [config.workers >= 1] ([Invalid_argument] otherwise).
    Setup failures (unreadable spool, refused non-empty journal or
    shards without [resume]) raise [Sys_error] before any worker is
    forked; job failures never escape. SIGINT/SIGTERM drain
    gracefully: ingestion stops, workers get SIGTERM (each cancels its
    in-flight attempt cooperatively, journals [interrupted] and hands
    its lease back), stragglers are SIGKILLed after a bounded wait and
    their leases recovered. Must be called with no other domains
    running in the process (it forks) — the CLI calls it before any
    pipeline has touched the domain pool. *)
