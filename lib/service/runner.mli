(** In-process execution of one job.

    Runs the same library pipeline the corresponding CLI subcommand
    would, but renders the artifact to a string instead of stdout, so
    the supervisor can commit it atomically.

    The split of failure modes matters for retry policy:

    - [Error (Invalid_input lines)] — the spec names an unknown
      benchmark, or the DFG/behavioural file fails validation. This is
      deterministic; the supervisor gives up immediately (no retries)
      and records the diagnostics.
    - [Error (Check_findings lines)] — a [check] pipeline found
      error-severity violations in the synthesized artifacts
      ({!Bistpath_check.Check}), or a [verify] pipeline found the
      emitted RTL unparsable or not equivalent to the data path
      ({!Bistpath_rtl.Equiv}). Equally deterministic: the supervisor
      gives up immediately and records the findings, and the breaker is
      not fed (a sick design says nothing about the pipeline's health).
    - An exception (including injected faults and [Out_of_memory]) —
      potentially transient; the supervisor catches it and applies
      retry/backoff/breaker policy.

    A job whose own budget trips mid-search returns [Ok] with a
    best-so-far artifact; the caller distinguishes complete from
    degraded via the budget's stop reason, exactly like the CLI's
    exit-3 protocol. *)

type error = Invalid_input of string list | Check_findings of string list

val execute :
  ?cache:Bistpath_cache.Store.t ->
  budget:Bistpath_resilience.Budget.t ->
  Job.t ->
  (string * [ `Hit | `Miss ] option, error) result
(** Deterministic for a fixed job and untripped budget: two runs
    produce byte-identical artifacts (the exactly-once guarantee
    leans on this — re-running a job after a crash rewrites the same
    bytes).

    [cache] attaches the content-addressed result store. [run], [rtl]
    and [pareto] jobs become terminal artifact stages: a warm job is
    served byte-identical from the store ([Some `Hit]) without running
    the flow; a cold one runs (reusing any cached inner stages),
    renders, and commits the artifact unless its budget tripped
    ([Some `Miss]). [check], [verify], [coverage] and [export] never
    cache their artifact ([None] — though the flow underneath
    [check]/[verify]/[coverage]
    still reuses cached stages). Without [cache] the second component
    is always [None] and behaviour is byte-identical to the uncached
    runner. *)
