module Json = Bistpath_util.Json
module Atomic_io = Bistpath_util.Atomic_io
module Inject = Bistpath_resilience.Inject

type t = { root : string }
type lease = { job : Job.t; attempts : int }

let pending_dir t = Filename.concat t.root "pending"
let claimed_root t = Filename.concat t.root "claimed"
let slot_dir t slot = Filename.concat (claimed_root t) (string_of_int slot)
let hb_dir t = Filename.concat t.root "hb"
let hb_path t slot = Filename.concat (hb_dir t) (string_of_int slot)
let eof_path t = Filename.concat t.root "eof"
let lease_file id = id ^ ".job"

let create ~root ~slots =
  if slots < 1 then invalid_arg "Lease.create: slots must be >= 1";
  let t = { root } in
  Atomic_io.mkdir_p (pending_dir t);
  Atomic_io.mkdir_p (hb_dir t);
  for slot = 0 to slots - 1 do
    Atomic_io.mkdir_p (slot_dir t slot)
  done;
  t

let root t = t.root

let list_dir dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files -> Array.to_list files

let lease_files dir =
  list_dir dir
  |> List.filter (fun f -> Filename.check_suffix f ".job")
  |> List.sort compare

let slot_dirs t =
  list_dir (claimed_root t)
  |> List.filter_map int_of_string_opt
  |> List.sort compare

let remove_quiet path = try Sys.remove path with Sys_error _ -> ()

let reset t =
  List.iter
    (fun dir -> List.iter (fun f -> remove_quiet (Filename.concat dir f)) (list_dir dir))
    (pending_dir t :: hb_dir t :: List.map (slot_dir t) (slot_dirs t));
  remove_quiet (eof_path t)

let lease_to_json l =
  Json.Obj
    [ ("job", Job.to_json l.job);
      ("attempts", Json.Num (float_of_int l.attempts)) ]

let lease_of_json json =
  match
    ( Option.map (Job.of_json ~default_id:"lease") (Json.member "job" json),
      Option.bind (Json.member "attempts" json) Json.to_int )
  with
  | Some (Ok job), Some attempts when attempts >= 0 -> Some { job; attempts }
  | _ -> None

let read_lease path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> None
  | text -> Result.to_option (Json.parse text) |> Option.map lease_of_json |> Option.join

let submit t lease =
  Atomic_io.write_file
    (Filename.concat (pending_dir t) (lease_file lease.job.Job.id))
    (Json.to_string (lease_to_json lease) ^ "\n")

let claim t ~slot =
  let pend = pending_dir t in
  let rec try_files = function
    | [] -> None
    | f :: rest -> (
      let src = Filename.concat pend f in
      let dst = Filename.concat (slot_dir t slot) f in
      match
        Inject.fire_sys_error "fleet.claim";
        Unix.rename src dst
      with
      | () -> (
        match read_lease dst with
        | Some l -> Some l
        | None ->
          (* submit is atomic, so a half-written lease is impossible:
             an unparsable file is a foreign artifact — drop it *)
          remove_quiet dst;
          try_files rest)
      | exception Unix.Unix_error (_, _, _) ->
        (* ENOENT: lost the race to another claimant; anything else is
           transient — either way the pending file (if any) is intact *)
        try_files rest
      | exception Sys_error _ ->
        (* injected fleet.claim fault: skip this poll, lease untouched *)
        try_files rest)
  in
  try_files (lease_files pend)

let update t ~slot lease =
  Atomic_io.write_file
    (Filename.concat (slot_dir t slot) (lease_file lease.job.Job.id))
    (Json.to_string (lease_to_json lease) ^ "\n")

let release t ~slot id = remove_quiet (Filename.concat (slot_dir t slot) (lease_file id))

let return_ t ~slot lease =
  submit t lease;
  release t ~slot lease.job.Job.id

let held t ~slot =
  let dir = slot_dir t slot in
  lease_files dir |> List.filter_map (fun f -> read_lease (Filename.concat dir f))

let requeue t ~slot id =
  let src = Filename.concat (slot_dir t slot) (lease_file id) in
  let dst = Filename.concat (pending_dir t) (lease_file id) in
  try Unix.rename src dst with Unix.Unix_error (_, _, _) -> ()

let discard t ~slot id = release t ~slot id

let pending_count t = List.length (lease_files (pending_dir t))

let held_count t =
  List.fold_left
    (fun acc slot -> acc + List.length (lease_files (slot_dir t slot)))
    0 (slot_dirs t)

let mark_eof t = Atomic_io.write_file (eof_path t) ""
let eof t = Sys.file_exists (eof_path t)

let beat t ~slot =
  Inject.fire_sys_error "fleet.heartbeat";
  let path = hb_path t slot in
  match
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644
  with
  | exception Unix.Unix_error (e, _, _) ->
    raise (Sys_error (Printf.sprintf "%s: %s" path (Unix.error_message e)))
  | fd ->
    let close () = try Unix.close fd with Unix.Unix_error _ -> () in
    (match Unix.write_substring fd "beat\n" 0 5 with
    | _ -> close ()
    | exception Unix.Unix_error (e, _, _) ->
      close ();
      raise (Sys_error (Printf.sprintf "%s: %s" path (Unix.error_message e))))

let beat_mtime t ~slot =
  match Unix.stat (hb_path t slot) with
  | s -> Some s.Unix.st_mtime
  | exception Unix.Unix_error _ -> None
