module Json = Bistpath_util.Json
module Atomic_io = Bistpath_util.Atomic_io
module Inject = Bistpath_resilience.Inject

type event =
  | Accept of Job.t
  | Start of { id : string; attempt : int }
  | Done of {
      id : string;
      attempt : int;
      status : string;
      reason : string option;
      cache : string option;
    }
  | Fail of { id : string; attempt : int; error : string }
  | Give_up of { id : string; error : string }
  | Interrupted of { id : string; attempt : int }
  | Drain

type t = { fd : Unix.file_descr; path : string }

let event_to_json = function
  | Accept job -> Json.Obj [ ("ev", Json.Str "accept"); ("job", Job.to_json job) ]
  | Start { id; attempt } ->
    Json.Obj
      [ ("ev", Json.Str "start"); ("id", Json.Str id);
        ("attempt", Json.Num (float_of_int attempt)) ]
  | Done { id; attempt; status; reason; cache } ->
    Json.Obj
      ([ ("ev", Json.Str "done"); ("id", Json.Str id);
         ("attempt", Json.Num (float_of_int attempt)); ("status", Json.Str status) ]
      @ (match reason with Some r -> [ ("reason", Json.Str r) ] | None -> [])
      @ match cache with Some c -> [ ("cache", Json.Str c) ] | None -> [])
  | Fail { id; attempt; error } ->
    Json.Obj
      [ ("ev", Json.Str "fail"); ("id", Json.Str id);
        ("attempt", Json.Num (float_of_int attempt)); ("error", Json.Str error) ]
  | Give_up { id; error } ->
    Json.Obj
      [ ("ev", Json.Str "give_up"); ("id", Json.Str id); ("error", Json.Str error) ]
  | Interrupted { id; attempt } ->
    Json.Obj
      [ ("ev", Json.Str "interrupted"); ("id", Json.Str id);
        ("attempt", Json.Num (float_of_int attempt)) ]
  | Drain -> Json.Obj [ ("ev", Json.Str "drain") ]

let event_of_json json =
  let ( let* ) = Result.bind in
  let str name =
    match Option.bind (Json.member name json) Json.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing/bad field %S" name)
  in
  let int name =
    match Option.bind (Json.member name json) Json.to_int with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "missing/bad field %S" name)
  in
  let* ev = str "ev" in
  match ev with
  | "accept" -> (
    match Json.member "job" json with
    | None -> Error "accept record without job"
    | Some j ->
      let* job =
        (* the journal's own records always carry an explicit id *)
        Job.of_json ~default_id:"journal" j
      in
      Ok (Accept job))
  | "start" ->
    let* id = str "id" in
    let* attempt = int "attempt" in
    Ok (Start { id; attempt })
  | "done" ->
    let* id = str "id" in
    let* attempt = int "attempt" in
    let* status = str "status" in
    let reason = Option.bind (Json.member "reason" json) Json.to_str in
    (* absent in journals written before result caching existed: old
       files replay unchanged *)
    let cache = Option.bind (Json.member "cache" json) Json.to_str in
    Ok (Done { id; attempt; status; reason; cache })
  | "fail" ->
    let* id = str "id" in
    let* attempt = int "attempt" in
    let* error = str "error" in
    Ok (Fail { id; attempt; error })
  | "give_up" ->
    let* id = str "id" in
    let* error = str "error" in
    Ok (Give_up { id; error })
  | "interrupted" ->
    let* id = str "id" in
    let* attempt = int "attempt" in
    Ok (Interrupted { id; attempt })
  | "drain" -> Ok Drain
  | s -> Error (Printf.sprintf "unknown journal event %S" s)

let unix_sys_error path e =
  raise (Sys_error (Printf.sprintf "%s: %s" path (Unix.error_message e)))

(* A crash mid-append (SIGKILL between the [write] and the next one)
   can leave a final record with no trailing newline. replay tolerates
   that torn tail — but only while it stays final: appending onto it
   would weld the new record to the partial line, and the merged
   garbage then sits mid-file where every later replay raises "corrupt
   journal record". Repair before the first append: a parsable
   unterminated final line just gets its missing newline; unparsable
   torn bytes are truncated away (replay already ignores them, so no
   replayed state changes). *)
let repair_tail path =
  if Sys.file_exists path then begin
    let text = In_channel.with_open_bin path In_channel.input_all in
    let n = String.length text in
    if n > 0 && text.[n - 1] <> '\n' then begin
      let cut =
        match String.rindex_opt text '\n' with Some i -> i + 1 | None -> 0
      in
      let tail = String.sub text cut (n - cut) in
      let parsable =
        match Result.bind (Json.parse tail) event_of_json with
        | Ok _ -> true
        | Error _ -> false
      in
      match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CLOEXEC ] 0o644 with
      | exception Unix.Unix_error (e, _, _) -> unix_sys_error path e
      | fd ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            match
              if parsable then begin
                ignore (Unix.lseek fd 0 Unix.SEEK_END);
                Atomic_io.fsync_append fd "\n"
              end
              else begin
                Unix.ftruncate fd cut;
                try Unix.fsync fd with Unix.Unix_error _ -> ()
              end
            with
            | () -> ()
            | exception Unix.Unix_error (e, _, _) -> unix_sys_error path e)
    end
  end

let open_ path =
  repair_tail path;
  match
    Unix.openfile path
      [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT; Unix.O_CLOEXEC ]
      0o644
  with
  | fd -> { fd; path }
  | exception Unix.Unix_error (e, _, _) -> unix_sys_error path e

let append t ev =
  Inject.fire_sys_error "service.journal";
  Atomic_io.fsync_append t.fd (Json.to_string (event_to_json ev) ^ "\n")

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let replay path =
  if not (Sys.file_exists path) then []
  else begin
    let text = In_channel.with_open_text path In_channel.input_all in
    let lines = String.split_on_char '\n' text in
    (* drop the final "" from a trailing newline; anything after the
       last newline is a torn append and may legitimately fail to
       parse *)
    let rec parse acc = function
      | [] -> List.rev acc
      | [ last ] -> (
        if String.trim last = "" then List.rev acc
        else
          match Result.bind (Json.parse last) event_of_json with
          | Ok ev -> List.rev (ev :: acc)
          | Error _ -> List.rev acc (* torn final record: crash mid-append *))
      | line :: rest -> (
        if String.trim line = "" then parse acc rest
        else
          match Result.bind (Json.parse line) event_of_json with
          | Ok ev -> parse (ev :: acc) rest
          | Error e ->
            raise (Sys_error (Printf.sprintf "%s: corrupt journal record: %s" path e)))
    in
    parse [] lines
  end

(* --- fleet journal shards ------------------------------------------ *)

let shard_path path slot =
  if slot < 0 then invalid_arg "Journal.shard_path: slot must be >= 0";
  Printf.sprintf "%s.shard%d" path slot

let shards path =
  let dir = Filename.dirname path in
  let base = Filename.basename path in
  let prefix = base ^ ".shard" in
  let plen = String.length prefix in
  let is_shard f =
    String.length f > plen
    && String.sub f 0 plen = prefix
    && String.for_all (function '0' .. '9' -> true | _ -> false)
         (String.sub f plen (String.length f - plen))
  in
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
    Array.to_list files |> List.filter is_shard
    |> List.sort (fun a b ->
           compare
             (int_of_string (String.sub a plen (String.length a - plen)))
             (int_of_string (String.sub b plen (String.length b - plen))))
    |> List.map (Filename.concat dir)

(* Event order across shards is unavailable (each worker fsyncs its own
   file), but the per-job state {!fold_state} derives is order-free
   between shards: a job's accept lives in the supervisor journal, and
   its start/done/fail counts commute. A torn tail in one shard is
   repaired/ignored locally by {!replay} and cannot poison jobs
   journaled in the other shards. *)
let replay_merged path =
  List.concat_map replay (path :: shards path)

type job_state = { job : Job.t; attempts : int; terminal : bool }

let fold_state events =
  let order = ref [] in
  let tbl : (string, job_state) Hashtbl.t = Hashtbl.create 16 in
  let update id f =
    match Hashtbl.find_opt tbl id with
    | None -> () (* record for a job we never saw accepted: ignore *)
    | Some st -> Hashtbl.replace tbl id (f st)
  in
  List.iter
    (fun ev ->
      match ev with
      | Accept job ->
        if not (Hashtbl.mem tbl job.Job.id) then begin
          Hashtbl.replace tbl job.Job.id { job; attempts = 0; terminal = false };
          order := job.Job.id :: !order
        end
      | Start { id; _ } -> update id (fun st -> { st with attempts = st.attempts + 1 })
      | Done { id; _ } | Give_up { id; _ } ->
        update id (fun st -> { st with terminal = true })
      | Interrupted { id; _ } ->
        (* a drain cut this attempt short before it could fail: it must
           not count against the retry budget on resume *)
        update id (fun st -> { st with attempts = max 0 (st.attempts - 1) })
      | Fail _ | Drain -> ())
    events;
  List.rev_map (fun id -> Hashtbl.find tbl id) !order
