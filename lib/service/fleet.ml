module Atomic_io = Bistpath_util.Atomic_io
module Json = Bistpath_util.Json
module Prng = Bistpath_util.Prng
module Telemetry = Bistpath_telemetry.Telemetry
module Budget = Bistpath_resilience.Budget
module Cancel = Bistpath_resilience.Cancel
module Inject = Bistpath_resilience.Inject
module Store = Bistpath_cache.Store

let now_ns () = Monotonic_clock.now ()
let drain_cause = "drain requested (SIGINT/SIGTERM)"
let job_prng ~seed id = Prng.split (Prng.create (seed lxor Hashtbl.hash id))
let fleet_root (cfg : Service.config) = cfg.journal_path ^ ".fleet"

let workers_json (cfg : Service.config) =
  Filename.concat (fleet_root cfg) "workers.json"

let out_path (cfg : Service.config) id ext = Filename.concat cfg.out_dir (id ^ ext)

let signal_name sg =
  if sg = Sys.sigkill then "SIGKILL"
  else if sg = Sys.sigterm then "SIGTERM"
  else if sg = Sys.sigint then "SIGINT"
  else if sg = Sys.sigsegv then "SIGSEGV"
  else if sg = Sys.sigabrt then "SIGABRT"
  else Printf.sprintf "signal %d" sg

(* ==================================================================
   Worker process: claim / attempt / commit loop.

   Runs post-fork in its own address space; all state below is the
   child's private copy. The attempt policy (budgets, breaker, typed
   give-ups, backoff with deterministic jitter) mirrors
   [Service.run_attempt] exactly — fleet mode changes who runs a job,
   never what running it means.
   ================================================================== *)

let w_drain = Atomic.make false
let w_cancel : Cancel.t option ref = ref None

let worker_request_drain () =
  Atomic.set w_drain true;
  match !w_cancel with
  | Some c -> ignore (Cancel.cancel c (Cancel.Cancelled drain_cause))
  | None -> ()

let worker_draining () = Atomic.get w_drain

(* sleep in short slices so a drain signal is honoured promptly *)
let sleep_or_drain seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  let rec nap () =
    if not (worker_draining ()) then begin
      let left = deadline -. Unix.gettimeofday () in
      if left > 0.0 then begin
        Unix.sleepf (Float.min left 0.05);
        nap ()
      end
    end
  in
  nap ()

type wstate = {
  wcfg : Service.config;
  slot : int;
  wlease : Lease.t;
  wjournal : Journal.t;
  wbreaker : Breaker.t;
  wcache : Store.t option;
}

let wlog w fmt =
  Printf.ksprintf
    (fun s -> if w.wcfg.verbose then Printf.eprintf "serve[w%d]: %s\n%!" w.slot s)
    fmt

(* Same degradation contract as the in-process service: a lost journal
   record can only cause a byte-identical re-run, never a wrong result,
   so the worker warns and keeps going. *)
let journal_append_w w ev =
  let rec go n =
    match Journal.append w.wjournal ev with
    | () -> ()
    | exception Sys_error msg ->
      if n < 4 then go (n + 1)
      else
        Printf.eprintf "serve[w%d]: warning: journal append failed: %s\n%!" w.slot
          msg
  in
  go 0

let return_quiet w (l : Lease.lease) =
  try Lease.return_ w.wlease ~slot:w.slot l
  with Sys_error msg ->
    (* the lease stays in claimed/<slot>/; the supervisor steals it
       back when it reaps this worker, so the job is not lost *)
    Printf.eprintf "serve[w%d]: warning: lease return failed: %s\n%!" w.slot msg

let backoff_ns (cfg : Service.config) ~attempts ~prng =
  let expo = Float.of_int (1 lsl min (attempts - 1) 10) in
  let jitter = 0.5 +. Prng.float prng 1.0 in
  Int64.of_float (cfg.retry_base_ms *. 1e6 *. expo *. jitter)

let give_up_w w (job : Job.t) ~error =
  let id = job.Job.id in
  journal_append_w w (Journal.Give_up { id; error });
  (try Atomic_io.write_file (out_path w.wcfg id ".err") (error ^ "\n")
   with Sys_error _ -> ());
  wlog w "[%s] FAILED permanently: %s" id error;
  Lease.release w.wlease ~slot:w.slot id

let rec claim_loop w =
  if not (worker_draining ()) then
    match Lease.claim w.wlease ~slot:w.slot with
    | Some l ->
      run_lease w l;
      claim_loop w
    | None ->
      if Lease.eof w.wlease && Lease.pending_count w.wlease = 0 then ()
      else begin
        Unix.sleepf 0.02;
        claim_loop w
      end

and run_lease w (l : Lease.lease) =
  (* per-job jitter stream, deterministic in (seed, id) like the
     in-process service *)
  let prng = job_prng ~seed:w.wcfg.seed l.job.Job.id in
  attempt_loop w ~prng l

and attempt_loop w ~prng (l : Lease.lease) =
  if worker_draining () then return_quiet w l
  else
    match Breaker.check w.wbreaker (Job.class_of l.job) with
    | Breaker.Reject wait ->
      sleep_or_drain (Float.max 0.001 (Float.min wait 0.05));
      attempt_loop w ~prng l
    | Breaker.Allow | Breaker.Probe -> run_one w ~prng l

and run_one w ~prng (l : Lease.lease) =
  let cfg = w.wcfg in
  let job = l.job in
  let id = job.Job.id in
  let attempt = l.attempts + 1 in
  (* bump the held lease before the attempt starts, so a steal after a
     crash charges this attempt against the retry budget even when the
     start record never reached the shard *)
  (try Lease.update w.wlease ~slot:w.slot { l with attempts = attempt }
   with Sys_error _ -> ());
  journal_append_w w (Journal.Start { id; attempt });
  if cfg.job_delay_ms > 0 then
    Unix.sleepf (Float.of_int cfg.job_delay_ms /. 1000.0);
  let cancel = Cancel.create () in
  w_cancel := Some cancel;
  (* the signal may have raced the register above *)
  if worker_draining () then
    ignore (Cancel.cancel cancel (Cancel.Cancelled drain_cause));
  let timeout_s =
    match job.Job.timeout_s with Some s -> Some s | None -> cfg.default_timeout_s
  in
  let leaf_budget =
    match job.Job.leaf_budget with
    | Some n -> Some n
    | None -> cfg.default_leaf_budget
  in
  let budget = Budget.create ?deadline_s:timeout_s ?leaf_budget ~cancel () in
  let t0 = now_ns () in
  let outcome =
    match
      Inject.fire "service.worker";
      Runner.execute ?cache:w.wcache ~budget job
    with
    | r -> Ok r
    | exception e -> Error (Printexc.to_string e)
  in
  w_cancel := None;
  let ms = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e6 in
  let drain_cancelled =
    match Budget.stop_reason budget with
    | Some (Cancel.Cancelled c) -> String.equal c drain_cause
    | _ -> false
  in
  let l = { l with Lease.attempts = attempt } in
  match outcome with
  | Ok (Error (Runner.Invalid_input lines | Runner.Check_findings lines)) ->
    (* deterministic failure: retrying cannot help and the breaker is
       not fed, exactly like the in-process service *)
    give_up_w w job ~error:(String.concat "; " lines)
  | _ when drain_cancelled ->
    (* the interrupted record un-counts the journaled start, and the
       lease hands the job back uncharged for the same reason *)
    journal_append_w w (Journal.Interrupted { id; attempt });
    wlog w "[%s] interrupted by drain; handed back" id;
    return_quiet w { l with Lease.attempts = attempt - 1 }
  | Ok (Ok (artifact, cache_status)) -> (
    match
      Inject.fire_sys_error "service.result_io";
      Atomic_io.write_file (out_path cfg id ".out") artifact
    with
    | () ->
      let status, reason =
        match Budget.stop_reason budget with
        | Some r -> ("degraded", Some (Cancel.describe r))
        | None -> ("ok", None)
      in
      let cache =
        match cache_status with
        | Some `Hit -> Some "hit"
        | Some `Miss -> Some "miss"
        | None -> None
      in
      journal_append_w w (Journal.Done { id; attempt; status; reason; cache });
      Breaker.success w.wbreaker (Job.class_of job);
      Lease.release w.wlease ~slot:w.slot id;
      (match status with
      | "degraded" ->
        wlog w "[%s] degraded in %.1f ms (%s)" id ms
          (Option.value reason ~default:"?")
      | _ ->
        wlog w "[%s] done in %.1f ms%s" id ms
          (match cache with Some "hit" -> " (cache hit)" | _ -> ""))
    | exception Sys_error msg ->
      handle_failure_w w ~prng l ~error:("result write failed: " ^ msg))
  | Error error -> handle_failure_w w ~prng l ~error

and handle_failure_w w ~prng (l : Lease.lease) ~error =
  let id = l.job.Job.id in
  ignore (Breaker.failure w.wbreaker (Job.class_of l.job) : bool);
  journal_append_w w (Journal.Fail { id; attempt = l.attempts; error });
  if l.attempts >= w.wcfg.max_attempts then give_up_w w l.job ~error
  else begin
    wlog w "[%s] attempt %d failed (%s); retrying with backoff" id l.attempts
      error;
    let wait_s =
      Int64.to_float (backoff_ns w.wcfg ~attempts:l.attempts ~prng) /. 1e9
    in
    (* the lease stays held through the backoff — the heartbeat domain
       keeps beating, so a slow retry is never mistaken for a stall *)
    sleep_or_drain wait_s;
    attempt_loop w ~prng l
  end

let worker_main (cfg : Service.config) ~slot =
  Atomic.set w_drain false;
  w_cancel := None;
  Sys.set_signal Sys.sigint Sys.Signal_ignore;
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle (fun _ -> worker_request_drain ()));
  let wlease = Lease.create ~root:(fleet_root cfg) ~slots:cfg.workers in
  let wjournal = Journal.open_ (Journal.shard_path cfg.journal_path slot) in
  let wcache =
    match cfg.cache_dir with
    | None -> None
    | Some dir -> (
      try Some (Store.open_ ?max_mb:cfg.cache_max_mb ~dir ())
      with Sys_error msg ->
        Printf.eprintf "serve[w%d]: warning: result cache disabled: %s\n%!" slot
          msg;
        None)
  in
  let w =
    {
      wcfg = cfg;
      slot;
      wlease;
      wjournal;
      wbreaker =
        Breaker.create ~threshold:cfg.breaker_threshold
          ~cooldown_s:cfg.breaker_cooldown_s ();
      wcache;
    }
  in
  (* first beat before the supervisor's expiry clock can see a gap *)
  (try Lease.beat wlease ~slot with Sys_error _ -> ());
  let hb_stop = Atomic.make false in
  let hb =
    Domain.spawn (fun () ->
        let interval = Float.of_int cfg.heartbeat_interval_ms /. 1000.0 in
        let warned = ref false in
        while not (Atomic.get hb_stop) do
          (try Lease.beat wlease ~slot
           with Sys_error msg ->
             if not !warned then begin
               warned := true;
               Printf.eprintf
                 "serve[w%d]: warning: heartbeat write failed: %s\n%!" slot msg
             end);
          let deadline = Unix.gettimeofday () +. interval in
          let rec nap () =
            if not (Atomic.get hb_stop) then begin
              let left = deadline -. Unix.gettimeofday () in
              if left > 0.0 then begin
                Unix.sleepf (Float.min left 0.05);
                nap ()
              end
            end
          in
          nap ()
        done)
  in
  let code =
    match claim_loop w with
    | () -> 0
    | exception e ->
      Printf.eprintf "serve[w%d]: fatal: %s\n%!" slot (Printexc.to_string e);
      1
  in
  Atomic.set hb_stop true;
  (try Domain.join hb with _ -> ());
  (try Journal.close wjournal with Sys_error _ -> ());
  if cfg.verbose then Printf.eprintf "serve[w%d]: exiting\n%!" slot;
  (* _exit, not exit: the parent's at_exit sinks (--stats/--trace
     writers) must not run again in the child *)
  Unix._exit code

(* ==================================================================
   Supervisor: fork, watch, steal, restart. Never runs a pipeline.
   ================================================================== *)

let s_drain = Atomic.make false

type slot_info = {
  mutable pid : int;  (* 0 = not running *)
  mutable spawn_wall : float;  (* heartbeat grace anchor *)
  mutable spawn_ns : int64;  (* trace-lane start *)
  mutable stall_killed : bool;  (* we SIGKILLed it for heartbeat expiry *)
  mutable crash_streak : int;  (* consecutive crashes; gates backoff *)
  mutable next_spawn_ns : int64;
  mutable ever_spawned : bool;
}

type sup = {
  scfg : Service.config;
  sjournal : Journal.t;
  slease : Lease.t;
  slots : slot_info array;
  known : (string, unit) Hashtbl.t;  (* accepted ids, this run or replayed *)
  counted : (string, unit) Hashtbl.t;  (* ids whose outcome this run reports *)
  base_fails : (string, int) Hashtbl.t;  (* pre-run Fail counts (resume) *)
  mutable s_accepted : int;
  mutable s_rejected : int;
  mutable s_journal_errors : int;
  mutable s_deaths_signal : int;
  mutable s_deaths_exit : int;
  mutable s_steals : int;
  mutable s_restarts : int;
  mutable last_metrics_ns : int64;
  mutable exhausted : bool;
  mutable eof_marked : bool;
}

let slog sup fmt =
  Printf.ksprintf
    (fun s -> if sup.scfg.verbose then Printf.eprintf "serve: %s\n%!" s)
    fmt

let journal_append_s sup ev =
  let rec go n =
    match Journal.append sup.sjournal ev with
    | () -> ()
    | exception Sys_error msg ->
      if n < 4 then go (n + 1)
      else begin
        sup.s_journal_errors <- sup.s_journal_errors + 1;
        Telemetry.incr "service.journal_errors";
        Printf.eprintf "serve: warning: journal append failed: %s\n%!" msg
      end
  in
  go 0

let give_up_s sup id ~error =
  journal_append_s sup (Journal.Give_up { id; error });
  (try Atomic_io.write_file (out_path sup.scfg id ".err") (error ^ "\n")
   with Sys_error _ -> ());
  Telemetry.incr "service.jobs_failed";
  slog sup "[%s] FAILED permanently: %s" id error

(* A lease that cannot be published is a job that can never run: record
   the give-up so the run still terminates with a truthful journal. *)
let submit_retry sup (l : Lease.lease) =
  let rec go n =
    match Lease.submit sup.slease l with
    | () -> ()
    | exception Sys_error msg ->
      if n < 4 then go (n + 1)
      else give_up_s sup l.Lease.job.Job.id ~error:("could not publish lease: " ^ msg)
  in
  go 0

let reject_spec_s sup ~default_id ~error =
  sup.s_rejected <- sup.s_rejected + 1;
  (* same rule as the in-process service: never journal a give_up under
     an id that names a legitimate accepted job *)
  if not (Hashtbl.mem sup.known default_id) then
    journal_append_s sup (Journal.Give_up { id = default_id; error });
  Printf.eprintf "serve: rejected spec %s: %s\n%!" default_id error

let alive sup =
  Array.fold_left (fun acc s -> if s.pid <> 0 then acc + 1 else acc) 0 sup.slots

let write_workers sup =
  let entries =
    Array.to_list
      (Array.mapi
         (fun i s -> (string_of_int i, Json.Num (float_of_int s.pid)))
         sup.slots)
  in
  let json =
    Json.Obj
      [
        ("supervisor", Json.Num (float_of_int (Unix.getpid ())));
        ("workers", Json.Obj entries);
      ]
  in
  try Atomic_io.write_file (workers_json sup.scfg) (Json.to_string json ^ "\n")
  with Sys_error _ -> ()

let write_metrics_s sup =
  match (sup.scfg.metrics_path, Telemetry.installed ()) with
  | None, _ | _, None -> ()
  | Some path, Some r ->
    Telemetry.set "fleet.pending_depth" (Lease.pending_count sup.slease);
    Telemetry.set "fleet.claimed_depth" (Lease.held_count sup.slease);
    Telemetry.set "fleet.workers_alive" (alive sup);
    (try Atomic_io.write_file path (Telemetry.prometheus_text r)
     with Sys_error msg ->
       Printf.eprintf "serve: warning: metrics write failed: %s\n%!" msg)

let maybe_write_metrics_s sup =
  if sup.scfg.metrics_path <> None then begin
    let interval_ns = Int64.of_int (sup.scfg.metrics_interval_ms * 1_000_000) in
    let now = now_ns () in
    if sup.last_metrics_ns = 0L || Int64.sub now sup.last_metrics_ns >= interval_ns
    then begin
      sup.last_metrics_ns <- now;
      write_metrics_s sup
    end
  end

(* Recover a dead worker's leases. A job whose started attempts already
   exhausted the retry budget took its killer down with its final
   attempt: give up instead of requeueing, so a worker-killing job
   terminates like any other failure instead of crash-looping the
   fleet. Returns how many leases were recovered. *)
let steal sup slot ~cause =
  let held = Lease.held sup.slease ~slot in
  List.iter
    (fun (l : Lease.lease) ->
      let id = l.job.Job.id in
      if l.attempts >= sup.scfg.max_attempts then begin
        Lease.discard sup.slease ~slot id;
        give_up_s sup id
          ~error:
            (Printf.sprintf "worker died (%s) on final attempt %d of %d" cause
               l.attempts sup.scfg.max_attempts)
      end
      else begin
        Lease.requeue sup.slease ~slot id;
        Telemetry.incr "fleet.requeued";
        slog sup "worker %d: requeued job %s after %s" slot id cause
      end)
    held;
  List.length held

let crashed sup slot =
  let s = sup.slots.(slot) in
  s.crash_streak <- s.crash_streak + 1;
  let backoff_ms =
    sup.scfg.retry_base_ms *. Float.of_int (1 lsl min (s.crash_streak - 1) 6)
  in
  s.next_spawn_ns <- Int64.add (now_ns ()) (Int64.of_float (backoff_ms *. 1e6))

let spawn sup slot =
  let s = sup.slots.(slot) in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 -> (
    try worker_main sup.scfg ~slot
    with e ->
      (try
         Printf.eprintf "serve[w%d]: fatal during startup: %s\n%!" slot
           (Printexc.to_string e)
       with _ -> ());
      Unix._exit 1)
  | pid ->
    s.pid <- pid;
    s.spawn_wall <- Unix.gettimeofday ();
    s.spawn_ns <- now_ns ();
    s.stall_killed <- false;
    s.ever_spawned <- true;
    Telemetry.incr "fleet.spawns";
    Telemetry.set (Printf.sprintf "fleet.worker.%d" slot) 1;
    write_workers sup;
    slog sup "worker %d started (pid %d)" slot pid

let on_death sup slot status =
  let s = sup.slots.(slot) in
  let pid = s.pid in
  s.pid <- 0;
  Telemetry.set (Printf.sprintf "fleet.worker.%d" slot) 0;
  let cause =
    match status with
    | Unix.WEXITED 0 -> "clean exit"
    | Unix.WEXITED c -> Printf.sprintf "exit %d" c
    | Unix.WSIGNALED sg -> signal_name sg
    | Unix.WSTOPPED sg -> Printf.sprintf "stop (%s)" (signal_name sg)
  in
  if Telemetry.enabled () then
    Telemetry.add_timed ~track:(slot + 2) "worker"
      ~attrs:
        [
          ("slot", string_of_int slot);
          ("pid", string_of_int pid);
          ("cause", cause);
        ]
      ~start_ns:s.spawn_ns
      ~dur_ns:(Int64.sub (now_ns ()) s.spawn_ns);
  (match status with
  | Unix.WEXITED 0 -> s.crash_streak <- 0
  | Unix.WEXITED _ ->
    sup.s_deaths_exit <- sup.s_deaths_exit + 1;
    Telemetry.incr "fleet.deaths_exit";
    crashed sup slot
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ ->
    (* a kill we sent ourselves for a stale heartbeat is accounted as a
       heartbeat expiry + lease steal, not as a worker death *)
    if not s.stall_killed then begin
      sup.s_deaths_signal <- sup.s_deaths_signal + 1;
      Telemetry.incr "fleet.deaths_signal"
    end;
    crashed sup slot);
  let stolen = steal sup slot ~cause in
  if s.stall_killed then begin
    sup.s_steals <- sup.s_steals + stolen;
    if stolen > 0 then begin
      Telemetry.incr ~by:stolen "fleet.lease_steals";
      Telemetry.instant "fleet.steal"
        ~attrs:[ ("slot", string_of_int slot); ("leases", string_of_int stolen) ]
    end
  end;
  if cause <> "clean exit" then
    slog sup "worker %d (pid %d) died (%s); %d lease(s) recovered" slot pid cause
      stolen;
  write_workers sup

let find_slot sup pid =
  let found = ref None in
  Array.iteri (fun i s -> if s.pid = pid then found := Some i) sup.slots;
  !found

let rec reap sup =
  match Unix.waitpid [ Unix.WNOHANG ] (-1) with
  | 0, _ -> ()
  | pid, status ->
    (match find_slot sup pid with
    | Some slot -> on_death sup slot status
    | None -> ());
    reap sup
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap sup

(* A worker that is alive per waitpid but silent per heartbeat is
   wedged (or SIGSTOPped): SIGKILL it — the reap that follows observes
   [stall_killed] and steals its leases. The spawn time anchors the
   grace period so a worker is never killed for a beat it has not had
   time to write. *)
let check_heartbeats sup =
  let expiry = Float.of_int sup.scfg.lease_expiry_ms /. 1000.0 in
  let now = Unix.gettimeofday () in
  Array.iteri
    (fun slot s ->
      if s.pid <> 0 && not s.stall_killed then begin
        let last =
          match Lease.beat_mtime sup.slease ~slot with
          | Some m -> Float.max m s.spawn_wall
          | None -> s.spawn_wall
        in
        if now -. last > expiry then begin
          s.stall_killed <- true;
          Telemetry.incr "fleet.heartbeat_expiries";
          Telemetry.set (Printf.sprintf "fleet.worker.%d" slot) 2;
          slog sup
            "worker %d (pid %d): heartbeat expired (%.1fs silent); killing and \
             stealing its leases"
            slot s.pid (now -. last);
          try Unix.kill s.pid Sys.sigkill with Unix.Unix_error _ -> ()
        end
      end)
    sup.slots

let respawn sup =
  if not (Atomic.get s_drain) then
    Array.iteri
      (fun slot s ->
        if s.pid = 0 then begin
          let work_remains =
            (not sup.exhausted) || Lease.pending_count sup.slease > 0
          in
          if work_remains && Int64.compare (now_ns ()) s.next_spawn_ns >= 0
          then begin
            if s.ever_spawned then begin
              sup.s_restarts <- sup.s_restarts + 1;
              Telemetry.incr "fleet.restarts"
            end;
            spawn sup slot
          end
        end)
      sup.slots

let ingest sup next_spec =
  if (not sup.exhausted) && not (Atomic.get s_drain) then begin
    let depth =
      ref (Lease.pending_count sup.slease + Lease.held_count sup.slease)
    in
    while
      (not sup.exhausted)
      && (not (Atomic.get s_drain))
      && !depth < sup.scfg.queue_cap
    do
      match next_spec () with
      | None -> sup.exhausted <- true
      | Some (default_id, line) -> (
        match Job.parse_line ~default_id line with
        | Error e -> reject_spec_s sup ~default_id ~error:("invalid job spec: " ^ e)
        | Ok job ->
          if Hashtbl.mem sup.known job.Job.id then begin
            if not sup.scfg.resume then
              reject_spec_s sup ~default_id:job.Job.id
                ~error:(Printf.sprintf "duplicate job id %S" job.Job.id)
            (* on resume a known id is simply already journaled: skip *)
          end
          else begin
            (* WAL order: the accept is durable before the job becomes
               claimable *)
            journal_append_s sup (Journal.Accept job);
            Hashtbl.replace sup.known job.Job.id ();
            Hashtbl.replace sup.counted job.Job.id ();
            sup.s_accepted <- sup.s_accepted + 1;
            Telemetry.incr "service.jobs_accepted";
            submit_retry sup { Lease.job; attempts = 0 };
            incr depth
          end)
    done
  end;
  if sup.exhausted && not sup.eof_marked then begin
    sup.eof_marked <- true;
    try Lease.mark_eof sup.slease with Sys_error _ -> ()
  end

(* --- final accounting from the merged journal ---------------------- *)

let count_retry_fails ~max_attempts events =
  let tbl = Hashtbl.create 64 in
  List.iter
    (function
      | Journal.Fail { id; attempt; _ } when attempt < max_attempts ->
        Hashtbl.replace tbl id
          (1 + Option.value (Hashtbl.find_opt tbl id) ~default:0)
      | _ -> ())
    events;
  tbl

(* Job outcomes live scattered across the supervisor journal and every
   worker shard; the merged replay is the one place they all meet. Only
   ids this run admitted or re-queued are reported (terminal jobs
   replayed on resume are history, not output), and the first terminal
   event per id wins — a crash-window duplicate re-run commits a
   byte-identical result, so which record is counted does not matter. *)
let summarize sup events =
  let verdict = Hashtbl.create 64 in
  List.iter
    (function
      | Journal.Done { id; status; _ }
        when Hashtbl.mem sup.counted id && not (Hashtbl.mem verdict id) ->
        Hashtbl.replace verdict id
          (if String.equal status "degraded" then `Degraded else `Ok)
      | Journal.Give_up { id; _ }
        when Hashtbl.mem sup.counted id && not (Hashtbl.mem verdict id) ->
        Hashtbl.replace verdict id `Failed
      | _ -> ())
    events;
  let completed = ref 0 and degraded = ref 0 in
  let failed = ref 0 and pending = ref 0 in
  Hashtbl.iter
    (fun id () ->
      match Hashtbl.find_opt verdict id with
      | Some `Ok -> incr completed
      | Some `Degraded -> incr degraded
      | Some `Failed -> incr failed
      | None -> incr pending)
    sup.counted;
  let fails = count_retry_fails ~max_attempts:sup.scfg.max_attempts events in
  let retries =
    Hashtbl.fold
      (fun id n acc ->
        if Hashtbl.mem sup.counted id then
          acc
          + max 0 (n - Option.value (Hashtbl.find_opt sup.base_fails id) ~default:0)
        else acc)
      fails 0
  in
  (!completed, !degraded, !failed, retries, !pending)

let shutdown sup ~drain =
  if drain then
    Array.iter
      (fun s ->
        if s.pid <> 0 then
          try Unix.kill s.pid Sys.sigterm with Unix.Unix_error _ -> ())
      sup.slots;
  let grace =
    Float.max 5.0 (2.0 *. Float.of_int sup.scfg.lease_expiry_ms /. 1000.0)
  in
  let deadline = Unix.gettimeofday () +. grace in
  let rec wait escalated =
    reap sup;
    if alive sup > 0 then
      if (not escalated) && Unix.gettimeofday () > deadline then begin
        Array.iter
          (fun s ->
            if s.pid <> 0 then begin
              (* a worker that ignored the drain for this long is
                 wedged: recover its leases as a steal, not a death *)
              s.stall_killed <- true;
              try Unix.kill s.pid Sys.sigkill with Unix.Unix_error _ -> ()
            end)
          sup.slots;
        wait true
      end
      else begin
        Unix.sleepf 0.02;
        wait escalated
      end
  in
  wait false

let run (cfg : Service.config) =
  if cfg.workers < 1 then invalid_arg "Fleet.run: workers must be >= 1";
  if cfg.max_attempts < 1 then invalid_arg "Fleet.run: max_attempts must be >= 1";
  if cfg.queue_cap < 1 then invalid_arg "Fleet.run: queue_cap must be >= 1";
  if cfg.heartbeat_interval_ms < 1 then
    invalid_arg "Fleet.run: heartbeat_interval_ms must be >= 1";
  if cfg.lease_expiry_ms < 1 then
    invalid_arg "Fleet.run: lease_expiry_ms must be >= 1";
  if cfg.metrics_interval_ms < 1 then
    invalid_arg "Fleet.run: metrics_interval_ms must be >= 1";
  (match cfg.source with
  | Service.Spool_dir dir when not (Sys.file_exists dir && Sys.is_directory dir)
    ->
    raise (Sys_error (dir ^ ": no such spool directory"))
  | Service.Spool_dir _ | Service.Stdin -> ());
  if not cfg.resume then
    List.iter
      (fun path ->
        if Sys.file_exists path then begin
          let st = Unix.stat path in
          if st.Unix.st_size > 0 then
            raise
              (Sys_error
                 (path
                ^ ": journal already exists; pass --resume to continue it or \
                   remove it to start fresh"))
        end)
      (cfg.journal_path :: Journal.shards cfg.journal_path);
  Atomic_io.mkdir_p cfg.out_dir;
  Atomic_io.mkdir_p (Filename.dirname cfg.journal_path);
  (match cfg.metrics_path with
  | Some p -> Atomic_io.mkdir_p (Filename.dirname p)
  | None -> ());
  let own_recorder =
    if cfg.metrics_path <> None && not (Telemetry.enabled ()) then begin
      Telemetry.install (Telemetry.create ());
      true
    end
    else false
  in
  let initial_events =
    if cfg.resume then Journal.replay_merged cfg.journal_path else []
  in
  let replayed = Journal.fold_state initial_events in
  Atomic.set s_drain false;
  let slease = Lease.create ~root:(fleet_root cfg) ~slots:cfg.workers in
  (* leftover leases from a previous incarnation are rebuilt from the
     journal below — the journal, not the lease directory, is truth *)
  Lease.reset slease;
  let sjournal = Journal.open_ cfg.journal_path in
  let sup =
    {
      scfg = cfg;
      sjournal;
      slease;
      slots =
        Array.init cfg.workers (fun _ ->
            {
              pid = 0;
              spawn_wall = 0.0;
              spawn_ns = 0L;
              stall_killed = false;
              crash_streak = 0;
              next_spawn_ns = 0L;
              ever_spawned = false;
            });
      known = Hashtbl.create 64;
      counted = Hashtbl.create 64;
      base_fails = count_retry_fails ~max_attempts:cfg.max_attempts initial_events;
      s_accepted = 0;
      s_rejected = 0;
      s_journal_errors = 0;
      s_deaths_signal = 0;
      s_deaths_exit = 0;
      s_steals = 0;
      s_restarts = 0;
      last_metrics_ns = 0L;
      exhausted = false;
      eof_marked = false;
    }
  in
  List.iter
    (fun (js : Journal.job_state) ->
      Hashtbl.replace sup.known js.Journal.job.Job.id ();
      if not js.Journal.terminal then begin
        Hashtbl.replace sup.counted js.Journal.job.Job.id ();
        if js.Journal.attempts >= cfg.max_attempts then
          give_up_s sup js.Journal.job.Job.id
            ~error:"retry budget exhausted before the previous shutdown"
        else begin
          sup.s_accepted <- sup.s_accepted + 1;
          Telemetry.incr "service.jobs_accepted";
          submit_retry sup
            { Lease.job = js.Journal.job; attempts = js.Journal.attempts }
        end
      end)
    replayed;
  if cfg.resume then
    slog sup "resume: %d journaled job(s), %d re-queued" (List.length replayed)
      (Lease.pending_count slease);
  let next_spec = Service.spec_source cfg in
  (* the handlers only set a flag: a delivery in the fork window before
     a child resets them must be harmless there too *)
  let previous_handlers =
    List.map
      (fun signum ->
        ( signum,
          Sys.signal signum (Sys.Signal_handle (fun _ -> Atomic.set s_drain true))
        ))
      [ Sys.sigint; Sys.sigterm ]
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (signum, h) -> Sys.set_signal signum h) previous_handlers;
      Journal.close sjournal;
      if own_recorder then Telemetry.uninstall ())
  @@ fun () ->
  write_workers sup;
  maybe_write_metrics_s sup;
  for slot = 0 to cfg.workers - 1 do
    spawn sup slot
  done;
  let rec loop () =
    reap sup;
    if not (Atomic.get s_drain) then begin
      ingest sup next_spec;
      check_heartbeats sup;
      respawn sup;
      maybe_write_metrics_s sup;
      if
        sup.exhausted
        && Lease.pending_count sup.slease = 0
        && Lease.held_count sup.slease = 0
      then ()
      else begin
        Unix.sleepf 0.01;
        loop ()
      end
    end
  in
  loop ();
  let drained = Atomic.get s_drain in
  shutdown sup ~drain:drained;
  if drained then journal_append_s sup Journal.Drain;
  write_workers sup;
  write_metrics_s sup;
  let completed, degraded, failed, retries, pending =
    summarize sup (Journal.replay_merged cfg.journal_path)
  in
  slog sup
    "fleet finished: %d ok, %d degraded, %d failed, %d retries; %d worker \
     death(s), %d steal(s), %d restart(s)%s"
    completed degraded failed retries
    (sup.s_deaths_signal + sup.s_deaths_exit)
    sup.s_steals sup.s_restarts
    (if drained then Printf.sprintf "; drained with %d pending" pending else "");
  {
    Service.accepted = sup.s_accepted;
    completed;
    degraded;
    failed;
    rejected_specs = sup.s_rejected;
    retries;
    breaker_trips = 0;
    journal_errors = sup.s_journal_errors;
    pending;
    drained;
    workers = cfg.workers;
    worker_deaths_signal = sup.s_deaths_signal;
    worker_deaths_exit = sup.s_deaths_exit;
    lease_steals = sup.s_steals;
    worker_restarts = sup.s_restarts;
  }
