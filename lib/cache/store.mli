(** Content-addressed on-disk result cache.

    Each entry is one file under [DIR/objects/ab/cdef...] — the key (an
    MD5 hex digest of the producing stage's canonical input encoding,
    see {!Bistpath_core.Flow.Stage}) sharded on its first two hex
    characters. An entry carries a one-line header

    {v bistpath-cache 1 <stage> <payload-md5> <payload-length> v}

    followed by the raw payload bytes; {!find} re-digests the payload
    and treats any mismatch — wrong magic, wrong stage, wrong length,
    wrong digest — as a miss, deleting the corrupt file. A damaged or
    concurrently-GC'd cache can therefore cost recomputation but never
    an exception.

    Writes go through {!Bistpath_util.Atomic_io.write_file}
    (tmp + fsync + rename), so concurrent readers observe either the
    previous entry or the complete new one, never a torn file: one
    writer and any number of readers can share a cache directory. Two
    writers racing on the same key both write the same bytes (keys are
    content hashes of deterministic pipelines), so last-rename-wins is
    harmless.

    Eviction is LRU-ish on file mtimes: {!find} touches the entry it
    serves, and {!gc} removes oldest-mtime entries until the total
    payload volume fits the cap. A store opened with [max_mb] self-GCs
    after any {!put} that overflows the cap.

    Fault injection: {!find} and {!put} probe the [cache.io] site
    ({!Bistpath_resilience.Inject}); an injected (or real) [Sys_error]
    on either path degrades to a miss / skipped write.

    Telemetry (see the registry in {!Bistpath_telemetry.Telemetry}):
    [cache.store], [cache.corrupt], [cache.evicted], [cache.io_errors].
    The hit/miss pair is counted by the consumer ({!Bistpath_core.Flow}
    and the CLI/service artifact paths), which knows the stage. *)

type t

val open_ : ?max_mb:int -> dir:string -> unit -> t
(** Create (or reuse) the cache rooted at [dir], creating [dir] and
    [dir/objects] as needed. [max_mb] caps the total payload volume;
    omitted = unbounded. Raises [Sys_error] when the directory cannot
    be created — callers degrade to running uncached. *)

val dir : t -> string

val find : t -> stage:string -> key:string -> string option
(** Payload stored under [key], or [None] on a missing, corrupt
    (deleted on sight) or unreadable entry. Touches the entry's mtime
    on a hit. *)

val put : t -> stage:string -> key:string -> string -> unit
(** Store a payload. Best-effort: I/O failures are counted
    ([cache.io_errors]) and swallowed — a read-only or full disk makes
    the cache cold, not the pipeline dead. *)

type stats = {
  entries : int;
  bytes : int;  (** total entry bytes on disk (header + payload) *)
}

val stats : t -> stats

val gc : t -> max_bytes:int -> int
(** Evict oldest-mtime entries until the payload volume is within
    [max_bytes]; returns the number of entries removed. *)

val clear : t -> int
(** Remove every entry; returns the number removed. *)
