module Atomic_io = Bistpath_util.Atomic_io
module Telemetry = Bistpath_telemetry.Telemetry
module Inject = Bistpath_resilience.Inject

type t = { dir : string; max_bytes : int option }

let magic = "bistpath-cache"
let version = "1"

let mkdir_p = Atomic_io.mkdir_p

let objects_dir t = Filename.concat t.dir "objects"

let open_ ?max_mb ~dir () =
  let t = { dir; max_bytes = Option.map (fun mb -> mb * 1024 * 1024) max_mb } in
  mkdir_p (objects_dir t);
  t

let dir t = t.dir

(* Keys are MD5 hex digests produced in-process; anything else (a
   corrupted journal replay, a hand-edited spec) must not be able to
   name a path outside the objects tree. *)
let valid_key key =
  String.length key = 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       key

let object_path t key =
  if valid_key key then
    Some
      (Filename.concat
         (Filename.concat (objects_dir t) (String.sub key 0 2))
         (String.sub key 2 30))
  else None

let header ~stage ~payload =
  Printf.sprintf "%s %s %s %s %d" magic version stage
    (Digest.to_hex (Digest.string payload))
    (String.length payload)

(* Entry = header line + raw payload; verify every header field and the
   payload digest so a truncated, swapped or bit-flipped entry is a
   miss, never a crash or a wrong answer. *)
let decode_entry ~stage text =
  match String.index_opt text '\n' with
  | None -> None
  | Some nl ->
    let payload = String.sub text (nl + 1) (String.length text - nl - 1) in
    if String.equal (String.sub text 0 nl) (header ~stage ~payload) then
      Some payload
    else None

let remove_corrupt path =
  Telemetry.incr "cache.corrupt";
  try Sys.remove path with Sys_error _ -> ()

let touch path = try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ()

(* Open the object directly rather than probing [Sys.file_exists]
   first: a concurrent [gc] (ours or another process's delete-on-sight
   of a corrupt entry) may unlink the object at any moment, and an
   exists/open pair leaves a window where the open would raise. ENOENT
   at open is therefore an ordinary miss — the entry was evicted under
   us — and once the descriptor is open POSIX keeps the inode readable
   even if the file is unlinked mid-read, so the header and payload
   always come from one consistent entry. Only genuine I/O trouble
   (permissions, bad disk, an injected [cache.io] fault) counts into
   [cache.io_errors]. *)
let find t ~stage ~key =
  match object_path t key with
  | None -> None
  | Some path -> (
    match
      Inject.fire_sys_error "cache.io";
      Unix.openfile path [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0
    with
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> None
    | exception Unix.Unix_error (_, _, _) ->
      Telemetry.incr "cache.io_errors";
      None
    | exception Sys_error _ ->
      Telemetry.incr "cache.io_errors";
      None
    | fd -> (
      let ic = Unix.in_channel_of_descr fd in
      match In_channel.input_all ic with
      | exception Sys_error _ ->
        (try In_channel.close ic with Sys_error _ -> ());
        Telemetry.incr "cache.io_errors";
        None
      | text -> (
        (try In_channel.close ic with Sys_error _ -> ());
        match decode_entry ~stage text with
        | Some payload ->
          touch path;
          Some payload
        | None ->
          remove_corrupt path;
          None)))

(* --- volume accounting and eviction -------------------------------- *)

let entry_files t =
  let root = objects_dir t in
  let shards = try Sys.readdir root with Sys_error _ -> [||] in
  Array.to_list shards
  |> List.concat_map (fun shard ->
         let sd = Filename.concat root shard in
         if (try Sys.is_directory sd with Sys_error _ -> false) then
           let files = try Sys.readdir sd with Sys_error _ -> [||] in
           Array.to_list files
           |> List.filter_map (fun f ->
                  let path = Filename.concat sd f in
                  (* an entry may vanish under us (concurrent GC) *)
                  match Unix.stat path with
                  | exception Unix.Unix_error _ -> None
                  | st when st.Unix.st_kind = Unix.S_REG ->
                    Some (path, st.Unix.st_size, st.Unix.st_mtime)
                  | _ -> None)
         else [])

type stats = { entries : int; bytes : int }

let stats t =
  List.fold_left
    (fun acc (_, size, _) -> { entries = acc.entries + 1; bytes = acc.bytes + size })
    { entries = 0; bytes = 0 } (entry_files t)

let gc t ~max_bytes =
  let files = entry_files t in
  let total = List.fold_left (fun acc (_, size, _) -> acc + size) 0 files in
  if total <= max_bytes then 0
  else begin
    (* oldest mtime first; [find] touches entries it serves, so this is
       least-recently-used up to filesystem timestamp granularity *)
    let by_age =
      List.sort (fun (_, _, a) (_, _, b) -> Float.compare a b) files
    in
    let remaining = ref total and evicted = ref 0 in
    List.iter
      (fun (path, size, _) ->
        if !remaining > max_bytes then begin
          (try
             Sys.remove path;
             remaining := !remaining - size;
             incr evicted;
             Telemetry.incr "cache.evicted"
           with Sys_error _ -> ())
        end)
      by_age;
    !evicted
  end

let clear t =
  List.fold_left
    (fun acc (path, _, _) ->
      try
        Sys.remove path;
        acc + 1
      with Sys_error _ -> acc)
    0 (entry_files t)

let put t ~stage ~key payload =
  match object_path t key with
  | None -> ()
  | Some path -> (
    match
      Inject.fire_sys_error "cache.io";
      mkdir_p (Filename.dirname path);
      Atomic_io.write_file path (header ~stage ~payload ^ "\n" ^ payload)
    with
    | () ->
      Telemetry.incr "cache.store";
      (match t.max_bytes with
      | Some cap -> ignore (gc t ~max_bytes:cap)
      | None -> ())
    | exception Sys_error _ -> Telemetry.incr "cache.io_errors")
