module Table = Bistpath_util.Table

type attr = string * string

(* --- latency histograms -------------------------------------------- *)

module Histogram = struct
  (* Fixed power-of-two log buckets: bucket 0 holds value 0 (negative
     observations clamp to 0); bucket [k >= 1] holds [2^(k-1), 2^k - 1].
     63 buckets cover the whole non-negative [int] range, so the layout
     never depends on the data and two histograms always merge
     bucket-for-bucket. *)
  let bucket_count = 63

  type t = {
    mutable count : int;
    mutable sum : int;
    mutable min_v : int;  (* meaningful only when count > 0 *)
    mutable max_v : int;
    buckets : int array;
  }

  let create () =
    { count = 0; sum = 0; min_v = max_int; max_v = 0; buckets = Array.make bucket_count 0 }

  let bucket_of v =
    if v <= 0 then 0
    else begin
      let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
      Stdlib.min (bucket_count - 1) (bits v 0)
    end

  let bucket_lower = function 0 -> 0 | k -> 1 lsl (k - 1)

  let bucket_upper k =
    if k <= 0 then 0 else if k >= bucket_count - 1 then max_int else (1 lsl k) - 1

  let observe t v =
    let v = Stdlib.max 0 v in
    t.count <- t.count + 1;
    t.sum <- t.sum + v;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v;
    let b = bucket_of v in
    t.buckets.(b) <- t.buckets.(b) + 1

  let count t = t.count
  let sum t = t.sum
  let min_value t = if t.count = 0 then 0 else t.min_v
  let max_value t = t.max_v
  let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

  (* Upper bound of the bucket holding the rank-ceil(q*count) smallest
     sample, clamped to the observed [min, max] — so a single-sample
     histogram answers every quantile exactly, and the estimate can
     never leave the observed range. Empty histograms answer 0. *)
  let quantile t q =
    if t.count = 0 then 0
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let rank = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int t.count))) in
      let rec find b cum =
        if b >= bucket_count then t.max_v
        else
          let cum = cum + t.buckets.(b) in
          if cum >= rank then
            Stdlib.min t.max_v (Stdlib.max (min_value t) (bucket_upper b))
          else find (b + 1) cum
      in
      find 0 0
    end

  let merge_into ~into src =
    if src.count > 0 then begin
      into.count <- into.count + src.count;
      into.sum <- into.sum + src.sum;
      if src.min_v < into.min_v then into.min_v <- src.min_v;
      if src.max_v > into.max_v then into.max_v <- src.max_v;
      Array.iteri (fun i n -> into.buckets.(i) <- into.buckets.(i) + n) src.buckets
    end

  let copy t = { t with buckets = Array.copy t.buckets }

  let nonzero_buckets t =
    let acc = ref [] in
    for i = bucket_count - 1 downto 0 do
      if t.buckets.(i) > 0 then acc := (bucket_lower i, t.buckets.(i)) :: !acc
    done;
    !acc
end

type span = {
  name : string;
  attrs : attr list;
  depth : int;
  parent : int option;
  start_ns : int64;
  mutable dur_ns : int64;
  mutable counters : (string * int) list;
}

type track_event = {
  ev_name : string;
  track : int;
  ev_start_ns : int64;
  ev_dur_ns : int64;
  ev_attrs : attr list;
}

type t = {
  tbl : (int, span) Hashtbl.t;  (* index -> span, indices are dense *)
  mutable len : int;
  mutable stack : int list;  (* open span indices, innermost first *)
  mutable snapshots : (string * int) list list;  (* counters at open *)
  values : (string, int) Hashtbl.t;
  hists : (string, Histogram.t) Hashtbl.t;
  gauge_names : (string, unit) Hashtbl.t;  (* names ever written by [set] *)
  mutable gauge_samples : (string * int64 * int) list;  (* newest first *)
  mutable gauge_sample_count : int;
  mutable instants : (string * attr list * int64) list;  (* newest first *)
  mutable instant_count : int;
  mutable track_events : track_event list;  (* newest first *)
  mutable track_event_count : int;
}

(* Sample streams are bounded so a long-lived recorder (a serving
   daemon) cannot grow without limit; past the cap new samples are
   dropped and counted in [telemetry.dropped_samples]. Counters,
   gauges' last values and histograms keep absorbing forever — they
   are fixed-size. *)
let max_gauge_samples = 8192
let max_instants = 4096
let max_track_events = 65536

let clock : (unit -> int64) ref = ref Monotonic_clock.now
let set_clock f = clock := f
let use_monotonic_clock () = clock := Monotonic_clock.now

let current : t option ref = ref None

(* One process-wide lock serializes every mutation of (and every read
   from) the installed recorder, so worker domains may bump counters
   concurrently with the main domain's spans. Instrumentation with no
   recorder installed stays lock-free: the [!current] check happens
   before any locking. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  match f () with
  | x ->
    Mutex.unlock lock;
    x
  | exception e ->
    Mutex.unlock lock;
    raise e

let create () =
  {
    tbl = Hashtbl.create 32;
    len = 0;
    stack = [];
    snapshots = [];
    values = Hashtbl.create 32;
    hists = Hashtbl.create 8;
    gauge_names = Hashtbl.create 8;
    gauge_samples = [];
    gauge_sample_count = 0;
    instants = [];
    instant_count = 0;
    track_events = [];
    track_event_count = 0;
  }

let install r = current := Some r
let uninstall () = current := None
let enabled () = Option.is_some !current
let installed () = !current
let now () = !clock ()

let snapshot r = Hashtbl.fold (fun k v acc -> (k, v) :: acc) r.values []

let delta_since r snap =
  Hashtbl.fold
    (fun k v acc ->
      let before = match List.assoc_opt k snap with Some x -> x | None -> 0 in
      if v <> before then (k, v - before) :: acc else acc)
    r.values []
  |> List.sort compare

let open_span r name attrs =
  let parent = match r.stack with [] -> None | i :: _ -> Some i in
  let s =
    {
      name;
      attrs;
      depth = List.length r.stack;
      parent;
      start_ns = !clock ();
      dur_ns = -1L;
      counters = [];
    }
  in
  let idx = r.len in
  Hashtbl.replace r.tbl idx s;
  r.len <- r.len + 1;
  r.stack <- idx :: r.stack;
  r.snapshots <- snapshot r :: r.snapshots;
  idx

(* Closes intervening spans too, so an exotic control path that escapes a
   nested [with_span] still leaves a well-formed trace. *)
let close_span r idx =
  let now = !clock () in
  let rec pop () =
    match (r.stack, r.snapshots) with
    | i :: stack, snap :: snaps ->
      r.stack <- stack;
      r.snapshots <- snaps;
      let s = Hashtbl.find r.tbl i in
      s.dur_ns <- Int64.sub now s.start_ns;
      s.counters <- delta_since r snap;
      if i <> idx then pop ()
    | _ -> ()
  in
  pop ()

let with_span ?(attrs = []) name f =
  match !current with
  | None -> f ()
  | Some r ->
    let idx = locked (fun () -> open_span r name attrs) in
    Fun.protect ~finally:(fun () -> locked (fun () -> close_span r idx)) f

let incr ?(by = 1) name =
  match !current with
  | None -> ()
  | Some r ->
    locked (fun () ->
        let v = match Hashtbl.find_opt r.values name with Some v -> v | None -> 0 in
        Hashtbl.replace r.values name (v + by))

let drop_sample r =
  let v =
    match Hashtbl.find_opt r.values "telemetry.dropped_samples" with
    | Some v -> v
    | None -> 0
  in
  Hashtbl.replace r.values "telemetry.dropped_samples" (v + 1)

let set name v =
  match !current with
  | None -> ()
  | Some r ->
    let ts = !clock () in
    locked (fun () ->
        Hashtbl.replace r.values name v;
        Hashtbl.replace r.gauge_names name ();
        if r.gauge_sample_count < max_gauge_samples then begin
          r.gauge_samples <- (name, ts, v) :: r.gauge_samples;
          r.gauge_sample_count <- r.gauge_sample_count + 1
        end
        else drop_sample r)

let observe name v =
  match !current with
  | None -> ()
  | Some r ->
    locked (fun () ->
        let h =
          match Hashtbl.find_opt r.hists name with
          | Some h -> h
          | None ->
            let h = Histogram.create () in
            Hashtbl.replace r.hists name h;
            h
        in
        Histogram.observe h v)

let instant ?(attrs = []) name =
  match !current with
  | None -> ()
  | Some r ->
    let ts = !clock () in
    locked (fun () ->
        if r.instant_count < max_instants then begin
          r.instants <- (name, attrs, ts) :: r.instants;
          r.instant_count <- r.instant_count + 1
        end
        else drop_sample r)

let add_timed ?(attrs = []) ~track name ~start_ns ~dur_ns =
  match !current with
  | None -> ()
  | Some r ->
    locked (fun () ->
        if r.track_event_count < max_track_events then begin
          r.track_events <-
            { ev_name = name; track; ev_start_ns = start_ns; ev_dur_ns = dur_ns;
              ev_attrs = attrs }
            :: r.track_events;
          r.track_event_count <- r.track_event_count + 1
        end
        else drop_sample r)

let collect f =
  let r = create () in
  let prev = !current in
  current := Some r;
  Fun.protect
    ~finally:(fun () -> current := prev)
    (fun () ->
      let x = f () in
      (x, r))

let spans r = locked (fun () -> List.init r.len (Hashtbl.find r.tbl))
let counters r = locked (fun () -> snapshot r) |> List.sort compare

let counter r name =
  locked (fun () ->
      match Hashtbl.find_opt r.values name with Some v -> v | None -> 0)

let histograms r =
  locked (fun () ->
      Hashtbl.fold (fun k h acc -> (k, Histogram.copy h) :: acc) r.hists [])
  |> List.sort compare

let histogram r name =
  locked (fun () -> Option.map Histogram.copy (Hashtbl.find_opt r.hists name))

let is_gauge r name = locked (fun () -> Hashtbl.mem r.gauge_names name)

let gauge_samples r = locked (fun () -> List.rev r.gauge_samples)
let instants r = locked (fun () -> List.rev r.instants)
let track_events r = locked (fun () -> List.rev r.track_events)

(* Fold a finished recording's scalar state into another recorder:
   counters add, gauges take [src]'s last value, histograms merge
   bucket-for-bucket. Spans and the bounded sample streams are NOT
   carried over — the use case is a long-lived aggregate recorder (the
   service metrics snapshot) absorbing short per-job recordings, which
   must stay O(metric names), not O(jobs). *)
let merge_into ~into src =
  if into == src then invalid_arg "Telemetry.merge_into: cannot merge a recorder into itself";
  let counters_of_src =
    locked (fun () ->
        ( snapshot src,
          Hashtbl.fold (fun k () acc -> k :: acc) src.gauge_names [],
          Hashtbl.fold (fun k h acc -> (k, Histogram.copy h) :: acc) src.hists [] ))
  in
  let cs, gauges, hs = counters_of_src in
  locked (fun () ->
      List.iter
        (fun (k, v) ->
          if List.mem k gauges then Hashtbl.replace into.values k v
          else
            let before =
              match Hashtbl.find_opt into.values k with Some x -> x | None -> 0
            in
            Hashtbl.replace into.values k (before + v))
        cs;
      List.iter (fun k -> Hashtbl.replace into.gauge_names k ()) gauges;
      List.iter
        (fun (k, h) ->
          match Hashtbl.find_opt into.hists k with
          | Some dst -> Histogram.merge_into ~into:dst h
          | None -> Hashtbl.replace into.hists k h)
        hs)

let span_count r name =
  List.length (List.filter (fun s -> String.equal s.name name) (spans r))

let total_ns r name =
  List.fold_left
    (fun acc s ->
      if String.equal s.name name && s.dur_ns >= 0L then Int64.add acc s.dur_ns
      else acc)
    0L (spans r)

(* --- rendering ----------------------------------------------------- *)

let pp_ns ns =
  let ns = Int64.to_float ns in
  if ns < 1e3 then Printf.sprintf "%.0f ns" ns
  else if ns < 1e6 then Printf.sprintf "%.1f us" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else Printf.sprintf "%.3f s" (ns /. 1e9)

let summary_table r =
  let buf = Buffer.create 512 in
  let ss = spans r in
  if ss <> [] then begin
    let root_ns =
      List.fold_left
        (fun acc s -> if s.depth = 0 && s.dur_ns > 0L then Int64.add acc s.dur_ns else acc)
        0L ss
    in
    let t =
      Table.create
        [ ("span", Table.Left); ("wall", Table.Right); ("%", Table.Right);
          ("counters", Table.Left) ]
    in
    List.iter
      (fun s ->
        let pct =
          if root_ns > 0L && s.dur_ns >= 0L then
            Printf.sprintf "%.1f"
              (100.0 *. Int64.to_float s.dur_ns /. Int64.to_float root_ns)
          else "-"
        in
        let cs =
          String.concat " "
            (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) s.counters)
        in
        Table.add_row t
          [
            String.make (2 * s.depth) ' ' ^ s.name;
            (if s.dur_ns >= 0L then pp_ns s.dur_ns else "(open)");
            pct;
            cs;
          ])
      ss;
    Buffer.add_string buf (Table.to_string t);
    Buffer.add_char buf '\n'
  end;
  (match counters r with
  | [] -> ()
  | cs ->
    if ss <> [] then Buffer.add_char buf '\n';
    let t = Table.create [ ("counter", Table.Left); ("value", Table.Right) ] in
    List.iter (fun (k, v) -> Table.add_row t [ k; string_of_int v ]) cs;
    Buffer.add_string buf (Table.to_string t);
    Buffer.add_char buf '\n');
  (match histograms r with
  | [] -> ()
  | hs ->
    Buffer.add_char buf '\n';
    let t =
      Table.create
        [ ("histogram", Table.Left); ("count", Table.Right); ("p50", Table.Right);
          ("p90", Table.Right); ("p99", Table.Right); ("max", Table.Right) ]
    in
    List.iter
      (fun (k, h) ->
        Table.add_row t
          [
            k;
            string_of_int (Histogram.count h);
            pp_ns (Int64.of_int (Histogram.quantile h 0.5));
            pp_ns (Int64.of_int (Histogram.quantile h 0.9));
            pp_ns (Int64.of_int (Histogram.quantile h 0.99));
            pp_ns (Int64.of_int (Histogram.max_value h));
          ])
      hs;
    Buffer.add_string buf (Table.to_string t);
    Buffer.add_char buf '\n');
  Buffer.contents buf

(* --- Prometheus-style text exposition ------------------------------ *)

(* Metric names may only contain [a-zA-Z0-9_:]; everything else (the
   registry uses dots) maps to '_', and a leading digit gets a '_'
   prefix. All names carry the "bistpath_" namespace. *)
let prometheus_name name =
  let buf = Buffer.create (String.length name + 9) in
  Buffer.add_string buf "bistpath_";
  (if String.length name > 0 && name.[0] >= '0' && name.[0] <= '9' then
     Buffer.add_char buf '_');
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let prometheus_text r =
  let buf = Buffer.create 1024 in
  let header name kind orig =
    Buffer.add_string buf (Printf.sprintf "# HELP %s bistpath metric %s\n" name orig);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun (k, v) ->
      if is_gauge r k then begin
        let name = prometheus_name k in
        header name "gauge" k;
        Buffer.add_string buf (Printf.sprintf "%s %d\n" name v)
      end
      else begin
        let name = prometheus_name k ^ "_total" in
        header name "counter" k;
        Buffer.add_string buf (Printf.sprintf "%s %d\n" name v)
      end)
    (counters r);
  List.iter
    (fun (k, h) ->
      let name = prometheus_name k in
      header name "summary" k;
      List.iter
        (fun q ->
          Buffer.add_string buf
            (Printf.sprintf "%s{quantile=\"%g\"} %d\n" name q (Histogram.quantile h q)))
        [ 0.5; 0.9; 0.99 ];
      Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" name (Histogram.sum h));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name (Histogram.count h)))
    (histograms r);
  Buffer.contents buf

(* --- JSON ---------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_obj_of_pairs pairs =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) v) pairs)
  ^ "}"

let json_counters cs =
  json_obj_of_pairs (List.map (fun (k, v) -> (k, string_of_int v)) cs)

let json_attrs attrs =
  json_obj_of_pairs
    (List.map (fun (k, v) -> (k, "\"" ^ json_escape v ^ "\"")) attrs)

let stats_json r =
  let span_json s =
    json_obj_of_pairs
      [
        ("name", "\"" ^ json_escape s.name ^ "\"");
        ("depth", string_of_int s.depth);
        ("start_ns", Int64.to_string s.start_ns);
        ("dur_ns", Int64.to_string s.dur_ns);
        ("attrs", json_attrs s.attrs);
        ("counters", json_counters s.counters);
      ]
  in
  let hist_json (k, h) =
    ( k,
      json_obj_of_pairs
        [
          ("count", string_of_int (Histogram.count h));
          ("sum", string_of_int (Histogram.sum h));
          ("min", string_of_int (Histogram.min_value h));
          ("max", string_of_int (Histogram.max_value h));
          ("p50", string_of_int (Histogram.quantile h 0.5));
          ("p90", string_of_int (Histogram.quantile h 0.9));
          ("p99", string_of_int (Histogram.quantile h 0.99));
        ] )
  in
  json_obj_of_pairs
    [
      ("spans", "[" ^ String.concat "," (List.map span_json (spans r)) ^ "]");
      ("counters", json_counters (counters r));
      ("histograms", json_obj_of_pairs (List.map hist_json (histograms r)));
    ]

let chrome_trace_json r =
  let ss = Array.of_list (spans r) in
  let evs = track_events r in
  let insts = instants r in
  let gsamples = gauge_samples r in
  let n = Array.length ss in
  let t0 =
    let start =
      if n > 0 then ss.(0).start_ns
      else
        match (evs, insts, gsamples) with
        | e :: _, _, _ -> e.ev_start_ns
        | [], (_, _, ts) :: _, _ -> ts
        | [], [], (_, ts, _) :: _ -> ts
        | [], [], [] -> 0L
    in
    let t0 = Array.fold_left (fun acc s -> min acc s.start_ns) start ss in
    let t0 = List.fold_left (fun acc e -> min acc e.ev_start_ns) t0 evs in
    let t0 = List.fold_left (fun acc (_, _, ts) -> min acc ts) t0 insts in
    List.fold_left (fun acc (_, ts, _) -> min acc ts) t0 gsamples
  in
  let trace_end =
    let te =
      Array.fold_left
        (fun acc s ->
          if s.dur_ns >= 0L then max acc (Int64.add s.start_ns s.dur_ns) else acc)
        t0 ss
    in
    let te =
      List.fold_left
        (fun acc e -> max acc (Int64.add e.ev_start_ns e.ev_dur_ns))
        te evs
    in
    let te = List.fold_left (fun acc (_, _, ts) -> max acc ts) te insts in
    List.fold_left (fun acc (_, ts, _) -> max acc ts) te gsamples
  in
  let end_of s = if s.dur_ns >= 0L then Int64.add s.start_ns s.dur_ns else trace_end in
  let us ns = Printf.sprintf "%.3f" (Int64.to_float (Int64.sub ns t0) /. 1e3) in
  let children = Array.make n [] in
  let roots = ref [] in
  for i = n - 1 downto 0 do
    match ss.(i).parent with
    | Some p -> children.(p) <- i :: children.(p)
    | None -> roots := i :: !roots
  done;
  let events = Buffer.create 1024 in
  let emit obj =
    if Buffer.length events > 0 then Buffer.add_string events ",\n";
    Buffer.add_string events obj
  in
  let rec walk i =
    let s = ss.(i) in
    emit
      (json_obj_of_pairs
         [
           ("ph", "\"B\"");
           ("name", "\"" ^ json_escape s.name ^ "\"");
           ("cat", "\"bistpath\"");
           ("pid", "1");
           ("tid", "1");
           ("ts", us s.start_ns);
           ("args", json_attrs s.attrs);
         ]);
    List.iter walk children.(i);
    emit
      (json_obj_of_pairs
         [
           ("ph", "\"E\"");
           ("name", "\"" ^ json_escape s.name ^ "\"");
           ("cat", "\"bistpath\"");
           ("pid", "1");
           ("tid", "1");
           ("ts", us (end_of s));
         ])
  in
  List.iter walk !roots;
  (* Timed events on explicit tracks (worker lanes): complete "X" events
     whose tid selects the Perfetto lane. Track 1 is the main domain —
     its chunk events interleave with the span tree above. *)
  List.iter
    (fun e ->
      emit
        (json_obj_of_pairs
           [
             ("ph", "\"X\"");
             ("name", "\"" ^ json_escape e.ev_name ^ "\"");
             ("cat", "\"bistpath\"");
             ("pid", "1");
             ("tid", string_of_int e.track);
             ("ts", us e.ev_start_ns);
             ("dur", Printf.sprintf "%.3f" (Int64.to_float e.ev_dur_ns /. 1e3));
             ("args", json_attrs e.ev_attrs);
           ]))
    evs;
  (* Instant events (budget trips, ...): global-scope "i" marks. *)
  List.iter
    (fun (name, attrs, ts) ->
      emit
        (json_obj_of_pairs
           [
             ("ph", "\"i\"");
             ("s", "\"g\"");
             ("name", "\"" ^ json_escape name ^ "\"");
             ("cat", "\"bistpath\"");
             ("pid", "1");
             ("tid", "1");
             ("ts", us ts);
             ("args", json_attrs attrs);
           ]))
    insts;
  (* Gauge time series: one "C" (counter-track) event per [set] call, so
     Perfetto draws queue depth / breaker state / pool occupancy as
     value tracks alongside the spans. *)
  List.iter
    (fun (name, ts, v) ->
      emit
        (json_obj_of_pairs
           [
             ("ph", "\"C\"");
             ("name", "\"" ^ json_escape name ^ "\"");
             ("pid", "1");
             ("tid", "1");
             ("ts", us ts);
             ("args", json_obj_of_pairs [ ("value", string_of_int v) ]);
           ]))
    gsamples;
  (* Final values of every counter, stamped at the trace end. *)
  List.iter
    (fun (k, v) ->
      emit
        (json_obj_of_pairs
           [
             ("ph", "\"C\"");
             ("name", "\"" ^ json_escape k ^ "\"");
             ("pid", "1");
             ("tid", "1");
             ("ts", us trace_end);
             ("args", json_obj_of_pairs [ ("value", string_of_int v) ]);
           ]))
    (counters r);
  "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n" ^ Buffer.contents events
  ^ "\n]}\n"

let write_file path contents = Bistpath_util.Atomic_io.write_file path contents
