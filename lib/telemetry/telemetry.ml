module Table = Bistpath_util.Table

type attr = string * string

type span = {
  name : string;
  attrs : attr list;
  depth : int;
  parent : int option;
  start_ns : int64;
  mutable dur_ns : int64;
  mutable counters : (string * int) list;
}

type t = {
  tbl : (int, span) Hashtbl.t;  (* index -> span, indices are dense *)
  mutable len : int;
  mutable stack : int list;  (* open span indices, innermost first *)
  mutable snapshots : (string * int) list list;  (* counters at open *)
  values : (string, int) Hashtbl.t;
}

let clock : (unit -> int64) ref = ref Monotonic_clock.now
let set_clock f = clock := f
let use_monotonic_clock () = clock := Monotonic_clock.now

let current : t option ref = ref None

(* One process-wide lock serializes every mutation of (and every read
   from) the installed recorder, so worker domains may bump counters
   concurrently with the main domain's spans. Instrumentation with no
   recorder installed stays lock-free: the [!current] check happens
   before any locking. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  match f () with
  | x ->
    Mutex.unlock lock;
    x
  | exception e ->
    Mutex.unlock lock;
    raise e

let create () =
  { tbl = Hashtbl.create 32; len = 0; stack = []; snapshots = []; values = Hashtbl.create 32 }

let install r = current := Some r
let uninstall () = current := None
let enabled () = Option.is_some !current

let snapshot r = Hashtbl.fold (fun k v acc -> (k, v) :: acc) r.values []

let delta_since r snap =
  Hashtbl.fold
    (fun k v acc ->
      let before = match List.assoc_opt k snap with Some x -> x | None -> 0 in
      if v <> before then (k, v - before) :: acc else acc)
    r.values []
  |> List.sort compare

let open_span r name attrs =
  let parent = match r.stack with [] -> None | i :: _ -> Some i in
  let s =
    {
      name;
      attrs;
      depth = List.length r.stack;
      parent;
      start_ns = !clock ();
      dur_ns = -1L;
      counters = [];
    }
  in
  let idx = r.len in
  Hashtbl.replace r.tbl idx s;
  r.len <- r.len + 1;
  r.stack <- idx :: r.stack;
  r.snapshots <- snapshot r :: r.snapshots;
  idx

(* Closes intervening spans too, so an exotic control path that escapes a
   nested [with_span] still leaves a well-formed trace. *)
let close_span r idx =
  let now = !clock () in
  let rec pop () =
    match (r.stack, r.snapshots) with
    | i :: stack, snap :: snaps ->
      r.stack <- stack;
      r.snapshots <- snaps;
      let s = Hashtbl.find r.tbl i in
      s.dur_ns <- Int64.sub now s.start_ns;
      s.counters <- delta_since r snap;
      if i <> idx then pop ()
    | _ -> ()
  in
  pop ()

let with_span ?(attrs = []) name f =
  match !current with
  | None -> f ()
  | Some r ->
    let idx = locked (fun () -> open_span r name attrs) in
    Fun.protect ~finally:(fun () -> locked (fun () -> close_span r idx)) f

let incr ?(by = 1) name =
  match !current with
  | None -> ()
  | Some r ->
    locked (fun () ->
        let v = match Hashtbl.find_opt r.values name with Some v -> v | None -> 0 in
        Hashtbl.replace r.values name (v + by))

let set name v =
  match !current with
  | None -> ()
  | Some r -> locked (fun () -> Hashtbl.replace r.values name v)

let collect f =
  let r = create () in
  let prev = !current in
  current := Some r;
  Fun.protect
    ~finally:(fun () -> current := prev)
    (fun () ->
      let x = f () in
      (x, r))

let spans r = locked (fun () -> List.init r.len (Hashtbl.find r.tbl))
let counters r = locked (fun () -> snapshot r) |> List.sort compare

let counter r name =
  locked (fun () ->
      match Hashtbl.find_opt r.values name with Some v -> v | None -> 0)

let span_count r name =
  List.length (List.filter (fun s -> String.equal s.name name) (spans r))

let total_ns r name =
  List.fold_left
    (fun acc s ->
      if String.equal s.name name && s.dur_ns >= 0L then Int64.add acc s.dur_ns
      else acc)
    0L (spans r)

(* --- rendering ----------------------------------------------------- *)

let pp_ns ns =
  let ns = Int64.to_float ns in
  if ns < 1e3 then Printf.sprintf "%.0f ns" ns
  else if ns < 1e6 then Printf.sprintf "%.1f us" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else Printf.sprintf "%.3f s" (ns /. 1e9)

let summary_table r =
  let buf = Buffer.create 512 in
  let ss = spans r in
  if ss <> [] then begin
    let root_ns =
      List.fold_left
        (fun acc s -> if s.depth = 0 && s.dur_ns > 0L then Int64.add acc s.dur_ns else acc)
        0L ss
    in
    let t =
      Table.create
        [ ("span", Table.Left); ("wall", Table.Right); ("%", Table.Right);
          ("counters", Table.Left) ]
    in
    List.iter
      (fun s ->
        let pct =
          if root_ns > 0L && s.dur_ns >= 0L then
            Printf.sprintf "%.1f"
              (100.0 *. Int64.to_float s.dur_ns /. Int64.to_float root_ns)
          else "-"
        in
        let cs =
          String.concat " "
            (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) s.counters)
        in
        Table.add_row t
          [
            String.make (2 * s.depth) ' ' ^ s.name;
            (if s.dur_ns >= 0L then pp_ns s.dur_ns else "(open)");
            pct;
            cs;
          ])
      ss;
    Buffer.add_string buf (Table.to_string t);
    Buffer.add_char buf '\n'
  end;
  (match counters r with
  | [] -> ()
  | cs ->
    if ss <> [] then Buffer.add_char buf '\n';
    let t = Table.create [ ("counter", Table.Left); ("value", Table.Right) ] in
    List.iter (fun (k, v) -> Table.add_row t [ k; string_of_int v ]) cs;
    Buffer.add_string buf (Table.to_string t);
    Buffer.add_char buf '\n');
  Buffer.contents buf

(* --- JSON ---------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_obj_of_pairs pairs =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) v) pairs)
  ^ "}"

let json_counters cs =
  json_obj_of_pairs (List.map (fun (k, v) -> (k, string_of_int v)) cs)

let json_attrs attrs =
  json_obj_of_pairs
    (List.map (fun (k, v) -> (k, "\"" ^ json_escape v ^ "\"")) attrs)

let stats_json r =
  let span_json s =
    json_obj_of_pairs
      [
        ("name", "\"" ^ json_escape s.name ^ "\"");
        ("depth", string_of_int s.depth);
        ("start_ns", Int64.to_string s.start_ns);
        ("dur_ns", Int64.to_string s.dur_ns);
        ("attrs", json_attrs s.attrs);
        ("counters", json_counters s.counters);
      ]
  in
  json_obj_of_pairs
    [
      ("spans", "[" ^ String.concat "," (List.map span_json (spans r)) ^ "]");
      ("counters", json_counters (counters r));
    ]

let chrome_trace_json r =
  let ss = Array.of_list (spans r) in
  let n = Array.length ss in
  let t0 =
    Array.fold_left (fun acc s -> min acc s.start_ns)
      (if n = 0 then 0L else ss.(0).start_ns)
      ss
  in
  let trace_end =
    Array.fold_left
      (fun acc s ->
        if s.dur_ns >= 0L then max acc (Int64.add s.start_ns s.dur_ns) else acc)
      t0 ss
  in
  let end_of s = if s.dur_ns >= 0L then Int64.add s.start_ns s.dur_ns else trace_end in
  let us ns = Printf.sprintf "%.3f" (Int64.to_float (Int64.sub ns t0) /. 1e3) in
  let children = Array.make n [] in
  let roots = ref [] in
  for i = n - 1 downto 0 do
    match ss.(i).parent with
    | Some p -> children.(p) <- i :: children.(p)
    | None -> roots := i :: !roots
  done;
  let events = Buffer.create 1024 in
  let emit obj =
    if Buffer.length events > 0 then Buffer.add_string events ",\n";
    Buffer.add_string events obj
  in
  let rec walk i =
    let s = ss.(i) in
    emit
      (json_obj_of_pairs
         [
           ("ph", "\"B\"");
           ("name", "\"" ^ json_escape s.name ^ "\"");
           ("cat", "\"bistpath\"");
           ("pid", "1");
           ("tid", "1");
           ("ts", us s.start_ns);
           ("args", json_attrs s.attrs);
         ]);
    List.iter walk children.(i);
    emit
      (json_obj_of_pairs
         [
           ("ph", "\"E\"");
           ("name", "\"" ^ json_escape s.name ^ "\"");
           ("cat", "\"bistpath\"");
           ("pid", "1");
           ("tid", "1");
           ("ts", us (end_of s));
         ])
  in
  List.iter walk !roots;
  List.iter
    (fun (k, v) ->
      emit
        (json_obj_of_pairs
           [
             ("ph", "\"C\"");
             ("name", "\"" ^ json_escape k ^ "\"");
             ("pid", "1");
             ("tid", "1");
             ("ts", us trace_end);
             ("args", json_obj_of_pairs [ ("value", string_of_int v) ]);
           ]))
    (counters r);
  "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n" ^ Buffer.contents events
  ^ "\n]}\n"

let write_file path contents = Bistpath_util.Atomic_io.write_file path contents
