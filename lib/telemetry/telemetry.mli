(** Pipeline telemetry: hierarchical timed spans, named counters and
    gauges, and pluggable export sinks.

    The synthesis pipeline is instrumented with {!with_span}, {!incr} and
    {!set} calls throughout [Flow.run], the allocators and the gate-level
    simulators. When no recorder is installed (the default) every
    instrumentation point costs a single global read and branch, so
    leaving the calls in hot paths is free in practice. Installing a
    {!type:t} recorder (see {!install} / {!collect}) captures a trace that
    can then be exported as a human-readable summary table
    ({!summary_table}), a JSON statistics dump ({!stats_json}), or a
    Chrome trace-event file ({!chrome_trace_json}) loadable in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto} for
    flamegraph views.

    {1 Counter name registry}

    Counters are monotonic within one recording; gauges ({!set}) hold the
    last written value. The pipeline emits the following names:

    - [clique.iterations] — merge rounds of
      [Clique_partition.greedy] (module assignment, CP register
      allocation).
    - [clique.merges] — super-vertex merges actually performed.
    - [regalloc.steps] — coloring steps of the testable register
      allocator (one per conflict-graph vertex).
    - [regalloc.fresh_registers] — steps that had to open a new register.
    - [regalloc.sd_evals] — sharing-degree evaluations while ranking
      candidate registers.
    - [regalloc.cbilbo_avoided] — candidate registers discarded because
      the merge would create a Lemma-2 CBILBO situation.
    - [interconnect.orientations] — operand-orientation assignments
      scored by the interconnect optimizer.
    - [bist.units] — functional units considered by the BIST allocator.
    - [bist.embedding_candidates] — I-path embeddings enumerated across
      all units before the search.
    - [bist.embeddings_explored] — candidate embeddings applied during
      the branch-and-bound search (search nodes).
    - [bist.cbilbos_avoided] — enumerated CBILBO-requiring embeddings the
      chosen solution managed to avoid.
    - [fault_sim.faults] — faults submitted to parallel fault simulation.
    - [fault_sim.events] — fault-pattern simulation events
      (faults x patterns).
    - [podem.backtracks] — PODEM decision backtracks.
    - [podem.tests] / [podem.untestable] / [podem.aborts] — PODEM
      per-fault outcomes.
    - [bist_sim.patterns] — test patterns applied by the BIST session
      simulator.
    - [bist_sim.faults] — faults graded by the BIST session simulator.
    - [parallel.tasks] — tasks executed by the domain pool
      ([Bistpath_parallel.Pool]).
    - [parallel.chunks] — work chunks formed by [Par.map_array] /
      [Par.map_list] (parallel path only; [jobs = 1] runs sequentially
      and counts nothing).
    - [parallel.items] — elements processed through the parallel
      combinators (parallel path only).
    - [resilience.deadline_hits] — budgets whose wall-clock deadline
      tripped ([Bistpath_resilience.Budget], first trip per budget).
    - [resilience.cancelled_chunks] — parallel work chunks abandoned at
      entry because a budget's token had tripped
      ([Par.map_array_budget] / [Par.map_list_budget]).
    - [resilience.injected] — fault-injection shots that fired
      ([Bistpath_resilience.Inject]).
    - [service.jobs_accepted] — job specs admitted to the serve queue
      ([Bistpath_service.Service]).
    - [service.jobs_completed] — jobs that produced a complete result.
    - [service.jobs_degraded] — jobs whose own budget tripped; their
      best-so-far result was still written.
    - [service.jobs_failed] — jobs that ran and ended in a typed
      failure record (retries exhausted, invalid input design, or
      static-check findings). Rejected specs that never became jobs
      are not counted here.
    - [service.retries] — failed attempts re-queued with backoff.
    - [service.breaker_trips] — circuit breakers that transitioned
      from closed (or half-open) to open.
    - [service.journal_errors] — write-ahead journal appends that
      failed even after bounded retries (the daemon degrades to
      in-memory state rather than crashing).
    - [check.rules_run] — static-analysis rules evaluated to
      completion by [Bistpath_check.Check.run].
    - [check.rules_crashed] — rules that raised; each is degraded to a
      per-rule [CHK000] finding instead of failing the check run.
    - [check.rules_skipped] — rules not evaluated because the budget
      tripped before they were scheduled.
    - [check.findings] — findings reported by rules (before
      suppression).
    - [check.suppressed] — findings hidden by per-rule suppression
      ([--suppress]).
    - [rtl.parse_errors] — error-severity diagnostics accumulated by
      the Verilog parse-back front end ([Bistpath_rtl.Parser.parse]),
      including injected [rtl.parse] faults.
    - [absint.solves] — abstract-interpretation fixpoint solves
      completed ([Bistpath_absint.Absint.solve_dfg] /
      [solve_control]).
    - [absint.iterations] — total fixpoint passes across all solves.
    - [absint.widenings] — abstract values widened to break an
      ascending chain (loop write-back kernels).
    - [parallel.busy_ns] — summed wall time workers spent executing
      pool tasks (all lanes).
    - [parallel.idle_ns] — summed wall time workers spent parked while
      a batch still had tasks in flight (starvation/skew signal).
    - [parallel.stall_ns] — wall time the submitting domain waited on
      the tail of a batch after the queue drained (load-imbalance
      tail).
    - [parallel.steals] — queued tasks the submitting domain stole
      back and ran itself during its help-first wait.
    - [telemetry.dropped_samples] — gauge samples / instants / track
      events discarded because a bounded sample stream hit its cap
      (the scalar aggregates keep absorbing).
    - [cache.hit] / [cache.miss] — result-cache lookups that
      found / did not find a reusable entry, in aggregate; the
      per-stage breakdown lands in [cache.hit.<stage>] /
      [cache.miss.<stage>] ([schedule], [alloc], [interconnect],
      [bist], [rtl], [report]).
    - [cache.store] — entries committed to the result cache
      ([Bistpath_cache.Store]).
    - [cache.corrupt] — entries whose integrity header or payload
      failed verification on read; each is deleted and counted as a
      miss, never a crash.
    - [cache.evicted] — entries removed by LRU garbage collection
      (explicit [gc] or the automatic post-[put] pass under a size
      cap).
    - [cache.io_errors] — cache reads/writes that failed with
      [Sys_error] (including injected [cache.io] faults); a failed
      read degrades to a miss, a failed write to a skipped store.
    - [fleet.spawns] — worker processes forked by the fleet supervisor
      ([Bistpath_service.Fleet]), initial and replacement alike.
    - [fleet.restarts] — replacement forks only (a slot whose previous
      worker died).
    - [fleet.deaths_signal] — workers reaped after a genuine signal
      death (SIGKILL, OOM, segfault). Supervisor-initiated kills
      (heartbeat expiry, shutdown escalation) are counted under
      [fleet.heartbeat_expiries] / steals instead.
    - [fleet.deaths_exit] — workers that exited nonzero: a worker-loop
      error, not a job failure (jobs failing is [service.jobs_failed]
      in the worker's own recorder).
    - [fleet.heartbeat_expiries] — workers presumed wedged (no
      heartbeat within the lease expiry) and killed by the supervisor.
    - [fleet.lease_steals] — leases recovered from dead or expired
      workers and re-queued or terminally failed.
    - [fleet.requeued] — stolen leases whose retry budget allowed a
      re-run (the re-queued subset of [fleet.lease_steals]).

    {1 Histogram registry}

    Latency distributions recorded via {!observe} (log-bucket
    {!Histogram}s; read back with {!histograms} / {!histogram}, export
    via {!prometheus_text} quantiles):

    - [parallel.chunk_ns] — per-chunk (pool task) execution time.
    - [parallel.stall_ns] — per-batch submitter tail-wait time.
    - [check.rule_ns] — per-rule static-analysis evaluation time.
    - [absint.solve_ns] — per-solve abstract-interpretation fixpoint
      time (both solvers).
    - [rtl.verify_ns] — end-to-end parse-back verification time
      ([Bistpath_rtl.Equiv.verify]: parse, elaborate, structural
      match, simulation cross-check).
    - [service.job_ns] — per-attempt job execution wall time
      (cache-served attempts excluded — see below).
    - [service.job_ns_cached] — wall time of attempts whose artifact
      was served from the result cache. Kept as its own series so the
      orders-of-magnitude-faster cache hits cannot drag the pipeline
      latency quantiles down and mask real regressions.
    - [service.queue_wait_ns] — time a job waited in the serve queue
      (or backoff) before its attempt started.

    Gauges set by [Flow.run]: [regs.allocated], [muxes.allocated],
    [bist.delta_gates], [sessions.count]. Gauges set by the parallel
    engine: [parallel.jobs] (pool width), [parallel.max_active] (peak
    concurrently busy workers — pool occupancy) and [parallel.active]
    (current busy workers; sampled on every task start/finish, so the
    Chrome-trace sink shows pool occupancy as a counter track). The
    CLI sets [resilience.degraded] to 1 when a run ends degraded (exit
    code 3). Gauges set by the service layer: [service.queue_depth]
    (jobs waiting or retrying), [service.breaker_open] (job classes
    currently failing fast) and — in the [--metrics] snapshot —
    [service.breaker.<class>] (0 closed, 1 half-open, 2 open). Gauges
    set by the fleet supervisor: [fleet.workers_alive],
    [fleet.pending_depth] / [fleet.claimed_depth] (spool occupancy)
    and [fleet.worker.<slot>] (0 dead, 1 alive, 2 heartbeat-expired).

    Instant events from the fleet supervisor: [fleet.steal] with
    [slot] and [leases] attributes, emitted when a heartbeat-expired
    worker's leases are recovered.

    Instant events ({!instant}; ["i"]-phase marks in the Chrome
    trace): [budget.trip] with a [reason] attribute, emitted the
    moment a {!Bistpath_resilience.Budget} trips.

    Span names emitted by [Flow.run]: a root [flow] span containing
    [regalloc], [interconnect], [bist_alloc] and [sessions], one each.

    {1 Domain safety}

    All instrumentation points ({!with_span}, {!incr}, {!set}) and
    recorder reads are serialized by one process-wide mutex, so worker
    domains of [Bistpath_parallel] may bump counters concurrently with
    the main domain without crashing the recorder or losing counts.
    Spans, however, form a single stack: open and close spans from one
    domain at a time (in practice, only the main domain opens spans;
    workers only touch counters). When no recorder is installed the
    fast path remains a lock-free global read and branch. *)

type attr = string * string

(** Fixed log-bucket latency histograms.

    Power-of-two buckets: bucket 0 holds the value 0 (negative
    observations clamp to 0); bucket [k >= 1] holds the closed range
    [[2^(k-1), 2^k - 1]]. The layout is data-independent, so any two
    histograms merge bucket-for-bucket, and an observation is O(1)
    with no allocation. Quantiles are estimated as the upper bound of
    the bucket holding the rank-[ceil (q * count)] smallest sample,
    clamped to the observed [[min, max]] — a single-sample histogram
    therefore answers every quantile exactly, and estimates never
    leave the observed range. A standalone value type: also usable
    outside a recorder. Not domain-safe on its own (the recorder's
    mutex serializes the {!observe}-by-name instrumentation path). *)
module Histogram : sig
  type t

  val create : unit -> t
  val observe : t -> int -> unit
  val count : t -> int
  val sum : t -> int

  val min_value : t -> int
  (** Smallest observation (after clamping); 0 when empty. *)

  val max_value : t -> int
  (** Largest observation; 0 when empty. *)

  val mean : t -> float
  (** Arithmetic mean; 0.0 when empty. *)

  val quantile : t -> float -> int
  (** [quantile t q] for [q] in [[0, 1]] (clamped). 0 when empty. *)

  val merge_into : into:t -> t -> unit
  (** Add [src]'s counts/sum/extrema into [into]; [src] unchanged. *)

  val copy : t -> t

  val bucket_of : int -> int
  (** Index of the bucket a value lands in. *)

  val bucket_lower : int -> int
  (** Inclusive lower bound of bucket [k]. *)

  val bucket_upper : int -> int
  (** Inclusive upper bound of bucket [k] ([max_int] for the last). *)

  val nonzero_buckets : t -> (int * int) list
  (** [(bucket lower bound, count)] for every non-empty bucket,
      ascending. *)
end

type span = private {
  name : string;
  attrs : attr list;
  depth : int;  (** 0 for root spans *)
  parent : int option;  (** index of the enclosing span, in {!spans} order *)
  start_ns : int64;  (** monotonic clock at open *)
  mutable dur_ns : int64;  (** wall time; [-1L] while still open *)
  mutable counters : (string * int) list;
      (** counter deltas attributed to this span (including children),
          sorted by name *)
}

type track_event = {
  ev_name : string;
  track : int;
      (** explicit Chrome-trace lane ([tid]): 1 = submitting domain,
          2..jobs = spawned pool workers *)
  ev_start_ns : int64;
  ev_dur_ns : int64;
  ev_attrs : attr list;
}
(** A completed timed event pinned to an explicit track, recorded
    after the fact with {!add_timed}. Unlike spans these need no
    nesting discipline, so worker domains record them freely. *)

type t
(** A recorder: an in-memory sink accumulating spans, counters,
    histograms and bounded sample streams. *)

(** {1 Recording} *)

val create : unit -> t

val install : t -> unit
(** Make [t] the process-wide current sink. *)

val uninstall : unit -> unit
(** Remove the current sink; instrumentation reverts to no-ops. *)

val enabled : unit -> bool

val installed : unit -> t option
(** The currently installed recorder, if any (the service supervisor
    uses this to fold per-job recordings into a long-lived one). *)

val now : unit -> int64
(** Read the recorder clock (the one set by {!set_clock}), whether or
    not a recorder is installed. *)

val collect : (unit -> 'a) -> 'a * t
(** [collect f] runs [f] under a fresh recorder (restoring the previous
    sink afterwards, even on exceptions) and returns its result and the
    recording. *)

val set_clock : (unit -> int64) -> unit
(** Override the nanosecond clock (tests use a deterministic counter). *)

val use_monotonic_clock : unit -> unit
(** Restore the default monotonic clock. *)

(** {1 Instrumentation points} *)

val with_span : ?attrs:attr list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f] as a child of the innermost open span.
    The span is closed even if [f] raises. No-op wrapper when disabled. *)

val incr : ?by:int -> string -> unit
(** Add [by] (default 1) to a named counter. *)

val set : string -> int -> unit
(** Write a gauge: the counter takes exactly this value. Each write
    also appends a timestamped sample to a bounded stream so the
    Chrome-trace sink can render the gauge as a counter track. *)

val observe : string -> int -> unit
(** Record one sample into the named {!Histogram} (created on first
    use). No-op when disabled. *)

val instant : ?attrs:attr list -> string -> unit
(** Record a point-in-time mark (an ["i"]-phase event in the Chrome
    trace), e.g. a budget trip. No-op when disabled. *)

val add_timed :
  ?attrs:attr list -> track:int -> string -> start_ns:int64 -> dur_ns:int64 -> unit
(** Record an already-measured interval on an explicit track (see
    {!type:track_event}). Pool workers use this for per-chunk
    profiling events; safe from any domain. No-op when disabled. *)

(** {1 Reading a recording} *)

val spans : t -> span list
(** All spans in opening order (parents before children). *)

val counters : t -> (string * int) list
(** Final counter values, sorted by name. *)

val counter : t -> string -> int
(** Final value of one counter; 0 if never touched. *)

val histograms : t -> (string * Histogram.t) list
(** Snapshot copies of all histograms, sorted by name. *)

val histogram : t -> string -> Histogram.t option
(** Snapshot copy of one histogram, if it has ever been observed. *)

val is_gauge : t -> string -> bool
(** Whether the named counter was ever written with {!set} (the
    Prometheus sink uses this to pick [gauge] vs [counter] types). *)

val gauge_samples : t -> (string * int64 * int) list
(** Timestamped gauge writes [(name, ts_ns, value)] in chronological
    order (bounded stream; overflow counts into
    [telemetry.dropped_samples]). *)

val instants : t -> (string * attr list * int64) list
(** Recorded instant marks in chronological order (bounded). *)

val track_events : t -> track_event list
(** Recorded explicit-track events in chronological order (bounded). *)

val merge_into : into:t -> t -> unit
(** Fold [src]'s scalar aggregates into [into]: counters add, gauges
    take [src]'s last value, histograms merge bucket-for-bucket.
    Spans and bounded sample streams are deliberately not merged, so
    folding many short-lived recordings (one per service job) into a
    long-lived one stays O(metric names), not O(jobs). Raises
    [Invalid_argument] on self-merge. *)

val span_count : t -> string -> int
(** Number of spans with the given name. *)

val total_ns : t -> string -> int64
(** Summed wall time of all closed spans with the given name. *)

(** {1 Export sinks} *)

val summary_table : t -> string
(** Human-readable report built on [Bistpath_util.Table]: a span tree
    with wall times and per-span counter deltas, then the counter
    totals. *)

val stats_json : t -> string
(** [{"spans":[...],"counters":{...}}] machine-readable dump. *)

val chrome_trace_json : t -> string
(** Chrome trace-event JSON ([{"traceEvents":[...]}]): one [B]/[E] event
    pair per span (properly nested), one [X] (complete) event per
    explicit-track event (per-worker pool lanes), one [i] (instant)
    event per recorded mark, one [C] (counter) event per gauge sample
    (Perfetto renders these as counter tracks) and one final [C] event
    per counter. Load in [chrome://tracing] or Perfetto. *)

val prometheus_text : t -> string
(** Prometheus text exposition (version 0.0.4): every metric name is
    sanitized to [[a-zA-Z0-9_:]] and prefixed [bistpath_]; counters
    get a [_total] suffix and [# TYPE ... counter], gauges
    [# TYPE ... gauge], histograms become [summary] families with
    [{quantile="0.5"|"0.9"|"0.99"}] sample lines plus [_sum] and
    [_count]. Suitable for a node-exporter-style textfile collector
    or an HTTP scrape endpoint fronting the file. *)

val write_file : string -> string -> unit
(** [write_file path contents] — helper used by the CLI/bench sinks.
    Writes atomically via {!Bistpath_util.Atomic_io.write_file}
    (tmp + rename + fsync), so a crash mid-write can never leave a
    truncated artifact on disk. Raises [Sys_error] on failure. *)

val json_escape : string -> string
(** Escape a string for inclusion inside JSON double quotes (exposed for
    external sinks such as the benchmark harness). *)
