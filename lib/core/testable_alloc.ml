module Dfg = Bistpath_dfg.Dfg
module Lifetime = Bistpath_dfg.Lifetime
module Massign = Bistpath_dfg.Massign
module Sset = Bistpath_dfg.Dfg.Sset
module Chordal = Bistpath_graphs.Chordal
module Ugraph = Bistpath_graphs.Ugraph
module Regalloc = Bistpath_datapath.Regalloc
module Listx = Bistpath_util.Listx
module Telemetry = Bistpath_telemetry.Telemetry

type options = {
  sd_ordering : bool;
  case_preferences : bool;
  cbilbo_avoidance : bool;
}

let default_options =
  { sd_ordering = true; case_preferences = true; cbilbo_avoidance = true }

type trace_step = {
  vertex : string;
  chosen : string;
  fresh : bool;
  reason : string;
}

(* Interconnect affinity (the paper's final tie-break "taking into
   consideration the effect of the assignment on interconnect cost"):
   merging v into a register whose variables share source or destination
   units avoids new multiplexer inputs (Fig. 6 cases 3-5). *)
let affinity ctx vars v =
  let units_of f vs = List.sort_uniq compare (List.concat_map f vs) in
  let srcs = units_of (Sharing.source_units ctx) vars in
  let dsts = units_of (Sharing.dest_units ctx) vars in
  let v_srcs = Sharing.source_units ctx v in
  let v_dsts = Sharing.dest_units ctx v in
  List.length (List.filter (fun u -> List.mem u srcs) v_srcs)
  + List.length (List.filter (fun u -> List.mem u dsts) v_dsts)

let allocate ?(options = default_options) dfg massign ~policy =
  let g, idx = Lifetime.conflict_graph ~policy dfg in
  let ctx = Sharing.make dfg massign in
  let mcs = Chordal.max_clique_size_per_vertex g in
  let mcs_of i = match List.assoc_opt i mcs with Some m -> m | None -> 1 in
  let sd_of i = Sharing.sd_var ctx (idx.Lifetime.of_index i) in
  let prefer u v =
    if options.sd_ordering then
      compare (sd_of u, mcs_of u, idx.Lifetime.of_index u)
        (sd_of v, mcs_of v, idx.Lifetime.of_index v)
    else 0
  in
  let peo = Chordal.peo_with_preference g ~prefer in
  let order = List.rev peo in
  (* Mutable classes: (register id, variables in insertion order). *)
  let classes : (string * string list) list ref = ref [] in
  let trace = ref [] in
  let conflicts i rid =
    let vars = List.assoc rid !classes in
    let nbrs = Ugraph.neighbors g i in
    List.exists (fun v -> Ugraph.Iset.mem (idx.Lifetime.to_index v) nbrs) vars
  in
  let snapshot_with rid v =
    List.map
      (fun (r, vars) -> (r, if String.equal r rid then v :: vars else vars))
      !classes
  in
  let choose i =
    Telemetry.incr "regalloc.steps";
    let v = idx.Lifetime.of_index i in
    let nonconf = List.filter (fun (rid, _) -> not (conflicts i rid)) !classes in
    match nonconf with
    | [] ->
      Telemetry.incr "regalloc.fresh_registers";
      let rid = Printf.sprintf "R%d" (List.length !classes + 1) in
      classes := !classes @ [ (rid, [ v ]) ];
      trace := { vertex = v; chosen = rid; fresh = true; reason = "conflict-all" } :: !trace
    | _ ->
      (* CBILBO avoidance: restrict to candidates whose assignment does
         not create a Lemma-2 situation, unless none qualifies. *)
      let safe =
        if not options.cbilbo_avoidance then nonconf
        else
          let baseline =
            Cbilbo_rules.min_cbilbo_count ctx massign dfg ~classes:!classes
          in
          let ok (rid, _) =
            Cbilbo_rules.min_cbilbo_count ctx massign dfg
              ~classes:(snapshot_with rid v)
            <= baseline
          in
          match List.filter ok nonconf with
          | [] -> nonconf
          | l ->
            Telemetry.incr "regalloc.cbilbo_avoided"
              ~by:(List.length nonconf - List.length l);
            l
      in
      let delta (_, vars) =
        Telemetry.incr "regalloc.sd_evals";
        Sharing.delta_sd ctx vars v
      in
      let sd_reg (_, vars) =
        Telemetry.incr "regalloc.sd_evals";
        Sharing.sd_vars ctx vars
      in
      let sd_with (_, vars) =
        Telemetry.incr "regalloc.sd_evals";
        Sharing.sd_vars ctx (v :: vars)
      in
      let aff (_, vars) = affinity ctx vars v in
      (* Primary choice: maximize Delta-SD; ties by register SD, then by
         interconnect affinity, then by creation order (stable). *)
      let rank c = (-delta c, -sd_reg c, -aff c) in
      let best_by_rank = function
        | [] -> invalid_arg "Testable_alloc: empty candidate set"
        | c :: rest ->
          List.fold_left (fun acc c' -> if rank c' < rank acc then c' else acc) c rest
      in
      let ri = best_by_rank safe in
      let ri_final_sd = sd_with ri in
      let case_candidates =
        if not options.case_preferences then []
        else begin
          (* Case 1: v is an output variable of unit M and a register
             already holds an output variable of M. *)
          let case1 =
            Sharing.units ctx
            |> List.filter (fun m -> Sset.mem v (Sharing.out_set ctx m))
            |> List.concat_map (fun m ->
                   List.filter
                     (fun (_, vars) ->
                       List.exists (fun w -> Sset.mem w (Sharing.out_set ctx m)) vars)
                     safe)
          in
          (* Case 2: v is an input variable of unit M and at least two
             registers already hold input variables of M. *)
          let case2 =
            Sharing.units ctx
            |> List.filter (fun m -> Sset.mem v (Sharing.in_set ctx m))
            |> List.concat_map (fun m ->
                   let holders =
                     List.filter
                       (fun (_, vars) ->
                         List.exists (fun w -> Sset.mem w (Sharing.in_set ctx m)) vars)
                       !classes
                   in
                   if List.length holders >= 2 then
                     List.filter
                       (fun (rid, _) -> List.mem_assoc rid holders)
                       safe
                   else [])
          in
          (case1 @ case2)
          |> List.sort_uniq compare
          |> List.filter (fun c ->
                 (not (String.equal (fst c) (fst ri))) && sd_reg c > ri_final_sd)
        end
      in
      let chosen, reason =
        match case_candidates with
        | [] -> (ri, "delta-sd")
        | cs -> (best_by_rank cs, "case-preference")
      in
      let rid = fst chosen in
      classes :=
        List.map
          (fun (r, vars) -> (r, if String.equal r rid then vars @ [ v ] else vars))
          !classes;
      trace := { vertex = v; chosen = rid; fresh = false; reason } :: !trace
  in
  List.iter choose order;
  (Regalloc.make !classes, List.rev !trace)
