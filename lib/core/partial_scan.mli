(** Partial-scan baseline (the non-BIST alternative the paper's
    introduction cites: Lee/Jha/Wolf DAC-93, Dey/Potkonjak/Roy VTS-94).

    Partial scan makes the sequential structure acyclic: every register
    on a combinational cycle of the S-graph is replaced by a scan
    register, after which combinational ATPG (our PODEM) suffices. The
    minimum feedback vertex set of the S-graph is the cheapest such
    register set; its area is mux-per-bit plus scan routing, much less
    than BILBO conversion, but the design is then tested from outside
    through the scan chain instead of testing itself. *)

val s_graph : Bistpath_datapath.Datapath.t -> (string * string) list
(** Register-to-register combinational dependencies: [(r1, r2)] iff some
    unit reads [r1] on a port and writes its result into [r2].
    Self-loops (r, r) are the self-adjacent registers. *)

val mfvs : Bistpath_datapath.Datapath.t -> string list
(** Exact minimum feedback vertex set of the S-graph (smallest register
    set whose scanning breaks every cycle), by subset enumeration in
    increasing size — the data paths in scope have at most a dozen
    registers. Deterministic (lexicographically first minimum). *)

val overhead_percent :
  ?model:Bistpath_datapath.Area.model ->
  ?width:int ->
  Bistpath_datapath.Datapath.t ->
  float
(** Scan-conversion area of the MFVS registers relative to the
    functional area — comparable to
    {!Bistpath_bist.Allocator.overhead_percent}. *)
