(** End-to-end synthesis flows: register assignment, interconnect
    assignment, data path construction and minimal-area BIST allocation,
    packaged with the metrics Table I reports. *)

type style =
  | Traditional  (** left-edge registers, unweighted minimum interconnect *)
  | Testable of Testable_alloc.options
      (** the paper's allocation; interconnect weighted by register
          sharing degrees *)

type result = {
  style : style;
  regalloc : Bistpath_datapath.Regalloc.t;
  datapath : Bistpath_datapath.Datapath.t;
  bist : Bistpath_bist.Allocator.solution;
  sessions : Bistpath_bist.Session.t;
  registers : int;  (** allocated registers (Table I "# Reg") *)
  muxes : int;  (** Table I "# Mux" *)
  overhead_percent : float;  (** Table I "% BIST area" *)
}

val run :
  ?model:Bistpath_datapath.Area.model ->
  ?width:int ->
  ?io_penalty_percent:int ->
  ?transparency:bool ->
  ?budget:Bistpath_resilience.Budget.t ->
  ?cache:Bistpath_cache.Store.t ->
  style:style ->
  Bistpath_dfg.Dfg.t ->
  Bistpath_dfg.Massign.t ->
  policy:Bistpath_dfg.Policy.t ->
  result
(** Deterministic. [width] defaults to 8 bits; [io_penalty_percent]
    (default 100) is forwarded to the BIST allocation — see
    {!Bistpath_bist.Allocator.solve}. [budget] (default
    {!Bistpath_resilience.Budget.unlimited}) is forwarded to the BIST
    allocation and session scheduling, the two unbounded-search stages;
    a tripped budget yields a valid flow built from the best allocation
    found so far (check [result.bist.exact], or use {!run_outcome}).

    [cache] attaches a content-addressed result store: the flow becomes
    a walk over the keyed stage DAG ({!Stage}), where each stage first
    looks up its deterministic input key and only recomputes on a miss.
    Hits and misses are counted per stage ([cache.hit.<stage>] /
    [cache.miss.<stage>]) and in aggregate; a corrupt or undecodable
    entry counts as [cache.corrupt] and recomputes. Budget-truncated
    BIST solutions are returned but never stored. Without [cache]
    (the default) the historical straight-line behaviour — spans,
    telemetry, outputs — is byte-identical. *)

val run_outcome :
  ?model:Bistpath_datapath.Area.model ->
  ?width:int ->
  ?io_penalty_percent:int ->
  ?transparency:bool ->
  ?budget:Bistpath_resilience.Budget.t ->
  ?cache:Bistpath_cache.Store.t ->
  style:style ->
  Bistpath_dfg.Dfg.t ->
  Bistpath_dfg.Massign.t ->
  policy:Bistpath_dfg.Policy.t ->
  result Bistpath_resilience.Outcome.t
(** [run] tagged with the budget's stop reason ([Degraded] iff its token
    tripped). *)

(** {1 Cache keys}

    Helpers shared with the CLI and service layers so every consumer
    derives identical keys. *)

val spec_hash :
  Bistpath_dfg.Dfg.t ->
  Bistpath_dfg.Massign.t ->
  policy:Bistpath_dfg.Policy.t ->
  string
(** Content identity of a specification: the {!Stage.Schedule} root key,
    an MD5 hex digest over the canonical DFG text (which carries the
    control steps), module assignment and policy. *)

val flow_params_json :
  ?model:Bistpath_datapath.Area.model ->
  ?width:int ->
  ?io_penalty_percent:int ->
  ?transparency:bool ->
  style:style ->
  unit ->
  Bistpath_util.Json.t
(** Canonical encoding of the flow parameter set (style + options, area
    model, width, I/O penalty, transparency) with the same defaults as
    {!run} — the [params] half of an {!artifact_key}. *)

val artifact_key : stage:Stage.t -> spec_hash:string -> params:Bistpath_util.Json.t -> string
(** Key for a terminal artifact stage ({!Stage.Rtl} / {!Stage.Report}):
    chains the schedule root hash with the full parameter set, under
    which the whole pipeline is deterministic — so a warm artifact can
    be served byte-identical without re-running the flow. *)

val artifact_find :
  cache:Bistpath_cache.Store.t option ->
  stage:Stage.t ->
  key:string option ->
  string option
(** Look a terminal artifact up by its {!artifact_key}, counting
    [cache.hit.<stage>] / [cache.miss.<stage>] (and the aggregates).
    [None] for [cache] or [key] is a silent pass-through — no counters,
    no I/O — so uncached paths stay byte-identical. *)

val artifact_store :
  cache:Bistpath_cache.Store.t option ->
  stage:Stage.t ->
  key:string option ->
  string ->
  unit
(** Commit a freshly rendered terminal artifact (best-effort; see
    {!Bistpath_cache.Store.put}). Callers must skip this when the run
    was budget-truncated — the bytes would not be deterministic in the
    key. *)

val reduction_percent : traditional:result -> testable:result -> float
(** Table I's "% Reduction in BIST area":
    100 * (trad - testable) / trad. *)

val pp_result : Format.formatter -> result -> unit
