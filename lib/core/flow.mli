(** End-to-end synthesis flows: register assignment, interconnect
    assignment, data path construction and minimal-area BIST allocation,
    packaged with the metrics Table I reports. *)

type style =
  | Traditional  (** left-edge registers, unweighted minimum interconnect *)
  | Testable of Testable_alloc.options
      (** the paper's allocation; interconnect weighted by register
          sharing degrees *)

type result = {
  style : style;
  regalloc : Bistpath_datapath.Regalloc.t;
  datapath : Bistpath_datapath.Datapath.t;
  bist : Bistpath_bist.Allocator.solution;
  sessions : Bistpath_bist.Session.t;
  registers : int;  (** allocated registers (Table I "# Reg") *)
  muxes : int;  (** Table I "# Mux" *)
  overhead_percent : float;  (** Table I "% BIST area" *)
}

val run :
  ?model:Bistpath_datapath.Area.model ->
  ?width:int ->
  ?io_penalty_percent:int ->
  ?transparency:bool ->
  ?budget:Bistpath_resilience.Budget.t ->
  style:style ->
  Bistpath_dfg.Dfg.t ->
  Bistpath_dfg.Massign.t ->
  policy:Bistpath_dfg.Policy.t ->
  result
(** Deterministic. [width] defaults to 8 bits; [io_penalty_percent]
    (default 100) is forwarded to the BIST allocation — see
    {!Bistpath_bist.Allocator.solve}. [budget] (default
    {!Bistpath_resilience.Budget.unlimited}) is forwarded to the BIST
    allocation and session scheduling, the two unbounded-search stages;
    a tripped budget yields a valid flow built from the best allocation
    found so far (check [result.bist.exact], or use {!run_outcome}). *)

val run_outcome :
  ?model:Bistpath_datapath.Area.model ->
  ?width:int ->
  ?io_penalty_percent:int ->
  ?transparency:bool ->
  ?budget:Bistpath_resilience.Budget.t ->
  style:style ->
  Bistpath_dfg.Dfg.t ->
  Bistpath_dfg.Massign.t ->
  policy:Bistpath_dfg.Policy.t ->
  result Bistpath_resilience.Outcome.t
(** [run] tagged with the budget's stop reason ([Degraded] iff its token
    tripped). *)

val reduction_percent : traditional:result -> testable:result -> float
(** Table I's "% Reduction in BIST area":
    100 * (trad - testable) / trad. *)

val pp_result : Format.formatter -> result -> unit
