(** Module assignment algorithms (the paper uses existing area-driven
    methods; Section III fixes the assignment before register binding).

    Two classical strategies are provided: minimum-count single-function
    units via clique partitioning of the operation compatibility graph,
    and ALU packing (SYNTEST-style multifunction units, one per
    concurrent operation slot). *)

val single_function :
  Bistpath_dfg.Dfg.t -> Bistpath_dfg.Massign.t
(** Operations of the same kind that run in different control steps may
    share a unit; a minimum clique partition (weighted toward operand
    sharing to keep interconnect small) yields the units, named
    "<sym><n>". *)

val alu_pack : Bistpath_dfg.Dfg.t -> Bistpath_dfg.Massign.t
(** Pack all operations onto the fewest multifunction ALUs: as many units
    as the widest control step, first-fit by step. Each ALU's kind list
    is exactly the kinds it executes. *)
