module Json = Bistpath_util.Json

type t = Schedule | Alloc | Interconnect | Bist | Rtl | Report

let all = [ Schedule; Alloc; Interconnect; Bist; Rtl; Report ]

let name = function
  | Schedule -> "schedule"
  | Alloc -> "alloc"
  | Interconnect -> "interconnect"
  | Bist -> "bist"
  | Rtl -> "rtl"
  | Report -> "report"

let of_name = function
  | "schedule" -> Some Schedule
  | "alloc" -> Some Alloc
  | "interconnect" -> Some Interconnect
  | "bist" -> Some Bist
  | "rtl" -> Some Rtl
  | "report" -> Some Report
  | _ -> None

(* Bump a stage's version whenever its payload encoding *or* the
   semantics of the computation it memoizes change: the version is
   hashed into every key, so old entries become unreachable (and
   eventually GC'd) instead of being decoded under wrong assumptions. *)
let schema_version = function
  | Schedule -> 1
  | Alloc -> 1
  | Interconnect -> 1
  | Bist -> 1
  | Rtl -> 1
  | Report -> 1

let deps = function
  | Schedule -> []
  | Alloc -> [ Schedule ]
  | Interconnect -> [ Schedule; Alloc ]
  | Bist -> [ Interconnect ]
  | Rtl -> [ Bist ]
  | Report -> [ Bist ]

let key stage ~inputs =
  Digest.to_hex
    (Digest.string
       (Json.canonical
          (Json.Obj
             [
               ("stage", Json.Str (name stage));
               ("schema", Json.Num (float_of_int (schema_version stage)));
               ("inputs", inputs);
             ])))

let out_hash ~key ~payload = Digest.to_hex (Digest.string (key ^ "\n" ^ payload))
