module Dfg = Bistpath_dfg.Dfg
module Lifetime = Bistpath_dfg.Lifetime
module Massign = Bistpath_dfg.Massign
module Sset = Bistpath_dfg.Dfg.Sset
module Interval = Bistpath_graphs.Interval
module Regalloc = Bistpath_datapath.Regalloc
module Datapath = Bistpath_datapath.Datapath
module Area = Bistpath_datapath.Area
module Interconnect = Bistpath_datapath.Interconnect
module Resource = Bistpath_bist.Resource

type result = {
  regalloc : Regalloc.t;
  datapath : Datapath.t;
  self_adjacent : string list;
  styles : (string * Resource.style) list;
  delta_gates : int;
}

(* A register is self-adjacent when it holds both an operand and a result
   of the same unit: after binding, a path register -> unit -> register
   exists. *)
let self_adjacent_vars ctx vars =
  List.exists
    (fun m ->
      let vs = Sset.of_list vars in
      (not (Sset.is_empty (Sset.inter vs (Sharing.in_set ctx m))))
      && not (Sset.is_empty (Sset.inter vs (Sharing.out_set ctx m))))
    (Sharing.units ctx)

let allocate dfg massign ~policy =
  let ctx = Sharing.make dfg massign in
  let spans = Lifetime.spans ~policy dfg in
  let ordered =
    List.sort
      (fun (v1, s1) (v2, s2) ->
        compare
          (s1.Interval.birth, s1.Interval.death, v1)
          (s2.Interval.birth, s2.Interval.death, v2))
      spans
  in
  let classes : (string * string list) list ref = ref [] in
  let conflicts v vars =
    List.exists
      (fun w -> Interval.overlap (Lifetime.span dfg v) (Lifetime.span dfg w))
      vars
  in
  List.iter
    (fun (v, _) ->
      let nonconf = List.filter (fun (_, vars) -> not (conflicts v vars)) !classes in
      let safe =
        List.filter
          (fun (_, vars) ->
            self_adjacent_vars ctx vars || not (self_adjacent_vars ctx (v :: vars)))
          nonconf
      in
      match safe with
      | (rid, _) :: _ ->
        classes :=
          List.map
            (fun (r, vars) -> (r, if String.equal r rid then vars @ [ v ] else vars))
            !classes
      | [] ->
        let rid = Printf.sprintf "R%d" (List.length !classes + 1) in
        classes := !classes @ [ (rid, [ v ]) ])
    ordered;
  Regalloc.make !classes

let run ?(model = Area.default) ?(width = 8) dfg massign ~policy =
  let regalloc = allocate dfg massign ~policy in
  let datapath =
    Interconnect.optimize dfg massign regalloc ~policy
      ~objective:{ Interconnect.weight = (fun _ -> 0) }
  in
  let self_adjacent = Datapath.self_adjacent_registers datapath in
  let participates rid =
    List.exists
      (fun (u : Massign.hw) ->
        List.mem rid (Datapath.input_registers datapath u.mid)
        || List.mem rid (Datapath.output_registers datapath u.mid))
      datapath.Datapath.massign.Massign.units
  in
  let styles =
    List.map
      (fun (r : Datapath.reg) ->
        let style =
          if List.mem r.rid self_adjacent then Resource.Cbilbo
          else if participates r.rid then Resource.Bilbo
          else Resource.Normal
        in
        (r.rid, style))
      datapath.Datapath.regs
  in
  let delta_gates =
    Bistpath_util.Listx.sum_by
      (fun (_, s) -> Resource.delta_gates model ~width s)
      styles
  in
  { regalloc; datapath; self_adjacent; styles; delta_gates }

let style_counts r =
  [ Resource.Cbilbo; Resource.Bilbo; Resource.Tpg; Resource.Sa ]
  |> List.filter_map (fun s ->
         match List.length (List.filter (fun (_, s') -> s' = s) r.styles) with
         | 0 -> None
         | n -> Some (s, n))
