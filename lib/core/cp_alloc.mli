(** Alternative testable register allocation by clique partitioning.

    The classical dual of conflict-graph coloring: build the
    {e compatibility} graph (variables whose lifetimes do not overlap),
    weight each compatible pair by the sharing-degree gain of merging
    them, and greedily partition into cliques — each clique a register.
    Included as an algorithmic comparison point for the paper's
    reverse-PVES coloring (the two explore the same solution space from
    opposite directions); the ablation section reports both. *)

val allocate :
  Bistpath_dfg.Dfg.t ->
  Bistpath_dfg.Massign.t ->
  policy:Bistpath_dfg.Policy.t ->
  Bistpath_datapath.Regalloc.t
(** Always a valid register assignment; register count is the greedy
    clique-partition size (at least the clique-cover number, usually
    equal on interval graphs). *)
