type case =
  | Disjoint
  | Source_is_dest
  | Common_dest
  | Common_source
  | Common_both

let case_number = function
  | Disjoint -> 1
  | Source_is_dest -> 2
  | Common_dest -> 3
  | Common_source -> 4
  | Common_both -> 5

let describe = function
  | Disjoint -> "different source and destination modules"
  | Source_is_dest -> "source module of one is destination of the other"
  | Common_dest -> "one destination module in common"
  | Common_source -> "one source module in common"
  | Common_both -> "common source and common destination module"

let classify ctx u v =
  let common a b = List.exists (fun x -> List.mem x b) a in
  let su = Sharing.source_units ctx u and sv = Sharing.source_units ctx v in
  let du = Sharing.dest_units ctx u and dv = Sharing.dest_units ctx v in
  let cs = common su sv and cd = common du dv in
  if cs && cd then Common_both
  else if cd then Common_dest
  else if cs then Common_source
  else if common su dv || common sv du then Source_is_dest
  else Disjoint

let mux_delta_estimate = function
  | Disjoint -> 1
  | Source_is_dest -> 1
  | Common_dest -> 0
  | Common_source -> 0
  | Common_both -> -1
