(** Sharing degrees (Definitions 4 and 5): how many module variable sets
    a variable or a register intersects. A register with a high sharing
    degree can serve as test-pattern generator (input sets) or signature
    analyzer (output sets) for many modules at once. *)

type ctx
(** Precomputed I_M / O_M sets for a (DFG, module assignment) pair;
    modules with no bound operations are ignored. *)

val make : Bistpath_dfg.Dfg.t -> Bistpath_dfg.Massign.t -> ctx

val units : ctx -> string list
(** Module ids with at least one instance, sorted. *)

val in_set : ctx -> string -> Bistpath_dfg.Dfg.Sset.t
(** I_M of a unit. *)

val out_set : ctx -> string -> Bistpath_dfg.Dfg.Sset.t
(** O_M of a unit. *)

val sd_var : ctx -> string -> int
(** SD(v) = #{M : v in I_M} + #{M : v in O_M}. *)

val sd_vars : ctx -> string list -> int
(** SD of a register holding the given variables: the number of distinct
    input sets plus distinct output sets intersected (Definition 5). *)

val delta_sd : ctx -> string list -> string -> int
(** [delta_sd ctx reg v] = SD(reg + v) - SD(reg): the increase in the
    register's sharing degree from absorbing [v]. *)

val source_units : ctx -> string -> string list
(** Units producing the variable (0 or 1 for a well-formed DFG). *)

val dest_units : ctx -> string -> string list
(** Units consuming the variable, sorted, distinct. *)
