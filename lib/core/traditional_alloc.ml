module Dfg = Bistpath_dfg.Dfg
module Lifetime = Bistpath_dfg.Lifetime
module Interval = Bistpath_graphs.Interval
module Regalloc = Bistpath_datapath.Regalloc

let allocate dfg ~policy =
  let spans = Lifetime.spans ~policy dfg in
  let ordered =
    List.sort
      (fun (v1, s1) (v2, s2) ->
        compare
          (s1.Interval.birth, s1.Interval.death, v1)
          (s2.Interval.birth, s2.Interval.death, v2))
      spans
  in
  (* classes: (variables, death of latest occupant) in creation order *)
  let classes : (string list * int) list ref = ref [] in
  List.iter
    (fun (v, s) ->
      let rec place acc = function
        | [] -> List.rev (([ v ], s.Interval.death) :: acc)
        | (vars, death) :: rest ->
          if death <= s.Interval.birth then
            List.rev_append acc ((v :: vars, s.Interval.death) :: rest)
          else place ((vars, death) :: acc) rest
      in
      classes := place [] !classes)
    ordered;
  Regalloc.make
    (List.mapi
       (fun i (vars, _) -> (Printf.sprintf "R%d" (i + 1), List.rev vars))
       !classes)
