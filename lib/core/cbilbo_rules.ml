module Dfg = Bistpath_dfg.Dfg
module Massign = Bistpath_dfg.Massign
module Sset = Bistpath_dfg.Dfg.Sset
module Listx = Bistpath_util.Listx

type verdict = {
  mid : string;
  case_i : string list;
  case_ii : (string * string) list;
}

let check_module ctx massign dfg ~mid ~classes =
  let out = Sharing.out_set ctx mid in
  let instance_ops = Massign.instance_operands massign dfg mid in
  let set_of vars = Sset.of_list vars in
  let covers_instances vars =
    let vs = set_of vars in
    instance_ops <> []
    && List.for_all (fun ij -> not (Sset.is_empty (Sset.inter vs ij))) instance_ops
  in
  let out_part vars = Sset.inter (set_of vars) out in
  let case_i =
    classes
    |> List.filter_map (fun (rid, vars) ->
           if
             (not (Sset.is_empty out))
             && Sset.equal (out_part vars) out
             && covers_instances vars
           then Some rid
           else None)
  in
  let case_ii =
    Listx.pairs classes
    |> List.concat_map (fun ((rx, vx), (ry, vy)) ->
           let ox = out_part vx and oy = out_part vy in
           if
             (not (Sset.is_empty ox))
             && (not (Sset.is_empty oy))
             && (not (Sset.equal ox out))
             && (not (Sset.equal oy out))
             && Sset.equal (Sset.union ox oy) out
             && covers_instances vx && covers_instances vy
           then [ (rx, ry) ]
           else [])
  in
  { mid; case_i; case_ii }

let forced v = v.case_i <> [] || v.case_ii <> []

let verdicts ctx massign dfg ~classes =
  List.map (fun mid -> check_module ctx massign dfg ~mid ~classes) (Sharing.units ctx)

let any_forced ctx massign dfg ~classes =
  List.exists forced (verdicts ctx massign dfg ~classes)

(* Greedy cover: each forced module offers candidate registers (case i
   registers, both members of case ii pairs); repeatedly commit the
   register covering the most remaining modules. *)
let min_cbilbo_count ctx massign dfg ~classes =
  let offers =
    verdicts ctx massign dfg ~classes
    |> List.filter forced
    |> List.map (fun v ->
           List.sort_uniq compare
             (v.case_i @ List.concat_map (fun (x, y) -> [ x; y ]) v.case_ii))
  in
  let rec cover count remaining =
    match remaining with
    | [] -> count
    | _ ->
      let candidates = List.sort_uniq compare (List.concat remaining) in
      let gain r = List.length (List.filter (List.mem r) remaining) in
      let best =
        match Listx.max_by gain candidates with
        | Some r -> r
        | None -> assert false
      in
      cover (count + 1) (List.filter (fun offer -> not (List.mem best offer)) remaining)
  in
  cover 0 offers
