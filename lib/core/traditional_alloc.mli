(** Traditional register allocation: the left-edge algorithm (Kurdahi &
    Parker / Tseng-Siewiorek practice) — minimum register count, no
    testability consideration. This is the "Traditional HLS" column of
    Table I. *)

val allocate :
  Bistpath_dfg.Dfg.t ->
  policy:Bistpath_dfg.Policy.t ->
  Bistpath_datapath.Regalloc.t
(** Variables sorted by (birth, death, name), first-fit into registers.
    Always uses the minimum number of registers (left-edge optimality on
    interval conflicts). *)
