(** SYNTEST-like baseline (Papachristou / Harmanani): synthesis towards a
    self-testable template — multifunction ALUs, a register file with no
    self-loops, pattern generators at module inputs and a signature
    analyzer at module outputs, never mixing the two duties on one
    register (so no BILBOs or CBILBOs at all). *)

type result = {
  massign : Bistpath_dfg.Massign.t;  (** ALU-packed module allocation *)
  regalloc : Bistpath_datapath.Regalloc.t;
  datapath : Bistpath_datapath.Datapath.t;
  bist : Bistpath_bist.Allocator.solution;
  delta_gates : int;
}

val run :
  ?model:Bistpath_datapath.Area.model ->
  ?width:int ->
  Bistpath_dfg.Dfg.t ->
  policy:Bistpath_dfg.Policy.t ->
  result
(** ALU packing ({!Module_assign.alu_pack}) replaces the given module
    assignment; register allocation forbids self-adjacency outright
    (template constraint), opening extra registers when needed; BIST
    allocation runs with [Bilbo] and [Cbilbo] styles forbidden. *)

val style_counts : result -> (Bistpath_bist.Resource.style * int) list
