module Area = Bistpath_datapath.Area
module Regalloc = Bistpath_datapath.Regalloc
module Datapath = Bistpath_datapath.Datapath
module Interconnect = Bistpath_datapath.Interconnect
module Allocator = Bistpath_bist.Allocator
module Resource = Bistpath_bist.Resource

type result = {
  massign : Bistpath_dfg.Massign.t;
  regalloc : Regalloc.t;
  datapath : Datapath.t;
  bist : Allocator.solution;
  delta_gates : int;
}

let run ?(model = Area.default) ?(width = 8) dfg ~policy =
  let massign = Module_assign.alu_pack dfg in
  (* The template constraint coincides with RALLOC's avoidance rule but
     is strict: a self-adjacency-creating merge is never taken. The
     shared implementation already opens a fresh register in that case. *)
  let regalloc = Ralloc.allocate dfg massign ~policy in
  let datapath =
    Interconnect.optimize dfg massign regalloc ~policy
      ~objective:{ Interconnect.weight = (fun _ -> 0) }
  in
  let bist =
    Allocator.solve ~model ~width ~forbidden:[ Resource.Bilbo; Resource.Cbilbo ]
      datapath
  in
  { massign; regalloc; datapath; bist; delta_gates = bist.Allocator.delta_gates }

let style_counts r = Allocator.style_counts r.bist
