(** Section IV's Fig. 6: the five situations that arise when two
    variables (or intermediate registers) merge into one register, and
    their effect on multiplexers and BIST resources. *)

type case =
  | Disjoint  (** case 1: different sources, different destinations *)
  | Source_is_dest  (** case 2: a source unit of one is a destination of the other *)
  | Common_dest  (** case 3: one destination unit in common, sources differ *)
  | Common_source  (** case 4: one source unit in common, destinations differ *)
  | Common_both  (** case 5: a common source and a common destination *)

val case_number : case -> int
(** 1..5, the paper's numbering. *)

val describe : case -> string

val classify : Sharing.ctx -> string -> string -> case
(** Classify the merge of two variables by their producing/consuming
    units. Primary inputs have no source unit; primary outputs no
    destination unit — absence never counts as "common". *)

val mux_delta_estimate : case -> int
(** Expected change in 2:1-multiplexer inputs when the merge happens
    (negative = saving) on a minimal pure scenario: cases 1 and 2 cost
    one mux input, case 5 saves one, cases 3 and 4 are neutral — case 2
    additionally creates a register->unit->register self-loop (the
    CBILBO hazard). The Fig. 6 bench checks these values empirically on
    constructed data paths. *)
