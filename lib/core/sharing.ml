module Dfg = Bistpath_dfg.Dfg
module Massign = Bistpath_dfg.Massign
module Sset = Bistpath_dfg.Dfg.Sset

type ctx = {
  unit_ids : string list;
  ins : (string * Sset.t) list;
  outs : (string * Sset.t) list;
  sources : (string * string list) list;  (* variable -> producing units *)
  dests : (string * string list) list;  (* variable -> consuming units *)
}

let make dfg massign =
  let unit_ids =
    massign.Massign.units
    |> List.filter_map (fun (u : Massign.hw) ->
           if Massign.temporal_multiplicity massign dfg u.mid > 0 then Some u.mid
           else None)
    |> List.sort compare
  in
  let ins = List.map (fun m -> (m, Massign.input_variable_set massign dfg m)) unit_ids in
  let outs = List.map (fun m -> (m, Massign.output_variable_set massign dfg m)) unit_ids in
  let vars = Dfg.variables dfg in
  let sources =
    List.map
      (fun v ->
        ( v,
          match Dfg.producer dfg v with
          | Some op -> [ (Massign.unit_of_op massign op.Bistpath_dfg.Op.id).Massign.mid ]
          | None -> [] ))
      vars
  in
  let dests =
    List.map
      (fun v ->
        ( v,
          Dfg.consumers dfg v
          |> List.map (fun (op : Bistpath_dfg.Op.t) ->
                 (Massign.unit_of_op massign op.id).Massign.mid)
          |> List.sort_uniq compare ))
      vars
  in
  { unit_ids; ins; outs; sources; dests }

let units t = t.unit_ids

let in_set t mid =
  match List.assoc_opt mid t.ins with Some s -> s | None -> Sset.empty

let out_set t mid =
  match List.assoc_opt mid t.outs with Some s -> s | None -> Sset.empty

let sd_var t v =
  let count sets = List.length (List.filter (fun (_, s) -> Sset.mem v s) sets) in
  count t.ins + count t.outs

let sd_vars t vars =
  let vs = Sset.of_list vars in
  let hits sets =
    List.length (List.filter (fun (_, s) -> not (Sset.is_empty (Sset.inter vs s))) sets)
  in
  hits t.ins + hits t.outs

let delta_sd t reg v = sd_vars t (v :: reg) - sd_vars t reg

let source_units t v =
  match List.assoc_opt v t.sources with Some l -> l | None -> []

let dest_units t v =
  match List.assoc_opt v t.dests with Some l -> l | None -> []
