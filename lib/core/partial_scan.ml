module Datapath = Bistpath_datapath.Datapath
module Area = Bistpath_datapath.Area
module Massign = Bistpath_dfg.Massign
module Listx = Bistpath_util.Listx

let s_graph (dp : Datapath.t) =
  List.concat_map
    (fun (u : Massign.hw) ->
      let ins = Datapath.input_registers dp u.mid in
      let outs = Datapath.output_registers dp u.mid in
      List.concat_map (fun r1 -> List.map (fun r2 -> (r1, r2)) outs) ins)
    dp.Datapath.massign.Massign.units
  |> List.sort_uniq compare

let has_cycle vertices edges removed =
  let adj = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      if (not (List.mem a removed)) && not (List.mem b removed) then
        Hashtbl.replace adj a (b :: (match Hashtbl.find_opt adj a with Some l -> l | None -> [])))
    edges;
  let state = Hashtbl.create 16 in
  (* 0 = in progress, 1 = done *)
  let exception Cycle in
  let rec dfs v =
    match Hashtbl.find_opt state v with
    | Some 0 -> raise Cycle
    | Some _ -> ()
    | None ->
      Hashtbl.replace state v 0;
      List.iter dfs (match Hashtbl.find_opt adj v with Some l -> l | None -> []);
      Hashtbl.replace state v 1
  in
  try
    List.iter (fun v -> if not (List.mem v removed) then dfs v) vertices;
    false
  with Cycle -> true

let mfvs (dp : Datapath.t) =
  let edges = s_graph dp in
  let vertices =
    List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) edges)
  in
  if not (has_cycle vertices edges []) then []
  else begin
    (* self-loop registers are unavoidably in every FVS *)
    let forced = List.filter_map (fun (a, b) -> if a = b then Some a else None) edges in
    let forced = List.sort_uniq compare forced in
    let candidates = List.filter (fun v -> not (List.mem v forced)) vertices in
    let rec combinations k = function
      | [] -> if k = 0 then [ [] ] else []
      | x :: rest ->
        if k = 0 then [ [] ]
        else
          List.map (fun c -> x :: c) (combinations (k - 1) rest) @ combinations k rest
    in
    let rec search k =
      if k > List.length candidates then forced @ candidates (* defensive *)
      else
        match
          List.find_opt
            (fun extra -> not (has_cycle vertices edges (forced @ extra)))
            (combinations k candidates)
        with
        | Some extra -> List.sort compare (forced @ extra)
        | None -> search (k + 1)
    in
    if has_cycle vertices edges forced then search 1 else List.sort compare forced
  end

let overhead_percent ?(model = Area.default) ?(width = 8) dp =
  let scan = mfvs dp in
  (* scan conversion: one mux slice per bit plus a shift path, about the
     cost of a 2:1 mux per bit *)
  let per_register = model.Area.mux2_per_bit * width in
  let delta = List.length scan * per_register in
  let base = Area.functional_gates model ~width dp in
  if base = 0 then 0.0 else 100.0 *. float_of_int delta /. float_of_int base
