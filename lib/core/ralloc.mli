(** RALLOC-like baseline (Avra, ISCAS '91): register allocation that
    minimizes the number of self-adjacent registers, under the classical
    BILBO methodology where every register taking part in testing becomes
    a BILBO and every self-adjacent register a CBILBO. The paper's Table
    III compares against it on the Paulin benchmark. *)

type result = {
  regalloc : Bistpath_datapath.Regalloc.t;
  datapath : Bistpath_datapath.Datapath.t;
  self_adjacent : string list;
  styles : (string * Bistpath_bist.Resource.style) list;
  delta_gates : int;
}

val allocate :
  Bistpath_dfg.Dfg.t ->
  Bistpath_dfg.Massign.t ->
  policy:Bistpath_dfg.Policy.t ->
  Bistpath_datapath.Regalloc.t
(** The allocation step alone: left-edge order, self-adjacency-creating
    merges avoided, fresh register opened when no safe merge exists.
    Also used by the SYNTEST-like baseline, whose template imposes the
    same constraint. *)

val run :
  ?model:Bistpath_datapath.Area.model ->
  ?width:int ->
  Bistpath_dfg.Dfg.t ->
  Bistpath_dfg.Massign.t ->
  policy:Bistpath_dfg.Policy.t ->
  result
(** Left-edge order; a register that would become self-adjacent by
    absorbing the next variable is avoided, opening a new register if
    necessary (Avra trades registers for testability — the opposite
    policy of the paper's Section III.B). Then every register feeding or
    fed by a unit becomes a BILBO; self-adjacent ones become CBILBOs. *)

val style_counts : result -> (Bistpath_bist.Resource.style * int) list
