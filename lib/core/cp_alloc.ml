module Lifetime = Bistpath_dfg.Lifetime
module Ugraph = Bistpath_graphs.Ugraph
module Clique_partition = Bistpath_graphs.Clique_partition
module Regalloc = Bistpath_datapath.Regalloc

let allocate dfg massign ~policy =
  let conflict, idx = Lifetime.conflict_graph ~policy dfg in
  let compat = Ugraph.complement conflict in
  let ctx = Sharing.make dfg massign in
  (* pairwise merge gain: how much sharing the two variables have in
     common (merging them concentrates test-resource potential) *)
  let weight i j =
    let u = idx.Lifetime.of_index i and v = idx.Lifetime.of_index j in
    Sharing.sd_var ctx u + Sharing.sd_var ctx v - Sharing.sd_vars ctx [ u; v ]
  in
  let cliques = Clique_partition.greedy ~weight compat in
  Regalloc.make
    (List.mapi
       (fun k clique ->
         ( Printf.sprintf "R%d" (k + 1),
           List.map idx.Lifetime.of_index (Ugraph.Iset.elements clique) ))
       cliques)
