module Area = Bistpath_datapath.Area
module Regalloc = Bistpath_datapath.Regalloc
module Datapath = Bistpath_datapath.Datapath
module Interconnect = Bistpath_datapath.Interconnect
module Allocator = Bistpath_bist.Allocator
module Session = Bistpath_bist.Session
module Telemetry = Bistpath_telemetry.Telemetry
module Budget = Bistpath_resilience.Budget
module Outcome = Bistpath_resilience.Outcome

type style = Traditional | Testable of Testable_alloc.options

type result = {
  style : style;
  regalloc : Regalloc.t;
  datapath : Datapath.t;
  bist : Allocator.solution;
  sessions : Session.t;
  registers : int;
  muxes : int;
  overhead_percent : float;
}

(* One sharing context and a memo per flow run: the interconnect
   optimizer queries the weight many times per register. *)
let sd_weight dfg massign regalloc =
  let ctx = Sharing.make dfg massign in
  let cache = Hashtbl.create 8 in
  fun rid ->
    match Hashtbl.find_opt cache rid with
    | Some w -> w
    | None ->
      let w =
        match List.assoc_opt rid regalloc.Regalloc.classes with
        | Some vars -> Sharing.sd_vars ctx vars
        | None -> 0
      in
      Hashtbl.replace cache rid w;
      w

let run ?(model = Area.default) ?(width = 8) ?(io_penalty_percent = 100)
    ?(transparency = false) ?(budget = Budget.unlimited) ~style dfg massign ~policy =
  Telemetry.with_span "flow"
    ~attrs:
      [
        ("dfg", dfg.Bistpath_dfg.Dfg.name);
        ("style",
         match style with Traditional -> "traditional" | Testable _ -> "testable");
      ]
  @@ fun () ->
  let regalloc =
    Telemetry.with_span "regalloc" @@ fun () ->
    match style with
    | Traditional -> Traditional_alloc.allocate dfg ~policy
    | Testable options ->
      fst (Testable_alloc.allocate ~options dfg massign ~policy)
  in
  let objective =
    match style with
    | Traditional -> { Interconnect.weight = (fun _ -> 0) }
    | Testable _ -> { Interconnect.weight = sd_weight dfg massign regalloc }
  in
  let datapath =
    Telemetry.with_span "interconnect" @@ fun () ->
    Interconnect.optimize dfg massign regalloc ~policy ~objective
  in
  let bist =
    Telemetry.with_span "bist_alloc" @@ fun () ->
    Allocator.solve ~model ~width ~io_penalty_percent ~transparency ~budget datapath
  in
  let sessions =
    Telemetry.with_span "sessions" @@ fun () -> Session.schedule ~budget bist
  in
  Telemetry.set "regs.allocated" (Datapath.allocated_register_count datapath);
  Telemetry.set "muxes.allocated" (Datapath.mux_count datapath);
  Telemetry.set "bist.delta_gates" bist.Allocator.delta_gates;
  Telemetry.set "sessions.count" (Session.num_sessions sessions);
  {
    style;
    regalloc;
    datapath;
    bist;
    sessions;
    registers = Datapath.allocated_register_count datapath;
    muxes = Datapath.mux_count datapath;
    overhead_percent = Allocator.overhead_percent ~model ~width datapath bist;
  }

let run_outcome ?model ?width ?io_penalty_percent ?transparency
    ?(budget = Budget.unlimited) ~style dfg massign ~policy =
  let r = run ?model ?width ?io_penalty_percent ?transparency ~budget ~style dfg massign ~policy in
  Budget.tag budget r

let reduction_percent ~traditional ~testable =
  if traditional.overhead_percent = 0.0 then 0.0
  else
    100.0
    *. (traditional.overhead_percent -. testable.overhead_percent)
    /. traditional.overhead_percent

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s flow: %d registers, %d muxes, BIST overhead %.2f%%@,%a@,%a@]"
    (match r.style with Traditional -> "traditional" | Testable _ -> "testable")
    r.registers r.muxes r.overhead_percent Regalloc.pp r.regalloc
    Allocator.pp_solution r.bist
