module Area = Bistpath_datapath.Area
module Regalloc = Bistpath_datapath.Regalloc
module Datapath = Bistpath_datapath.Datapath
module Interconnect = Bistpath_datapath.Interconnect
module Allocator = Bistpath_bist.Allocator
module Resource = Bistpath_bist.Resource
module Session = Bistpath_bist.Session
module Ipath = Bistpath_ipath.Ipath
module Telemetry = Bistpath_telemetry.Telemetry
module Budget = Bistpath_resilience.Budget
module Outcome = Bistpath_resilience.Outcome
module Json = Bistpath_util.Json
module Store = Bistpath_cache.Store
module Dfg = Bistpath_dfg.Dfg
module Op = Bistpath_dfg.Op
module Massign = Bistpath_dfg.Massign
module Policy = Bistpath_dfg.Policy
module Lifetime = Bistpath_dfg.Lifetime
module Parser = Bistpath_dfg.Parser
module Interval = Bistpath_graphs.Interval

type style = Traditional | Testable of Testable_alloc.options

type result = {
  style : style;
  regalloc : Regalloc.t;
  datapath : Datapath.t;
  bist : Allocator.solution;
  sessions : Session.t;
  registers : int;
  muxes : int;
  overhead_percent : float;
}

(* One sharing context and a memo per flow run: the interconnect
   optimizer queries the weight many times per register. *)
let sd_weight dfg massign regalloc =
  let ctx = Sharing.make dfg massign in
  let cache = Hashtbl.create 8 in
  fun rid ->
    match Hashtbl.find_opt cache rid with
    | Some w -> w
    | None ->
      let w =
        match List.assoc_opt rid regalloc.Regalloc.classes with
        | Some vars -> Sharing.sd_vars ctx vars
        | None -> 0
      in
      Hashtbl.replace cache rid w;
      w

(* --- canonical input encodings (cache keys) ------------------------ *)

let num n = Json.Num (float_of_int n)

let policy_json (policy : Policy.t) =
  Json.Obj
    [
      ("allocate_inputs", Json.Bool policy.Policy.allocate_inputs);
      ( "carried",
        Json.Arr
          (List.map
             (fun (w, i) -> Json.Arr [ Json.Str w; Json.Str i ])
             policy.Policy.carried) );
    ]

let massign_json (m : Massign.t) =
  Json.Obj
    [
      ( "units",
        Json.Arr
          (List.map
             (fun (u : Massign.hw) ->
               Json.Obj
                 [
                   ("mid", Json.Str u.Massign.mid);
                   ( "kinds",
                     Json.Arr
                       (List.map (fun k -> Json.Str (Op.symbol k)) u.Massign.kinds)
                   );
                 ])
             m.Massign.units) );
      ( "of_op",
        Json.Obj
          (List.rev
             (Dfg.Smap.fold (fun op mid acc -> (op, Json.Str mid) :: acc)
                m.Massign.of_op [])) );
    ]

let style_json = function
  | Traditional -> Json.Str "traditional"
  | Testable (o : Testable_alloc.options) ->
    Json.Obj
      [
        ( "testable",
          Json.Obj
            [
              ("sd_ordering", Json.Bool o.Testable_alloc.sd_ordering);
              ("case_preferences", Json.Bool o.Testable_alloc.case_preferences);
              ("cbilbo_avoidance", Json.Bool o.Testable_alloc.cbilbo_avoidance);
            ] );
      ]

let model_json (m : Area.model) =
  Json.Obj
    [
      ("register_per_bit", num m.Area.register_per_bit);
      ("tpg_delta_per_bit", num m.Area.tpg_delta_per_bit);
      ("sa_delta_per_bit", num m.Area.sa_delta_per_bit);
      ("bilbo_delta_per_bit", num m.Area.bilbo_delta_per_bit);
      ("cbilbo_delta_per_bit", num m.Area.cbilbo_delta_per_bit);
      ("mux2_per_bit", num m.Area.mux2_per_bit);
      ("add_per_bit", num m.Area.add_per_bit);
      ("sub_per_bit", num m.Area.sub_per_bit);
      ("logic_per_bit", num m.Area.logic_per_bit);
      ("less_per_bit", num m.Area.less_per_bit);
      ("mul_per_bit_sq", num m.Area.mul_per_bit_sq);
      ("div_per_bit_sq", num m.Area.div_per_bit_sq);
      ("alu_base_per_bit", num m.Area.alu_base_per_bit);
      ("alu_per_kind_per_bit", num m.Area.alu_per_kind_per_bit);
    ]

(* The schedule (root) stage: its key is the content identity of the
   whole specification. [Parser.to_string] is round-trippable and
   carries the control steps, so two specs hash alike iff they denote
   the same scheduled DFG + binding + policy. *)
let spec_hash dfg massign ~policy =
  Stage.key Stage.Schedule
    ~inputs:
      (Json.Obj
         [
           ("dfg", Json.Str (Parser.to_string dfg));
           ("massign", massign_json massign);
           ("policy", policy_json policy);
         ])

let flow_params_json ?(model = Area.default) ?(width = 8)
    ?(io_penalty_percent = 100) ?(transparency = false) ~style () =
  Json.Obj
    [
      ("style", style_json style);
      ("model", model_json model);
      ("width", num width);
      ("io_penalty_percent", num io_penalty_percent);
      ("transparency", Json.Bool transparency);
    ]

let artifact_key ~stage ~spec_hash ~params =
  Stage.key stage
    ~inputs:(Json.Obj [ ("schedule", Json.Str spec_hash); ("params", params) ])

(* Terminal artifact lookup/commit, shared by the CLI and the service
   runner so both report the same per-stage hit/miss counters. [key =
   None] (caching off, or the caller needs the live flow result — the
   --check gate, say) is a silent pass-through: no counters, no I/O. *)
let artifact_find ~cache ~stage ~key =
  match (cache, key) with
  | Some store, Some key -> (
    let sname = Stage.name stage in
    match Store.find store ~stage:sname ~key with
    | Some payload ->
      Telemetry.incr "cache.hit";
      Telemetry.incr ("cache.hit." ^ sname);
      Some payload
    | None ->
      Telemetry.incr "cache.miss";
      Telemetry.incr ("cache.miss." ^ sname);
      None)
  | _ -> None

let artifact_store ~cache ~stage ~key payload =
  match (cache, key) with
  | Some store, Some key -> Store.put store ~stage:(Stage.name stage) ~key payload
  | _ -> ()

(* --- stage payload codecs ------------------------------------------ *)

(* Decoders return [None] on any structural problem — a hand-edited or
   half-written entry that slipped past the store's integrity check, or
   a payload that no longer validates against today's DFG — and the
   stage recomputes. [Exit] is the local "shape mismatch" escape. *)

let encode_regalloc (r : Regalloc.t) =
  Json.to_string
    (Json.Arr
       (List.map
          (fun (rid, vars) ->
            Json.Arr (Json.Str rid :: List.map (fun v -> Json.Str v) vars))
          r.Regalloc.classes))

let decode_regalloc dfg ~policy payload =
  match Json.parse payload with
  | Ok (Json.Arr rows) -> (
    try
      let classes =
        List.map
          (function
            | Json.Arr (Json.Str rid :: vars) ->
              ( rid,
                List.map (function Json.Str v -> v | _ -> raise Exit) vars )
            | _ -> raise Exit)
          rows
      in
      let r = Regalloc.make classes in
      if Regalloc.is_valid_for r dfg ~policy then Some r else None
    with Exit | Invalid_argument _ -> None)
  | Ok _ | Error _ -> None

(* [Interconnect.optimize] terminates in [Datapath.build ... ~swap], so
   the swapped-op-id set is a complete encoding of its decision; the
   data path is rebuilt from today's DFG/assignment, never stored. *)
let encode_swaps (dp : Datapath.t) =
  Json.to_string
    (Json.Arr
       (List.filter_map
          (fun (rt : Datapath.route) ->
            if rt.Datapath.swapped then Some (Json.Str rt.Datapath.opid) else None)
          dp.Datapath.routes))

let decode_datapath dfg massign regalloc ~policy payload =
  match Json.parse payload with
  | Ok (Json.Arr ids) -> (
    try
      let swapped =
        List.fold_left
          (fun acc -> function
            | Json.Str id -> Dfg.Sset.add id acc
            | _ -> raise Exit)
          Dfg.Sset.empty ids
      in
      Some
        (Datapath.build dfg massign regalloc ~policy ~swap:(fun op ->
             Dfg.Sset.mem op swapped))
    with Exit | Invalid_argument _ -> None)
  | Ok _ | Error _ -> None

let style_to_name = function
  | Resource.Normal -> "normal"
  | Resource.Tpg -> "tpg"
  | Resource.Sa -> "sa"
  | Resource.Bilbo -> "bilbo"
  | Resource.Cbilbo -> "cbilbo"

let style_of_name = function
  | "normal" -> Some Resource.Normal
  | "tpg" -> Some Resource.Tpg
  | "sa" -> Some Resource.Sa
  | "bilbo" -> Some Resource.Bilbo
  | "cbilbo" -> Some Resource.Cbilbo
  | _ -> None

let opt_str = function Some s -> Json.Str s | None -> Json.Null

let encode_bist (b : Allocator.solution) (s : Session.t) =
  Json.to_string
    (Json.Obj
       [
         ( "embeddings",
           Json.Arr
             (List.map
                (fun (e : Ipath.embedding) ->
                  Json.Obj
                    [
                      ("mid", Json.Str e.Ipath.mid);
                      ("l_tpg", Json.Str e.Ipath.l_tpg);
                      ("r_tpg", Json.Str e.Ipath.r_tpg);
                      ("sa", Json.Str e.Ipath.sa);
                      ("l_via", opt_str e.Ipath.l_via);
                      ("r_via", opt_str e.Ipath.r_via);
                    ])
                b.Allocator.embeddings) );
         ( "styles",
           Json.Arr
             (List.map
                (fun (rid, st) ->
                  Json.Arr [ Json.Str rid; Json.Str (style_to_name st) ])
                b.Allocator.styles) );
         ( "untestable",
           Json.Arr (List.map (fun u -> Json.Str u) b.Allocator.untestable) );
         ("delta_gates", num b.Allocator.delta_gates);
         ( "sessions",
           Json.Arr
             (List.map
                (fun sess -> Json.Arr (List.map (fun u -> Json.Str u) sess))
                s.Session.sessions) );
       ])

let decode_bist payload =
  match Json.parse payload with
  | Error _ -> None
  | Ok json -> (
    try
      let field name =
        match Json.member name json with Some v -> v | None -> raise Exit
      in
      let str = function Json.Str s -> s | _ -> raise Exit in
      let list = function Json.Arr xs -> xs | _ -> raise Exit in
      let vopt = function Json.Null -> None | v -> Some (str v) in
      let embeddings =
        List.map
          (fun e ->
            let m name =
              match Json.member name e with Some v -> v | None -> raise Exit
            in
            {
              Ipath.mid = str (m "mid");
              l_tpg = str (m "l_tpg");
              r_tpg = str (m "r_tpg");
              sa = str (m "sa");
              l_via = vopt (m "l_via");
              r_via = vopt (m "r_via");
            })
          (list (field "embeddings"))
      in
      let styles =
        List.map
          (function
            | Json.Arr [ Json.Str rid; Json.Str st ] -> (
              match style_of_name st with
              | Some st -> (rid, st)
              | None -> raise Exit)
            | _ -> raise Exit)
          (list (field "styles"))
      in
      let untestable = List.map str (list (field "untestable")) in
      let delta_gates =
        match Json.to_int (field "delta_gates") with
        | Some n -> n
        | None -> raise Exit
      in
      let sessions =
        List.map (fun s -> List.map str (list s)) (list (field "sessions"))
      in
      Some
        ( {
            Allocator.embeddings;
            styles;
            untestable;
            delta_gates;
            (* only exact solutions are ever stored *)
            exact = true;
          },
          { Session.sessions } )
    with Exit -> None)
  | exception _ -> None

(* --- the keyed stage walk ------------------------------------------ *)

(* Run one DAG stage through the store. [key = None] (no cache, or an
   upstream output was uncacheable) falls through to a plain compute —
   the exact historical code path, so uncached flows stay byte-identical.
   A decode failure counts as corrupt and recomputes; an uncacheable
   result (budget-truncated search) is returned without an output hash
   so downstream stages also skip the store. *)
let stage_cached ~cache ~stage ~key ~encode ~decode ~cacheable compute =
  match (cache, key) with
  | None, _ | _, None -> (compute (), None)
  | Some store, Some key -> (
    let sname = Stage.name stage in
    let hit =
      match Store.find store ~stage:sname ~key with
      | None -> None
      | Some payload -> (
        match decode payload with
        | Some v -> Some (v, payload)
        | None ->
          Telemetry.incr "cache.corrupt";
          None)
    in
    match hit with
    | Some (v, payload) ->
      Telemetry.incr "cache.hit";
      Telemetry.incr ("cache.hit." ^ sname);
      (v, Some (Stage.out_hash ~key ~payload))
    | None ->
      Telemetry.incr "cache.miss";
      Telemetry.incr ("cache.miss." ^ sname);
      let v = compute () in
      if cacheable v then begin
        let payload = encode v in
        Store.put store ~stage:sname ~key payload;
        (v, Some (Stage.out_hash ~key ~payload))
      end
      else (v, None))

let run ?(model = Area.default) ?(width = 8) ?(io_penalty_percent = 100)
    ?(transparency = false) ?(budget = Budget.unlimited) ?cache ~style dfg
    massign ~policy =
  Telemetry.with_span "flow"
    ~attrs:
      [
        ("dfg", dfg.Bistpath_dfg.Dfg.name);
        ("style",
         match style with Traditional -> "traditional" | Testable _ -> "testable");
      ]
  @@ fun () ->
  (* Schedule (root) stage: nothing to compute, its key is the content
     identity everything downstream chains from. Only derived when a
     store is attached — uncached runs never pay for the rendering. *)
  let spec_h = Option.map (fun _ -> spec_hash dfg massign ~policy) cache in
  let regalloc, alloc_h =
    Telemetry.with_span "regalloc" @@ fun () ->
    let key =
      Option.map
        (fun sh ->
          match style with
          | Traditional ->
            (* left-edge is a pure function of the lifetime spans under
               the policy: key on those, so a spec edit that preserves
               lifetimes (changing an op's kind, say) still hits *)
            Stage.key Stage.Alloc
              ~inputs:
                (Json.Obj
                   [
                     ("flow", Json.Str "traditional");
                     ("policy", policy_json policy);
                     ( "spans",
                       Json.Arr
                         (List.map
                            (fun (v, (s : Interval.span)) ->
                              Json.Arr
                                [
                                  Json.Str v;
                                  num s.Interval.birth;
                                  num s.Interval.death;
                                ])
                            (Lifetime.spans ~policy dfg)) );
                   ])
          | Testable _ ->
            (* Delta-SD reads sharing degrees off the full binding: the
               whole spec is its input *)
            Stage.key Stage.Alloc
              ~inputs:
                (Json.Obj
                   [
                     ("flow", Json.Str "testable");
                     ("schedule", Json.Str sh);
                     ("options", style_json style);
                   ]))
        spec_h
    in
    stage_cached ~cache ~stage:Stage.Alloc ~key ~encode:encode_regalloc
      ~decode:(decode_regalloc dfg ~policy)
      ~cacheable:(fun _ -> true)
      (fun () ->
        match style with
        | Traditional -> Traditional_alloc.allocate dfg ~policy
        | Testable options ->
          fst (Testable_alloc.allocate ~options dfg massign ~policy))
  in
  let datapath, ic_h =
    Telemetry.with_span "interconnect" @@ fun () ->
    let key =
      match (spec_h, alloc_h) with
      | Some sh, Some ah ->
        Some
          (Stage.key Stage.Interconnect
             ~inputs:
               (Json.Obj
                  [
                    ("schedule", Json.Str sh);
                    ("alloc", Json.Str ah);
                    ( "objective",
                      Json.Str
                        (match style with
                        | Traditional -> "unweighted"
                        | Testable _ -> "sd-weighted") );
                  ]))
      | _ -> None
    in
    stage_cached ~cache ~stage:Stage.Interconnect ~key ~encode:encode_swaps
      ~decode:(decode_datapath dfg massign regalloc ~policy)
      ~cacheable:(fun _ -> true)
      (fun () ->
        let objective =
          match style with
          | Traditional -> { Interconnect.weight = (fun _ -> 0) }
          | Testable _ -> { Interconnect.weight = sd_weight dfg massign regalloc }
        in
        Interconnect.optimize dfg massign regalloc ~policy ~objective)
  in
  let (bist, sessions), _bist_h =
    let key =
      Option.map
        (fun ih ->
          Stage.key Stage.Bist
            ~inputs:
              (Json.Obj
                 [
                   ("interconnect", Json.Str ih);
                   ("model", model_json model);
                   ("width", num width);
                   ("io_penalty_percent", num io_penalty_percent);
                   ("transparency", Json.Bool transparency);
                 ]))
        ic_h
    in
    stage_cached ~cache ~stage:Stage.Bist ~key
      ~encode:(fun (b, s) -> encode_bist b s)
      ~decode:decode_bist
      ~cacheable:(fun ((b : Allocator.solution), _) ->
        (* a truncated search is a valid answer but not a reusable one *)
        b.Allocator.exact && not (Budget.should_stop budget))
      (fun () ->
        let bist =
          Telemetry.with_span "bist_alloc" @@ fun () ->
          Allocator.solve ~model ~width ~io_penalty_percent ~transparency
            ~budget datapath
        in
        let sessions =
          Telemetry.with_span "sessions" @@ fun () ->
          Session.schedule ~budget bist
        in
        (bist, sessions))
  in
  Telemetry.set "regs.allocated" (Datapath.allocated_register_count datapath);
  Telemetry.set "muxes.allocated" (Datapath.mux_count datapath);
  Telemetry.set "bist.delta_gates" bist.Allocator.delta_gates;
  Telemetry.set "sessions.count" (Session.num_sessions sessions);
  {
    style;
    regalloc;
    datapath;
    bist;
    sessions;
    registers = Datapath.allocated_register_count datapath;
    muxes = Datapath.mux_count datapath;
    overhead_percent = Allocator.overhead_percent ~model ~width datapath bist;
  }

let run_outcome ?model ?width ?io_penalty_percent ?transparency
    ?(budget = Budget.unlimited) ?cache ~style dfg massign ~policy =
  let r =
    run ?model ?width ?io_penalty_percent ?transparency ~budget ?cache ~style
      dfg massign ~policy
  in
  Budget.tag budget r

let reduction_percent ~traditional ~testable =
  if traditional.overhead_percent = 0.0 then 0.0
  else
    100.0
    *. (traditional.overhead_percent -. testable.overhead_percent)
    /. traditional.overhead_percent

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s flow: %d registers, %d muxes, BIST overhead %.2f%%@,%a@,%a@]"
    (match r.style with Traditional -> "traditional" | Testable _ -> "testable")
    r.registers r.muxes r.overhead_percent Regalloc.pp r.regalloc
    Allocator.pp_solution r.bist
