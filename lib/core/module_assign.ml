module Dfg = Bistpath_dfg.Dfg
module Op = Bistpath_dfg.Op
module Massign = Bistpath_dfg.Massign
module Ugraph = Bistpath_graphs.Ugraph
module Clique_partition = Bistpath_graphs.Clique_partition
module Listx = Bistpath_util.Listx

let single_function dfg =
  let ops = Array.of_list dfg.Dfg.ops in
  let n = Array.length ops in
  let compatible i j =
    ops.(i).Op.kind = ops.(j).Op.kind
    && Dfg.cstep dfg ops.(i).Op.id <> Dfg.cstep dfg ops.(j).Op.id
  in
  let edges = Listx.pairs (Listx.range 0 n) |> List.filter (fun (i, j) -> compatible i j) in
  let g = Ugraph.of_edges ~vertices:(Listx.range 0 n) edges in
  let shared_vars i j =
    let vs (o : Op.t) = [ o.left; o.right; o.out ] in
    List.length (List.filter (fun v -> List.mem v (vs ops.(j))) (vs ops.(i)))
  in
  let cliques = Clique_partition.greedy ~weight:shared_vars g in
  let counter = Hashtbl.create 8 in
  let units_binds =
    List.map
      (fun clique ->
        let members = Ugraph.Iset.elements clique in
        let kind =
          match members with
          | i :: _ -> ops.(i).Op.kind
          | [] -> assert false
        in
        let c = (match Hashtbl.find_opt counter kind with Some n -> n | None -> 0) + 1 in
        Hashtbl.replace counter kind c;
        let mid = Printf.sprintf "%s%d" (Op.symbol kind) c in
        ( { Massign.mid; kinds = [ kind ] },
          List.map (fun i -> (ops.(i).Op.id, mid)) members ))
      cliques
  in
  Massign.make dfg
    ~units:(List.map fst units_binds)
    ~bind:(List.concat_map snd units_binds)

let alu_pack dfg =
  let width =
    List.fold_left
      (fun acc step -> max acc (List.length (Dfg.ops_in_step dfg step)))
      0
      (Listx.range 1 (Dfg.num_csteps dfg + 1))
  in
  let slots = Array.make (max width 1) [] in
  (* slot i collects operations, at most one per control step *)
  List.iter
    (fun step ->
      List.iteri
        (fun i (op : Op.t) -> slots.(i) <- slots.(i) @ [ op ])
        (Dfg.ops_in_step dfg step))
    (Listx.range 1 (Dfg.num_csteps dfg + 1));
  let units_binds =
    Array.to_list slots
    |> List.mapi (fun i ops ->
           let mid = Printf.sprintf "ALU%d" (i + 1) in
           let kinds = List.sort_uniq compare (List.map (fun (o : Op.t) -> o.kind) ops) in
           ({ Massign.mid; kinds }, List.map (fun (o : Op.t) -> (o.id, mid)) ops))
    |> List.filter (fun (_, binds) -> binds <> [])
  in
  Massign.make dfg
    ~units:(List.map fst units_binds)
    ~bind:(List.concat_map snd units_binds)
