(** The synthesis pipeline as an explicit keyed stage DAG.

    {!Flow.run} used to be a straight-line pipeline; it is now a walk
    over this DAG, where every stage declares its dependencies and
    derives a deterministic content key from a canonical
    {!Bistpath_util.Json} encoding of its inputs (upstream output
    hashes plus its own parameters) and a per-stage schema version.
    Keys address the content-addressed store
    ({!Bistpath_cache.Store}), making re-synthesis incremental: only
    the stages whose input hash changed re-run.

    Stages, their typed inputs and outputs, and what their keys cover:

    - [Schedule] — root. Input: the scheduled DFG (canonical
      {!Bistpath_dfg.Parser.to_string} text, which carries the control
      steps), the module assignment and the allocation policy. Output:
      nothing to compute — its key {e is} its output hash, the content
      identity of the specification ({!Flow.spec_hash}).
    - [Alloc] — register assignment. Input: for the traditional flow,
      the lifetime spans plus policy (the left-edge algorithm is a pure
      function of them, so a spec edit that preserves lifetimes reuses
      the assignment); for the testable flow, the full schedule hash
      plus the {!Testable_alloc.options} triple. Output payload: the
      {!Bistpath_datapath.Regalloc} classes.
    - [Interconnect] — operand orientation. Input: schedule and alloc
      output hashes plus the objective (unweighted / SD-weighted).
      Output payload: the set of swapped operation ids — the data path
      is rebuilt from it with {!Bistpath_datapath.Datapath.build},
      which is exactly how {!Bistpath_datapath.Interconnect.optimize}
      terminates.
    - [Bist] — BIST embedding selection and session scheduling.
      Input: interconnect output hash, area model, width, I/O penalty
      and transparency. Output payload: the
      {!Bistpath_bist.Allocator.solution} fields plus the session
      partition. Only exact (non-budget-truncated) solutions are
      stored.
    - [Rtl], [Report] — terminal artifact stages, executed by the CLI
      and service layers (they own rendering). Their keys chain from
      the schedule root hash plus the full flow/pipeline parameter set
      ({!Flow.artifact_key}) — a sound over-approximation of their
      upstream hashes, since the whole pipeline is deterministic in
      those inputs — which lets a warm artifact be served byte-identical
      without rebuilding the flow at all. *)

type t = Schedule | Alloc | Interconnect | Bist | Rtl | Report

val all : t list
(** Topological order. *)

val name : t -> string
(** ["schedule"], ["alloc"], ["interconnect"], ["bist"], ["rtl"],
    ["report"] — the names used in cache entry headers and in the
    per-stage [cache.hit.<stage>] / [cache.miss.<stage>] counters. *)

val of_name : string -> t option

val schema_version : t -> int
(** Hashed into every key; bump on any payload-encoding or semantic
    change so stale entries miss instead of decoding wrongly. *)

val deps : t -> t list
(** Direct dependencies ([Rtl]/[Report] list [Bist], transitively the
    whole flow). *)

val key : t -> inputs:Bistpath_util.Json.t -> string
(** MD5 hex digest of the canonical encoding of
    [{stage; schema; inputs}]. *)

val out_hash : key:string -> payload:string -> string
(** Content identity of a stage's output: digests the key (full input
    provenance) together with the payload, so downstream keys cover
    the entire upstream computation even when a payload alone is
    ambiguous (the interconnect swap set, say, means nothing without
    the DFG that produced it). *)
