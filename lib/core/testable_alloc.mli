(** The paper's testable register allocation (Section III.A-B).

    A perfect vertex elimination scheme is selected with sharing-degree /
    max-clique-size preferences, then vertices are colored in reverse
    PVES order choosing, among non-conflicting registers, the one whose
    sharing degree grows the most (Delta-SD), corrected by the Case 1 /
    Case 2 preferences (keep output variables of a module together; route
    input variables to registers that already feed the module) and by the
    Lemma-2 CBILBO-avoidance check. A new register is opened only when
    every existing one conflicts. *)

type options = {
  sd_ordering : bool;  (** SD/MCS-driven PVES; off = arbitrary MCS order *)
  case_preferences : bool;  (** Section III.A Case 1 and Case 2 *)
  cbilbo_avoidance : bool;  (** Section III.B Lemma-2 filter *)
}

val default_options : options
(** All three on — the full algorithm. *)

type trace_step = {
  vertex : string;
  chosen : string;  (** register id *)
  fresh : bool;  (** a new register was opened *)
  reason : string;  (** "delta-sd", "case1", "case2", "conflict-all" *)
}

val allocate :
  ?options:options ->
  Bistpath_dfg.Dfg.t ->
  Bistpath_dfg.Massign.t ->
  policy:Bistpath_dfg.Policy.t ->
  Bistpath_datapath.Regalloc.t * trace_step list
(** The assignment plus a decision trace (used to regenerate the paper's
    Section III walkthrough). Registers are named in creation order
    R1..Rk. Deterministic. *)
