(** The paper's Lemma 1 and Lemma 2: register-assignment conditions under
    which, after minimum interconnect assignment, some register must be a
    CBILBO in {e every} BIST embedding of a module.

    Lemma 2: register Rx is a CBILBO in all embeddings of module M iff
    Rx intersects every instance's operand set I_M^j and either
    (i) Rx contains all of O_M, or (ii) Rx contains part of O_M and some
    register Ry holds the rest of O_M while also intersecting every
    I_M^j (then either of Rx, Ry can be the CBILBO).

    The lemma is stated under the paper's assumptions (all operators
    commutative, minimum interconnect). In this repository it serves as
    the allocator's {e predictive} check — it runs during coloring, when
    no data path exists yet — while the exact post-interconnect ground
    truth is {!Bistpath_ipath.Ipath.cbilbo_unavoidable}. Measured
    against that ground truth on randomly generated designs (see
    test_cbilbo), the prediction has perfect precision and ~90% recall
    on all-commutative units; rare escapes occur when minimum-connection
    orientations tie and the interconnect optimizer picks a balanced one
    the lemma's model did not anticipate. For non-commutative units the
    pinned operand sides make it a further over-approximation — still
    safe for the avoidance filter, which only uses the verdict to prefer
    one merge over another. *)

type verdict = {
  mid : string;
  case_i : string list;  (** registers triggering case (i) *)
  case_ii : (string * string) list;  (** (Rx, Ry) pairs triggering case (ii) *)
}

val check_module :
  Sharing.ctx ->
  Bistpath_dfg.Massign.t ->
  Bistpath_dfg.Dfg.t ->
  mid:string ->
  classes:(string * string list) list ->
  verdict
(** Evaluate Lemma 2 for one module against a (possibly partial) register
    assignment given as register-id/variable-list classes. *)

val forced : verdict -> bool
(** Does the verdict force a CBILBO for this module? *)

val any_forced :
  Sharing.ctx ->
  Bistpath_dfg.Massign.t ->
  Bistpath_dfg.Dfg.t ->
  classes:(string * string list) list ->
  bool
(** Does any module end up with a forced CBILBO under this assignment? *)

val min_cbilbo_count :
  Sharing.ctx ->
  Bistpath_dfg.Massign.t ->
  Bistpath_dfg.Dfg.t ->
  classes:(string * string list) list ->
  int
(** Lower bound on CBILBOs implied by the lemma: number of modules with a
    forced verdict, collapsed by shared registers (one CBILBO register
    can cover several modules' forced situations when the same register
    triggers each of them). *)
