module Telemetry = Bistpath_telemetry.Telemetry
module Inject = Bistpath_resilience.Inject

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t;  (* signalled when the queue gains tasks or on stop *)
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  mutable active : int;
  mutable max_active : int;
  mutable inflight : int;  (* batch tasks queued or running, across all batches *)
}

let jobs t = t.jobs

(* Runs one queued task with the pool mutex released. When a recorder is
   installed, the task's wall time feeds the parallel.chunk_ns histogram
   and parallel.busy_ns counter, and an explicit-track event pins it to
   this worker's Perfetto lane (track 1 = submitting domain, 2..jobs =
   spawned workers) so chunk-size skew is visible per worker. *)
let exec_task ~track task =
  if Telemetry.enabled () then begin
    let t0 = Telemetry.now () in
    task ();
    let dur = Int64.sub (Telemetry.now ()) t0 in
    let d = Int64.to_int dur in
    Telemetry.incr "parallel.busy_ns" ~by:d;
    Telemetry.observe "parallel.chunk_ns" d;
    Telemetry.add_timed ~track "chunk" ~start_ns:t0 ~dur_ns:dur
  end
  else task ()

(* The telemetry mutex is a leaf lock, so sampling parallel.active while
   holding the pool mutex cannot deadlock (no telemetry code ever takes
   a pool lock). Must be called with t.mutex held. *)
let sample_active t = Telemetry.set "parallel.active" t.active

(* Workers and the submitting domain both pull from the same queue; a
   task is an already-wrapped closure that never raises (Run wraps user
   thunks and parks their exceptions for the submitter to re-raise). *)
let worker_loop t ~track =
  Mutex.lock t.mutex;
  let rec next () =
    if t.stop then Mutex.unlock t.mutex
    else
      match Queue.take_opt t.queue with
      | Some task ->
        t.active <- t.active + 1;
        if t.active > t.max_active then t.max_active <- t.active;
        sample_active t;
        Mutex.unlock t.mutex;
        exec_task ~track task;
        Mutex.lock t.mutex;
        t.active <- t.active - 1;
        sample_active t;
        next ()
      | None ->
        (* Parked while a batch still has tasks running elsewhere:
           starvation (too few chunks, or skewed ones). Parked with no
           batch in flight is the pool's natural resting state and is
           not counted. *)
        if t.inflight > 0 && Telemetry.enabled () then begin
          let t0 = Telemetry.now () in
          Condition.wait t.work t.mutex;
          Telemetry.incr "parallel.idle_ns"
            ~by:(Int64.to_int (Int64.sub (Telemetry.now ()) t0))
        end
        else Condition.wait t.work t.mutex;
        next ()
  in
  next ()

(* Beyond ~4x the core count extra domains only add scheduling pressure;
   treat larger BISTPATH_JOBS values as configuration mistakes. *)
let max_sensible_jobs () = 4 * Domain.recommended_domain_count ()

let default_jobs () =
  match Sys.getenv_opt "BISTPATH_JOBS" with
  | Some s -> (
    let cores = Domain.recommended_domain_count () in
    let cap = max_sensible_jobs () in
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 && n <= cap -> n
    | Some n when n < 1 ->
      Printf.eprintf "bistpath: BISTPATH_JOBS=%d is not positive; clamping to 1\n%!" n;
      1
    | Some n ->
      Printf.eprintf
        "bistpath: BISTPATH_JOBS=%d exceeds 4x the %d available cores; clamping to %d\n%!"
        n cores cap;
      cap
    | None ->
      Printf.eprintf
        "bistpath: BISTPATH_JOBS=%S is not an integer; using the core count (%d)\n%!" s
        cores;
      cores)
  | None -> Domain.recommended_domain_count ()

let create ?jobs () =
  let jobs =
    match jobs with
    | Some n ->
      if n < 1 then invalid_arg "Pool.create: jobs must be >= 1";
      n
    | None -> default_jobs ()
  in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      stop = false;
      domains = [];
      active = 0;
      max_active = 0;
      inflight = 0;
    }
  in
  (* The submitting domain participates in [run], so a [jobs]-wide pool
     only spawns [jobs - 1] workers; [jobs = 1] spawns none at all. The
     submitter profiles as track 1, so spawned workers take 2..jobs. *)
  t.domains <-
    List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker_loop t ~track:(i + 2)));
  t

let shutdown t =
  Mutex.lock t.mutex;
  if not t.stop then begin
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end
  else Mutex.unlock t.mutex

let run t thunks =
  if t.stop then invalid_arg "Pool.run: pool is shut down";
  match thunks with
  | [] -> ()
  | _ when t.jobs = 1 -> List.iter (fun f -> f ()) thunks
  | _ ->
    let n = List.length thunks in
    let remaining = ref n in
    (* first exception in task order, so a failing batch re-raises the
       same exception the sequential loop would have *)
    let failure = ref None in
    let batch_done = Condition.create () in
    let task i f () =
      (try
         Inject.fire "pool.worker";
         f ()
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock t.mutex;
         (match !failure with
         | Some (j, _, _) when j < i -> ()
         | _ -> failure := Some (i, e, bt));
         Mutex.unlock t.mutex);
      Mutex.lock t.mutex;
      decr remaining;
      t.inflight <- t.inflight - 1;
      if !remaining = 0 then Condition.broadcast batch_done;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    t.inflight <- t.inflight + n;
    List.iteri (fun i f -> Queue.add (task i f) t.queue) thunks;
    Condition.broadcast t.work;
    (* Help-first waiting: the caller drains the queue alongside the
       workers — running any batch's tasks, which is what makes nested
       batches deadlock-free — then sleeps only on tasks already in
       flight on other threads. *)
    let steals = ref 0 in
    let rec drain () =
      match Queue.take_opt t.queue with
      | Some task ->
        incr steals;
        t.active <- t.active + 1;
        if t.active > t.max_active then t.max_active <- t.active;
        sample_active t;
        Mutex.unlock t.mutex;
        exec_task ~track:1 task;
        Mutex.lock t.mutex;
        t.active <- t.active - 1;
        sample_active t;
        drain ()
      | None -> ()
    in
    drain ();
    (* The tail wait is the load-imbalance signal: the queue is empty
       but workers still hold chunks, so the submitter can only stall. *)
    if !remaining > 0 && Telemetry.enabled () then begin
      let t0 = Telemetry.now () in
      while !remaining > 0 do
        Condition.wait batch_done t.mutex
      done;
      let d = Int64.to_int (Int64.sub (Telemetry.now ()) t0) in
      Telemetry.incr "parallel.stall_ns" ~by:d;
      Telemetry.observe "parallel.stall_ns" d
    end
    else
      while !remaining > 0 do
        Condition.wait batch_done t.mutex
      done;
    let max_active = t.max_active in
    Mutex.unlock t.mutex;
    Telemetry.incr "parallel.tasks" ~by:n;
    if !steals > 0 then Telemetry.incr "parallel.steals" ~by:!steals;
    Telemetry.set "parallel.jobs" t.jobs;
    Telemetry.set "parallel.max_active" max_active;
    (match !failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ())

(* --- the shared process-wide pool ---------------------------------- *)

let requested : int option ref = ref None
let global : t option ref = ref None

let set_jobs n =
  if n < 1 then invalid_arg "Pool.set_jobs: jobs must be >= 1";
  (match !global with
  | Some p when p.jobs <> n ->
    shutdown p;
    global := None
  | _ -> ());
  requested := Some n

let configured_jobs () =
  match !requested with Some n -> n | None -> default_jobs ()

let get () =
  match !global with
  | Some p -> p
  | None ->
    let p = create ~jobs:(configured_jobs ()) () in
    global := Some p;
    p

let () = at_exit (fun () -> match !global with Some p -> shutdown p | None -> ())
