(** Fixed-size domain pool.

    A pool spawns its worker domains once ([create]) and reuses them for
    every subsequent batch, so parallel regions in hot loops pay no
    domain-spawn cost. The submitting domain participates in each batch,
    so a [jobs]-wide pool runs on exactly [jobs] domains and a pool with
    [jobs = 1] spawns no domains at all — that configuration executes
    everything inline on the caller, which is how the engine degrades
    gracefully on single-core machines.

    Batches may nest: a task can itself submit a batch to the pool it
    runs on (the benchmark harness fans out report sections whose hot
    paths fan out again). This is deadlock-free because waiting is
    help-first — a thread with an outstanding batch drains the shared
    queue (running any batch's tasks) before sleeping, so queued work
    can never be orphaned behind a sleeping submitter.

    Telemetry: each {!run} adds the batch size to the [parallel.tasks]
    counter and refreshes the [parallel.jobs] and [parallel.max_active]
    (pool occupancy high-water mark) gauges. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains. [jobs] defaults
    to {!default_jobs}; it must be >= 1 or [Invalid_argument] is
    raised. *)

val jobs : t -> int
(** The pool's width (worker domains + the submitting domain). *)

val run : t -> (unit -> unit) list -> unit
(** Execute every thunk, returning when all have finished. With
    [jobs = 1] the thunks run inline, in order, on the caller — the
    exact sequential code path. Otherwise completion order is
    arbitrary; results must be assembled positionally by the caller
    (see [Par]). If any thunk raises, the exception of the
    earliest-submitted failing thunk is re-raised (with its backtrace)
    after the whole batch has drained. Raises [Invalid_argument] on a
    pool that has been shut down.

    Fault injection: each task on the parallel path probes the
    [pool.worker] site ({!Bistpath_resilience.Inject}) before running
    its thunk; an injected hit is handled exactly like a thunk
    exception — parked, batch drained, earliest re-raised. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent. Tasks already queued
    by a concurrent [run] are abandoned — only call this with no batch
    in flight. *)

(** {1 Process-wide shared pool}

    The synthesis hot paths ([Fault_sim], [Podem], [Pareto], the BIST
    session simulator) draw their parallelism from one shared pool so a
    whole pipeline run creates domains exactly once. *)

val default_jobs : unit -> int
(** The [BISTPATH_JOBS] environment variable, otherwise
    [Domain.recommended_domain_count ()]. Out-of-range values are
    rejected with a warning on stderr and clamped rather than silently
    accepted: values [<= 0] clamp to 1, values above 4x the core count
    (where extra domains only add scheduling pressure) clamp to that
    ceiling, and non-integer values fall back to the core count. *)

val set_jobs : int -> unit
(** Configure the shared pool's width (the [-j] flag). If the shared
    pool already exists at a different width it is shut down and
    recreated on next {!get}. Raises [Invalid_argument] if [jobs < 1]. *)

val configured_jobs : unit -> int
(** The width {!get} would use: the last {!set_jobs} value, else
    {!default_jobs}. Does not create the pool. *)

val get : unit -> t
(** The shared pool, created on first use and joined automatically at
    process exit. *)
