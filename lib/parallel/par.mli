(** Deterministic data-parallel combinators over a {!Pool}.

    Every combinator assembles its results positionally — element [i] of
    the output always comes from element [i] of the input, never from
    completion order — so for a pure [f] the output is bit-for-bit
    identical at any pool width, and with [jobs = 1] the combinators
    take the exact sequential code path ([Array.map] / [List.map] /
    [fold_left], no chunking, no pool traffic).

    When [?pool] is omitted the process-wide {!Pool.get} pool is used.
    [?chunk] pins the number of consecutive elements per pool task; the
    default aims at four chunks per worker. *)

val map_array : ?pool:Pool.t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]. [f] must be pure (or at least domain-safe);
    if it raises, the earliest-submitted failing chunk's exception is
    re-raised. *)

val map_list : ?pool:Pool.t -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map], preserving list order. *)

val reduce :
  ?pool:Pool.t ->
  ?chunk:int ->
  ('a -> 'b) ->
  ('b -> 'b -> 'b) ->
  'b ->
  'a list ->
  'b
(** [reduce f combine init l] maps [f] in parallel, then folds
    [combine] left-to-right over the results in input order — an
    ordered reduce, safe for non-commutative [combine]. *)

(** {1 Budget-aware variants}

    Cooperative-cancellation versions of the maps: element [i] of the
    output is [Some (f input_i)] if it was evaluated before the
    budget's token tripped and [None] otherwise. Chunks poll the token
    at entry (a skipped chunk counts one [resilience.cancelled_chunks])
    and between elements, so a tripped budget unwinds the whole batch
    promptly instead of finishing queued work.

    Determinism: with an untripped budget the output equals
    [map_* (fun x -> Some (f x))] bit-for-bit at any pool width, and a
    token cancelled {e before} the call yields all-[None] at any width.
    A deadline tripping {e mid}-batch cuts at a scheduling-dependent
    point — width-independent results under truncation require a
    deterministic quota (leaf/node budget checked before fan-out), which
    is how [Pareto.explore] uses these. *)

val map_array_budget :
  ?pool:Pool.t ->
  ?chunk:int ->
  budget:Bistpath_resilience.Budget.t ->
  ('a -> 'b) ->
  'a array ->
  'b option array

val map_list_budget :
  ?pool:Pool.t ->
  ?chunk:int ->
  budget:Bistpath_resilience.Budget.t ->
  ('a -> 'b) ->
  'a list ->
  'b option list
