module Telemetry = Bistpath_telemetry.Telemetry

let resolve = function Some p -> p | None -> Pool.get ()

(* Chunk size balancing scheduling overhead against load imbalance:
   about four chunks per worker unless the caller pins one. *)
let chunk_size ~chunk ~jobs n =
  match chunk with
  | Some c when c >= 1 -> c
  | Some _ | None -> max 1 ((n + (4 * jobs) - 1) / (4 * jobs))

let map_array ?pool ?chunk f a =
  let n = Array.length a in
  if n = 0 then [||]
  else
    let pool = resolve pool in
    if Pool.jobs pool = 1 || n = 1 then Array.map f a
    else begin
      (* Element 0 is computed inline to seed the result array without
         an unsafe placeholder; chunks cover the remaining indices. *)
      let res = Array.make n (f a.(0)) in
      let chunk = chunk_size ~chunk ~jobs:(Pool.jobs pool) (n - 1) in
      let thunks = ref [] in
      let lo = ref 1 in
      while !lo < n do
        let lo' = !lo in
        let hi = min n (lo' + chunk) in
        thunks :=
          (fun () ->
            for i = lo' to hi - 1 do
              res.(i) <- f a.(i)
            done)
          :: !thunks;
        lo := hi
      done;
      let thunks = List.rev !thunks in
      Telemetry.incr "parallel.chunks" ~by:(List.length thunks);
      Telemetry.incr "parallel.items" ~by:n;
      Pool.run pool thunks;
      res
    end

let map_list ?pool ?chunk f l =
  match l with
  | [] -> []
  | l ->
    let pool = resolve pool in
    if Pool.jobs pool = 1 then List.map f l
    else Array.to_list (map_array ~pool ?chunk f (Array.of_list l))

let reduce ?pool ?chunk f combine init l =
  List.fold_left (fun acc y -> combine acc y) init (map_list ?pool ?chunk f l)

(* --- budget-aware variants ------------------------------------------ *)

module Budget = Bistpath_resilience.Budget

let map_array_budget ?pool ?chunk ~budget f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let pool = resolve pool in
    let res = Array.make n None in
    if Pool.jobs pool = 1 || n = 1 then begin
      (* Sequential path: the same per-element poll the parallel chunks
         perform, so a pre-cancelled token yields all-[None] at every
         pool width and a leaf-budget cut is width-independent. *)
      for i = 0 to n - 1 do
        if not (Budget.should_stop budget) then res.(i) <- Some (f a.(i))
      done
    end
    else begin
      let chunk = chunk_size ~chunk ~jobs:(Pool.jobs pool) n in
      let thunks = ref [] in
      let lo = ref 0 in
      while !lo < n do
        let lo' = !lo in
        let hi = min n (lo' + chunk) in
        thunks :=
          (fun () ->
            (* Workers poll the token between chunks (here, at chunk
               entry) so a cancelled batch unwinds promptly even when
               many chunks are still queued... *)
            if Budget.should_stop budget then
              Telemetry.incr "resilience.cancelled_chunks"
            else
              for i = lo' to hi - 1 do
                (* ... and between elements, so long chunks stop early
                   too. Slots left at [None] mark unevaluated items. *)
                if not (Budget.should_stop budget) then res.(i) <- Some (f a.(i))
              done)
          :: !thunks;
        lo := hi
      done;
      let thunks = List.rev !thunks in
      Telemetry.incr "parallel.chunks" ~by:(List.length thunks);
      Telemetry.incr "parallel.items" ~by:n;
      Pool.run pool thunks
    end;
    res
  end

let map_list_budget ?pool ?chunk ~budget f l =
  match l with
  | [] -> []
  | l -> Array.to_list (map_array_budget ?pool ?chunk ~budget f (Array.of_list l))
