module Telemetry = Bistpath_telemetry.Telemetry

let resolve = function Some p -> p | None -> Pool.get ()

(* Chunk size balancing scheduling overhead against load imbalance:
   about four chunks per worker unless the caller pins one. *)
let chunk_size ~chunk ~jobs n =
  match chunk with
  | Some c when c >= 1 -> c
  | Some _ | None -> max 1 ((n + (4 * jobs) - 1) / (4 * jobs))

let map_array ?pool ?chunk f a =
  let n = Array.length a in
  if n = 0 then [||]
  else
    let pool = resolve pool in
    if Pool.jobs pool = 1 || n = 1 then Array.map f a
    else begin
      (* Element 0 is computed inline to seed the result array without
         an unsafe placeholder; chunks cover the remaining indices. *)
      let res = Array.make n (f a.(0)) in
      let chunk = chunk_size ~chunk ~jobs:(Pool.jobs pool) (n - 1) in
      let thunks = ref [] in
      let lo = ref 1 in
      while !lo < n do
        let lo' = !lo in
        let hi = min n (lo' + chunk) in
        thunks :=
          (fun () ->
            for i = lo' to hi - 1 do
              res.(i) <- f a.(i)
            done)
          :: !thunks;
        lo := hi
      done;
      let thunks = List.rev !thunks in
      Telemetry.incr "parallel.chunks" ~by:(List.length thunks);
      Telemetry.incr "parallel.items" ~by:n;
      Pool.run pool thunks;
      res
    end

let map_list ?pool ?chunk f l =
  match l with
  | [] -> []
  | l ->
    let pool = resolve pool in
    if Pool.jobs pool = 1 then List.map f l
    else Array.to_list (map_array ~pool ?chunk f (Array.of_list l))

let reduce ?pool ?chunk f combine init l =
  List.fold_left (fun acc y -> combine acc y) init (map_list ?pool ?chunk f l)
