(** Simple undirected graphs over integer vertices.

    Immutable; all operations are persistent. Vertices are arbitrary ints
    (not necessarily dense). Self-loops are rejected. *)

module Iset : Set.S with type elt = int
module Imap : Map.S with type key = int

type t

val empty : t

val add_vertex : t -> int -> t
(** Idempotent. *)

val add_edge : t -> int -> int -> t
(** Adds both endpoints as needed. Raises [Invalid_argument] on a
    self-loop. Idempotent. *)

val of_edges : ?vertices:int list -> (int * int) list -> t
(** Graph with the given extra isolated vertices and edges. *)

val vertices : t -> int list
(** Sorted. *)

val num_vertices : t -> int

val num_edges : t -> int

val edges : t -> (int * int) list
(** Each edge once, as [(u, v)] with [u < v], sorted. *)

val mem_vertex : t -> int -> bool

val mem_edge : t -> int -> int -> bool
(** Symmetric; false if either endpoint is absent. *)

val neighbors : t -> int -> Iset.t
(** Empty set if the vertex is absent. *)

val degree : t -> int -> int

val remove_vertex : t -> int -> t
(** Removes the vertex and all incident edges. *)

val induced : t -> Iset.t -> t
(** Subgraph induced by the given vertex set. *)

val is_clique : t -> Iset.t -> bool
(** Do the given vertices induce a complete subgraph? *)

val is_simplicial : t -> int -> bool
(** Is the neighborhood of the vertex a clique? *)

val complement : t -> t
(** Same vertex set, complemented edges. *)

val pp : Format.formatter -> t -> unit
