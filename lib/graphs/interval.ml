type span = { birth : int; death : int }

let overlap a b = a.birth < b.death && b.birth < a.death

let graph spans =
  List.iter
    (fun (v, s) ->
      if s.death <= s.birth then
        invalid_arg (Printf.sprintf "Interval.graph: empty span for vertex %d" v))
    spans;
  let labels = List.map fst spans in
  if List.length (List.sort_uniq compare labels) <> List.length labels then
    invalid_arg "Interval.graph: duplicate vertex label";
  let edges =
    Bistpath_util.Listx.pairs spans
    |> List.filter_map (fun ((u, su), (v, sv)) ->
           if overlap su sv then Some (u, v) else None)
  in
  Ugraph.of_edges ~vertices:labels edges

let random rng ~n ~horizon =
  List.map
    (fun i ->
      let birth = Bistpath_util.Prng.int rng horizon in
      let len = 1 + Bistpath_util.Prng.int rng (max 1 (horizon - birth)) in
      (i, { birth; death = birth + len }))
    (Bistpath_util.Listx.range 0 n)
