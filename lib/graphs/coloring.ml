module Iset = Ugraph.Iset

type t = (int * int) list

let first_fit g order =
  let color = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let used =
        Iset.fold
          (fun u acc ->
            match Hashtbl.find_opt color u with
            | Some c -> Iset.add c acc
            | None -> acc)
          (Ugraph.neighbors g v) Iset.empty
      in
      let rec smallest c = if Iset.mem c used then smallest (c + 1) else c in
      Hashtbl.replace color v (smallest 0))
    order;
  List.map (fun v -> (v, Hashtbl.find color v)) (Ugraph.vertices g)

let is_proper g t =
  let color v = List.assoc_opt v t in
  List.for_all (fun v -> color v <> None) (Ugraph.vertices g)
  && List.for_all (fun (u, v) -> color u <> color v) (Ugraph.edges g)

let num_colors t = List.length (List.sort_uniq compare (List.map snd t))

let classes t =
  Bistpath_util.Listx.group_by snd t
  |> List.map (fun (c, members) -> (c, List.sort compare (List.map fst members)))

(* Count partitions into exactly k independent sets by canonical
   backtracking: vertex i may open block j only if blocks 0..j-1 are
   already open, so each partition is counted once. *)
let count_colorings g k =
  let vs = Array.of_list (Ugraph.vertices g) in
  let n = Array.length vs in
  let blocks = Array.make k Iset.empty in
  let conflicts v block = Iset.exists (fun u -> Iset.mem u block) (Ugraph.neighbors g v) in
  let rec go i opened =
    if i = n then if opened = k then 1 else 0
    else begin
      let v = vs.(i) in
      let total = ref 0 in
      for b = 0 to opened - 1 do
        if not (conflicts v blocks.(b)) then begin
          blocks.(b) <- Iset.add v blocks.(b);
          total := !total + go (i + 1) opened;
          blocks.(b) <- Iset.remove v blocks.(b)
        end
      done;
      if opened < k then begin
        blocks.(opened) <- Iset.singleton v;
        total := !total + go (i + 1) (opened + 1);
        blocks.(opened) <- Iset.empty
      end;
      !total
    end
  in
  if k <= 0 then (if n = 0 then 1 else 0) else go 0 0

let chromatic_number_exact g =
  let n = Ugraph.num_vertices g in
  let rec go k = if k > n then n else if count_colorings g k > 0 then k else go (k + 1) in
  if n = 0 then 0 else go 1
