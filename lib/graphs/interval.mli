(** Interval graphs from half-open lifetime intervals.

    A variable live on [(birth, death]] conflicts with another iff the open
    interiors of their intervals intersect; touching endpoints (one value
    read in the same step another is written) do not conflict. *)

type span = { birth : int; death : int }
(** Live range [(birth, death]], in control-step units. Requires
    [death > birth]. *)

val overlap : span -> span -> bool
(** Do two spans conflict? *)

val graph : (int * span) list -> Ugraph.t
(** Conflict graph of the given labelled spans. Raises [Invalid_argument]
    on a malformed span or duplicate label. *)

val random : Bistpath_util.Prng.t -> n:int -> horizon:int -> (int * span) list
(** [n] random spans with endpoints within [0, horizon]; used by property
    tests (interval graphs are closed under this construction, so PEO and
    minimum-coloring invariants must hold on every output). *)
