module Iset = Ugraph.Iset
module Telemetry = Bistpath_telemetry.Telemetry

(* Super-vertex merging: clusters are cliques; two clusters can merge iff
   every cross pair is an edge. We score a merge by the number of other
   clusters both could still merge with afterwards (common neighbors), the
   classical Tseng-Siewiorek heuristic. *)
let greedy ?(weight = fun _ _ -> 0) g =
  let can_merge a b =
    Iset.for_all (fun u -> Iset.for_all (fun v -> Ugraph.mem_edge g u v) b) a
  in
  let cluster_weight a b =
    Iset.fold (fun u acc -> Iset.fold (fun v acc -> acc + weight u v) b acc) a 0
  in
  let rec go clusters =
    Telemetry.incr "clique.iterations";
    let mergeable =
      Bistpath_util.Listx.pairs clusters
      |> List.filter (fun (a, b) -> can_merge a b)
    in
    match mergeable with
    | [] -> clusters
    | _ ->
      let common_neighbors (a, b) =
        let merged = Iset.union a b in
        List.length
          (List.filter
             (fun c -> (not (Iset.equal c a)) && (not (Iset.equal c b)) && can_merge merged c)
             clusters)
      in
      let score (a, b) = (common_neighbors (a, b) * 10000) + cluster_weight a b in
      let best =
        match Bistpath_util.Listx.max_by score mergeable with
        | Some p -> p
        | None -> assert false
      in
      let a, b = best in
      Telemetry.incr "clique.merges";
      let clusters =
        Iset.union a b
        :: List.filter (fun c -> not (Iset.equal c a || Iset.equal c b)) clusters
      in
      go clusters
  in
  go (List.map Iset.singleton (Ugraph.vertices g))

let exact_min g =
  (* A minimum clique partition of g is a minimum coloring of its
     complement; reuse the exact coloring counter via search over k. *)
  let co = Ugraph.complement g in
  let k = Coloring.chromatic_number_exact co in
  (* Recover one witness partition of that size by backtracking. *)
  let vs = Array.of_list (Ugraph.vertices g) in
  let n = Array.length vs in
  let blocks = Array.make (max k 1) Iset.empty in
  let ok v block = Iset.for_all (fun u -> Ugraph.mem_edge g u v) block in
  let exception Found of Iset.t list in
  let rec go i opened =
    if i = n then raise (Found (Array.to_list (Array.sub blocks 0 opened)))
    else begin
      let v = vs.(i) in
      for b = 0 to opened - 1 do
        if ok v blocks.(b) then begin
          blocks.(b) <- Iset.add v blocks.(b);
          go (i + 1) opened;
          blocks.(b) <- Iset.remove v blocks.(b)
        end
      done;
      if opened < k then begin
        blocks.(opened) <- Iset.singleton v;
        go (i + 1) (opened + 1);
        blocks.(opened) <- Iset.empty
      end
    end
  in
  if n = 0 then []
  else try go 0 0; assert false with Found p -> p

let is_partition g parts =
  let all = List.fold_left Iset.union Iset.empty parts in
  let total = Bistpath_util.Listx.sum_by Iset.cardinal parts in
  Iset.equal all (Iset.of_list (Ugraph.vertices g))
  && total = Ugraph.num_vertices g
  && List.for_all (Ugraph.is_clique g) parts
