(** Clique partitioning of a compatibility graph (Tseng-Siewiorek style).

    Used for module assignment: vertices are operations, an edge joins two
    operations that may share a hardware module (same operator class,
    different control steps). A partition into cliques is a module
    assignment; fewer cliques = fewer modules. *)

val greedy :
  ?weight:(int -> int -> int) -> Ugraph.t -> Ugraph.Iset.t list
(** Greedy clique partitioning: repeatedly merge the pair of compatible
    super-vertices with the largest number of common compatible neighbors
    (ties broken by [weight] of the merged pair, then by vertex ids).
    Every vertex appears in exactly one returned clique. *)

val exact_min : Ugraph.t -> Ugraph.Iset.t list
(** Minimum-cardinality clique partition by exhaustive search (equivalent
    to coloring the complement graph exactly). Exponential; small graphs
    only. *)

val is_partition : Ugraph.t -> Ugraph.Iset.t list -> bool
(** Are the given sets disjoint cliques of [g] covering every vertex? *)
