(** Graph coloring as used for register allocation: colors are register
    indices, an edge is a lifetime conflict. *)

type t = (int * int) list
(** Assignment vertex -> color as an association list, colors dense from 0. *)

val first_fit : Ugraph.t -> int list -> t
(** Greedy coloring following the given vertex order; each vertex gets the
    smallest color absent from its already-colored neighbors. On a chordal
    graph with a reverse PEO this is a minimum coloring. The order must
    list every vertex exactly once. *)

val is_proper : Ugraph.t -> t -> bool
(** Every vertex colored, endpoints of every edge differ. *)

val num_colors : t -> int

val classes : t -> (int * int list) list
(** Color -> members, sorted by color, members sorted. *)

val count_colorings : Ugraph.t -> int -> int
(** [count_colorings g k] is the number of partitions of the vertices into
    exactly [k] non-empty independent sets (register assignments using all
    [k] registers, registers unlabeled). Exponential; for small graphs and
    tests only. *)

val chromatic_number_exact : Ugraph.t -> int
(** Smallest [k] with [count_colorings g k > 0]. Exponential; small graphs
    only. *)
