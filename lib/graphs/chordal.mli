(** Chordal-graph machinery: perfect elimination orderings (the paper's
    "perfect vertex elimination schemes", PVES), chordality testing,
    maximal cliques, and per-vertex maximum clique sizes.

    Variable conflict graphs of scheduled DFGs without loops or mutual
    exclusion are interval graphs, hence chordal, so every algorithm here
    is exact and polynomial on them. *)

val is_peo : Ugraph.t -> int list -> bool
(** [is_peo g order] checks that [order] is a perfect elimination ordering:
    each vertex is simplicial in the subgraph induced by itself and the
    vertices after it, and [order] enumerates all vertices exactly once. *)

val mcs_order : Ugraph.t -> int list
(** Maximum cardinality search. The returned order, reversed, is a PEO iff
    the graph is chordal. *)

val is_chordal : Ugraph.t -> bool

val peo_with_preference : Ugraph.t -> prefer:(int -> int -> int) -> int list
(** A PEO built by repeatedly eliminating, among the currently simplicial
    vertices, the one preferred by the comparison [prefer] (smaller =
    chosen first, ties broken by vertex id). This is the paper's
    structured PVES selection (Section III.A.1). Raises [Failure] if the
    graph is not chordal (no simplicial vertex at some step). *)

val maximal_cliques : Ugraph.t -> Ugraph.Iset.t list
(** All maximal cliques of a chordal graph, each exactly once, via a PEO.
    Raises [Failure] if the graph is not chordal. *)

val max_clique_size_per_vertex : Ugraph.t -> (int * int) list
(** [MCS(v)] of the paper: for each vertex, the size of the largest clique
    containing it. Sorted by vertex. Chordal graphs only. *)

val clique_number : Ugraph.t -> int
(** Size of a largest clique (chordal graphs only); 0 for the empty graph. *)
