module Iset = Set.Make (Int)
module Imap = Map.Make (Int)

type t = { adj : Iset.t Imap.t }

let empty = { adj = Imap.empty }

let add_vertex t v =
  if Imap.mem v t.adj then t else { adj = Imap.add v Iset.empty t.adj }

let add_edge t u v =
  if u = v then invalid_arg "Ugraph.add_edge: self-loop";
  let t = add_vertex (add_vertex t u) v in
  let link a b adj = Imap.add a (Iset.add b (Imap.find a adj)) adj in
  { adj = link u v (link v u t.adj) }

let of_edges ?(vertices = []) edges =
  let t = List.fold_left add_vertex empty vertices in
  List.fold_left (fun t (u, v) -> add_edge t u v) t edges

let vertices t = List.map fst (Imap.bindings t.adj)

let num_vertices t = Imap.cardinal t.adj

let neighbors t v =
  match Imap.find_opt v t.adj with Some s -> s | None -> Iset.empty

let degree t v = Iset.cardinal (neighbors t v)

let edges t =
  Imap.fold
    (fun u ns acc -> Iset.fold (fun v acc -> if u < v then (u, v) :: acc else acc) ns acc)
    t.adj []
  |> List.sort compare

let num_edges t = List.length (edges t)

let mem_vertex t v = Imap.mem v t.adj

let mem_edge t u v = Iset.mem v (neighbors t u)

let remove_vertex t v =
  let adj = Imap.remove v t.adj in
  { adj = Imap.map (fun ns -> Iset.remove v ns) adj }

let induced t keep =
  let adj =
    Imap.filter (fun v _ -> Iset.mem v keep) t.adj
    |> Imap.map (fun ns -> Iset.inter ns keep)
  in
  { adj }

let is_clique t set =
  Iset.for_all
    (fun u -> Iset.for_all (fun v -> u = v || mem_edge t u v) set)
    set

let is_simplicial t v = is_clique t (neighbors t v)

let complement t =
  let vs = vertices t in
  let all = Iset.of_list vs in
  let adj =
    List.fold_left
      (fun adj v ->
        let non = Iset.diff (Iset.remove v all) (neighbors t v) in
        Imap.add v non adj)
      Imap.empty vs
  in
  { adj }

let pp ppf t =
  Format.fprintf ppf "@[<v>vertices: %a@,edges:"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_int)
    (vertices t);
  List.iter (fun (u, v) -> Format.fprintf ppf "@ %d-%d" u v) (edges t);
  Format.fprintf ppf "@]"
