module Iset = Ugraph.Iset

let is_peo g order =
  let all = Iset.of_list (Ugraph.vertices g) in
  let listed = Iset.of_list order in
  Iset.equal all listed
  && List.length order = Iset.cardinal all
  &&
  let rec go g = function
    | [] -> true
    | v :: rest -> Ugraph.is_simplicial g v && go (Ugraph.remove_vertex g v) rest
  in
  go g order

(* Maximum cardinality search: repeatedly visit the unvisited vertex with
   the most visited neighbors. Reversing the visit order yields a PEO iff
   the graph is chordal (Tarjan & Yannakakis 1984). *)
let mcs_order g =
  let vs = Ugraph.vertices g in
  let weight = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace weight v 0) vs;
  let visited = Hashtbl.create 16 in
  let rec go acc remaining =
    if remaining = 0 then List.rev acc
    else begin
      let best = ref None in
      List.iter
        (fun v ->
          if not (Hashtbl.mem visited v) then
            let w = Hashtbl.find weight v in
            match !best with
            | Some (_, bw) when bw >= w -> ()
            | _ -> best := Some (v, w))
        vs;
      match !best with
      | None -> List.rev acc
      | Some (v, _) ->
        Hashtbl.replace visited v ();
        Iset.iter
          (fun u ->
            if not (Hashtbl.mem visited u) then
              Hashtbl.replace weight u (Hashtbl.find weight u + 1))
          (Ugraph.neighbors g v);
        go (v :: acc) (remaining - 1)
    end
  in
  go [] (List.length vs)

let is_chordal g = is_peo g (List.rev (mcs_order g))

let peo_with_preference g ~prefer =
  let compare_pref u v =
    let c = prefer u v in
    if c <> 0 then c else compare u v
  in
  let rec go g acc =
    if Ugraph.num_vertices g = 0 then List.rev acc
    else
      let simplicial = List.filter (Ugraph.is_simplicial g) (Ugraph.vertices g) in
      match List.sort compare_pref simplicial with
      | [] -> failwith "Chordal.peo_with_preference: graph is not chordal"
      | v :: _ -> go (Ugraph.remove_vertex g v) (v :: acc)
  in
  go g []

(* Along a PEO, the candidate maximal cliques are {v} + later neighbors of
   v. A candidate is maximal unless it is contained in the candidate of an
   earlier vertex (standard chordal clique enumeration). *)
let maximal_cliques g =
  let peo = List.rev (mcs_order g) in
  if not (is_peo g peo) then failwith "Chordal.maximal_cliques: graph is not chordal";
  let position = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace position v i) peo;
  let later_clique v =
    let pv = Hashtbl.find position v in
    let later =
      Iset.filter (fun u -> Hashtbl.find position u > pv) (Ugraph.neighbors g v)
    in
    Iset.add v later
  in
  let candidates = List.map later_clique peo in
  List.filter
    (fun c ->
      not (List.exists (fun c' -> (not (Iset.equal c c')) && Iset.subset c c') candidates))
    candidates
  |> List.sort_uniq (fun a b -> compare (Iset.elements a) (Iset.elements b))

let max_clique_size_per_vertex g =
  let cliques = maximal_cliques g in
  List.map
    (fun v ->
      let best =
        List.fold_left
          (fun acc c -> if Iset.mem v c then max acc (Iset.cardinal c) else acc)
          1 cliques
      in
      (v, if Ugraph.mem_vertex g v then best else 0))
    (Ugraph.vertices g)

let clique_number g =
  List.fold_left (fun acc c -> max acc (Iset.cardinal c)) 0 (maximal_cliques g)
