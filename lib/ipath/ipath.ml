module Datapath = Bistpath_datapath.Datapath
module Massign = Bistpath_dfg.Massign

type side = L | R

let pp_side ppf side =
  Format.pp_print_string ppf (match side with L -> "L" | R -> "R")

let tpg_candidates dp mid side =
  let l, r = Datapath.unit_port_sources dp mid in
  match side with L -> l | R -> r

let sa_candidates dp mid =
  dp.Datapath.reg_writers
  |> List.filter_map (fun (rid, ws) ->
         if List.mem (Datapath.From_unit mid) ws then Some rid else None)
  |> List.sort compare

(* One-hop transparent sources: R -> U (transparent through some port,
   other port holdable) -> R' -> target port. *)
let tpg_candidates_transparent dp mid side =
  let simple = tpg_candidates dp mid side in
  let channels =
    dp.Datapath.massign.Massign.units
    |> List.filter (fun (u : Massign.hw) -> not (String.equal u.mid mid))
    |> List.filter (fun (u : Massign.hw) ->
           Massign.temporal_multiplicity dp.Datapath.massign dp.Datapath.dfg u.mid > 0)
  in
  let found = Hashtbl.create 8 in
  List.iter
    (fun (u : Massign.hw) ->
      let l_sources, r_sources = Datapath.unit_port_sources dp u.mid in
      let receivers = sa_candidates dp u.mid in
      let reaches_target = List.exists (fun r2 -> List.mem r2 simple) receivers in
      if reaches_target then
        List.iter
          (fun (through, through_sources, hold_sources) ->
            if Transparency.unit_passes u through && hold_sources <> [] then
              List.iter
                (fun reg ->
                  if (not (List.mem reg simple)) && not (Hashtbl.mem found reg) then
                    Hashtbl.replace found reg u.mid)
                through_sources)
          [ (`Left, l_sources, r_sources); (`Right, r_sources, l_sources) ])
    channels;
  Hashtbl.fold (fun reg via acc -> (reg, via) :: acc) found []
  |> List.sort compare

type embedding = {
  mid : string;
  l_tpg : string;
  r_tpg : string;
  sa : string;
  l_via : string option;
  r_via : string option;
}

let requires_cbilbo e = String.equal e.sa e.l_tpg || String.equal e.sa e.r_tpg

let embeddings ?(transparency = false) dp mid =
  let side_options side =
    let simple = List.map (fun r -> (r, None)) (tpg_candidates dp mid side) in
    if transparency then
      simple
      @ List.map (fun (r, via) -> (r, Some via)) (tpg_candidates_transparent dp mid side)
    else simple
  in
  let ls = side_options L in
  let rs = side_options R in
  let sas = sa_candidates dp mid in
  List.concat_map
    (fun (l, l_via) ->
      List.concat_map
        (fun (r, r_via) ->
          if String.equal l r then []
          else List.map (fun sa -> { mid; l_tpg = l; r_tpg = r; sa; l_via; r_via }) sas)
        rs)
    ls

let cbilbo_unavoidable ?(transparency = false) dp mid =
  match embeddings ~transparency dp mid with
  | [] -> false
  | es -> List.for_all requires_cbilbo es

let forced_cbilbo_registers dp mid =
  match embeddings dp mid with
  | [] -> []
  | es ->
    if List.exists (fun e -> not (requires_cbilbo e)) es then []
    else
      (* Every embedding needs a CBILBO; report registers playing the
         double role in all of them (there may be several options per
         embedding; a register is "forced" if it takes the double role
         in every embedding). *)
      let double_roles e =
        List.filter
          (fun r -> String.equal r e.sa)
          [ e.l_tpg; e.r_tpg ]
        |> List.sort_uniq compare
      in
      let sets = List.map double_roles es in
      let universe = List.sort_uniq compare (List.concat sets) in
      List.filter (fun r -> List.for_all (List.mem r) sets) universe

let simple_ipaths dp =
  let unit_paths =
    List.concat_map
      (fun (u : Massign.hw) ->
        let l, r = Datapath.unit_port_sources dp u.mid in
        List.map (fun reg -> Printf.sprintf "%s -> %s.L" reg u.mid) l
        @ List.map (fun reg -> Printf.sprintf "%s -> %s.R" reg u.mid) r
        @ List.map (fun reg -> Printf.sprintf "%s -> %s" u.mid reg) (sa_candidates dp u.mid))
      dp.Datapath.massign.Massign.units
  in
  List.sort compare unit_paths
