(** I-paths (Abadir & Breuer) and BIST embeddings on a data path.

    A simple I-path runs from a register through (possibly) a multiplexer
    to a unit input port, or from a unit output port to a register — data
    transferred unaltered, activatable by control in test mode. In our
    netlist model a register R has a simple I-path to port P iff R is
    among P's sources, and a unit U has a simple I-path to register R iff
    U is among R's writers.

    With {e transparency} enabled, longer I-paths are also considered: R
    can reach a port P through a transparent unit U (R -> U -> R' -> P,
    with U's other port held at the identity element and R' acting as a
    pipeline register), enlarging the set of potential pattern
    generators at no extra register-modification cost. *)

type side = L | R

val pp_side : Format.formatter -> side -> unit

val tpg_candidates : Bistpath_datapath.Datapath.t -> string -> side -> string list
(** Registers with a simple I-path to the given port of the unit. *)

val tpg_candidates_transparent :
  Bistpath_datapath.Datapath.t -> string -> side -> (string * string) list
(** Additional pattern sources reaching the port through one transparent
    unit: [(register, via-unit)] pairs, excluding registers that already
    have a simple I-path, the unit under test itself as channel, and
    channels whose hold port has no source. Sorted, first channel per
    register. *)

val sa_candidates : Bistpath_datapath.Datapath.t -> string -> string list
(** Registers with a simple I-path from the unit's output. *)

type embedding = {
  mid : string;
  l_tpg : string;
  r_tpg : string;  (** distinct from [l_tpg]: the two ports need
                        independent pattern sources *)
  sa : string;
  l_via : string option;  (** transparent unit channelling the left patterns *)
  r_via : string option;
}

val requires_cbilbo : embedding -> bool
(** The SA register is also one of the TPGs: it must generate and compact
    concurrently for this module, i.e. be a CBILBO. *)

val embeddings :
  ?transparency:bool -> Bistpath_datapath.Datapath.t -> string -> embedding list
(** All BIST embeddings of the unit, deterministic order; with
    [~transparency:true] (default false) the TPG candidates include
    one-hop transparent paths. Empty iff the unit cannot be tested with
    register-based BIST on this data path. *)

val cbilbo_unavoidable :
  ?transparency:bool -> Bistpath_datapath.Datapath.t -> string -> bool
(** Every embedding of the unit makes some register TPG-and-SA at once —
    the situation the paper's Lemma 2 characterizes at the register-
    assignment level. False when some embedding needs no CBILBO, or when
    there are no embeddings at all. *)

val forced_cbilbo_registers : Bistpath_datapath.Datapath.t -> string -> string list
(** Registers playing the double role in {e every} simple-I-path
    embedding of the unit: Lemma 2's case (i). Empty in case-(ii)
    situations (where either register of a pair can take the CBILBO, see
    {!cbilbo_unavoidable}) and when some embedding avoids CBILBOs
    entirely. *)

val simple_ipaths : Bistpath_datapath.Datapath.t -> string list
(** Human-readable list of every simple I-path in the data path, e.g.
    "R1 -> M2.L" and "M1 -> R2"; regenerates the paper's Fig. 1/3 views. *)
