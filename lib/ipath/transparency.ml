module Op = Bistpath_dfg.Op
module Massign = Bistpath_dfg.Massign

type mode = {
  through_left : bool;
  through_right : bool;
  hold_value : int -> int;
}

let all_ones width = (1 lsl width) - 1

let of_kind = function
  | Op.Add | Op.Or | Op.Xor ->
    Some { through_left = true; through_right = true; hold_value = (fun _ -> 0) }
  | Op.And ->
    Some { through_left = true; through_right = true; hold_value = all_ones }
  | Op.Mul ->
    Some { through_left = true; through_right = true; hold_value = (fun _ -> 1) }
  | Op.Sub ->
    Some { through_left = true; through_right = false; hold_value = (fun _ -> 0) }
  | Op.Div ->
    Some { through_left = true; through_right = false; hold_value = (fun _ -> 1) }
  | Op.Less -> None

let unit_passes (u : Massign.hw) side =
  List.exists
    (fun kind ->
      match of_kind kind with
      | None -> false
      | Some m -> (
        match side with `Left -> m.through_left | `Right -> m.through_right))
    u.Massign.kinds
