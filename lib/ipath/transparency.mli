(** Module transparency (Abadir & Breuer's I-path "identity mode"): a
    binary unit passes one operand unaltered when the other port is held
    at the operation's identity element, turning the unit into a link of
    a longer I-path. *)

type mode = {
  through_left : bool;  (** the left operand passes when the right holds *)
  through_right : bool;  (** symmetric *)
  hold_value : int -> int;  (** identity element for a given bit width *)
}

val of_kind : Bistpath_dfg.Op.kind -> mode option
(** Add/Or/Xor pass either side against 0; And against all-ones; Mul
    passes either side against 1; Sub and Div pass only their left
    operand (against 0 resp. 1); Less has no identity (1-bit result). *)

val unit_passes :
  Bistpath_dfg.Massign.hw -> [ `Left | `Right ] -> bool
(** Can the unit pass data arriving on the given port unaltered in some
    mode of some supported kind? (An ALU passes if any of its kinds
    does.) *)
