(** Signature-based fault diagnosis.

    BIST compacts all responses into one signature, so a failing
    signature identifies not a fault but an {e equivalence class} of
    faults. The dictionary maps every collapsed fault to its faulty
    signature under a fixed pattern sequence; diagnosis looks failing
    silicon's observed signature up and returns the candidate faults.
    Diagnostic resolution measures how well the signature separates the
    fault population. *)

type t

val build :
  ?misr_width:int -> Circuit.t -> width:int -> patterns:(int * int) list -> t
(** Simulate every collapsed fault of a two-operand module against the
    operand patterns, compacting each run into a MISR signature
    ([misr_width] defaults to [width]). *)

val golden : t -> int
(** Fault-free signature. *)

val candidates : t -> int -> Fault.t list
(** Faults whose faulty signature equals the observed one. The golden
    signature's class holds the faults the pattern set does not detect,
    plus any detected fault whose response sequence aliases to the
    fault-free signature (probability about 2^-misr_width each). *)

val distinct_signatures : t -> int

val resolution : t -> float
(** Fraction of {e detected} faults whose signature is unique — the
    probability a failing signature pins down the exact fault. *)

val pp : Format.formatter -> t -> unit
