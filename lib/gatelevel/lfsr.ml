type t = { w : int; taps : int list; mutable s : int }

(* Primitive polynomial exponents over GF(2), one per width (from the
   standard tables, e.g. Xilinx XAPP052 / Press et al.): the feedback is
   the XOR of the listed bit positions. *)
let primitive_taps = function
  | 2 -> [ 2; 1 ]
  | 3 -> [ 3; 2 ]
  | 4 -> [ 4; 3 ]
  | 5 -> [ 5; 3 ]
  | 6 -> [ 6; 5 ]
  | 7 -> [ 7; 6 ]
  | 8 -> [ 8; 6; 5; 4 ]
  | 9 -> [ 9; 5 ]
  | 10 -> [ 10; 7 ]
  | 11 -> [ 11; 9 ]
  | 12 -> [ 12; 11; 10; 4 ]
  | 13 -> [ 13; 12; 11; 8 ]
  | 14 -> [ 14; 13; 12; 2 ]
  | 15 -> [ 15; 14 ]
  | 16 -> [ 16; 15; 13; 4 ]
  | 17 -> [ 17; 14 ]
  | 18 -> [ 18; 11 ]
  | 19 -> [ 19; 18; 17; 14 ]
  | 20 -> [ 20; 17 ]
  | 21 -> [ 21; 19 ]
  | 22 -> [ 22; 21 ]
  | 23 -> [ 23; 18 ]
  | 24 -> [ 24; 23; 22; 17 ]
  | 25 -> [ 25; 22 ]
  | 26 -> [ 26; 6; 2; 1 ]
  | 27 -> [ 27; 5; 2; 1 ]
  | 28 -> [ 28; 25 ]
  | 29 -> [ 29; 27 ]
  | 30 -> [ 30; 6; 4; 1 ]
  | 31 -> [ 31; 28 ]
  | 32 -> [ 32; 22; 2; 1 ]
  | w -> invalid_arg (Printf.sprintf "Lfsr.primitive_taps: unsupported width %d" w)

let create ~width ~seed =
  let taps = primitive_taps width in
  let mask = (1 lsl width) - 1 in
  let s = seed land mask in
  if s = 0 then invalid_arg "Lfsr.create: seed must be non-zero";
  { w = width; taps; s }

let width t = t.w

let state t = t.s

let step t =
  let fb =
    List.fold_left (fun acc tap -> acc lxor ((t.s lsr (tap - 1)) land 1)) 0 t.taps
  in
  t.s <- ((t.s lsl 1) lor fb) land ((1 lsl t.w) - 1);
  t.s

let patterns t n = List.init n (fun _ -> step t)

let period ~width = (1 lsl width) - 1
