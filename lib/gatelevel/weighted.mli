(** Weighted-random test patterns.

    Uniform pseudo-random patterns struggle with faults that need many
    specific input values at once (the comparator's equality chain, the
    divider's deep borrow logic). The classical remedy keeps the LFSR
    but biases each input bit; here the weights are extracted from the
    PODEM deterministic test set — the fraction of ones each input takes
    across the vectors that provably detect every testable fault. *)

val input_weights : Circuit.t -> float array
(** One weight in [0,1] per primary input (probability of driving 1),
    from the PODEM test set; inputs the test set never constrains get
    0.5. *)

val patterns :
  Bistpath_util.Prng.t -> weights:float array -> count:int -> int list list
(** Bernoulli-sampled bit vectors, one bit per input. *)

type comparison = {
  testable : int;  (** faults PODEM can test at all *)
  uniform_detected : int;
  weighted_detected : int;
}

val compare_coverage :
  ?seed:int -> Circuit.t -> count:int -> comparison
(** Detected counts for [count] uniform vs [count] weighted patterns
    over the collapsed fault list, against the PODEM-testable total. *)
