(** Full BIST self-test simulation: the experiment the paper's
    methodology promises but never measures (DESIGN.md §3).

    For every functional unit of a data path, drive its two input ports
    from the LFSR models of the TPG registers chosen by the BIST
    allocation, run the unit's gate-level implementation, compact the
    responses in the SA register's MISR model, and fault-simulate the
    unit against the same pattern sequence. *)

type unit_report = {
  mid : string;
  patterns : int;
  faults_total : int;
  faults_detected : int;
  coverage : float;  (** in [0,1] *)
  signature : int;  (** fault-free MISR signature *)
  aliased : int;
      (** detected-at-outputs faults whose faulty signature nevertheless
          equals the fault-free one (escaped by aliasing) *)
  skipped : int;
      (** faults not graded before the budget's token tripped; 0 for
          unbudgeted runs (skipped faults count against [coverage]) *)
}

type report = {
  width : int;
  pattern_count : int;
  units : unit_report list;
}

val run :
  ?width:int ->
  ?pattern_count:int ->
  ?seed:int ->
  ?pool:Bistpath_parallel.Pool.t ->
  ?budget:Bistpath_resilience.Budget.t ->
  Bistpath_datapath.Datapath.t ->
  Bistpath_bist.Allocator.solution ->
  report
(** Defaults: width 8, 255 patterns (one full LFSR period at width 8),
    seed 1. Uses collapsed fault lists. Units reported untestable by the
    allocation are skipped. Multifunction ALUs are simulated per
    supported kind with the select line held; their coverage aggregates
    over kinds. Fault grading fans out over the [Bistpath_parallel]
    pool (the shared pool unless [?pool] is given) with results
    identical to the sequential run at any pool width. Under a
    [budget] ({!Bistpath_resilience.Budget}), faults not graded before
    the token tripped are counted per unit in [skipped]. *)

val overall_coverage : report -> float
(** Fault-weighted mean coverage across units. *)

val pp : Format.formatter -> report -> unit
