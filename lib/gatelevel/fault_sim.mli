(** Fault simulation with 64-way bit-parallel patterns and optional
    multi-domain fan-out over the fault list.

    For each fault, the circuit is re-evaluated with the faulty net
    forced; a fault is detected by a pattern whose fault-free and faulty
    primary outputs differ. Faults are independent, so they are graded
    on the [Bistpath_parallel] pool (the shared pool unless [?pool] is
    given); results are assembled in fault order, so the outcome is
    bit-identical to the sequential run at any pool width. *)

type result = {
  total : int;
  detected : int;
  undetected : Fault.t list;
  skipped : Fault.t list;
      (** faults not graded before the budget's token tripped; empty for
          unbudgeted runs *)
}

val coverage : result -> float
(** detected / total in [0, 1]; 1.0 for an empty fault list. Skipped
    faults count against coverage (conservative). *)

val run :
  ?pool:Bistpath_parallel.Pool.t ->
  ?budget:Bistpath_resilience.Budget.t ->
  Circuit.t -> faults:Fault.t list -> patterns:int list list -> result
(** [patterns] is a list of input vectors, each one bit per primary input
    net (little-endian ints are NOT assumed — each element of a vector
    is 0 or 1). Patterns are packed 64 per simulation pass.

    [budget] (default {!Bistpath_resilience.Budget.unlimited}): once its
    token trips, remaining faults are abandoned cooperatively and listed
    in [skipped] — the grades already computed are still returned. *)

val run_operand_patterns :
  ?pool:Bistpath_parallel.Pool.t ->
  ?budget:Bistpath_resilience.Budget.t ->
  Circuit.t -> width:int -> faults:Fault.t list -> patterns:(int * int) list -> result
(** Convenience for two-operand modules: each pattern is an (a, b) pair
    of [width]-bit operand values. Raises [Invalid_argument] if the
    circuit has other than 2*width inputs (drive ALU select lines
    yourself via {!run}). *)

val random_operand_patterns :
  Bistpath_util.Prng.t -> width:int -> count:int -> (int * int) list
(** Uniform random operand pairs, for baseline comparisons. *)
