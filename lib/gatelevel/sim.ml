let eval_nets c input_words =
  if Array.length input_words <> List.length c.Circuit.inputs then
    invalid_arg "Sim.eval_nets: input arity mismatch";
  let nets = Array.make c.Circuit.num_nets 0L in
  List.iteri (fun i n -> nets.(n) <- input_words.(i)) c.Circuit.inputs;
  Array.iter
    (fun (g : Circuit.gate) ->
      nets.(g.output) <- Circuit.eval_kind g.kind (List.map (fun n -> nets.(n)) g.inputs))
    c.Circuit.gates;
  nets

let eval c input_words =
  let nets = eval_nets c input_words in
  Array.of_list (List.map (fun n -> nets.(n)) c.Circuit.outputs)

let eval_ints c bits =
  let words =
    Array.of_list (List.map (fun bit -> if bit <> 0 then -1L else 0L) bits)
  in
  let outs = eval c words in
  Array.to_list (Array.map (fun w -> if Int64.logand w 1L = 1L then 1 else 0) outs)

let eval_words c ~width operands =
  let bits_of v = List.init width (fun i -> (v lsr i) land 1) in
  let in_bits = List.concat_map bits_of operands in
  if List.length in_bits <> List.length c.Circuit.inputs then
    invalid_arg "Sim.eval_words: operand count does not match circuit inputs";
  let out_bits = eval_ints c in_bits in
  let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t in
  let rec group = function
    | [] -> []
    | bits ->
      let chunk = Bistpath_util.Listx.take width bits in
      let value =
        snd (List.fold_left (fun (i, acc) b -> (i + 1, acc lor (b lsl i))) (0, 0) chunk)
      in
      value :: group (drop (List.length chunk) bits)
  in
  group out_bits
