type polarity = Stuck_at_0 | Stuck_at_1

type t = { net : int; polarity : polarity }

let pp ppf f =
  Format.fprintf ppf "net%d/%s" f.net
    (match f.polarity with Stuck_at_0 -> "0" | Stuck_at_1 -> "1")

let all c =
  List.concat_map
    (fun net -> [ { net; polarity = Stuck_at_0 }; { net; polarity = Stuck_at_1 } ])
    (List.init c.Circuit.num_nets Fun.id)

(* Keep, per gate: the output faults, plus input faults only at
   non-controlled polarities. For AND/NAND an input s-a-0 is equivalent
   to output s-a-0/1 (drop the input fault); for OR/NOR input s-a-1
   likewise; for NOT/BUF drop both output faults (equivalent to input
   faults); XOR-family keeps everything. Primary inputs always keep
   both polarities. *)
let collapsed c =
  let drop = Hashtbl.create 64 in
  Array.iter
    (fun (g : Circuit.gate) ->
      match g.kind with
      | Circuit.And | Circuit.Nand ->
        List.iter (fun i -> Hashtbl.replace drop (i, Stuck_at_0) ()) g.inputs
      | Circuit.Or | Circuit.Nor ->
        List.iter (fun i -> Hashtbl.replace drop (i, Stuck_at_1) ()) g.inputs
      | Circuit.Not | Circuit.Buf ->
        Hashtbl.replace drop (g.output, Stuck_at_0) ();
        Hashtbl.replace drop (g.output, Stuck_at_1) ()
      | Circuit.Xor | Circuit.Xnor -> ())
    c.Circuit.gates;
  (* Never drop faults on primary inputs or outputs: they are the
     observation/controllability anchors. *)
  List.iter
    (fun n ->
      Hashtbl.remove drop (n, Stuck_at_0);
      Hashtbl.remove drop (n, Stuck_at_1))
    (c.Circuit.inputs @ c.Circuit.outputs);
  (* A stuck-at-v fault on a net that is constant v is untestable by
     construction (the builder's constant nets); exclude it. Constants
     are found by propagation from input-independent gates. *)
  let const = Hashtbl.create 16 in
  Array.iter
    (fun (g : Circuit.gate) ->
      let value n = Hashtbl.find_opt const n in
      let v =
        match (g.kind, g.inputs) with
        | Circuit.Xor, [ x; y ] when x = y -> Some false
        | Circuit.Xnor, [ x; y ] when x = y -> Some true
        | Circuit.Not, [ x ] -> Option.map not (value x)
        | Circuit.Buf, [ x ] -> value x
        | Circuit.And, ins when List.exists (fun i -> value i = Some false) ins -> Some false
        | Circuit.Or, ins when List.exists (fun i -> value i = Some true) ins -> Some true
        | Circuit.Nand, ins when List.exists (fun i -> value i = Some false) ins -> Some true
        | Circuit.Nor, ins when List.exists (fun i -> value i = Some true) ins -> Some false
        | (Circuit.And | Circuit.Or | Circuit.Nand | Circuit.Nor | Circuit.Xor
          | Circuit.Xnor | Circuit.Not | Circuit.Buf), _ ->
          None
      in
      match v with Some v -> Hashtbl.replace const g.output v | None -> ())
    c.Circuit.gates;
  let untestable f =
    match (Hashtbl.find_opt const f.net, f.polarity) with
    | Some false, Stuck_at_0 | Some true, Stuck_at_1 -> true
    | Some _, _ | None, _ -> false
  in
  List.filter
    (fun f -> (not (Hashtbl.mem drop (f.net, f.polarity))) && not (untestable f))
    (all c)

let inject c f input_words =
  if Array.length input_words <> List.length c.Circuit.inputs then
    invalid_arg "Fault.inject: input arity mismatch";
  let nets = Array.make c.Circuit.num_nets 0L in
  let force () =
    nets.(f.net) <- (match f.polarity with Stuck_at_0 -> 0L | Stuck_at_1 -> -1L)
  in
  List.iteri (fun i n -> nets.(n) <- input_words.(i)) c.Circuit.inputs;
  force ();
  Array.iter
    (fun (g : Circuit.gate) ->
      nets.(g.output) <- Circuit.eval_kind g.kind (List.map (fun n -> nets.(n)) g.inputs);
      if g.output = f.net then force ())
    c.Circuit.gates;
  nets
