type t = { w : int; taps : int list; mutable s : int }

let create ~width = { w = width; taps = Lfsr.primitive_taps width; s = 0 }

let absorb t word =
  let fb =
    List.fold_left (fun acc tap -> acc lxor ((t.s lsr (tap - 1)) land 1)) 0 t.taps
  in
  let mask = (1 lsl t.w) - 1 in
  t.s <- (((t.s lsl 1) lor fb) lxor word) land mask

let signature t = t.s

let run ~width words =
  let t = create ~width in
  List.iter (absorb t) words;
  signature t

let aliasing_probability ~width = 1.0 /. float_of_int (1 lsl width)
