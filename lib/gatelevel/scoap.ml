type t = {
  cc0 : int array;
  cc1 : int array;
  co : int array;
}

let unreachable = max_int / 2

let cap x = min x unreachable

(* Pairwise XOR controllability, folded for wider gates. *)
let xor_cc (a0, a1) (b0, b1) =
  (cap (min (a0 + b0) (a1 + b1) + 1), cap (min (a0 + b1) (a1 + b0) + 1))

let analyze (c : Circuit.t) =
  let n = c.Circuit.num_nets in
  let cc0 = Array.make n unreachable and cc1 = Array.make n unreachable in
  List.iter
    (fun i ->
      cc0.(i) <- 1;
      cc1.(i) <- 1)
    c.Circuit.inputs;
  Array.iter
    (fun (g : Circuit.gate) ->
      let ins = g.Circuit.inputs in
      let sum f = cap (Bistpath_util.Listx.sum_by f ins + 1) in
      let mn f = cap (List.fold_left (fun acc i -> min acc (f i)) unreachable ins + 1) in
      let v0, v1 =
        match g.Circuit.kind with
        | Circuit.And -> (mn (fun i -> cc0.(i)), sum (fun i -> cc1.(i)))
        | Circuit.Nand -> (sum (fun i -> cc1.(i)), mn (fun i -> cc0.(i)))
        | Circuit.Or -> (sum (fun i -> cc0.(i)), mn (fun i -> cc1.(i)))
        | Circuit.Nor -> (mn (fun i -> cc1.(i)), sum (fun i -> cc0.(i)))
        | Circuit.Not ->
          let i = List.hd ins in
          (cap (cc1.(i) + 1), cap (cc0.(i) + 1))
        | Circuit.Buf ->
          let i = List.hd ins in
          (cap (cc0.(i) + 1), cap (cc1.(i) + 1))
        | Circuit.Xor | Circuit.Xnor ->
          let pairs = List.map (fun i -> (cc0.(i), cc1.(i))) ins in
          let folded =
            match pairs with
            | p :: rest -> List.fold_left (fun acc q -> xor_cc acc q) p rest
            | [] -> assert false
          in
          let f0, f1 = folded in
          if g.Circuit.kind = Circuit.Xor then (f0, f1) else (f1, f0)
      in
      cc0.(g.Circuit.output) <- v0;
      cc1.(g.Circuit.output) <- v1)
    c.Circuit.gates;
  let co = Array.make n unreachable in
  List.iter (fun o -> co.(o) <- 0) c.Circuit.outputs;
  (* Backward pass in reverse topological (reverse creation) order;
     fanout branches take the minimum. *)
  let gates = Array.to_list c.Circuit.gates |> List.rev in
  List.iter
    (fun (g : Circuit.gate) ->
      let out_co = co.(g.Circuit.output) in
      if out_co < unreachable then
        List.iter
          (fun i ->
            let side_cost =
              match g.Circuit.kind with
              | Circuit.And | Circuit.Nand ->
                Bistpath_util.Listx.sum_by
                  (fun j -> if j = i then 0 else cc1.(j))
                  g.Circuit.inputs
              | Circuit.Or | Circuit.Nor ->
                Bistpath_util.Listx.sum_by
                  (fun j -> if j = i then 0 else cc0.(j))
                  g.Circuit.inputs
              | Circuit.Not | Circuit.Buf -> 0
              | Circuit.Xor | Circuit.Xnor ->
                Bistpath_util.Listx.sum_by
                  (fun j -> if j = i then 0 else min cc0.(j) cc1.(j))
                  g.Circuit.inputs
            in
            co.(i) <- min co.(i) (cap (out_co + side_cost + 1)))
          g.Circuit.inputs)
    gates;
  { cc0; cc1; co }

let get what arr i =
  if i < 0 || i >= Array.length arr then
    invalid_arg (Printf.sprintf "Scoap.%s: unknown net %d" what i)
  else arr.(i)

let cc0 t i = get "cc0" t.cc0 i
let cc1 t i = get "cc1" t.cc1 i
let co t i = get "co" t.co i

let fault_difficulty t (f : Fault.t) =
  let controll =
    match f.Fault.polarity with
    | Fault.Stuck_at_0 -> cc1 t f.Fault.net (* must drive 1 to expose s-a-0 *)
    | Fault.Stuck_at_1 -> cc0 t f.Fault.net
  in
  cap (controll + co t f.Fault.net)

let hardest_faults t c n =
  Fault.collapsed c
  |> List.map (fun f -> (fault_difficulty t f, f))
  |> List.sort (fun (a, _) (b, _) -> compare b a)
  |> Bistpath_util.Listx.take n
  |> List.map snd

let summary t (c : Circuit.t) =
  let nets = Bistpath_util.Listx.range 0 c.Circuit.num_nets in
  let stats arr =
    (* exclude unreachable entries (dead logic, e.g. the final remainder
       of a restoring divider) from the profile *)
    let values = List.filter (fun v -> v < unreachable) (List.map (fun i -> arr.(i)) nets) in
    let mx = List.fold_left max 0 values in
    let mean =
      float_of_int (Bistpath_util.Listx.sum_by Fun.id values)
      /. float_of_int (max 1 (List.length values))
    in
    (mx, mean)
  in
  let m0, a0 = stats t.cc0 and m1, a1 = stats t.cc1 and mo, ao = stats t.co in
  Printf.sprintf
    "%s: CC0 max %d mean %.1f; CC1 max %d mean %.1f; CO max %d mean %.1f"
    c.Circuit.name m0 a0 m1 a1 mo ao
