module Budget = Bistpath_resilience.Budget

type result =
  | Test of int list
  | Untestable
  | Aborted

type classification = {
  tested : (Fault.t * int list) list;
  untestable : Fault.t list;
  aborted : Fault.t list;
  skipped : Fault.t list;
}

(* Three-valued logic for the good and the faulty machine. *)
type tri = T0 | T1 | TX

let tri_not = function T0 -> T1 | T1 -> T0 | TX -> TX

let tri_and a b =
  match (a, b) with
  | T0, _ | _, T0 -> T0
  | T1, T1 -> T1
  | _ -> TX

let tri_or a b =
  match (a, b) with
  | T1, _ | _, T1 -> T1
  | T0, T0 -> T0
  | _ -> TX

let tri_xor a b =
  match (a, b) with
  | TX, _ | _, TX -> TX
  | x, y -> if x = y then T0 else T1

let eval_tri kind ins =
  let reduce f = function x :: rest -> List.fold_left f x rest | [] -> TX in
  match kind with
  | Circuit.And -> reduce tri_and ins
  | Circuit.Nand -> tri_not (reduce tri_and ins)
  | Circuit.Or -> reduce tri_or ins
  | Circuit.Nor -> tri_not (reduce tri_or ins)
  | Circuit.Xor -> reduce tri_xor ins
  | Circuit.Xnor -> tri_not (reduce tri_xor ins)
  | Circuit.Not -> tri_not (List.hd ins)
  | Circuit.Buf -> List.hd ins

(* Controlling value of a gate kind, if any, and output inversion. *)
let controlling = function
  | Circuit.And -> (Some T0, false)
  | Circuit.Nand -> (Some T0, true)
  | Circuit.Or -> (Some T1, false)
  | Circuit.Nor -> (Some T1, true)
  | Circuit.Not -> (None, true)
  | Circuit.Buf -> (None, false)
  | Circuit.Xor | Circuit.Xnor -> (None, false)

type state = {
  circuit : Circuit.t;
  fault : Fault.t;
  scoap : Scoap.t;
  pi_value : (int, tri) Hashtbl.t;  (* assigned primary inputs *)
  good : tri array;
  faulty : tri array;
  driver : (int, Circuit.gate) Hashtbl.t;  (* net -> driving gate *)
}

let stuck_tri (f : Fault.t) =
  match f.Fault.polarity with Fault.Stuck_at_0 -> T0 | Fault.Stuck_at_1 -> T1

(* Forward simulation of both machines from the current PI assignment. *)
let imply st =
  let value tbl i = match Hashtbl.find_opt tbl i with Some v -> v | None -> TX in
  Array.fill st.good 0 (Array.length st.good) TX;
  Array.fill st.faulty 0 (Array.length st.faulty) TX;
  List.iter
    (fun i ->
      st.good.(i) <- value st.pi_value i;
      st.faulty.(i) <- value st.pi_value i)
    st.circuit.Circuit.inputs;
  if st.fault.Fault.net < Array.length st.faulty then
    if List.mem st.fault.Fault.net st.circuit.Circuit.inputs then
      st.faulty.(st.fault.Fault.net) <- stuck_tri st.fault;
  Array.iter
    (fun (g : Circuit.gate) ->
      let gv = eval_tri g.Circuit.kind (List.map (fun i -> st.good.(i)) g.Circuit.inputs) in
      let fv = eval_tri g.Circuit.kind (List.map (fun i -> st.faulty.(i)) g.Circuit.inputs) in
      st.good.(g.Circuit.output) <- gv;
      st.faulty.(g.Circuit.output) <-
        (if g.Circuit.output = st.fault.Fault.net then stuck_tri st.fault else fv))
    st.circuit.Circuit.gates

let is_d st i =
  st.good.(i) <> TX && st.faulty.(i) <> TX && st.good.(i) <> st.faulty.(i)

let d_at_output st = List.exists (is_d st) st.circuit.Circuit.outputs

let excited st = is_d st st.fault.Fault.net

(* Excitation impossible: the good value at the fault site is already
   definite and equal to the stuck value. *)
let excitation_blocked st =
  let g = st.good.(st.fault.Fault.net) in
  g <> TX && g = stuck_tri st.fault

let d_frontier st =
  Array.to_list st.circuit.Circuit.gates
  |> List.filter (fun (g : Circuit.gate) ->
         st.good.(g.Circuit.output) = TX
         || st.faulty.(g.Circuit.output) = TX)
  |> List.filter (fun (g : Circuit.gate) ->
         (not (is_d st g.Circuit.output))
         && List.exists (fun i -> is_d st i) g.Circuit.inputs)

(* Objective: excite the fault, then propagate through the D-frontier. *)
let objective st =
  if not (excited st) then
    let want = tri_not (stuck_tri st.fault) in
    if st.good.(st.fault.Fault.net) = TX then Some (st.fault.Fault.net, want) else None
  else
    match d_frontier st with
    | [] -> None
    | g :: _ -> (
      let x_inputs =
        List.filter (fun i -> st.good.(i) = TX || st.faulty.(i) = TX) g.Circuit.inputs
      in
      match x_inputs with
      | [] -> None
      | i :: _ ->
        let v =
          match fst (controlling g.Circuit.kind) with
          | Some c -> tri_not c
          | None -> T1 (* XOR-family: any definite value advances *)
        in
        Some (i, v))

(* Backtrace an objective to an unassigned primary input. *)
let backtrace st (net, want) =
  let rec go net want fuel =
    if fuel = 0 then None
    else
      match Hashtbl.find_opt st.driver net with
      | None ->
        (* primary input *)
        if Hashtbl.mem st.pi_value net then None else Some (net, want)
      | Some (g : Circuit.gate) -> (
        let ctrl, inv = controlling g.Circuit.kind in
        let want' = if inv then tri_not want else want in
        let xs = List.filter (fun i -> st.good.(i) = TX) g.Circuit.inputs in
        match xs with
        | [] -> None
        | _ -> (
          match ctrl with
          | Some c when want' = c ->
            (* one controlling input suffices: take the easiest *)
            let cost i = if c = T0 then Scoap.cc0 st.scoap i else Scoap.cc1 st.scoap i in
            let best =
              List.fold_left (fun a i -> if cost i < cost a then i else a) (List.hd xs)
                (List.tl xs)
            in
            go best c (fuel - 1)
          | Some c ->
            (* all inputs must be non-controlling: pick the hardest *)
            let nc = tri_not c in
            let cost i = if nc = T0 then Scoap.cc0 st.scoap i else Scoap.cc1 st.scoap i in
            let best =
              List.fold_left (fun a i -> if cost i > cost a then i else a) (List.hd xs)
                (List.tl xs)
            in
            go best nc (fuel - 1)
          | None -> go (List.hd xs) want' (fuel - 1)))
  in
  go net want (Array.length st.good + 1)

let generate ?(max_backtracks = 10_000) ?(budget = Budget.unlimited) (c : Circuit.t)
    (fault : Fault.t) =
  let driver = Hashtbl.create 64 in
  Array.iter (fun (g : Circuit.gate) -> Hashtbl.replace driver g.Circuit.output g) c.Circuit.gates;
  let st =
    {
      circuit = c;
      fault;
      scoap = Scoap.analyze c;
      pi_value = Hashtbl.create 16;
      good = Array.make c.Circuit.num_nets TX;
      faulty = Array.make c.Circuit.num_nets TX;
      driver;
    }
  in
  let backtracks = ref 0 in
  (* decision stack: (pi, first value, flipped?) *)
  let stack = ref [] in
  let success () =
    Some
      (List.map
         (fun i -> match Hashtbl.find_opt st.pi_value i with Some T1 -> 1 | _ -> 0)
         c.Circuit.inputs)
  in
  let rec search () =
    imply st;
    if d_at_output st then success ()
    else if excitation_blocked st || (excited st && d_frontier st = []) then backtrack ()
    else
      match objective st with
      | None -> backtrack ()
      | Some obj -> (
        match backtrace st obj with
        | None -> backtrack ()
        | Some (pi, v) ->
          Hashtbl.replace st.pi_value pi v;
          stack := (pi, v, false) :: !stack;
          search ())
  and backtrack () =
    incr backtracks;
    Bistpath_telemetry.Telemetry.incr "podem.backtracks";
    Budget.node budget;
    (* A tripped budget aborts exactly like the backtrack quota: the
       fault is reported [Aborted], never misclassified as untestable. *)
    if !backtracks > max_backtracks || Budget.should_stop budget then raise Exit
    else
      match !stack with
      | [] -> None
      | (pi, v, flipped) :: rest ->
        if flipped then begin
          Hashtbl.remove st.pi_value pi;
          stack := rest;
          backtrack ()
        end
        else begin
          let v' = tri_not v in
          Hashtbl.replace st.pi_value pi v';
          stack := (pi, v', true) :: rest;
          search ()
        end
  in
  match search () with
  | Some vector ->
    Bistpath_telemetry.Telemetry.incr "podem.tests";
    Test vector
  | None ->
    Bistpath_telemetry.Telemetry.incr "podem.untestable";
    Untestable
  | exception Exit ->
    Bistpath_telemetry.Telemetry.incr "podem.aborts";
    Aborted

let verify c fault vector =
  if List.length vector <> List.length c.Circuit.inputs then
    invalid_arg "Podem.verify: vector arity mismatch";
  let words = Array.of_list (List.map (fun b -> if b <> 0 then -1L else 0L) vector) in
  let good = Sim.eval c words in
  let faulty = Fault.inject c fault words in
  List.exists2
    (fun o g -> not (Int64.equal faulty.(o) g))
    c.Circuit.outputs (Array.to_list good)

let classify_all ?(max_backtracks = 10_000) ?pool ?(budget = Budget.unlimited) c =
  (* Per-fault test generation is independent (each call builds its own
     implication state), so the fault list fans out across the domain
     pool; folding the per-fault outcomes in fault order reproduces the
     sequential classification exactly. *)
  let faults = Fault.collapsed c in
  let gen f = generate ~max_backtracks ~budget c f in
  let outcomes =
    if Budget.is_unlimited budget then
      List.map Option.some (Bistpath_parallel.Par.map_list ?pool gen faults)
    else Bistpath_parallel.Par.map_list_budget ?pool ~budget gen faults
  in
  List.fold_left2
    (fun acc f outcome ->
      match outcome with
      | Some (Test v) -> { acc with tested = (f, v) :: acc.tested }
      | Some Untestable -> { acc with untestable = f :: acc.untestable }
      | Some Aborted -> { acc with aborted = f :: acc.aborted }
      | None -> { acc with skipped = f :: acc.skipped })
    { tested = []; untestable = []; aborted = []; skipped = [] }
    faults outcomes
