module Datapath = Bistpath_datapath.Datapath
module Massign = Bistpath_dfg.Massign
module Op = Bistpath_dfg.Op
module Ipath = Bistpath_ipath.Ipath
module Allocator = Bistpath_bist.Allocator
module Listx = Bistpath_util.Listx
module Budget = Bistpath_resilience.Budget

type unit_report = {
  mid : string;
  patterns : int;
  faults_total : int;
  faults_detected : int;
  coverage : float;
  signature : int;
  aliased : int;
  skipped : int;
}

type report = {
  width : int;
  pattern_count : int;
  units : unit_report list;
}

(* Deterministic non-zero LFSR seed from a register name. *)
let seed_of_register ~salt ~seed rid =
  let h = Hashtbl.hash (rid, salt, seed) in
  match h land 0xFFFF with 0 -> 1 | s -> s

let bits_of width v = List.init width (fun i -> (v lsr i) land 1)

(* Fold a vector of output bits into a [width]-bit word for the MISR. *)
let fold_outputs width bits =
  let value =
    snd (List.fold_left (fun (i, acc) b -> (i + 1, acc lor (b lsl i))) (0, 0) bits)
  in
  let mask = (1 lsl width) - 1 in
  (value land mask) lxor (value lsr width)

let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t

let rec chunks n = function
  | [] -> []
  | l -> Listx.take n l :: chunks n (drop (min n (List.length l)) l)

let pack num_inputs chunk =
  let words = Array.make num_inputs 0L in
  List.iteri
    (fun lane bits ->
      List.iteri
        (fun i bit ->
          if bit <> 0 then words.(i) <- Int64.logor words.(i) (Int64.shift_left 1L lane))
        bits)
    chunk;
  words

(* Per-lane decoded output bits of a net evaluation. *)
let lane_outputs c nets lane =
  List.map
    (fun n -> if Int64.logand (Int64.shift_right_logical nets.(n) lane) 1L = 1L then 1 else 0)
    c.Circuit.outputs

let simulate_unit ?pool ?(budget = Budget.unlimited) ~width ~pattern_count ~seed
    (e : Ipath.embedding) (u : Massign.hw) =
  let circuit =
    match u.kinds with
    | [ k ] -> Library.of_kind k ~width
    | kinds -> Library.alu kinds ~width
  in
  let gen_l = Lfsr.create ~width ~seed:(seed_of_register ~salt:0 ~seed e.l_tpg) in
  let gen_r = Lfsr.create ~width ~seed:(seed_of_register ~salt:1 ~seed e.r_tpg) in
  let operand_pairs =
    List.init pattern_count (fun _ -> (Lfsr.step gen_l, Lfsr.step gen_r))
  in
  let vectors =
    match u.kinds with
    | [ _ ] -> List.map (fun (a, b) -> bits_of width a @ bits_of width b) operand_pairs
    | kinds ->
      List.concat_map
        (fun ki ->
          let select =
            List.init (List.length kinds) (fun j -> if j = ki then 1 else 0)
          in
          List.map
            (fun (a, b) -> bits_of width a @ bits_of width b @ select)
            operand_pairs)
        (Listx.range 0 (List.length kinds))
  in
  Bistpath_telemetry.Telemetry.incr "bist_sim.patterns" ~by:(List.length vectors);
  let num_inputs = List.length circuit.Circuit.inputs in
  let packed = List.map (pack num_inputs) (chunks 64 vectors) in
  let chunk_sizes = List.map List.length (chunks 64 vectors) in
  let golden_nets = List.map (Sim.eval_nets circuit) packed in
  let golden_signature =
    let misr = Misr.create ~width in
    List.iter2
      (fun nets size ->
        for lane = 0 to size - 1 do
          Misr.absorb misr (fold_outputs width (lane_outputs circuit nets lane))
        done)
      golden_nets chunk_sizes;
    Misr.signature misr
  in
  let faults = Fault.collapsed circuit in
  Bistpath_telemetry.Telemetry.incr "bist_sim.faults" ~by:(List.length faults);
  (* Each fault carries its own MISR, so grading fans out over the
     domain pool; the (detected, aliased) flags fold back in fault
     order, keeping counts identical to the sequential loop. *)
  let packed_golden = List.combine packed golden_nets in
  let grade f =
    let misr = Misr.create ~width in
    let seen_diff = ref false in
    List.iter2
      (fun (words, golden) size ->
        let nets = Fault.inject circuit f words in
        for lane = 0 to size - 1 do
          let out = lane_outputs circuit nets lane in
          if not !seen_diff then
            if out <> lane_outputs circuit golden lane then seen_diff := true;
          Misr.absorb misr (fold_outputs width out)
        done)
      packed_golden chunk_sizes;
    (!seen_diff, !seen_diff && Misr.signature misr = golden_signature)
  in
  let graded =
    if Budget.is_unlimited budget then
      List.map Option.some (Bistpath_parallel.Par.map_list ?pool grade faults)
    else Bistpath_parallel.Par.map_list_budget ?pool ~budget grade faults
  in
  let detected = ref 0 and aliased = ref 0 and skipped = ref 0 in
  List.iter
    (function
      | Some (hit, alias) ->
        if hit then begin
          incr detected;
          if alias then incr aliased
        end
      | None -> incr skipped)
    graded;
  {
    mid = e.mid;
    patterns = List.length vectors;
    faults_total = List.length faults;
    faults_detected = !detected;
    coverage =
      (if faults = [] then 1.0
       else float_of_int !detected /. float_of_int (List.length faults));
    signature = golden_signature;
    aliased = !aliased;
    skipped = !skipped;
  }

let run ?(width = 8) ?(pattern_count = 255) ?(seed = 1) ?pool ?budget dp
    (sol : Allocator.solution) =
  let unit_by_id mid =
    List.find
      (fun (u : Massign.hw) -> String.equal u.mid mid)
      dp.Datapath.massign.Massign.units
  in
  let units =
    List.map
      (fun (e : Ipath.embedding) ->
        simulate_unit ?pool ?budget ~width ~pattern_count ~seed e (unit_by_id e.mid))
      sol.Allocator.embeddings
  in
  { width; pattern_count; units }

let overall_coverage r =
  let total = Listx.sum_by (fun u -> u.faults_total) r.units in
  let detected = Listx.sum_by (fun u -> u.faults_detected) r.units in
  if total = 0 then 1.0 else float_of_int detected /. float_of_int total

let pp ppf r =
  Format.fprintf ppf "@[<v>BIST self-test simulation (width %d, %d patterns per session)@,"
    r.width r.pattern_count;
  List.iter
    (fun u ->
      Format.fprintf ppf
        "  %s: %d/%d stuck-at faults detected (%.1f%%), signature %0*X, %d aliased%s@,"
        u.mid u.faults_detected u.faults_total (100.0 *. u.coverage)
        ((r.width + 3) / 4) u.signature u.aliased
        (if u.skipped > 0 then Printf.sprintf ", %d skipped" u.skipped else ""))
    r.units;
  Format.fprintf ppf "  overall coverage: %.1f%%@]" (100.0 *. overall_coverage r)
