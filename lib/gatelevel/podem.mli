(** PODEM automatic test-pattern generation (Goel 1981).

    Branch-and-bound search over primary-input assignments: repeatedly
    pick an objective (excite the fault, then advance the D-frontier),
    backtrace it to an unassigned input (guided by SCOAP
    controllability), imply, and backtrack on conflicts. Complete: a
    fault reported [Untestable] is provably redundant (no input vector
    detects it), which the tests cross-check against exhaustive fault
    simulation on small circuits. *)

type result =
  | Test of int list
      (** one bit per primary input in port order; don't-cares are 0 *)
  | Untestable  (** proven redundant *)
  | Aborted  (** backtrack budget exhausted *)

val generate :
  ?max_backtracks:int ->
  ?budget:Bistpath_resilience.Budget.t ->
  Circuit.t -> Fault.t -> result
(** Default budget 10_000 backtracks. A [budget]
    ({!Bistpath_resilience.Budget}) whose token trips mid-search aborts
    exactly like the backtrack quota — the fault is reported [Aborted],
    never misclassified as [Untestable]; each backtrack also counts one
    budget node. *)

val verify : Circuit.t -> Fault.t -> int list -> bool
(** Does the vector actually detect the fault (differing primary
    outputs)? Used to validate {!generate}'s answers. *)

type classification = {
  tested : (Fault.t * int list) list;  (** fault with a verified vector *)
  untestable : Fault.t list;
  aborted : Fault.t list;
  skipped : Fault.t list;
      (** faults never attempted because the budget's token tripped
          first; empty for unbudgeted runs *)
}

val classify_all :
  ?max_backtracks:int ->
  ?pool:Bistpath_parallel.Pool.t ->
  ?budget:Bistpath_resilience.Budget.t ->
  Circuit.t -> classification
(** Run PODEM on every collapsed fault of the circuit. Faults are
    generated in parallel on the [Bistpath_parallel] pool (the shared
    pool unless [?pool] is given); the classification is assembled in
    fault order and is identical to the sequential run at any pool
    width. Under a [budget], in-flight generations abort ([aborted]) and
    unstarted faults are abandoned ([skipped]) once the token trips. *)
