type kind = And | Or | Nand | Nor | Xor | Xnor | Not | Buf

type gate = { kind : kind; inputs : int list; output : int }

type t = {
  name : string;
  num_nets : int;
  inputs : int list;
  outputs : int list;
  gates : gate array;
}

let num_gates t = Array.length t.gates

let reduce f = function
  | [] -> invalid_arg "Circuit.eval_kind: no inputs"
  | x :: rest -> List.fold_left f x rest

let eval_kind kind ws =
  match (kind, ws) with
  | Not, [ w ] -> Int64.lognot w
  | Buf, [ w ] -> w
  | (Not | Buf), _ -> invalid_arg "Circuit.eval_kind: Not/Buf take exactly one input"
  | (And | Or | Nand | Nor | Xor | Xnor), ([] | [ _ ]) ->
    invalid_arg "Circuit.eval_kind: gate needs at least two inputs"
  | And, ws -> reduce Int64.logand ws
  | Or, ws -> reduce Int64.logor ws
  | Nand, ws -> Int64.lognot (reduce Int64.logand ws)
  | Nor, ws -> Int64.lognot (reduce Int64.logor ws)
  | Xor, ws -> reduce Int64.logxor ws
  | Xnor, ws -> Int64.lognot (reduce Int64.logxor ws)

module Builder = struct
  type b = {
    name : string;
    mutable next : int;
    mutable ins : int list;  (* reversed *)
    mutable outs : int list;  (* reversed *)
    mutable gates : gate list;  (* reversed *)
    mutable zero : int option;
    mutable one : int option;
  }

  let create name = { name; next = 0; ins = []; outs = []; gates = []; zero = None; one = None }

  let fresh b =
    let n = b.next in
    b.next <- n + 1;
    n

  let input b =
    let n = fresh b in
    b.ins <- n :: b.ins;
    n

  let inputs b k = List.init k (fun _ -> input b)

  let exists b n = n >= 0 && n < b.next

  let gate b kind ins =
    List.iter
      (fun n ->
        if not (exists b n) then invalid_arg "Circuit.Builder.gate: undefined input net")
      ins;
    (match (kind, List.length ins) with
    | (Not | Buf), 1 -> ()
    | (Not | Buf), _ -> invalid_arg "Circuit.Builder.gate: Not/Buf arity"
    | _, k when k >= 2 -> ()
    | _ -> invalid_arg "Circuit.Builder.gate: arity");
    let out = fresh b in
    b.gates <- { kind; inputs = ins; output = out } :: b.gates;
    out

  let const0 b =
    match b.zero with
    | Some n -> n
    | None ->
      let base =
        match List.rev b.ins with
        | n :: _ -> n
        | [] -> input b
      in
      let n = gate b Xor [ base; base ] in
      b.zero <- Some n;
      n

  let const1 b =
    match b.one with
    | Some n -> n
    | None ->
      let n = gate b Not [ const0 b ] in
      b.one <- Some n;
      n

  let output b n =
    if not (exists b n) then invalid_arg "Circuit.Builder.output: undefined net";
    b.outs <- n :: b.outs

  let finish b =
    if b.outs = [] then invalid_arg "Circuit.Builder.finish: no outputs";
    {
      name = b.name;
      num_nets = b.next;
      inputs = List.rev b.ins;
      outputs = List.rev b.outs;
      gates = Array.of_list (List.rev b.gates);
    }
end
