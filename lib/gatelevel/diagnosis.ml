module Listx = Bistpath_util.Listx

type t = {
  golden : int;
  by_fault : (Fault.t * int) list;  (** fault -> faulty signature *)
}

let signature_of circuit ~width ~misr_width ~patterns inject =
  let bits_of v = List.init width (fun i -> (v lsr i) land 1) in
  let misr = Misr.create ~width:misr_width in
  List.iter
    (fun (a, b) ->
      let words =
        Array.of_list
          (List.map (fun bit -> if bit <> 0 then -1L else 0L) (bits_of a @ bits_of b))
      in
      let nets =
        match inject with
        | Some f -> Fault.inject circuit f words
        | None -> Sim.eval_nets circuit words
      in
      let out_bits =
        List.map
          (fun n -> if Int64.logand nets.(n) 1L = 1L then 1 else 0)
          circuit.Circuit.outputs
      in
      let value =
        snd (List.fold_left (fun (i, acc) b -> (i + 1, acc lor (b lsl i))) (0, 0) out_bits)
      in
      let mask = (1 lsl misr_width) - 1 in
      Misr.absorb misr ((value land mask) lxor (value lsr misr_width)))
    patterns;
  Misr.signature misr

let build ?misr_width circuit ~width ~patterns =
  if List.length circuit.Circuit.inputs <> 2 * width then
    invalid_arg "Diagnosis.build: circuit is not a two-operand module";
  let misr_width = match misr_width with Some w -> w | None -> width in
  let golden = signature_of circuit ~width ~misr_width ~patterns None in
  let by_fault =
    List.map
      (fun f -> (f, signature_of circuit ~width ~misr_width ~patterns (Some f)))
      (Fault.collapsed circuit)
  in
  { golden; by_fault }

let golden t = t.golden

let candidates t observed =
  List.filter_map (fun (f, s) -> if s = observed then Some f else None) t.by_fault

let distinct_signatures t =
  List.sort_uniq compare (t.golden :: List.map snd t.by_fault) |> List.length

let resolution t =
  let detected = List.filter (fun (_, s) -> s <> t.golden) t.by_fault in
  match detected with
  | [] -> 1.0
  | _ ->
    let unique =
      List.filter
        (fun (_, s) ->
          List.length (List.filter (fun (_, s') -> s' = s) detected) = 1)
        detected
    in
    float_of_int (List.length unique) /. float_of_int (List.length detected)

let pp ppf t =
  let detected = List.length (List.filter (fun (_, s) -> s <> t.golden) t.by_fault) in
  Format.fprintf ppf
    "dictionary: %d faults, %d detected, %d distinct signatures, resolution %.1f%%"
    (List.length t.by_fault) detected (distinct_signatures t)
    (100.0 *. resolution t)
