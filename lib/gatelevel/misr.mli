(** Multiple-input signature register: the response-compaction half of a
    BILBO-style test register. Same primitive feedback as {!Lfsr}, with
    the response word XOR-ed into the state every clock. *)

type t

val create : width:int -> t
(** Starts at the all-zero signature. *)

val absorb : t -> int -> unit
(** Clock once with the given response word. *)

val signature : t -> int

val run : width:int -> int list -> int
(** Signature of a whole response sequence. *)

val aliasing_probability : width:int -> float
(** The classical 2^-width steady-state aliasing estimate. *)
