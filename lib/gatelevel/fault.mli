(** Single stuck-at fault model on circuit nets. *)

type polarity = Stuck_at_0 | Stuck_at_1

type t = { net : int; polarity : polarity }

val pp : Format.formatter -> t -> unit

val all : Circuit.t -> t list
(** Both polarities on every net. *)

val collapsed : Circuit.t -> t list
(** Structural equivalence collapsing: along inverter and buffer chains,
    the input faults dominate the output faults (s-a-v on a BUF input is
    equivalent to s-a-v on its output; through a NOT, polarity flips) —
    keep the representative closest to the primary inputs. On other
    gates, an input s-a-(controlling value) is equivalent to the output
    s-a-(controlled value); the classical rule keeps the output fault
    once per gate and all input faults of the non-controlling kind. The
    result is sound (every collapsed-list detection set equals the full
    list's) and typically 40-60%% of [all]. *)

val inject : Circuit.t -> t -> int64 array -> int64 array
(** Net values under the fault, given fault-free input words: re-evaluate
    with the faulty net forced. *)
