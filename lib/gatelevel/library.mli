(** Gate-level implementations of the datapath operator modules.

    All circuits take two [width]-bit operands (a then b, LSB first in
    each port's net list) and produce a [width]-bit result (plus derived
    flags where noted). These are the real structures the area model of
    [Bistpath_datapath.Area] abstracts, and the fault-simulation targets
    of the BIST coverage experiments. *)

val ripple_adder : width:int -> Circuit.t
(** a + b; outputs width sum bits then carry-out. *)

val subtractor : width:int -> Circuit.t
(** a - b (two's complement); outputs width bits then borrow-out. *)

val array_multiplier : width:int -> Circuit.t
(** a * b mod 2^width (the datapath truncates to register width). *)

val logic_unit : Circuit.kind -> width:int -> Circuit.t
(** Bitwise And/Or/Xor of the two operands. Raises [Invalid_argument]
    for non-bitwise kinds. *)

val comparator_less : width:int -> Circuit.t
(** Unsigned a < b; single output bit. *)

val array_divider : width:int -> Circuit.t
(** Unsigned restoring array divider: a / b; outputs width quotient bits.
    Division by zero yields all-ones (the restoring array's natural
    result with the defined cell behaviour). *)

val alu : Bistpath_dfg.Op.kind list -> width:int -> Circuit.t
(** Multifunction unit: all listed operations computed in parallel, a
    one-hot select (extra inputs appended after the operands, one per
    kind in list order) muxes the result. *)

val of_kind : Bistpath_dfg.Op.kind -> width:int -> Circuit.t
(** The single-function circuit for an operation kind. *)

val behavioural : Bistpath_dfg.Op.kind -> width:int -> int -> int -> int
(** Reference semantics ((a op b) mod 2^width, Less gives 0/1, division
    by zero gives 2^width - 1) used by tests to validate the circuits. *)
