module Op = Bistpath_dfg.Op
module B = Circuit.Builder

let check_width width = if width < 1 then invalid_arg "Library: width must be >= 1"

(* Full adder over nets: returns (sum, carry). *)
let full_adder b x y cin =
  let s1 = B.gate b Circuit.Xor [ x; y ] in
  let sum = B.gate b Circuit.Xor [ s1; cin ] in
  let c1 = B.gate b Circuit.And [ x; y ] in
  let c2 = B.gate b Circuit.And [ s1; cin ] in
  let carry = B.gate b Circuit.Or [ c1; c2 ] in
  (sum, carry)

(* Ripple addition of two equal-length nets lists, LSB first. *)
let ripple b xs ys cin =
  let rec go xs ys carry acc =
    match (xs, ys) with
    | [], [] -> (List.rev acc, carry)
    | x :: xs, y :: ys ->
      let sum, carry = full_adder b x y carry in
      go xs ys carry (sum :: acc)
    | _ -> invalid_arg "Library.ripple: width mismatch"
  in
  go xs ys cin []

(* Ripple addition whose final carry is discarded: the top position gets
   a sum-only cell (two XORs), so no unobservable carry logic is built.
   Used by the truncated multiplier rows. *)
let ripple_truncated b xs ys cin =
  let rec go xs ys carry acc =
    match (xs, ys) with
    | [], [] -> List.rev acc
    | [ x ], [ y ] ->
      let s1 = B.gate b Circuit.Xor [ x; y ] in
      let sum = B.gate b Circuit.Xor [ s1; carry ] in
      List.rev (sum :: acc)
    | x :: xs, y :: ys ->
      let sum, carry = full_adder b x y carry in
      go xs ys carry (sum :: acc)
    | _ -> invalid_arg "Library.ripple_truncated: width mismatch"
  in
  go xs ys cin []

let ripple_adder ~width =
  check_width width;
  let b = B.create (Printf.sprintf "add%d" width) in
  let a = B.inputs b width in
  let bb = B.inputs b width in
  let zero = B.const0 b in
  let sums, carry = ripple b a bb zero in
  List.iter (B.output b) sums;
  B.output b carry;
  B.finish b

(* a - b = a + ~b + 1; borrow = NOT carry-out. *)
let sub_nets b xs ys =
  let nys = List.map (fun y -> B.gate b Circuit.Not [ y ]) ys in
  let one = B.const1 b in
  let sums, carry = ripple b xs nys one in
  let borrow = B.gate b Circuit.Not [ carry ] in
  (sums, borrow)

let subtractor ~width =
  check_width width;
  let b = B.create (Printf.sprintf "sub%d" width) in
  let a = B.inputs b width in
  let bb = B.inputs b width in
  let diff, borrow = sub_nets b a bb in
  List.iter (B.output b) diff;
  B.output b borrow;
  B.finish b

let array_multiplier ~width =
  check_width width;
  let b = B.create (Printf.sprintf "mul%d" width) in
  let a = Array.of_list (B.inputs b width) in
  let bb = Array.of_list (B.inputs b width) in
  let zero = B.const0 b in
  (* Accumulate rows: acc holds the low bits of the running sum; since
     the result is truncated to [width] bits, row i only contributes to
     positions i..width-1. *)
  let acc = Array.make width zero in
  for i = 0 to width - 1 do
    (* Partial product of row i occupies positions i .. width-1 only;
       adding the untouched low positions would create redundant
       (untestable) adder cells fed by constant zeros. *)
    let pp = Array.init (width - i) (fun j -> B.gate b Circuit.And [ a.(j); bb.(i) ]) in
    if i = 0 then Array.blit pp 0 acc 0 width
    else begin
      let high = Array.to_list (Array.sub acc i (width - i)) in
      let sums = ripple_truncated b high (Array.to_list pp) zero in
      List.iteri (fun k s -> acc.(i + k) <- s) sums
    end
  done;
  Array.iter (B.output b) acc;
  B.finish b

let logic_unit kind ~width =
  check_width width;
  let gk =
    match kind with
    | Circuit.And | Circuit.Or | Circuit.Xor -> kind
    | Circuit.Nand | Circuit.Nor | Circuit.Xnor | Circuit.Not | Circuit.Buf ->
      invalid_arg "Library.logic_unit: expected And, Or or Xor"
  in
  let b = B.create "logic" in
  let a = B.inputs b width in
  let bb = B.inputs b width in
  List.iter2 (fun x y -> B.output b (B.gate b gk [ x; y ])) a bb;
  B.finish b

(* Dedicated magnitude comparator chain (lt_i depends on bit i and
   lt_{i-1}); building it from a subtractor would leave the unused
   difference bits' logic untestable. *)
let less_chain b xs ys =
  List.fold_left2
    (fun lt x y ->
      let nx = B.gate b Circuit.Not [ x ] in
      let here = B.gate b Circuit.And [ nx; y ] in
      let eq = B.gate b Circuit.Xnor [ x; y ] in
      let keep = B.gate b Circuit.And [ eq; lt ] in
      B.gate b Circuit.Or [ here; keep ])
    (B.const0 b) xs ys

let comparator_less ~width =
  check_width width;
  let b = B.create (Printf.sprintf "lt%d" width) in
  let a = B.inputs b width in
  let bb = B.inputs b width in
  B.output b (less_chain b a bb);
  B.finish b

let mux2 b sel x y =
  (* sel=0 -> x, sel=1 -> y *)
  let ns = B.gate b Circuit.Not [ sel ] in
  let gx = B.gate b Circuit.And [ ns; x ] in
  let gy = B.gate b Circuit.And [ sel; y ] in
  B.gate b Circuit.Or [ gx; gy ]

let array_divider ~width =
  check_width width;
  let b = B.create (Printf.sprintf "div%d" width) in
  let a = Array.of_list (B.inputs b width) in
  let bb = B.inputs b width in
  let zero = B.const0 b in
  (* Restoring division, one row per quotient bit, MSB first. The
     partial remainder has width+1 bits to absorb the shifted-in bit. *)
  let divisor = bb @ [ zero ] in
  let rem = ref (List.init (width + 1) (fun _ -> zero)) in
  let quotient = Array.make width zero in
  for i = width - 1 downto 0 do
    (* shift left by one, inserting a_i at the bottom; drop the top bit
       (restoring division keeps the remainder < divisor so the dropped
       bit is always zero when the divisor is non-zero). *)
    let shifted =
      a.(i) :: Bistpath_util.Listx.take width !rem
    in
    let trial, borrow = sub_nets b shifted divisor in
    let q = B.gate b Circuit.Not [ borrow ] in
    quotient.(i) <- q;
    (* borrow=0: subtraction succeeded, keep the trial difference;
       borrow=1: restore the shifted remainder. *)
    rem := List.map2 (fun t s -> mux2 b borrow t s) trial shifted
  done;
  Array.iter (B.output b) quotient;
  B.finish b

let of_kind kind ~width =
  match kind with
  | Op.Add -> ripple_adder ~width
  | Op.Sub -> subtractor ~width
  | Op.Mul -> array_multiplier ~width
  | Op.Div -> array_divider ~width
  | Op.And -> logic_unit Circuit.And ~width
  | Op.Or -> logic_unit Circuit.Or ~width
  | Op.Xor -> logic_unit Circuit.Xor ~width
  | Op.Less -> comparator_less ~width

(* The ALU instantiates each sub-unit's logic inline over shared operand
   nets and muxes result bits with a one-hot select. *)
let alu kinds ~width =
  check_width width;
  if kinds = [] then invalid_arg "Library.alu: no kinds";
  let b = B.create "alu" in
  let a = B.inputs b width in
  let bb = B.inputs b width in
  let selects = B.inputs b (List.length kinds) in
  let zero = B.const0 b in
  let result_of kind =
    match kind with
    | Op.Add -> fst (ripple b a bb zero)
    | Op.Sub -> fst (sub_nets b a bb)
    | Op.And -> List.map2 (fun x y -> B.gate b Circuit.And [ x; y ]) a bb
    | Op.Or -> List.map2 (fun x y -> B.gate b Circuit.Or [ x; y ]) a bb
    | Op.Xor -> List.map2 (fun x y -> B.gate b Circuit.Xor [ x; y ]) a bb
    | Op.Less -> less_chain b a bb :: List.init (width - 1) (fun _ -> zero)
    | Op.Mul ->
      (* inline truncated array multiplier (same pruned rows as above) *)
      let aa = Array.of_list a and ba = Array.of_list bb in
      let acc = Array.make width zero in
      for i = 0 to width - 1 do
        let pp =
          Array.init (width - i) (fun j -> B.gate b Circuit.And [ aa.(j); ba.(i) ])
        in
        if i = 0 then Array.blit pp 0 acc 0 width
        else begin
          let high = Array.to_list (Array.sub acc i (width - i)) in
          let sums = ripple_truncated b high (Array.to_list pp) zero in
          List.iteri (fun k s -> acc.(i + k) <- s) sums
        end
      done;
      Array.to_list acc
    | Op.Div ->
      let aa = Array.of_list a in
      let divisor = bb @ [ zero ] in
      let rem = ref (List.init (width + 1) (fun _ -> zero)) in
      let quotient = Array.make width zero in
      for i = width - 1 downto 0 do
        let shifted = aa.(i) :: Bistpath_util.Listx.take width !rem in
        let trial, borrow = sub_nets b shifted divisor in
        quotient.(i) <- B.gate b Circuit.Not [ borrow ];
        rem := List.map2 (fun t s -> mux2 b borrow t s) trial shifted
      done;
      Array.to_list quotient
  in
  let results = List.map result_of kinds in
  let gated =
    List.map2
      (fun sel bits -> List.map (fun bit -> B.gate b Circuit.And [ sel; bit ]) bits)
      selects results
  in
  let combined =
    match gated with
    | [] -> assert false
    | [ only ] -> only
    | first :: rest ->
      List.fold_left (fun acc bits -> List.map2 (fun x y -> B.gate b Circuit.Or [ x; y ]) acc bits) first rest
  in
  List.iter (B.output b) combined;
  B.finish b

let behavioural = Op.eval
