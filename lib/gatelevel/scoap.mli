(** SCOAP combinational testability measures (Goldstein 1979).

    CC0/CC1 estimate how many primary-input assignments are needed to
    set a net to 0/1; CO estimates the effort to propagate a net's value
    to a primary output. Higher = harder. Used to rank hard faults, to
    guide the PODEM backtrace, and as an extension experiment comparing
    module implementations. *)

type t

val analyze : Circuit.t -> t
(** One forward pass for controllability, one backward pass for
    observability (fanout takes the easiest branch). *)

val cc0 : t -> int -> int
(** Controllability-to-0 of a net. Raises [Invalid_argument] on an
    unknown net. *)

val cc1 : t -> int -> int

val co : t -> int -> int
(** Observability; [max_int/2] for a net that cannot reach any output
    (does not occur in well-formed circuits). *)

val fault_difficulty : t -> Fault.t -> int
(** Detection difficulty of a stuck-at fault: controllability of the
    opposite value plus the net's observability. *)

val hardest_faults : t -> Circuit.t -> int -> Fault.t list
(** The [n] collapsed faults with the highest difficulty, hardest
    first. *)

val summary : t -> Circuit.t -> string
(** One-line profile: max/mean CC and CO over all nets. *)
