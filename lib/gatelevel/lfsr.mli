(** Linear-feedback shift registers: the pattern-generator half of a
    BILBO-style test register. Fibonacci (external-XOR) form with
    primitive feedback polynomials, so a non-zero seed cycles through all
    2^width - 1 non-zero states. *)

type t

val primitive_taps : int -> int list
(** Tap positions (1-based exponents of the primitive polynomial, the
    width itself included) for widths 2..32. Raises [Invalid_argument]
    outside that range. *)

val create : width:int -> seed:int -> t
(** Non-zero seed required (an all-zero LFSR is stuck). *)

val width : t -> int

val state : t -> int
(** Current register contents, low [width] bits. *)

val step : t -> int
(** Advance one clock; returns the new state. *)

val patterns : t -> int -> int list
(** The next [n] states (advancing the generator). *)

val period : width:int -> int
(** 2^width - 1. *)
