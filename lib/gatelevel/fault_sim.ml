module Budget = Bistpath_resilience.Budget

type result = {
  total : int;
  detected : int;
  undetected : Fault.t list;
  skipped : Fault.t list;
}

let coverage r = if r.total = 0 then 1.0 else float_of_int r.detected /. float_of_int r.total

(* Pack up to 64 patterns (lists of bits per input) into one word per
   input: pattern j occupies bit lane j. *)
let pack_chunk num_inputs chunk =
  let words = Array.make num_inputs 0L in
  List.iteri
    (fun lane bits ->
      List.iteri
        (fun i bit ->
          if bit <> 0 then words.(i) <- Int64.logor words.(i) (Int64.shift_left 1L lane))
        bits)
    chunk;
  words

let rec chunks n = function
  | [] -> []
  | l ->
    let first = Bistpath_util.Listx.take n l in
    let rec drop k l = if k = 0 then l else match l with [] -> [] | _ :: t -> drop (k - 1) t in
    first :: chunks n (drop (List.length first) l)

let run ?pool ?(budget = Budget.unlimited) c ~faults ~patterns =
  let num_inputs = List.length c.Circuit.inputs in
  List.iter
    (fun p ->
      if List.length p <> num_inputs then
        invalid_arg "Fault_sim.run: pattern arity mismatch")
    patterns;
  Bistpath_telemetry.Telemetry.incr "fault_sim.faults" ~by:(List.length faults);
  Bistpath_telemetry.Telemetry.incr "fault_sim.events"
    ~by:(List.length faults * List.length patterns);
  let packed = List.map (pack_chunk num_inputs) (chunks 64 patterns) in
  let golden =
    List.map
      (fun words ->
        let nets = Sim.eval_nets c words in
        List.map (fun n -> nets.(n)) c.Circuit.outputs)
      packed
  in
  let detected f =
    List.exists2
      (fun words good ->
        let nets = Fault.inject c f words in
        List.exists2
          (fun n g -> not (Int64.equal nets.(n) g))
          c.Circuit.outputs good)
      packed golden
  in
  (* Fan out over the fault list; detection flags come back in fault
     order, so the result is bit-identical at any pool width (and with
     jobs = 1 this is exactly [List.map detected faults]). *)
  let flags =
    if Budget.is_unlimited budget then
      List.map Option.some (Bistpath_parallel.Par.map_list ?pool detected faults)
    else
      (* Budget-aware path: faults not graded before the token tripped
         come back [None] and are reported as [skipped], never silently
         counted as undetected. *)
      Bistpath_parallel.Par.map_list_budget ?pool ~budget detected faults
  in
  let undetected, skipped =
    List.fold_left2
      (fun (und, sk) f hit ->
        match hit with
        | Some true -> (und, sk)
        | Some false -> (f :: und, sk)
        | None -> (und, f :: sk))
      ([], []) faults flags
  in
  let undetected = List.rev undetected and skipped = List.rev skipped in
  {
    total = List.length faults;
    detected = List.length faults - List.length undetected - List.length skipped;
    undetected;
    skipped;
  }

let run_operand_patterns ?pool ?budget c ~width ~faults ~patterns =
  if List.length c.Circuit.inputs <> 2 * width then
    invalid_arg "Fault_sim.run_operand_patterns: circuit is not a two-operand module";
  let bits_of v = List.init width (fun i -> (v lsr i) land 1) in
  let vectors = List.map (fun (a, b) -> bits_of a @ bits_of b) patterns in
  run ?pool ?budget c ~faults ~patterns:vectors

let random_operand_patterns rng ~width ~count =
  let bound = 1 lsl width in
  List.init count (fun _ ->
      (Bistpath_util.Prng.int rng bound, Bistpath_util.Prng.int rng bound))
