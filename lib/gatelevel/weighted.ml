module Prng = Bistpath_util.Prng

let input_weights c =
  let cls = Podem.classify_all c in
  let n = List.length c.Circuit.inputs in
  let ones = Array.make n 0 in
  let total = List.length cls.Podem.tested in
  List.iter
    (fun (_, vector) ->
      List.iteri (fun i b -> if b <> 0 then ones.(i) <- ones.(i) + 1) vector)
    cls.Podem.tested;
  Array.init n (fun i ->
      if total = 0 then 0.5 else float_of_int ones.(i) /. float_of_int total)

let patterns rng ~weights ~count =
  List.init count (fun _ ->
      Array.to_list (Array.map (fun w -> if Prng.float rng 1.0 < w then 1 else 0) weights))

type comparison = {
  testable : int;
  uniform_detected : int;
  weighted_detected : int;
}

let compare_coverage ?(seed = 1) c ~count =
  let faults = Fault.collapsed c in
  let cls = Podem.classify_all c in
  let testable = List.length cls.Podem.tested in
  let n = List.length c.Circuit.inputs in
  let uniform_rng = Prng.create seed in
  let uniform =
    patterns uniform_rng ~weights:(Array.make n 0.5) ~count
  in
  let weighted_rng = Prng.create seed in
  let weighted = patterns weighted_rng ~weights:(input_weights c) ~count in
  let detected ps = (Fault_sim.run c ~faults ~patterns:ps).Fault_sim.detected in
  {
    testable;
    uniform_detected = detected uniform;
    weighted_detected = detected weighted;
  }
