(** Bit-parallel logic simulation: 64 test patterns per pass, one bit
    lane per pattern. *)

val eval : Circuit.t -> int64 array -> int64 array
(** [eval c input_words] evaluates the circuit; [input_words] has one
    word per primary input (in port order), the result one word per
    primary output. Raises [Invalid_argument] on arity mismatch. *)

val eval_nets : Circuit.t -> int64 array -> int64 array
(** Like {!eval} but returns the value of every net (indexed by net id),
    used by the fault simulator. *)

val eval_ints : Circuit.t -> int list -> int list
(** Single-pattern convenience: one integer per input port bit... no —
    one {e bit} per input net, given as 0/1 ints; returns output bits.
    Used by unit tests on small vectors. *)

val eval_words : Circuit.t -> width:int -> int list -> int list
(** Evaluate a circuit whose inputs form consecutive [width]-bit operands
    (LSB first): [eval_words c ~width [a; b]] drives operand values and
    decodes outputs as width-bit little-endian integers; a trailing
    group shorter than [width] (e.g. a carry-out) is decoded from the
    remaining bits. *)
