(** Combinational gate-level netlists.

    Nets are dense integers; gates are stored in topological order (the
    builder only lets a gate read nets that already exist, so creation
    order is evaluation order). Registers are not modelled here — the
    BIST architecture simulation drives module inputs from LFSR models
    and compacts outputs into MISR models at the word level. *)

type kind = And | Or | Nand | Nor | Xor | Xnor | Not | Buf

type gate = { kind : kind; inputs : int list; output : int }

type t = {
  name : string;
  num_nets : int;
  inputs : int list;  (** primary input nets, in port order *)
  outputs : int list;  (** primary output nets, in port order *)
  gates : gate array;  (** topological order *)
}

val num_gates : t -> int

val eval_kind : kind -> int64 list -> int64
(** Bit-parallel gate function over 64 patterns per word. Raises
    [Invalid_argument] on an arity violation (Not/Buf take one input,
    others at least two). *)

(** Builder: allocate nets, emit gates, then {!Builder.finish}. *)
module Builder : sig
  type b

  val create : string -> b

  val input : b -> int
  (** Fresh primary-input net. *)

  val inputs : b -> int -> int list

  val gate : b -> kind -> int list -> int
  (** Emit a gate over existing nets; returns its output net. *)

  val const0 : b -> int
  (** A net tied low (x AND NOT x built over a dedicated input-independent
      spare: implemented as XOR of a net with itself). Cached. *)

  val const1 : b -> int

  val output : b -> int -> unit
  (** Mark an existing net as primary output (in call order). *)

  val finish : b -> t
  (** Raises [Invalid_argument] if no outputs were declared. *)
end
