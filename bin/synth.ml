(* bistpath command-line driver: synthesize benchmark or user DFGs with
   the traditional and BIST-aware flows, reproduce the paper's tables and
   figures, emit RTL/DOT, and run gate-level self-test simulation. *)

module B = Bistpath_benchmarks.Benchmarks
module Flow = Bistpath_core.Flow
module Stage = Bistpath_core.Stage
module Store = Bistpath_cache.Store
module Testable_alloc = Bistpath_core.Testable_alloc
module Policy = Bistpath_dfg.Policy
module Parser = Bistpath_dfg.Parser
module Report = Bistpath_report.Report
module Verilog = Bistpath_rtl.Verilog
module Dot = Bistpath_rtl.Dot
module Bist_sim = Bistpath_gatelevel.Bist_sim
module Podem = Bistpath_gatelevel.Podem
module Library = Bistpath_gatelevel.Library
module Massign = Bistpath_dfg.Massign
module Telemetry = Bistpath_telemetry.Telemetry
module Budget = Bistpath_resilience.Budget
module Cancel = Bistpath_resilience.Cancel
module Diagnostic = Bistpath_resilience.Diagnostic
module Inject = Bistpath_resilience.Inject
module Service = Bistpath_service.Service
module Fleet = Bistpath_service.Fleet
module Check = Bistpath_check.Check
module Equiv = Bistpath_rtl.Equiv
module Absint = Bistpath_absint.Absint
module Interval = Bistpath_absint.Interval
module Control = Bistpath_datapath.Control
module Json = Bistpath_util.Json

open Cmdliner

(* Exit-code protocol: 0 success, 1 internal/CLI error, 2 static-check
   or parse-back findings (the verifier found error-severity
   violations, or `verify` found a structural/functional mismatch), 3
   degraded (a budget tripped and best-so-far results were printed), 4
   invalid input (the DFG/behavioural text failed validation, or
   `verify` was given unparsable RTL). *)
let exit_findings = 2
let exit_degraded = 3
let exit_invalid_input = 4

let instance_of_dfg dfg =
  let massign = Bistpath_core.Module_assign.single_function dfg in
  { B.tag = dfg.Bistpath_dfg.Dfg.name; dfg; massign; policy = Policy.default }

(* Load a design, accumulating every diagnostic instead of stopping at
   the first: one failed run reports all problems, capped at
   --max-errors. [Error] carries pre-rendered lines. *)
let load_instance ?max_errors spec =
  match B.by_tag spec with
  | Some inst -> Ok inst
  | None ->
    if Sys.file_exists spec then begin
      let locate d = { d with Diagnostic.file = Some spec } in
      let render ds = List.map (fun d -> Diagnostic.to_string (locate d)) ds in
      if Filename.check_suffix spec ".beh" then
        (* behavioural program: compile, schedule as soon as possible *)
        let text = In_channel.with_open_text spec In_channel.input_all in
        let name = Filename.remove_extension (Filename.basename spec) in
        match Bistpath_dfg.Frontend.compile_diags ~name ?max_errors text with
        | Ok dfg -> Ok (instance_of_dfg dfg)
        | Error ds -> Error (render ds)
      else begin
        let u, diags = Parser.parse_file_diags ?max_errors spec in
        if
          List.exists
            (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error)
            diags
        then Error (List.map Diagnostic.to_string diags)
        else
          match Parser.to_dfg_diags ?max_errors u with
          | Ok dfg -> Ok (instance_of_dfg dfg)
          | Error ds -> Error (render ds)
      end
    end
    else
      Error
        [ Printf.sprintf "unknown benchmark %S (and no such file); known: %s" spec
            (String.concat ", " B.all_tags) ]

let instance_arg =
  let doc = "Benchmark tag (see $(b,synth list)) or path to a DFG file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DFG" ~doc)

let width_arg =
  let doc = "Datapath bit width for the area model and simulations." in
  Arg.(value & opt int 8 & info [ "width" ] ~docv:"BITS" ~doc)

let flow_arg =
  let doc = "Allocation flow: $(b,testable) (default) or $(b,traditional)." in
  Arg.(value & opt string "testable" & info [ "flow" ] ~docv:"FLOW" ~doc)

let transparency_arg =
  let doc = "Let pattern generators reach ports through transparent units." in
  Arg.(value & flag & info [ "transparency" ] ~doc)

let style_of_flow = function
  | "traditional" -> Ok Flow.Traditional
  | "testable" -> Ok (Flow.Testable Testable_alloc.default_options)
  | s -> Error (Printf.sprintf "unknown flow %S (use testable or traditional)" s)

let or_die = function
  | Ok x -> x
  | Error msg ->
    prerr_endline ("synth: " ^ msg);
    exit 1

(* Invalid *input* (as opposed to CLI misuse) exits 4 so scripts can
   tell "your DFG is broken" from "the tool broke". *)
let or_die_input = function
  | Ok x -> x
  | Error lines ->
    List.iter (fun l -> prerr_endline ("synth: " ^ l)) lines;
    exit exit_invalid_input

(* --- uniform numeric-flag validation ------------------------------- *)

(* Numeric resource flags share one parse path: a negative, zero or
   garbage value is invalid input — exit 4 with a diagnostic — rather
   than a silent clamp, a cmdliner usage error, or a degraded run. *)
let invalid_flag flag got want =
  prerr_endline
    ("synth: "
    ^ Diagnostic.to_string
        (Diagnostic.error (Printf.sprintf "%s: expected %s, got %S" flag want got)));
  exit exit_invalid_input

let pos_float_of ~flag = function
  | None -> None
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some v when v > 0.0 && Float.is_finite v -> Some v
    | _ -> invalid_flag flag s "a positive number")

let pos_int_of ~flag = function
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some v when v >= 1 -> Some v
    | _ -> invalid_flag flag s "a positive integer")

let nonneg_float_of ~flag ~default = function
  | None -> default
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some v when v >= 0.0 && Float.is_finite v -> v
    | _ -> invalid_flag flag s "a non-negative number")

let nonneg_int_of ~flag ~default = function
  | None -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some v when v >= 0 -> v
    | _ -> invalid_flag flag s "a non-negative integer")

(* --- telemetry, parallelism and budget flags (every subcommand) ---- *)

let stats_arg =
  let doc =
    "Print a per-stage telemetry summary (spans, wall time, counters) to stderr."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace-event JSON file to $(docv) (load it in \
     chrome://tracing or https://ui.perfetto.dev for a flamegraph)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_dir_arg =
  let doc =
    "Write Chrome trace-event files into $(docv) (created if missing): \
     $(docv)/synth.trace.json for this run, plus — under $(b,serve) — \
     one <id>.trace.json per job. Traces include per-worker pool lanes \
     and counter tracks (queue depth, busy workers) for Perfetto."
  in
  Arg.(value & opt (some string) None & info [ "trace-dir" ] ~docv:"DIR" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel stages (fault simulation, PODEM, \
     Pareto exploration). Defaults to $(b,BISTPATH_JOBS) or the \
     machine's core count; $(docv)=1 runs the exact sequential code \
     path. Results are bit-identical at every value."
  in
  Arg.(value & opt (some string) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let timeout_arg =
  let doc =
    "Wall-clock budget in seconds (anytime mode). When the deadline \
     hits, the search stops cooperatively, the best solution found so \
     far is printed, and synth exits 3."
  in
  Arg.(value & opt (some string) None & info [ "timeout" ] ~docv:"SEC" ~doc)

let leaf_budget_arg =
  let doc =
    "Stop after evaluating $(docv) enumeration leaves (anytime mode). \
     Like $(b,--timeout), a tripped budget prints best-so-far results \
     and exits 3; unlike it, the truncation point is deterministic and \
     independent of $(b,--jobs)."
  in
  Arg.(value & opt (some string) None & info [ "leaf-budget" ] ~docv:"N" ~doc)

let max_errors_arg =
  let doc =
    "Report at most $(docv) input diagnostics before truncating \
     (invalid input exits 4)."
  in
  Arg.(value & opt (some string) None & info [ "max-errors" ] ~docv:"N" ~doc)

type common = {
  stats : bool;
  trace : string option;
  trace_dir : string option;
  jobs : int option;
  timeout : float option;
  leaf_budget : int option;
  max_errors : int option;
}

let common_term =
  Term.(
    const (fun stats trace trace_dir jobs timeout leaf_budget max_errors ->
        {
          stats;
          trace;
          trace_dir;
          jobs = pos_int_of ~flag:"--jobs" jobs;
          timeout = pos_float_of ~flag:"--timeout" timeout;
          leaf_budget = pos_int_of ~flag:"--leaf-budget" leaf_budget;
          max_errors = pos_int_of ~flag:"--max-errors" max_errors;
        })
    $ stats_arg $ trace_arg $ trace_dir_arg $ jobs_arg $ timeout_arg
    $ leaf_budget_arg $ max_errors_arg)

(* --- result cache flags (run/rtl/pareto/serve) --------------------- *)

let cache_flag_arg =
  let doc =
    "Enable the content-addressed result cache: stage results and \
     terminal artifacts are stored under the cache directory, and a \
     warm re-run serves byte-identical output from it, re-running only \
     the stages whose inputs changed."
  in
  Arg.(value & flag & info [ "cache" ] ~doc)

let no_cache_arg =
  let doc = "Disable the result cache (overrides $(b,--cache) and $(b,--cache-dir))." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let cache_dir_arg =
  let doc =
    "Result-cache directory (created if missing; implies $(b,--cache)). \
     Defaults to $(b,.bistpath-cache) — or $(b,SPOOL/cache) under \
     $(b,serve)."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let cache_max_mb_arg =
  let doc =
    "On-disk cache size cap in megabytes; least-recently-used entries \
     are evicted past it."
  in
  Arg.(value & opt (some string) None & info [ "cache-max-mb" ] ~docv:"MB" ~doc)

type cache_opts = { cache_on : bool; cache_dir : string option; cache_max_mb : int option }

let cache_term =
  Term.(
    const (fun on off dir max_mb ->
        {
          cache_on = (on || dir <> None) && not off;
          cache_dir = dir;
          cache_max_mb = pos_int_of ~flag:"--cache-max-mb" max_mb;
        })
    $ cache_flag_arg $ no_cache_arg $ cache_dir_arg $ cache_max_mb_arg)

(* An unusable cache directory degrades to an uncached run with a
   warning, never a failure: the cache is an optimization, and the
   primary artifact must still be produced. *)
let open_cache ?(default_dir = ".bistpath-cache") co =
  if not co.cache_on then None
  else
    let dir = Option.value co.cache_dir ~default:default_dir in
    match Store.open_ ?max_mb:co.cache_max_mb ~dir () with
    | store -> Some store
    | exception Sys_error msg ->
      Printf.eprintf "synth: warning: result cache disabled: %s\n" msg;
      None

(* Telemetry goes to stderr or the named trace file, never stdout: for
   rtl/dot/vcd/tb/export the primary artifact is the stdout stream and
   must stay machine-parsable.

   [f] receives the budget built from --timeout/--leaf-budget
   (Budget.unlimited when neither is given, keeping unbudgeted runs on
   the exact historical code path). If the budget tripped, whatever
   output [f] printed stands as the best-so-far answer and we exit 3
   after the telemetry epilogue. *)
let with_common c f =
  Option.iter Bistpath_parallel.Pool.set_jobs c.jobs;
  let budget =
    match (c.timeout, c.leaf_budget) with
    | None, None -> Budget.unlimited
    | deadline_s, leaf_budget -> Budget.create ?deadline_s ?leaf_budget ()
  in
  let body () =
    let x = f budget in
    (match Budget.stop_reason budget with
    | Some _ -> Telemetry.set "resilience.degraded" 1
    | None -> ());
    x
  in
  let finish x =
    match Budget.stop_reason budget with
    | Some r ->
      Printf.eprintf "synth: degraded: %s (best-so-far results shown)\n"
        (Cancel.describe r);
      exit exit_degraded
    | None -> x
  in
  try
    if (not c.stats) && c.trace = None && c.trace_dir = None then finish (body ())
    else begin
      let r = Telemetry.create () in
      let flushed = ref false in
      (* bin links no unix; Sys.mkdir is enough for the shallow trees
         --trace-dir asks for *)
      let rec mkdir_p dir =
        if not (Sys.file_exists dir) then begin
          mkdir_p (Filename.dirname dir);
          try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
        end
      in
      let flush ~exit_on_error =
        if not !flushed then begin
          flushed := true;
          if c.stats then prerr_string (Telemetry.summary_table r);
          let write_trace file =
            try
              Inject.fire_sys_error "telemetry.write";
              Telemetry.write_file file (Telemetry.chrome_trace_json r)
            with Sys_error msg ->
              Printf.eprintf "synth: cannot write trace file: %s\n" msg;
              if exit_on_error then exit 1
          in
          Option.iter write_trace c.trace;
          Option.iter
            (fun dir ->
              (try mkdir_p dir
               with Sys_error msg ->
                 Printf.eprintf "synth: cannot create trace directory: %s\n" msg;
                 if exit_on_error then exit 1);
              write_trace (Filename.concat dir "synth.trace.json"))
            c.trace_dir
        end
      in
      (* Crash-safe sinks: flush from [at_exit] too, so a fatal error
         mid-pipeline (injected fault, allocator bug, [exit 1]) still
         lands the recorded prefix — open spans included — on disk and
         stderr instead of dropping the buffered tail. *)
      at_exit (fun () -> flush ~exit_on_error:false);
      Telemetry.install r;
      let x = body () in
      Telemetry.uninstall ();
      flush ~exit_on_error:true;
      finish x
    end
  with Inject.Injected site ->
    Printf.eprintf "synth: injected fault at site %s\n" site;
    exit 1

(* Opt-in static-verification gate for artifact-emitting commands: the
   artifact goes to stdout untouched, findings go to stderr, and
   error-severity findings exit 2. Off by default, so unchecked
   pipelines stay byte-identical. *)
let check_gate_arg =
  let doc =
    "After the flow completes, run the static verifier ($(b,synth check)) \
     over the synthesized artifacts: findings print to stderr and \
     error-severity findings exit 2. The stdout artifact is unaffected."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

let run_check_gate ~budget ~width ~transparency (inst : B.instance) label r =
  let ctx =
    Check.ctx_of_flow ~vectors:10 ~transparency
      ~design:(inst.B.tag ^ "/" ^ label)
      ~width inst.B.dfg inst.B.massign ~policy:inst.B.policy r
  in
  let rep = Check.run ~budget ctx in
  if rep.Check.findings <> [] || rep.Check.suppressed <> [] then
    prerr_string (Check.to_text rep);
  if Check.errors rep > 0 then exit exit_findings

(* Key for a whole rendered artifact. [None] turns the terminal-stage
   caching off (while Flow.run ?cache still reuses inner stages) —
   used under --check, which needs the live flow result. Must stay in
   lock-step with Runner's derivation so the CLI and the service share
   one cache. *)
let cli_artifact_key ~cache ~stage ~width ?(transparency = false) ~style extra
    (inst : B.instance) =
  Option.map
    (fun _ ->
      Flow.artifact_key ~stage
        ~spec_hash:(Flow.spec_hash inst.B.dfg inst.B.massign ~policy:inst.B.policy)
        ~params:
          (Bistpath_util.Json.Obj
             (("flow", Flow.flow_params_json ~width ~transparency ~style ())
             :: extra)))
    cache

let run_term =
  let run c spec width flow transparency check cache_o =
    with_common c @@ fun budget ->
    let inst = or_die_input (load_instance ?max_errors:c.max_errors spec) in
    let style = or_die (style_of_flow flow) in
    let cache = open_cache cache_o in
    let key =
      if check then None
      else
        cli_artifact_key ~cache ~stage:Stage.Report ~width ~transparency ~style
          [ ("artifact", Bistpath_util.Json.Str "run") ]
          inst
    in
    match Flow.artifact_find ~cache ~stage:Stage.Report ~key with
    | Some payload -> print_string payload
    | None ->
      let r =
        Flow.run ~budget ~width ~transparency ?cache ~style inst.B.dfg
          inst.B.massign ~policy:inst.B.policy
      in
      let payload =
        Format.asprintf "%a@.@.%a@.@.test sessions: %a@." Bistpath_dfg.Dfg.pp
          inst.B.dfg Flow.pp_result r Bistpath_bist.Session.pp r.Flow.sessions
      in
      print_string payload;
      if not (Budget.should_stop budget) then
        Flow.artifact_store ~cache ~stage:Stage.Report ~key payload;
      if check then run_check_gate ~budget ~width ~transparency inst flow r
  in
  Term.(
    const run $ common_term $ instance_arg $ width_arg $ flow_arg
    $ transparency_arg $ check_gate_arg $ cache_term)

let run_cmd =
  let doc = "Synthesize a data path and report its minimal-area BIST solution." in
  Cmd.v (Cmd.info "run" ~doc) run_term

let compare_cmd =
  let run c spec width =
    with_common c @@ fun _budget ->
    let inst = or_die_input (load_instance ?max_errors:c.max_errors spec) in
    let c = Report.compare_instance ~width inst in
    Format.printf "=== traditional ===@.%a@.@.=== testable ===@.%a@.@.reduction: %.2f%%@."
      Flow.pp_result c.Report.traditional Flow.pp_result c.Report.testable
      (Flow.reduction_percent ~traditional:c.Report.traditional
         ~testable:c.Report.testable)
  in
  let doc = "Run both flows on one DFG and show the BIST overhead reduction." in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const run $ common_term $ instance_arg $ width_arg)

let tables_cmd =
  let run c width =
    with_common c @@ fun _budget ->
    print_endline (Report.table1 ~width ());
    print_newline ();
    print_endline (Report.table2 ~width ());
    print_newline ();
    print_endline (Report.table3 ~width ())
  in
  let doc = "Reproduce the paper's Tables I, II and III." in
  Cmd.v (Cmd.info "tables" ~doc) Term.(const run $ common_term $ width_arg)

let figures_cmd =
  let run c width =
    with_common c @@ fun _budget ->
    List.iter
      (fun s ->
        print_endline s;
        print_newline ())
      [ Report.fig2 (); Report.fig4 (); Report.fig5 ~width (); Report.fig1_3 ~width (); Report.fig6 () ]
  in
  let doc = "Reproduce the paper's figures (2, 4, 5, 1/3, 6)." in
  Cmd.v (Cmd.info "figures" ~doc) Term.(const run $ common_term $ width_arg)

let ablation_cmd =
  let run c width =
    with_common c @@ fun _budget -> print_endline (Report.ablation ~width ())
  in
  let doc = "Ablate the testable allocator's ingredients across benchmarks." in
  Cmd.v (Cmd.info "ablation" ~doc) Term.(const run $ common_term $ width_arg)

let rtl_cmd =
  let bist_arg =
    let doc = "Instantiate BIST register variants per the minimal-area solution." in
    Arg.(value & flag & info [ "bist" ] ~doc)
  in
  let wrapper_arg =
    let doc = "Also emit the self-test wrapper (implies $(b,--bist))." in
    Arg.(value & flag & info [ "wrapper" ] ~doc)
  in
  let verify_arg =
    let doc =
      "Parse the emitted RTL back and prove it structurally equivalent to \
       the data path before printing (exit 2 on mismatch, 4 if the emitted \
       text is unparsable)."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let narrow_arg =
    let doc =
      "Narrow each register and functional unit to the width the abstract \
       interpreter proves sufficient (the $(b,synth analyze) plan, never \
       assumption-based); ports keep the uniform width. Rejected with \
       $(b,--bist)/$(b,--wrapper) — test-register semantics are \
       width-dependent. Disables the artifact cache; combine with \
       $(b,--verify) to prove the narrowed netlist equivalent."
    in
    Arg.(value & flag & info [ "narrow" ] ~doc)
  in
  let run c spec width flow bist wrapper verify narrow check cache_o =
    with_common c @@ fun budget ->
    let inst = or_die_input (load_instance ?max_errors:c.max_errors spec) in
    let style = or_die (style_of_flow flow) in
    let bist = bist || wrapper in
    if narrow && bist then
      invalid_flag "--narrow"
        (if wrapper then "--wrapper" else "--bist")
        "a plain datapath (BIST register semantics are width-dependent)";
    let cache = open_cache cache_o in
    let key =
      if check || verify || narrow then None
      else
        cli_artifact_key ~cache ~stage:Stage.Rtl ~width ~style
          [ ("artifact", Bistpath_util.Json.Str "rtl");
            ("bist", Bistpath_util.Json.Bool bist);
            ("wrapper", Bistpath_util.Json.Bool wrapper) ]
          inst
    in
    match Flow.artifact_find ~cache ~stage:Stage.Rtl ~key with
    | Some payload -> print_string payload
    | None ->
      let r = Flow.run ~budget ~width ?cache ~style inst.B.dfg inst.B.massign ~policy:inst.B.policy in
      let plan =
        if not narrow then None
        else
          match Control.build r.Flow.datapath with
          | control -> Some (Absint.narrow_plan ~width r.Flow.datapath control)
          | exception e ->
            or_die
              (Error
                 (Printf.sprintf "--narrow: cannot build the control table: %s"
                    (Printexc.to_string e)))
      in
      let regw = match plan with Some p -> p.Absint.regw | None -> [] in
      let unitw = match plan with Some p -> p.Absint.unitw | None -> [] in
      Option.iter
        (fun (p : Absint.plan) ->
          Printf.eprintf
            "synth: narrow: %d of %d component bit(s) removed (%.1f%%), %d \
             register(s) and %d unit(s) narrowed\n"
            p.Absint.saved_bits p.Absint.total_bits (Absint.saved_percent p)
            (List.length p.Absint.regw)
            (List.length p.Absint.unitw))
        plan;
      let payload =
        Verilog.primitives ~width ^ "\n"
        ^ Verilog.emit ~width
            ?bist:(if bist then Some r.Flow.bist else None)
            ?sessions:(if wrapper then Some r.Flow.sessions else None)
            ~regw ~unitw r.Flow.datapath
        ^ "\n"
        ^
        if wrapper then begin
          let golden =
            Bistpath_rtl.Rtl_sim.golden_signatures ~width r.Flow.datapath
              r.Flow.bist r.Flow.sessions
          in
          Bistpath_rtl.Bist_wrapper.emit ~width ~golden r.Flow.datapath
            r.Flow.bist r.Flow.sessions
          ^ "\n"
        end
        else ""
      in
      print_string payload;
      if not (Budget.should_stop budget) then
        Flow.artifact_store ~cache ~stage:Stage.Rtl ~key payload;
      if verify then begin
        (* parse the just-printed text back and prove it equivalent *)
        match
          Equiv.verify ~width
            ?bist:(if bist then Some r.Flow.bist else None)
            ?sessions:(if wrapper then Some r.Flow.sessions else None)
            ~regw ~rtl:payload r.Flow.datapath
        with
        | Error diags ->
          List.iter
            (fun d -> prerr_endline ("synth: " ^ Diagnostic.to_string d))
            diags;
          exit exit_invalid_input
        | Ok rep ->
          let bad =
            List.map (fun d -> "RTL005 " ^ d) rep.Equiv.structural
            @
            match rep.Equiv.functional with
            | None -> []
            | Some m ->
              [
                Printf.sprintf "EQ002 output %s: expected %d got %d"
                  m.Equiv.output m.Equiv.expected m.Equiv.actual;
              ]
          in
          if bad <> [] then begin
            List.iter (fun l -> prerr_endline ("synth: verify: " ^ l)) bad;
            exit exit_findings
          end
      end;
      if check then run_check_gate ~budget ~width ~transparency:false inst flow r
  in
  let doc = "Emit structural Verilog for the synthesized data path." in
  Cmd.v (Cmd.info "rtl" ~doc)
    Term.(
      const run $ common_term $ instance_arg $ width_arg $ flow_arg $ bist_arg
      $ wrapper_arg $ verify_arg $ narrow_arg $ check_gate_arg $ cache_term)

let dot_cmd =
  let what_arg =
    let doc = "What to draw: $(b,datapath) (default) or $(b,dfg)." in
    Arg.(value & opt string "datapath" & info [ "what" ] ~docv:"KIND" ~doc)
  in
  let run c spec width flow what =
    with_common c @@ fun budget ->
    let inst = or_die_input (load_instance ?max_errors:c.max_errors spec) in
    match what with
    | "dfg" -> print_endline (Dot.of_dfg inst.B.dfg)
    | "datapath" ->
      let style = or_die (style_of_flow flow) in
      let r = Flow.run ~budget ~width ~style inst.B.dfg inst.B.massign ~policy:inst.B.policy in
      print_endline (Dot.of_datapath ~bist:r.Flow.bist r.Flow.datapath)
    | s -> or_die (Error (Printf.sprintf "unknown kind %S" s))
  in
  let doc = "Emit Graphviz DOT for a DFG or synthesized data path." in
  Cmd.v (Cmd.info "dot" ~doc)
    Term.(
      const run $ common_term $ instance_arg $ width_arg $ flow_arg $ what_arg)

let coverage_cmd =
  let patterns_arg =
    let doc = "Number of LFSR patterns per test session." in
    Arg.(value & opt int 255 & info [ "patterns" ] ~docv:"N" ~doc)
  in
  let run c spec width flow patterns =
    with_common c @@ fun budget ->
    let inst = or_die_input (load_instance ?max_errors:c.max_errors spec) in
    let style = or_die (style_of_flow flow) in
    let r = Flow.run ~budget ~width ~style inst.B.dfg inst.B.massign ~policy:inst.B.policy in
    let rep = Bist_sim.run ~budget ~width ~pattern_count:patterns r.Flow.datapath r.Flow.bist in
    Format.printf "%a@." Bist_sim.pp rep
  in
  let doc = "Gate-level stuck-at coverage of the chosen BIST configuration." in
  Cmd.v
    (Cmd.info "coverage" ~doc)
    Term.(
      const run $ common_term $ instance_arg $ width_arg $ flow_arg
      $ patterns_arg)

let vcd_cmd =
  let inputs_arg =
    let doc = "Input values as name=value pairs (defaults to a seeded random vector)." in
    Arg.(value & opt_all string [] & info [ "set" ] ~docv:"VAR=VAL" ~doc)
  in
  let run c spec width flow sets =
    with_common c @@ fun budget ->
    let inst = or_die_input (load_instance ?max_errors:c.max_errors spec) in
    let style = or_die (style_of_flow flow) in
    let r = Flow.run ~budget ~width ~style inst.B.dfg inst.B.massign ~policy:inst.B.policy in
    let used =
      List.filter
        (fun v -> Bistpath_dfg.Dfg.consumers inst.B.dfg v <> [])
        inst.B.dfg.Bistpath_dfg.Dfg.inputs
    in
    let rng = Bistpath_util.Prng.create 1 in
    let defaults = List.map (fun v -> (v, Bistpath_util.Prng.int rng (1 lsl width))) used in
    let overrides =
      List.map
        (fun s ->
          match String.split_on_char '=' s with
          | [ k; v ] -> (
            match int_of_string_opt v with
            | Some x -> (k, x)
            | None ->
              or_die
                (Error
                   (Printf.sprintf "bad --set %S (%S is not an integer)" s v)))
          | _ -> or_die (Error (Printf.sprintf "bad --set %S (want VAR=VAL)" s)))
        sets
    in
    let inputs =
      List.map
        (fun (v, x) ->
          (v, match List.assoc_opt v overrides with Some o -> o | None -> x))
        defaults
    in
    print_endline (Bistpath_rtl.Vcd.dump_run r.Flow.datapath ~width ~inputs)
  in
  let doc = "Interpret the data path and dump a VCD waveform (view in GTKWave)." in
  Cmd.v (Cmd.info "vcd" ~doc)
    Term.(
      const run $ common_term $ instance_arg $ width_arg $ flow_arg
      $ inputs_arg)

let tb_cmd =
  let count_arg =
    let doc = "Number of random test vectors." in
    Arg.(value & opt int 5 & info [ "vectors" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "PRNG seed for the vectors." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let run c spec width flow count seed =
    with_common c @@ fun budget ->
    let inst = or_die_input (load_instance ?max_errors:c.max_errors spec) in
    let style = or_die (style_of_flow flow) in
    let r = Flow.run ~budget ~width ~style inst.B.dfg inst.B.massign ~policy:inst.B.policy in
    let rng = Bistpath_util.Prng.create seed in
    let vectors =
      Bistpath_rtl.Testbench.random_vectors rng r.Flow.datapath ~width ~count
    in
    print_endline (Verilog.primitives ~width);
    print_endline (Verilog.emit ~width r.Flow.datapath);
    print_endline (Bistpath_rtl.Testbench.generate ~width r.Flow.datapath ~vectors)
  in
  let doc =
    "Emit a complete compilation unit: primitives, datapath and a self-checking testbench."
  in
  Cmd.v (Cmd.info "tb" ~doc)
    Term.(
      const run $ common_term $ instance_arg $ width_arg $ flow_arg
      $ count_arg $ seed_arg)

let area_cmd =
  let run c spec width flow =
    with_common c @@ fun budget ->
    let inst = or_die_input (load_instance ?max_errors:c.max_errors spec) in
    let style = or_die (style_of_flow flow) in
    let r = Flow.run ~budget ~width ~style inst.B.dfg inst.B.massign ~policy:inst.B.policy in
    let m = Bistpath_datapath.Area.default in
    Format.printf "functional: %a@."
      Bistpath_datapath.Area.pp_breakdown
      (Bistpath_datapath.Area.breakdown m ~width r.Flow.datapath);
    Format.printf "BIST modifications: +%d gates (%.2f%%)@."
      r.Flow.bist.Bistpath_bist.Allocator.delta_gates r.Flow.overhead_percent;
    Format.printf "clock: ~%d gate levels; schedule: %d steps@."
      (Bistpath_datapath.Timing.clock_levels ~width r.Flow.datapath)
      (Bistpath_datapath.Timing.schedule_latency r.Flow.datapath);
    Format.printf "test time: %a@."
      Bistpath_datapath.Timing.pp_test_time
      (Bistpath_datapath.Timing.test_time ~width r.Flow.datapath
         ~sessions:(Bistpath_bist.Session.num_sessions r.Flow.sessions));
    Format.printf "partial-scan alternative: %.2f%% (scan regs: %s)@."
      (Bistpath_core.Partial_scan.overhead_percent ~width r.Flow.datapath)
      (String.concat ", " (Bistpath_core.Partial_scan.mfvs r.Flow.datapath))
  in
  let doc = "Area breakdown, timing estimate and DFT cost summary." in
  Cmd.v (Cmd.info "area" ~doc)
    Term.(const run $ common_term $ instance_arg $ width_arg $ flow_arg)

let pareto_cmd =
  let run c spec width flow cache_o =
    with_common c @@ fun budget ->
    let inst = or_die_input (load_instance ?max_errors:c.max_errors spec) in
    let style = or_die (style_of_flow flow) in
    let cache = open_cache cache_o in
    let key =
      cli_artifact_key ~cache ~stage:Stage.Report ~width ~style
        [ ("artifact", Bistpath_util.Json.Str "pareto") ]
        inst
    in
    match Flow.artifact_find ~cache ~stage:Stage.Report ~key with
    | Some payload -> print_string payload
    | None ->
      let r = Flow.run ~budget ~width ?cache ~style inst.B.dfg inst.B.massign ~policy:inst.B.policy in
      let payload =
        Format.asprintf "%a@." Bistpath_bist.Pareto.pp
          (Bistpath_bist.Pareto.explore ~width ~budget r.Flow.datapath)
      in
      print_string payload;
      if not (Budget.should_stop budget) then
        Flow.artifact_store ~cache ~stage:Stage.Report ~key payload
  in
  let doc = "Area vs test-session Pareto front for one design." in
  Cmd.v (Cmd.info "pareto" ~doc)
    Term.(const run $ common_term $ instance_arg $ width_arg $ flow_arg $ cache_term)

let severity_name = function
  | Diagnostic.Error -> "error"
  | Diagnostic.Warning -> "warning"
  | Diagnostic.Note -> "note"

let check_cmd =
  let vectors_arg =
    let doc =
      "Random vectors for the dynamic-equivalence rule EQ001 (0 disables \
       it; the static rules always run)."
    in
    Arg.(value & opt int 10 & info [ "vectors" ] ~docv:"N" ~doc)
  in
  let format_arg =
    let doc =
      "Report format: $(b,text) (default), $(b,json) or $(b,sarif) (one \
       NDJSON object / SARIF 2.1.0 document per checked flow)."
    in
    Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let list_rules_arg =
    let doc =
      "List every rule (id, worst severity, title) and exit without \
       checking anything; honours $(b,--format) text/json."
    in
    Arg.(value & flag & info [ "list-rules" ] ~doc)
  in
  let spec_opt_arg =
    let doc = "Benchmark tag (see $(b,synth list)) or path to a DFG file." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"DFG" ~doc)
  in
  let suppress_arg =
    let doc =
      "Comma-separated rule ids to suppress (e.g. $(b,DP004,BIST005)); \
       suppressed findings are still reported but never gate the exit \
       code."
    in
    Arg.(value & opt string "" & info [ "suppress" ] ~docv:"IDS" ~doc)
  in
  let check_flow_arg =
    let doc =
      "Which flow(s) to verify: $(b,both) (default), $(b,testable) or \
       $(b,traditional)."
    in
    Arg.(value & opt string "both" & info [ "flow" ] ~docv:"FLOW" ~doc)
  in
  let run c spec width flow transparency vectors format suppress list_rules =
    with_common c @@ fun budget ->
    (match format with
    | "text" | "json" | "sarif" -> ()
    | s -> or_die (Error (Printf.sprintf "unknown format %S (use text, json or sarif)" s)));
    if list_rules then begin
      match format with
      | "json" | "sarif" ->
        print_endline
          (Json.to_string
             (Json.Arr
                (List.map
                   (fun (id, sev, title) ->
                     Json.Obj
                       [ ("id", Json.Str id);
                         ("severity", Json.Str (severity_name sev));
                         ("title", Json.Str title) ])
                   Check.rule_info)))
      | _ ->
        List.iter
          (fun (id, sev, title) ->
            Printf.printf "%-8s %-8s %s\n" id (severity_name sev) title)
          Check.rule_info
    end
    else begin
    let spec =
      match spec with
      | Some s -> s
      | None -> or_die (Error "missing DFG argument (or pass --list-rules)")
    in
    let inst = or_die_input (load_instance ?max_errors:c.max_errors spec) in
    let suppress =
      List.filter_map
        (fun s ->
          let s = String.trim s in
          if s = "" then None
          else if Check.known_rule s then Some s
          else
            invalid_flag "--suppress" s
              ("a known rule id, one of: "
              ^ String.concat ", " (List.map fst Check.rule_table)))
        (String.split_on_char ',' suppress)
    in
    let styles =
      match flow with
      | "both" ->
        [ ("traditional", Flow.Traditional);
          ("testable", Flow.Testable Testable_alloc.default_options) ]
      | s -> [ (s, or_die (style_of_flow s)) ]
    in
    let total_errors = ref 0 in
    List.iter
      (fun (label, style) ->
        let r =
          Flow.run ~budget ~width ~transparency ~style inst.B.dfg inst.B.massign
            ~policy:inst.B.policy
        in
        let ctx =
          Check.ctx_of_flow ~vectors ~transparency
            ~design:(inst.B.tag ^ "/" ^ label)
            ~width inst.B.dfg inst.B.massign ~policy:inst.B.policy r
        in
        let rep = Check.run ~suppress ~budget ctx in
        (match format with
        | "json" -> print_endline (Bistpath_util.Json.to_string (Check.to_json rep))
        | "sarif" -> print_endline (Json.to_string (Check.to_sarif rep))
        | _ -> print_string (Check.to_text rep));
        total_errors := !total_errors + Check.errors rep)
      styles;
    if !total_errors > 0 then exit exit_findings
    end
  in
  let doc =
    "Statically verify a design's synthesized artifacts: allocation, data \
     path and RTL structure are re-derived and cross-checked rule by rule \
     (exit 2 on error findings; see check.mli for the rule table)."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const run $ common_term $ spec_opt_arg $ width_arg $ check_flow_arg
      $ transparency_arg $ vectors_arg $ format_arg $ suppress_arg
      $ list_rules_arg)

(* `synth analyze`: run the abstract interpreter on its own — per-value
   ranges, the ABS rule family, and the width-narrowing plan with its
   estimated area savings. Exit 0 clean, 2 on error findings, 3 when an
   injected absint.fixpoint fault degrades the analysis. *)
let analyze_cmd =
  let format_arg =
    let doc =
      "Report format: $(b,text) (default), $(b,json) or $(b,sarif) (one \
       NDJSON object / SARIF 2.1.0 document per analyzed flow)."
    in
    Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let analyze_flow_arg =
    let doc =
      "Which flow(s) to analyze: $(b,both) (default), $(b,testable) or \
       $(b,traditional)."
    in
    Arg.(value & opt string "both" & info [ "flow" ] ~docv:"FLOW" ~doc)
  in
  let assume_arg =
    let doc =
      "Assert that primary input $(b,VAR) only takes values in \
       $(b,[LO,HI]) (repeatable). Unlisted inputs stay full-range. \
       Assumptions sharpen the reported ranges and arm the May-verdict \
       ABS001/ABS002 findings; they never feed the $(b,--narrow) plan."
    in
    Arg.(value & opt_all string [] & info [ "assume" ] ~docv:"VAR=LO:HI" ~doc)
  in
  let parse_assume ~width s =
    let fail () =
      invalid_flag "--assume" s "VAR=LO:HI with 0 <= LO <= HI < 2^width"
    in
    match String.index_opt s '=' with
    | None -> fail ()
    | Some i -> (
      let v = String.sub s 0 i in
      let range = String.sub s (i + 1) (String.length s - i - 1) in
      match String.split_on_char ':' range with
      | [ lo; hi ] -> (
        match (int_of_string_opt (String.trim lo), int_of_string_opt (String.trim hi)) with
        | Some lo, Some hi when 0 <= lo && lo <= hi && hi < 1 lsl width ->
          (String.trim v, (lo, hi))
        | _ -> fail ())
      | _ -> fail ())
  in
  let run c spec width flow format assumes_raw =
    with_common c @@ fun budget ->
    let inst = or_die_input (load_instance ?max_errors:c.max_errors spec) in
    (match format with
    | "text" | "json" | "sarif" -> ()
    | s -> or_die (Error (Printf.sprintf "unknown format %S (use text, json or sarif)" s)));
    let assumes = List.map (parse_assume ~width) assumes_raw in
    List.iter
      (fun (v, _) ->
        if not (List.mem v inst.B.dfg.Bistpath_dfg.Dfg.inputs) then
          invalid_flag "--assume" v
            ("a primary input of the design ("
            ^ String.concat ", " inst.B.dfg.Bistpath_dfg.Dfg.inputs
            ^ ")"))
      assumes;
    let styles =
      match flow with
      | "both" ->
        [ ("traditional", Flow.Traditional);
          ("testable", Flow.Testable Testable_alloc.default_options) ]
      | s -> [ (s, or_die (style_of_flow s)) ]
    in
    let total_errors = ref 0 in
    let degraded = ref false in
    List.iter
      (fun (label, style) ->
        let design = inst.B.tag ^ "/" ^ label in
        let r =
          Flow.run ~budget ~width ~style inst.B.dfg inst.B.massign
            ~policy:inst.B.policy
        in
        let analysis =
          try
            let dres =
              Absint.solve_dfg ~assumes ~width ~policy:inst.B.policy inst.B.dfg
            in
            let control = try Some (Control.build r.Flow.datapath) with _ -> None in
            let plan =
              Option.map
                (fun ctl -> Absint.narrow_plan ~width r.Flow.datapath ctl)
                control
            in
            Some (dres, plan)
          with Inject.Injected site ->
            Printf.eprintf "synth: analyze %s degraded: injected fault at site %s\n"
              design site;
            degraded := true;
            None
        in
        match analysis with
        | None -> ()
        | Some (dres, plan) ->
          let ctx =
            Check.ctx_of_flow ~assumes ~design ~width inst.B.dfg inst.B.massign
              ~policy:inst.B.policy r
          in
          let rep = Check.run ~budget ~rules:Check.absint_family ctx in
          (match format with
          | "json" ->
            let value_json (v, (iv : Interval.t)) =
              Json.Obj
                [ ("name", Json.Str v);
                  ("lo", Json.Num (float_of_int iv.Interval.lo));
                  ("hi", Json.Num (float_of_int iv.Interval.hi));
                  ("bits", Json.Num (float_of_int (Interval.bits iv)));
                ]
            in
            let component_json (cmp : Absint.component) =
              Json.Obj
                [ ("name", Json.Str cmp.Absint.name);
                  ( "kind",
                    Json.Str
                      (match cmp.Absint.comp with
                      | `Register -> "register"
                      | `Unit -> "unit") );
                  ("full_bits", Json.Num (float_of_int cmp.Absint.full_bits));
                  ("narrow_bits", Json.Num (float_of_int cmp.Absint.narrow_bits));
                  ("value", Json.Str (Interval.to_string cmp.Absint.value));
                ]
            in
            print_endline
              (Json.to_string
                 (Json.Obj
                    [ ("design", Json.Str design);
                      ("width", Json.Num (float_of_int width));
                      ("iterations", Json.Num (float_of_int dres.Absint.iterations));
                      ("widened", Json.Bool dres.Absint.widened);
                      ("values", Json.Arr (List.map value_json dres.Absint.env));
                      ( "narrow",
                        match plan with
                        | None -> Json.Null
                        | Some p ->
                          Json.Obj
                            [ ( "components",
                                Json.Arr (List.map component_json p.Absint.components) );
                              ("saved_bits", Json.Num (float_of_int p.Absint.saved_bits));
                              ("total_bits", Json.Num (float_of_int p.Absint.total_bits));
                              ("saved_percent", Json.Num (Absint.saved_percent p));
                            ] );
                      ("report", Check.to_json rep);
                    ]))
          | "sarif" -> print_endline (Json.to_string (Check.to_sarif rep))
          | _ ->
            Printf.printf "analyze %s: width %d, %d value(s), %d iteration(s)%s\n"
              design width (List.length dres.Absint.env) dres.Absint.iterations
              (if dres.Absint.widened then " (widened)" else "");
            Printf.printf "  value ranges:\n";
            List.iter
              (fun (v, (iv : Interval.t)) ->
                Printf.printf "    %-12s %-14s %d bit(s)\n" v (Interval.to_string iv)
                  (Interval.bits iv))
              dres.Absint.env;
            (match plan with
            | None ->
              Printf.printf
                "  narrowing plan unavailable (control table rejected)\n"
            | Some p ->
              Printf.printf "  narrowing plan (full -> inferred width):\n";
              List.iter
                (fun (cmp : Absint.component) ->
                  Printf.printf "    %-12s %-8s %2d -> %2d  %s\n" cmp.Absint.name
                    (match cmp.Absint.comp with
                    | `Register -> "register"
                    | `Unit -> "unit")
                    cmp.Absint.full_bits cmp.Absint.narrow_bits
                    (Interval.to_string cmp.Absint.value))
                p.Absint.components;
              Printf.printf
                "  estimated area savings: %d of %d component bit(s) (%.1f%%)\n"
                p.Absint.saved_bits p.Absint.total_bits (Absint.saved_percent p));
            print_string (Check.to_text rep));
          total_errors := !total_errors + Check.errors rep)
      styles;
    if !degraded then exit exit_degraded;
    if !total_errors > 0 then exit exit_findings
  in
  let doc =
    "Abstract-interpretation report for a design: proven per-value ranges, \
     the proof-carrying ABS rule family, and the register/unit width \
     narrowing plan with its estimated area savings (exit 2 on error \
     findings)."
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(
      const run $ common_term $ instance_arg $ width_arg $ analyze_flow_arg
      $ format_arg $ assume_arg)

(* `synth verify`: close the RTL loop. The emitted Verilog (or a user
   file, or a committed golden artifact) is parsed back, structurally
   matched against the in-memory data path and simulated on random
   vectors. Exit 0 equivalent, 2 mismatch, 4 unparsable RTL. *)
let verify_cmd =
  let vectors_arg =
    let doc =
      "Random vectors for the simulation cross-check EQ002 (0 disables it; \
       the structural comparison RTL005 always runs)."
    in
    Arg.(value & opt int 16 & info [ "vectors" ] ~docv:"N" ~doc)
  in
  let format_arg =
    let doc =
      "Report format: $(b,text) (default) or $(b,json) (one NDJSON object \
       per verified artifact)."
    in
    Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let verify_flow_arg =
    let doc =
      "Which flow(s) to verify: $(b,both) (default), $(b,testable) or \
       $(b,traditional)."
    in
    Arg.(value & opt string "both" & info [ "flow" ] ~docv:"FLOW" ~doc)
  in
  let rtl_arg =
    let doc =
      "Verify this RTL file instead of re-emitting (requires a single \
       $(b,--flow); combine with $(b,--bist)/$(b,--sessions) to state the \
       configuration the file was emitted with)."
    in
    Arg.(value & opt (some string) None & info [ "rtl" ] ~docv:"FILE" ~doc)
  in
  let bist_arg =
    let doc = "With $(b,--rtl): the file instantiates BIST register variants." in
    Arg.(value & flag & info [ "bist" ] ~doc)
  in
  let sessions_arg =
    let doc =
      "With $(b,--rtl): the file steers test sessions (implies $(b,--bist))."
    in
    Arg.(value & flag & info [ "sessions" ] ~doc)
  in
  let golden_arg =
    let doc =
      "Compare the emitted RTL against $(docv)/<spec>__<flow>.v (the \
       file name is the sanitized spec as written on the command line) \
       structurally: formatting and comment churn never fail; semantic \
       drift always does."
    in
    Arg.(value & opt (some string) None & info [ "golden" ] ~docv:"DIR" ~doc)
  in
  let update_golden_arg =
    let doc = "Rewrite the golden files under $(b,--golden) instead of comparing." in
    Arg.(value & flag & info [ "update-golden" ] ~doc)
  in
  let run c spec width flow vectors format rtl_file bist_f sessions_f golden
      update_golden =
    with_common c @@ fun budget ->
    let inst = or_die_input (load_instance ?max_errors:c.max_errors spec) in
    (match format with
    | "text" | "json" -> ()
    | s -> or_die (Error (Printf.sprintf "unknown format %S (use text or json)" s)));
    if vectors < 0 then invalid_flag "--vectors" (string_of_int vectors) "a non-negative integer";
    let styles =
      match flow with
      | "both" ->
        [ ("traditional", Flow.Traditional);
          ("testable", Flow.Testable Testable_alloc.default_options) ]
      | s -> [ (s, or_die (style_of_flow s)) ]
    in
    let mismatches = ref 0 and unparsable = ref 0 in
    let json = format = "json" in
    let report_text label lines ok_note =
      if lines = [] then Printf.printf "verify %s: ok%s\n" label ok_note
      else begin
        Printf.printf "verify %s: MISMATCH\n" label;
        List.iter (fun l -> Printf.printf "  %s\n" l) lines
      end
    in
    let finding_lines (rep : Equiv.report) =
      List.map (fun d -> "RTL005 " ^ d) rep.Equiv.structural
      @
      match rep.Equiv.functional with
      | None -> []
      | Some m ->
        [
          Printf.sprintf "EQ002 output %s: expected %d got %d on vector %s"
            m.Equiv.output m.Equiv.expected m.Equiv.actual
            (String.concat ", "
               (List.map (fun (x, v) -> Printf.sprintf "%s=%d" x v) m.Equiv.vector));
        ]
    in
    let emit_report label result =
      match result with
      | Error diags ->
        incr unparsable;
        if json then
          print_endline
            (Bistpath_util.Json.to_string
               (Bistpath_util.Json.Obj
                  [
                    ("artifact", Bistpath_util.Json.Str label);
                    ("ok", Bistpath_util.Json.Bool false);
                    ("unparsable", Bistpath_util.Json.Bool true);
                    ( "diagnostics",
                      Bistpath_util.Json.Arr
                        (List.map
                           (fun d -> Bistpath_util.Json.Str (Diagnostic.to_string d))
                           diags) );
                  ]))
        else begin
          Printf.printf "verify %s: UNPARSABLE\n" label;
          List.iter
            (fun d -> Printf.printf "  %s\n" (Diagnostic.to_string d))
            diags
        end
      | Ok (rep : Equiv.report) ->
        let lines = finding_lines rep in
        if lines <> [] then incr mismatches;
        if json then
          print_endline
            (Bistpath_util.Json.to_string
               (Bistpath_util.Json.Obj
                  [
                    ("artifact", Bistpath_util.Json.Str label);
                    ("ok", Bistpath_util.Json.Bool (lines = []));
                    ( "findings",
                      Bistpath_util.Json.Arr
                        (List.map (fun l -> Bistpath_util.Json.Str l) lines) );
                    ( "vectors",
                      Bistpath_util.Json.Num (float_of_int rep.Equiv.vectors_run) );
                  ]))
        else
          report_text label lines
            (Printf.sprintf " (%d vectors)" rep.Equiv.vectors_run)
    in
    let full_rtl ?bist ?sessions dp =
      Verilog.primitives ~width ^ "\n"
      ^ Verilog.emit ~width ?bist ?sessions dp
      ^ "\n"
    in
    (match (rtl_file, golden) with
    | Some file, _ ->
      let label, style =
        match styles with
        | [ one ] -> one
        | _ -> or_die (Error "--rtl needs a single --flow (testable or traditional)")
      in
      let text =
        try In_channel.with_open_bin file In_channel.input_all
        with Sys_error e -> or_die (Error e)
      in
      let r = Flow.run ~budget ~width ~style inst.B.dfg inst.B.massign ~policy:inst.B.policy in
      let bist = if bist_f || sessions_f then Some r.Flow.bist else None in
      let sessions = if sessions_f then Some r.Flow.sessions else None in
      emit_report
        (Printf.sprintf "%s/%s/%s" inst.B.tag label (Filename.basename file))
        (Equiv.verify ~vectors ~width ?bist ?sessions ~rtl:text r.Flow.datapath)
    | None, Some dir ->
      List.iter
        (fun (label, style) ->
          let r = Flow.run ~budget ~width ~style inst.B.dfg inst.B.massign ~policy:inst.B.policy in
          let current =
            full_rtl ~bist:r.Flow.bist ~sessions:r.Flow.sessions r.Flow.datapath
          in
          (* Keyed by the spec as written, not the instance tag: a DFG
             file may carry the same internal name as a benchmark tag
             while meaning a different design (single-function module
             assignment), and the two must not share a golden file. *)
          let path =
            Filename.concat dir
              (Printf.sprintf "%s__%s.v" (Verilog.sanitize spec) label)
          in
          let glabel = Printf.sprintf "%s/%s golden" inst.B.tag label in
          if update_golden then begin
            Bistpath_util.Atomic_io.mkdir_p dir;
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc current);
            if not json then Printf.printf "verify %s: updated %s\n" glabel path
          end
          else if not (Sys.file_exists path) then begin
            incr mismatches;
            report_text glabel
              [ Printf.sprintf "missing golden file %s (run --update-golden)" path ]
              ""
          end
          else begin
            let g = In_channel.with_open_bin path In_channel.input_all in
            if String.equal g current then report_text glabel [] " (byte-identical)"
            else
              match Equiv.drift ~golden:g ~current with
              | Ok [] -> report_text glabel [] " (formatting drift only)"
              | Ok diffs ->
                incr mismatches;
                report_text glabel (List.map (fun d -> "DRIFT " ^ d) diffs) ""
              | Error diags ->
                incr unparsable;
                Printf.printf "verify %s: UNPARSABLE\n" glabel;
                List.iter
                  (fun d -> Printf.printf "  %s\n" (Diagnostic.to_string d))
                  diags
          end)
        styles
    | None, None ->
      List.iter
        (fun (label, style) ->
          let r = Flow.run ~budget ~width ~style inst.B.dfg inst.B.massign ~policy:inst.B.policy in
          let dp = r.Flow.datapath in
          let variants =
            [
              ("plain", None, None);
              ("bist", Some r.Flow.bist, None);
              ("sessions", Some r.Flow.bist, Some r.Flow.sessions);
            ]
          in
          List.iter
            (fun (vname, bist, sessions) ->
              emit_report
                (Printf.sprintf "%s/%s/%s" inst.B.tag label vname)
                (Equiv.verify ~vectors ~width ?bist ?sessions
                   ~rtl:(full_rtl ?bist ?sessions dp)
                   dp))
            variants)
        styles);
    if !unparsable > 0 then exit exit_invalid_input;
    if !mismatches > 0 then exit exit_findings
  in
  let doc =
    "Parse the emitted Verilog back and prove it equivalent to the \
     in-memory data path: structural netlist match (RTL005) plus a \
     random-vector simulation cross-check (EQ002). With $(b,--golden), \
     detect semantic drift against committed RTL instead. Exit 2 on \
     mismatch, 4 on unparsable RTL."
  in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(
      const run $ common_term $ instance_arg $ width_arg $ verify_flow_arg
      $ vectors_arg $ format_arg $ rtl_arg $ bist_arg $ sessions_arg
      $ golden_arg $ update_golden_arg)

let atpg_cmd =
  let backtracks_arg =
    let doc = "PODEM backtrack budget per fault before aborting." in
    Arg.(value & opt int 10_000 & info [ "max-backtracks" ] ~docv:"N" ~doc)
  in
  let run c spec width max_backtracks =
    with_common c @@ fun budget ->
    let inst = or_die_input (load_instance ?max_errors:c.max_errors spec) in
    List.iter
      (fun (u : Massign.hw) ->
        let circuit =
          match u.Massign.kinds with
          | [ k ] -> Library.of_kind k ~width
          | kinds -> Library.alu kinds ~width
        in
        let cls =
          Telemetry.with_span "podem" ~attrs:[ ("unit", u.Massign.mid) ]
            (fun () -> Podem.classify_all ~max_backtracks ~budget circuit)
        in
        Printf.printf
          "%s: %d faults tested, %d proven redundant, %d aborted (%d distinct vectors)%s\n"
          u.Massign.mid
          (List.length cls.Podem.tested)
          (List.length cls.Podem.untestable)
          (List.length cls.Podem.aborted)
          (List.length (List.sort_uniq compare (List.map snd cls.Podem.tested)))
          (match cls.Podem.skipped with
          | [] -> ""
          | sk -> Printf.sprintf ", %d skipped" (List.length sk)))
      inst.B.massign.Massign.units
  in
  let doc =
    "Deterministic PODEM test generation for every functional unit of a design."
  in
  Cmd.v (Cmd.info "atpg" ~doc)
    Term.(const run $ common_term $ instance_arg $ width_arg $ backtracks_arg)

let export_cmd =
  let run c spec =
    with_common c @@ fun _budget ->
    let inst = or_die_input (load_instance ?max_errors:c.max_errors spec) in
    print_string (Parser.to_string inst.B.dfg)
  in
  let doc = "Print a design in the textual DFG format (re-loadable by every command)." in
  Cmd.v (Cmd.info "export" ~doc) Term.(const run $ common_term $ instance_arg)

let serve_cmd =
  let spool_arg =
    let doc =
      "Spool directory holding NDJSON job-spec files ($(b,*.ndjson), \
       $(b,*.jsonl), $(b,*.json); one JSON object per line). Use $(b,-) \
       (or omit) to read specs from stdin until EOF."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SPOOL" ~doc)
  in
  let out_arg =
    let doc =
      "Directory for per-job artifacts ($(docv)/<id>.out, <id>.err). \
       Defaults to $(b,SPOOL/results) (or $(b,./results) for stdin)."
    in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let journal_arg =
    let doc =
      "Write-ahead journal file. Defaults to $(b,SPOOL/journal.ndjson) \
       (or $(b,./journal.ndjson) for stdin)."
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let resume_arg =
    let doc =
      "Replay the journal: jobs already done keep their results \
       (exactly-once), unfinished jobs re-run. Required when the \
       journal is non-empty."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let max_attempts_arg =
    let doc = "Attempts per job before a terminal failure record." in
    Arg.(value & opt (some string) None & info [ "max-attempts" ] ~docv:"N" ~doc)
  in
  let retry_base_arg =
    let doc =
      "Backoff base in milliseconds: attempt $(i,n) waits \
       base*2^(n-1), scaled by deterministic per-job jitter in \
       [0.5, 1.5)."
    in
    Arg.(value & opt (some string) None & info [ "retry-base-ms" ] ~docv:"MS" ~doc)
  in
  let breaker_threshold_arg =
    let doc =
      "Consecutive failures that trip a job class's circuit breaker open."
    in
    Arg.(
      value & opt (some string) None & info [ "breaker-threshold" ] ~docv:"K" ~doc)
  in
  let breaker_cooldown_arg =
    let doc = "Seconds an open breaker waits before admitting a half-open probe." in
    Arg.(
      value & opt (some string) None & info [ "breaker-cooldown" ] ~docv:"SEC" ~doc)
  in
  let queue_cap_arg =
    let doc =
      "Bounded-queue capacity; spool ingestion pauses (backpressure) \
       while the queue is full."
    in
    Arg.(value & opt (some string) None & info [ "queue-cap" ] ~docv:"N" ~doc)
  in
  let job_delay_arg =
    let doc =
      "Pause this many milliseconds before each attempt — a determinism \
       aid for crash-recovery and drain testing; leave 0 in production."
    in
    Arg.(value & opt (some string) None & info [ "job-delay-ms" ] ~docv:"MS" ~doc)
  in
  let seed_arg =
    let doc = "Root seed of the deterministic per-job backoff-jitter streams." in
    Arg.(value & opt (some string) None & info [ "seed" ] ~docv:"N" ~doc)
  in
  let quiet_arg =
    let doc = "Suppress per-job progress lines on stderr." in
    Arg.(value & flag & info [ "quiet" ] ~doc)
  in
  let metrics_arg =
    let doc =
      "Write a Prometheus text-exposition snapshot to $(docv) — queue \
       depth, per-class breaker states, retry counts and job-latency \
       p50/p90/p99 — refreshed atomically (tmp+rename) while the \
       daemon runs, so external scrapers always read a complete file."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let metrics_interval_arg =
    let doc = "Milliseconds between $(b,--metrics) snapshot refreshes." in
    Arg.(
      value & opt (some string) None & info [ "metrics-interval-ms" ] ~docv:"MS" ~doc)
  in
  let trace_keep_arg =
    let doc =
      "With $(b,--trace-dir), keep at most $(docv) per-job trace files \
       on disk (oldest are removed first)."
    in
    Arg.(value & opt (some string) None & info [ "trace-keep" ] ~docv:"N" ~doc)
  in
  let workers_arg =
    let doc =
      "Fleet mode: fork $(docv) crash-isolated worker processes that claim \
       jobs from a shared lease spool (lock-free atomic renames) while the \
       supervisor only ingests, watches heartbeats and recovers dead \
       workers' leases. 0 (the default) runs jobs in-process."
    in
    Arg.(value & opt (some string) None & info [ "workers" ] ~docv:"N" ~doc)
  in
  let heartbeat_interval_arg =
    let doc = "Fleet worker heartbeat period in milliseconds." in
    Arg.(
      value
      & opt (some string) None
      & info [ "heartbeat-interval-ms" ] ~docv:"MS" ~doc)
  in
  let lease_expiry_arg =
    let doc =
      "A fleet worker silent for more than $(docv) milliseconds is presumed \
       wedged: it is killed and its leases are stolen back to the pending \
       queue."
    in
    Arg.(
      value & opt (some string) None & info [ "lease-expiry-ms" ] ~docv:"MS" ~doc)
  in
  let fleet_term =
    Term.(
      const (fun w hb exp -> (w, hb, exp))
      $ workers_arg $ heartbeat_interval_arg $ lease_expiry_arg)
  in
  let run c spool out journal resume max_attempts retry_base breaker_k breaker_cd
      queue_cap job_delay seed quiet metrics metrics_interval trace_keep
      (workers, heartbeat_interval, lease_expiry) cache_o =
    with_common c @@ fun _budget ->
    let source =
      match spool with
      | None | Some "-" -> Service.Stdin
      | Some dir -> Service.Spool_dir dir
    in
    let dc = Service.default_config source in
    let cache_dir =
      if not cache_o.cache_on then None
      else
        Some
          (Option.value cache_o.cache_dir
             ~default:
               (Filename.concat
                  (match source with Service.Spool_dir d -> d | Service.Stdin -> ".")
                  "cache"))
    in
    let cfg =
      {
        dc with
        Service.out_dir = Option.value out ~default:dc.Service.out_dir;
        journal_path = Option.value journal ~default:dc.Service.journal_path;
        resume;
        max_attempts =
          Option.value
            (pos_int_of ~flag:"--max-attempts" max_attempts)
            ~default:dc.Service.max_attempts;
        retry_base_ms =
          nonneg_float_of ~flag:"--retry-base-ms"
            ~default:dc.Service.retry_base_ms retry_base;
        breaker_threshold =
          Option.value
            (pos_int_of ~flag:"--breaker-threshold" breaker_k)
            ~default:dc.Service.breaker_threshold;
        breaker_cooldown_s =
          nonneg_float_of ~flag:"--breaker-cooldown"
            ~default:dc.Service.breaker_cooldown_s breaker_cd;
        queue_cap =
          Option.value
            (pos_int_of ~flag:"--queue-cap" queue_cap)
            ~default:dc.Service.queue_cap;
        job_delay_ms = nonneg_int_of ~flag:"--job-delay-ms" ~default:0 job_delay;
        default_timeout_s = c.timeout;
        default_leaf_budget = c.leaf_budget;
        seed =
          Option.value (pos_int_of ~flag:"--seed" seed) ~default:dc.Service.seed;
        verbose = not quiet;
        metrics_path = metrics;
        metrics_interval_ms =
          Option.value
            (pos_int_of ~flag:"--metrics-interval-ms" metrics_interval)
            ~default:dc.Service.metrics_interval_ms;
        trace_dir = c.trace_dir;
        trace_keep =
          Option.value
            (pos_int_of ~flag:"--trace-keep" trace_keep)
            ~default:dc.Service.trace_keep;
        cache_dir;
        cache_max_mb = cache_o.cache_max_mb;
        workers =
          nonneg_int_of ~flag:"--workers" ~default:dc.Service.workers workers;
        heartbeat_interval_ms =
          Option.value
            (pos_int_of ~flag:"--heartbeat-interval-ms" heartbeat_interval)
            ~default:dc.Service.heartbeat_interval_ms;
        lease_expiry_ms =
          Option.value
            (pos_int_of ~flag:"--lease-expiry-ms" lease_expiry)
            ~default:dc.Service.lease_expiry_ms;
      }
    in
    let dispatch (cfg : Service.config) =
      if cfg.workers > 0 then Fleet.run cfg else Service.run cfg
    in
    match dispatch cfg with
    | exception Sys_error msg ->
      (* setup problems (missing spool dir, refused journal) are
         invalid input, not an internal error *)
      prerr_endline ("synth: " ^ Diagnostic.to_string (Diagnostic.error msg));
      exit exit_invalid_input
    | stats ->
      (* one machine-parsable summary line on stdout; artifacts live in
         the results directory *)
      Printf.printf
        "{\"accepted\":%d,\"completed\":%d,\"degraded\":%d,\"failed\":%d,\
         \"rejected_specs\":%d,\"retries\":%d,\"breaker_trips\":%d,\
         \"journal_errors\":%d,\"pending\":%d,\"drained\":%b,\"workers\":%d,\
         \"worker_deaths_signal\":%d,\"worker_deaths_exit\":%d,\
         \"lease_steals\":%d,\"worker_restarts\":%d}\n"
        stats.Service.accepted stats.Service.completed stats.Service.degraded
        stats.Service.failed stats.Service.rejected_specs stats.Service.retries
        stats.Service.breaker_trips stats.Service.journal_errors
        stats.Service.pending stats.Service.drained stats.Service.workers
        stats.Service.worker_deaths_signal stats.Service.worker_deaths_exit
        stats.Service.lease_steals stats.Service.worker_restarts;
      (* Worker-death causes, each named distinctly: a signal death is
         outside pressure (OOM killer, chaos), a nonzero exit is a
         worker-loop bug worth a report, a heartbeat-expiry steal is a
         wedged worker the fleet healed around. None of them changes
         the exit-code protocol — every affected job was re-run or
         recorded as failed, and those outcomes are what exit codes
         report. *)
      if stats.Service.worker_deaths_signal > 0 then
        Printf.eprintf
          "synth: %d worker(s) died by signal; their leases were recovered \
           and re-run\n"
          stats.Service.worker_deaths_signal;
      if stats.Service.worker_deaths_exit > 0 then
        Printf.eprintf
          "synth: %d worker(s) exited nonzero (worker-loop error, not a job \
           failure)\n"
          stats.Service.worker_deaths_exit;
      if stats.Service.lease_steals > 0 then
        Printf.eprintf
          "synth: %d lease(s) stolen from heartbeat-expired worker(s)\n"
          stats.Service.lease_steals;
      if stats.Service.worker_restarts > 0 then
        Printf.eprintf "synth: %d replacement worker(s) forked\n"
          stats.Service.worker_restarts;
      (* Exit-3 triage, most actionable cause first. "failed" now means
         accepted jobs that exhausted their attempts — spec rejections
         are counted (and reported) separately, and budget-truncated
         jobs are "degraded", not failures: their best-so-far results
         were committed. *)
      if stats.Service.drained && stats.Service.pending > 0 then begin
        Printf.eprintf
          "synth: degraded: drain requested with %d job(s) pending (rerun with \
           --resume to finish them)\n"
          stats.Service.pending;
        exit exit_degraded
      end
      else if stats.Service.failed > 0 || stats.Service.rejected_specs > 0 then begin
        if stats.Service.failed > 0 then
          Printf.eprintf "synth: %d job(s) failed permanently\n" stats.Service.failed;
        if stats.Service.rejected_specs > 0 then
          Printf.eprintf "synth: %d job spec(s) rejected\n" stats.Service.rejected_specs;
        exit exit_degraded
      end
      else if stats.Service.degraded > 0 then begin
        Printf.eprintf
          "synth: degraded: %d job(s) budget-truncated (best-so-far results \
           committed)\n"
          stats.Service.degraded;
        exit exit_degraded
      end
  in
  let doc =
    "Run as a supervised batch service: crash-isolated jobs from a spool \
     directory or stdin, with retries, circuit breakers and a crash-safe \
     journal ($(b,--resume) continues after a kill)."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ common_term $ spool_arg $ out_arg $ journal_arg $ resume_arg
      $ max_attempts_arg $ retry_base_arg $ breaker_threshold_arg
      $ breaker_cooldown_arg $ queue_cap_arg $ job_delay_arg $ seed_arg
      $ quiet_arg $ metrics_arg $ metrics_interval_arg $ trace_keep_arg
      $ fleet_term $ cache_term)

let cache_cmd =
  (* maintenance works on the directory, enabled or not: no --cache
     flag here, just --cache-dir (with the CLI default) *)
  let dir_arg =
    let doc = "Result-cache directory to operate on." in
    Arg.(value & opt string ".bistpath-cache" & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let open_dir dir =
    match Store.open_ ~dir () with
    | store -> store
    | exception Sys_error msg ->
      prerr_endline ("synth: " ^ Diagnostic.to_string (Diagnostic.error msg));
      exit exit_invalid_input
  in
  let stats_cmd =
    let run dir =
      let s = Store.stats (open_dir dir) in
      Printf.printf "dir: %s\nentries: %d\nbytes: %d\n" dir s.Store.entries
        s.Store.bytes
    in
    let doc = "Entry count and on-disk size of the result cache." in
    Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ dir_arg)
  in
  let gc_cmd =
    let max_mb_arg =
      let doc = "Evict least-recently-used entries until the cache fits $(docv) megabytes." in
      Arg.(required & opt (some string) None & info [ "cache-max-mb" ] ~docv:"MB" ~doc)
    in
    let run dir max_mb =
      let max_mb =
        match pos_int_of ~flag:"--cache-max-mb" (Some max_mb) with
        | Some mb -> mb
        | None -> assert false
      in
      let removed = Store.gc (open_dir dir) ~max_bytes:(max_mb * 1024 * 1024) in
      Printf.printf "evicted: %d\n" removed
    in
    let doc = "Evict least-recently-used cache entries down to a size cap." in
    Cmd.v (Cmd.info "gc" ~doc) Term.(const run $ dir_arg $ max_mb_arg)
  in
  let clear_cmd =
    let run dir =
      let removed = Store.clear (open_dir dir) in
      Printf.printf "removed: %d\n" removed
    in
    let doc = "Remove every entry from the result cache." in
    Cmd.v (Cmd.info "clear" ~doc) Term.(const run $ dir_arg)
  in
  let doc =
    "Inspect and maintain the content-addressed result cache \
     ($(b,stats), $(b,gc), $(b,clear))."
  in
  Cmd.group (Cmd.info "cache" ~doc) [ stats_cmd; gc_cmd; clear_cmd ]

let list_cmd =
  let run () =
    List.iter
      (fun tag ->
        match B.by_tag tag with
        | None -> ()
        | Some inst ->
          Printf.printf "%-8s %2d ops, %d steps, %s\n" tag
            (List.length inst.B.dfg.Bistpath_dfg.Dfg.ops)
            (Bistpath_dfg.Dfg.num_csteps inst.B.dfg)
            (Bistpath_dfg.Massign.describe inst.B.massign inst.B.dfg))
      B.all_tags
  in
  let doc = "List the built-in benchmark DFGs." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let () =
  let doc = "BIST-aware data path allocation (Parulkar/Gupta/Breuer, DAC 1995)" in
  let info = Cmd.info "synth" ~version:"1.0.0" ~doc in
  let cmds =
    [ run_cmd; compare_cmd; tables_cmd; figures_cmd; ablation_cmd; rtl_cmd;
      dot_cmd; coverage_cmd; atpg_cmd; tb_cmd; vcd_cmd; area_cmd; pareto_cmd;
      check_cmd; analyze_cmd; verify_cmd; export_cmd; serve_cmd; cache_cmd;
      list_cmd ]
  in
  (* A first argument that is neither a subcommand nor an option is a DFG
     spec: treat `synth data/Paulin.dfg --stats` as `synth run ...`. *)
  let argv =
    let names = List.map Cmd.name cmds in
    match Array.to_list Sys.argv with
    | exe :: first :: rest
      when String.length first > 0 && first.[0] <> '-'
           && not (List.mem first names) ->
      Array.of_list (exe :: "run" :: first :: rest)
    | _ -> Sys.argv
  in
  exit (Cmd.eval ~argv (Cmd.group ~default:run_term info cmds))
