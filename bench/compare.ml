(* Benchmark regression gate: diffs fresh BENCH_telemetry.json /
   BENCH_parallel.json / BENCH_service.json runs against a committed
   baseline and fails loudly (exit 1) when a wall-time entry regressed
   beyond tolerance.

   Raw nanosecond timings are machine-dependent, so the default mode is
   *calibrated*: the median current/baseline ratio across all compared
   entries estimates the machine-speed factor, and each entry is judged
   by how far it departs from that shared factor. A uniformly 2x-slower
   CI runner therefore passes, while one stage blowing up relative to
   its peers fails. --absolute opts out (useful when baseline and run
   come from the same machine, e.g. the perturbation self-test in CI).

   Exit codes: 0 within tolerance, 1 regression, 2 usage or I/O error. *)

module Json = Bistpath_util.Json

let telemetry_file = "BENCH_telemetry.json"
let parallel_file = "BENCH_parallel.json"
let service_file = "BENCH_service.json"
let cache_file = "BENCH_cache.json"

let usage () =
  prerr_endline
    "usage: compare [--baseline FILE] [--update] [--tolerance PCT] [--min-ns NS]\n\
    \               [--jobs N] [--absolute] [--dir DIR]\n\n\
     Compares BENCH_telemetry.json, BENCH_parallel.json,\n\
     BENCH_service.json and BENCH_cache.json (in DIR, default .)\n\
     against the baseline (default BENCH_baseline.json).\n\n\
    \  --update      write the baseline from the current BENCH files and exit\n\
    \  --tolerance   allowed slowdown per entry, percent (default 25)\n\
    \  --min-ns      ignore entries whose baseline is below this floor\n\
    \                (default 10000 ns: sub-10us spans are scheduler noise)\n\
    \  --jobs        only compare telemetry entries recorded at this pool width\n\
    \  --absolute    skip median-ratio machine calibration\n";
  exit 2

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("compare: " ^ s); exit 2) fmt

let read_json path =
  if not (Sys.file_exists path) then fail "%s: no such file (run bench/main.exe first?)" path;
  let text = In_channel.with_open_text path In_channel.input_all in
  match Json.parse text with
  | Ok v -> v
  | Error e -> fail "%s: invalid JSON: %s" path e

let mem_num name obj = Option.bind (Json.member name obj) Json.to_num
let mem_str name obj = Option.bind (Json.member name obj) Json.to_str
let mem_int name obj = Option.bind (Json.member name obj) Json.to_int

(* --- entry extraction: (key, ns) per BENCH record ------------------ *)

(* Span names repeat across benches (and nest), so the telemetry key is
   bench-qualified; duplicate keys within one file sum, keeping the key
   space stable however the span tree is shaped. *)
let telemetry_entries ~jobs json =
  match Json.to_list json with
  | None -> fail "%s: expected a top-level array" telemetry_file
  | Some records ->
    List.filter_map
      (fun r ->
        match (mem_str "bench" r, mem_str "stage" r, mem_num "ns" r) with
        | Some bench, Some stage, Some ns ->
          let keep =
            match jobs with None -> true | Some j -> mem_int "jobs" r = Some j
          in
          if keep && ns >= 0.0 then
            Some (Printf.sprintf "telemetry/%s/%s" bench stage, ns)
          else None
        | _ -> None)
      records

let parallel_entries json =
  match Json.to_list json with
  | None -> fail "%s: expected a top-level array" parallel_file
  | Some records ->
    List.concat_map
      (fun r ->
        match (mem_str "stage" r, mem_str "bench" r) with
        | Some stage, Some bench ->
          let entry side name =
            match mem_num name r with
            | Some ns when ns >= 0.0 ->
              [ (Printf.sprintf "parallel/%s/%s/%s" stage bench side, ns) ]
            | _ -> []
          in
          entry "seq" "seq_ns" @ entry "par" "par_ns"
        | _ -> [])
      records

let service_entries json =
  match Json.to_list json with
  | None -> fail "%s: expected a top-level array" service_file
  | Some records ->
    List.filter_map
      (fun r ->
        match (mem_str "scenario" r, mem_num "wall_ns" r) with
        | Some scenario, Some ns when ns >= 0.0 ->
          Some ("service/" ^ scenario, ns)
        | _ -> None)
      records

(* Cold captures the full-pipeline cost, warm the cache-served path;
   gating both keeps an eye on store overhead as well as flow speed.
   (Warm entries are usually under --min-ns and drop out of the diff —
   by design: microsecond-scale cache reads are scheduler noise.) *)
let cache_entries json =
  match Json.to_list json with
  | None -> fail "%s: expected a top-level array" cache_file
  | Some records ->
    List.concat_map
      (fun r ->
        match mem_str "bench" r with
        | Some bench ->
          let entry side name =
            match mem_num name r with
            | Some ns when ns >= 0.0 ->
              [ (Printf.sprintf "cache/%s/%s" bench side, ns) ]
            | _ -> []
          in
          entry "cold" "cold_ns" @ entry "warm" "warm_ns"
        | None -> [])
      records

let collect_entries ~dir ~jobs =
  let in_dir f = Filename.concat dir f in
  let all =
    telemetry_entries ~jobs (read_json (in_dir telemetry_file))
    @ parallel_entries (read_json (in_dir parallel_file))
    @ service_entries (read_json (in_dir service_file))
    @ cache_entries (read_json (in_dir cache_file))
  in
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (k, ns) ->
      match Hashtbl.find_opt tbl k with
      | Some prev -> Hashtbl.replace tbl k (prev +. ns)
      | None ->
        Hashtbl.add tbl k ns;
        order := k :: !order)
    all;
  List.rev_map (fun k -> (k, Hashtbl.find tbl k)) !order |> List.rev

(* --- baseline I/O --------------------------------------------------- *)

let write_baseline path ~jobs entries =
  let fields =
    List.map (fun (k, ns) -> (k, Json.Num (Float.round ns))) entries
  in
  let doc =
    Json.Obj
      [ ("jobs", Json.Num (float_of_int (Option.value jobs ~default:0)));
        ("entries", Json.Obj fields);
      ]
  in
  Bistpath_util.Atomic_io.write_file path (Json.to_string doc ^ "\n");
  Printf.printf "compare: wrote %s (%d entries)\n" path (List.length fields)

let read_baseline path =
  let json = read_json path in
  match Option.bind (Json.member "entries" json) (fun e ->
      match e with Json.Obj fields -> Some fields | _ -> None)
  with
  | None -> fail "%s: expected {\"jobs\":N,\"entries\":{...}}" path
  | Some fields ->
    List.filter_map
      (fun (k, v) -> match Json.to_num v with Some ns -> Some (k, ns) | None -> None)
      fields

(* --- comparison ----------------------------------------------------- *)

let median = function
  | [] -> 1.0
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let () =
  let baseline_path = ref "BENCH_baseline.json" in
  let dir = ref "." in
  let tolerance = ref 25.0 in
  let min_ns = ref 10_000.0 in
  let jobs = ref None in
  let absolute = ref false in
  let update = ref false in
  let rec parse_args = function
    | [] -> ()
    | "--baseline" :: v :: rest ->
      baseline_path := v;
      parse_args rest
    | "--dir" :: v :: rest ->
      dir := v;
      parse_args rest
    | "--tolerance" :: v :: rest -> (
      match float_of_string_opt v with
      | Some t when t >= 0.0 ->
        tolerance := t;
        parse_args rest
      | _ -> fail "--tolerance %s: expected a non-negative number" v)
    | "--min-ns" :: v :: rest -> (
      match float_of_string_opt v with
      | Some t when t >= 0.0 ->
        min_ns := t;
        parse_args rest
      | _ -> fail "--min-ns %s: expected a non-negative number" v)
    | "--jobs" :: v :: rest -> (
      match int_of_string_opt v with
      | Some n when n >= 1 ->
        jobs := Some n;
        parse_args rest
      | _ -> fail "--jobs %s: expected a positive integer" v)
    | "--absolute" :: rest ->
      absolute := true;
      parse_args rest
    | "--update" :: rest ->
      update := true;
      parse_args rest
    | ("--help" | "-h") :: _ -> usage ()
    | a :: _ -> fail "unknown argument %s (try --help)" a
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let current = collect_entries ~dir:!dir ~jobs:!jobs in
  if current = [] then fail "no comparable entries found in the BENCH files";
  if !update then write_baseline !baseline_path ~jobs:!jobs current
  else begin
    let base = read_baseline !baseline_path in
    let base_tbl = Hashtbl.create 64 in
    List.iter (fun (k, ns) -> Hashtbl.replace base_tbl k ns) base;
    let compared =
      List.filter_map
        (fun (k, cur) ->
          match Hashtbl.find_opt base_tbl k with
          | Some b when b >= !min_ns && b > 0.0 -> Some (k, b, cur)
          | _ -> None)
        current
    in
    if compared = [] then
      fail "no entries shared with %s exceed --min-ns %.0f" !baseline_path !min_ns;
    let cal =
      if !absolute then 1.0
      else median (List.map (fun (_, b, c) -> c /. b) compared)
    in
    let cal = if cal <= 0.0 then 1.0 else cal in
    let limit = 1.0 +. (!tolerance /. 100.0) in
    let regressions =
      List.filter (fun (_, b, c) -> c /. b /. cal > limit) compared
    in
    let missing =
      List.filter (fun (k, _) -> not (List.mem_assoc k current)) base
    in
    Printf.printf
      "compare: %d entr%s compared (tolerance %.0f%%, min %.0f ns%s)\n"
      (List.length compared)
      (if List.length compared = 1 then "y" else "ies")
      !tolerance !min_ns
      (if !absolute then ", absolute"
       else Printf.sprintf ", machine factor %.2fx" cal);
    List.iter
      (fun (k, _) -> Printf.printf "  note: %s missing from the current run\n" k)
      missing;
    List.iter
      (fun (k, b, c) ->
        Printf.printf "  REGRESSION %-45s baseline %12.0f ns -> %12.0f ns (%.2fx%s)\n"
          k b c (c /. b)
          (if !absolute then "" else Printf.sprintf ", %.2fx calibrated" (c /. b /. cal)))
      regressions;
    if regressions <> [] then begin
      Printf.printf "compare: %d regression(s) beyond %.0f%%\n"
        (List.length regressions) !tolerance;
      exit 1
    end
    else print_endline "compare: ok"
  end
