(* Benchmark harness: regenerates every table and figure of the paper
   (Tables I-III, Figs. 1-6), runs the extension experiments (ablation,
   gate-level BIST coverage), then times the pipeline stages with
   Bechamel (one Test.make per table/figure family). *)

module B = Bistpath_benchmarks.Benchmarks
module Flow = Bistpath_core.Flow
module Testable_alloc = Bistpath_core.Testable_alloc
module Report = Bistpath_report.Report
module Bist_sim = Bistpath_gatelevel.Bist_sim
module Telemetry = Bistpath_telemetry.Telemetry

let section title body =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n\n";
  print_endline body

let coverage_section () =
  let buf = Buffer.create 512 in
  List.iter
    (fun tag ->
      match B.by_tag tag with
      | None -> ()
      | Some inst ->
        let r =
          Flow.run ~style:(Flow.Testable Testable_alloc.default_options) inst.B.dfg
            inst.B.massign ~policy:inst.B.policy
        in
        let rep = Bist_sim.run ~width:8 ~pattern_count:255 r.Flow.datapath r.Flow.bist in
        Buffer.add_string buf (Format.asprintf "%s:@.%a@.@." tag Bist_sim.pp rep))
    [ "ex1"; "Paulin" ];
  Buffer.contents buf

let run_reports () =
  section "Table I (paper: 30-46% BIST-area reduction, same register counts)"
    (Report.table1 ());
  section "Table II (paper: testable flow needs fewer CBILBOs)" (Report.table2 ());
  section "Table III (paper: ours beats RALLOC and SYNTEST on Paulin)"
    (Report.table3 ());
  section "Fig. 2 (ex1 scheduled DFG)" (Report.fig2 ());
  section "Fig. 4 (conflict graph, SD/MCS, walkthrough)" (Report.fig4 ());
  section "Fig. 5 (ex1 data paths, testable vs traditional)" (Report.fig5 ());
  section "Fig. 1/3 (simple I-paths)" (Report.fig1_3 ());
  section "Fig. 6 (register merge cases)" (Report.fig6 ());
  section "Ablation (ours)" (Report.ablation ());
  section "Transparent I-paths (ours)" (Report.transparency ());
  section "Area vs test time Pareto (ours)" (Report.pareto ());
  section "Partial scan vs BIST (ours)" (Report.scan_vs_bist ());
  section "I/O conversion-cost sensitivity (ours)" (Report.io_sensitivity ());
  section "Width sweep (ours)" (Report.width_sweep ());
  section "Module-library testability: SCOAP + PODEM (ours)" (Report.testability ());
  section "Gate-level BIST coverage (ours; paper asserts high coverage)"
    (coverage_section ())

(* --- per-stage telemetry ------------------------------------------ *)

(* One recorded flow per benchmark: print the span tree and dump every
   span as one JSON record so the repo's perf trajectory has
   machine-readable data points. *)
let telemetry_tags = [ "ex1"; "ex2"; "Tseng1"; "Paulin"; "ewf" ]

let telemetry_section () =
  Printf.printf "\n================================================================\n";
  Printf.printf "Per-stage telemetry (spans, counters; one flow per benchmark)\n";
  Printf.printf "================================================================\n\n";
  let records = Buffer.create 1024 in
  List.iter
    (fun tag ->
      match B.by_tag tag with
      | None -> ()
      | Some inst ->
        let _, r =
          Telemetry.collect (fun () ->
              Flow.run ~style:(Flow.Testable Testable_alloc.default_options)
                inst.B.dfg inst.B.massign ~policy:inst.B.policy)
        in
        Printf.printf "%s:\n%s\n" tag (Telemetry.summary_table r);
        List.iter
          (fun (s : Telemetry.span) ->
            if Buffer.length records > 0 then Buffer.add_string records ",\n";
            Buffer.add_string records
              (Printf.sprintf
                 "{\"bench\":\"%s\",\"stage\":\"%s\",\"ns\":%Ld,\"counters\":{%s}}"
                 (Telemetry.json_escape tag)
                 (Telemetry.json_escape s.Telemetry.name)
                 s.Telemetry.dur_ns
                 (String.concat ","
                    (List.map
                       (fun (k, v) ->
                         Printf.sprintf "\"%s\":%d" (Telemetry.json_escape k) v)
                       s.Telemetry.counters))))
          (Telemetry.spans r))
    telemetry_tags;
  Telemetry.write_file "BENCH_telemetry.json"
    ("[\n" ^ Buffer.contents records ^ "\n]\n");
  print_endline "(wrote BENCH_telemetry.json)"

(* --- Bechamel timing benches ------------------------------------- *)

open Bechamel
open Toolkit

let flow_test tag =
  let inst = match B.by_tag tag with Some i -> i | None -> assert false in
  Test.make ~name:(Printf.sprintf "flow:%s" tag)
    (Staged.stage (fun () ->
         ignore
           (Flow.run ~style:(Flow.Testable Testable_alloc.default_options) inst.B.dfg
              inst.B.massign ~policy:inst.B.policy)))

let table_tests =
  [
    Test.make ~name:"table1" (Staged.stage (fun () -> ignore (Report.table1 ())));
    Test.make ~name:"table2" (Staged.stage (fun () -> ignore (Report.table2 ())));
    Test.make ~name:"table3" (Staged.stage (fun () -> ignore (Report.table3 ())));
    Test.make ~name:"fig4+fig5"
      (Staged.stage (fun () ->
           ignore (Report.fig4 ());
           ignore (Report.fig5 ())));
    Test.make ~name:"fig6" (Staged.stage (fun () -> ignore (Report.fig6 ())));
  ]

let alloc_tests = List.map flow_test [ "ex1"; "ex2"; "Tseng1"; "Paulin"; "ewf" ]

let podem_test =
  Test.make ~name:"podem:multiplier-w4"
    (Staged.stage (fun () ->
         ignore
           (Bistpath_gatelevel.Podem.classify_all
              (Bistpath_gatelevel.Library.array_multiplier ~width:4))))

let pareto_test =
  let inst = B.ex1 () in
  let r =
    Flow.run ~style:(Flow.Testable Testable_alloc.default_options) inst.B.dfg
      inst.B.massign ~policy:inst.B.policy
  in
  Test.make ~name:"pareto:ex1"
    (Staged.stage (fun () -> ignore (Bistpath_bist.Pareto.explore r.Flow.datapath)))

let rtl_test =
  let inst = B.paulin () in
  let r =
    Flow.run ~style:(Flow.Testable Testable_alloc.default_options) inst.B.dfg
      inst.B.massign ~policy:inst.B.policy
  in
  Test.make ~name:"rtl+goldens:Paulin"
    (Staged.stage (fun () ->
         let golden =
           Bistpath_rtl.Rtl_sim.golden_signatures r.Flow.datapath r.Flow.bist
             r.Flow.sessions
         in
         ignore
           (Bistpath_rtl.Verilog.emit ~bist:r.Flow.bist ~sessions:r.Flow.sessions
              r.Flow.datapath);
         ignore
           (Bistpath_rtl.Bist_wrapper.emit ~golden r.Flow.datapath r.Flow.bist
              r.Flow.sessions)))

let coverage_test =
  let inst = B.ex1 () in
  let r =
    Flow.run ~style:(Flow.Testable Testable_alloc.default_options) inst.B.dfg
      inst.B.massign ~policy:inst.B.policy
  in
  Test.make ~name:"faultsim:ex1"
    (Staged.stage (fun () ->
         ignore (Bist_sim.run ~width:8 ~pattern_count:63 r.Flow.datapath r.Flow.bist)))

let benchmark () =
  let test =
    Test.make_grouped ~name:"bistpath"
      (table_tests @ alloc_tests @ [ podem_test; pareto_test; rtl_test; coverage_test ])
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  Printf.printf "\n================================================================\n";
  Printf.printf "Timing (Bechamel, monotonic clock, ns per run)\n";
  Printf.printf "================================================================\n\n";
  Hashtbl.iter
    (fun measure tbl ->
      if String.equal measure (Measure.label Instance.monotonic_clock) then begin
        let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) tbl [] in
        List.iter
          (fun (name, result) ->
            match Analyze.OLS.estimates result with
            | Some (est :: _) -> Printf.printf "  %-28s %14.0f ns/run\n" name est
            | Some [] | None -> Printf.printf "  %-28s (no estimate)\n" name)
          (List.sort compare rows)
      end)
    results

let () =
  run_reports ();
  telemetry_section ();
  match Sys.getenv_opt "BISTPATH_SKIP_TIMING" with
  | Some _ -> print_endline "\n(timing skipped: BISTPATH_SKIP_TIMING set)"
  | None -> benchmark ()
