(* Benchmark harness: regenerates every table and figure of the paper
   (Tables I-III, Figs. 1-6), runs the extension experiments (ablation,
   gate-level BIST coverage), then times the pipeline stages with
   Bechamel (one Test.make per table/figure family). *)

module B = Bistpath_benchmarks.Benchmarks
module Flow = Bistpath_core.Flow
module Testable_alloc = Bistpath_core.Testable_alloc
module Report = Bistpath_report.Report
module Bist_sim = Bistpath_gatelevel.Bist_sim
module Telemetry = Bistpath_telemetry.Telemetry
module Pool = Bistpath_parallel.Pool
module Par = Bistpath_parallel.Par
module Absint = Bistpath_absint.Absint
module Control = Bistpath_datapath.Control

let section title body =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n\n";
  print_endline body

(* Runs inside a [run_reports] pool task; the parallelism budget is
   already spent on the concurrent report sections, so the inner fault
   grading stays sequential rather than flooding the pool further. *)
let coverage_section () =
  let seq = Pool.create ~jobs:1 () in
  List.map
    (fun tag ->
      match B.by_tag tag with
      | None -> ""
      | Some inst ->
        let r =
          Flow.run ~style:(Flow.Testable Testable_alloc.default_options) inst.B.dfg
            inst.B.massign ~policy:inst.B.policy
        in
        let rep =
          Bist_sim.run ~width:8 ~pattern_count:255 ~pool:seq r.Flow.datapath
            r.Flow.bist
        in
        Format.asprintf "%s:@.%a@.@." tag Bist_sim.pp rep)
    [ "ex1"; "Paulin" ]
  |> String.concat ""

let run_reports () =
  (* Section bodies are pure strings over independent instances; build
     them concurrently on the shared pool and print in page order. *)
  let sections =
    [
      ( "Table I (paper: 30-46% BIST-area reduction, same register counts)",
        fun () -> Report.table1 () );
      ("Table II (paper: testable flow needs fewer CBILBOs)", fun () -> Report.table2 ());
      ( "Table III (paper: ours beats RALLOC and SYNTEST on Paulin)",
        fun () -> Report.table3 () );
      ("Fig. 2 (ex1 scheduled DFG)", fun () -> Report.fig2 ());
      ("Fig. 4 (conflict graph, SD/MCS, walkthrough)", fun () -> Report.fig4 ());
      ("Fig. 5 (ex1 data paths, testable vs traditional)", fun () -> Report.fig5 ());
      ("Fig. 1/3 (simple I-paths)", fun () -> Report.fig1_3 ());
      ("Fig. 6 (register merge cases)", fun () -> Report.fig6 ());
      ("Ablation (ours)", fun () -> Report.ablation ());
      ("Transparent I-paths (ours)", fun () -> Report.transparency ());
      ("Area vs test time Pareto (ours)", fun () -> Report.pareto ());
      ("Partial scan vs BIST (ours)", fun () -> Report.scan_vs_bist ());
      ("I/O conversion-cost sensitivity (ours)", fun () -> Report.io_sensitivity ());
      ("Width sweep (ours)", fun () -> Report.width_sweep ());
      ( "Module-library testability: SCOAP + PODEM (ours)",
        fun () -> Report.testability () );
      ( "Gate-level BIST coverage (ours; paper asserts high coverage)",
        fun () -> coverage_section () );
    ]
  in
  Par.map_list ~chunk:1 (fun (title, body) -> (title, body ())) sections
  |> List.iter (fun (title, body) -> section title body)

(* --- per-stage telemetry ------------------------------------------ *)

(* One recorded flow per benchmark: print the span tree and dump every
   span as one JSON record so the repo's perf trajectory has
   machine-readable data points. *)
let telemetry_tags = [ "ex1"; "ex2"; "Tseng1"; "Paulin"; "ewf" ]

let telemetry_section () =
  Printf.printf "\n================================================================\n";
  Printf.printf "Per-stage telemetry (spans, counters; one flow per benchmark)\n";
  Printf.printf "================================================================\n\n";
  let records = Buffer.create 1024 in
  List.iter
    (fun tag ->
      match B.by_tag tag with
      | None -> ()
      | Some inst ->
        let _, r =
          Telemetry.collect (fun () ->
              Flow.run ~style:(Flow.Testable Testable_alloc.default_options)
                inst.B.dfg inst.B.massign ~policy:inst.B.policy)
        in
        Printf.printf "%s:\n%s\n" tag (Telemetry.summary_table r);
        List.iter
          (fun (s : Telemetry.span) ->
            if Buffer.length records > 0 then Buffer.add_string records ",\n";
            Buffer.add_string records
              (Printf.sprintf
                 "{\"bench\":\"%s\",\"stage\":\"%s\",\"jobs\":%d,\"ns\":%Ld,\"counters\":{%s}}"
                 (Telemetry.json_escape tag)
                 (Telemetry.json_escape s.Telemetry.name)
                 (Pool.configured_jobs ())
                 s.Telemetry.dur_ns
                 (String.concat ","
                    (List.map
                       (fun (k, v) ->
                         Printf.sprintf "\"%s\":%d" (Telemetry.json_escape k) v)
                       s.Telemetry.counters))))
          (Telemetry.spans r))
    telemetry_tags;
  Bistpath_resilience.Inject.fire_sys_error "telemetry.write";
  Telemetry.write_file "BENCH_telemetry.json"
    ("[\n" ^ Buffer.contents records ^ "\n]\n");
  print_endline "(wrote BENCH_telemetry.json)"

(* --- sequential vs parallel wall time ----------------------------- *)

(* Times the parallelized hot paths at jobs=1 against a multi-domain
   pool on fixed workloads and records the ratio, so the perf
   trajectory shows what the engine buys on this machine. Stages where
   the pool cannot help (a single core) honestly report speedup <= 1. *)
let parallel_section () =
  Printf.printf "\n================================================================\n";
  Printf.printf "Parallel engine: sequential vs parallel wall time per stage\n";
  Printf.printf "================================================================\n\n";
  let par_jobs =
    match Pool.configured_jobs () with 1 -> 4 | n -> n
  in
  let seq_pool = Pool.create ~jobs:1 () in
  let par_pool = Pool.create ~jobs:par_jobs () in
  let time f =
    (* one warmup, then best of three *)
    ignore (f ());
    let best = ref Int64.max_int in
    for _ = 1 to 3 do
      let t0 = Monotonic_clock.now () in
      ignore (f ());
      let dt = Int64.sub (Monotonic_clock.now ()) t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let mult = Bistpath_gatelevel.Library.array_multiplier ~width:4 in
  let mult_faults = Bistpath_gatelevel.Fault.collapsed mult in
  let rng = Bistpath_util.Prng.create 7 in
  let patterns =
    Bistpath_gatelevel.Fault_sim.random_operand_patterns rng ~width:4 ~count:1024
  in
  let paulin = match B.by_tag "Paulin" with Some i -> i | None -> assert false in
  let paulin_dp =
    (Flow.run ~style:(Flow.Testable Testable_alloc.default_options) paulin.B.dfg
       paulin.B.massign ~policy:paulin.B.policy)
      .Flow.datapath
  in
  let stages =
    [
      ( "fault_sim", "multiplier-w4",
        fun pool ->
          ignore
            (Bistpath_gatelevel.Fault_sim.run_operand_patterns ~pool mult ~width:4
               ~faults:mult_faults ~patterns) );
      ( "podem", "multiplier-w4",
        fun pool -> ignore (Bistpath_gatelevel.Podem.classify_all ~pool mult) );
      ( "pareto", "Paulin",
        fun pool -> ignore (Bistpath_bist.Pareto.explore ~pool paulin_dp) );
    ]
  in
  let records =
    List.map
      (fun (stage, bench, f) ->
        let seq_ns = time (fun () -> f seq_pool) in
        let par_ns = time (fun () -> f par_pool) in
        let speedup = Int64.to_float seq_ns /. Int64.to_float (Int64.max 1L par_ns) in
        Printf.printf "  %-10s %-15s seq %10Ld ns   par(j=%d) %10Ld ns   speedup %.2fx\n"
          stage bench seq_ns par_jobs par_ns speedup;
        Printf.sprintf
          "{\"stage\":\"%s\",\"bench\":\"%s\",\"jobs\":%d,\"seq_ns\":%Ld,\"par_ns\":%Ld,\"speedup\":%.3f}"
          stage bench par_jobs seq_ns par_ns speedup)
      stages
  in
  Pool.shutdown par_pool;
  Bistpath_resilience.Inject.fire_sys_error "telemetry.write";
  Telemetry.write_file "BENCH_parallel.json"
    ("[\n" ^ String.concat ",\n" records ^ "\n]\n");
  print_endline "\n(wrote BENCH_parallel.json)"

(* --- service mode: supervised batch throughput -------------------- *)

module Service = Bistpath_service.Service
module Inject = Bistpath_resilience.Inject

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

(* Fleet throughput: the same job stream through the forked worker
   fleet at widths 1/4/16, driving the real synth binary — this bench
   process already runs domains, and [Unix.fork] is forbidden once
   domains exist, so [Fleet.run] cannot be called in-process. Records
   land in BENCH_service.json under scenario "fleet-wN" so the compare
   gate tracks fleet wall time alongside the in-process service. *)
let fleet_widths = [ 1; 4; 16 ]

let fleet_records () =
  let synth =
    Filename.concat
      (Filename.concat (Filename.dirname Sys.executable_name) "..")
      (Filename.concat "bin" "synth.exe")
  in
  if not (Sys.file_exists synth) then begin
    Printf.printf "\n  (fleet throughput skipped: %s not built)\n" synth;
    []
  end
  else begin
    let jobs =
      List.concat
        (List.init 6 (fun batch ->
             List.concat_map
               (fun tag ->
                 [
                   Printf.sprintf {|{"id":"%s-run-%d","spec":"%s","pipeline":"run"}|}
                     tag batch tag;
                   Printf.sprintf {|{"id":"%s-rtl-%d","spec":"%s","pipeline":"rtl"}|}
                     tag batch tag;
                 ])
               [ "ex1"; "ex2"; "Tseng1"; "Paulin" ]))
    in
    let mem_int name json =
      Option.bind (Bistpath_util.Json.member name json) Bistpath_util.Json.to_int
    in
    List.filter_map
      (fun workers ->
        let dir =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "bistpath-bench-fleet-%d-w%d" (Unix.getpid ()) workers)
        in
        rm_rf dir;
        Unix.mkdir dir 0o755;
        Out_channel.with_open_text (Filename.concat dir "jobs.ndjson") (fun oc ->
            List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) jobs);
        let stats_file = Filename.concat dir "stats.json" in
        let out =
          Unix.openfile stats_file [ Unix.O_WRONLY; O_CREAT; O_TRUNC ] 0o644
        in
        let pid =
          Unix.create_process synth
            [| synth; "serve"; dir; "--quiet"; "--workers";
               string_of_int workers |]
            Unix.stdin out Unix.stderr
        in
        Unix.close out;
        let t0 = Monotonic_clock.now () in
        let code =
          match snd (Unix.waitpid [] pid) with
          | Unix.WEXITED c -> c
          | Unix.WSIGNALED s -> 128 + s
          | Unix.WSTOPPED _ -> -1
        in
        let wall_ns = Int64.sub (Monotonic_clock.now ()) t0 in
        let stats =
          match
            Bistpath_util.Json.parse
              (In_channel.with_open_bin stats_file In_channel.input_all)
          with
          | Ok j -> Some j
          | Error _ -> None
        in
        rm_rf dir;
        match stats with
        | Some j when code = 0 ->
          let field name = Option.value ~default:0 (mem_int name j) in
          Printf.printf
            "  fleet-w%-2d %d jobs in %10Ld ns   ok %d  degraded %d  failed \
             %d  retries %d\n"
            workers (field "accepted") wall_ns (field "completed")
            (field "degraded") (field "failed") (field "retries");
          Some
            (Printf.sprintf
               "{\"scenario\":\"fleet-w%d\",\"jobs\":%d,\"wall_ns\":%Ld,\
                \"completed\":%d,\"degraded\":%d,\"failed\":%d,\"retries\":%d,\
                \"breaker_trips\":0,\"journal_errors\":%d}"
               workers (field "accepted") wall_ns (field "completed")
               (field "degraded") (field "failed") (field "retries")
               (field "journal_errors"))
        | _ ->
          Printf.printf "  fleet-w%-2d FAILED (exit %d), record dropped\n"
            workers code;
          None)
      fleet_widths
  end

(* One spool of real jobs through [Service.run], clean and under
   injected faults: the records capture batch wall time plus how much
   work the retry/breaker machinery did, so the perf trajectory shows
   what supervision costs. *)
let service_section () =
  Printf.printf "\n================================================================\n";
  Printf.printf "Service mode: supervised batch, clean vs injected faults\n";
  Printf.printf "================================================================\n\n";
  let jobs =
    List.concat_map
      (fun tag ->
        [
          Printf.sprintf {|{"id":"%s-run","spec":"%s","pipeline":"run"}|} tag tag;
          Printf.sprintf {|{"id":"%s-rtl","spec":"%s","pipeline":"rtl"}|} tag tag;
        ])
      [ "ex1"; "ex2"; "Tseng1"; "Paulin" ]
  in
  let scenarios =
    [
      ("clean", []);
      ( "injected",
        [ ("service.worker", 0.3); ("service.result_io", 0.2);
          ("service.journal", 0.2) ] );
    ]
  in
  let records =
    List.map
      (fun (scenario, faults) ->
        let dir =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "bistpath-bench-serve-%d-%s" (Unix.getpid ()) scenario)
        in
        rm_rf dir;
        Unix.mkdir dir 0o755;
        Out_channel.with_open_text (Filename.concat dir "jobs.ndjson") (fun oc ->
            List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) jobs);
        Inject.configure faults;
        let cfg =
          { (Service.default_config (Service.Spool_dir dir)) with
            Service.retry_base_ms = 1.0;
            verbose = false }
        in
        let t0 = Monotonic_clock.now () in
        let stats = Service.run cfg in
        let wall_ns = Int64.sub (Monotonic_clock.now ()) t0 in
        Inject.configure [];
        rm_rf dir;
        Printf.printf
          "  %-9s %d jobs in %10Ld ns   ok %d  degraded %d  failed %d  retries \
           %d  breaker trips %d  journal errors %d\n"
          scenario stats.Service.accepted wall_ns stats.Service.completed
          stats.Service.degraded stats.Service.failed stats.Service.retries
          stats.Service.breaker_trips stats.Service.journal_errors;
        Printf.sprintf
          "{\"scenario\":\"%s\",\"jobs\":%d,\"wall_ns\":%Ld,\"completed\":%d,\
           \"degraded\":%d,\"failed\":%d,\"retries\":%d,\"breaker_trips\":%d,\
           \"journal_errors\":%d}"
          scenario stats.Service.accepted wall_ns stats.Service.completed
          stats.Service.degraded stats.Service.failed stats.Service.retries
          stats.Service.breaker_trips stats.Service.journal_errors)
      scenarios
  in
  let records = records @ fleet_records () in
  Inject.fire_sys_error "telemetry.write";
  Telemetry.write_file "BENCH_service.json"
    ("[\n" ^ String.concat ",\n" records ^ "\n]\n");
  print_endline "\n(wrote BENCH_service.json)"

(* --- result cache: cold vs warm flow ------------------------------ *)

(* One cold then one warm full flow per benchmark through a fresh
   content-addressed store: the records pin the cold/warm flow-span
   wall times (the warm run should be several times faster — every
   stage is a hit) plus the hit/miss counters proving the reuse. *)
let cache_section () =
  Printf.printf "\n================================================================\n";
  Printf.printf "Result cache: cold vs warm flow wall time per benchmark\n";
  Printf.printf "================================================================\n\n";
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bistpath-bench-cache-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let store = Bistpath_cache.Store.open_ ~dir () in
  let flow_ns inst =
    let _, r =
      Telemetry.collect (fun () ->
          Flow.run ~cache:store
            ~style:(Flow.Testable Testable_alloc.default_options)
            inst.B.dfg inst.B.massign ~policy:inst.B.policy)
    in
    let ns =
      match
        List.find_opt
          (fun (s : Telemetry.span) -> String.equal s.Telemetry.name "flow")
          (Telemetry.spans r)
      with
      | Some s -> s.Telemetry.dur_ns
      | None -> 0L
    in
    (ns, r)
  in
  let records =
    List.filter_map
      (fun tag ->
        match B.by_tag tag with
        | None -> None
        | Some inst ->
          let cold_ns, _ = flow_ns inst in
          let warm_ns, warm = flow_ns inst in
          let hits = Telemetry.counter warm "cache.hit" in
          let misses = Telemetry.counter warm "cache.miss" in
          let speedup =
            Int64.to_float cold_ns /. Int64.to_float (Int64.max 1L warm_ns)
          in
          Printf.printf
            "  %-8s cold %10Ld ns   warm %10Ld ns   speedup %6.1fx   warm \
             hits/misses %d/%d\n"
            tag cold_ns warm_ns speedup hits misses;
          Some
            (Printf.sprintf
               "{\"bench\":\"%s\",\"cold_ns\":%Ld,\"warm_ns\":%Ld,\
                \"speedup\":%.3f,\"warm_hits\":%d,\"warm_misses\":%d}"
               tag cold_ns warm_ns speedup hits misses))
      telemetry_tags
  in
  rm_rf dir;
  Inject.fire_sys_error "telemetry.write";
  Telemetry.write_file "BENCH_cache.json"
    ("[\n" ^ String.concat ",\n" records ^ "\n]\n");
  print_endline "\n(wrote BENCH_cache.json)"

(* Abstract interpretation: fixpoint cost and proven width savings per
   benchmark. Records land in BENCH_absint.json for trend inspection;
   the compare.exe regression gate does not read this file (solver
   iteration counts are structural, not timing, and the savings are
   deterministic). *)
let absint_section () =
  Printf.printf "\n================================================================\n";
  Printf.printf "Abstract interpretation: fixpoint cost and narrowing savings\n";
  Printf.printf "================================================================\n\n";
  let records =
    List.filter_map
      (fun tag ->
        match B.by_tag tag with
        | None -> None
        | Some inst ->
          let r =
            Flow.run
              ~style:(Flow.Testable Testable_alloc.default_options)
              inst.B.dfg inst.B.massign ~policy:inst.B.policy
          in
          let t0 = Telemetry.now () in
          let (res, plan), tr =
            Telemetry.collect (fun () ->
                let res =
                  Absint.solve_dfg ~width:8 ~policy:inst.B.policy inst.B.dfg
                in
                let control = Control.build r.Flow.datapath in
                let plan = Absint.narrow_plan ~width:8 r.Flow.datapath control in
                (res, plan))
          in
          let ns = Int64.sub (Telemetry.now ()) t0 in
          let iterations = Telemetry.counter tr "absint.iterations" in
          let widenings = Telemetry.counter tr "absint.widenings" in
          let pct = Absint.saved_percent plan in
          Printf.printf
            "  %-8s %10Ld ns   %3d iteration(s)   %2d widening(s)   saved \
             %3d/%3d bit(s) (%4.1f%%)\n"
            tag ns iterations widenings plan.Absint.saved_bits
            plan.Absint.total_bits pct;
          Some
            (Printf.sprintf
               "{\"bench\":\"%s\",\"solve_ns\":%Ld,\"iterations\":%d,\
                \"widenings\":%d,\"dfg_widened\":%b,\"saved_bits\":%d,\
                \"total_bits\":%d,\"saved_percent\":%.1f}"
               tag ns iterations widenings res.Absint.widened
               plan.Absint.saved_bits plan.Absint.total_bits pct))
      telemetry_tags
  in
  Telemetry.write_file "BENCH_absint.json"
    ("[\n" ^ String.concat ",\n" records ^ "\n]\n");
  print_endline "\n(wrote BENCH_absint.json)"

(* --- Bechamel timing benches ------------------------------------- *)

open Bechamel
open Toolkit

let flow_test tag =
  let inst = match B.by_tag tag with Some i -> i | None -> assert false in
  Test.make ~name:(Printf.sprintf "flow:%s" tag)
    (Staged.stage (fun () ->
         ignore
           (Flow.run ~style:(Flow.Testable Testable_alloc.default_options) inst.B.dfg
              inst.B.massign ~policy:inst.B.policy)))

let table_tests =
  [
    Test.make ~name:"table1" (Staged.stage (fun () -> ignore (Report.table1 ())));
    Test.make ~name:"table2" (Staged.stage (fun () -> ignore (Report.table2 ())));
    Test.make ~name:"table3" (Staged.stage (fun () -> ignore (Report.table3 ())));
    Test.make ~name:"fig4+fig5"
      (Staged.stage (fun () ->
           ignore (Report.fig4 ());
           ignore (Report.fig5 ())));
    Test.make ~name:"fig6" (Staged.stage (fun () -> ignore (Report.fig6 ())));
  ]

let alloc_tests = List.map flow_test [ "ex1"; "ex2"; "Tseng1"; "Paulin"; "ewf" ]

let podem_test =
  Test.make ~name:"podem:multiplier-w4"
    (Staged.stage (fun () ->
         ignore
           (Bistpath_gatelevel.Podem.classify_all
              (Bistpath_gatelevel.Library.array_multiplier ~width:4))))

let pareto_test =
  let inst = B.ex1 () in
  let r =
    Flow.run ~style:(Flow.Testable Testable_alloc.default_options) inst.B.dfg
      inst.B.massign ~policy:inst.B.policy
  in
  Test.make ~name:"pareto:ex1"
    (Staged.stage (fun () -> ignore (Bistpath_bist.Pareto.explore r.Flow.datapath)))

let rtl_test =
  let inst = B.paulin () in
  let r =
    Flow.run ~style:(Flow.Testable Testable_alloc.default_options) inst.B.dfg
      inst.B.massign ~policy:inst.B.policy
  in
  Test.make ~name:"rtl+goldens:Paulin"
    (Staged.stage (fun () ->
         let golden =
           Bistpath_rtl.Rtl_sim.golden_signatures r.Flow.datapath r.Flow.bist
             r.Flow.sessions
         in
         ignore
           (Bistpath_rtl.Verilog.emit ~bist:r.Flow.bist ~sessions:r.Flow.sessions
              r.Flow.datapath);
         ignore
           (Bistpath_rtl.Bist_wrapper.emit ~golden r.Flow.datapath r.Flow.bist
              r.Flow.sessions)))

let coverage_test =
  let inst = B.ex1 () in
  let r =
    Flow.run ~style:(Flow.Testable Testable_alloc.default_options) inst.B.dfg
      inst.B.massign ~policy:inst.B.policy
  in
  Test.make ~name:"faultsim:ex1"
    (Staged.stage (fun () ->
         ignore (Bist_sim.run ~width:8 ~pattern_count:63 r.Flow.datapath r.Flow.bist)))

let benchmark () =
  let test =
    Test.make_grouped ~name:"bistpath"
      (table_tests @ alloc_tests @ [ podem_test; pareto_test; rtl_test; coverage_test ])
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  Printf.printf "\n================================================================\n";
  Printf.printf "Timing (Bechamel, monotonic clock, ns per run)\n";
  Printf.printf "================================================================\n\n";
  Hashtbl.iter
    (fun measure tbl ->
      if String.equal measure (Measure.label Instance.monotonic_clock) then begin
        let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) tbl [] in
        List.iter
          (fun (name, result) ->
            match Analyze.OLS.estimates result with
            | Some (est :: _) -> Printf.printf "  %-28s %14.0f ns/run\n" name est
            | Some [] | None -> Printf.printf "  %-28s (no estimate)\n" name)
          (List.sort compare rows)
      end)
    results

let () =
  run_reports ();
  telemetry_section ();
  parallel_section ();
  service_section ();
  cache_section ();
  absint_section ();
  match Sys.getenv_opt "BISTPATH_SKIP_TIMING" with
  | Some _ -> print_endline "\n(timing skipped: BISTPATH_SKIP_TIMING set)"
  | None -> benchmark ()
