(* Deterministic chaos harness for the `synth serve` worker fleet.

   Drives the *real* binary: generates a seeded NDJSON job stream (a
   clean/injected/poisoned mix), runs it through a multi-worker fleet
   while SIGKILLing workers on a seeded schedule, then re-runs the same
   stream through a clean in-process reference and checks the fleet's
   crash-recovery contract:

     1. exit-code protocol — the supervisor exits 0 (all clean) or 3
        (failed/rejected jobs), never crashes;
     2. exactly-once — the merged journal (supervisor + worker shards)
        holds at most one terminal record per job id;
     3. byte-identity — every artifact the fleet produced is
        byte-identical to the clean reference's artifact for that id;
        with no injection and no poison, the artifact *sets* match too;
     4. parse-back equivalence — every completed `rtl` job's artifact
        parses back structurally and functionally equivalent to the
        data path re-synthesized from its spec (byte-identity says the
        fleet wrote the right bytes; this says the bytes mean what the
        flow meant).

   Every random choice (job mix, poison placement, kill times, victim
   slots) derives from --seed, so a failure reproduces with the same
   command line. Kill *timing* still races the scheduler — a scheduled
   kill may find its victim slot between jobs or already respawning —
   but the invariants above hold under any interleaving, which is the
   point.

   Exit codes: 0 contract holds, 1 violation, 2 usage or I/O error. *)

module Json = Bistpath_util.Json
module Prng = Bistpath_util.Prng
module Journal = Bistpath_service.Journal
module Job = Bistpath_service.Job
module Bench = Bistpath_benchmarks.Benchmarks
module Flow = Bistpath_core.Flow
module Equiv = Bistpath_rtl.Equiv

let usage () =
  prerr_endline
    "usage: chaos [--synth PATH] [--dir DIR] [--jobs N] [--workers N]\n\
    \             [--kills K] [--seed S] [--poisoned N] [--inject SPEC]\n\
    \             [--job-delay-ms MS] [--keep]\n\n\
     Runs a seeded job mix through `synth serve --workers N` while\n\
     SIGKILLing workers on a seeded schedule, then verifies exit codes,\n\
     exactly-once journalling and byte-identity against a clean\n\
     in-process reference run.\n\n\
    \  --synth         synth binary (default: ../bin/synth.exe beside this exe)\n\
    \  --dir           scratch directory (default: under $TMPDIR)\n\
    \  --jobs          total jobs in the stream (default 400)\n\
    \  --workers       fleet width for the chaos run (default 4)\n\
    \  --kills         scheduled worker SIGKILLs (default 4)\n\
    \  --seed          root seed for mix + schedule (default 42)\n\
    \  --poisoned      jobs with an unknown spec, rejected by design (default 8)\n\
    \  --inject        BISTPATH_INJECT spec for the chaos run (e.g.\n\
    \                  service.worker=0.05); reference always runs clean\n\
    \  --job-delay-ms  per-attempt delay, stretches the kill window (default 5)\n\
    \  --keep          keep the scratch directory for inspection\n";
  exit 2

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("chaos: " ^ s); exit 2) fmt
let violation = ref 0

let bad fmt =
  Printf.ksprintf
    (fun s ->
      incr violation;
      prerr_endline ("chaos: VIOLATION: " ^ s))
    fmt

let note fmt = Printf.ksprintf (fun s -> prerr_endline ("chaos: " ^ s)) fmt

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_lines path lines =
  Out_channel.with_open_text path (fun oc ->
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) lines)

(* --- job stream ----------------------------------------------------- *)

let specs = [| "ex1"; "ex2"; "Tseng1"; "Paulin" |]
let pipelines = [| "run"; "rtl" |]

(* Poison slots are a seeded sample without replacement so the same
   seed always poisons the same ids regardless of --jobs order. *)
let gen_jobs prng ~count ~poisoned =
  let poison = Hashtbl.create 16 in
  let budget = min poisoned count in
  while Hashtbl.length poison < budget do
    Hashtbl.replace poison (Prng.int prng count) ()
  done;
  List.init count (fun i ->
      let id = Printf.sprintf "job-%04d" i in
      let spec =
        if Hashtbl.mem poison i then "no-such-benchmark"
        else specs.(Prng.int prng (Array.length specs))
      in
      let pipeline = pipelines.(Prng.int prng (Array.length pipelines)) in
      ( id,
        Hashtbl.mem poison i,
        Printf.sprintf {|{"id":"%s","spec":"%s","pipeline":"%s"}|} id spec
          pipeline ))

(* --- subprocess plumbing -------------------------------------------- *)

let spawn ?(env = []) ~stdout_file argv =
  let out =
    Unix.openfile stdout_file [ Unix.O_WRONLY; O_CREAT; O_TRUNC ] 0o644
  in
  let full_env =
    Array.append (Unix.environment ()) (Array.of_list env)
  in
  let pid =
    Unix.create_process_env argv.(0) argv full_env Unix.stdin out Unix.stderr
  in
  Unix.close out;
  pid

let wait_exit pid =
  match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED c -> c
  | Unix.WSIGNALED s -> 128 + s
  | Unix.WSTOPPED _ -> fail "child stopped unexpectedly"

(* --- chaos schedule -------------------------------------------------- *)

let worker_pid_of_slot workers_json slot =
  if not (Sys.file_exists workers_json) then None
  else
    match Json.parse (read_file workers_json) with
    | Error _ -> None (* mid-rewrite; the file is replaced atomically *)
    | Ok j -> (
      match Json.member "workers" j with
      | Some (Json.Obj fields) -> (
        match List.assoc_opt (string_of_int slot) fields with
        | Some v -> (
          match Json.to_int v with
          | Some pid when pid > 1 -> Some pid
          | _ -> None)
        | None -> None)
      | _ -> None)

(* Sleep in slices, bailing out as soon as the supervisor exits so a
   fast run does not hang the harness on the remaining schedule. *)
let sup_done = ref None

let sup_alive sup =
  match !sup_done with
  | Some _ -> false
  | None -> (
    match Unix.waitpid [ Unix.WNOHANG ] sup with
    | 0, _ -> true
    | _, Unix.WEXITED c ->
      sup_done := Some c;
      false
    | _, Unix.WSIGNALED s ->
      sup_done := Some (128 + s);
      false
    | _, Unix.WSTOPPED _ -> true)

let sleep_while_alive sup seconds =
  let slices = int_of_float (seconds /. 0.02) in
  let i = ref 0 in
  while !i < max 1 slices && sup_alive sup do
    Unix.sleepf 0.02;
    incr i
  done

let run_schedule prng ~sup ~workers ~kills ~workers_json =
  let landed = ref 0 in
  for k = 1 to kills do
    if sup_alive sup then begin
      (* 0.15-0.65 s apart: early enough to land mid-batch, spread
         enough that respawned workers get killed too. *)
      let delay = 0.15 +. (float_of_int (Prng.int prng 500) /. 1000.0) in
      sleep_while_alive sup delay;
      let slot = Prng.int prng workers in
      if sup_alive sup then
        match worker_pid_of_slot workers_json slot with
        | Some pid ->
          (try
             Unix.kill pid Sys.sigkill;
             incr landed;
             note "kill %d/%d: SIGKILL worker slot %d (pid %d)" k kills slot
               pid
           with Unix.Unix_error _ -> note "kill %d/%d: slot %d already gone" k kills slot)
        | None -> note "kill %d/%d: slot %d has no live pid, skipped" k kills slot
    end
  done;
  !landed

(* --- verification ---------------------------------------------------- *)

let terminal_counts events =
  let tbl = Hashtbl.create 64 in
  let bump id =
    Hashtbl.replace tbl id (1 + Option.value ~default:0 (Hashtbl.find_opt tbl id))
  in
  List.iter
    (function
      | Journal.Done { id; _ } | Journal.Give_up { id; _ } -> bump id
      | Journal.Accept _ | Start _ | Fail _ | Interrupted _ | Drain -> ())
    events;
  tbl

let out_files dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".out")
    |> List.sort compare

let stats_field stdout_file name =
  match Json.parse (read_file stdout_file) with
  | Error _ -> None
  | Ok j -> Option.bind (Json.member name j) Json.to_int

let () =
  let synth = ref "" in
  let dir = ref "" in
  let jobs = ref 400 in
  let workers = ref 4 in
  let kills = ref 4 in
  let seed = ref 42 in
  let poisoned = ref 8 in
  let inject = ref "" in
  let job_delay = ref 5 in
  let keep = ref false in
  let int_arg flag v rest k =
    match int_of_string_opt v with
    | Some n when n >= 0 -> k n rest
    | _ -> fail "%s %s: expected a non-negative integer" flag v
  in
  let rec parse_args = function
    | [] -> ()
    | "--synth" :: v :: rest ->
      synth := v;
      parse_args rest
    | "--dir" :: v :: rest ->
      dir := v;
      parse_args rest
    | "--jobs" :: v :: rest ->
      int_arg "--jobs" v rest (fun n r -> jobs := max 1 n; parse_args r)
    | "--workers" :: v :: rest ->
      int_arg "--workers" v rest (fun n r -> workers := max 1 n; parse_args r)
    | "--kills" :: v :: rest ->
      int_arg "--kills" v rest (fun n r -> kills := n; parse_args r)
    | "--seed" :: v :: rest ->
      int_arg "--seed" v rest (fun n r -> seed := n; parse_args r)
    | "--poisoned" :: v :: rest ->
      int_arg "--poisoned" v rest (fun n r -> poisoned := n; parse_args r)
    | "--inject" :: v :: rest ->
      inject := v;
      parse_args rest
    | "--job-delay-ms" :: v :: rest ->
      int_arg "--job-delay-ms" v rest (fun n r -> job_delay := n; parse_args r)
    | "--keep" :: rest ->
      keep := true;
      parse_args rest
    | ("--help" | "-h") :: _ -> usage ()
    | a :: _ -> fail "unknown argument %s (try --help)" a
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let synth =
    if !synth <> "" then !synth
    else
      Filename.concat
        (Filename.concat (Filename.dirname Sys.executable_name) "..")
        (Filename.concat "bin" "synth.exe")
  in
  if not (Sys.file_exists synth) then
    fail "%s: synth binary not found (build bin/synth.exe or pass --synth)" synth;
  let root =
    if !dir <> "" then !dir
    else
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "bistpath-chaos-%d" (Unix.getpid ()))
  in
  rm_rf root;
  Unix.mkdir root 0o755;
  let chaos_dir = Filename.concat root "chaos" in
  let ref_dir = Filename.concat root "reference" in
  Unix.mkdir chaos_dir 0o755;
  Unix.mkdir ref_dir 0o755;

  let prng = Prng.create !seed in
  let stream = gen_jobs (Prng.split prng) ~count:!jobs ~poisoned:!poisoned in
  let lines = List.map (fun (_, _, l) -> l) stream in
  let poison_count = List.length (List.filter (fun (_, p, _) -> p) stream) in
  write_lines (Filename.concat chaos_dir "jobs.ndjson") lines;
  write_lines (Filename.concat ref_dir "jobs.ndjson") lines;
  note "%d jobs (%d poisoned), workers %d, kills %d, seed %d%s" !jobs
    poison_count !workers !kills !seed
    (if !inject <> "" then ", inject " ^ !inject else "");

  (* --- clean in-process reference --------------------------------- *)
  let ref_stdout = Filename.concat root "reference.stats.json" in
  let ref_code =
    wait_exit
      (spawn ~stdout_file:ref_stdout
         [| synth; "serve"; ref_dir; "--quiet"; "--seed"; string_of_int !seed |])
  in
  let want_ref = if poison_count > 0 then 3 else 0 in
  if ref_code <> want_ref then
    bad "reference run exited %d, expected %d" ref_code want_ref;

  (* --- chaos fleet run --------------------------------------------- *)
  let chaos_stdout = Filename.concat root "chaos.stats.json" in
  let argv =
    [| synth; "serve"; chaos_dir; "--quiet";
       "--workers"; string_of_int !workers;
       "--seed"; string_of_int !seed;
       "--heartbeat-interval-ms"; "100";
       "--lease-expiry-ms"; "3000";
       "--job-delay-ms"; string_of_int !job_delay;
    |]
  in
  let env =
    if !inject = "" then []
    else
      [ "BISTPATH_INJECT=" ^ !inject;
        "BISTPATH_INJECT_SEED=" ^ string_of_int !seed ]
  in
  sup_done := None;
  let sup = spawn ~env ~stdout_file:chaos_stdout argv in
  let journal = Filename.concat chaos_dir "journal.ndjson" in
  let workers_json = Filename.concat (journal ^ ".fleet") "workers.json" in
  let landed =
    run_schedule (Prng.split prng) ~sup ~workers:!workers ~kills:!kills
      ~workers_json
  in
  while sup_alive sup do
    Unix.sleepf 0.05
  done;
  let chaos_code = Option.value ~default:(-1) !sup_done in
  note "chaos run exited %d; %d/%d scheduled kills landed" chaos_code landed
    !kills;

  (* 1. exit-code protocol: 0 clean, 3 degraded/failed/rejected. 3
     without poison or injection is still legal — a job SIGKILLed on
     its final retry fails permanently — but 3 must then be explained
     by the stats, checked below. Anything else is a crash. *)
  if chaos_code <> 0 && chaos_code <> 3 then
    bad "chaos run exited %d (protocol allows 0 or 3)" chaos_code;
  (match
     ( stats_field chaos_stdout "failed",
       stats_field chaos_stdout "rejected_specs",
       stats_field chaos_stdout "degraded" )
   with
  | Some failed, Some rejected, Some degraded ->
    if chaos_code = 3 && failed + rejected + degraded = 0 then
      bad "exit 3 with zero failed/rejected/degraded jobs";
    if chaos_code = 0 && failed + rejected > 0 then
      bad "exit 0 despite %d failed + %d rejected jobs" failed rejected
  | _ -> bad "chaos stats JSON missing or unparsable in %s" chaos_stdout);

  (* 2. exactly-once across the merged journal. *)
  let events =
    try Journal.replay_merged journal
    with Sys_error e ->
      bad "merged journal replay failed: %s" e;
      []
  in
  let terminals = terminal_counts events in
  Hashtbl.iter
    (fun id n -> if n > 1 then bad "job %s has %d terminal records" id n)
    terminals;
  let states = Journal.fold_state events in
  List.iter
    (fun (st : Journal.job_state) ->
      if not st.terminal then
        bad "job %s never reached a terminal record" st.job.Bistpath_service.Job.id)
    states;
  if List.length states <> !jobs then
    bad "journal accepted %d jobs, stream had %d" (List.length states) !jobs;

  (* 3. byte-identity against the reference. *)
  let chaos_results = Filename.concat chaos_dir "results" in
  let ref_results = Filename.concat ref_dir "results" in
  let chaos_outs = out_files chaos_results in
  let ref_outs = out_files ref_results in
  List.iter
    (fun f ->
      let c = Filename.concat chaos_results f in
      let r = Filename.concat ref_results f in
      if not (Sys.file_exists r) then
        bad "%s produced by the fleet but not the reference" f
      else if read_file c <> read_file r then
        bad "%s differs between fleet and reference" f)
    chaos_outs;
  if !inject = "" then begin
    (* No injection: every non-poisoned job must complete in both runs
       (a kill only delays a job, it cannot lose it), so the artifact
       sets must be exactly equal. *)
    if chaos_outs <> ref_outs then
      bad "artifact sets differ: fleet %d files, reference %d files"
        (List.length chaos_outs) (List.length ref_outs);
    if List.length chaos_outs <> !jobs - poison_count then
      bad "expected %d artifacts, fleet produced %d" (!jobs - poison_count)
        (List.length chaos_outs)
  end;
  note "verified %d artifacts byte-identical, %d terminal records"
    (List.length chaos_outs) (Hashtbl.length terminals);

  (* 4. parse-back equivalence on every completed rtl artifact. Same
     spec + same defaults = byte-identical artifact, so each distinct
     (spec, bytes) pair is verified once and later artifacts only pay
     a byte comparison. *)
  let verified_rtl = Hashtbl.create 8 in
  let rtl_checked = ref 0 in
  List.iter
    (fun (id, poisoned, line) ->
      let out = Filename.concat chaos_results (id ^ ".out") in
      if (not poisoned) && Sys.file_exists out then
        match Job.parse_line ~default_id:id line with
        | Error _ | Ok { Job.pipeline = Job.Run | Pareto | Coverage | Export
                         | Check | Verify; _ } -> ()
        | Ok ({ Job.pipeline = Job.Rtl; _ } as j) -> (
          match Bench.by_tag j.Job.spec with
          | None -> ()
          | Some inst ->
            incr rtl_checked;
            let rtl = read_file out in
            if Hashtbl.find_opt verified_rtl j.Job.spec <> Some rtl then begin
              let r =
                Flow.run ~width:j.Job.width
                  ~transparency:j.Job.transparency
                  ~style:(Flow.Testable Bistpath_core.Testable_alloc.default_options)
                  inst.Bench.dfg inst.Bench.massign ~policy:inst.Bench.policy
              in
              (match
                 Equiv.verify ~width:j.Job.width ~bist:r.Flow.bist ~rtl
                   r.Flow.datapath
               with
              | Error diags ->
                bad "%s: rtl artifact does not parse back (%s)" id
                  (match diags with
                  | d :: _ -> Bistpath_resilience.Diagnostic.to_string d
                  | [] -> "no diagnostics")
              | Ok rep ->
                (match rep.Equiv.structural with
                | diff :: _ ->
                  bad "%s: rtl artifact not structurally equivalent (%s)" id diff
                | [] -> ());
                (match rep.Equiv.functional with
                | Some m ->
                  bad "%s: rtl artifact disagrees with the interpreter on %s" id
                    m.Equiv.output
                | None -> ()));
              Hashtbl.replace verified_rtl j.Job.spec rtl
            end))
    stream;
  note "parse-back equivalence verified on %d rtl artifacts (%d distinct specs)"
    !rtl_checked (Hashtbl.length verified_rtl);

  (match
     ( stats_field chaos_stdout "worker_deaths_signal",
       stats_field chaos_stdout "lease_steals",
       stats_field chaos_stdout "worker_restarts" )
   with
  | Some ds, Some steals, Some restarts ->
    note "fleet stats: deaths_signal %d, lease_steals %d, restarts %d" ds
      steals restarts
  | _ -> ());

  if !keep then note "scratch kept at %s" root else rm_rf root;
  if !violation > 0 then begin
    note "%d violation(s)" !violation;
    exit 1
  end
  else print_endline "chaos: ok"
