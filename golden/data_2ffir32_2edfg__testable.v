module dp_register #(parameter WIDTH = 8) (
  input wire clk, input wire rst, input wire en,
  input wire [WIDTH-1:0] d, output reg [WIDTH-1:0] q);
  always @(posedge clk) begin
    if (rst) q <= {WIDTH{1'b0}};
    else if (en) q <= d;
  end
endmodule

module tpg_register #(parameter WIDTH = 8, parameter [WIDTH-1:0] SEED = 1) (
  input wire clk, input wire rst, input wire en, input wire test_mode,
  input wire [WIDTH-1:0] d, output reg [WIDTH-1:0] q);
  wire fb = q[WIDTH-1] ^ (^(q & {{(WIDTH-4){1'b0}}, 4'b1011}));
  always @(posedge clk) begin
    if (rst) q <= SEED;
    else if (test_mode) q <= {q[WIDTH-2:0], fb};
    else if (en) q <= d;
  end
endmodule

module sa_register #(parameter WIDTH = 8) (
  input wire clk, input wire rst, input wire en, input wire test_mode,
  input wire [WIDTH-1:0] d, output reg [WIDTH-1:0] q,
  output wire [WIDTH-1:0] sig_out);
  wire fb = q[WIDTH-1] ^ (^(q & {{(WIDTH-4){1'b0}}, 4'b1011}));
  assign sig_out = q;
  always @(posedge clk) begin
    if (rst) q <= {WIDTH{1'b0}};
    else if (test_mode) q <= {q[WIDTH-2:0], fb} ^ d;
    else if (en) q <= d;
  end
endmodule

module bilbo_register #(parameter WIDTH = 8, parameter [WIDTH-1:0] SEED = 1) (
  input wire clk, input wire rst, input wire en, input wire test_mode,
  input wire compact,  // 1 = signature analysis, 0 = pattern generation
  input wire [WIDTH-1:0] d, output reg [WIDTH-1:0] q,
  output wire [WIDTH-1:0] sig_out);
  wire fb = q[WIDTH-1] ^ (^(q & {{(WIDTH-4){1'b0}}, 4'b1011}));
  assign sig_out = q;
  always @(posedge clk) begin
    if (rst) q <= SEED;
    else if (test_mode) q <= compact ? ({q[WIDTH-2:0], fb} ^ d) : {q[WIDTH-2:0], fb};
    else if (en) q <= d;
  end
endmodule

module cbilbo_register #(parameter WIDTH = 8, parameter [WIDTH-1:0] SEED = 1) (
  input wire clk, input wire rst, input wire en, input wire test_mode,
  input wire [WIDTH-1:0] d, output reg [WIDTH-1:0] q,
  output wire [WIDTH-1:0] sig_out);
  // two ranks: generator rank feeds the datapath, compactor rank
  // absorbs responses concurrently (roughly 2x register area)
  reg [WIDTH-1:0] sig;
  wire fb  = q[WIDTH-1] ^ (^(q   & {{(WIDTH-4){1'b0}}, 4'b1011}));
  wire fb2 = sig[WIDTH-1] ^ (^(sig & {{(WIDTH-4){1'b0}}, 4'b1011}));
  assign sig_out = sig;
  always @(posedge clk) begin
    if (rst) begin q <= SEED; sig <= {WIDTH{1'b0}}; end
    else if (test_mode) begin
      q   <= {q[WIDTH-2:0], fb};
      sig <= {sig[WIDTH-2:0], fb2} ^ d;
    end else if (en) q <= d;
  end
endmodule

module dp_add #(parameter WIDTH = 8) (input wire [WIDTH-1:0] a, b, output wire [WIDTH-1:0] y);
  assign y = a + b;
endmodule
module dp_sub #(parameter WIDTH = 8) (input wire [WIDTH-1:0] a, b, output wire [WIDTH-1:0] y);
  assign y = a - b;
endmodule
module dp_mul #(parameter WIDTH = 8) (input wire [WIDTH-1:0] a, b, output wire [WIDTH-1:0] y);
  assign y = a * b;
endmodule
module dp_div #(parameter WIDTH = 8) (input wire [WIDTH-1:0] a, b, output wire [WIDTH-1:0] y);
  assign y = (b == 0) ? {WIDTH{1'b1}} : a / b;
endmodule
module dp_and #(parameter WIDTH = 8) (input wire [WIDTH-1:0] a, b, output wire [WIDTH-1:0] y);
  assign y = a & b;
endmodule
module dp_or #(parameter WIDTH = 8) (input wire [WIDTH-1:0] a, b, output wire [WIDTH-1:0] y);
  assign y = a | b;
endmodule
module dp_xor #(parameter WIDTH = 8) (input wire [WIDTH-1:0] a, b, output wire [WIDTH-1:0] y);
  assign y = a ^ b;
endmodule
module dp_less #(parameter WIDTH = 8) (input wire [WIDTH-1:0] a, b, output wire [WIDTH-1:0] y);
  assign y = {{(WIDTH-1){1'b0}}, a < b};
endmodule

module fir32_datapath (
  input  wire clk,
  input  wire rst,
  input  wire test_mode,
  input  wire [1:0] test_session,
  input  wire [7:0] pin_x0,
  input  wire [7:0] pin_h0,
  input  wire [7:0] pin_x1,
  input  wire [7:0] pin_h1,
  input  wire [7:0] pin_x2,
  input  wire [7:0] pin_h2,
  input  wire [7:0] pin_x3,
  input  wire [7:0] pin_h3,
  input  wire [7:0] pin_x4,
  input  wire [7:0] pin_h4,
  input  wire [7:0] pin_x5,
  input  wire [7:0] pin_h5,
  input  wire [7:0] pin_x6,
  input  wire [7:0] pin_h6,
  input  wire [7:0] pin_x7,
  input  wire [7:0] pin_h7,
  input  wire [7:0] pin_x8,
  input  wire [7:0] pin_h8,
  input  wire [7:0] pin_x9,
  input  wire [7:0] pin_h9,
  input  wire [7:0] pin_x10,
  input  wire [7:0] pin_h10,
  input  wire [7:0] pin_x11,
  input  wire [7:0] pin_h11,
  input  wire [7:0] pin_x12,
  input  wire [7:0] pin_h12,
  input  wire [7:0] pin_x13,
  input  wire [7:0] pin_h13,
  input  wire [7:0] pin_x14,
  input  wire [7:0] pin_h14,
  input  wire [7:0] pin_x15,
  input  wire [7:0] pin_h15,
  input  wire [7:0] pin_x16,
  input  wire [7:0] pin_h16,
  input  wire [7:0] pin_x17,
  input  wire [7:0] pin_h17,
  input  wire [7:0] pin_x18,
  input  wire [7:0] pin_h18,
  input  wire [7:0] pin_x19,
  input  wire [7:0] pin_h19,
  input  wire [7:0] pin_x20,
  input  wire [7:0] pin_h20,
  input  wire [7:0] pin_x21,
  input  wire [7:0] pin_h21,
  input  wire [7:0] pin_x22,
  input  wire [7:0] pin_h22,
  input  wire [7:0] pin_x23,
  input  wire [7:0] pin_h23,
  input  wire [7:0] pin_x24,
  input  wire [7:0] pin_h24,
  input  wire [7:0] pin_x25,
  input  wire [7:0] pin_h25,
  input  wire [7:0] pin_x26,
  input  wire [7:0] pin_h26,
  input  wire [7:0] pin_x27,
  input  wire [7:0] pin_h27,
  input  wire [7:0] pin_x28,
  input  wire [7:0] pin_h28,
  input  wire [7:0] pin_x29,
  input  wire [7:0] pin_h29,
  input  wire [7:0] pin_x30,
  input  wire [7:0] pin_h30,
  input  wire [7:0] pin_x31,
  input  wire [7:0] pin_h31,
  output wire [7:0] pout_s31,
  output wire [7:0] sig_R1
);

  localparam NUM_STEPS = 32;
  reg [5:0] step;
  always @(posedge clk) begin
    if (rst) step <= 6'd0;
    else if (step <= 6'd32) step <= step + 6'd1;
  end

  wire [7:0] d_R1;
  wire [1:0] sel_R1;
  assign sel_R1 =
    (test_mode && test_session == 2'd0) ? 2'd0 :
    (test_mode && test_session == 2'd1) ? 2'd1 :
    (test_mode && test_session == 2'd2) ? 2'd2 :
    step == 6'd2 ? 2'd2 :
    step == 6'd3 ? 2'd2 :
    step == 6'd4 ? 2'd2 :
    step == 6'd5 ? 2'd2 :
    step == 6'd7 ? 2'd2 :
    step == 6'd8 ? 2'd1 :
    step == 6'd15 ? 2'd2 :
    step == 6'd16 ? 2'd0 :
    2'd0;
  assign d_R1 =
    sel_R1 == 2'd0 ? out__2a1 :
    sel_R1 == 2'd1 ? out__2a2 :
    out__2b1;
  wire en_R1;
  assign en_R1 = (step == 6'd2) || (step == 6'd3) || (step == 6'd4) || (step == 6'd5) || (step == 6'd7) || (step == 6'd8) || (step == 6'd15) || (step == 6'd16);
  wire [7:0] q_R1;
  sa_register #(.WIDTH(8)) R1 (.clk(clk), .rst(rst), .en(en_R1), .test_mode(test_mode), .d(d_R1), .q(q_R1), .sig_out(sig_R1));

  wire [7:0] d_R2;
  wire [3:0] sel_R2;
  assign sel_R2 =
    step == 6'd0 ? 4'd3 :
    step == 6'd1 ? 4'd5 :
    step == 6'd2 ? 4'd6 :
    step == 6'd3 ? 4'd9 :
    step == 6'd4 ? 4'd10 :
    step == 6'd5 ? 4'd4 :
    step == 6'd6 ? 4'd7 :
    step == 6'd7 ? 4'd0 :
    step == 6'd13 ? 4'd8 :
    step == 6'd14 ? 4'd2 :
    step == 6'd15 ? 4'd1 :
    step == 6'd30 ? 4'd2 :
    4'd0;
  assign d_R2 =
    sel_R2 == 4'd0 ? out__2a1 :
    sel_R2 == 4'd1 ? out__2a2 :
    sel_R2 == 4'd2 ? out__2b1 :
    sel_R2 == 4'd3 ? pin_h0 :
    sel_R2 == 4'd4 ? pin_h10 :
    sel_R2 == 4'd5 ? pin_h2 :
    sel_R2 == 4'd6 ? pin_h5 :
    sel_R2 == 4'd7 ? pin_x13 :
    sel_R2 == 4'd8 ? pin_x27 :
    sel_R2 == 4'd9 ? pin_x6 :
    pin_x8;
  wire en_R2;
  assign en_R2 = (step == 6'd0) || (step == 6'd1) || (step == 6'd2) || (step == 6'd3) || (step == 6'd4) || (step == 6'd5) || (step == 6'd6) || (step == 6'd7) || (step == 6'd13) || (step == 6'd14) || (step == 6'd15) || (step == 6'd30);
  wire [7:0] q_R2;
  dp_register #(.WIDTH(8)) R2 (.clk(clk), .rst(rst), .en(en_R2), .d(d_R2), .q(q_R2));

  wire [7:0] d_R3;
  wire [3:0] sel_R3;
  assign sel_R3 =
    step == 6'd2 ? 4'd3 :
    step == 6'd3 ? 4'd4 :
    step == 6'd4 ? 4'd5 :
    step == 6'd6 ? 4'd1 :
    step == 6'd11 ? 4'd6 :
    step == 6'd12 ? 4'd7 :
    step == 6'd13 ? 4'd2 :
    step == 6'd14 ? 4'd8 :
    step == 6'd15 ? 4'd0 :
    step == 6'd29 ? 4'd2 :
    4'd0;
  assign d_R3 =
    sel_R3 == 4'd0 ? out__2a1 :
    sel_R3 == 4'd1 ? out__2a2 :
    sel_R3 == 4'd2 ? out__2b1 :
    sel_R3 == 4'd3 ? pin_h4 :
    sel_R3 == 4'd4 ? pin_h7 :
    sel_R3 == 4'd5 ? pin_h9 :
    sel_R3 == 4'd6 ? pin_x22 :
    sel_R3 == 4'd7 ? pin_x24 :
    pin_x29;
  wire en_R3;
  assign en_R3 = (step == 6'd2) || (step == 6'd3) || (step == 6'd4) || (step == 6'd6) || (step == 6'd11) || (step == 6'd12) || (step == 6'd13) || (step == 6'd14) || (step == 6'd15) || (step == 6'd29);
  wire [7:0] q_R3;
  dp_register #(.WIDTH(8)) R3 (.clk(clk), .rst(rst), .en(en_R3), .d(d_R3), .q(q_R3));

  wire [7:0] d_R4;
  wire [1:0] sel_R4;
  assign sel_R4 =
    step == 6'd6 ? 2'd2 :
    step == 6'd7 ? 2'd1 :
    step == 6'd14 ? 2'd0 :
    step == 6'd28 ? 2'd2 :
    2'd0;
  assign d_R4 =
    sel_R4 == 2'd0 ? out__2a1 :
    sel_R4 == 2'd1 ? out__2a2 :
    out__2b1;
  wire en_R4;
  assign en_R4 = (step == 6'd6) || (step == 6'd7) || (step == 6'd14) || (step == 6'd28);
  wire [7:0] q_R4;
  dp_register #(.WIDTH(8)) R4 (.clk(clk), .rst(rst), .en(en_R4), .d(d_R4), .q(q_R4));

  wire [7:0] d_R5;
  wire [2:0] sel_R5;
  assign sel_R5 =
    step == 6'd3 ? 3'd3 :
    step == 6'd4 ? 3'd4 :
    step == 6'd5 ? 3'd5 :
    step == 6'd6 ? 3'd0 :
    step == 6'd12 ? 3'd2 :
    step == 6'd13 ? 3'd6 :
    step == 6'd14 ? 3'd1 :
    step == 6'd27 ? 3'd2 :
    3'd0;
  assign d_R5 =
    sel_R5 == 3'd0 ? out__2a1 :
    sel_R5 == 3'd1 ? out__2a2 :
    sel_R5 == 3'd2 ? out__2b1 :
    sel_R5 == 3'd3 ? pin_h6 :
    sel_R5 == 3'd4 ? pin_h8 :
    sel_R5 == 3'd5 ? pin_x11 :
    pin_x26;
  wire en_R5;
  assign en_R5 = (step == 6'd3) || (step == 6'd4) || (step == 6'd5) || (step == 6'd6) || (step == 6'd12) || (step == 6'd13) || (step == 6'd14) || (step == 6'd27);
  wire [7:0] q_R5;
  dp_register #(.WIDTH(8)) R5 (.clk(clk), .rst(rst), .en(en_R5), .d(d_R5), .q(q_R5));

  wire [7:0] d_R6;
  wire [2:0] sel_R6;
  assign sel_R6 =
    step == 6'd5 ? 3'd0 :
    step == 6'd9 ? 3'd3 :
    step == 6'd10 ? 3'd4 :
    step == 6'd11 ? 3'd2 :
    step == 6'd12 ? 3'd5 :
    step == 6'd13 ? 3'd1 :
    step == 6'd26 ? 3'd2 :
    3'd0;
  assign d_R6 =
    sel_R6 == 3'd0 ? out__2a1 :
    sel_R6 == 3'd1 ? out__2a2 :
    sel_R6 == 3'd2 ? out__2b1 :
    sel_R6 == 3'd3 ? pin_x18 :
    sel_R6 == 3'd4 ? pin_x20 :
    pin_x25;
  wire en_R6;
  assign en_R6 = (step == 6'd5) || (step == 6'd9) || (step == 6'd10) || (step == 6'd11) || (step == 6'd12) || (step == 6'd13) || (step == 6'd26);
  wire [7:0] q_R6;
  dp_register #(.WIDTH(8)) R6 (.clk(clk), .rst(rst), .en(en_R6), .d(d_R6), .q(q_R6));

  wire [7:0] d_R7;
  wire [2:0] sel_R7;
  assign sel_R7 =
    step == 6'd5 ? 3'd1 :
    step == 6'd10 ? 3'd2 :
    step == 6'd11 ? 3'd4 :
    step == 6'd12 ? 3'd3 :
    step == 6'd13 ? 3'd0 :
    step == 6'd25 ? 3'd2 :
    3'd0;
  assign d_R7 =
    sel_R7 == 3'd0 ? out__2a1 :
    sel_R7 == 3'd1 ? out__2a2 :
    sel_R7 == 3'd2 ? out__2b1 :
    sel_R7 == 3'd3 ? pin_h25 :
    pin_x23;
  wire en_R7;
  assign en_R7 = (step == 6'd5) || (step == 6'd10) || (step == 6'd11) || (step == 6'd12) || (step == 6'd13) || (step == 6'd25);
  wire [7:0] q_R7;
  dp_register #(.WIDTH(8)) R7 (.clk(clk), .rst(rst), .en(en_R7), .d(d_R7), .q(q_R7));

  wire [7:0] d_R8;
  wire [2:0] sel_R8;
  assign sel_R8 =
    step == 6'd4 ? 3'd1 :
    step == 6'd7 ? 3'd3 :
    step == 6'd8 ? 3'd4 :
    step == 6'd9 ? 3'd2 :
    step == 6'd10 ? 3'd6 :
    step == 6'd11 ? 3'd5 :
    step == 6'd12 ? 3'd0 :
    step == 6'd24 ? 3'd2 :
    3'd0;
  assign d_R8 =
    sel_R8 == 3'd0 ? out__2a1 :
    sel_R8 == 3'd1 ? out__2a2 :
    sel_R8 == 3'd2 ? out__2b1 :
    sel_R8 == 3'd3 ? pin_h14 :
    sel_R8 == 3'd4 ? pin_h17 :
    sel_R8 == 3'd5 ? pin_h23 :
    pin_x21;
  wire en_R8;
  assign en_R8 = (step == 6'd4) || (step == 6'd7) || (step == 6'd8) || (step == 6'd9) || (step == 6'd10) || (step == 6'd11) || (step == 6'd12) || (step == 6'd24);
  wire [7:0] q_R8;
  dp_register #(.WIDTH(8)) R8 (.clk(clk), .rst(rst), .en(en_R8), .d(d_R8), .q(q_R8));

  wire [7:0] d_R9;
  wire [2:0] sel_R9;
  assign sel_R9 =
    step == 6'd4 ? 3'd0 :
    step == 6'd8 ? 3'd2 :
    step == 6'd9 ? 3'd3 :
    step == 6'd10 ? 3'd4 :
    step == 6'd11 ? 3'd5 :
    step == 6'd12 ? 3'd1 :
    step == 6'd23 ? 3'd2 :
    3'd0;
  assign d_R9 =
    sel_R9 == 3'd0 ? out__2a1 :
    sel_R9 == 3'd1 ? out__2a2 :
    sel_R9 == 3'd2 ? out__2b1 :
    sel_R9 == 3'd3 ? pin_h19 :
    sel_R9 == 3'd4 ? pin_h20 :
    pin_h22;
  wire en_R9;
  assign en_R9 = (step == 6'd4) || (step == 6'd8) || (step == 6'd9) || (step == 6'd10) || (step == 6'd11) || (step == 6'd12) || (step == 6'd23);
  wire [7:0] q_R9;
  dp_register #(.WIDTH(8)) R9 (.clk(clk), .rst(rst), .en(en_R9), .d(d_R9), .q(q_R9));

  wire [7:0] d_R10;
  wire [3:0] sel_R10;
  assign sel_R10 =
    step == 6'd0 ? 4'd4 :
    step == 6'd1 ? 4'd10 :
    step == 6'd2 ? 4'd11 :
    step == 6'd3 ? 4'd0 :
    step == 6'd5 ? 4'd5 :
    step == 6'd6 ? 4'd6 :
    step == 6'd7 ? 4'd7 :
    step == 6'd8 ? 4'd8 :
    step == 6'd9 ? 4'd9 :
    step == 6'd10 ? 4'd3 :
    step == 6'd11 ? 4'd1 :
    step == 6'd22 ? 4'd2 :
    step == 6'd31 ? 4'd2 :
    step == 6'd32 ? 4'd2 :
    4'd0;
  assign d_R10 =
    sel_R10 == 4'd0 ? out__2a1 :
    sel_R10 == 4'd1 ? out__2a2 :
    sel_R10 == 4'd2 ? out__2b1 :
    sel_R10 == 4'd3 ? pin_h21 :
    sel_R10 == 4'd4 ? pin_x1 :
    sel_R10 == 4'd5 ? pin_x10 :
    sel_R10 == 4'd6 ? pin_x12 :
    sel_R10 == 4'd7 ? pin_x15 :
    sel_R10 == 4'd8 ? pin_x17 :
    sel_R10 == 4'd9 ? pin_x19 :
    sel_R10 == 4'd10 ? pin_x3 :
    pin_x5;
  wire en_R10;
  assign en_R10 = (step == 6'd0) || (step == 6'd1) || (step == 6'd2) || (step == 6'd3) || (step == 6'd5) || (step == 6'd6) || (step == 6'd7) || (step == 6'd8) || (step == 6'd9) || (step == 6'd10) || (step == 6'd11) || (step == 6'd22) || (step == 6'd31) || (step == 6'd32);
  wire [7:0] q_R10;
  tpg_register #(.WIDTH(8), .SEED(8'd127)) R10 (.clk(clk), .rst(rst), .en(en_R10), .test_mode(test_mode), .d(d_R10), .q(q_R10));

  wire [7:0] d_R11;
  wire [3:0] sel_R11;
  assign sel_R11 =
    step == 6'd0 ? 4'd6 :
    step == 6'd1 ? 4'd8 :
    step == 6'd2 ? 4'd9 :
    step == 6'd3 ? 4'd1 :
    step == 6'd6 ? 4'd3 :
    step == 6'd7 ? 4'd4 :
    step == 6'd8 ? 4'd7 :
    step == 6'd9 ? 4'd5 :
    step == 6'd11 ? 4'd0 :
    step == 6'd21 ? 4'd2 :
    4'd0;
  assign d_R11 =
    sel_R11 == 4'd0 ? out__2a1 :
    sel_R11 == 4'd1 ? out__2a2 :
    sel_R11 == 4'd2 ? out__2b1 :
    sel_R11 == 4'd3 ? pin_h13 :
    sel_R11 == 4'd4 ? pin_h15 :
    sel_R11 == 4'd5 ? pin_h18 :
    sel_R11 == 4'd6 ? pin_x0 :
    sel_R11 == 4'd7 ? pin_x16 :
    sel_R11 == 4'd8 ? pin_x2 :
    pin_x4;
  wire en_R11;
  assign en_R11 = (step == 6'd0) || (step == 6'd1) || (step == 6'd2) || (step == 6'd3) || (step == 6'd6) || (step == 6'd7) || (step == 6'd8) || (step == 6'd9) || (step == 6'd11) || (step == 6'd21);
  wire [7:0] q_R11;
  tpg_register #(.WIDTH(8), .SEED(8'd162)) R11 (.clk(clk), .rst(rst), .en(en_R11), .test_mode(test_mode), .d(d_R11), .q(q_R11));

  wire [7:0] d_R12;
  wire [3:0] sel_R12;
  assign sel_R12 =
    step == 6'd0 ? 4'd3 :
    step == 6'd1 ? 4'd7 :
    step == 6'd2 ? 4'd1 :
    step == 6'd3 ? 4'd9 :
    step == 6'd4 ? 4'd10 :
    step == 6'd5 ? 4'd4 :
    step == 6'd6 ? 4'd5 :
    step == 6'd7 ? 4'd8 :
    step == 6'd8 ? 4'd6 :
    step == 6'd10 ? 4'd0 :
    step == 6'd20 ? 4'd2 :
    4'd0;
  assign d_R12 =
    sel_R12 == 4'd0 ? out__2a1 :
    sel_R12 == 4'd1 ? out__2a2 :
    sel_R12 == 4'd2 ? out__2b1 :
    sel_R12 == 4'd3 ? pin_h1 :
    sel_R12 == 4'd4 ? pin_h11 :
    sel_R12 == 4'd5 ? pin_h12 :
    sel_R12 == 4'd6 ? pin_h16 :
    sel_R12 == 4'd7 ? pin_h3 :
    sel_R12 == 4'd8 ? pin_x14 :
    sel_R12 == 4'd9 ? pin_x7 :
    pin_x9;
  wire en_R12;
  assign en_R12 = (step == 6'd0) || (step == 6'd1) || (step == 6'd2) || (step == 6'd3) || (step == 6'd4) || (step == 6'd5) || (step == 6'd6) || (step == 6'd7) || (step == 6'd8) || (step == 6'd10) || (step == 6'd20);
  wire [7:0] q_R12;
  dp_register #(.WIDTH(8)) R12 (.clk(clk), .rst(rst), .en(en_R12), .d(d_R12), .q(q_R12));

  wire [7:0] d_R13;
  wire [1:0] sel_R13;
  assign sel_R13 =
    step == 6'd2 ? 2'd0 :
    step == 6'd10 ? 2'd1 :
    step == 6'd19 ? 2'd2 :
    2'd0;
  assign d_R13 =
    sel_R13 == 2'd0 ? out__2a1 :
    sel_R13 == 2'd1 ? out__2a2 :
    out__2b1;
  wire en_R13;
  assign en_R13 = (step == 6'd2) || (step == 6'd10) || (step == 6'd19);
  wire [7:0] q_R13;
  dp_register #(.WIDTH(8)) R13 (.clk(clk), .rst(rst), .en(en_R13), .d(d_R13), .q(q_R13));

  wire [7:0] d_R14;
  wire [1:0] sel_R14;
  assign sel_R14 =
    step == 6'd1 ? 2'd0 :
    step == 6'd9 ? 2'd1 :
    step == 6'd18 ? 2'd2 :
    2'd0;
  assign d_R14 =
    sel_R14 == 2'd0 ? out__2a1 :
    sel_R14 == 2'd1 ? out__2a2 :
    out__2b1;
  wire en_R14;
  assign en_R14 = (step == 6'd1) || (step == 6'd9) || (step == 6'd18);
  wire [7:0] q_R14;
  dp_register #(.WIDTH(8)) R14 (.clk(clk), .rst(rst), .en(en_R14), .d(d_R14), .q(q_R14));

  wire [7:0] d_R15;
  wire [1:0] sel_R15;
  assign sel_R15 =
    step == 6'd1 ? 2'd1 :
    step == 6'd9 ? 2'd0 :
    step == 6'd17 ? 2'd2 :
    2'd0;
  assign d_R15 =
    sel_R15 == 2'd0 ? out__2a1 :
    sel_R15 == 2'd1 ? out__2a2 :
    out__2b1;
  wire en_R15;
  assign en_R15 = (step == 6'd1) || (step == 6'd9) || (step == 6'd17);
  wire [7:0] q_R15;
  dp_register #(.WIDTH(8)) R15 (.clk(clk), .rst(rst), .en(en_R15), .d(d_R15), .q(q_R15));

  wire [7:0] d_R16;
  wire [0:0] sel_R16;
  assign sel_R16 =
    step == 6'd8 ? 1'd0 :
    step == 6'd16 ? 1'd1 :
    1'd0;
  assign d_R16 =
    sel_R16 == 1'd0 ? out__2a1 :
    out__2b1;
  wire en_R16;
  assign en_R16 = (step == 6'd8) || (step == 6'd16);
  wire [7:0] q_R16;
  dp_register #(.WIDTH(8)) R16 (.clk(clk), .rst(rst), .en(en_R16), .d(d_R16), .q(q_R16));

  wire [7:0] d_R17;
  wire [2:0] sel_R17;
  assign sel_R17 =
    step == 6'd12 ? 3'd1 :
    step == 6'd13 ? 3'd2 :
    step == 6'd14 ? 3'd3 :
    step == 6'd15 ? 3'd4 :
    step == 6'd16 ? 3'd0 :
    3'd0;
  assign d_R17 =
    sel_R17 == 3'd0 ? out__2a2 :
    sel_R17 == 3'd1 ? pin_h24 :
    sel_R17 == 3'd2 ? pin_h27 :
    sel_R17 == 3'd3 ? pin_x28 :
    pin_x31;
  wire en_R17;
  assign en_R17 = (step == 6'd12) || (step == 6'd13) || (step == 6'd14) || (step == 6'd15) || (step == 6'd16);
  wire [7:0] q_R17;
  dp_register #(.WIDTH(8)) R17 (.clk(clk), .rst(rst), .en(en_R17), .d(d_R17), .q(q_R17));

  wire [7:0] d_R18;
  wire [1:0] sel_R18;
  assign sel_R18 =
    step == 6'd13 ? 2'd0 :
    step == 6'd14 ? 2'd1 :
    step == 6'd15 ? 2'd2 :
    2'd0;
  assign d_R18 =
    sel_R18 == 2'd0 ? pin_h26 :
    sel_R18 == 2'd1 ? pin_h28 :
    pin_x30;
  wire en_R18;
  assign en_R18 = (step == 6'd13) || (step == 6'd14) || (step == 6'd15);
  wire [7:0] q_R18;
  dp_register #(.WIDTH(8)) R18 (.clk(clk), .rst(rst), .en(en_R18), .d(d_R18), .q(q_R18));

  wire [7:0] d_R19;
  wire [0:0] sel_R19;
  assign sel_R19 =
    step == 6'd14 ? 1'd0 :
    step == 6'd15 ? 1'd1 :
    1'd0;
  assign d_R19 =
    sel_R19 == 1'd0 ? pin_h29 :
    pin_h31;
  wire en_R19;
  assign en_R19 = (step == 6'd14) || (step == 6'd15);
  wire [7:0] q_R19;
  dp_register #(.WIDTH(8)) R19 (.clk(clk), .rst(rst), .en(en_R19), .d(d_R19), .q(q_R19));

  wire [7:0] d_R20;
  assign d_R20 = pin_h30;
  wire en_R20;
  assign en_R20 = (step == 6'd15);
  wire [7:0] q_R20;
  dp_register #(.WIDTH(8)) R20 (.clk(clk), .rst(rst), .en(en_R20), .d(d_R20), .q(q_R20));

  wire [7:0] l__2a1;
  wire [2:0] lsel__2a1;
  assign lsel__2a1 =
    (test_mode && test_session == 2'd0) ? 3'd0 :
    step == 6'd1 ? 3'd0 :
    step == 6'd2 ? 3'd0 :
    step == 6'd3 ? 3'd4 :
    step == 6'd4 ? 3'd4 :
    step == 6'd5 ? 3'd3 :
    step == 6'd6 ? 3'd5 :
    step == 6'd7 ? 3'd0 :
    step == 6'd8 ? 3'd0 :
    step == 6'd9 ? 3'd1 :
    step == 6'd10 ? 3'd0 :
    step == 6'd11 ? 3'd6 :
    step == 6'd12 ? 3'd7 :
    step == 6'd13 ? 3'd4 :
    step == 6'd14 ? 3'd3 :
    step == 6'd15 ? 3'd2 :
    step == 6'd16 ? 3'd2 :
    3'd0;
  assign l__2a1 =
    lsel__2a1 == 3'd0 ? q_R10 :
    lsel__2a1 == 3'd1 ? q_R11 :
    lsel__2a1 == 3'd2 ? q_R17 :
    lsel__2a1 == 3'd3 ? q_R2 :
    lsel__2a1 == 3'd4 ? q_R3 :
    lsel__2a1 == 3'd5 ? q_R5 :
    lsel__2a1 == 3'd6 ? q_R6 :
    q_R7;
  wire [7:0] r__2a1;
  wire [2:0] rsel__2a1;
  assign rsel__2a1 =
    (test_mode && test_session == 2'd0) ? 3'd0 :
    step == 6'd1 ? 3'd1 :
    step == 6'd2 ? 3'd1 :
    step == 6'd3 ? 3'd0 :
    step == 6'd4 ? 3'd1 :
    step == 6'd5 ? 3'd5 :
    step == 6'd6 ? 3'd1 :
    step == 6'd7 ? 3'd1 :
    step == 6'd8 ? 3'd0 :
    step == 6'd9 ? 3'd1 :
    step == 6'd10 ? 3'd7 :
    step == 6'd11 ? 3'd7 :
    step == 6'd12 ? 3'd6 :
    step == 6'd13 ? 3'd2 :
    step == 6'd14 ? 3'd2 :
    step == 6'd15 ? 3'd3 :
    step == 6'd16 ? 3'd4 :
    3'd0;
  assign r__2a1 =
    rsel__2a1 == 3'd0 ? q_R11 :
    rsel__2a1 == 3'd1 ? q_R12 :
    rsel__2a1 == 3'd2 ? q_R17 :
    rsel__2a1 == 3'd3 ? q_R18 :
    rsel__2a1 == 3'd4 ? q_R19 :
    rsel__2a1 == 3'd5 ? q_R5 :
    rsel__2a1 == 3'd6 ? q_R8 :
    q_R9;
  wire [7:0] out__2a1;
  dp_mul #(.WIDTH(8)) u__2a1 (.a(l__2a1), .b(r__2a1), .y(out__2a1));

  wire [7:0] l__2a2;
  wire [2:0] lsel__2a2;
  assign lsel__2a2 =
    (test_mode && test_session == 2'd1) ? 3'd0 :
    step == 6'd1 ? 3'd1 :
    step == 6'd2 ? 3'd1 :
    step == 6'd3 ? 3'd0 :
    step == 6'd4 ? 3'd5 :
    step == 6'd5 ? 3'd2 :
    step == 6'd6 ? 3'd0 :
    step == 6'd7 ? 3'd5 :
    step == 6'd8 ? 3'd2 :
    step == 6'd9 ? 3'd0 :
    step == 6'd10 ? 3'd6 :
    step == 6'd11 ? 3'd0 :
    step == 6'd12 ? 3'd7 :
    step == 6'd13 ? 3'd6 :
    step == 6'd14 ? 3'd3 :
    step == 6'd15 ? 3'd4 :
    step == 6'd16 ? 3'd3 :
    3'd0;
  assign l__2a2 =
    lsel__2a2 == 3'd0 ? q_R10 :
    lsel__2a2 == 3'd1 ? q_R11 :
    lsel__2a2 == 3'd2 ? q_R12 :
    lsel__2a2 == 3'd3 ? q_R18 :
    lsel__2a2 == 3'd4 ? q_R19 :
    lsel__2a2 == 3'd5 ? q_R2 :
    lsel__2a2 == 3'd6 ? q_R6 :
    q_R9;
  wire [7:0] r__2a2;
  wire [2:0] rsel__2a2;
  assign rsel__2a2 =
    (test_mode && test_session == 2'd1) ? 3'd0 :
    step == 6'd1 ? 3'd1 :
    step == 6'd2 ? 3'd1 :
    step == 6'd3 ? 3'd1 :
    step == 6'd4 ? 3'd4 :
    step == 6'd5 ? 3'd3 :
    step == 6'd6 ? 3'd1 :
    step == 6'd7 ? 3'd0 :
    step == 6'd8 ? 3'd6 :
    step == 6'd9 ? 3'd6 :
    step == 6'd10 ? 3'd0 :
    step == 6'd11 ? 3'd6 :
    step == 6'd12 ? 3'd3 :
    step == 6'd13 ? 3'd5 :
    step == 6'd14 ? 3'd4 :
    step == 6'd15 ? 3'd3 :
    step == 6'd16 ? 3'd2 :
    3'd0;
  assign r__2a2 =
    rsel__2a2 == 3'd0 ? q_R11 :
    rsel__2a2 == 3'd1 ? q_R2 :
    rsel__2a2 == 3'd2 ? q_R20 :
    rsel__2a2 == 3'd3 ? q_R3 :
    rsel__2a2 == 3'd4 ? q_R5 :
    rsel__2a2 == 3'd5 ? q_R7 :
    q_R8;
  wire [7:0] out__2a2;
  dp_mul #(.WIDTH(8)) u__2a2 (.a(l__2a2), .b(r__2a2), .y(out__2a2));

  wire [7:0] l__2b1;
  wire [3:0] lsel__2b1;
  assign lsel__2b1 =
    (test_mode && test_session == 2'd2) ? 4'd2 :
    step == 6'd2 ? 4'd4 :
    step == 6'd3 ? 4'd0 :
    step == 6'd4 ? 4'd3 :
    step == 6'd5 ? 4'd0 :
    step == 6'd6 ? 4'd2 :
    step == 6'd7 ? 4'd8 :
    step == 6'd8 ? 4'd0 :
    step == 6'd9 ? 4'd13 :
    step == 6'd10 ? 4'd12 :
    step == 6'd11 ? 4'd11 :
    step == 6'd12 ? 4'd10 :
    step == 6'd13 ? 4'd9 :
    step == 6'd14 ? 4'd7 :
    step == 6'd15 ? 4'd0 :
    step == 6'd16 ? 4'd5 :
    step == 6'd17 ? 4'd5 :
    step == 6'd18 ? 4'd4 :
    step == 6'd19 ? 4'd3 :
    step == 6'd20 ? 4'd3 :
    step == 6'd21 ? 4'd2 :
    step == 6'd22 ? 4'd2 :
    step == 6'd23 ? 4'd1 :
    step == 6'd24 ? 4'd13 :
    step == 6'd25 ? 4'd12 :
    step == 6'd26 ? 4'd11 :
    step == 6'd27 ? 4'd10 :
    step == 6'd28 ? 4'd9 :
    step == 6'd29 ? 4'd8 :
    step == 6'd30 ? 4'd7 :
    step == 6'd31 ? 4'd6 :
    step == 6'd32 ? 4'd1 :
    4'd0;
  assign l__2b1 =
    lsel__2b1 == 4'd0 ? q_R1 :
    lsel__2b1 == 4'd1 ? q_R10 :
    lsel__2b1 == 4'd2 ? q_R11 :
    lsel__2b1 == 4'd3 ? q_R13 :
    lsel__2b1 == 4'd4 ? q_R15 :
    lsel__2b1 == 4'd5 ? q_R16 :
    lsel__2b1 == 4'd6 ? q_R17 :
    lsel__2b1 == 4'd7 ? q_R3 :
    lsel__2b1 == 4'd8 ? q_R4 :
    lsel__2b1 == 4'd9 ? q_R5 :
    lsel__2b1 == 4'd10 ? q_R6 :
    lsel__2b1 == 4'd11 ? q_R7 :
    lsel__2b1 == 4'd12 ? q_R8 :
    q_R9;
  wire [7:0] r__2b1;
  wire [3:0] rsel__2b1;
  assign rsel__2b1 =
    (test_mode && test_session == 2'd2) ? 4'd1 :
    step == 6'd2 ? 4'd3 :
    step == 6'd3 ? 4'd2 :
    step == 6'd4 ? 4'd0 :
    step == 6'd5 ? 4'd1 :
    step == 6'd6 ? 4'd0 :
    step == 6'd7 ? 4'd11 :
    step == 6'd8 ? 4'd12 :
    step == 6'd9 ? 4'd9 :
    step == 6'd10 ? 4'd10 :
    step == 6'd11 ? 4'd6 :
    step == 6'd12 ? 4'd8 :
    step == 6'd13 ? 4'd5 :
    step == 6'd14 ? 4'd7 :
    step == 6'd15 ? 4'd5 :
    step == 6'd16 ? 4'd0 :
    step == 6'd17 ? 4'd4 :
    step == 6'd18 ? 4'd3 :
    step == 6'd19 ? 4'd3 :
    step == 6'd20 ? 4'd2 :
    step == 6'd21 ? 4'd2 :
    step == 6'd22 ? 4'd1 :
    step == 6'd23 ? 4'd12 :
    step == 6'd24 ? 4'd11 :
    step == 6'd25 ? 4'd10 :
    step == 6'd26 ? 4'd9 :
    step == 6'd27 ? 4'd8 :
    step == 6'd28 ? 4'd7 :
    step == 6'd29 ? 4'd6 :
    step == 6'd30 ? 4'd5 :
    step == 6'd31 ? 4'd5 :
    step == 6'd32 ? 4'd0 :
    4'd0;
  assign r__2b1 =
    rsel__2b1 == 4'd0 ? q_R1 :
    rsel__2b1 == 4'd1 ? q_R10 :
    rsel__2b1 == 4'd2 ? q_R12 :
    rsel__2b1 == 4'd3 ? q_R14 :
    rsel__2b1 == 4'd4 ? q_R15 :
    rsel__2b1 == 4'd5 ? q_R2 :
    rsel__2b1 == 4'd6 ? q_R3 :
    rsel__2b1 == 4'd7 ? q_R4 :
    rsel__2b1 == 4'd8 ? q_R5 :
    rsel__2b1 == 4'd9 ? q_R6 :
    rsel__2b1 == 4'd10 ? q_R7 :
    rsel__2b1 == 4'd11 ? q_R8 :
    q_R9;
  wire [7:0] out__2b1;
  dp_add #(.WIDTH(8)) u__2b1 (.a(l__2b1), .b(r__2b1), .y(out__2b1));

  assign pout_s31 = q_R10;

endmodule

